package symple_test

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/wire"
	"repro/symple"
)

// These tests exercise the library exactly as a downstream user would:
// through the public facade only.

type maxState struct {
	Max symple.SymInt
}

func (s *maxState) Fields() []symple.Value { return []symple.Value{&s.Max} }

func newMaxState() *maxState {
	return &maxState{Max: symple.NewSymInt(math.MinInt64)}
}

func maxUpdate(ctx *symple.Ctx, s *maxState, e int64) {
	if s.Max.Lt(ctx, e) {
		s.Max.Set(e)
	}
}

func TestFacadeExecutorRoundTrip(t *testing.T) {
	chunks := [][]int64{{2, 9, 1}, {5, 3, 10}, {8, 2, 1}}
	var sums []*symple.Summary[*maxState]
	for _, chunk := range chunks {
		x := symple.NewExecutor(newMaxState, maxUpdate, symple.DefaultOptions())
		for _, e := range chunk {
			if err := x.Feed(e); err != nil {
				t.Fatal(err)
			}
		}
		s, err := x.Finish()
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, s...)
	}
	final, err := symple.ApplyAll(newMaxState(), sums)
	if err != nil {
		t.Fatal(err)
	}
	if got := final.Max.Get(); got != 10 {
		t.Fatalf("max = %d, want 10", got)
	}
	one, err := symple.ComposeAll(sums)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := one.Apply(newMaxState())
	if err != nil {
		t.Fatal(err)
	}
	if got := tf.Max.Get(); got != 10 {
		t.Fatalf("composed max = %d, want 10", got)
	}
}

func TestFacadeQueryEngines(t *testing.T) {
	q := &symple.Query[*maxState, int64, int64]{
		Name: "max",
		GroupBy: func(rec []byte) (string, int64, bool) {
			parts := strings.SplitN(string(rec), "\t", 2)
			if len(parts) != 2 {
				return "", 0, false
			}
			v, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				return "", 0, false
			}
			return parts[0], v, true
		},
		NewState:    newMaxState,
		Update:      maxUpdate,
		Result:      func(_ string, s *maxState) int64 { return s.Max.Get() },
		EncodeEvent: func(e *wire.Encoder, v int64) { e.Varint(v) },
		DecodeEvent: func(d *wire.Decoder) (int64, error) { return d.Varint(), d.Err() },
	}
	segs := []*symple.Segment{
		{ID: 0, Records: [][]byte{[]byte("a\t5"), []byte("b\t100")}},
		{ID: 1, Records: [][]byte{[]byte("a\t42"), []byte("b\t7")}},
	}
	seq, err := symple.RunSequential(q, segs)
	if err != nil {
		t.Fatal(err)
	}
	base, err := symple.RunBaseline(q, segs, symple.Config{NumReducers: 2})
	if err != nil {
		t.Fatal(err)
	}
	symp, err := symple.RunSymple(q, segs, symple.Config{NumReducers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := symple.RunSympleTree(q, segs, symple.Config{NumReducers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range []*symple.Output[int64]{seq, base, symp, tree} {
		if out.Results["a"] != 42 || out.Results["b"] != 100 {
			t.Fatalf("results: %v", out.Results)
		}
		if got := out.Keys(); len(got) != 2 || got[0] != "a" {
			t.Fatalf("keys: %v", got)
		}
	}
}

func TestFacadeTypes(t *testing.T) {
	// Construct every public symbolic type through the facade.
	b := symple.NewSymBool(true)
	if !b.Get() {
		t.Error("bool")
	}
	en := symple.NewSymEnum(8, 3)
	if en.Get() != 3 {
		t.Error("enum")
	}
	p := symple.NewSymPred(func(a, b int64) bool { return a < b }, symple.Int64Codec(), 1)
	var ctx symple.Ctx
	if !p.EvalPred(&ctx, 2) {
		t.Error("pred")
	}
	v := symple.NewSymVector(symple.StringCodec())
	v.Push("x")
	if v.Len() != 1 {
		t.Error("vector")
	}
	iv := symple.NewSymIntVector()
	iv.Push(7)
	if got := iv.Elems(); len(got) != 1 || got[0] != 7 {
		t.Error("intvector")
	}
}

func TestFacadeReadSegments(t *testing.T) {
	dir := t.TempDir()
	if _, err := symple.ReadSegments(dir); err == nil {
		t.Error("expected error on empty dir")
	}
}

func TestFacadeStreamComposer(t *testing.T) {
	c := symple.NewStreamComposer(newMaxState)
	mkSums := func(vals ...int64) []*symple.Summary[*maxState] {
		x := symple.NewExecutor(newMaxState, maxUpdate, symple.DefaultOptions())
		for _, v := range vals {
			if err := x.Feed(v); err != nil {
				t.Fatal(err)
			}
		}
		s, err := x.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if _, err := c.Add(1, mkSums(50)); err != nil {
		t.Fatal(err)
	}
	if _, n := c.Prefix(); n != 0 {
		t.Fatal("gap should block the prefix")
	}
	if _, err := c.Add(0, mkSums(10, 99)); err != nil {
		t.Fatal(err)
	}
	state, n := c.Prefix()
	if n != 2 || state.Max.Get() != 99 {
		t.Fatalf("prefix %d, max %d", n, state.Max.Get())
	}
	if !c.Done(2) {
		t.Fatal("not done")
	}
}

func TestFacadeResultSegments(t *testing.T) {
	out := &symple.Output[int64]{Results: map[string]int64{"a": 3}}
	segs := symple.ResultSegments(out, func(key string, v int64) [][]byte {
		return [][]byte{[]byte(key)}
	}, 2)
	if len(segs) != 2 || len(segs[0].Records)+len(segs[1].Records) != 1 {
		t.Fatalf("segments: %v", segs)
	}
}
