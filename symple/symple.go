// Package symple is the public API of the SYMPLE reproduction: symbolic
// data types, the symbolic-execution engine, symbolic summaries, the
// groupby-aggregate query runtime with its three engines (Sequential,
// Baseline MapReduce, SYMPLE), and the MapReduce substrate they run on.
//
// SYMPLE (SOSP 2015) parallelizes user-defined aggregations (UDAs) with
// loop-carried dependences by running them symbolically on each input
// chunk from an unknown initial state and composing the resulting
// symbolic summaries in input order — "symbolic parallelism".
//
// A minimal UDA (the paper's running example, max of a list):
//
//	type MaxState struct{ Max symple.SymInt }
//
//	func (s *MaxState) Fields() []symple.Value { return []symple.Value{&s.Max} }
//
//	x := symple.NewExecutor(
//		func() *MaxState { return &MaxState{Max: symple.NewSymInt(math.MinInt64)} },
//		func(ctx *symple.Ctx, s *MaxState, e int64) {
//			if s.Max.Lt(ctx, e) {
//				s.Max.Set(e)
//			}
//		},
//		symple.DefaultOptions(),
//	)
//	for _, e := range chunk {
//		_ = x.Feed(e)
//	}
//	summaries, _ := x.Finish() // compact, serializable, composable
//
// See the examples/ directory for complete programs, including the
// paper's Figure 1 purchase-funnel UDA and the §4.4 GPS sessionization
// UDA, and the internal/queries package for the 12 evaluation queries.
package symple

import (
	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/sym"
)

// Symbolic data types (paper §4).
type (
	// Ctx is the per-run symbolic execution context.
	Ctx = sym.Ctx
	// Value is the interface all symbolic data types implement.
	Value = sym.Value
	// State is implemented by user aggregation-state structs.
	State = sym.State
	// SymInt is a symbolic 64-bit integer (canonical form lb≤x≤ub ⇒ a·x+b).
	SymInt = sym.SymInt
	// SymEnum is a symbolic enumeration over a bounded domain (≤ 64).
	SymEnum = sym.SymEnum
	// SymBool is a symbolic boolean.
	SymBool = sym.SymBool
	// SymPred is a black-box-predicate holder for windowed dependences.
	SymPred[T any] = sym.SymPred[T]
	// SymVector is an append-only vector of concrete elements.
	SymVector[T any] = sym.SymVector[T]
	// SymIntVector is an append-only vector of possibly symbolic int64s.
	SymIntVector = sym.SymIntVector
	// Codec serializes and compares user element types.
	Codec[T any] = sym.Codec[T]
	// Options tunes the engine's path-explosion controls.
	Options = sym.Options
	// Stats counts an executor's symbolic work.
	Stats = sym.Stats
	// Env resolves cross-field references during summary application.
	Env = sym.Env
	// SymEnv carries scalar transfers during symbolic-on-symbolic
	// composition; custom Value implementations receive it.
	SymEnv = sym.SymEnv
)

// Engine and summaries (paper §3, §5).
type (
	// Executor explores all feasible paths of a UDA over a record stream.
	Executor[S sym.State, E any] = sym.Executor[S, E]
	// Summary is a symbolic summary: path constraints ⇒ transfer functions.
	Summary[S sym.State] = sym.Summary[S]
)

// Query runtime (paper §1.2, §5.4).
type (
	// Query is a groupby-aggregate query with a UDA.
	Query[S sym.State, E, R any] = core.Query[S, E, R]
	// Output is an engine run's results and metrics.
	Output[R any] = core.Output[R]
	// SymStats aggregates mapper-side symbolic work for a run.
	SymStats = core.SymStats
)

// MapReduce substrate.
type (
	// Segment is one ordered chunk of the distributed input.
	Segment = mapreduce.Segment
	// Config configures a MapReduce job.
	Config = mapreduce.Config
	// Metrics reports a job's bytes, records and task costs.
	Metrics = mapreduce.Metrics
)

// Constructors and helpers.
var (
	// NewSymInt returns a SymInt bound to the given initial value.
	NewSymInt = sym.NewSymInt
	// NewSymEnum returns a SymEnum over domain n bound to c.
	NewSymEnum = sym.NewSymEnum
	// NewSymBool returns a SymBool bound to v.
	NewSymBool = sym.NewSymBool
	// NewSymIntVector returns an empty SymIntVector.
	NewSymIntVector = sym.NewSymIntVector
	// Int64Codec is a Codec for int64 elements.
	Int64Codec = sym.Int64Codec
	// StringCodec is a Codec for string elements.
	StringCodec = sym.StringCodec
	// DefaultOptions returns the paper's engine settings.
	DefaultOptions = sym.DefaultOptions
)

// NewSymPred returns a SymPred holding the concrete initial value v.
func NewSymPred[T any](pred func(held, arg T) bool, codec Codec[T], v T) SymPred[T] {
	return sym.NewSymPred(pred, codec, v)
}

// NewSymVector returns an empty SymVector using codec.
func NewSymVector[T any](codec Codec[T]) SymVector[T] {
	return sym.NewSymVector(codec)
}

// NewExecutor returns an executor starting from a fresh symbolic state —
// the mapper side of SYMPLE.
func NewExecutor[S State, E any](newState func() S, update func(*Ctx, S, E), opts Options) *Executor[S, E] {
	return sym.NewExecutor(newState, update, opts)
}

// NewConcreteExecutor returns an executor starting from the concrete
// initial state — the sequential reference execution.
func NewConcreteExecutor[S State, E any](newState func() S, update func(*Ctx, S, E), opts Options) *Executor[S, E] {
	return sym.NewConcreteExecutor(newState, update, opts)
}

// ApplyAll composes ordered summaries onto a concrete state.
func ApplyAll[S State](c S, summaries []*Summary[S]) (S, error) {
	return sym.ApplyAll(c, summaries)
}

// ComposeAll reduces ordered summaries to one by composition (§3.6),
// folding them as a balanced pairwise tree. The inputs are not consumed.
func ComposeAll[S State](summaries []*Summary[S]) (*Summary[S], error) {
	return sym.ComposeAll(summaries)
}

// ComposeAllParallel is ComposeAll with each tree level's pairs composed
// concurrently, for wide fan-ins. It consumes its input summaries.
func ComposeAllParallel[S State](summaries []*Summary[S]) (*Summary[S], error) {
	return sym.ComposeAllParallel(summaries)
}

// RunSequential executes a query sequentially (the reference semantics).
func RunSequential[S State, E, R any](q *Query[S, E, R], segments []*Segment) (*Output[R], error) {
	return core.RunSequential(q, segments)
}

// RunBaseline executes a query as the hand-optimized Hadoop baseline.
func RunBaseline[S State, E, R any](q *Query[S, E, R], segments []*Segment, conf Config) (*Output[R], error) {
	return core.RunBaseline(q, segments, conf)
}

// RunSymple executes a query with symbolic parallelism.
func RunSymple[S State, E, R any](q *Query[S, E, R], segments []*Segment, conf Config) (*Output[R], error) {
	return core.RunSymple(q, segments, conf)
}

// RunSympleTree is RunSymple with the reducer composing summaries as a
// parallel binary tree (paper §3.6).
func RunSympleTree[S State, E, R any](q *Query[S, E, R], segments []*Segment, conf Config) (*Output[R], error) {
	return core.RunSympleTree(q, segments, conf)
}

// SympleOptions tunes the SYMPLE engines: a mapper-side combiner
// (pre-composing each group's summaries before the shuffle) and tree
// composition at reducers.
type SympleOptions = core.SympleOptions

// RunSympleOpts is RunSymple with explicit engine options.
func RunSympleOpts[S State, E, R any](q *Query[S, E, R], segments []*Segment, conf Config, opt SympleOptions) (*Output[R], error) {
	return core.RunSympleOpts(q, segments, conf, opt)
}

// ReadSegments loads ordered input segments from a directory of
// newline-delimited files written by cmd/datagen.
func ReadSegments(dir string) ([]*Segment, error) {
	return mapreduce.ReadSegments(dir)
}

// StreamComposer folds chunk summaries incrementally as they arrive,
// possibly out of order.
type StreamComposer[S State] = sym.StreamComposer[S]

// NewStreamComposer starts an incremental composer from the initial
// concrete state.
func NewStreamComposer[S State](newState func() S) *StreamComposer[S] {
	return sym.NewStreamComposer(newState)
}

// ResultSegments converts a query's output into input segments for a
// downstream query stage.
func ResultSegments[R any](out *Output[R], format func(key string, r R) [][]byte, numSegments int) []*Segment {
	return core.ResultSegments(out, format, numSegments)
}
