// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6), one testing.B benchmark per artifact, plus
// per-query engine benchmarks and micro-benchmarks of the symbolic
// engine's hot paths.
//
//	go test -bench=. -benchmem
//
// Full-size runs (paper-comparable tables printed to stdout) are
// produced by cmd/symplebench; the benchmarks here run the same code at
// a reduced scale so the whole suite finishes in minutes.
package repro

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/mapreduce"
	"repro/internal/queries"
	"repro/symple"
)

var benchScale = bench.Scale{Records: 20000, Segments: 8}

var (
	dsOnce sync.Once
	ds     *bench.Datasets
)

func datasets() *bench.Datasets {
	dsOnce.Do(func() { ds = bench.GenDatasets(benchScale) })
	return ds
}

// runExperiment times one full regeneration of a paper artifact.
func runExperiment(b *testing.B, f func(*bench.Datasets) (*bench.Table, error)) {
	b.Helper()
	d := datasets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Queries regenerates Table 1 (all 12 queries run
// sequentially for their group counts).
func BenchmarkTable1Queries(b *testing.B) { runExperiment(b, bench.Table1) }

// BenchmarkFig4Throughput regenerates Figure 4: multi-core throughput of
// G1–G4 and R1–R4 under Sequential / SYMPLE / MapReduce × mapper counts.
func BenchmarkFig4Throughput(b *testing.B) {
	sc := bench.Scale{Records: 10000, Segments: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig4(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Latency regenerates Figure 5: EMR end-to-end latency.
func BenchmarkFig5Latency(b *testing.B) { runExperiment(b, bench.Fig5) }

// BenchmarkFig6Shuffle regenerates Figure 6: EMR shuffle data size.
func BenchmarkFig6Shuffle(b *testing.B) { runExperiment(b, bench.Fig6) }

// BenchmarkFig7CPU regenerates Figure 7: 380-node cluster CPU usage.
func BenchmarkFig7CPU(b *testing.B) { runExperiment(b, bench.Fig7) }

// BenchmarkFig8Shuffle regenerates Figure 8: 380-node shuffle size.
func BenchmarkFig8Shuffle(b *testing.B) { runExperiment(b, bench.Fig8) }

// BenchmarkB1Latency regenerates the §6.4 single-group anecdote.
func BenchmarkB1Latency(b *testing.B) { runExperiment(b, bench.B1Latency) }

// BenchmarkAblationMerging regenerates the path-merging ablation (§3.5).
func BenchmarkAblationMerging(b *testing.B) { runExperiment(b, bench.AblationMerging) }

// BenchmarkAblationPathCap regenerates the live-path-cap sweep (§5.2).
func BenchmarkAblationPathCap(b *testing.B) { runExperiment(b, bench.AblationPathCap) }

// BenchmarkAblationCompose compares sequential vs pre-composed summary
// application (§3.6).
func BenchmarkAblationCompose(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationCompose(32, 500); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryEngines reports per-query, per-engine throughput
// (bytes/op is the corpus size, so ns/op maps directly to MB/s).
func BenchmarkQueryEngines(b *testing.B) {
	d := datasets()
	for _, id := range []string{"G1", "B1", "B3", "R1", "R4"} {
		spec := queries.ByID(id)
		segs, err := d.For(spec.Dataset, false)
		if err != nil {
			b.Fatal(err)
		}
		var bytes int64
		for _, s := range segs {
			bytes += s.Bytes()
		}
		conf := mapreduce.Config{NumReducers: 2}
		b.Run(fmt.Sprintf("%s/sequential", id), func(b *testing.B) {
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				if _, err := spec.Sequential(segs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/baseline", id), func(b *testing.B) {
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				if _, err := spec.Baseline(segs, conf); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/symple", id), func(b *testing.B) {
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				if _, err := spec.Symple(segs, conf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// maxBenchState is the §3.1 Max UDA used by the engine micro-benchmarks.
type maxBenchState struct {
	Max symple.SymInt
}

func (s *maxBenchState) Fields() []symple.Value { return []symple.Value{&s.Max} }

func newMaxBenchState() *maxBenchState {
	return &maxBenchState{Max: symple.NewSymInt(math.MinInt64)}
}

func maxBenchUpdate(ctx *symple.Ctx, s *maxBenchState, e int64) {
	if s.Max.Lt(ctx, e) {
		s.Max.Set(e)
	}
}

// BenchmarkSymbolicFeed measures the engine's per-record cost on a
// symbolic execution of Max (two live paths, merging active).
func BenchmarkSymbolicFeed(b *testing.B) {
	x := symple.NewExecutor(newMaxBenchState, maxBenchUpdate, symple.DefaultOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.Feed(int64(i % 1000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcreteFeed measures the same UDA through the concrete fast
// path — the paper's "as fast as the native type but for the bound
// check" claim.
func BenchmarkConcreteFeed(b *testing.B) {
	x := symple.NewConcreteExecutor(newMaxBenchState, maxBenchUpdate, symple.DefaultOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.Feed(int64(i % 1000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummaryRoundTrip measures summary serialization, the shuffle
// cost unit of Figures 6 and 8.
func BenchmarkSummaryRoundTrip(b *testing.B) {
	x := symple.NewExecutor(newMaxBenchState, maxBenchUpdate, symple.DefaultOptions())
	for i := 0; i < 1000; i++ {
		if err := x.Feed(int64(i * 7 % 500)); err != nil {
			b.Fatal(err)
		}
	}
	sums, err := x.Finish()
	if err != nil {
		b.Fatal(err)
	}
	init := newMaxBenchState()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sums[0].Apply(init); err != nil {
			b.Fatal(err)
		}
	}
}
