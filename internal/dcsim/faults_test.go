package dcsim

import "testing"

func TestFailureReworkModel(t *testing.T) {
	c := oneNode(4)
	c.FailEvery = 2
	c.FailAtFraction = 0.5
	c.RetryDelayS = 3
	// Task 1 fails at 50%: 2s of wasted work, a 3s detection wait, then
	// a full 4s re-run → its slot is occupied 2+3+4 = 9s. Task 0 runs
	// clean in 4s on a parallel core.
	r, err := Simulate(c, Job{
		Maps: []MapTask{{CPUSeconds: 4}, {CPUSeconds: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.MapPhaseS, 9, 0.01, "failed map rework + detection")
	if r.Failures != 1 {
		t.Errorf("Failures = %d, want 1", r.Failures)
	}
	approx(t, r.WastedCPUSeconds, 2, 0.01, "wasted half-attempt")
	// CPUSeconds: 8 useful + 2 wasted (the detection wait is lost time,
	// not instructions).
	approx(t, r.CPUSeconds, 10, 0.01, "total cpu with rework")
}

func TestSpeculationHidesDetectionDelay(t *testing.T) {
	c := oneNode(4)
	c.FailEvery = 2
	c.FailAtFraction = 0.5
	c.RetryDelayS = 30
	c.Speculate = true
	// With speculation the backup is already running when the original
	// dies: no detection wait, so the failed task resolves in
	// 2 + 4 = 6s instead of 36s.
	r, err := Simulate(c, Job{
		Maps: []MapTask{{CPUSeconds: 4}, {CPUSeconds: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.MapPhaseS, 6, 0.01, "speculated failure")
	if r.Speculated != 1 {
		t.Errorf("Speculated = %d, want 1", r.Speculated)
	}
	approx(t, r.WastedCPUSeconds, 2, 0.01, "waste unchanged by speculation")
}

func TestFailureRereadsInput(t *testing.T) {
	c := oneNode(1)
	c.FailEvery = 1
	c.FailAtFraction = 0.5
	// IO-bound task: 1GB at 100MB/s = 10s. Failing at 50% re-reads the
	// input from scratch: 1.5GB total = 15s, CPU negligible.
	r, err := Simulate(c, Job{
		Maps: []MapTask{{InputBytes: 1e9, CPUSeconds: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.MapPhaseS, 15, 0.1, "re-read on retry")
}

func TestSpeculationCapsStragglers(t *testing.T) {
	c := oneNode(4)
	c.StragglerEvery = 2
	c.StragglerSlowdown = 10
	base, err := Simulate(c, Job{
		Reduces: []ReduceTask{{CPUSeconds: 4}, {CPUSeconds: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, base.ReducePhaseS, 40, 0.01, "unspeculated straggler")
	if base.WastedCPUSeconds != 0 {
		t.Errorf("no speculation, but WastedCPUSeconds = %.1f", base.WastedCPUSeconds)
	}

	c.Speculate = true
	spec, err := Simulate(c, Job{
		Reduces: []ReduceTask{{CPUSeconds: 4}, {CPUSeconds: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Backup caps the straggler at specCap x nominal; the duplicated
	// work is charged as waste.
	approx(t, spec.ReducePhaseS, 4*specCap, 0.01, "speculated straggler capped")
	if spec.Speculated != 1 {
		t.Errorf("Speculated = %d, want 1", spec.Speculated)
	}
	approx(t, spec.WastedCPUSeconds, 4, 0.01, "duplicated straggler work")
	if spec.CPUSeconds <= base.CPUSeconds {
		t.Errorf("speculation should trade CPU (%.1f) for latency, base %.1f",
			spec.CPUSeconds, base.CPUSeconds)
	}
	// Mild straggler below the cap: speculation does nothing.
	c.StragglerSlowdown = 1.5
	mild, err := Simulate(c, Job{
		Reduces: []ReduceTask{{CPUSeconds: 4}, {CPUSeconds: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, mild.ReducePhaseS, 6, 0.01, "mild straggler unspeculated")
	if mild.Speculated != 0 || mild.WastedCPUSeconds != 0 {
		t.Errorf("mild straggler should not speculate (spec=%d waste=%.1f)",
			mild.Speculated, mild.WastedCPUSeconds)
	}
}

func TestFaultKnobsOffMatchSeedModel(t *testing.T) {
	// With every fault knob zero, the extended model must reproduce the
	// original simulator exactly.
	c := oneNode(4)
	job := Job{
		Maps: []MapTask{
			{InputBytes: 5e8, CPUSeconds: 3, OutBytes: []int64{1e6, 2e6}},
			{InputBytes: 5e8, CPUSeconds: 7, OutBytes: []int64{2e6, 1e6}},
		},
		Reduces: []ReduceTask{{CPUSeconds: 2}, {CPUSeconds: 3}},
	}
	r, err := Simulate(c, job)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failures != 0 || r.Speculated != 0 || r.WastedCPUSeconds != 0 {
		t.Errorf("clean run reports fault accounting: %+v", r)
	}
	approx(t, r.CPUSeconds, 15, 0.01, "clean cpu total")
}
