package dcsim

import (
	"testing"

	"repro/internal/obs"
)

// replayJob builds a job with uneven tasks so the replayed schedule has
// waves, stragglers and real shuffle traffic.
func replayJob(maps, reduces int) Job {
	j := Job{}
	for i := 0; i < maps; i++ {
		out := make([]int64, reduces)
		for r := range out {
			out[r] = int64(1e6 * (1 + (i+r)%3))
		}
		j.Maps = append(j.Maps, MapTask{
			InputBytes: int64(5e8 + 1e8*float64(i%4)),
			CPUSeconds: 2 + float64(i%5),
			OutBytes:   out,
		})
	}
	for r := 0; r < reduces; r++ {
		j.Reduces = append(j.Reduces, ReduceTask{CPUSeconds: 1 + float64(r%3)})
	}
	return j
}

// TestSimulatedTraceVerifies replays simulated schedules as trace spans
// and requires them to pass the same obs.Verifier invariants as live
// engine traces: span clocks, containment in the job span, and the
// cpu-bound invariant (Σ task time ≤ makespan × slots) — which for the
// simulator is a direct check that its schedules never oversubscribe
// the modeled cluster.
func TestSimulatedTraceVerifies(t *testing.T) {
	cases := []struct {
		name string
		c    Cluster
	}{
		{"basic", Cluster{Nodes: 4, Node: NodeSpec{Cores: 2, DiskMBps: 200, NetMBps: 100}}},
		{"overhead", Cluster{Nodes: 2, Node: NodeSpec{Cores: 4, DiskMBps: 100, NetMBps: 100},
			SchedulingOverheadS: 12}},
		{"stragglers", Cluster{Nodes: 3, Node: NodeSpec{Cores: 2, DiskMBps: 150, NetMBps: 80},
			StragglerEvery: 4, StragglerSlowdown: 6, Speculate: true}},
		{"failures", Cluster{Nodes: 3, Node: NodeSpec{Cores: 2, DiskMBps: 150, NetMBps: 80},
			FailEvery: 5, RetryDelayS: 3}},
		{"remote-read", Cluster{Nodes: 4, Node: NodeSpec{Cores: 2, DiskMBps: 400, NetMBps: 100},
			RemoteReadMBps: 50, RemoteAggMBps: 120}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sink := obs.NewMemSink()
			tc.c.Trace = obs.NewTrace(sink)
			j := replayJob(13, 5)
			res, err := Simulate(tc.c, j)
			if err != nil {
				t.Fatal(err)
			}
			spans := sink.Spans()
			if err := (obs.Verifier{}).Check(spans); err != nil {
				t.Fatalf("replayed trace failed verification: %v", err)
			}
			var jobSpan *obs.Span
			mapSpans, redSpans := 0, 0
			for _, sp := range spans {
				switch sp.Kind {
				case obs.KindJob:
					jobSpan = sp
				case obs.KindMapAttempt:
					mapSpans++
				case obs.KindReduceAttempt:
					redSpans++
				}
				if sp.Tags["sim"] != "1" {
					t.Errorf("span %s/%s missing sim tag", sp.Kind, sp.Name)
				}
			}
			if jobSpan == nil {
				t.Fatal("no job span")
			}
			if mapSpans != len(j.Maps) || redSpans != len(j.Reduces) {
				t.Errorf("replayed %d map / %d reduce spans, want %d / %d",
					mapSpans, redSpans, len(j.Maps), len(j.Reduces))
			}
			if got, want := int64(jobSpan.Duration()), int64(res.TotalS*1e9); got != want {
				t.Errorf("job span duration %d ns, TotalS is %d ns", got, want)
			}
		})
	}
}

// TestUntracedSimulateUnchanged pins that tracing is strictly an output:
// the same simulation with and without a trace attached produces an
// identical Result (zero simulated cost).
func TestUntracedSimulateUnchanged(t *testing.T) {
	c := Cluster{Nodes: 3, Node: NodeSpec{Cores: 2, DiskMBps: 150, NetMBps: 80},
		StragglerEvery: 4, StragglerSlowdown: 6, Speculate: true, SchedulingOverheadS: 2}
	j := replayJob(9, 4)
	plain, err := Simulate(c, j)
	if err != nil {
		t.Fatal(err)
	}
	c.Trace = obs.NewTrace(obs.NewMemSink())
	traced, err := Simulate(c, j)
	if err != nil {
		t.Fatal(err)
	}
	if plain != traced {
		t.Errorf("tracing changed the simulation: %+v vs %+v", plain, traced)
	}
}
