package dcsim

import (
	"math"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, label string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %.4f, want %.4f (±%.4f)", label, got, want, tol)
	}
}

func oneNode(cores int) Cluster {
	return Cluster{
		Nodes: 1,
		Node:  NodeSpec{Cores: cores, DiskMBps: 100, NetMBps: 100},
	}
}

func TestSingleTaskPipelined(t *testing.T) {
	// 1GB at 100MB/s = 10s read, 4s CPU: pipelined → 10s.
	r, err := Simulate(oneNode(4), Job{
		Maps: []MapTask{{InputBytes: 1e9, CPUSeconds: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.MapPhaseS, 10, 0.01, "io-bound map phase")
	// CPU-bound task: 2s read, 9s CPU → 9s.
	r, err = Simulate(oneNode(4), Job{
		Maps: []MapTask{{InputBytes: 2e8, CPUSeconds: 9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.MapPhaseS, 9, 0.01, "cpu-bound map phase")
}

func TestSlotSerialization(t *testing.T) {
	// One core, two pure-CPU 5s tasks: 10s.
	r, err := Simulate(oneNode(1), Job{
		Maps: []MapTask{{CPUSeconds: 5}, {CPUSeconds: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.MapPhaseS, 10, 0.01, "serialized maps")
	// Four cores: parallel → 5s.
	r, err = Simulate(oneNode(4), Job{
		Maps: []MapTask{{CPUSeconds: 5}, {CPUSeconds: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.MapPhaseS, 5, 0.01, "parallel maps")
}

func TestDiskSharing(t *testing.T) {
	// Two io-bound tasks share 100MB/s: 1GB each → 20s total (each sees
	// 50MB/s).
	r, err := Simulate(oneNode(4), Job{
		Maps: []MapTask{
			{InputBytes: 1e9, CPUSeconds: 0.1},
			{InputBytes: 1e9, CPUSeconds: 0.1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.MapPhaseS, 20, 0.1, "shared disk")
}

func TestBandwidthRedistribution(t *testing.T) {
	// A 100MB task and a 1GB task start together at 50MB/s each. The
	// small one finishes at 2s; the big one then gets the full
	// 100MB/s: 2s + 900MB/100MBps = 11s.
	r, err := Simulate(oneNode(4), Job{
		Maps: []MapTask{
			{InputBytes: 1e8, CPUSeconds: 0},
			{InputBytes: 1e9, CPUSeconds: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.MapPhaseS, 11, 0.1, "bandwidth redistribution")
}

func TestRemoteReadCap(t *testing.T) {
	// Disk is 100MB/s but the S3 pipe is 25MB/s per node: 1GB → 40s.
	c := oneNode(4)
	c.RemoteReadMBps = 25
	r, err := Simulate(c, Job{Maps: []MapTask{{InputBytes: 1e9, CPUSeconds: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.MapPhaseS, 40, 0.1, "remote read cap")
}

func TestAggregateRemoteCap(t *testing.T) {
	// Ten nodes each allowed 25MB/s but the store serves 100MB/s total:
	// ten 1GB tasks → aggregate 10GB / 100MBps = 100s.
	c := Cluster{
		Nodes:          10,
		Node:           NodeSpec{Cores: 2, DiskMBps: 100, NetMBps: 100},
		RemoteReadMBps: 25,
		RemoteAggMBps:  100,
	}
	maps := make([]MapTask, 10)
	for i := range maps {
		maps[i] = MapTask{InputBytes: 1e9, CPUSeconds: 1}
	}
	r, err := Simulate(c, Job{Maps: maps})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.MapPhaseS, 100, 1, "aggregate S3 cap")
}

func TestShuffleBoundByBusiestNIC(t *testing.T) {
	// Two nodes; map on node 0 sends 1GB to a reducer on node 1 at
	// 100MB/s → 10s shuffle.
	c := Cluster{Nodes: 2, Node: NodeSpec{Cores: 2, DiskMBps: 1000, NetMBps: 100}}
	r, err := Simulate(c, Job{
		Maps:    []MapTask{{InputBytes: 1, CPUSeconds: 0.01, OutBytes: []int64{0, 1e9}}},
		Reduces: []ReduceTask{{CPUSeconds: 0.1}, {CPUSeconds: 0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.ShuffleS, 10, 0.1, "shuffle time")
	if r.ShuffleBytes != 1e9+0 {
		t.Errorf("shuffle bytes %d", r.ShuffleBytes)
	}
}

func TestShuffleLocalDataFree(t *testing.T) {
	// Map on node 0, reducer 0 also on node 0: no network cost.
	c := Cluster{Nodes: 2, Node: NodeSpec{Cores: 2, DiskMBps: 1000, NetMBps: 100}}
	r, err := Simulate(c, Job{
		Maps:    []MapTask{{InputBytes: 1, CPUSeconds: 0.01, OutBytes: []int64{1e9}}},
		Reduces: []ReduceTask{{CPUSeconds: 0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.ShuffleS, 0, 0.001, "local shuffle")
}

func TestReducePhaseMakespan(t *testing.T) {
	// 3 reduce tasks of 4s on 2 slots → 8s makespan.
	c := Cluster{Nodes: 1, Node: NodeSpec{Cores: 2, DiskMBps: 100, NetMBps: 100}}
	r, err := Simulate(c, Job{
		Reduces: []ReduceTask{{CPUSeconds: 4}, {CPUSeconds: 4}, {CPUSeconds: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.ReducePhaseS, 8, 0.01, "reduce makespan")
}

func TestSchedulingOverheadAdded(t *testing.T) {
	c := oneNode(1)
	c.SchedulingOverheadS = 30
	r, err := Simulate(c, Job{Maps: []MapTask{{CPUSeconds: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.TotalS, 31, 0.01, "scheduling overhead")
}

func TestCPUSecondsAccounted(t *testing.T) {
	r, err := Simulate(oneNode(4), Job{
		Maps:    []MapTask{{CPUSeconds: 3}, {CPUSeconds: 5}},
		Reduces: []ReduceTask{{CPUSeconds: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.CPUSeconds, 10, 0.001, "cpu accounting")
}

func TestInvalidCluster(t *testing.T) {
	if _, err := Simulate(Cluster{}, Job{}); err == nil {
		t.Fatal("expected error for empty cluster")
	}
	if _, err := Simulate(Cluster{Nodes: 1, Node: NodeSpec{Cores: 1}}, Job{}); err == nil {
		t.Fatal("expected error for zero bandwidth")
	}
}

func TestManyWaves(t *testing.T) {
	// 100 cpu tasks of 1s on 1 node × 4 cores = 25 waves → 25s.
	maps := make([]MapTask, 100)
	for i := range maps {
		maps[i] = MapTask{CPUSeconds: 1}
	}
	r, err := Simulate(oneNode(4), Job{Maps: maps})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.MapPhaseS, 25, 0.1, "waves")
}

func TestSymplevsBaselineShapeOnModel(t *testing.T) {
	// Sanity: with identical map costs, the job shuffling 100x less
	// finishes sooner (shuffle + reduce dominate the baseline).
	c := Cluster{Nodes: 5, Node: NodeSpec{Cores: 4, DiskMBps: 100, NetMBps: 50}}
	mkJob := func(shuffleEach int64, reduceCPU float64) Job {
		maps := make([]MapTask, 20)
		for i := range maps {
			maps[i] = MapTask{InputBytes: 5e8, CPUSeconds: 4,
				OutBytes: []int64{shuffleEach, shuffleEach, shuffleEach, shuffleEach, shuffleEach}}
		}
		reds := make([]ReduceTask, 5)
		for i := range reds {
			reds[i] = ReduceTask{CPUSeconds: reduceCPU}
		}
		return Job{Maps: maps, Reduces: reds}
	}
	base, err := Simulate(c, mkJob(4e8, 30))
	if err != nil {
		t.Fatal(err)
	}
	symp, err := Simulate(c, mkJob(1e4, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if symp.TotalS >= base.TotalS {
		t.Fatalf("symple-shaped job (%.1fs) not faster than baseline-shaped (%.1fs)",
			symp.TotalS, base.TotalS)
	}
}

func TestStragglerModel(t *testing.T) {
	c := oneNode(4)
	c.StragglerEvery = 2
	c.StragglerSlowdown = 3
	// Tasks 1 and 3 (0-indexed, every 2nd) run 3x slower.
	r, err := Simulate(c, Job{
		Maps: []MapTask{{CPUSeconds: 2}, {CPUSeconds: 2}, {CPUSeconds: 2}, {CPUSeconds: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// All four run in parallel; makespan = the 6s stragglers.
	approx(t, r.MapPhaseS, 6, 0.01, "straggling maps")
	// Reduce phase: 2 tasks of 4s, second straggles to 12s on 4 slots.
	r2, err := Simulate(c, Job{
		Reduces: []ReduceTask{{CPUSeconds: 4}, {CPUSeconds: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r2.ReducePhaseS, 12, 0.01, "straggling reduce")
	// Without the straggler config, back to 4s.
	c.StragglerEvery = 0
	r3, err := Simulate(c, Job{
		Reduces: []ReduceTask{{CPUSeconds: 4}, {CPUSeconds: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r3.ReducePhaseS, 4, 0.01, "no stragglers")
}
