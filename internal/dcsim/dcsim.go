// Package dcsim is a discrete-event (fluid) datacenter simulator used to
// replay measured MapReduce task costs at cluster scale.
//
// The paper evaluates SYMPLE on clusters we do not have: Amazon Elastic
// MapReduce instances reading from S3 (§6.3) and a 380-node shared Hadoop
// cluster (§6.4). The in-process engine measures per-task CPU seconds and
// exact shuffle bytes; this package maps those costs onto a modeled
// cluster — nodes with core slots, disk bandwidth, NIC bandwidth, and an
// optional remote-store (S3) bandwidth cap — to produce end-to-end job
// latency. Because both the baseline and SYMPLE jobs are replayed through
// the same model, the comparison (who wins, by how much, and where reads
// dominate compute) is preserved even though absolute numbers are
// synthetic.
//
// Execution model, deliberately close to stock Hadoop:
//
//  1. Map phase: map tasks are scheduled FIFO onto free core slots. A
//     running task pipelines input reading with computation; it finishes
//     when both its bytes and its CPU seconds are done. IO bandwidth is
//     shared equally among a node's running readers and capped by the
//     remote store when reads are remote.
//  2. Shuffle: starts when the map phase ends (no slow-start overlap);
//     its duration is bounded by the most loaded NIC, egress or ingress.
//  3. Reduce phase: reduce tasks scheduled FIFO onto slots, pure CPU
//     (sort cost is folded into the measured reduce CPU).
//
// Plus a fixed scheduling overhead, dominant on the shared 380-node
// cluster per §6.4.
package dcsim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
)

// NodeSpec describes one machine.
type NodeSpec struct {
	Cores    int
	DiskMBps float64 // local read bandwidth
	NetMBps  float64 // NIC bandwidth, each direction
}

// Cluster describes the modeled datacenter.
type Cluster struct {
	Nodes int
	Node  NodeSpec

	// RemoteReadMBps, when positive, caps each node's input reads (the
	// S3 connection of the EMR experiments). Zero means inputs are on
	// local disk.
	RemoteReadMBps float64

	// RemoteAggMBps, when positive, caps the cluster's aggregate remote
	// read bandwidth.
	RemoteAggMBps float64

	// SchedulingOverheadS is added once per job (shared-cluster queueing,
	// JVM spin-up, etc.).
	SchedulingOverheadS float64

	// StragglerEvery, when positive, marks every k-th task a straggler
	// whose CPU work is multiplied by StragglerSlowdown — the shared-
	// cluster effect that makes reducer fan-out matter (the paper runs
	// 50 reducers "to ensure jobs are not limited by the latency of any
	// one reducer"). Deterministic so simulations are repeatable.
	StragglerEvery    int
	StragglerSlowdown float64

	// CompressMBps and DecompressMBps, when positive, model the CPU cost
	// of block-compressing the shuffle: each map task is charged its
	// logical (pre-encoding) output bytes at CompressMBps, and each
	// reduce task its logical ingress at DecompressMBps, as extra CPU
	// seconds. Zero disables the charge. Set these when replaying a job
	// that ran with Config.CompressShuffle, so the byte savings and the
	// codec cost land in the same simulated latency.
	CompressMBps   float64
	DecompressMBps float64

	// FailEvery, when positive, makes every k-th map task fail once: it
	// runs FailAtFraction of its work, is detected and re-executed from
	// scratch. The failed fraction is wasted CPU; re-reading the input
	// is charged too. Deterministic, like the straggler model.
	FailEvery int
	// FailAtFraction is the progress point where a failing task dies,
	// in (0, 1]. Zero defaults to 0.5.
	FailAtFraction float64
	// RetryDelayS is the failure-detection latency before the retry
	// starts (Hadoop's task-timeout path). With Speculate set it is not
	// charged: a backup launched at the straggler threshold is already
	// running when the original dies.
	RetryDelayS float64
	// Speculate models speculative re-execution. For failed tasks it
	// hides RetryDelayS (a proactively launched backup replaces
	// timeout-based detection). For stragglers it bounds the effective
	// slowdown at specCap — the backup recomputes at normal speed and
	// wins — at the price of the duplicated work, counted in
	// Result.WastedCPUSeconds.
	Speculate bool

	// Trace, when non-nil, receives a synthetic replay of the simulated
	// schedule: a job span covering [0, TotalS] plus one span per
	// map/reduce task at its simulated start/end, all on a nanosecond
	// clock anchored at epoch zero (simulated seconds × 1e9) and tagged
	// sim=1. Emission happens after the simulation completes, so tracing
	// charges zero simulated cost; replayed traces satisfy the same
	// obs.Verifier invariants as live engine traces.
	Trace *obs.Trace
}

// specCap is a speculated straggler's effective slowdown: the backup
// launches once the task has run about one typical duration and redoes
// the work from scratch at normal speed, finishing near 2x nominal.
const specCap = 2.0

// taskCost applies the straggler model to task index i, returning the
// task's effective latency cost, any duplicated (wasted) CPU from a
// speculative backup, and whether a backup launched.
func (c Cluster) taskCost(i int, cpu float64) (eff, dup float64, speculated bool) {
	if c.StragglerEvery > 0 && c.StragglerSlowdown > 1 && i%c.StragglerEvery == c.StragglerEvery-1 {
		if c.Speculate && c.StragglerSlowdown > specCap {
			return cpu * specCap, cpu, true
		}
		return cpu * c.StragglerSlowdown, 0, false
	}
	return cpu, 0, false
}

// mapFails reports whether map task i fails once under the failure
// model.
func (c Cluster) mapFails(i int) bool {
	return c.FailEvery > 0 && i%c.FailEvery == c.FailEvery-1
}

// failFraction returns the clamped FailAtFraction.
func (c Cluster) failFraction() float64 {
	f := c.FailAtFraction
	if f <= 0 || f > 1 {
		return 0.5
	}
	return f
}

// MapTask is one map task's replayed cost.
type MapTask struct {
	InputBytes int64
	CPUSeconds float64
	// OutBytes[r] is the shuffle payload destined to reducer r — the
	// bytes that actually cross the network (compressed when the job
	// compressed its shuffle).
	OutBytes []int64
	// LogicalOutBytes[r] is the pre-encoding payload for reducer r, the
	// volume the (de)compression CPU model charges. Nil falls back to
	// OutBytes.
	LogicalOutBytes []int64
}

// logicalOut returns the logical payload for reducer r.
func (m MapTask) logicalOut(r int) int64 {
	if m.LogicalOutBytes != nil {
		if r < len(m.LogicalOutBytes) {
			return m.LogicalOutBytes[r]
		}
		return 0
	}
	if r < len(m.OutBytes) {
		return m.OutBytes[r]
	}
	return 0
}

// ReduceTask is one reduce task's replayed cost. Its shuffle ingress is
// derived from the map tasks' OutBytes.
type ReduceTask struct {
	CPUSeconds float64
}

// Job is a complete MapReduce job to simulate.
type Job struct {
	Maps    []MapTask
	Reduces []ReduceTask
}

// Result is the simulated outcome.
type Result struct {
	MapPhaseS    float64
	ShuffleS     float64
	ReducePhaseS float64
	TotalS       float64
	CPUSeconds   float64 // total compute consumed (map + reduce)
	ShuffleBytes int64

	// Failure/re-execution accounting. CPUSeconds includes
	// WastedCPUSeconds: work burned by failed attempt fractions and by
	// losing speculative backups, on top of the useful compute.
	Failures         int
	Speculated       int // backup attempts launched (stragglers + failures under Speculate)
	WastedCPUSeconds float64
}

// Simulate runs the job on the cluster.
func Simulate(c Cluster, j Job) (Result, error) {
	if c.Nodes <= 0 || c.Node.Cores <= 0 {
		return Result{}, fmt.Errorf("dcsim: cluster must have nodes and cores")
	}
	if c.Node.DiskMBps <= 0 || c.Node.NetMBps <= 0 {
		return Result{}, fmt.Errorf("dcsim: node bandwidths must be positive")
	}
	var res Result

	// ---- Failure / straggler / speculation adjustment ----
	// Each map task's effective latency cost is computed up front: the
	// straggler multiplier (capped by a speculative backup when enabled),
	// then the failure rework — a failing task burns FailAtFraction of
	// its work, waits out detection (hidden under speculation), and
	// re-runs from scratch, re-reading its input. The fluid simulation
	// below then schedules the adjusted tasks unchanged. Simplification:
	// the detection wait holds the task's slot, which slightly overstates
	// slot pressure on small clusters.
	// Compression is charged as a bandwidth-limited CPU pass over the
	// logical bytes, folded into each task's CPU before the straggler and
	// failure adjustments (a re-executed mapper re-compresses its spill).
	mapCPU := make([]float64, len(j.Maps))
	for i, m := range j.Maps {
		mapCPU[i] = m.CPUSeconds
		if c.CompressMBps > 0 {
			for r := range m.OutBytes {
				mapCPU[i] += float64(m.logicalOut(r)) / (c.CompressMBps * 1e6)
			}
		}
	}
	reduces := j.Reduces
	if c.DecompressMBps > 0 && len(j.Reduces) > 0 {
		reduces = make([]ReduceTask, len(j.Reduces))
		copy(reduces, j.Reduces)
		for _, m := range j.Maps {
			for r := range m.OutBytes {
				if r < len(reduces) {
					reduces[r].CPUSeconds += float64(m.logicalOut(r)) / (c.DecompressMBps * 1e6)
				}
			}
		}
	}

	effMaps := make([]MapTask, len(j.Maps))
	for i, m := range j.Maps {
		eff, dup, spec := c.taskCost(i, mapCPU[i])
		io := float64(m.InputBytes)
		if spec {
			res.Speculated++
		}
		res.WastedCPUSeconds += dup
		if c.mapFails(i) {
			frac := c.failFraction()
			res.Failures++
			res.WastedCPUSeconds += frac * eff
			detect := c.RetryDelayS
			if c.Speculate {
				detect = 0
				res.Speculated++
			}
			eff = frac*eff + detect + eff
			io *= 1 + frac
		}
		effMaps[i] = MapTask{InputBytes: int64(io), CPUSeconds: eff, OutBytes: m.OutBytes}
	}

	// ---- Map phase: fluid simulation with shared IO ----
	mapS, mapIv := simulateMapPhase(c, effMaps)
	res.MapPhaseS = mapS

	// ---- Shuffle ----
	numReducers := len(j.Reduces)
	egress := make([]float64, c.Nodes) // bytes leaving each node
	ingress := make([]float64, c.Nodes)
	var shuffleBytes int64
	for i, m := range j.Maps {
		node := i % c.Nodes
		for r, b := range m.OutBytes {
			if numReducers == 0 {
				break
			}
			rnode := r % c.Nodes
			shuffleBytes += b
			if rnode == node {
				continue // local: no network
			}
			egress[node] += float64(b)
			ingress[rnode] += float64(b)
		}
	}
	res.ShuffleBytes = shuffleBytes
	net := c.Node.NetMBps * 1e6
	var worst float64
	for n := 0; n < c.Nodes; n++ {
		if t := egress[n] / net; t > worst {
			worst = t
		}
		if t := ingress[n] / net; t > worst {
			worst = t
		}
	}
	res.ShuffleS = worst

	// ---- Reduce phase: pure CPU on slots ----
	reduceS, reduceWaste, reduceSpec, redIv := simulateCPUPhase(c, reduces)
	res.ReducePhaseS = reduceS
	res.WastedCPUSeconds += reduceWaste
	res.Speculated += reduceSpec

	// Total compute: the useful work (including the codec passes) plus
	// everything burned on failed attempt fractions and losing backups.
	// Straggler slowdown is lost time, not extra instructions, so it does
	// not inflate CPUSeconds.
	for _, cpu := range mapCPU {
		res.CPUSeconds += cpu
	}
	for _, r := range reduces {
		res.CPUSeconds += r.CPUSeconds
	}
	res.CPUSeconds += res.WastedCPUSeconds
	res.TotalS = c.SchedulingOverheadS + res.MapPhaseS + res.ShuffleS + res.ReducePhaseS
	c.emitSimTrace(j, res, mapIv, redIv)
	return res, nil
}

// interval is one simulated task's lifetime within its phase, in
// seconds relative to the phase start.
type interval struct {
	start, end float64
}

// emitSimTrace replays the simulated schedule as trace spans (see
// Cluster.Trace). Map intervals are offset by the scheduling overhead
// and reduce intervals additionally by the map and shuffle phases, so
// every task span nests inside the job span exactly as a live trace
// would.
func (c Cluster) emitSimTrace(j Job, res Result, mapIv, redIv []interval) {
	tr := c.Trace
	if tr == nil {
		return
	}
	const ns = 1e9
	jobID := tr.NewID()
	tr.EmitRaw(&obs.Span{
		ID: jobID, Kind: obs.KindJob, Name: "dcsim",
		Start: 0, End: int64(res.TotalS * ns),
		Attrs: map[string]int64{
			obs.AttrParallelism:  int64(c.Nodes * c.Node.Cores),
			obs.AttrWireBytes:    res.ShuffleBytes,
			obs.AttrLogicalBytes: res.ShuffleBytes,
		},
		Tags: map[string]string{"sim": "1", "outcome": "ok"},
	})
	mapOff := c.SchedulingOverheadS
	for i, iv := range mapIv {
		tr.EmitRaw(&obs.Span{
			Parent: jobID, Kind: obs.KindMapAttempt, Name: fmt.Sprintf("map-%d", i),
			Start: int64((mapOff + iv.start) * ns), End: int64((mapOff + iv.end) * ns),
			Attrs: map[string]int64{
				obs.AttrTask:    int64(i),
				obs.AttrAttempt: 0,
				obs.AttrBytes:   j.Maps[i].InputBytes,
			},
			Tags: map[string]string{"sim": "1", "outcome": "ok"},
		})
	}
	redOff := mapOff + res.MapPhaseS + res.ShuffleS
	for i, iv := range redIv {
		tr.EmitRaw(&obs.Span{
			Parent: jobID, Kind: obs.KindReduceAttempt, Name: fmt.Sprintf("reduce-%d", i),
			Start: int64((redOff + iv.start) * ns), End: int64((redOff + iv.end) * ns),
			Attrs: map[string]int64{obs.AttrTask: int64(i), obs.AttrAttempt: 0},
			Tags:  map[string]string{"sim": "1", "outcome": "ok"},
		})
	}
}

// runningTask is a map task in flight during the fluid simulation.
type runningTask struct {
	idx    int
	node   int
	start  float64 // schedule time, for the trace replay
	ioRem  float64 // bytes left to read
	cpuRem float64 // seconds left to compute
}

// simulateMapPhase schedules map tasks FIFO onto core slots and advances
// a fluid model where each running task's IO rate is its equal share of
// its node's read bandwidth (and of the aggregate remote cap), and its
// CPU rate is one dedicated core. A task completes when both resources
// are drained (read and compute are pipelined). The returned intervals
// give each task's scheduled lifetime, indexed like maps.
func simulateMapPhase(c Cluster, maps []MapTask) (float64, []interval) {
	iv := make([]interval, len(maps))
	if len(maps) == 0 {
		return 0, iv
	}
	perNodeRead := c.Node.DiskMBps * 1e6
	if c.RemoteReadMBps > 0 {
		perNodeRead = c.RemoteReadMBps * 1e6
	}
	slotsFree := make([]int, c.Nodes)
	for n := range slotsFree {
		slotsFree[n] = c.Node.Cores
	}
	readersOnNode := make([]int, c.Nodes)

	next := 0 // next task to schedule; task i is pinned to node i%Nodes
	var running []runningTask
	now := 0.0

	schedule := func() {
		for next < len(maps) {
			node := next % c.Nodes
			if slotsFree[node] == 0 {
				// FIFO with pinned placement: stop at the first task
				// whose node is busy (input splits live where they
				// live). This models wave-based map execution.
				break
			}
			slotsFree[node]--
			t := runningTask{
				idx:    next,
				node:   node,
				start:  now,
				ioRem:  float64(maps[next].InputBytes),
				cpuRem: maps[next].CPUSeconds, // pre-adjusted by Simulate
			}
			if t.ioRem > 0 {
				readersOnNode[node]++
			}
			running = append(running, t)
			next++
		}
	}
	schedule()

	for len(running) > 0 {
		// Per-task rates under the current task set.
		totalReaders := 0
		for n := range readersOnNode {
			totalReaders += readersOnNode[n]
		}
		aggShare := math.Inf(1)
		if c.RemoteAggMBps > 0 && totalReaders > 0 {
			aggShare = c.RemoteAggMBps * 1e6 / float64(totalReaders)
		}
		rates := make([]float64, len(running))
		dt := math.Inf(1)
		for i := range running {
			t := &running[i]
			rate := 0.0
			if t.ioRem > 0 {
				rate = perNodeRead / float64(readersOnNode[t.node])
				if rate > aggShare {
					rate = aggShare
				}
			}
			rates[i] = rate
			// Completion time under constant rates: both pipes must
			// drain.
			fin := t.cpuRem
			if t.ioRem > 0 {
				if rate == 0 {
					fin = math.Inf(1)
				} else if io := t.ioRem / rate; io > fin {
					fin = io
				}
			}
			if fin < dt {
				dt = fin
			}
		}
		if math.IsInf(dt, 1) || dt < 0 {
			// Cannot happen with positive bandwidths; guard anyway.
			break
		}
		now += dt
		// Advance everyone and retire completed tasks.
		alive := running[:0]
		for i := range running {
			t := running[i]
			if t.ioRem > 0 {
				t.ioRem -= rates[i] * dt
				if t.ioRem <= 1e-9 {
					t.ioRem = 0
					readersOnNode[t.node]--
				}
			}
			t.cpuRem -= dt
			if t.cpuRem <= 1e-9 {
				t.cpuRem = 0
			}
			if t.ioRem == 0 && t.cpuRem == 0 {
				slotsFree[t.node]++
				iv[t.idx] = interval{start: t.start, end: now}
			} else {
				alive = append(alive, t)
			}
		}
		running = alive
		schedule()
	}
	return now, iv
}

// simulateCPUPhase packs pure-CPU tasks onto the cluster's slots (LPT
// list scheduling) and returns the makespan, the duplicated CPU and
// backup count from speculated stragglers, and each task's scheduled
// interval (indexed like tasks).
func simulateCPUPhase(c Cluster, tasks []ReduceTask) (makespan, waste float64, speculated int, iv []interval) {
	iv = make([]interval, len(tasks))
	if len(tasks) == 0 {
		return 0, 0, 0, iv
	}
	slots := c.Nodes * c.Node.Cores
	type job struct {
		idx int
		dur float64
	}
	durs := make([]job, len(tasks))
	for i, t := range tasks {
		eff, dup, spec := c.taskCost(i, t.CPUSeconds)
		durs[i] = job{idx: i, dur: eff}
		waste += dup
		if spec {
			speculated++
		}
	}
	sort.SliceStable(durs, func(a, b int) bool { return durs[a].dur > durs[b].dur })
	if len(durs) < slots {
		slots = len(durs)
	}
	if slots == 0 {
		return 0, waste, speculated, iv
	}
	// Greedy longest-processing-time onto least-loaded slot.
	loads := make([]float64, slots)
	for _, d := range durs {
		min := 0
		for s := 1; s < slots; s++ {
			if loads[s] < loads[min] {
				min = s
			}
		}
		iv[d.idx] = interval{start: loads[min], end: loads[min] + d.dur}
		loads[min] += d.dur
	}
	for _, l := range loads {
		if l > makespan {
			makespan = l
		}
	}
	return makespan, waste, speculated, iv
}
