package dcsim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// simJob generates small random jobs for property checks.
type simJob struct {
	Maps    []MapTask
	Reduces []ReduceTask
}

func (simJob) Generate(r *rand.Rand, _ int) reflect.Value {
	nm := 1 + r.Intn(12)
	nr := 1 + r.Intn(4)
	j := simJob{}
	for i := 0; i < nm; i++ {
		out := make([]int64, nr)
		for k := range out {
			out[k] = int64(r.Intn(1e6))
		}
		j.Maps = append(j.Maps, MapTask{
			InputBytes: int64(r.Intn(1e8)),
			CPUSeconds: r.Float64() * 5,
			OutBytes:   out,
		})
	}
	for i := 0; i < nr; i++ {
		j.Reduces = append(j.Reduces, ReduceTask{CPUSeconds: r.Float64() * 3})
	}
	return reflect.ValueOf(j)
}

// TestQuickSimulationBounds: for any job, the simulated phases respect
// the physical lower bounds (work cannot finish faster than the
// aggregate resources allow) and sane upper bounds (no slot left idle
// while work remains would exceed serial execution).
func TestQuickSimulationBounds(t *testing.T) {
	c := Cluster{Nodes: 3, Node: NodeSpec{Cores: 2, DiskMBps: 100, NetMBps: 100}}
	f := func(j simJob) bool {
		res, err := Simulate(c, Job{Maps: j.Maps, Reduces: j.Reduces})
		if err != nil {
			return false
		}
		// Lower bounds.
		var cpuTotal, ioTotal, maxTaskCPU float64
		for _, m := range j.Maps {
			cpuTotal += m.CPUSeconds
			ioTotal += float64(m.InputBytes)
			if m.CPUSeconds > maxTaskCPU {
				maxTaskCPU = m.CPUSeconds
			}
		}
		slots := float64(c.Nodes * c.Node.Cores)
		lb := cpuTotal / slots
		if v := ioTotal / (float64(c.Nodes) * c.Node.DiskMBps * 1e6); v > lb {
			lb = v
		}
		if maxTaskCPU > lb {
			lb = maxTaskCPU
		}
		if res.MapPhaseS < lb-1e-6 {
			t.Logf("map phase %.4f below lower bound %.4f", res.MapPhaseS, lb)
			return false
		}
		// Upper bound: serial execution of everything on one core and
		// one disk.
		ub := cpuTotal + ioTotal/(c.Node.DiskMBps*1e6) + 1e-6
		if res.MapPhaseS > ub {
			t.Logf("map phase %.4f above serial bound %.4f", res.MapPhaseS, ub)
			return false
		}
		// Reduce phase bounds.
		var redTotal, redMax float64
		for _, r := range j.Reduces {
			redTotal += r.CPUSeconds
			if r.CPUSeconds > redMax {
				redMax = r.CPUSeconds
			}
		}
		if res.ReducePhaseS < redMax-1e-9 || res.ReducePhaseS > redTotal+1e-9 {
			t.Logf("reduce phase %.4f outside [%.4f, %.4f]", res.ReducePhaseS, redMax, redTotal)
			return false
		}
		// Totals compose.
		want := res.MapPhaseS + res.ShuffleS + res.ReducePhaseS + c.SchedulingOverheadS
		if res.TotalS < want-1e-6 || res.TotalS > want+1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickShuffleSymmetry: total shuffle bytes reported equal the sum
// of map OutBytes regardless of placement.
func TestQuickShuffleSymmetry(t *testing.T) {
	c := Cluster{Nodes: 4, Node: NodeSpec{Cores: 2, DiskMBps: 100, NetMBps: 100}}
	f := func(j simJob) bool {
		res, err := Simulate(c, Job{Maps: j.Maps, Reduces: j.Reduces})
		if err != nil {
			return false
		}
		var want int64
		for _, m := range j.Maps {
			for _, b := range m.OutBytes {
				want += b
			}
		}
		return res.ShuffleBytes == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
