package mapreduce

import (
	"slices"
	"strings"
	"sync"
)

// A spillRun is one mapper's sorted output for one reduce partition: the
// in-process analogue of a Hadoop spill file. Runs are immutable once
// handed to the shuffle; their record buffers come from and return to
// kvBufs. A run crosses the map→reduce boundary in encoded segment form
// (segcodec.go): in memory mode seg holds the encoded bytes, under
// Config.SpillDir path references a committed run file. Either way the
// reducer decodes into a pooled record buffer on receipt, after which
// only recs is set.
type spillRun struct {
	recs  []kvRec
	bytes int64  // encoded segment size (wire bytes)
	seg   []byte // encoded segment (memory mode), or nil
	path  string // committed run file (disk-spill mode), or ""

	// Producer identity, carried so the reducer's decode span matches the
	// winning attempt's run_commit event — the trace verifier's
	// run-merged-once invariant joins on (task, attempt, part). Zeroed
	// once runs are folded together (a merged run has no single producer).
	task    int
	attempt int
	part    int
}

// sortRun key-sorts one mapper's partition in place into the shuffle
// order (key, mapperID, recordID, emit order); mapperID is constant
// within a run and never compared here. The comparison (key, recordID,
// seq) is a total order — seq breaks the (key, recordID) ties a
// multi-emitting record can produce — so the unstable pdqsort is safe
// and reproduces emit order exactly. pdqsort beats a stable merge sort
// here twice over: no rotation memmoves, and near-linear behaviour on
// the low-cardinality key sets real groupbys produce.
func sortRun(recs []kvRec) {
	slices.SortFunc(recs, func(a, b kvRec) int {
		if c := strings.Compare(a.key, b.key); c != 0 {
			return c
		}
		switch {
		case a.recordID < b.recordID:
			return -1
		case a.recordID > b.recordID:
			return 1
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		}
		return 0
	})
}

// recLess is the shuffle's total order over records. Records from
// different runs never compare equal: a run holds a single mapper's
// records (pre-merge outputs hold disjoint mapper sets), so ties in
// (key, mapperID, recordID) — possible when one input record emits the
// same key twice — stay within one run, where sort stability preserves
// emit order.
func recLess(x, y *kvRec) bool {
	if x.key != y.key {
		return x.key < y.key
	}
	if x.mapperID != y.mapperID {
		return x.mapperID < y.mapperID
	}
	return x.recordID < y.recordID
}

// loserTree streams the k-way merge of sorted spill runs in recLess
// order. Internal nodes hold the losers of a tournament over the run
// heads; the overall winner is cached, so producing the next record
// replays exactly one leaf-to-root path — ⌈log₂k⌉ comparisons — instead
// of the 2·log₂k a binary heap pays. Leaves are virtual: run i sits at
// tree position i+k, which makes parent arithmetic ((pos)/2) uniform
// for any k, not just powers of two.
type loserTree struct {
	runs   []spillRun
	pos    []int // per-run cursor
	node   []int // node[1..k-1]: losing run index at that match
	winner int
	k      int
}

func newLoserTree(runs []spillRun) *loserTree {
	k := len(runs)
	t := &loserTree{runs: runs, pos: make([]int, k), k: k, winner: -1}
	if k == 0 {
		return t
	}
	t.node = make([]int, k)
	t.winner = t.build(1)
	return t
}

// build plays the tournament for the subtree rooted at node n, filling
// the loser slots, and returns the subtree's winning run index.
func (t *loserTree) build(n int) int {
	if n >= t.k {
		return n - t.k
	}
	w1 := t.build(2 * n)
	w2 := t.build(2*n + 1)
	if t.headLess(w1, w2) {
		t.node[n] = w2
		return w1
	}
	t.node[n] = w1
	return w2
}

// headLess orders runs by their current head record; exhausted runs sort
// last so they lose every match and drop out of the tournament.
func (t *loserTree) headLess(a, b int) bool {
	ea := t.pos[a] >= len(t.runs[a].recs)
	eb := t.pos[b] >= len(t.runs[b].recs)
	if ea || eb {
		return !ea || (eb && a < b)
	}
	return recLess(&t.runs[a].recs[t.pos[a]], &t.runs[b].recs[t.pos[b]])
}

// peek returns the smallest unconsumed record, or nil when the merge is
// done. The pointer is stable until the run buffers are released.
func (t *loserTree) peek() *kvRec {
	w := t.winner
	if w < 0 || t.pos[w] >= len(t.runs[w].recs) {
		return nil
	}
	return &t.runs[w].recs[t.pos[w]]
}

// advance consumes the current winner's head and replays its path to the
// root.
func (t *loserTree) advance() {
	w := t.winner
	t.pos[w]++
	for n := (w + t.k) / 2; n >= 1; n /= 2 {
		if t.headLess(t.node[n], w) {
			w, t.node[n] = t.node[n], w
		}
	}
	t.winner = w
}

// mergeTwo folds two sorted runs into one, returning the inputs' buffers
// to the pool. Used by reducers to compact early-arriving runs while
// later map tasks are still producing.
func mergeTwo(a, b spillRun) spillRun {
	out := kvBufs.get(len(a.recs) + len(b.recs))
	i, j := 0, 0
	for i < len(a.recs) && j < len(b.recs) {
		if recLess(&b.recs[j], &a.recs[i]) {
			out = append(out, b.recs[j])
			j++
		} else {
			out = append(out, a.recs[i])
			i++
		}
	}
	out = append(out, a.recs[i:]...)
	out = append(out, b.recs[j:]...)
	kvBufs.put(a.recs)
	kvBufs.put(b.recs)
	return spillRun{recs: out, bytes: a.bytes + b.bytes}
}

// kvBufs pools record buffers across tasks: map-side spill runs,
// reduce-side pre-merge outputs and external-sort concatenations all
// draw from and return to it, so steady-state shuffles reuse buffers
// instead of allocating per task.
var kvBufs kvBufPool

type kvBufPool struct{ p sync.Pool }

// get returns an empty buffer with capacity at least capHint when the
// pool can satisfy it, falling back to a fresh allocation.
func (kp *kvBufPool) get(capHint int) []kvRec {
	if v := kp.p.Get(); v != nil {
		s := (*v.(*[]kvRec))[:0]
		if cap(s) >= capHint {
			return s
		}
		kp.p.Put(v)
	}
	return make([]kvRec, 0, max(capHint, 64))
}

// put recycles a buffer, clearing it so pooled memory pins no user keys
// or values.
func (kp *kvBufPool) put(s []kvRec) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	clear(s)
	s = s[:0]
	kp.p.Put(&s)
}

// releaseRuns returns every run buffer to the pool.
func releaseRuns(runs []spillRun) {
	for i := range runs {
		kvBufs.put(runs[i].recs)
		runs[i].recs = nil
	}
}
