package mapreduce

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fuzzseed"
	"repro/internal/wire"
)

// colSeedColumnar builds a columnar segment shaped like real dataset
// traffic: an int column with negatives and large jumps (delta stress),
// a low-cardinality dictionary column, a string column, the mandatory
// tail — and ragged rows interleaved at the front, middle, and end.
func colSeedColumnar() (*Columnar, [][]byte) {
	records := [][]byte{
		[]byte("short"), // ragged: too few fields
		[]byte("1000\tpush\talpha\textra\ttail-bytes"),
		[]byte("-5\tdelete\tbeta\t"),
		[]byte("1000000007\tpush\t\t"),
		[]byte("007\tpush\tgamma\t"), // ragged: non-canonical int
		[]byte("0\tmerge\tdelta\t"),
		[]byte("-9223372036854775808\tpush\tepsilon\t"),
		[]byte("x\ty\tz"), // ragged: field 3 missing
	}
	c := &Columnar{Rows: len(records), Cols: []Col{
		{Kind: ColInt}, {Kind: ColDict}, {Kind: ColStr}, {Kind: ColTail},
	}}
	c.Cols[2].Offs = []uint32{0}
	c.Cols[3].Offs = []uint32{0}
	dict := map[string]uint32{}
	for row, rec := range records {
		fields := bytes.SplitN(rec, []byte{'\t'}, 4)
		canonical := func(b []byte) bool {
			if len(b) == 0 || (b[0] == '0' && len(b) > 1) || (len(b) > 1 && b[0] == '-' && b[1] == '0') {
				return false
			}
			for i, ch := range b {
				if ch == '-' && i == 0 {
					continue
				}
				if ch < '0' || ch > '9' {
					return false
				}
			}
			return true
		}
		if len(fields) < 4 || !canonical(fields[0]) {
			c.Ragged = append(c.Ragged, int32(row))
			c.RaggedRecs = append(c.RaggedRecs, rec)
			continue
		}
		var v int64
		neg := fields[0][0] == '-'
		for _, ch := range fields[0] {
			if ch != '-' {
				v = v*10 + int64(ch-'0')
			}
		}
		if neg {
			v = -v
		}
		c.Cols[0].Ints = append(c.Cols[0].Ints, v)
		code, ok := dict[string(fields[1])]
		if !ok {
			code = uint32(len(c.Cols[1].Dict))
			c.Cols[1].Dict = append(c.Cols[1].Dict, string(fields[1]))
			dict[string(fields[1])] = code
		}
		c.Cols[1].Codes = append(c.Cols[1].Codes, code)
		c.Cols[2].Blob = append(c.Cols[2].Blob, fields[2]...)
		c.Cols[2].Offs = append(c.Cols[2].Offs, uint32(len(c.Cols[2].Blob)))
		tail := rec[len(rec)-len(fields[3])-1:] // remainder including its leading tab
		c.Cols[3].Blob = append(c.Cols[3].Blob, tail...)
		c.Cols[3].Offs = append(c.Cols[3].Offs, uint32(len(c.Cols[3].Blob)))
	}
	return c, records
}

// checkSameRecords asserts a Columnar materializes to exactly want.
func checkSameRecords(t *testing.T, label string, c *Columnar, want [][]byte) {
	t.Helper()
	got := c.Materialize(nil)
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("%s: record %d = %q, want %q", label, i, got[i], want[i])
		}
	}
}

func TestColumnarMaterializeIdentity(t *testing.T) {
	c, records := colSeedColumnar()
	checkSameRecords(t, "hand-built", c, records)
	if c.Dense() != len(records)-3 {
		t.Fatalf("dense = %d, want %d", c.Dense(), len(records)-3)
	}
}

func TestColumnarIterResumesMidSegment(t *testing.T) {
	c, records := colSeedColumnar()
	// Starting an iterator at every row must agree with a full scan —
	// the dense/ragged cursor recovery the chunked mappers rely on.
	for lo := 0; lo <= c.Rows; lo++ {
		it := c.Iter(lo, c.Rows)
		for want := lo; want < c.Rows; want++ {
			row, raw, dense, ok := it.Next()
			if !ok || row != want {
				t.Fatalf("iter from %d: stopped at %d (ok=%v), want %d", lo, row, ok, want)
			}
			rec := c.appendRow(nil, raw, dense)
			if !bytes.Equal(rec, records[want]) {
				t.Fatalf("iter from %d row %d: %q, want %q", lo, want, rec, records[want])
			}
		}
		if _, _, _, ok := it.Next(); ok {
			t.Fatalf("iter from %d: yielded past hi", lo)
		}
	}
}

func TestColumnarCodecRoundTrip(t *testing.T) {
	c, records := colSeedColumnar()
	for _, compress := range []bool{false, true} {
		buf := EncodeColumnar(c, compress)
		got, err := DecodeColumnar(buf)
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if got.Rows != c.Rows || got.Dense() != c.Dense() || len(got.Cols) != len(c.Cols) {
			t.Fatalf("compress=%v: shape changed: %d rows %d dense %d cols",
				compress, got.Rows, got.Dense(), len(got.Cols))
		}
		for i := range got.Cols {
			if got.Cols[i].Kind != c.Cols[i].Kind {
				t.Fatalf("compress=%v: column %d kind %d, want %d",
					compress, i, got.Cols[i].Kind, c.Cols[i].Kind)
			}
		}
		checkSameRecords(t, "round trip", got, records)
	}

	// Empty segment: zero rows, no columns.
	for _, compress := range []bool{false, true} {
		got, err := DecodeColumnar(EncodeColumnar(&Columnar{}, compress))
		if err != nil {
			t.Fatalf("empty compress=%v: %v", compress, err)
		}
		if got.Rows != 0 || len(got.Cols) != 0 || len(got.Ragged) != 0 {
			t.Fatalf("empty compress=%v: decoded %+v", compress, got)
		}
	}
}

// colSeedCorpus builds the committed columnar corpus: genuine encoder
// output in both framings plus one seed per corruption class the
// decoder must reject. Names are load-bearing: corrupt-* seeds are
// asserted rejected by TestFuzzSeedColumnarCorpus, valid-* accepted.
func colSeedCorpus() []fuzzseed.Seed {
	c, _ := colSeedColumnar()
	raw := EncodeColumnar(c, false)
	comp := EncodeColumnar(c, true)

	badFlags := append([]byte(nil), raw...)
	badFlags[0] = 0x7C

	// Forged dense row count: header claims more rows than the payload
	// can hold, which must fail before allocation.
	fe := wire.NewEncoder(0)
	fe.Uvarint(1 << 30) // rows
	fe.Uvarint(0)       // ragged
	fe.Uvarint(1)       // one column
	fe.Byte(byte(ColInt))
	forged := append([]byte{colRaw}, fe.Bytes()...)

	// Dictionary code outside the dictionary.
	de := wire.NewEncoder(0)
	de.Uvarint(1) // one row
	de.Uvarint(0) // ragged
	de.Uvarint(1) // one column
	de.Byte(byte(ColDict))
	de.StringDict([]string{"only"})
	de.Varint(7) // code 7 of a 1-entry dictionary
	badDict := append([]byte{colRaw}, de.Bytes()...)

	// Unknown column kind.
	ke := wire.NewEncoder(0)
	ke.Uvarint(1)
	ke.Uvarint(0)
	ke.Uvarint(1)
	ke.Byte(byte(numColKinds) + 3)
	badKind := append([]byte{colRaw}, ke.Bytes()...)

	// Blob lengths out-sizing the blob.
	be := wire.NewEncoder(0)
	be.Uvarint(1)
	be.Uvarint(0)
	be.Uvarint(1)
	be.Byte(byte(ColStr))
	be.Uvarint(3)                   // row claims 3 bytes
	be.BytesField([]byte("xxxxxx")) // blob holds 6
	badBlob := append([]byte{colRaw}, be.Bytes()...)

	// Dense rows with no columns: the shape has nowhere to put the rows
	// (found by the fuzzer — materializing it would loop over a row
	// count backed by zero bytes).
	ne := wire.NewEncoder(0)
	ne.Uvarint(1 << 30) // rows
	ne.Uvarint(0)       // ragged
	ne.Uvarint(0)       // no columns
	noCols := append([]byte{colRaw}, ne.Bytes()...)

	// Ragged row index outside the row range.
	re := wire.NewEncoder(0)
	re.Uvarint(2) // two rows
	re.Uvarint(1) // one ragged
	re.Uvarint(0) // no columns
	re.Uvarint(9) // gap lands past row 1
	re.BytesField([]byte("rec"))
	badRagged := append([]byte{colRaw}, re.Bytes()...)

	// Valid flate frame around a garbage payload.
	ge := wire.NewEncoder(0)
	ge.Byte(colFlate)
	ge.CompressedBlock([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	return []fuzzseed.Seed{
		{Name: "valid-raw.bin", Data: raw},
		{Name: "valid-flate.bin", Data: comp},
		{Name: "valid-empty-raw.bin", Data: EncodeColumnar(&Columnar{}, false)},
		{Name: "valid-empty-flate.bin", Data: EncodeColumnar(&Columnar{}, true)},
		{Name: "corrupt-truncated-raw.bin", Data: raw[:len(raw)/2]},
		{Name: "corrupt-truncated-raw-tail.bin", Data: raw[:len(raw)-1]},
		{Name: "corrupt-truncated-flate.bin", Data: comp[:len(comp)/2]},
		{Name: "corrupt-flags.bin", Data: badFlags},
		{Name: "corrupt-forged-rows.bin", Data: forged},
		{Name: "corrupt-dense-no-columns.bin", Data: noCols},
		{Name: "corrupt-dict-code.bin", Data: badDict},
		{Name: "corrupt-column-kind.bin", Data: badKind},
		{Name: "corrupt-blob-length.bin", Data: badBlob},
		{Name: "corrupt-ragged-row.bin", Data: badRagged},
		{Name: "corrupt-trailing.bin", Data: append(append([]byte(nil), raw...), 0xAA, 0xBB)},
		{Name: "corrupt-flate-garbage-payload.bin", Data: ge.Bytes()},
	}
}

// TestUpdateColumnarFuzzSeeds regenerates the committed corpus when run
// with -update-fuzz-seeds; otherwise it only checks the generator still
// produces every corruption class.
func TestUpdateColumnarFuzzSeeds(t *testing.T) {
	corpus := colSeedCorpus()
	if !*updateFuzzSeeds {
		t.Skipf("generator healthy (%d seeds); pass -update-fuzz-seeds to rewrite testdata/fuzz-seeds/columnar", len(corpus))
	}
	if err := fuzzseed.Update("columnar", corpus); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzSeedColumnarCorpus is the regression net over the committed
// corpus: every corrupt-* seed must be rejected and every valid-* seed
// accepted, independent of how the seed was built.
func TestFuzzSeedColumnarCorpus(t *testing.T) {
	seeds, err := fuzzseed.Load("columnar")
	if err != nil {
		t.Fatal(err)
	}
	var valid, corrupt int
	for _, s := range seeds {
		got, err := DecodeColumnar(s.Data)
		switch {
		case strings.HasPrefix(s.Name, "corrupt-"):
			corrupt++
			if err == nil {
				t.Errorf("%s: corrupt seed accepted (%d rows)", s.Name, got.Rows)
			}
		case strings.HasPrefix(s.Name, "valid-"):
			valid++
			if err != nil {
				t.Errorf("%s: valid seed rejected: %v", s.Name, err)
			}
		default:
			t.Errorf("%s: seed name must start with valid- or corrupt-", s.Name)
		}
	}
	if valid < 2 || corrupt < 9 {
		t.Fatalf("corpus too small: %d valid / %d corrupt seeds", valid, corrupt)
	}
}

// TestDecodeColumnarRejectsCorruption pins truncation behaviour: an
// encoded columnar segment cut at any byte must be rejected — never
// accepted, never a panic.
func TestDecodeColumnarRejectsCorruption(t *testing.T) {
	c, _ := colSeedColumnar()
	for _, compress := range []bool{false, true} {
		buf := EncodeColumnar(c, compress)
		for cut := 0; cut < len(buf); cut++ {
			got, err := DecodeColumnar(buf[:cut])
			if err == nil {
				t.Fatalf("compress=%v: truncation at %d/%d accepted (%d rows)",
					compress, cut, len(buf), got.Rows)
			}
		}
	}
	for _, s := range colSeedCorpus() {
		got, err := DecodeColumnar(s.Data)
		if strings.HasPrefix(s.Name, "corrupt-") && err == nil {
			t.Errorf("%s: accepted (%d rows)", s.Name, got.Rows)
		}
	}
}

// FuzzColumnarDecode feeds DecodeColumnar arbitrary bytes. Malformed
// input must error — never panic, never over-allocate; accepted input
// must survive a re-encode/decode round trip with identical rows
// (decode→encode→decode is a fixpoint on the materialized records).
func FuzzColumnarDecode(f *testing.F) {
	seeds, err := fuzzseed.Load("columnar")
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range seeds {
		f.Add(s.Data)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, in []byte) {
		got, err := DecodeColumnar(in)
		if err != nil {
			return
		}
		want := got.Materialize(nil)
		for _, compress := range []bool{false, true} {
			re := EncodeColumnar(got, compress)
			got2, err := DecodeColumnar(re)
			if err != nil {
				t.Fatalf("compress=%v: re-decode of re-encoded columnar failed: %v", compress, err)
			}
			if got2.Rows != got.Rows || got2.Dense() != got.Dense() {
				t.Fatalf("compress=%v: round trip changed shape: %d/%d rows %d/%d dense",
					compress, got2.Rows, got.Rows, got2.Dense(), got.Dense())
			}
			again := got2.Materialize(nil)
			if len(again) != len(want) {
				t.Fatalf("compress=%v: round trip changed row count: %d vs %d", compress, len(again), len(want))
			}
			for i := range want {
				if !bytes.Equal(again[i], want[i]) {
					t.Fatalf("compress=%v: round trip changed row %d: %q vs %q", compress, i, again[i], want[i])
				}
			}
		}
	})
}
