// Package mapreduce is an in-process Hadoop-style execution engine:
// parallel map tasks over ordered input segments, a hash-partitioned
// streaming shuffle built from sorted spill runs, and parallel reduce
// tasks over per-key groups.
//
// It reproduces the substrate SYMPLE runs on (paper §5.4). Two details
// matter for the reproduction and are modeled faithfully:
//
//   - Ordering. MapReduce treats a group's records as a set, but SYMPLE
//     needs the original input order, so every shuffled record carries the
//     (mapperID, recordID) pair and the shuffle sorts each group
//     lexicographically by it — the paper's triple (mapper_id, record_id,
//     R).
//   - Accounting. The shuffle counts the exact wire bytes crossing the
//     map→reduce boundary, the quantity behind the paper's Figures 6
//     and 8, and per-task wall/CPU costs that the cluster simulator
//     replays at datacenter scale.
//
// The shuffle itself follows Hadoop's design rather than a barrier-style
// concatenate-and-resort: each map task sorts its per-reducer output
// locally and hands off an immutable sorted spill run; reduce tasks
// receive runs over per-partition channels as mappers finish — folding
// early arrivals together while later maps still run — and k-way merge
// them with a loser tree, streaming each key group to the reduce
// function through a reusable buffer. See runmerge.go and pipeline.go.
// The pre-streaming engine is retained behind Config.BarrierShuffle as
// the equivalence oracle and benchmark baseline (barrier.go).
package mapreduce

import (
	"context"
	"runtime"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Segment is one ordered slice of the input, as stored in one distributed
// file chunk. Segment IDs order the global input: the concatenation of
// segments by ID is the full dataset.
type Segment struct {
	ID      int
	Records [][]byte
	// Columns, when non-nil, is the columnar form of Records (same rows,
	// same order; Columns.Materialize reproduces Records byte for byte).
	// Records stays authoritative — consumers that understand columns
	// read them, everything else keeps working off the record slice.
	Columns *Columnar
}

// Bytes returns the total payload size of the segment.
func (s *Segment) Bytes() int64 {
	var n int64
	for _, r := range s.Records {
		n += int64(len(r))
	}
	return n
}

// Emit sends one keyed record from a mapper into the shuffle. recordID
// is the record's position within the mapper's segment; the shuffle
// orders each group by (mapperID, recordID), so reducers see input
// order within a group regardless of the order of Emit calls —
// monotonicity across calls is not required.
type Emit func(key string, recordID int64, value []byte)

// MapFunc processes one input segment. mapperID is the segment's ID.
type MapFunc func(mapperID int, seg *Segment, emit Emit) error

// Shuffled is one record delivered to a reducer, already ordered within
// its group by (MapperID, RecordID).
type Shuffled struct {
	MapperID int
	RecordID int64
	Value    []byte
}

// ReduceFunc processes one key group. The values slice is a buffer the
// engine reuses between groups: it is valid only for the duration of
// the call and must not be retained (the Value payloads themselves are
// stable). When Config.MaxAttempts allows retries, a failed reduce
// attempt is re-executed over the same committed runs and Reduce is
// re-invoked for every group, so its side effects must be idempotent
// per key (e.g. overwriting a keyed result, as all in-tree engines do).
type ReduceFunc func(reducerID int, key string, values []Shuffled) error

// Config configures a job.
type Config struct {
	// NumReducers is the reduce-task count. Default 1.
	NumReducers int
	// Parallelism caps concurrently running tasks. Default GOMAXPROCS.
	Parallelism int
	// ExternalSort pipes each reduce partition through the system sort
	// binary, reproducing the paper's §6.2 single-machine baseline that
	// shuffles mapper output through Unix sort. Falls back to the
	// in-process sort when no sort binary is available.
	ExternalSort bool
	// BarrierShuffle selects the pre-streaming reference engine: all map
	// output is materialized behind a global map barrier, concatenated,
	// and fully re-sorted per partition, with a freshly allocated group
	// slice per key. Kept as the equivalence oracle for the streaming
	// shuffle and as the benchmark baseline; not intended for production
	// runs. The barrier engine predates the task lifecycle and ignores
	// the fault-tolerance knobs below.
	BarrierShuffle bool
	// CompressShuffle flate-compresses every shuffle segment (spill-run
	// files and in-memory runs alike) at the map side; reducers inflate
	// segments as they collect them. Metrics.ShuffleBytes then counts
	// the compressed wire bytes while ShuffleLogicalBytes keeps the
	// uncompressed logical volume. The barrier oracle ignores this knob
	// (it predates segment encoding).
	CompressShuffle bool

	// MaxAttempts is the per-task attempt budget: a failed map or reduce
	// attempt is retried with capped exponential backoff until it
	// succeeds or the budget is exhausted, after which the job fails
	// with the task errors aggregated into one multi-error. Default 1
	// (no retries — the pre-lifecycle behavior).
	MaxAttempts int
	// RetryBackoff is the delay before a task's second attempt; it
	// doubles per further attempt, capped at MaxRetryBackoff. Defaults:
	// 1ms base, 50ms cap — in-process tasks are sub-second, so the
	// backoff curve is scaled to match.
	RetryBackoff    time.Duration
	MaxRetryBackoff time.Duration
	// Speculation enables backup attempts for straggler map tasks: once
	// at least half the map tasks have committed, any task still running
	// after SpeculationMultiple times the median committed duration gets
	// one speculative re-execution racing the original; the first
	// attempt to commit wins and the loser's output is discarded.
	// Requires Map to be deterministic over its segment (all in-tree
	// engines are) for the winner's identity not to matter.
	Speculation bool
	// SpeculationMultiple is the straggler threshold multiplier.
	// Default 3.
	SpeculationMultiple float64
	// SpillDir, when set, makes every map attempt write its sorted spill
	// runs to disk under this directory and commit them by atomically
	// renaming the attempt's temp dir — the durable variant of the
	// first-finisher-wins protocol. Reducers then read runs only from
	// committed task directories. Empty (the default) keeps runs in
	// memory, with a per-task CAS as the commit arbiter.
	SpillDir string
	// Faults injects deterministic seeded faults at task boundaries for
	// chaos testing. nil (the default) injects nothing and costs one nil
	// check per boundary.
	Faults *FaultPlan

	// Transport carries committed map-output runs to reduce partitions
	// (transport.go). nil (the default) uses the in-process
	// memTransport, which reproduces the pre-transport channel behavior
	// exactly. The barrier oracle predates the transport seam and
	// ignores it.
	Transport Transport
	// RemoteMap, when set, executes every map attempt's body out of
	// process through the given RemoteMapper (remote.go) while the
	// local task lifecycle — retries, speculation, first-finisher-wins
	// commit — stays in charge. Incompatible with SpillDir,
	// ExternalSort, and Faults (see validateRemote).
	RemoteMap RemoteMapper
	// RemoteReduce, when set alongside RemoteMap, keeps shuffle data off
	// the coordinator entirely: map workers stream runs directly to each
	// partition's owning worker, the coordinator's transport carries only
	// byte-counted run receipts (Run with nil Seg), and the k-way merge
	// plus any registered group combiner run on the owner. The reduce
	// task lifecycle — retries, backoff, the reduce commit span — stays
	// coordinator-side; only the attempt body moves. Requires RemoteMap.
	RemoteReduce RemoteReducer

	// Trace, when set, emits structured spans for the job and every task
	// attempt, commit, spill-run decode, and merge to the trace's sink
	// (see internal/obs). nil (the default) costs one nil check per span
	// site. Spans are per task / per segment / per group, never per
	// record.
	Trace *obs.Trace
	// Registry, when set, receives the job's typed metrics merged in
	// after the run. The engine always instruments a fresh private
	// registry per job — the legacy Metrics struct is derived from it —
	// so cross-job aggregation happens only when the caller asks.
	Registry *obs.Registry
	// Profile, when set, writes a CPU profile covering the job to this
	// path. Skipped quietly if another profile is already active.
	Profile string
}

func (c Config) withDefaults() Config {
	if c.NumReducers <= 0 {
		c.NumReducers = 1
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = time.Millisecond
	}
	if c.MaxRetryBackoff <= 0 {
		c.MaxRetryBackoff = 50 * time.Millisecond
	}
	if c.SpeculationMultiple <= 1 {
		c.SpeculationMultiple = 3
	}
	return c
}

// TaskMetrics records one task's cost, replayed by the cluster simulator.
// For reduce tasks under the streaming shuffle, Duration counts active
// work (run folding, merging, reducing), not time spent waiting for map
// output to arrive.
type TaskMetrics struct {
	Duration   time.Duration
	InputBytes int64
	// Records counts the task's input: segment records for map tasks,
	// key groups for reduce tasks. Combined with Duration it yields the
	// per-task records/sec the symexec experiment reports.
	Records int64
	// OutBytes is, for map tasks, the wire bytes destined to each
	// reducer — the encoded (and, under CompressShuffle, compressed)
	// segment sizes actually shipped; for reduce tasks it is nil.
	OutBytes []int64
	// LogicalOutBytes is, for map tasks, the per-reducer logical volume:
	// the records' legacy Hadoop-style framing before dictionary/delta
	// encoding and compression. The cluster simulator charges
	// (de)compression CPU against this and transfer time against
	// OutBytes. Nil for reduce tasks.
	LogicalOutBytes []int64
}

// Registry instrument names the streaming engine populates. The engine
// observes into a fresh per-job obs.Registry at the instrumentation
// sites; Metrics is derived from it after the run, and the whole
// registry merges into Config.Registry when set.
const (
	MetricMapAttempts    = "map_attempts"
	MetricReduceAttempts = "reduce_attempts"
	MetricTaskRetries    = "task_retries"
	MetricSpecTasks      = "speculative_tasks"
	MetricSpecWins       = "speculative_wins"
	MetricShuffleBytes   = "shuffle_bytes"
	MetricShuffleLogical = "shuffle_logical_bytes"
	MetricShuffleRecords = "shuffle_records"
	MetricInputBytes     = "input_bytes"
	MetricInputRecords   = "input_records"
	MetricGroups         = "groups"
	MetricMapTaskNS      = "map_task_ns"    // histogram: committed map attempt durations
	MetricReduceTaskNS   = "reduce_task_ns" // histogram: reduce attempt durations
	MetricRunBytes       = "run_bytes"      // histogram: committed spill-run wire sizes
	MetricGroupValues    = "group_values"   // histogram: records per reduced key group
)

// Metrics aggregates a job run. Under the streaming engine it is a
// derived view over the job's obs.Registry (see the Metric* names); the
// struct is kept because the simulator, benchmarks, and tests consume
// it as a typed snapshot.
type Metrics struct {
	InputBytes   int64
	InputRecords int64
	// ShuffleBytes counts the bytes actually crossing the map→reduce
	// boundary: the sum of encoded segment sizes, compressed when
	// Config.CompressShuffle is set. Derived from encoder output, never
	// estimated.
	ShuffleBytes int64
	// ShuffleLogicalBytes is the same traffic in the legacy per-record
	// framing (length-prefixed key and value plus the ordering pair) — the
	// quantity a stock Hadoop shuffle would move, and the baseline the
	// wire experiment's reduction ratios divide by. Equal to ShuffleBytes
	// under the barrier oracle, which still ships that framing.
	ShuffleLogicalBytes int64
	ShuffleRecords      int64
	MapWall             time.Duration
	ReduceWall          time.Duration
	TotalWall           time.Duration
	MapCPU              time.Duration // summed task durations
	ReduceCPU           time.Duration
	MapTasks            []TaskMetrics
	ReduceTasks         []TaskMetrics
	Groups              int64

	// Task-lifecycle counters (streaming engine). On a clean run with
	// MaxAttempts 1 and no speculation: MapAttempts == map task count,
	// ReduceAttempts == reduce task count, and the rest are zero.
	MapAttempts      int64
	ReduceAttempts   int64
	TaskRetries      int64 // backoff retries, map and reduce
	SpeculativeTasks int64 // backup attempts launched
	SpeculativeWins  int64 // backup attempts that committed first
}

// kvRec is a shuffled record inside the engine. seq is the record's
// emit sequence number within its map task; it totalizes the spill-sort
// order — (key, recordID) can tie when one input record emits the same
// key twice — so the sort can be unstable yet reproduce emit order
// exactly. It is engine-internal and costs nothing on the wire.
type kvRec struct {
	key      string
	mapperID int
	recordID int64
	seq      int64
	value    []byte
}

// wireSize is the record's logical cost: the framing a Hadoop
// intermediate file would use (length-prefixed key and value plus the
// ordering pair as varints). Since the segment codec (segcodec.go) this
// is no longer what ships — it defines Metrics.ShuffleLogicalBytes, the
// uncompressed baseline the wire experiment compares against, and it is
// still the exact wire size of the barrier oracle's shuffle (pinned by
// TestWireSizeMatchesEncoder). Computed arithmetically — this runs once
// per emitted record, so it must not touch an encoder.
func (r *kvRec) wireSize() int64 {
	return int64(wire.UvarintLen(uint64(len(r.key))) +
		wire.UvarintLen(uint64(r.mapperID)) +
		wire.UvarintLen(uint64(r.recordID)) +
		wire.UvarintLen(uint64(len(r.value))) +
		len(r.key) + len(r.value))
}

// Job is one configured MapReduce execution.
type Job struct {
	Name   string
	Map    MapFunc
	Reduce ReduceFunc
	Conf   Config
}

// Run executes the job over the input segments and returns its metrics.
func (j *Job) Run(segments []*Segment) (*Metrics, error) {
	return j.RunContext(context.Background(), segments)
}

// RunContext is Run with cancellation: when ctx is cancelled, the
// streaming engine stops launching attempts, wakes any attempt sleeping
// in a backoff or injected delay, drains its task goroutines, and
// returns ctx's error. A user Map or Reduce call already in flight runs
// to completion first (the engine cannot preempt user code). The
// barrier engine checks ctx only on entry.
func (j *Job) RunContext(ctx context.Context, segments []*Segment) (*Metrics, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	conf := j.Conf.withDefaults()
	if conf.Profile != "" {
		stop, err := obs.CPUProfile(conf.Profile)
		if err != nil {
			return nil, err
		}
		defer stop()
	}
	if conf.BarrierShuffle {
		return j.runBarrier(conf, segments)
	}
	return j.runStreaming(ctx, conf, segments)
}

// partition assigns a key to a reducer by FNV-1a hash, Hadoop's default
// strategy modulo the hash function. The hash is inlined over the string
// — no hasher allocation, no []byte copy of the key — and matches
// hash/fnv bit for bit (pinned by TestPartitionMatchesFNV).
func partition(key string, n int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(n))
}
