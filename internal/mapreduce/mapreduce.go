// Package mapreduce is an in-process Hadoop-style execution engine:
// parallel map tasks over ordered input segments, a hash-partitioned
// sort-based shuffle, and parallel reduce tasks over per-key groups.
//
// It reproduces the substrate SYMPLE runs on (paper §5.4). Two details
// matter for the reproduction and are modeled faithfully:
//
//   - Ordering. MapReduce treats a group's records as a set, but SYMPLE
//     needs the original input order, so every shuffled record carries the
//     (mapperID, recordID) pair and the shuffle sorts each group
//     lexicographically by it — the paper's triple (mapper_id, record_id,
//     R).
//   - Accounting. The shuffle counts the exact wire bytes crossing the
//     map→reduce boundary, the quantity behind the paper's Figures 6
//     and 8, and per-task wall/CPU costs that the cluster simulator
//     replays at datacenter scale.
package mapreduce

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"repro/internal/wire"
)

// Segment is one ordered slice of the input, as stored in one distributed
// file chunk. Segment IDs order the global input: the concatenation of
// segments by ID is the full dataset.
type Segment struct {
	ID      int
	Records [][]byte
}

// Bytes returns the total payload size of the segment.
func (s *Segment) Bytes() int64 {
	var n int64
	for _, r := range s.Records {
		n += int64(len(r))
	}
	return n
}

// Emit sends one keyed record from a mapper into the shuffle. recordID
// must be the record's position within the mapper's segment so the
// reducer can restore input order within each group.
type Emit func(key string, recordID int64, value []byte)

// MapFunc processes one input segment. mapperID is the segment's ID.
type MapFunc func(mapperID int, seg *Segment, emit Emit) error

// Shuffled is one record delivered to a reducer, already ordered within
// its group by (MapperID, RecordID).
type Shuffled struct {
	MapperID int
	RecordID int64
	Value    []byte
}

// ReduceFunc processes one key group.
type ReduceFunc func(reducerID int, key string, values []Shuffled) error

// Config configures a job.
type Config struct {
	// NumReducers is the reduce-task count. Default 1.
	NumReducers int
	// Parallelism caps concurrently running tasks. Default GOMAXPROCS.
	Parallelism int
	// ExternalSort pipes each reduce partition through the system sort
	// binary, reproducing the paper's §6.2 single-machine baseline that
	// shuffles mapper output through Unix sort. Falls back to the
	// in-process sort when no sort binary is available.
	ExternalSort bool
}

func (c Config) withDefaults() Config {
	if c.NumReducers <= 0 {
		c.NumReducers = 1
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// TaskMetrics records one task's cost, replayed by the cluster simulator.
type TaskMetrics struct {
	Duration   time.Duration
	InputBytes int64
	// OutBytes is, for map tasks, the wire bytes destined to each
	// reducer; for reduce tasks it is nil.
	OutBytes []int64
}

// Metrics aggregates a job run.
type Metrics struct {
	InputBytes     int64
	InputRecords   int64
	ShuffleBytes   int64
	ShuffleRecords int64
	MapWall        time.Duration
	ReduceWall     time.Duration
	TotalWall      time.Duration
	MapCPU         time.Duration // summed task durations
	ReduceCPU      time.Duration
	MapTasks       []TaskMetrics
	ReduceTasks    []TaskMetrics
	Groups         int64
}

// kvRec is a shuffled record inside the engine.
type kvRec struct {
	key      string
	mapperID int
	recordID int64
	value    []byte
}

// wireSize is the record's cost on the wire: the same framing a Hadoop
// intermediate file would use (length-prefixed key and value plus the
// ordering pair as varints).
func (r *kvRec) wireSize() int64 {
	e := wire.NewEncoder(0)
	e.Uvarint(uint64(len(r.key)))
	e.Uvarint(uint64(r.mapperID))
	e.Uvarint(uint64(r.recordID))
	e.Uvarint(uint64(len(r.value)))
	return int64(e.Len()) + int64(len(r.key)) + int64(len(r.value))
}

// Job is one configured MapReduce execution.
type Job struct {
	Name   string
	Map    MapFunc
	Reduce ReduceFunc
	Conf   Config
}

// Run executes the job over the input segments and returns its metrics.
func (j *Job) Run(segments []*Segment) (*Metrics, error) {
	conf := j.Conf.withDefaults()
	m := &Metrics{}
	start := time.Now()

	// ---- Map phase ----
	mapStart := time.Now()
	type mapOut struct {
		parts [][]kvRec
		task  TaskMetrics
		err   error
	}
	outs := make([]mapOut, len(segments))
	sem := make(chan struct{}, conf.Parallelism)
	var wg sync.WaitGroup
	for i, seg := range segments {
		wg.Add(1)
		go func(i int, seg *Segment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			parts := make([][]kvRec, conf.NumReducers)
			outBytes := make([]int64, conf.NumReducers)
			emit := func(key string, recordID int64, value []byte) {
				rec := kvRec{key: key, mapperID: seg.ID, recordID: recordID, value: value}
				p := partition(key, conf.NumReducers)
				parts[p] = append(parts[p], rec)
				outBytes[p] += rec.wireSize()
			}
			err := j.Map(seg.ID, seg, emit)
			outs[i] = mapOut{
				parts: parts,
				task: TaskMetrics{
					Duration:   time.Since(t0),
					InputBytes: seg.Bytes(),
					OutBytes:   outBytes,
				},
				err: err,
			}
		}(i, seg)
	}
	wg.Wait()
	for i, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("mapreduce %q: map task %d: %w", j.Name, segments[i].ID, o.err)
		}
		m.MapTasks = append(m.MapTasks, o.task)
		m.MapCPU += o.task.Duration
		m.InputBytes += o.task.InputBytes
		m.InputRecords += int64(len(segments[i].Records))
	}
	m.MapWall = time.Since(mapStart)

	// ---- Shuffle: partition, count, sort ----
	partitions := make([][]kvRec, conf.NumReducers)
	for _, o := range outs {
		for p := range o.parts {
			partitions[p] = append(partitions[p], o.parts[p]...)
		}
		for p, b := range o.task.OutBytes {
			_ = p
			m.ShuffleBytes += b
		}
	}
	for p := range partitions {
		m.ShuffleRecords += int64(len(partitions[p]))
	}

	// ---- Reduce phase ----
	reduceStart := time.Now()
	redErrs := make([]error, conf.NumReducers)
	redTasks := make([]TaskMetrics, conf.NumReducers)
	groupCounts := make([]int64, conf.NumReducers)
	var rwg sync.WaitGroup
	for p := 0; p < conf.NumReducers; p++ {
		rwg.Add(1)
		go func(p int) {
			defer rwg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			part := partitions[p]
			// The merge/sort of the partition is reducer work in Hadoop
			// and is attributed to the reduce task here too: its cost on
			// full-data shuffles is part of what SYMPLE's tiny summaries
			// avoid.
			if conf.ExternalSort && externalSortAvailable() {
				part = externalSort(part)
			} else {
				sortPartition(part)
			}
			var inBytes int64
			for i := range part {
				inBytes += part[i].wireSize()
			}
			for lo := 0; lo < len(part); {
				hi := lo + 1
				for hi < len(part) && part[hi].key == part[lo].key {
					hi++
				}
				group := make([]Shuffled, hi-lo)
				for i := lo; i < hi; i++ {
					group[i-lo] = Shuffled{
						MapperID: part[i].mapperID,
						RecordID: part[i].recordID,
						Value:    part[i].value,
					}
				}
				groupCounts[p]++
				if err := j.Reduce(p, part[lo].key, group); err != nil {
					redErrs[p] = fmt.Errorf("mapreduce %q: reduce task %d key %q: %w",
						j.Name, p, part[lo].key, err)
					return
				}
				lo = hi
			}
			redTasks[p] = TaskMetrics{Duration: time.Since(t0), InputBytes: inBytes}
		}(p)
	}
	rwg.Wait()
	for _, err := range redErrs {
		if err != nil {
			return nil, err
		}
	}
	for p := range redTasks {
		m.ReduceTasks = append(m.ReduceTasks, redTasks[p])
		m.ReduceCPU += redTasks[p].Duration
		m.Groups += groupCounts[p]
	}
	m.ReduceWall = time.Since(reduceStart)
	m.TotalWall = time.Since(start)
	return m, nil
}

// partition assigns a key to a reducer by FNV-1a hash, Hadoop's default
// strategy modulo the hash function.
func partition(key string, n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}
