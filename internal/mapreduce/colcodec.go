package mapreduce

import (
	"fmt"
	"math"

	"repro/internal/wire"
)

// Columnar segment codec: the wire form of a Columnar, using the same
// framing discipline as the shuffle segment codec (segcodec.go) so map
// tasks can ship columns with the machinery that already ships summary
// runs:
//
//	flags byte             colRaw | colFlate
//	[flate frame]          only under colFlate (wire.CompressedBlock)
//	payload:
//	  uvarint rows
//	  uvarint raggedCount          dense = rows − raggedCount
//	  uvarint ncols
//	  per column:
//	    byte kind
//	    ColInt:          dense × varint Δ value (zig-zag delta)
//	    ColDict:         string dictionary (wire.StringDict),
//	                     dense × varint Δ code
//	    ColStr/ColTail:  dense × uvarint length, bytes blob
//	  per ragged row:
//	    uvarint row gap            strictly ascending row indexes
//	    bytes  record
//
// Like the segment codec, malformed input — bad flags, forged counts,
// out-of-range dictionary codes, truncation anywhere — returns an error
// wrapping wire.ErrCorrupt; it never panics.
const (
	colRaw   = 0x01
	colFlate = 0x02
)

// maxColumnarCols bounds the column-count claim of a corrupt header; no
// dataset plan comes near it.
const maxColumnarCols = 64

// EncodeColumnar encodes one columnar segment into a fresh buffer.
func EncodeColumnar(c *Columnar, compress bool) []byte {
	pe := wire.GetEncoder()
	defer wire.PutEncoder(pe)
	dense := c.Dense()
	pe.Uvarint(uint64(c.Rows))
	pe.Uvarint(uint64(len(c.Ragged)))
	pe.Uvarint(uint64(len(c.Cols)))
	for i := range c.Cols {
		col := &c.Cols[i]
		pe.Byte(byte(col.Kind))
		switch col.Kind {
		case ColInt:
			var prev int64
			for _, v := range col.Ints {
				pe.Varint(int64(uint64(v) - uint64(prev)))
				prev = v
			}
		case ColDict:
			pe.StringDict(col.Dict)
			var prev int64
			for _, code := range col.Codes {
				pe.Varint(int64(code) - prev)
				prev = int64(code)
			}
		case ColStr, ColTail:
			for d := 0; d < dense; d++ {
				pe.Uvarint(uint64(len(col.Str(d))))
			}
			pe.BytesField(col.Blob[:col.Offs[dense]])
		default:
			panic(fmt.Sprintf("mapreduce: encode columnar: bad column kind %d", col.Kind))
		}
	}
	prevRow := -1
	for i, row := range c.Ragged {
		pe.Uvarint(uint64(int(row) - prevRow - 1))
		pe.BytesField(c.RaggedRecs[i])
		prevRow = int(row)
	}

	if !compress {
		out := make([]byte, 1+pe.Len())
		out[0] = colRaw
		copy(out[1:], pe.Bytes())
		return out
	}
	oe := wire.GetEncoder()
	oe.Byte(colFlate)
	oe.CompressedBlock(pe.Bytes())
	out := make([]byte, oe.Len())
	copy(out, oe.Bytes())
	wire.PutEncoder(oe)
	return out
}

// DecodeColumnar decodes a columnar segment. Blobs and ragged records
// alias the payload (for compressed input, the freshly inflated buffer),
// which the returned Columnar keeps alive.
func DecodeColumnar(buf []byte) (*Columnar, error) {
	d := wire.NewDecoder(buf)
	var payload []byte
	switch flags := d.Byte(); flags {
	case colRaw:
		payload = buf[1:]
	case colFlate:
		p, err := d.CompressedBlock()
		if err != nil {
			return nil, fmt.Errorf("mapreduce: columnar: %w", err)
		}
		if d.Remaining() != 0 {
			return nil, fmt.Errorf("%w: %d bytes after compressed columnar frame",
				wire.ErrCorrupt, d.Remaining())
		}
		payload = p
	default:
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("mapreduce: columnar: %w", err)
		}
		return nil, fmt.Errorf("%w: unknown columnar flags %#x", wire.ErrCorrupt, flags)
	}

	d = wire.NewDecoder(payload)
	rows := d.Length(math.MaxInt32)
	ragged := d.Length(rows)
	ncols := d.Length(maxColumnarCols)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: columnar header: %w", err)
	}
	dense := rows - ragged
	// A dense row is typed column entries by definition, so it needs at
	// least one column (real plans always carry the tail), and it costs
	// at least one payload byte in every column representation. Both
	// checks run before the typed vectors (up to 8 bytes per entry) are
	// allocated, so a forged row count cannot over-allocate — or hand a
	// consumer a shape whose materialization is unbounded.
	if dense > 0 && ncols == 0 {
		return nil, fmt.Errorf("%w: columnar claims %d dense rows with no columns",
			wire.ErrCorrupt, dense)
	}
	if ncols > 0 && dense > d.Remaining() {
		return nil, fmt.Errorf("%w: columnar claims %d dense rows with %d bytes left",
			wire.ErrCorrupt, dense, d.Remaining())
	}
	c := &Columnar{Rows: rows, Cols: make([]Col, ncols)}
	for ci := 0; ci < ncols; ci++ {
		col := &c.Cols[ci]
		kind := d.Byte()
		if d.Err() == nil && ColKind(kind) >= numColKinds {
			return nil, fmt.Errorf("%w: unknown column kind %d", wire.ErrCorrupt, kind)
		}
		col.Kind = ColKind(kind)
		switch col.Kind {
		case ColInt:
			col.Ints = make([]int64, 0, min(dense, d.Remaining()))
			var cur int64
			for r := 0; r < dense && d.Err() == nil; r++ {
				cur = int64(uint64(cur) + uint64(d.Varint()))
				col.Ints = append(col.Ints, cur)
			}
		case ColDict:
			col.Dict = d.StringDict(dense + 1)
			col.Codes = make([]uint32, 0, min(dense, d.Remaining()))
			var cur int64
			for r := 0; r < dense; r++ {
				cur += d.Varint()
				if d.Err() != nil {
					break
				}
				if cur < 0 || cur >= int64(len(col.Dict)) {
					return nil, fmt.Errorf("%w: columnar dict code %d outside dictionary of %d",
						wire.ErrCorrupt, cur, len(col.Dict))
				}
				col.Codes = append(col.Codes, uint32(cur))
			}
		case ColStr, ColTail:
			col.Offs = make([]uint32, 1, min(dense, d.Remaining())+1)
			var total uint64
			for r := 0; r < dense && d.Err() == nil; r++ {
				total += d.Uvarint()
				if total > uint64(d.Remaining()) {
					return nil, fmt.Errorf("%w: columnar blob lengths claim %d of %d bytes",
						wire.ErrCorrupt, total, d.Remaining())
				}
				col.Offs = append(col.Offs, uint32(total))
			}
			col.Blob = d.BytesField()
			if d.Err() == nil && uint64(len(col.Blob)) != total {
				return nil, fmt.Errorf("%w: columnar blob is %d bytes, lengths sum to %d",
					wire.ErrCorrupt, len(col.Blob), total)
			}
		}
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("mapreduce: columnar column %d: %w", ci, err)
		}
	}
	if ragged > 0 {
		c.Ragged = make([]int32, 0, min(ragged, d.Remaining()))
		c.RaggedRecs = make([][]byte, 0, min(ragged, d.Remaining()))
		prevRow := -1
		for i := 0; i < ragged; i++ {
			gap := d.Uvarint()
			rec := d.BytesField()
			if d.Err() != nil {
				break
			}
			if gap >= uint64(rows) || prevRow+1+int(gap) >= rows {
				return nil, fmt.Errorf("%w: ragged row gap %d outside %d rows",
					wire.ErrCorrupt, gap, rows)
			}
			row := prevRow + 1 + int(gap)
			c.Ragged = append(c.Ragged, int32(row))
			c.RaggedRecs = append(c.RaggedRecs, rec)
			prevRow = row
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: columnar: %w", err)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after columnar segment",
			wire.ErrCorrupt, d.Remaining())
	}
	return c, nil
}
