package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Task lifecycle: every map and reduce task runs as a sequence of
// numbered attempts. A failed attempt is retried with capped exponential
// backoff up to Config.MaxAttempts; straggling map tasks additionally
// get one speculative backup attempt (Config.Speculation) racing the
// original, first finisher wins. An attempt's output becomes visible to
// reducers only when the attempt commits — a single CompareAndSwap per
// task in memory mode, an atomic directory rename in spill mode — so a
// losing or dying attempt's runs are never merged. This is safe for the
// same reason the paper's summaries parallelize at all: a map attempt is
// a deterministic recomputation over its segment, and reducers compose
// whatever committed in (mapperID, recordID) order (§5.4).

// speculationTick is the straggler watchdog's poll interval. It bounds
// how quickly a backup attempt can launch; at in-process task durations
// a sub-millisecond tick keeps speculation responsive without cost.
const speculationTick = 500 * time.Microsecond

// sleepCtx sleeps for d unless ctx is cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoffDelay returns the capped exponential delay before the given
// retry (attempt ≥ 1 of the driver's budget).
func backoffDelay(conf Config, retry int) time.Duration {
	d := conf.RetryBackoff
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= conf.MaxRetryBackoff {
			return conf.MaxRetryBackoff
		}
	}
	return min(d, conf.MaxRetryBackoff)
}

// runEnv bundles the per-job scheduler state shared by task drivers,
// attempts, and the speculation watchdog.
type runEnv struct {
	ctx       context.Context
	job       *Job
	conf      Config
	sem       chan struct{}
	transport Transport
	spill     *spillStore
	aborted   *atomic.Bool

	// trace is Config.Trace (possibly nil — span calls are nil-safe).
	// reg is the job's private metrics registry; lifecycle counters and
	// task histograms are observed here and Metrics is derived from it.
	trace *obs.Trace
	reg   *obs.Registry

	specWG sync.WaitGroup // in-flight speculative attempts

	mapAttempts    *obs.Counter
	reduceAttempts *obs.Counter
	retries        *obs.Counter
	specLaunched   *obs.Counter
	specWins       *obs.Counter
}

// mapTask is one map task's lifecycle state, shared by its driver, any
// speculative attempt, and the watchdog.
type mapTask struct {
	id  int
	seg *Segment

	committed  atomic.Bool
	attemptSeq atomic.Int32 // next attempt ID
	firstStart atomic.Int64 // unix nanos of the driver's first attempt
	commitDur  atomic.Int64 // committed attempt's duration (nanos)

	// Written once by the committing attempt (guarded by the commit CAS),
	// read after all drivers and backups have finished.
	task    TaskMetrics
	emitted int64

	mu       sync.Mutex
	finished bool          // driver exhausted its budget (under mu)
	backup   chan struct{} // closed when the speculative attempt ends; nil if none

	failErr error // driver-final error, set before done closes
	done    chan struct{}
}

func newMapTask(id int, seg *Segment) *mapTask {
	return &mapTask{id: id, seg: seg, done: make(chan struct{})}
}

// attemptResult is one successful map attempt's output, pending commit.
type attemptResult struct {
	task    TaskMetrics
	emitted int64
	memRuns []spillRun  // memory mode: per-partition runs (nil entries empty)
	attempt int         // spill mode: attempt ID owning dirTmp
	files   []spillFile // spill mode: encoded runs awaiting rename
	onDisk  bool
	// receipts is the w2w-mode output: run bytes already live on each
	// partition's owning worker, so commit publishes only these
	// (Seg-less) receipts. Non-nil exactly when RemoteReduce is set.
	receipts []Run
}

// discard releases a losing or unused attempt's output: buffers back to
// the pool, temp dir off the disk.
func (r *attemptResult) discard(taskID int, spill *spillStore) {
	if r == nil {
		return
	}
	for p := range r.memRuns {
		if r.memRuns[p].recs != nil {
			kvBufs.put(r.memRuns[p].recs)
			r.memRuns[p].recs = nil
		}
		r.memRuns[p].seg = nil // encoded segments are plain heap bytes
	}
	if r.onDisk {
		spill.removeAttempt(taskID, r.attempt)
	}
}

// driveMapTask runs the task's retry loop: attempts with capped
// exponential backoff until one commits, the budget is exhausted, the
// job aborts, or ctx is cancelled. If a speculative attempt is in
// flight when the budget runs out, the driver waits for it before
// declaring the task failed.
func (env *runEnv) driveMapTask(st *mapTask) {
	defer close(st.done)
	st.firstStart.Store(time.Now().UnixNano())
	var attemptErrs []error
	for a := 0; a < env.conf.MaxAttempts; a++ {
		if st.committed.Load() {
			return // a speculative attempt won
		}
		if env.aborted.Load() || env.ctx.Err() != nil {
			env.finishTask(st, nil)
			return
		}
		if a > 0 {
			env.retries.Add(1)
			if err := sleepCtx(env.ctx, backoffDelay(env.conf, a)); err != nil {
				env.finishTask(st, nil)
				return
			}
		}
		id := int(st.attemptSeq.Add(1) - 1)
		res, err := env.runMapAttempt(st, id, false)
		if err == nil {
			won, cerr := env.commit(st, id, res)
			if won {
				if cerr != nil {
					env.finishTask(st, cerr) // transport fault after commit: abort
				}
				return
			}
			res.discard(st.id, env.spill)
			if cerr == nil {
				return // lost the commit race to a backup
			}
			err = cerr // commit failed; counts against this attempt
		}
		if env.ctx.Err() != nil {
			env.finishTask(st, nil)
			return
		}
		attemptErrs = append(attemptErrs, fmt.Errorf("attempt %d: %w", id, err))
	}
	// Budget exhausted; a backup may still save the task.
	st.mu.Lock()
	st.finished = true
	b := st.backup
	st.mu.Unlock()
	if b != nil {
		<-b
	}
	if st.committed.Load() {
		return
	}
	env.finishTask(st, fmt.Errorf("mapreduce %q: map task %d failed after %d attempts: %w",
		env.job.Name, st.id, len(attemptErrs), errors.Join(attemptErrs...)))
}

// finishTask marks the driver done without a commit. err may be nil when
// the task stopped because the job is already aborting or cancelled.
func (env *runEnv) finishTask(st *mapTask, err error) {
	st.mu.Lock()
	st.finished = true
	st.mu.Unlock()
	st.failErr = err
}

// runMapAttempt executes one attempt: acquire a task slot, run the user
// map with fault hooks armed, sort and (in spill mode) persist the spill
// runs. The returned result is uncommitted.
func (env *runEnv) runMapAttempt(st *mapTask, attempt int, spec bool) (res *attemptResult, err error) {
	env.mapAttempts.Add(1)
	select {
	case env.sem <- struct{}{}:
	case <-env.ctx.Done():
		return nil, env.ctx.Err()
	}
	defer func() { <-env.sem }()

	// The attempt span opens after the semaphore, so summed attempt spans
	// stay bounded by wall × Parallelism (the verifier's cpu-bound
	// invariant); it closes on every exit with the attempt's outcome.
	span := env.trace.Start(obs.KindMapAttempt, fmt.Sprintf("map-%d", st.id)).
		Attr(obs.AttrTask, int64(st.id)).Attr(obs.AttrAttempt, int64(attempt))
	if spec {
		span.Tag("speculative", "1")
	}
	defer func() {
		if err == nil && res != nil {
			span.Tag("outcome", "ok").Attr(obs.AttrRecords, res.task.Records)
		} else {
			span.Tag("outcome", "error")
		}
		span.End()
	}()

	// Cluster mode: delegate the attempt body to the remote mapper. The
	// semaphore slot stays held — it bounds in-flight remote attempts the
	// way it bounds local CPU — and the span above still wraps the
	// attempt, so the verifier's commit-matches-attempt and cpu-bound
	// invariants see the same shape as an in-process run.
	if env.conf.RemoteMap != nil {
		res, err = env.runRemoteMapAttempt(st, attempt)
		return res, err
	}

	conf := env.conf
	seg := st.seg
	t0 := time.Now()
	parts := make([][]kvRec, conf.NumReducers)
	outBytes := make([]int64, conf.NumReducers)
	discardParts := func() {
		for p := range parts {
			if parts[p] != nil {
				kvBufs.put(parts[p])
				parts[p] = nil
			}
		}
	}
	// A kill or error fault inside the user map surfaces as a panic;
	// recover it into the attempt's error, as if the worker died.
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(attemptAbort)
			if !ok {
				panic(r)
			}
			discardParts()
			res, err = nil, ab.err
		}
	}()

	if ferr := conf.Faults.fire(env.ctx, PointMapStart, st.id, attempt, conf.MaxAttempts); ferr != nil {
		return nil, ferr
	}
	trigs := conf.Faults.emitTriggers(st.id, attempt, conf.MaxAttempts)
	var seq int64
	emit := func(key string, recordID int64, value []byte) {
		if len(trigs) > 0 && seq == trigs[0].at {
			tr := trigs[0]
			trigs = trigs[1:]
			conf.Faults.fireEmit(env.ctx, tr, st.id, attempt)
		}
		rec := kvRec{key: key, mapperID: seg.ID, recordID: recordID, seq: seq, value: value}
		seq++
		p := partition(key, conf.NumReducers)
		buf := parts[p]
		if buf == nil {
			buf = kvBufs.get(0)
		}
		parts[p] = append(buf, rec)
		outBytes[p] += rec.wireSize()
	}
	if err := env.job.Map(seg.ID, seg, emit); err != nil {
		discardParts()
		return nil, err
	}

	res = &attemptResult{
		emitted: 0,
		attempt: attempt,
	}
	// The spill sort is map-side work, as in Hadoop — except under
	// ExternalSort, where the §6.2 baseline pays for sorting in the
	// reducer's Unix sort pipe.
	for p := range parts {
		if parts[p] == nil {
			continue
		}
		if len(parts[p]) == 0 {
			kvBufs.put(parts[p])
			parts[p] = nil
			continue
		}
		res.emitted += int64(len(parts[p]))
		if !conf.ExternalSort {
			sortRun(parts[p])
		}
	}
	// Encode each non-empty partition into its wire segment (segcodec.go).
	// Both modes ship encoded segments — memory mode included — so
	// OutBytes is always real encoder output and compression acts on the
	// actual shuffle path, not a model of it.
	wireOut := make([]int64, conf.NumReducers)
	encSpan := env.trace.Start(obs.KindSpillEncode, fmt.Sprintf("map-%d", st.id)).
		Attr(obs.AttrTask, int64(st.id)).Attr(obs.AttrAttempt, int64(attempt))
	if env.spill != nil {
		files, werr := env.spill.writeAttempt(st.id, attempt, parts, conf.CompressShuffle)
		if werr != nil {
			encSpan.Tag("outcome", "error").End()
			discardParts()
			return nil, werr
		}
		for _, f := range files {
			wireOut[f.part] = f.bytes
		}
		res.files = files
		res.onDisk = true
	} else {
		res.memRuns = make([]spillRun, conf.NumReducers)
		for p := range parts {
			if parts[p] == nil {
				continue
			}
			sg := encodeSegment(parts[p], conf.CompressShuffle)
			wireOut[p] = int64(len(sg))
			res.memRuns[p] = spillRun{seg: sg, bytes: int64(len(sg)),
				task: st.id, attempt: attempt, part: p}
			kvBufs.put(parts[p])
			parts[p] = nil
		}
	}
	var encBytes int64
	for _, b := range wireOut {
		encBytes += b
	}
	encSpan.Attr(obs.AttrBytes, encBytes).End()
	if ferr := conf.Faults.fire(env.ctx, PointSpillWrite, st.id, attempt, conf.MaxAttempts); ferr != nil {
		res.discard(st.id, env.spill)
		return nil, ferr
	}
	res.task = TaskMetrics{
		Duration:        time.Since(t0),
		InputBytes:      seg.Bytes(),
		Records:         int64(len(seg.Records)),
		OutBytes:        wireOut,
		LogicalOutBytes: outBytes,
	}
	return res, nil
}

// commit makes one attempt's runs the task's output. In spill mode the
// directory rename arbitrates between racing attempts; in memory mode
// the CAS does. Exactly one attempt per task can win; the winner hands
// its runs to the reducers' channels. won=false with nil error means
// another attempt committed first (the caller discards); a non-nil error
// is an unexpected commit failure counted against this attempt.
func (env *runEnv) commit(st *mapTask, attempt int, res *attemptResult) (won bool, err error) {
	if res.onDisk {
		won, err = env.spill.commitRename(st.id, attempt)
		if !won {
			// The rename arbitrated: clear disk state so discard does not
			// re-remove, and report the loss or the failure.
			res.onDisk = false
			return false, err
		}
	}
	if !st.committed.CompareAndSwap(false, true) {
		// Memory-mode loss. Unreachable in spill mode: only the rename
		// winner reaches the CAS.
		return false, nil
	}
	st.task = res.task
	st.emitted = res.emitted
	st.commitDur.Store(int64(res.task.Duration))
	env.reg.Histogram(MetricMapTaskNS).Observe(int64(res.task.Duration))
	env.trace.Start(obs.KindCommit, fmt.Sprintf("map-%d", st.id)).
		Attr(obs.AttrTask, int64(st.id)).Attr(obs.AttrAttempt, int64(attempt)).
		Tag("phase", "map").End()
	runCommit := func(r Run) error {
		env.reg.Histogram(MetricRunBytes).Observe(r.Bytes)
		env.trace.Start(obs.KindRunCommit, fmt.Sprintf("map-%d", st.id)).
			Attr(obs.AttrTask, int64(r.Task)).Attr(obs.AttrAttempt, int64(r.Attempt)).
			Attr(obs.AttrPart, int64(r.Part)).Attr(obs.AttrBytes, r.Bytes).End()
		return env.transport.Publish(r)
	}
	// A Publish failure after the CAS is a transport fault, not an
	// attempt fault: the task has committed and cannot retry, so the
	// error aborts the job (won=true, err!=nil).
	if res.receipts != nil {
		for _, r := range res.receipts {
			if perr := runCommit(r); perr != nil {
				return true, fmt.Errorf("mapreduce %q: map task %d: publishing committed run: %w",
					env.job.Name, st.id, perr)
			}
		}
	} else if res.onDisk {
		for _, f := range res.files {
			r := Run{Path: env.spill.committedRunPath(st.id, f), Bytes: f.bytes,
				Task: st.id, Attempt: attempt, Part: f.part}
			if perr := runCommit(r); perr != nil {
				return true, fmt.Errorf("mapreduce %q: map task %d: publishing committed run: %w",
					env.job.Name, st.id, perr)
			}
		}
	} else {
		for p := range res.memRuns {
			if res.memRuns[p].seg != nil {
				r := res.memRuns[p]
				if perr := runCommit(Run{Task: r.task, Attempt: r.attempt, Part: r.part,
					Bytes: r.bytes, Seg: r.seg}); perr != nil {
					return true, fmt.Errorf("mapreduce %q: map task %d: publishing committed run: %w",
						env.job.Name, st.id, perr)
				}
			}
		}
	}
	return true, nil
}

// speculationWatchdog launches one backup attempt for any map task still
// running after SpeculationMultiple times the median committed-task
// duration, once at least half the tasks have committed. First finisher
// wins at commit; the loser's output is discarded.
func (env *runEnv) speculationWatchdog(states []*mapTask, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	tick := time.NewTicker(speculationTick)
	defer tick.Stop()
	durs := make([]int64, 0, len(states))
	for {
		select {
		case <-stop:
			return
		case <-env.ctx.Done():
			return
		case <-tick.C:
		}
		durs = durs[:0]
		for _, st := range states {
			if d := st.commitDur.Load(); d > 0 {
				durs = append(durs, d)
			}
		}
		if len(durs)*2 < len(states) {
			continue
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		median := durs[len(durs)/2]
		threshold := time.Duration(float64(median) * env.conf.SpeculationMultiple)
		if threshold < speculationTick {
			threshold = speculationTick
		}
		now := time.Now().UnixNano()
		for _, st := range states {
			if st.committed.Load() {
				continue
			}
			start := st.firstStart.Load()
			if start == 0 || time.Duration(now-start) < threshold {
				continue
			}
			st.mu.Lock()
			if !st.finished && st.backup == nil && !st.committed.Load() {
				b := make(chan struct{})
				st.backup = b
				env.specWG.Add(1)
				env.specLaunched.Add(1)
				go env.runBackup(st, b)
			}
			st.mu.Unlock()
		}
	}
}

// runBackup is one speculative map attempt racing the task's driver.
func (env *runEnv) runBackup(st *mapTask, b chan struct{}) {
	defer env.specWG.Done()
	defer close(b)
	id := int(st.attemptSeq.Add(1) - 1)
	res, err := env.runMapAttempt(st, id, true)
	if err != nil {
		return // the driver's own attempts decide the task's fate
	}
	won, cerr := env.commit(st, id, res)
	if won {
		if cerr != nil {
			env.finishTask(st, cerr) // transport fault after commit: abort
			return
		}
		env.specWins.Add(1)
		return
	}
	res.discard(st.id, env.spill)
}

// runReduceTask merges one partition's committed runs and streams the
// key groups to the user reduce function, with the same per-attempt
// retry/backoff budget map tasks get. The merge never mutates the runs,
// so a retry re-merges the identical committed inputs; a retried
// attempt re-invokes Reduce for every group, which the ReduceFunc
// contract requires to be idempotent.
func (env *runEnv) runReduceTask(p int, runs []spillRun) (groups int64, err error) {
	conf := env.conf
	if conf.ExternalSort {
		runs = externalSortRuns(runs)
	}
	defer releaseRuns(runs)
	var attemptErrs []error
	for a := 0; a < conf.MaxAttempts; a++ {
		if env.ctx.Err() != nil {
			return 0, env.ctx.Err()
		}
		if a > 0 {
			env.retries.Add(1)
			if serr := sleepCtx(env.ctx, backoffDelay(conf, a)); serr != nil {
				return 0, serr
			}
		}
		env.reduceAttempts.Add(1)
		span := env.trace.Start(obs.KindReduceAttempt, fmt.Sprintf("reduce-%d", p)).
			Attr(obs.AttrTask, int64(p)).Attr(obs.AttrAttempt, int64(a))
		t0 := time.Now()
		if ferr := conf.Faults.fire(env.ctx, PointReduceMerge, p, a, conf.MaxAttempts); ferr != nil {
			span.Tag("outcome", "error").End()
			attemptErrs = append(attemptErrs, fmt.Errorf("attempt %d: %w", a, ferr))
			continue
		}
		groups, err = env.reduceMerge(p, runs)
		if err == nil {
			env.reg.Histogram(MetricReduceTaskNS).Observe(int64(time.Since(t0)))
			span.Tag("outcome", "ok").Attr(obs.AttrGroups, groups).End()
			env.trace.Start(obs.KindCommit, fmt.Sprintf("reduce-%d", p)).
				Attr(obs.AttrTask, int64(p)).Attr(obs.AttrAttempt, int64(a)).
				Tag("phase", "reduce").End()
			return groups, nil
		}
		span.Tag("outcome", "error").End()
		if env.ctx.Err() != nil {
			return 0, env.ctx.Err()
		}
		attemptErrs = append(attemptErrs, fmt.Errorf("attempt %d: %w", a, err))
	}
	return 0, fmt.Errorf("mapreduce %q: reduce task %d failed after %d attempts: %w",
		env.job.Name, p, len(attemptErrs), errors.Join(attemptErrs...))
}

// externalSortRuns concatenates the partition's runs and sorts them via
// the system sort binary (§6.2 baseline), falling back to the in-process
// sort, returning a single sorted run. The map side skips its spill sort
// under ExternalSort, so this must run unconditionally.
func externalSortRuns(runs []spillRun) []spillRun {
	var n int
	var bytes int64
	for i := range runs {
		n += len(runs[i].recs)
		bytes += runs[i].bytes
	}
	flat := kvBufs.get(n)
	for i := range runs {
		flat = append(flat, runs[i].recs...)
	}
	releaseRuns(runs)
	sorted := externalSort(flat)
	if len(flat) > 0 && len(sorted) > 0 && &sorted[0] != &flat[0] {
		// externalSort returned a fresh slice; recycle the scratch.
		kvBufs.put(flat)
	}
	return []spillRun{{recs: sorted, bytes: bytes}}
}
