package mapreduce

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ReadSegments loads ordered input segments from a directory of
// newline-delimited record files, one segment per file. Files are
// ordered by name (datagen writes part-00000.tsv, part-00001.tsv, …),
// which defines the global record order — the stand-in for a distributed
// file system's chunk order.
func ReadSegments(dir string) ([]*Segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: reading segment dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("mapreduce: no segment files in %s", dir)
	}
	sort.Strings(names)
	segs := make([]*Segment, 0, len(names))
	for i, name := range names {
		recs, err := readRecords(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		segs = append(segs, &Segment{ID: i, Records: recs})
	}
	return segs, nil
}

// readRecords reads one newline-delimited file; the trailing newline is
// optional and empty lines are skipped.
func readRecords(path string) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: %w", err)
	}
	defer f.Close()
	var recs [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		rec := make([]byte, len(line))
		copy(rec, line)
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: scanning %s: %w", path, err)
	}
	return recs, nil
}

// WriteSegments writes segments to a directory, one newline-delimited
// file per segment, in the layout ReadSegments loads.
func WriteSegments(dir string, segs []*Segment) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("mapreduce: %w", err)
	}
	for _, seg := range segs {
		path := filepath.Join(dir, fmt.Sprintf("part-%05d.tsv", seg.ID))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("mapreduce: %w", err)
		}
		w := bufio.NewWriter(f)
		for _, rec := range seg.Records {
			if _, err := w.Write(rec); err != nil {
				f.Close()
				return fmt.Errorf("mapreduce: writing %s: %w", path, err)
			}
			if err := w.WriteByte('\n'); err != nil {
				f.Close()
				return fmt.Errorf("mapreduce: writing %s: %w", path, err)
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return fmt.Errorf("mapreduce: flushing %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("mapreduce: closing %s: %w", path, err)
		}
	}
	return nil
}
