package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Deterministic fault injection for chaos-testing the task lifecycle.
//
// A FaultPlan decides, as a pure function of a single int64 seed and the
// coordinates (injection point, task ID, attempt ID), whether a task
// attempt is killed, delayed, or errored at that point. Because the
// decision depends only on those coordinates — never on wall-clock time
// or goroutine scheduling — the same seed injects the same faults into
// the same attempts on every run, which is what makes the differential
// chaos suite meaningful: any divergence from the fault-free run is an
// engine bug, not injection noise. (With speculation enabled, *which*
// attempt IDs exist can vary with timing; the decision per attempt ID is
// still fixed.)
//
// The paper's premise makes this testable at all: mappers recompute
// symbolic summaries deterministically anywhere, and reducers compose
// committed runs in (mapperID, recordID) order, so any retry or
// re-execution schedule must reproduce the fault-free output byte for
// byte (§5.4).

// ErrFaultInjected is the error carried by KindError faults, so tests
// can tell injected failures from real ones with errors.Is.
var ErrFaultInjected = errors.New("mapreduce: injected fault")

// errAttemptKilled marks an attempt that died in place — the in-process
// stand-in for a lost worker. Like an error it consumes an attempt, but
// it surfaces no user-code failure and abandons any partial output.
var errAttemptKilled = errors.New("mapreduce: task attempt killed")

// FaultKind is what an injected fault does to the attempt.
type FaultKind uint8

const (
	// KindError makes the attempt fail with ErrFaultInjected.
	KindError FaultKind = iota
	// KindKill makes the attempt die in place, as if its worker was
	// lost: partial output is discarded and no user error surfaces.
	KindKill
	// KindDelay stalls the attempt, long enough relative to its peers to
	// look like a straggler and provoke speculative re-execution.
	KindDelay

	numFaultKinds
)

func (k FaultKind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindKill:
		return "kill"
	case KindDelay:
		return "delay"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// FaultPoint is a task-lifecycle boundary where faults can fire.
type FaultPoint uint8

const (
	// PointMapStart fires before the user map function runs.
	PointMapStart FaultPoint = iota
	// PointMapEmit fires at the attempt's first emit — user code has
	// begun producing output.
	PointMapEmit
	// PointMapMid fires at a seed-derived emit ordinal mid-stream, so
	// partial map output exists when the fault hits.
	PointMapMid
	// PointSpillWrite fires after the attempt's spill runs are sorted
	// (and, in disk-spill mode, written to the attempt's temp dir) but
	// before they are committed — the window where a dying attempt must
	// leave no files behind.
	PointSpillWrite
	// PointReduceMerge fires at the start of a reduce attempt's merge,
	// before any user Reduce call.
	PointReduceMerge

	numFaultPoints
)

func (p FaultPoint) String() string {
	switch p {
	case PointMapStart:
		return "map-start"
	case PointMapEmit:
		return "map-emit"
	case PointMapMid:
		return "map-mid"
	case PointSpillWrite:
		return "spill-write"
	case PointReduceMerge:
		return "reduce-merge"
	}
	return fmt.Sprintf("FaultPoint(%d)", uint8(p))
}

// AllFaultPoints lists every injection point, in lifecycle order.
func AllFaultPoints() []FaultPoint {
	return []FaultPoint{PointMapStart, PointMapEmit, PointMapMid, PointSpillWrite, PointReduceMerge}
}

// AllFaultKinds lists every fault kind.
func AllFaultKinds() []FaultKind {
	return []FaultKind{KindError, KindKill, KindDelay}
}

// FaultPlan injects deterministic faults into a job via Config.Faults.
// Construct with NewFaultPlan and narrow with the With* builders; the
// zero FaultPlan and a nil *FaultPlan inject nothing. A plan is safe for
// concurrent use and may be shared across jobs (its counters accumulate).
type FaultPlan struct {
	seed       int64
	rateMille  uint64 // per-mille fault probability per (point, task, attempt)
	maxDelay   time.Duration
	points     [numFaultPoints]bool
	kinds      []FaultKind
	spareFinal bool

	stats [numFaultPoints][numFaultKinds]atomic.Int64
}

// NewFaultPlan returns a plan seeded by one int64: all points, all
// kinds, a 30% per-(point,task,attempt) fault rate, 2ms max delay, and
// the final attempt of every task spared so jobs with retries enabled
// always make progress.
func NewFaultPlan(seed int64) *FaultPlan {
	p := &FaultPlan{
		seed:       seed,
		rateMille:  300,
		maxDelay:   2 * time.Millisecond,
		kinds:      AllFaultKinds(),
		spareFinal: true,
	}
	for i := range p.points {
		p.points[i] = true
	}
	return p
}

// WithRate sets the per-(point, task, attempt) fault probability.
func (p *FaultPlan) WithRate(rate float64) *FaultPlan {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	p.rateMille = uint64(rate * 1000)
	return p
}

// WithMaxDelay bounds KindDelay stalls.
func (p *FaultPlan) WithMaxDelay(d time.Duration) *FaultPlan {
	if d > 0 {
		p.maxDelay = d
	}
	return p
}

// WithPoints restricts injection to the given points.
func (p *FaultPlan) WithPoints(pts ...FaultPoint) *FaultPlan {
	for i := range p.points {
		p.points[i] = false
	}
	for _, pt := range pts {
		if pt < numFaultPoints {
			p.points[pt] = true
		}
	}
	return p
}

// WithKinds restricts injection to the given kinds.
func (p *FaultPlan) WithKinds(ks ...FaultKind) *FaultPlan {
	p.kinds = append([]FaultKind(nil), ks...)
	return p
}

// WithSpareFinal controls whether a task's last allowed attempt is
// exempt from faults. Sparing it (the default) guarantees every task
// can complete within its attempt budget; disabling it lets tests drive
// jobs into clean aggregated failure.
func (p *FaultPlan) WithSpareFinal(spare bool) *FaultPlan {
	p.spareFinal = spare
	return p
}

// Injected returns the total number of faults fired so far.
func (p *FaultPlan) Injected() int64 {
	var n int64
	for i := range p.stats {
		for k := range p.stats[i] {
			n += p.stats[i][k].Load()
		}
	}
	return n
}

// InjectedAt returns the number of faults of one kind fired at one point.
func (p *FaultPlan) InjectedAt(pt FaultPoint, k FaultKind) int64 {
	if pt >= numFaultPoints || k >= numFaultKinds {
		return 0
	}
	return p.stats[pt][k].Load()
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// well-mixed 64-bit hash used to derive independent per-coordinate
// decisions from one seed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// roll derives the decision hash for one (point, task, attempt, salt)
// coordinate.
func (p *FaultPlan) roll(point FaultPoint, task, attempt int, salt uint64) uint64 {
	h := splitmix64(uint64(p.seed))
	h = splitmix64(h ^ uint64(point) ^ uint64(task)<<8 ^ uint64(attempt)<<32 ^ salt<<48)
	return h
}

// decide returns the fault, if any, for the coordinate. maxAttempts is
// the task's attempt budget, used by the spare-final rule; speculative
// attempt IDs at or beyond the budget are spared by the same rule.
func (p *FaultPlan) decide(point FaultPoint, task, attempt, maxAttempts int) (FaultKind, time.Duration, bool) {
	if p == nil || len(p.kinds) == 0 || !p.points[point] {
		return 0, 0, false
	}
	if p.spareFinal && attempt >= maxAttempts-1 {
		return 0, 0, false
	}
	h := p.roll(point, task, attempt, 1)
	if h%1000 >= p.rateMille {
		return 0, 0, false
	}
	k := p.kinds[(h/1000)%uint64(len(p.kinds))]
	var d time.Duration
	if k == KindDelay {
		d = time.Duration(1 + (h>>20)%uint64(p.maxDelay))
	}
	return k, d, true
}

// fire executes the coordinate's fault, if any: delays sleep (honoring
// ctx) and return nil; errors and kills return their sentinel error.
func (p *FaultPlan) fire(ctx context.Context, point FaultPoint, task, attempt, maxAttempts int) error {
	k, d, ok := p.decide(point, task, attempt, maxAttempts)
	if !ok {
		return nil
	}
	p.stats[point][k].Add(1)
	switch k {
	case KindDelay:
		return sleepCtx(ctx, d)
	case KindKill:
		return fmt.Errorf("%w at %v (task %d attempt %d)", errAttemptKilled, point, task, attempt)
	default:
		return fmt.Errorf("%w at %v (task %d attempt %d)", ErrFaultInjected, point, task, attempt)
	}
}

// emitTrigger is a fault armed to fire at one emit ordinal of a map
// attempt.
type emitTrigger struct {
	at    int64
	point FaultPoint
	kind  FaultKind
	delay time.Duration
}

// emitTriggers precomputes the attempt's emit-point faults: PointMapEmit
// arms at the first emit, PointMapMid at a seed-derived ordinal in
// [1, 128) — if the attempt emits fewer records the fault never fires,
// which is itself deterministic.
func (p *FaultPlan) emitTriggers(task, attempt, maxAttempts int) []emitTrigger {
	if p == nil {
		return nil
	}
	var trigs []emitTrigger
	if k, d, ok := p.decide(PointMapEmit, task, attempt, maxAttempts); ok {
		trigs = append(trigs, emitTrigger{at: 0, point: PointMapEmit, kind: k, delay: d})
	}
	if k, d, ok := p.decide(PointMapMid, task, attempt, maxAttempts); ok {
		at := int64(1 + p.roll(PointMapMid, task, attempt, 2)%127)
		trigs = append(trigs, emitTrigger{at: at, point: PointMapMid, kind: k, delay: d})
	}
	return trigs
}

// fireEmit executes an armed emit trigger inside the user map function.
// Delays sleep in place; kills and errors abort the attempt by panicking
// with attemptAbort, which the attempt runner recovers into an error —
// the in-process analogue of a worker dying mid-task.
func (p *FaultPlan) fireEmit(ctx context.Context, tr emitTrigger, task, attempt int) {
	p.stats[tr.point][tr.kind].Add(1)
	switch tr.kind {
	case KindDelay:
		if err := sleepCtx(ctx, tr.delay); err != nil {
			panic(attemptAbort{err})
		}
	case KindKill:
		panic(attemptAbort{fmt.Errorf("%w at %v (task %d attempt %d)", errAttemptKilled, tr.point, task, attempt)})
	default:
		panic(attemptAbort{fmt.Errorf("%w at %v (task %d attempt %d)", ErrFaultInjected, tr.point, task, attempt)})
	}
}

// attemptAbort carries an injected mid-map fault out of user code via
// panic; the attempt runner recovers it into the attempt's error.
type attemptAbort struct{ err error }
