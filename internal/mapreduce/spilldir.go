package mapreduce

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// Disk-backed spill runs with an atomic commit protocol, enabled by
// Config.SpillDir. Each map attempt writes its per-partition sorted runs
// into a private temp directory:
//
//	<spillDir>/<job>/attempt-t<task>-a<attempt>.tmp/
//	    MANIFEST            (attempt metadata; keeps the dir non-empty)
//	    part-<p>.run        (one encoded run per non-empty partition)
//
// and commits by renaming the whole directory to task-<task>/ in one
// rename(2) call. The rename is the cross-attempt arbiter: it fails with
// EEXIST/ENOTEMPTY when another attempt already committed (the MANIFEST
// guarantees committed dirs are never empty, so rename can never quietly
// replace one), which makes first-finisher-wins atomic at the filesystem
// level — a losing or dying attempt's runs can never be merged, because
// reducers read runs only from committed task directories. Losing and
// failed attempts remove their temp dirs; the whole job directory is
// removed when the job finishes, so no run files outlive a job.

// spillMagic leads every run file; a mismatch fails decoding loudly
// instead of merging garbage. SPR2 is the segment format (segcodec.go):
// magic followed by one encoded segment. SPR1 (per-record framing) is
// gone — run files never outlive a job, so there is no migration story.
const spillMagic = "SPR2"

// spillStore is one job's spill directory.
type spillStore struct {
	root string
}

// newSpillStore creates a fresh private directory for one job run under
// base.
func newSpillStore(base string) (*spillStore, error) {
	if err := os.MkdirAll(base, 0o755); err != nil {
		return nil, fmt.Errorf("mapreduce: spill dir: %w", err)
	}
	root, err := os.MkdirTemp(base, "job-*")
	if err != nil {
		return nil, fmt.Errorf("mapreduce: spill dir: %w", err)
	}
	return &spillStore{root: root}, nil
}

// close removes the job's entire spill directory, committed runs
// included. Reducers have consumed (or dropped) every run by the time
// the job returns, so nothing of value remains.
func (s *spillStore) close() {
	if s != nil {
		_ = os.RemoveAll(s.root)
	}
}

func (s *spillStore) attemptDir(task, attempt int) string {
	return filepath.Join(s.root, fmt.Sprintf("attempt-t%04d-a%03d.tmp", task, attempt))
}

func (s *spillStore) taskDir(task int) string {
	return filepath.Join(s.root, fmt.Sprintf("task-%04d", task))
}

// spillFile locates one committed-run-to-be inside an attempt dir.
type spillFile struct {
	part  int
	name  string
	bytes int64
	recs  int
}

// writeAttempt encodes the attempt's non-empty partitions into its temp
// dir and returns the run file index, with each file's wire byte count
// (the segment size, excluding the magic — the same number memory mode
// reports for the identical records). The record buffers in parts are
// returned to the pool on success; on error the caller still owns them
// and the partial temp dir has been removed.
func (s *spillStore) writeAttempt(task, attempt int, parts [][]kvRec, compress bool) ([]spillFile, error) {
	dir := s.attemptDir(task, attempt)
	if err := os.Mkdir(dir, 0o755); err != nil {
		return nil, fmt.Errorf("mapreduce: spill attempt dir: %w", err)
	}
	fail := func(err error) ([]spillFile, error) {
		_ = os.RemoveAll(dir)
		return nil, err
	}
	var files []spillFile
	for p := range parts {
		if len(parts[p]) == 0 {
			continue
		}
		name := fmt.Sprintf("part-%03d.run", p)
		seg := encodeSegment(parts[p], compress)
		if err := writeRunFile(filepath.Join(dir, name), seg); err != nil {
			return fail(err)
		}
		files = append(files, spillFile{part: p, name: name, bytes: int64(len(seg)), recs: len(parts[p])})
	}
	manifest := fmt.Sprintf("task %d attempt %d runs %d\n", task, attempt, len(files))
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte(manifest), 0o644); err != nil {
		return fail(fmt.Errorf("mapreduce: spill manifest: %w", err))
	}
	for p := range parts {
		if parts[p] != nil {
			kvBufs.put(parts[p])
			parts[p] = nil
		}
	}
	return files, nil
}

// commitRename promotes the attempt's temp dir to the task's committed
// directory. won=false with a nil error means another attempt committed
// first and this attempt's dir was cleaned up; a non-nil error is an
// unexpected filesystem failure (the temp dir is removed either way).
func (s *spillStore) commitRename(task, attempt int) (won bool, err error) {
	tmp := s.attemptDir(task, attempt)
	err = os.Rename(tmp, s.taskDir(task))
	if err == nil {
		return true, nil
	}
	_ = os.RemoveAll(tmp)
	if errors.Is(err, fs.ErrExist) || errors.Is(err, syscall.EEXIST) || errors.Is(err, syscall.ENOTEMPTY) {
		return false, nil
	}
	return false, fmt.Errorf("mapreduce: committing spill attempt: %w", err)
}

// removeAttempt deletes a failed or losing attempt's temp dir — the
// cleanup that keeps aborted attempts from leaking run files on disk.
func (s *spillStore) removeAttempt(task, attempt int) {
	if s != nil {
		_ = os.RemoveAll(s.attemptDir(task, attempt))
	}
}

// committedRunPath returns the path of one run file inside the task's
// committed directory.
func (s *spillStore) committedRunPath(task int, f spillFile) string {
	return filepath.Join(s.taskDir(task), f.name)
}

// writeRunFile writes one encoded run segment: magic, then the segment
// bytes exactly as produced by encodeSegment.
func writeRunFile(path string, seg []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mapreduce: spill run: %w", err)
	}
	if _, err := f.WriteString(spillMagic); err != nil {
		f.Close()
		return fmt.Errorf("mapreduce: spill run %s: %w", path, err)
	}
	if _, err := f.Write(seg); err != nil {
		f.Close()
		return fmt.Errorf("mapreduce: spill run %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("mapreduce: spill run %s: %w", path, err)
	}
	return nil
}

// decodeRunFile reads one committed run back into a pooled record
// buffer. Values alias the file's read buffer (raw segments) or a fresh
// inflated buffer (compressed), which the records keep alive — the same
// stability contract in-memory runs provide.
func decodeRunFile(path string) ([]kvRec, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: reading spill run: %w", err)
	}
	if len(buf) < len(spillMagic) || string(buf[:len(spillMagic)]) != spillMagic {
		return nil, fmt.Errorf("mapreduce: spill run %s: bad magic", path)
	}
	recs, err := decodeSegment(buf[len(spillMagic):])
	if err != nil {
		return nil, fmt.Errorf("mapreduce: spill run %s: %w", path, err)
	}
	return recs, nil
}
