package mapreduce

import (
	"fmt"
	"math/rand"
	"testing"
)

// The shuffle benchmarks compare the streaming spill-run/merge engine
// against the retained barrier engine on the same workload, and the
// allocation-free emit hot path against the original encoder/hasher
// version. cmd/symplebench -experiment shuffle records the same
// comparisons to BENCH_SHUFFLE.json for the perf trajectory.

func benchSegments(numSegs, perSeg, payload int) []*Segment {
	rng := rand.New(rand.NewSource(1))
	segs := make([]*Segment, numSegs)
	for i := range segs {
		segs[i] = &Segment{ID: i}
		for r := 0; r < perSeg; r++ {
			rec := make([]byte, payload)
			for j := range rec {
				rec[j] = byte('a' + rng.Intn(26))
			}
			segs[i].Records = append(segs[i].Records, rec)
		}
	}
	return segs
}

func benchJob(conf Config) *Job {
	return &Job{
		Name: "bench",
		Map: func(id int, seg *Segment, emit Emit) error {
			for i, rec := range seg.Records {
				// Skewed key space: realistic group fan-in per reducer.
				emit(fmt.Sprintf("key-%d", (int(rec[0])*31+int(rec[1]))%512), int64(i), rec)
			}
			return nil
		},
		Reduce: func(_ int, _ string, values []Shuffled) error {
			for i := range values {
				_ = values[i].Value
			}
			return nil
		},
		Conf: conf,
	}
}

// BenchmarkShuffleMerge drives the full shuffle path — emit, spill sort,
// run transfer, k-way merge, group streaming — under both engines.
func BenchmarkShuffleMerge(b *testing.B) {
	const numSegs, perSeg, payload = 8, 4000, 100
	segs := benchSegments(numSegs, perSeg, payload)
	var inputBytes int64
	for _, s := range segs {
		inputBytes += s.Bytes()
	}
	for _, eng := range []struct {
		name    string
		barrier bool
	}{{"streaming", false}, {"barrier", true}} {
		b.Run(eng.name, func(b *testing.B) {
			job := benchJob(Config{NumReducers: 4, Parallelism: 4, BarrierShuffle: eng.barrier})
			b.SetBytes(inputBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := job.Run(segs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEmitHotPath isolates the per-record emit cost: partition the
// key, account the wire size, append to the run buffer. The legacy
// variant pays the original hasher + scratch-encoder allocations.
func BenchmarkEmitHotPath(b *testing.B) {
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	value := make([]byte, 100)
	for _, eng := range []struct {
		name   string
		legacy bool
	}{{"streaming", false}, {"legacy", true}} {
		b.Run(eng.name, func(b *testing.B) {
			parts := make([][]kvRec, 4)
			outBytes := make([]int64, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := keys[i%len(keys)]
				rec := kvRec{key: key, mapperID: 3, recordID: int64(i), value: value}
				var p int
				if eng.legacy {
					p = legacyPartition(key, len(parts))
					outBytes[p] += legacyWireSize(&rec)
				} else {
					p = partition(key, len(parts))
					outBytes[p] += rec.wireSize()
				}
				if len(parts[p]) > 1<<16 {
					parts[p] = parts[p][:0] // bound memory; keep append cost amortized
				}
				parts[p] = append(parts[p], rec)
			}
		})
	}
}
