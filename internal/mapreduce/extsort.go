package mapreduce

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"fmt"
	"os/exec"
	"sort"
	"strconv"
)

// External-sort shuffle: the paper's single-machine MapReduce baseline
// (§6.2) pipes mapper output through Unix sort ("we use Unix sort to
// sort mapper results by groupby key and merge to per-key lists"). With
// Config.ExternalSort set, each reduce partition is sorted by piping
// length-stable text lines through the system sort binary instead of
// sorting in process — reproducing the extra serialization and pipe
// traffic that implementation pays.
//
// Line format, chosen so LC_ALL=C byte order equals the engine's
// (key, mapperID, recordID) order: hex(key) \t %020d(mapper) \t
// %020d(record) \t hex(value). Hex keeps keys and values with tabs or
// newlines safe.

// externalSortAvailable reports whether a sort binary can be executed.
func externalSortAvailable() bool {
	_, err := exec.LookPath("sort")
	return err == nil
}

// externalSort sorts one partition via the system sort binary. On any
// failure it falls back to the in-process sort so jobs never break on
// exotic systems.
func externalSort(part []kvRec) []kvRec {
	sorted, err := externalSortPipe(part)
	if err != nil {
		sortPartition(part)
		return part
	}
	return sorted
}

func externalSortPipe(part []kvRec) ([]kvRec, error) {
	if len(part) == 0 {
		return part, nil
	}
	cmd := exec.Command("sort")
	cmd.Env = append(cmd.Environ(), "LC_ALL=C")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}

	writeErr := make(chan error, 1)
	go func() {
		w := bufio.NewWriter(stdin)
		for i := range part {
			r := &part[i]
			fmt.Fprintf(w, "%s\t%020d\t%020d\t%s\n",
				hex.EncodeToString([]byte(r.key)), r.mapperID, r.recordID,
				hex.EncodeToString(r.value))
		}
		if err := w.Flush(); err != nil {
			writeErr <- err
			return
		}
		writeErr <- stdin.Close()
	}()

	out := make([]kvRec, 0, len(part))
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		rec, err := parseSortedLine(sc.Bytes())
		if err != nil {
			_ = cmd.Wait()
			return nil, err
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		_ = cmd.Wait()
		return nil, err
	}
	if err := <-writeErr; err != nil {
		_ = cmd.Wait()
		return nil, err
	}
	if err := cmd.Wait(); err != nil {
		return nil, err
	}
	if len(out) != len(part) {
		return nil, fmt.Errorf("mapreduce: external sort returned %d of %d lines", len(out), len(part))
	}
	return out, nil
}

func parseSortedLine(line []byte) (kvRec, error) {
	fields := bytes.Split(line, []byte{'\t'})
	if len(fields) != 4 {
		return kvRec{}, fmt.Errorf("mapreduce: malformed sorted line %q", line)
	}
	key, err := hex.DecodeString(string(fields[0]))
	if err != nil {
		return kvRec{}, err
	}
	mapperID, err := strconv.Atoi(trimZeros(fields[1]))
	if err != nil {
		return kvRec{}, err
	}
	recordID, err := strconv.ParseInt(trimZeros(fields[2]), 10, 64)
	if err != nil {
		return kvRec{}, err
	}
	value, err := hex.DecodeString(string(fields[3]))
	if err != nil {
		return kvRec{}, err
	}
	if len(value) == 0 {
		value = nil
	}
	return kvRec{key: string(key), mapperID: mapperID, recordID: recordID, value: value}, nil
}

// trimZeros strips leading zeros from a fixed-width decimal, keeping a
// final "0" for the zero value.
func trimZeros(b []byte) string {
	t := bytes.TrimLeft(b, "0")
	if len(t) == 0 {
		return "0"
	}
	return string(t)
}

// sortPartition is the in-process shuffle order. seq breaks the
// (key, mapperID, recordID) ties a multi-emitting record can produce,
// so the streaming engine's ExternalSort fallback reproduces emit order
// exactly; barrier-engine records all carry seq 0 and are unaffected.
func sortPartition(part []kvRec) {
	sort.Slice(part, func(a, b int) bool {
		ra, rb := &part[a], &part[b]
		if ra.key != rb.key {
			return ra.key < rb.key
		}
		if ra.mapperID != rb.mapperID {
			return ra.mapperID < rb.mapperID
		}
		if ra.recordID != rb.recordID {
			return ra.recordID < rb.recordID
		}
		return ra.seq < rb.seq
	})
}
