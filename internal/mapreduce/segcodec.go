package mapreduce

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/wire"
)

// Segment codec: the compact wire form of one spill run (one mapper's
// sorted output for one partition). The legacy per-record framing —
// key, mapperID, recordID, value, each fully spelled out — pays for the
// group key once per record and for the mapper ID once per record even
// though a run has exactly one mapper and few distinct keys. The segment
// form factors the redundancy out:
//
//	flags byte             segRaw | segFlate
//	[flate frame]          only under segFlate: uvarint rawLen,
//	                       uvarint compLen, DEFLATE bytes (wire.CompressedBlock)
//	payload:
//	  uvarint recordCount
//	  uvarint mapperID     constant per run, written once
//	  string dictionary    distinct keys in first-use order (wire.StringDict)
//	  per record:
//	    varint Δ keyIndex  zig-zag delta vs previous record (0 within a group)
//	    varint Δ recordID  zig-zag delta (small, ascending within a group)
//	    varint Δ seq       zig-zag delta (ascending in spill-sort order)
//	    bytes  value       length-prefixed payload
//
// Sorted runs make the deltas tiny — the key index is non-decreasing and
// recordID/seq climb within each group — but the codec does not require
// sortedness (ExternalSort ships unsorted runs; zig-zag absorbs the
// sign). Decoding allocates one string per distinct key instead of one
// per record, so the dictionary is a decode-side allocation win as well
// as a byte win. Metrics.ShuffleBytes counts exactly these encoded
// bytes; the legacy per-record framing survives as ShuffleLogicalBytes.
const (
	segRaw   = 0x01
	segFlate = 0x02
)

// segMinRecordBytes is the smallest possible encoded record (three
// one-byte deltas plus an empty value's length byte); it bounds the
// record-count claim of a corrupt header before any allocation.
const segMinRecordBytes = 4

// segKeyMaps pools the key→index maps the encoder builds per segment.
var segKeyMaps = sync.Pool{
	New: func() any { return make(map[string]int, 64) },
}

// maxPooledKeyMap bounds the distinct-key count of maps returned to the
// pool, so one enormous segment does not pin its buckets forever.
const maxPooledKeyMap = 1 << 16

// encodeSegment encodes one run into a fresh buffer. All records must
// carry the same mapperID (one run is one mapper's output, asserted
// cheaply here). The returned slice is exactly sized: decoded values
// alias it, so it lives as long as the run's records do.
func encodeSegment(recs []kvRec, compress bool) []byte {
	pe := wire.GetEncoder()
	defer wire.PutEncoder(pe)
	pe.Uvarint(uint64(len(recs)))
	var mapperID int
	if len(recs) > 0 {
		mapperID = recs[0].mapperID
	}
	pe.Uvarint(uint64(mapperID))

	// Key dictionary in first-use order. Sorted runs hit the last-key
	// fast path for every record after a group's first; the map only
	// arbitrates across groups (and unsorted ExternalSort runs).
	idx := segKeyMaps.Get().(map[string]int)
	var dict []string
	lastKey, lastIdx := "", -1
	keyAt := func(key string) int {
		if i, ok := idx[key]; ok {
			return i
		}
		i := len(dict)
		dict = append(dict, key)
		idx[key] = i
		return i
	}
	// Pass 1: build the dictionary (record order fixes entry order).
	for i := range recs {
		if i > 0 && recs[i].key == lastKey {
			continue
		}
		lastKey = recs[i].key
		keyAt(lastKey)
	}
	pe.StringDict(dict)

	// Pass 2: delta columns and values, row-wise.
	lastKey, lastIdx = "", 0
	var prevKeyIdx, prevRecID, prevSeq int64
	for i := range recs {
		r := &recs[i]
		if r.mapperID != mapperID {
			panic(fmt.Sprintf("mapreduce: run mixes mapper %d and %d", mapperID, r.mapperID))
		}
		ki := lastIdx
		if i == 0 || r.key != lastKey {
			ki = idx[r.key]
			lastKey, lastIdx = r.key, ki
		}
		pe.Varint(int64(ki) - prevKeyIdx)
		pe.Varint(int64(uint64(r.recordID) - uint64(prevRecID)))
		pe.Varint(int64(uint64(r.seq) - uint64(prevSeq)))
		pe.BytesField(r.value)
		prevKeyIdx, prevRecID, prevSeq = int64(ki), r.recordID, r.seq
	}
	if len(idx) <= maxPooledKeyMap {
		clear(idx)
		segKeyMaps.Put(idx)
	}

	if !compress {
		out := make([]byte, 1+pe.Len())
		out[0] = segRaw
		copy(out[1:], pe.Bytes())
		return out
	}
	oe := wire.GetEncoder()
	oe.Byte(segFlate)
	oe.CompressedBlock(pe.Bytes())
	out := make([]byte, oe.Len())
	copy(out, oe.Bytes())
	wire.PutEncoder(oe)
	return out
}

// decodeSegment decodes a segment into a pooled record buffer. Values
// (and, for raw segments, nothing else) alias buf; compressed payloads
// are inflated into a fresh buffer the records keep alive. Malformed
// input — bad flags, truncated frames, out-of-range dictionary indexes,
// forged counts — returns an error; it never panics or over-allocates.
func decodeSegment(buf []byte) ([]kvRec, error) {
	d := wire.NewDecoder(buf)
	var payload []byte
	switch flags := d.Byte(); flags {
	case segRaw:
		payload = buf[1:]
	case segFlate:
		p, err := d.CompressedBlock()
		if err != nil {
			return nil, fmt.Errorf("mapreduce: segment: %w", err)
		}
		if d.Remaining() != 0 {
			return nil, fmt.Errorf("%w: %d bytes after compressed segment frame",
				wire.ErrCorrupt, d.Remaining())
		}
		payload = p
	default:
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("mapreduce: segment: %w", err)
		}
		return nil, fmt.Errorf("%w: unknown segment flags %#x", wire.ErrCorrupt, flags)
	}

	d = wire.NewDecoder(payload)
	n := d.Length(d.Remaining()/segMinRecordBytes + 1)
	mapperID := d.Length(math.MaxInt32)
	dict := d.StringDict(n)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: segment header: %w", err)
	}
	recs := kvBufs.get(n)
	var keyIdx, recID, seq int64
	for i := 0; i < n; i++ {
		keyIdx += d.Varint()
		recID += d.Varint()
		seq += d.Varint()
		value := d.BytesField()
		if d.Err() != nil {
			break
		}
		if keyIdx < 0 || keyIdx >= int64(len(dict)) {
			kvBufs.put(recs)
			return nil, fmt.Errorf("%w: segment key index %d outside dictionary of %d",
				wire.ErrCorrupt, keyIdx, len(dict))
		}
		if len(value) == 0 {
			value = nil
		}
		recs = append(recs, kvRec{
			key:      dict[keyIdx],
			mapperID: mapperID,
			recordID: recID,
			seq:      seq,
			value:    value,
		})
	}
	if err := d.Err(); err != nil {
		kvBufs.put(recs)
		return nil, fmt.Errorf("mapreduce: segment record: %w", err)
	}
	if d.Remaining() != 0 {
		kvBufs.put(recs)
		return nil, fmt.Errorf("%w: %d trailing bytes after segment", wire.ErrCorrupt, d.Remaining())
	}
	return recs, nil
}
