package mapreduce

import (
	"fmt"

	"repro/internal/obs"
)

// Worker-side reduce. In the worker-to-worker topology the partition's
// owning worker holds its committed runs in wire form (pushed to it by
// map workers) and runs the same k-way merge the in-process engine
// would, streaming key groups to a caller-supplied function — in
// internal/cluster that function applies the job's registered group
// combiner and encodes the result onto the reply frame.

// MergeEncodedRuns decodes the given wire-form runs, k-way merges them,
// and streams each key group to fn in exactly the order reduceMerge
// produces: ascending key, rows ordered by (mapperID, recordID) — the
// §5.4 composition order that makes placement invisible. Each decoded
// run emits a seg_decode span carrying the producer identity, so a
// worker-resident reduce feeds the verifier's run-merged-once join the
// same records an in-process reduce would; callers must ship those
// spans only for the attempt that succeeds.
//
// The group slice is reused between calls and its values alias pooled
// decode buffers released when MergeEncodedRuns returns: fn must copy
// or encode what it keeps.
func MergeEncodedRuns(part int, rs []Run, trace *obs.Trace,
	fn func(key string, group []Shuffled) error) error {
	runs := make([]spillRun, 0, len(rs))
	defer func() { releaseRuns(runs) }()
	for _, r := range rs {
		span := trace.Start(obs.KindSegDecode, fmt.Sprintf("part-%d", part)).
			Attr(obs.AttrTask, int64(r.Task)).Attr(obs.AttrAttempt, int64(r.Attempt)).
			Attr(obs.AttrPart, int64(r.Part)).Attr(obs.AttrBytes, r.Bytes)
		recs, derr := decodeSegment(r.Seg)
		if derr != nil {
			span.Tag("outcome", "error").End()
			return fmt.Errorf("mapreduce: run (task %d attempt %d part %d): %w",
				r.Task, r.Attempt, r.Part, derr)
		}
		span.End()
		runs = append(runs, spillRun{recs: recs, bytes: r.Bytes})
	}
	tree := newLoserTree(runs)
	group := make([]Shuffled, 0, 64)
	for {
		head := tree.peek()
		if head == nil {
			return nil
		}
		key := head.key
		group = group[:0]
		for {
			h := tree.peek()
			if h == nil || h.key != key {
				break
			}
			group = append(group, Shuffled{MapperID: h.mapperID, RecordID: h.recordID, Value: h.value})
			tree.advance()
		}
		if err := fn(key, group); err != nil {
			return err
		}
	}
}
