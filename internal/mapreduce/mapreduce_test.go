package mapreduce

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func segmentsFromLines(lines []string, numSegments int) []*Segment {
	segs := make([]*Segment, numSegments)
	for i := range segs {
		segs[i] = &Segment{ID: i}
	}
	for i, l := range lines {
		s := segs[i*numSegments/len(lines)]
		s.Records = append(s.Records, []byte(l))
	}
	return segs
}

func TestWordCount(t *testing.T) {
	lines := []string{
		"the quick brown fox",
		"jumps over the lazy dog",
		"the dog barks",
	}
	segs := segmentsFromLines(lines, 2)

	var mu sync.Mutex
	counts := map[string]int{}
	job := &Job{
		Name: "wordcount",
		Map: func(id int, seg *Segment, emit Emit) error {
			for i, rec := range seg.Records {
				for _, w := range strings.Fields(string(rec)) {
					emit(w, int64(i), []byte("1"))
				}
			}
			return nil
		},
		Reduce: func(_ int, key string, values []Shuffled) error {
			mu.Lock()
			counts[key] = len(values)
			mu.Unlock()
			return nil
		},
		Conf: Config{NumReducers: 3},
	}
	m, err := job.Run(segs)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"the": 3, "dog": 2, "quick": 1, "brown": 1,
		"fox": 1, "jumps": 1, "over": 1, "lazy": 1, "barks": 1}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("count[%q] = %d, want %d", k, counts[k], v)
		}
	}
	if m.Groups != int64(len(want)) {
		t.Errorf("groups = %d, want %d", m.Groups, len(want))
	}
	if m.ShuffleRecords != 12 {
		t.Errorf("shuffle records = %d, want 12", m.ShuffleRecords)
	}
	if m.ShuffleBytes <= 0 || m.InputBytes <= 0 {
		t.Error("byte accounting missing")
	}
	if len(m.MapTasks) != 2 || len(m.ReduceTasks) != 3 {
		t.Errorf("task metrics: %d map, %d reduce", len(m.MapTasks), len(m.ReduceTasks))
	}
}

// TestShuffleOrdering verifies the paper's §5.4 requirement: within a
// group, records arrive sorted by (mapperID, recordID) regardless of map
// completion order, reconstituting the global input order.
func TestShuffleOrdering(t *testing.T) {
	const perSeg = 50
	segs := make([]*Segment, 4)
	for i := range segs {
		segs[i] = &Segment{ID: i}
		for r := 0; r < perSeg; r++ {
			segs[i].Records = append(segs[i].Records,
				[]byte(fmt.Sprintf("%d", i*perSeg+r)))
		}
	}
	var mu sync.Mutex
	var got []int
	job := &Job{
		Name: "order",
		Map: func(id int, seg *Segment, emit Emit) error {
			for i, rec := range seg.Records {
				emit("all", int64(i), rec)
			}
			return nil
		},
		Reduce: func(_ int, _ string, values []Shuffled) error {
			mu.Lock()
			defer mu.Unlock()
			prevMapper, prevRec := -1, int64(-1)
			for _, v := range values {
				if v.MapperID < prevMapper ||
					(v.MapperID == prevMapper && v.RecordID <= prevRec) {
					return fmt.Errorf("order violated: (%d,%d) after (%d,%d)",
						v.MapperID, v.RecordID, prevMapper, prevRec)
				}
				prevMapper, prevRec = v.MapperID, v.RecordID
				n, _ := strconv.Atoi(string(v.Value))
				got = append(got, n)
			}
			return nil
		},
		Conf: Config{NumReducers: 1},
	}
	if _, err := job.Run(segs); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4*perSeg {
		t.Fatalf("got %d records", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d has %d: global order not reconstituted", i, v)
		}
	}
}

func TestPartitionStability(t *testing.T) {
	// Same key always lands on the same reducer.
	for _, key := range []string{"", "a", "user42", "advertiser-9"} {
		p := partition(key, 7)
		for i := 0; i < 10; i++ {
			if partition(key, 7) != p {
				t.Fatalf("partition(%q) unstable", key)
			}
		}
		if p < 0 || p >= 7 {
			t.Fatalf("partition(%q) = %d out of range", key, p)
		}
	}
}

func TestMapErrorPropagates(t *testing.T) {
	sentinel := errors.New("boom")
	job := &Job{
		Name:   "failing",
		Map:    func(int, *Segment, Emit) error { return sentinel },
		Reduce: func(int, string, []Shuffled) error { return nil },
	}
	_, err := job.Run([]*Segment{{ID: 0, Records: [][]byte{[]byte("x")}}})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	sentinel := errors.New("boom")
	job := &Job{
		Name: "failing",
		Map: func(_ int, seg *Segment, emit Emit) error {
			emit("k", 0, []byte("v"))
			return nil
		},
		Reduce: func(int, string, []Shuffled) error { return sentinel },
	}
	_, err := job.Run([]*Segment{{ID: 0, Records: [][]byte{[]byte("x")}}})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
}

func TestEmptyInput(t *testing.T) {
	job := &Job{
		Name:   "empty",
		Map:    func(int, *Segment, Emit) error { return nil },
		Reduce: func(int, string, []Shuffled) error { return nil },
	}
	m, err := job.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.ShuffleRecords != 0 || m.Groups != 0 {
		t.Fatal("nonzero metrics on empty input")
	}
}

func TestShuffleByteAccounting(t *testing.T) {
	// Shuffle bytes must be at least the payload bytes emitted and equal
	// the sum of per-map-task out bytes.
	payload := bytes.Repeat([]byte("v"), 100)
	job := &Job{
		Name: "bytes",
		Map: func(_ int, seg *Segment, emit Emit) error {
			for i := range seg.Records {
				emit("key", int64(i), payload)
			}
			return nil
		},
		Reduce: func(int, string, []Shuffled) error { return nil },
		Conf:   Config{NumReducers: 2},
	}
	segs := segmentsFromLines([]string{"a", "b", "c", "d"}, 2)
	m, err := job.Run(segs)
	if err != nil {
		t.Fatal(err)
	}
	if m.ShuffleBytes < 400 {
		t.Fatalf("shuffle bytes %d < payload 400", m.ShuffleBytes)
	}
	var fromTasks int64
	for _, task := range m.MapTasks {
		for _, b := range task.OutBytes {
			fromTasks += b
		}
	}
	if fromTasks != m.ShuffleBytes {
		t.Fatalf("task out bytes %d != shuffle bytes %d", fromTasks, m.ShuffleBytes)
	}
}

func TestManyGroupsAcrossReducers(t *testing.T) {
	// Every key appears exactly once at exactly one reducer.
	var mu sync.Mutex
	seen := map[string]int{}
	job := &Job{
		Name: "groups",
		Map: func(_ int, seg *Segment, emit Emit) error {
			for i, rec := range seg.Records {
				emit(string(rec), int64(i), nil)
			}
			return nil
		},
		Reduce: func(_ int, key string, values []Shuffled) error {
			mu.Lock()
			seen[key]++
			mu.Unlock()
			return nil
		},
		Conf: Config{NumReducers: 5},
	}
	var lines []string
	for i := 0; i < 500; i++ {
		lines = append(lines, fmt.Sprintf("key-%d", i%100))
	}
	if _, err := job.Run(segmentsFromLines(lines, 7)); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 100 {
		t.Fatalf("saw %d keys, want 100", len(seen))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("key %q reduced %d times", k, n)
		}
	}
}
