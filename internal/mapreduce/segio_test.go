package mapreduce

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestSegmentsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	segs := []*Segment{
		{ID: 0, Records: [][]byte{[]byte("a\t1"), []byte("b\t2")}},
		{ID: 1, Records: [][]byte{[]byte("c\t3")}},
		{ID: 2, Records: nil},
	}
	if err := WriteSegments(dir, segs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d segments, want 3", len(got))
	}
	for i, seg := range segs {
		if got[i].ID != i {
			t.Errorf("segment %d has ID %d", i, got[i].ID)
		}
		if len(got[i].Records) != len(seg.Records) {
			t.Fatalf("segment %d: %d records, want %d", i, len(got[i].Records), len(seg.Records))
		}
		for j := range seg.Records {
			if !bytes.Equal(got[i].Records[j], seg.Records[j]) {
				t.Errorf("segment %d record %d: %q != %q", i, j, got[i].Records[j], seg.Records[j])
			}
		}
	}
}

func TestReadSegmentsOrderedByName(t *testing.T) {
	dir := t.TempDir()
	// Write files out of creation order; names must govern.
	if err := os.WriteFile(filepath.Join(dir, "part-00001.tsv"), []byte("second\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "part-00000.tsv"), []byte("first\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	segs, err := ReadSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(segs[0].Records[0]) != "first" || string(segs[1].Records[0]) != "second" {
		t.Fatalf("order wrong: %q, %q", segs[0].Records[0], segs[1].Records[0])
	}
}

func TestReadSegmentsSkipsBlankLines(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.tsv"), []byte("a\n\n  \nb"), 0o644); err != nil {
		t.Fatal(err)
	}
	segs, err := ReadSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs[0].Records) != 2 {
		t.Fatalf("%d records, want 2", len(segs[0].Records))
	}
}

func TestReadSegmentsErrors(t *testing.T) {
	if _, err := ReadSegments(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error for missing dir")
	}
	empty := t.TempDir()
	if _, err := ReadSegments(empty); err == nil {
		t.Fatal("expected error for empty dir")
	}
}

func TestExternalSortMatchesInProcess(t *testing.T) {
	if !externalSortAvailable() {
		t.Skip("no sort binary")
	}
	part := []kvRec{
		{key: "b", mapperID: 1, recordID: 5, value: []byte("v1")},
		{key: "a", mapperID: 2, recordID: 0, value: []byte{0x00, 0x09, 0x0A}},
		{key: "a", mapperID: 0, recordID: 7, value: nil},
		{key: "a", mapperID: 0, recordID: 2, value: []byte("tab\tand\nnewline")},
		{key: "key with spaces", mapperID: 3, recordID: 1, value: []byte("x")},
	}
	want := append([]kvRec(nil), part...)
	sortPartition(want)
	got := externalSort(append([]kvRec(nil), part...))
	if len(got) != len(want) {
		t.Fatalf("lengths differ")
	}
	for i := range want {
		if want[i].key != got[i].key || want[i].mapperID != got[i].mapperID ||
			want[i].recordID != got[i].recordID || !bytes.Equal(want[i].value, got[i].value) {
			t.Fatalf("row %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestExternalSortJobEndToEnd(t *testing.T) {
	if !externalSortAvailable() {
		t.Skip("no sort binary")
	}
	segs := []*Segment{
		{ID: 0, Records: [][]byte{[]byte("k1"), []byte("k2")}},
		{ID: 1, Records: [][]byte{[]byte("k1"), []byte("k1")}},
	}
	run := func(ext bool) map[string][]int {
		out := map[string][]int{}
		var mu sync.Mutex
		job := &Job{
			Name: "ext",
			Map: func(_ int, seg *Segment, emit Emit) error {
				for i, rec := range seg.Records {
					emit(string(rec), int64(i), []byte{byte(seg.ID)})
				}
				return nil
			},
			Reduce: func(_ int, key string, values []Shuffled) error {
				mu.Lock()
				defer mu.Unlock()
				for _, v := range values {
					out[key] = append(out[key], v.MapperID*100+int(v.RecordID))
				}
				return nil
			},
			Conf: Config{NumReducers: 2, ExternalSort: ext},
		}
		if _, err := job.Run(segs); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatal("group counts differ")
	}
	for k, v := range a {
		w := b[k]
		if len(v) != len(w) {
			t.Fatalf("key %s lengths differ", k)
		}
		for i := range v {
			if v[i] != w[i] {
				t.Fatalf("key %s order differs: %v vs %v", k, v, w)
			}
		}
	}
}

func TestParseSortedLineErrors(t *testing.T) {
	for _, bad := range []string{"", "onlyone", "zz\t00\t00\t00", "61\t00\t00\tzz", "61\txx\t00\t61"} {
		if _, err := parseSortedLine([]byte(bad)); err == nil {
			t.Errorf("parseSortedLine(%q): expected error", bad)
		}
	}
	rec, err := parseSortedLine([]byte("61\t00000000000000000000\t00000000000000000003\t62"))
	if err != nil {
		t.Fatal(err)
	}
	if rec.key != "a" || rec.mapperID != 0 || rec.recordID != 3 || string(rec.value) != "b" {
		t.Fatalf("parsed: %+v", rec)
	}
}
