package mapreduce

import (
	"bytes"
	"testing"

	"repro/internal/fuzzseed"
	"repro/internal/wire"
)

// segSeedRecs builds a run shaped like real query traffic: a handful of
// group keys, records sorted by key with ascending recordID/seq, and
// small opaque summary payloads. This is what encodeSegment sees after
// the spill sort.
func segSeedRecs() []kvRec {
	keys := []string{"repo/alpha", "repo/beta", "repo/gamma", "user-17", ""}
	var recs []kvRec
	var rid, seq int64
	for _, k := range keys {
		for i := 0; i < 4; i++ {
			rid += int64(i%3) + 1
			seq++
			recs = append(recs, kvRec{
				key:      k,
				mapperID: 3,
				recordID: rid,
				seq:      seq,
				value:    bytes.Repeat([]byte{byte(rid), 0x80, byte(i)}, i+1),
			})
		}
	}
	// One empty value: decode canonicalizes it to nil and the round trip
	// must still hold.
	recs = append(recs, kvRec{key: "repo/alpha", mapperID: 3, recordID: rid + 9, seq: seq + 9})
	return recs
}

// FuzzSegmentDecode feeds decodeSegment arbitrary bytes. The contract
// under test: malformed input — truncated flate frames, forged record
// counts, out-of-range dictionary indexes, trailing garbage — returns an
// error, never panics and never over-allocates; input it accepts must
// survive a re-encode/decode round trip unchanged. Seeds come from the
// committed corpus in testdata/fuzz-seeds/segments — genuine encoder
// output plus one entry per corruption class — so mutations start one
// bit-flip away from the interesting paths.
func FuzzSegmentDecode(f *testing.F) {
	seeds, err := fuzzseed.Load("segments")
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range seeds {
		f.Add(s.Data)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, in []byte) {
		got, err := decodeSegment(in)
		if err != nil {
			return
		}
		// Accepted input: re-encoding the decoded records must reproduce
		// them exactly (encode→decode is lossless, so decode→encode→decode
		// is a fixpoint).
		re := encodeSegment(got, false)
		got2, err := decodeSegment(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded segment failed: %v", err)
		}
		if len(got) != len(got2) {
			t.Fatalf("round trip changed record count: %d vs %d", len(got), len(got2))
		}
		for i := range got {
			a, b := got[i], got2[i]
			if a.key != b.key || a.mapperID != b.mapperID ||
				a.recordID != b.recordID || a.seq != b.seq ||
				!bytes.Equal(a.value, b.value) {
				t.Fatalf("round trip changed record %d: %+v vs %+v", i, a, b)
			}
		}
		kvBufs.put(got2)
		kvBufs.put(got)
	})
}

// TestDecodeSegmentRejectsCorruption pins the decoder's behaviour on the
// specific corruptions the wire format is exposed to in flight: every
// case must return an error (not panic) and name ErrCorrupt or a decode
// error, and truncating an encoded segment at any byte must never be
// accepted as a full segment.
func TestDecodeSegmentRejectsCorruption(t *testing.T) {
	recs := segSeedRecs()
	for _, compress := range []bool{false, true} {
		seg := encodeSegment(recs, compress)

		// Every strict prefix is either rejected or (for the raw form)
		// decodes fewer records than the original claimed — it must never
		// silently produce the full record set.
		for cut := 0; cut < len(seg); cut++ {
			got, err := decodeSegment(seg[:cut])
			if err == nil {
				t.Fatalf("compress=%v: truncation at %d/%d accepted (%d records)",
					compress, cut, len(seg), len(got))
			}
		}

		// Flipping the flags byte to an unknown value must be rejected.
		bad := append([]byte(nil), seg...)
		bad[0] = 0x7C
		if _, err := decodeSegment(bad); err == nil {
			t.Fatalf("compress=%v: unknown flags byte accepted", compress)
		}
	}

	// Corrupt dictionary: a key index pointing outside the dictionary.
	// Build the payload by hand — one record, empty dictionary.
	e := wire.NewEncoder(0)
	e.Uvarint(1)           // one record
	e.Uvarint(0)           // mapperID
	e.StringDict(nil)      // empty dictionary
	e.Varint(5)            // key index 5 — out of range
	e.Varint(0)            // recordID delta
	e.Varint(0)            // seq delta
	e.BytesField([]byte{}) // value
	buf := append([]byte{segRaw}, e.Bytes()...)
	if _, err := decodeSegment(buf); err == nil {
		t.Fatal("out-of-range dictionary index accepted")
	}

	// Trailing garbage after a well-formed segment.
	seg := append(encodeSegment(recs, false), 0xAA, 0xBB)
	if _, err := decodeSegment(seg); err == nil {
		t.Fatal("trailing bytes after segment accepted")
	}

	// Compressed frame whose inner payload is garbage: recompress junk so
	// the flate frame itself is valid but the segment payload is not.
	ge := wire.NewEncoder(0)
	ge.Byte(segFlate)
	ge.CompressedBlock([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	if _, err := decodeSegment(ge.Bytes()); err == nil {
		t.Fatal("garbage compressed payload accepted")
	}
}
