package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// ---- shared harness ----

// spillTestDir returns a fresh spill directory and registers a cleanup
// asserting that no job left any file behind — failed and losing
// attempts must remove their temp dirs, and a finished job must remove
// its whole spill tree.
func spillTestDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	t.Cleanup(func() {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("reading spill dir: %v", err)
			return
		}
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		if len(names) != 0 {
			t.Errorf("spill dir not empty after test: %v", names)
		}
	})
	return dir
}

// checkGoroutineLeaks snapshots the goroutine count and asserts at test
// cleanup that it returns to the baseline — a hand-rolled goleak. The
// poll loop tolerates goroutines still draining when the job returns.
func checkGoroutineLeaks(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d running, baseline %d\n%s",
					runtime.NumGoroutine(), base, buf[:n])
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	})
}

// fastRetries keeps chaos-era retry backoffs out of the test budget.
func fastRetries(conf Config) Config {
	conf.RetryBackoff = 100 * time.Microsecond
	conf.MaxRetryBackoff = time.Millisecond
	return conf
}

// countingSegments builds numSegments segments of numbered records.
func countingSegments(numSegments, perSeg int) []*Segment {
	segs := make([]*Segment, numSegments)
	for i := range segs {
		segs[i] = &Segment{ID: i}
		for r := 0; r < perSeg; r++ {
			segs[i].Records = append(segs[i].Records, []byte(fmt.Sprintf("%d-%d", i, r)))
		}
	}
	return segs
}

// runIdempotentCapture executes a deterministic multi-emit job whose
// reduce side is idempotent (retry-safe): each group's delivered stream
// is rendered to a string and stored keyed by (reducer, key), overwrite
// on re-execution. The returned snapshot is a canonical rendering,
// comparable byte for byte across engine configurations and fault
// schedules.
func runIdempotentCapture(t *testing.T, segs []*Segment, conf Config) (string, *Metrics) {
	t.Helper()
	var mu sync.Mutex
	groups := map[string]string{}
	job := &Job{
		Name: "chaos-capture",
		Map: func(id int, seg *Segment, emit Emit) error {
			for i, rec := range seg.Records {
				emit(fmt.Sprintf("key-%d", (len(rec)+int(rec[0]))%13), int64(i), rec)
				if i%3 == 0 {
					emit(fmt.Sprintf("key-%d", i%7), int64(i), rec)
				}
			}
			return nil
		},
		Reduce: func(r int, key string, values []Shuffled) error {
			var b strings.Builder
			for _, v := range values {
				fmt.Fprintf(&b, "%d:%d:%s ", v.MapperID, v.RecordID, v.Value)
			}
			mu.Lock()
			groups[fmt.Sprintf("%d/%s", r, key)] = b.String()
			mu.Unlock()
			return nil
		},
		Conf: conf,
	}
	m, err := job.Run(segs)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s => %s\n", k, groups[k])
	}
	return b.String(), m
}

// ---- retry lifecycle ----

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	checkGoroutineLeaks(t)
	const tasks = 4
	var fails [tasks]atomic.Int32
	var mu sync.Mutex
	counts := map[string]int{}
	job := &Job{
		Name: "transient",
		Map: func(id int, seg *Segment, emit Emit) error {
			if fails[id].Add(1) <= 2 {
				return fmt.Errorf("transient failure on task %d", id)
			}
			for i, rec := range seg.Records {
				emit(string(rec), int64(i), nil)
			}
			return nil
		},
		Reduce: func(_ int, key string, values []Shuffled) error {
			mu.Lock()
			counts[key] = len(values)
			mu.Unlock()
			return nil
		},
		Conf: fastRetries(Config{NumReducers: 2, MaxAttempts: 3}),
	}
	m, err := job.Run(countingSegments(tasks, 5))
	if err != nil {
		t.Fatalf("job should have recovered: %v", err)
	}
	if len(counts) != tasks*5 {
		t.Errorf("got %d keys, want %d", len(counts), tasks*5)
	}
	if m.MapAttempts != tasks*3 {
		t.Errorf("MapAttempts = %d, want %d", m.MapAttempts, tasks*3)
	}
	if m.TaskRetries != tasks*2 {
		t.Errorf("TaskRetries = %d, want %d", m.TaskRetries, tasks*2)
	}
	if len(m.MapTasks) != tasks {
		t.Errorf("MapTasks = %d, want %d", len(m.MapTasks), tasks)
	}
}

func TestRetriesExhaustedAggregateErrors(t *testing.T) {
	checkGoroutineLeaks(t)
	sentinelA := errors.New("task A keeps dying")
	sentinelB := errors.New("task B keeps dying")
	job := &Job{
		Name: "doomed",
		Map: func(id int, seg *Segment, emit Emit) error {
			if id == 0 {
				return sentinelA
			}
			return sentinelB
		},
		Reduce: func(int, string, []Shuffled) error { return nil },
		Conf:   fastRetries(Config{MaxAttempts: 3}),
	}
	_, err := job.Run(countingSegments(2, 3))
	if err == nil {
		t.Fatal("job should have failed")
	}
	if !errors.Is(err, sentinelA) || !errors.Is(err, sentinelB) {
		t.Errorf("aggregated error should carry both tasks' failures, got: %v", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error should report the exhausted budget, got: %v", err)
	}
}

func TestReduceRetryRecovers(t *testing.T) {
	checkGoroutineLeaks(t)
	var reduceFails atomic.Int32
	var mu sync.Mutex
	counts := map[string]int{}
	job := &Job{
		Name: "reduce-retry",
		Map: func(id int, seg *Segment, emit Emit) error {
			for i, rec := range seg.Records {
				emit(string(rec), int64(i), rec)
			}
			return nil
		},
		Reduce: func(_ int, key string, values []Shuffled) error {
			if reduceFails.Add(1) == 1 {
				return errors.New("first reduce attempt dies")
			}
			mu.Lock()
			counts[key] = len(values)
			mu.Unlock()
			return nil
		},
		Conf: fastRetries(Config{NumReducers: 1, MaxAttempts: 2}),
	}
	m, err := job.Run(countingSegments(3, 4))
	if err != nil {
		t.Fatalf("reduce retry should have recovered: %v", err)
	}
	if len(counts) != 12 {
		t.Errorf("got %d keys, want 12", len(counts))
	}
	if m.ReduceAttempts != 2 {
		t.Errorf("ReduceAttempts = %d, want 2", m.ReduceAttempts)
	}
}

// ---- speculation ----

func TestSpeculationFirstFinisherWins(t *testing.T) {
	checkGoroutineLeaks(t)
	const tasks, straggler = 8, 5
	var calls [tasks]atomic.Int32
	var mu sync.Mutex
	counts := map[string]int{}
	job := &Job{
		Name: "speculate",
		Map: func(id int, seg *Segment, emit Emit) error {
			// The straggler's first attempt stalls long enough for the
			// watchdog to launch a backup; the backup (second call for
			// the same task) runs at full speed and must win the commit.
			if id == straggler && calls[id].Add(1) == 1 {
				time.Sleep(150 * time.Millisecond)
			} else {
				calls[id].Add(1)
			}
			for i, rec := range seg.Records {
				emit(string(rec), int64(i), nil)
			}
			return nil
		},
		Reduce: func(_ int, key string, values []Shuffled) error {
			mu.Lock()
			counts[key] = len(values)
			mu.Unlock()
			return nil
		},
		Conf: Config{NumReducers: 2, Parallelism: 4, Speculation: true},
	}
	m, err := job.Run(countingSegments(tasks, 6))
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != tasks*6 {
		t.Errorf("got %d keys, want %d", len(counts), tasks*6)
	}
	if m.SpeculativeTasks < 1 {
		t.Errorf("no speculative attempt launched (SpeculativeTasks=%d)", m.SpeculativeTasks)
	}
	if m.SpeculativeWins < 1 {
		t.Errorf("backup should have won the commit race (SpeculativeWins=%d)", m.SpeculativeWins)
	}
	if len(m.MapTasks) != tasks {
		t.Errorf("MapTasks = %d, want %d (losing attempt's metrics must not double-count)",
			len(m.MapTasks), tasks)
	}
}

// ---- disk spill commit protocol ----

func TestSpillModeMatchesMemoryMode(t *testing.T) {
	checkGoroutineLeaks(t)
	segs := countingSegments(6, 40)
	memConf := Config{NumReducers: 3, Parallelism: 4}
	spillConf := memConf
	spillConf.SpillDir = spillTestDir(t)
	got, gm := runIdempotentCapture(t, segs, spillConf)
	want, wm := runIdempotentCapture(t, segs, memConf)
	if got != want {
		t.Errorf("disk-spill output differs from in-memory output:\nspill:\n%s\nmemory:\n%s", got, want)
	}
	if gm.ShuffleBytes != wm.ShuffleBytes || gm.ShuffleRecords != wm.ShuffleRecords || gm.Groups != wm.Groups {
		t.Errorf("accounting diverged: spill %d/%d/%d, memory %d/%d/%d",
			gm.ShuffleBytes, gm.ShuffleRecords, gm.Groups,
			wm.ShuffleBytes, wm.ShuffleRecords, wm.Groups)
	}
}

func TestFailedJobLeavesNoSpillFiles(t *testing.T) {
	checkGoroutineLeaks(t)
	dir := spillTestDir(t)
	job := &Job{
		Name: "doomed-spill",
		Map: func(id int, seg *Segment, emit Emit) error {
			for i, rec := range seg.Records {
				emit(string(rec), int64(i), rec)
			}
			if id == 2 {
				return errors.New("dies after emitting")
			}
			return nil
		},
		Reduce: func(int, string, []Shuffled) error { return nil },
		Conf:   fastRetries(Config{NumReducers: 2, MaxAttempts: 2, SpillDir: dir}),
	}
	if _, err := job.Run(countingSegments(4, 20)); err == nil {
		t.Fatal("job should have failed")
	}
	// The spillTestDir cleanup asserts the directory is empty.
}

func TestRunFileRoundTrip(t *testing.T) {
	// One run is one mapper's output: mapperID is constant, encoded once
	// per segment (the codec panics on a mixed run).
	const mapper = 1 << 18
	recs := []kvRec{
		{key: "", mapperID: mapper, recordID: 0, seq: 0, value: nil},
		{key: "k", mapperID: mapper, recordID: 7, seq: 1, value: []byte("v")},
		{key: strings.Repeat("long", 100), mapperID: mapper, recordID: 1 << 40, seq: 9, value: make([]byte, 3000)},
	}
	for i := 0; i < 200; i++ {
		recs = append(recs, kvRec{
			key:      fmt.Sprintf("key-%d", i%17),
			mapperID: mapper,
			recordID: int64(i),
			seq:      int64(i),
			value:    []byte(strconv.Itoa(i * 13)),
		})
	}
	for _, compress := range []bool{false, true} {
		dir := t.TempDir()
		path := dir + "/round.run"
		if err := writeRunFile(path, encodeSegment(recs, compress)); err != nil {
			t.Fatal(err)
		}
		got, err := decodeRunFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(recs) {
			t.Fatalf("compress=%v: decoded %d records, want %d", compress, len(got), len(recs))
		}
		for i := range recs {
			a, b := &recs[i], &got[i]
			if a.key != b.key || a.mapperID != b.mapperID || a.recordID != b.recordID ||
				a.seq != b.seq || string(a.value) != string(b.value) {
				t.Fatalf("compress=%v: record %d: got %+v want %+v", compress, i, got[i], recs[i])
			}
		}
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunFileRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	for _, compress := range []bool{false, true} {
		path := dir + "/bad.run"
		seg := encodeSegment([]kvRec{{key: "k", value: []byte("v")}}, compress)
		if err := writeRunFile(path, seg); err != nil {
			t.Fatal(err)
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, mutate := range []func([]byte) []byte{
			func(b []byte) []byte { return b[:len(b)-1] },          // truncated
			func(b []byte) []byte { b[0] ^= 0xFF; return b },       // bad magic
			func(b []byte) []byte { b[4] ^= 0xF0; return b },       // bad segment flags
			func(b []byte) []byte { return append(b, 0x00, 0x01) }, // trailing bytes
		} {
			bad := mutate(append([]byte(nil), buf...))
			if err := os.WriteFile(path, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := decodeRunFile(path); err == nil {
				t.Errorf("corrupted run file decoded without error (compress=%v)", compress)
			}
		}
	}
}

// ---- chaos differential at the engine level ----

// TestChaosDifferentialEngine is the engine-level half of the chaos
// suite: across seeds, inject kill/delay/error faults at every task
// boundary and assert the delivered reduce streams are byte-identical
// to the fault-free run. CHAOS_SEEDS widens the sweep (CI runs 100).
func TestChaosDifferentialEngine(t *testing.T) {
	checkGoroutineLeaks(t)
	seeds := chaosSeedCount(t, 12)
	segs := countingSegments(6, 60)
	clean := Config{NumReducers: 3, Parallelism: 4}
	want, wm := runIdempotentCapture(t, segs, clean)
	// A second fault-free baseline with the compressed wire path: the
	// output must be identical, only the accounting (wire bytes) differs.
	cleanC := clean
	cleanC.CompressShuffle = true
	wantC, wmC := runIdempotentCapture(t, segs, cleanC)
	if wantC != want {
		t.Fatalf("CompressShuffle changed the fault-free output:\ncompressed:\n%s\nraw:\n%s", wantC, want)
	}

	var injected int64
	for seed := 0; seed < seeds; seed++ {
		plan := NewFaultPlan(int64(seed)).WithMaxDelay(time.Millisecond)
		conf := fastRetries(Config{
			NumReducers: 3,
			Parallelism: 4,
			MaxAttempts: 4,
			Speculation: true,
			Faults:      plan,
		})
		if seed%3 == 0 {
			conf.SpillDir = spillTestDir(t)
		}
		// Half the sweep exercises the flate wire path, so retried and
		// speculative attempts re-encode compressed frames too.
		refOut, refM := want, wm
		if seed%2 == 0 {
			conf.CompressShuffle = true
			refOut, refM = wantC, wmC
		}
		got, gm := runIdempotentCapture(t, segs, conf)
		if got != refOut {
			t.Fatalf("seed %d: chaos run diverged from fault-free run\nchaos:\n%s\nclean:\n%s", seed, got, refOut)
		}
		if gm.Groups != refM.Groups || gm.ShuffleRecords != refM.ShuffleRecords || gm.ShuffleBytes != refM.ShuffleBytes {
			t.Fatalf("seed %d: accounting diverged: chaos %d/%d/%d, clean %d/%d/%d", seed,
				gm.Groups, gm.ShuffleRecords, gm.ShuffleBytes, refM.Groups, refM.ShuffleRecords, refM.ShuffleBytes)
		}
		injected += plan.Injected()
	}
	if injected == 0 {
		t.Error("chaos sweep injected no faults — the harness is not arming")
	}
}

// TestChaosKillsEveryAttemptFailsCleanly drives a job into exhaustion
// under unsparing kill faults and asserts the failure is a clean
// aggregated error, with nothing leaked.
func TestChaosKillsEveryAttemptFailsCleanly(t *testing.T) {
	checkGoroutineLeaks(t)
	dir := spillTestDir(t)
	plan := NewFaultPlan(7).
		WithRate(1).
		WithKinds(KindKill).
		WithPoints(PointMapStart).
		WithSpareFinal(false)
	job := &Job{
		Name: "all-killed",
		Map: func(id int, seg *Segment, emit Emit) error {
			emit("k", 0, nil)
			return nil
		},
		Reduce: func(int, string, []Shuffled) error { return nil },
		Conf:   fastRetries(Config{NumReducers: 2, MaxAttempts: 3, SpillDir: dir, Faults: plan}),
	}
	_, err := job.Run(countingSegments(3, 2))
	if err == nil {
		t.Fatal("job should have failed: every attempt killed")
	}
	if !strings.Contains(err.Error(), "killed") {
		t.Errorf("error should surface the kill faults: %v", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error should report the exhausted budget: %v", err)
	}
	if got := plan.InjectedAt(PointMapStart, KindKill); got < 3 {
		t.Errorf("expected at least one kill per task, got %d", got)
	}
}

// chaosSeedCount reads the CHAOS_SEEDS override used by the CI chaos
// job and verify.sh; def is the default sweep width.
func chaosSeedCount(t *testing.T, def int) int {
	t.Helper()
	if v := os.Getenv("CHAOS_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad CHAOS_SEEDS %q", v)
		}
		return n
	}
	if testing.Short() {
		return max(def/4, 2)
	}
	return def
}

// ---- determinism of the plan itself ----

func TestFaultPlanDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := NewFaultPlan(seed)
		b := NewFaultPlan(seed)
		other := NewFaultPlan(seed + 1)
		same, diff := 0, 0
		for _, pt := range AllFaultPoints() {
			for task := 0; task < 20; task++ {
				for attempt := 0; attempt < 4; attempt++ {
					ka, da, oka := a.decide(pt, task, attempt, 5)
					kb, db, okb := b.decide(pt, task, attempt, 5)
					if oka != okb || ka != kb || da != db {
						t.Fatalf("seed %d: decide(%v,%d,%d) not deterministic", seed, pt, task, attempt)
					}
					ko, do, oko := other.decide(pt, task, attempt, 5)
					if oka == oko && ka == ko && da == do {
						same++
					} else {
						diff++
					}
				}
			}
		}
		if diff == 0 {
			t.Errorf("seed %d and %d produce identical plans across %d coordinates", seed, seed+1, same)
		}
	}
}

func TestFaultPlanSparesFinalAttempt(t *testing.T) {
	plan := NewFaultPlan(3).WithRate(1)
	for _, pt := range AllFaultPoints() {
		for task := 0; task < 50; task++ {
			if _, _, ok := plan.decide(pt, task, 3, 4); ok {
				t.Fatalf("final attempt faulted at %v task %d", pt, task)
			}
			found := false
			for attempt := 0; attempt < 3; attempt++ {
				if _, _, ok := plan.decide(pt, task, attempt, 4); ok {
					found = true
				}
			}
			if !found {
				t.Fatalf("rate-1.0 plan never faulted %v task %d on non-final attempts", pt, task)
			}
		}
	}
}

// ---- goroutine leaks on every exit path ----

func TestNoGoroutineLeakOnSuccess(t *testing.T) {
	checkGoroutineLeaks(t)
	segs := countingSegments(5, 30)
	if _, err := (&Job{
		Name: "ok",
		Map: func(id int, seg *Segment, emit Emit) error {
			for i, rec := range seg.Records {
				emit(string(rec), int64(i), nil)
			}
			return nil
		},
		Reduce: func(int, string, []Shuffled) error { return nil },
		Conf:   Config{NumReducers: 3, Speculation: true},
	}).Run(segs); err != nil {
		t.Fatal(err)
	}
}

func TestNoGoroutineLeakOnFailure(t *testing.T) {
	checkGoroutineLeaks(t)
	if _, err := (&Job{
		Name:   "fail",
		Map:    func(int, *Segment, Emit) error { return errors.New("boom") },
		Reduce: func(int, string, []Shuffled) error { return nil },
		Conf:   fastRetries(Config{NumReducers: 2, MaxAttempts: 3, Speculation: true}),
	}).Run(countingSegments(4, 10)); err == nil {
		t.Fatal("expected failure")
	}
}

func TestNoGoroutineLeakOnCancel(t *testing.T) {
	checkGoroutineLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	job := &Job{
		Name: "cancelled",
		Map: func(id int, seg *Segment, emit Emit) error {
			once.Do(func() { close(started) })
			time.Sleep(5 * time.Millisecond)
			for i, rec := range seg.Records {
				emit(string(rec), int64(i), nil)
			}
			return nil
		},
		Reduce: func(int, string, []Shuffled) error { return nil },
		Conf:   Config{NumReducers: 2, Parallelism: 2, MaxAttempts: 3, Speculation: true},
	}
	done := make(chan error, 1)
	go func() {
		_, err := job.RunContext(ctx, countingSegments(12, 5))
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("RunContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled job did not return")
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job := &Job{
		Name:   "precancel",
		Map:    func(int, *Segment, Emit) error { t.Error("map ran"); return nil },
		Reduce: func(int, string, []Shuffled) error { return nil },
	}
	if _, err := job.RunContext(ctx, countingSegments(2, 2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
