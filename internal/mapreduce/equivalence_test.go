package mapreduce

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// captureJob runs a word-emitting job under the given config and records
// the exact reduce-side delivery — per reducer, the ordered stream of
// (key, mapperID, recordID, value) — in a printable form, so engine
// variants can be compared byte for byte.
func captureJob(t *testing.T, segs []*Segment, conf Config, emitsPerRecord func(rec []byte) []string) (map[int]string, *Metrics) {
	t.Helper()
	var mu sync.Mutex
	streams := map[int]*strings.Builder{}
	job := &Job{
		Name: "capture",
		Map: func(id int, seg *Segment, emit Emit) error {
			for i, rec := range seg.Records {
				for _, key := range emitsPerRecord(rec) {
					emit(key, int64(i), rec)
				}
			}
			return nil
		},
		Reduce: func(r int, key string, values []Shuffled) error {
			mu.Lock()
			defer mu.Unlock()
			b := streams[r]
			if b == nil {
				b = &strings.Builder{}
				streams[r] = b
			}
			fmt.Fprintf(b, "group %q\n", key)
			for _, v := range values {
				fmt.Fprintf(b, "  %d %d %q\n", v.MapperID, v.RecordID, v.Value)
			}
			return nil
		},
		Conf: conf,
	}
	m, err := job.Run(segs)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int]string, len(streams))
	for r, b := range streams {
		out[r] = b.String()
	}
	return out, m
}

func randomSegments(rng *rand.Rand, numSegments, maxPerSeg int) []*Segment {
	segs := make([]*Segment, numSegments)
	for i := range segs {
		segs[i] = &Segment{ID: i}
		n := rng.Intn(maxPerSeg + 1)
		for r := 0; r < n; r++ {
			segs[i].Records = append(segs[i].Records,
				[]byte(fmt.Sprintf("rec-%d-%d-%d", i, r, rng.Intn(1000))))
		}
	}
	return segs
}

// TestStreamingMatchesBarrier asserts the determinism/equivalence
// invariant of the shuffle rewrite: the streaming spill-run/merge engine
// delivers a byte-identical group stream — same reducers, same group
// order, same within-group record order, same payloads — as the
// pre-streaming barrier engine, across randomized inputs, segmentations
// and reducer counts.
func TestStreamingMatchesBarrier(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		numSegs := 1 + rng.Intn(7)
		reducers := 1 + rng.Intn(5)
		segs := randomSegments(rng, numSegs, 120)
		// One emit per record with a skewed key space: ties in
		// (key, mapperID, recordID) cannot occur, so both engines'
		// orders are fully determined.
		emits := func(rec []byte) []string {
			return []string{fmt.Sprintf("key-%d", len(rec)%17)}
		}
		conf := Config{NumReducers: reducers, Parallelism: 4}
		barrier := conf
		barrier.BarrierShuffle = true
		got, gm := captureJob(t, segs, conf, emits)
		want, wm := captureJob(t, segs, barrier, emits)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d reducers produced output, barrier %d", seed, len(got), len(want))
		}
		for r, s := range want {
			if got[r] != s {
				t.Errorf("seed %d reducer %d: streams differ\nstreaming:\n%s\nbarrier:\n%s", seed, r, got[r], s)
			}
		}
		// The streaming engine ships compact segments, so its wire bytes
		// differ from the barrier's legacy framing — but the logical
		// volume (the framing both engines agree on) must match exactly,
		// and the segment encoding must never inflate past it.
		if gm.ShuffleLogicalBytes != wm.ShuffleBytes || gm.ShuffleRecords != wm.ShuffleRecords ||
			gm.Groups != wm.Groups || gm.InputBytes != wm.InputBytes ||
			gm.InputRecords != wm.InputRecords {
			t.Errorf("seed %d: accounting diverged: streaming %+v barrier %+v", seed, gm, wm)
		}
		if gm.ShuffleBytes > gm.ShuffleLogicalBytes {
			t.Errorf("seed %d: segment encoding inflated the shuffle: wire %d > logical %d",
				seed, gm.ShuffleBytes, gm.ShuffleLogicalBytes)
		}
	}
}

// TestStreamingMatchesBarrierMultiEmit covers records that emit several
// keys — including repeated keys from the same record, the one case
// where the shuffle's (key, mapperID, recordID) order has ties. The
// streaming engine resolves ties by emit order; the barrier engine's
// unstable sort does not promise an order, so tied emits here carry the
// record payload (identical for tied emits) and the comparison stays
// exact.
func TestStreamingMatchesBarrierMultiEmit(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		segs := randomSegments(rng, 1+rng.Intn(5), 80)
		emits := func(rec []byte) []string {
			k := fmt.Sprintf("w%d", len(rec)%11)
			return []string{k, fmt.Sprintf("w%d", int(rec[0])%7), k}
		}
		conf := Config{NumReducers: 3, Parallelism: 3}
		barrier := conf
		barrier.BarrierShuffle = true
		got, _ := captureJob(t, segs, conf, emits)
		want, _ := captureJob(t, segs, barrier, emits)
		for r, s := range want {
			if got[r] != s {
				t.Errorf("seed %d reducer %d: streams differ\nstreaming:\n%s\nbarrier:\n%s", seed, r, got[r], s)
			}
		}
	}
}

// TestStreamingExternalSortMatchesBarrier pins the §6.2 Unix-sort path
// through the streaming engine against the barrier engine's.
func TestStreamingExternalSortMatchesBarrier(t *testing.T) {
	if !externalSortAvailable() {
		t.Skip("no sort binary")
	}
	rng := rand.New(rand.NewSource(7))
	segs := randomSegments(rng, 5, 60)
	emits := func(rec []byte) []string {
		return []string{fmt.Sprintf("key-%d", len(rec)%13)}
	}
	conf := Config{NumReducers: 2, ExternalSort: true}
	barrier := conf
	barrier.BarrierShuffle = true
	got, _ := captureJob(t, segs, conf, emits)
	want, _ := captureJob(t, segs, barrier, emits)
	for r, s := range want {
		if got[r] != s {
			t.Errorf("reducer %d: streams differ\nstreaming:\n%s\nbarrier:\n%s", r, got[r], s)
		}
	}
}

// TestStreamingExternalSortFallsBackWithoutSortBinary pins the Config
// contract that ExternalSort falls back to the in-process sort when no
// sort binary is on PATH. The map side skips its spill sort under
// ExternalSort, so the streaming engine must do the full partition sort
// reduce-side here — without it, the loser tree merges unsorted runs and
// fragments each key into many Reduce calls. The barrier engine, which
// has always honored the fallback, is the oracle.
func TestStreamingExternalSortFallsBackWithoutSortBinary(t *testing.T) {
	t.Setenv("PATH", "")
	if externalSortAvailable() {
		t.Fatal("sort binary still resolvable with empty PATH")
	}
	rng := rand.New(rand.NewSource(11))
	segs := randomSegments(rng, 6, 80)
	emits := func(rec []byte) []string {
		return []string{fmt.Sprintf("key-%d", len(rec)%5)}
	}
	conf := Config{NumReducers: 2, ExternalSort: true, Parallelism: 4}
	barrier := conf
	barrier.BarrierShuffle = true
	got, gm := captureJob(t, segs, conf, emits)
	want, wm := captureJob(t, segs, barrier, emits)
	if len(got) != len(want) {
		t.Fatalf("%d reducers produced output, barrier %d", len(got), len(want))
	}
	for r, s := range want {
		if got[r] != s {
			t.Errorf("reducer %d: streams differ\nstreaming:\n%s\nbarrier:\n%s", r, got[r], s)
		}
	}
	if gm.Groups != wm.Groups {
		t.Errorf("groups = %d, barrier %d (fragmented groups?)", gm.Groups, wm.Groups)
	}
}

// TestLoserTreeMerge checks the k-way merge against sort over the
// concatenation, for assorted run shapes including empty runs and k not
// a power of two.
func TestLoserTreeMerge(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		k := rng.Intn(9) // 0..8 runs
		runs := make([]spillRun, k)
		var all []kvRec
		for m := 0; m < k; m++ {
			n := rng.Intn(30)
			recs := make([]kvRec, 0, n)
			for r := 0; r < n; r++ {
				recs = append(recs, kvRec{
					key:      fmt.Sprintf("k%d", rng.Intn(6)),
					mapperID: m,
					recordID: int64(r),
				})
			}
			sortRun(recs)
			all = append(all, recs...)
			runs[m] = spillRun{recs: recs}
		}
		sort.SliceStable(all, func(a, b int) bool { return recLess(&all[a], &all[b]) })
		tree := newLoserTree(runs)
		var got []kvRec
		for {
			h := tree.peek()
			if h == nil {
				break
			}
			got = append(got, *h)
			tree.advance()
		}
		if len(got) != len(all) {
			t.Fatalf("seed %d: merged %d records, want %d", seed, len(got), len(all))
		}
		for i := range got {
			if got[i].key != all[i].key || got[i].mapperID != all[i].mapperID ||
				got[i].recordID != all[i].recordID {
				t.Fatalf("seed %d: position %d: got %+v want %+v", seed, i, got[i], all[i])
			}
		}
	}
}

// TestPartitionMatchesFNV pins the inlined FNV-1a against hash/fnv.
func TestPartitionMatchesFNV(t *testing.T) {
	keys := []string{"", "a", "ab", "user42", "advertiser-9", "Ω≈ç√∫", strings.Repeat("x", 300)}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		keys = append(keys, fmt.Sprintf("key-%d-%d", i, rng.Int63()))
	}
	for _, key := range keys {
		for _, n := range []int{1, 2, 7, 64} {
			h := fnv.New32a()
			_, _ = h.Write([]byte(key))
			want := int(h.Sum32() % uint32(n))
			if got := partition(key, n); got != want {
				t.Fatalf("partition(%q, %d) = %d, fnv says %d", key, n, got, want)
			}
		}
	}
}

// TestWireSizeMatchesEncoder pins the arithmetic wire size against the
// original encoder-backed computation across varint length boundaries.
func TestWireSizeMatchesEncoder(t *testing.T) {
	recs := []kvRec{
		{},
		{key: "k", mapperID: 1, recordID: 1, value: []byte("v")},
		{key: strings.Repeat("k", 127), mapperID: 127, recordID: 127, value: make([]byte, 127)},
		{key: strings.Repeat("k", 128), mapperID: 128, recordID: 128, value: make([]byte, 128)},
		{key: strings.Repeat("k", 20000), mapperID: 1 << 20, recordID: 1 << 40, value: make([]byte, 16384)},
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		recs = append(recs, kvRec{
			key:      strings.Repeat("a", rng.Intn(500)),
			mapperID: rng.Intn(1 << 16),
			recordID: rng.Int63(),
			value:    make([]byte, rng.Intn(2000)),
		})
	}
	for _, r := range recs {
		if got, want := r.wireSize(), legacyWireSize(&r); got != want {
			t.Fatalf("wireSize(%d-byte key, mapper %d, record %d, %d-byte value) = %d, encoder says %d",
				len(r.key), r.mapperID, r.recordID, len(r.value), got, want)
		}
	}
}

// TestPipelinedStress drives many mappers and reducers concurrently —
// enough spill runs per partition to exercise pre-merge folding — and
// verifies counts. Run with -race this covers the no-barrier pipeline's
// synchronization.
func TestPipelinedStress(t *testing.T) {
	const segsN, perSeg, reducers = 24, 200, 6
	segs := make([]*Segment, segsN)
	for i := range segs {
		segs[i] = &Segment{ID: i}
		for r := 0; r < perSeg; r++ {
			segs[i].Records = append(segs[i].Records, []byte(fmt.Sprintf("%d-%d", i, r)))
		}
	}
	var groups, records int64
	var mu sync.Mutex
	job := &Job{
		Name: "stress",
		Map: func(id int, seg *Segment, emit Emit) error {
			for i, rec := range seg.Records {
				emit(fmt.Sprintf("key-%d", (id*perSeg+i)%97), int64(i), rec)
			}
			return nil
		},
		Reduce: func(_ int, key string, values []Shuffled) error {
			mu.Lock()
			groups++
			records += int64(len(values))
			mu.Unlock()
			return nil
		},
		Conf: Config{NumReducers: reducers, Parallelism: 4},
	}
	m, err := job.Run(segs)
	if err != nil {
		t.Fatal(err)
	}
	if groups != 97 || m.Groups != 97 {
		t.Errorf("groups = %d (metrics %d), want 97", groups, m.Groups)
	}
	if records != segsN*perSeg || m.ShuffleRecords != segsN*perSeg {
		t.Errorf("records = %d (metrics %d), want %d", records, m.ShuffleRecords, segsN*perSeg)
	}
}
