package mapreduce

// The transport seam. All shuffle movement — committed map-output runs
// travelling from map-side producers to reduce partitions — crosses a
// Transport. The in-process engine uses memTransport (per-partition
// channels, the pre-transport behavior unchanged); internal/cluster
// implements the same seam across processes, streaming the identical
// encoded-run payloads through its length-prefixed TCP frame protocol.
// Because a Run carries the segcodec wire form either way, the reducer
// merge consumes byte-identical input regardless of placement — the
// property the transport-equivalence golden tests pin.

// Run is one committed spill run in wire form: the unit of shuffle
// movement every Transport carries. Exactly one of Seg and Path is set:
// Seg holds the segcodec-encoded segment (memory mode and everything
// that crossed a socket), Path names a committed spill-run file
// (Config.SpillDir mode).
type Run struct {
	// Task, Attempt, Part identify the producer: map task, committing
	// attempt, and destination reduce partition. They join the
	// run_commit/seg_decode trace spans the verifier matches.
	Task    int
	Attempt int
	Part    int
	// Bytes is the encoded (wire) size of the run.
	Bytes int64
	Seg   []byte
	Path  string
}

// RunSink is the producer half of a Transport: committing map attempts
// publish their runs into it. Worker-side cluster code publishes into a
// frame-writing sink; the in-process engine publishes into the full
// Transport directly.
type RunSink interface {
	// Publish delivers one committed run to its partition. It must not
	// block indefinitely when the transport was opened with enough
	// capacity for one run per (task, partition).
	Publish(Run) error
}

// Transport moves committed runs from map-side producers to reduce
// partitions. The engine calls Open once before any task starts,
// Publish once per committed non-empty (task, partition) run, and
// CloseSend exactly once after every map task has resolved; each
// reduce task then drains its Partition channel to completion.
type Transport interface {
	RunSink
	// Open readies numParts partition streams, each able to buffer
	// capacity runs (one per map task) without blocking producers.
	Open(numParts, capacity int)
	// Partition returns partition p's receive stream. The channel is
	// closed after CloseSend once all published runs are delivered.
	Partition(p int) <-chan Run
	// CloseSend marks production complete and closes every partition
	// channel. No Publish may follow.
	CloseSend()
}

// memTransport is the in-process Transport: one buffered channel per
// partition, sized for one run per map task so committing attempts
// never block on reducers.
type memTransport struct {
	chs []chan Run
}

// NewMemTransport returns the in-process Transport the engine defaults
// to when Config.Transport is nil.
func NewMemTransport() Transport { return &memTransport{} }

func (t *memTransport) Open(numParts, capacity int) {
	t.chs = make([]chan Run, numParts)
	for p := range t.chs {
		t.chs[p] = make(chan Run, capacity)
	}
}

func (t *memTransport) Publish(r Run) error {
	t.chs[r.Part] <- r
	return nil
}

func (t *memTransport) Partition(p int) <-chan Run { return t.chs[p] }

func (t *memTransport) CloseSend() {
	for p := range t.chs {
		close(t.chs[p])
	}
}
