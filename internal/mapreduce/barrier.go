package mapreduce

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// The pre-streaming reference engine, selected by Config.BarrierShuffle.
// It preserves the original barrier semantics and cost profile — all map
// output materialized behind a global barrier, partitions concatenated
// and fully re-sorted reduce-side, a fresh []Shuffled per group, and the
// original per-record allocations (a scratch encoder per wire-size
// computation, a hasher and key copy per partition call). It exists so
// the streaming engine has an in-tree equivalence oracle and so the
// benchmarks can report speedup and allocation reduction against a live
// baseline rather than a number in a commit message.

func (j *Job) runBarrier(conf Config, segments []*Segment) (_ *Metrics, err error) {
	m := &Metrics{}
	start := time.Now()

	// The barrier engine predates the task lifecycle (no attempts, no
	// commits, no spill runs), but it still emits job and per-task spans
	// so traced baseline runs are verifiable: every task is attempt 0,
	// committing unconditionally, with no run traffic to match.
	trace := conf.Trace
	jobSpan := trace.StartJob(j.Name)
	defer func() {
		if err != nil {
			jobSpan.Tag("outcome", "error")
		} else {
			jobSpan.Tag("outcome", "ok")
		}
		jobSpan.Attr(obs.AttrParallelism, int64(conf.Parallelism)).
			Attr(obs.AttrWireBytes, m.ShuffleBytes).
			Attr(obs.AttrLogicalBytes, m.ShuffleLogicalBytes).
			Attr(obs.AttrGroups, m.Groups).
			End()
	}()

	// ---- Map phase (global barrier at the end) ----
	mapStart := time.Now()
	type mapOut struct {
		parts [][]kvRec
		task  TaskMetrics
		err   error
	}
	outs := make([]mapOut, len(segments))
	sem := make(chan struct{}, conf.Parallelism)
	var wg sync.WaitGroup
	for i, seg := range segments {
		wg.Add(1)
		go func(i int, seg *Segment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			span := trace.Start(obs.KindMapAttempt, fmt.Sprintf("map-%d", i)).
				Attr(obs.AttrTask, int64(i)).Attr(obs.AttrAttempt, 0).
				Attr(obs.AttrRecords, int64(len(seg.Records)))
			t0 := time.Now()
			parts := make([][]kvRec, conf.NumReducers)
			outBytes := make([]int64, conf.NumReducers)
			emit := func(key string, recordID int64, value []byte) {
				rec := kvRec{key: key, mapperID: seg.ID, recordID: recordID, value: value}
				p := legacyPartition(key, conf.NumReducers)
				parts[p] = append(parts[p], rec)
				outBytes[p] += legacyWireSize(&rec)
			}
			err := j.Map(seg.ID, seg, emit)
			if err != nil {
				span.Tag("outcome", "error").End()
			} else {
				span.Tag("outcome", "ok").End()
				trace.Start(obs.KindCommit, fmt.Sprintf("map-%d", i)).
					Attr(obs.AttrTask, int64(i)).Attr(obs.AttrAttempt, 0).
					Tag("phase", "map").End()
			}
			outs[i] = mapOut{
				parts: parts,
				task: TaskMetrics{
					Duration:        time.Since(t0),
					InputBytes:      seg.Bytes(),
					Records:         int64(len(seg.Records)),
					OutBytes:        outBytes,
					LogicalOutBytes: outBytes,
				},
				err: err,
			}
		}(i, seg)
	}
	wg.Wait()
	for i, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("mapreduce %q: map task %d: %w", j.Name, segments[i].ID, o.err)
		}
		m.MapTasks = append(m.MapTasks, o.task)
		m.MapCPU += o.task.Duration
		m.InputBytes += o.task.InputBytes
		m.InputRecords += int64(len(segments[i].Records))
	}
	m.MapWall = time.Since(mapStart)

	// ---- Shuffle: concatenate and count ----
	partitions := make([][]kvRec, conf.NumReducers)
	for _, o := range outs {
		for p := range o.parts {
			partitions[p] = append(partitions[p], o.parts[p]...)
		}
		for _, b := range o.task.OutBytes {
			m.ShuffleBytes += b
		}
	}
	// The barrier engine ships the legacy framing verbatim, so its wire
	// and logical volumes coincide.
	m.ShuffleLogicalBytes = m.ShuffleBytes
	for p := range partitions {
		m.ShuffleRecords += int64(len(partitions[p]))
	}

	// ---- Reduce phase ----
	reduceStart := time.Now()
	redErrs := make([]error, conf.NumReducers)
	redTasks := make([]TaskMetrics, conf.NumReducers)
	groupCounts := make([]int64, conf.NumReducers)
	var rwg sync.WaitGroup
	for p := 0; p < conf.NumReducers; p++ {
		rwg.Add(1)
		go func(p int) {
			defer rwg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			span := trace.Start(obs.KindReduceAttempt, fmt.Sprintf("reduce-%d", p)).
				Attr(obs.AttrTask, int64(p)).Attr(obs.AttrAttempt, 0)
			defer func() {
				if redErrs[p] != nil {
					span.Tag("outcome", "error").End()
					return
				}
				span.Tag("outcome", "ok").Attr(obs.AttrGroups, groupCounts[p]).End()
				trace.Start(obs.KindCommit, fmt.Sprintf("reduce-%d", p)).
					Attr(obs.AttrTask, int64(p)).Attr(obs.AttrAttempt, 0).
					Tag("phase", "reduce").End()
			}()
			t0 := time.Now()
			part := partitions[p]
			// The full re-sort of the partition is reducer work in this
			// engine; the streaming shuffle moves it map-side as sorted
			// spill runs.
			if conf.ExternalSort && externalSortAvailable() {
				part = externalSort(part)
			} else {
				sortPartition(part)
			}
			var inBytes int64
			for i := range part {
				inBytes += legacyWireSize(&part[i])
			}
			for lo := 0; lo < len(part); {
				hi := lo + 1
				for hi < len(part) && part[hi].key == part[lo].key {
					hi++
				}
				group := make([]Shuffled, hi-lo)
				for i := lo; i < hi; i++ {
					group[i-lo] = Shuffled{
						MapperID: part[i].mapperID,
						RecordID: part[i].recordID,
						Value:    part[i].value,
					}
				}
				groupCounts[p]++
				if err := j.Reduce(p, part[lo].key, group); err != nil {
					redErrs[p] = fmt.Errorf("mapreduce %q: reduce task %d key %q: %w",
						j.Name, p, part[lo].key, err)
					return
				}
				lo = hi
			}
			redTasks[p] = TaskMetrics{Duration: time.Since(t0), InputBytes: inBytes, Records: groupCounts[p]}
		}(p)
	}
	rwg.Wait()
	for _, err := range redErrs {
		if err != nil {
			return nil, err
		}
	}
	for p := range redTasks {
		m.ReduceTasks = append(m.ReduceTasks, redTasks[p])
		m.ReduceCPU += redTasks[p].Duration
		m.Groups += groupCounts[p]
	}
	m.ReduceWall = time.Since(reduceStart)
	m.TotalWall = time.Since(start)
	return m, nil
}

// legacyWireSize computes the same framing cost as kvRec.wireSize by
// actually encoding the frame, allocating a scratch encoder per record —
// the original hot-path cost the streaming engine eliminates. Pinned
// equal to the arithmetic version by TestWireSizeMatchesEncoder.
func legacyWireSize(r *kvRec) int64 {
	e := wire.NewEncoder(0)
	e.Uvarint(uint64(len(r.key)))
	e.Uvarint(uint64(r.mapperID))
	e.Uvarint(uint64(r.recordID))
	e.Uvarint(uint64(len(r.value)))
	return int64(e.Len()) + int64(len(r.key)) + int64(len(r.value))
}

// legacyPartition is partition() by way of hash/fnv: a hasher allocation
// and a []byte copy of the key per call.
func legacyPartition(key string, n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}
