package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// The streaming engine. Map and reduce overlap: reduce tasks start
// before any map task and consume sorted spill runs from per-partition
// channels as map attempts commit, pre-merging early arrivals while
// later maps still run. User Reduce calls begin only once every run has
// arrived — a k-way merge cannot know its smallest key earlier — but by
// then most merge work is already done, off the critical path. The
// (mapperID, recordID) composition order is unaffected: runs are sorted
// at the mapper and merged under the same total order the barrier
// engine sorts by.
//
// Fault tolerance layers on top (task.go): each task runs as retryable
// attempts, and only a committed attempt's runs ever reach a reduce
// channel, so retries and speculative re-execution cannot perturb the
// merged stream.

// premergeMinRuns is the pending-run count above which an idle reduce
// task folds its two smallest runs into one while waiting for more map
// output. Below it, the final loser tree is already shallow and folding
// would only add copies.
const premergeMinRuns = 4

func (j *Job) runStreaming(ctx context.Context, conf Config, segments []*Segment) (_ *Metrics, err error) {
	m := &Metrics{}
	start := time.Now()
	reg := obs.NewRegistry()
	env := &runEnv{
		ctx:     ctx,
		job:     j,
		conf:    conf,
		sem:     make(chan struct{}, conf.Parallelism),
		aborted: &atomic.Bool{},
		trace:   conf.Trace,
		reg:     reg,

		mapAttempts:    reg.Counter(MetricMapAttempts),
		reduceAttempts: reg.Counter(MetricReduceAttempts),
		retries:        reg.Counter(MetricTaskRetries),
		specLaunched:   reg.Counter(MetricSpecTasks),
		specWins:       reg.Counter(MetricSpecWins),
	}
	// The job root span: every task span parents to it, and its closing
	// attrs carry the whole-job quantities the trace verifier checks
	// (wire vs logical bytes, the cpu-bound parallelism cap).
	jobSpan := env.trace.StartJob(j.Name)
	defer func() {
		if err != nil {
			jobSpan.Tag("outcome", "error")
		} else {
			jobSpan.Tag("outcome", "ok")
		}
		jobSpan.Attr(obs.AttrParallelism, int64(conf.Parallelism)).
			Attr(obs.AttrWireBytes, m.ShuffleBytes).
			Attr(obs.AttrLogicalBytes, m.ShuffleLogicalBytes).
			Attr(obs.AttrGroups, m.Groups).
			End()
		env.reg.MergeInto(conf.Registry)
	}()
	if conf.RemoteMap != nil {
		if verr := validateRemote(conf); verr != nil {
			return nil, fmt.Errorf("mapreduce %q: %w", j.Name, verr)
		}
	}
	if conf.RemoteReduce != nil && conf.RemoteMap == nil {
		return nil, fmt.Errorf("mapreduce %q: RemoteReduce requires RemoteMap (worker-resident reduce consumes runs pushed by worker-resident maps)", j.Name)
	}
	if conf.SpillDir != "" {
		spill, err := newSpillStore(conf.SpillDir)
		if err != nil {
			return nil, fmt.Errorf("mapreduce %q: %w", j.Name, err)
		}
		env.spill = spill
		defer spill.close()
	}

	// The shuffle transport: per-partition run streams, buffered for one
	// run per map task so committing attempts never block on reducers.
	env.transport = conf.Transport
	if env.transport == nil {
		env.transport = NewMemTransport()
	}
	env.transport.Open(conf.NumReducers, len(segments))

	// ---- Reduce tasks (launched first: there is no map barrier) ----
	type redOut struct {
		task   TaskMetrics
		groups int64
		err    error
	}
	redOuts := make([]redOut, conf.NumReducers)
	var rwg sync.WaitGroup
	for p := 0; p < conf.NumReducers; p++ {
		rwg.Add(1)
		go func(p int) {
			defer rwg.Done()
			if conf.RemoteReduce != nil {
				// W2w topology: the partition stream carries receipts, not
				// bytes — the runs themselves sit on the owning worker.
				// Nothing to pre-merge; the owner merges when asked.
				commits, inBytes := env.collectReceipts(p)
				if env.aborted.Load() {
					return
				}
				env.sem <- struct{}{}
				defer func() { <-env.sem }()
				t0 := time.Now()
				groups, rerr := env.runRemoteReduceTask(p, commits)
				redOuts[p] = redOut{
					task:   TaskMetrics{Duration: time.Since(t0), InputBytes: inBytes, Records: groups},
					groups: groups,
					err:    rerr,
				}
				return
			}
			runs, inBytes, active, lerr := env.collectRuns(p)
			if env.aborted.Load() || lerr != nil {
				releaseRuns(runs)
				if lerr != nil {
					redOuts[p] = redOut{err: fmt.Errorf("mapreduce %q: reduce task %d: %w", j.Name, p, lerr)}
				}
				return
			}
			// The merge and the user reduce calls are CPU work; cap them
			// like any other task. By now all maps are done, so their
			// semaphore slots are free.
			env.sem <- struct{}{}
			defer func() { <-env.sem }()
			t0 := time.Now()
			groups, err := env.runReduceTask(p, runs)
			redOuts[p] = redOut{
				task:   TaskMetrics{Duration: active + time.Since(t0), InputBytes: inBytes, Records: groups},
				groups: groups,
				err:    err,
			}
		}(p)
	}

	// ---- Map tasks: one driver per task, attempts inside ----
	mapStart := time.Now()
	states := make([]*mapTask, len(segments))
	var wg sync.WaitGroup
	for i, seg := range segments {
		states[i] = newMapTask(i, seg)
		wg.Add(1)
		go func(st *mapTask) {
			defer wg.Done()
			env.driveMapTask(st)
		}(states[i])
	}
	var watchdogDone chan struct{}
	var watchdogStop chan struct{}
	if conf.Speculation && len(segments) > 1 {
		watchdogStop = make(chan struct{})
		watchdogDone = make(chan struct{})
		go env.speculationWatchdog(states, watchdogStop, watchdogDone)
	}
	wg.Wait()
	if watchdogStop != nil {
		close(watchdogStop)
		<-watchdogDone
	}
	// Late speculative attempts may still be running (their task already
	// resolved); wait so every commit or discard lands before the
	// channels close.
	env.specWG.Wait()
	mapDone := time.Now()
	m.MapWall = mapDone.Sub(mapStart)

	// Collect map outcomes into the job registry, then release the
	// reducers by closing their channels. Permanent task failures
	// aggregate into one multi-error. The scalar Metrics fields are read
	// back from the registry below — the registry is the system of
	// record, Metrics the derived view.
	var taskFailures []error
	for i, st := range states {
		if st.failErr != nil {
			taskFailures = append(taskFailures, st.failErr)
			continue
		}
		if !st.committed.Load() {
			continue // stopped early: job aborting or cancelled
		}
		m.MapTasks = append(m.MapTasks, st.task)
		m.MapCPU += st.task.Duration
		env.reg.Counter(MetricInputBytes).Add(st.task.InputBytes)
		env.reg.Counter(MetricInputRecords).Add(int64(len(segments[i].Records)))
		env.reg.Counter(MetricShuffleRecords).Add(st.emitted)
		for _, b := range st.task.OutBytes {
			env.reg.Counter(MetricShuffleBytes).Add(b)
		}
		for _, b := range st.task.LogicalOutBytes {
			env.reg.Counter(MetricShuffleLogical).Add(b)
		}
	}
	m.InputBytes = env.reg.Counter(MetricInputBytes).Value()
	m.InputRecords = env.reg.Counter(MetricInputRecords).Value()
	m.ShuffleRecords = env.reg.Counter(MetricShuffleRecords).Value()
	m.ShuffleBytes = env.reg.Counter(MetricShuffleBytes).Value()
	m.ShuffleLogicalBytes = env.reg.Counter(MetricShuffleLogical).Value()
	m.MapAttempts = env.mapAttempts.Value()
	m.SpeculativeTasks = env.specLaunched.Value()
	m.SpeculativeWins = env.specWins.Value()

	var mapErr error
	if err := ctx.Err(); err != nil {
		mapErr = fmt.Errorf("mapreduce %q: %w", j.Name, err)
	} else if len(taskFailures) > 0 {
		mapErr = errors.Join(taskFailures...)
	}
	if mapErr != nil {
		env.aborted.Store(true)
	}
	env.transport.CloseSend()
	rwg.Wait()
	m.ReduceAttempts = env.reduceAttempts.Value()
	m.TaskRetries = env.retries.Value() // map and reduce retries
	if mapErr != nil {
		return nil, mapErr
	}

	var reduceFailures []error
	for p := range redOuts {
		if redOuts[p].err != nil {
			reduceFailures = append(reduceFailures, redOuts[p].err)
			continue
		}
		m.ReduceTasks = append(m.ReduceTasks, redOuts[p].task)
		m.ReduceCPU += redOuts[p].task.Duration
		env.reg.Counter(MetricGroups).Add(redOuts[p].groups)
	}
	m.Groups = env.reg.Counter(MetricGroups).Value()
	if len(reduceFailures) > 0 {
		return nil, errors.Join(reduceFailures...)
	}
	// ReduceWall is the post-map tail: the part of reduce work left on
	// the critical path after pipelining has overlapped the rest.
	m.ReduceWall = time.Since(mapDone)
	m.TotalWall = time.Since(start)
	return m, nil
}

// collectReceipts drains one partition's receipt stream (w2w mode):
// commit published one Seg-less receipt per placed run, so the slice
// names exactly the runs the owning worker must merge.
func (env *runEnv) collectReceipts(p int) (commits []Run, inBytes int64) {
	for r := range env.transport.Partition(p) {
		commits = append(commits, r)
		inBytes += r.Bytes
	}
	return commits, inBytes
}

// collectRuns drains one partition's channel until all map tasks are
// resolved. Disk-backed runs are decoded into pooled buffers on arrival.
// While the channel is open but momentarily empty — the reducer would
// otherwise idle — it folds the two smallest pending runs into one,
// overlapping merge work with still-running map tasks. Folding is CPU
// work and stays under the Parallelism cap: it runs only when a
// semaphore slot is free right now (non-blocking try), never at the
// expense of map progress. Returns the pending runs, total wire bytes
// received, active (non-waiting) time, and the first run-load error.
//
// Each successful decode emits a seg_decode span carrying the run's
// producer identity — the consumption record the trace verifier joins
// against run_commit events for the merged-exactly-once invariant.
func (env *runEnv) collectRuns(p int) (runs []spillRun, inBytes int64, active time.Duration, err error) {
	ch, external := env.transport.Partition(p), env.conf.ExternalSort
	add := func(r Run) {
		span := env.trace.Start(obs.KindSegDecode, fmt.Sprintf("part-%d", p)).
			Attr(obs.AttrTask, int64(r.Task)).Attr(obs.AttrAttempt, int64(r.Attempt)).
			Attr(obs.AttrPart, int64(r.Part)).Attr(obs.AttrBytes, r.Bytes)
		t0 := time.Now()
		var recs []kvRec
		var derr error
		if r.Path != "" {
			recs, derr = decodeRunFile(r.Path)
		} else {
			recs, derr = decodeSegment(r.Seg)
		}
		active += time.Since(t0)
		if derr != nil {
			span.Tag("outcome", "error").End()
			if err == nil {
				err = derr
			}
			return
		}
		span.End()
		runs = append(runs, spillRun{recs: recs, bytes: r.Bytes})
		inBytes += r.Bytes
	}
	for {
		select {
		case r, ok := <-ch:
			if !ok {
				return runs, inBytes, active, err
			}
			add(r)
		default:
			if !external && err == nil && len(runs) >= premergeMinRuns {
				select {
				case env.sem <- struct{}{}:
					span := env.trace.Start(obs.KindMerge, fmt.Sprintf("part-%d", p)).
						Attr(obs.AttrPart, int64(p)).Attr(obs.AttrRuns, int64(len(runs)))
					t0 := time.Now()
					runs = foldSmallest(runs)
					active += time.Since(t0)
					span.End()
					<-env.sem
					continue
				default:
				}
			}
			r, ok := <-ch
			if !ok {
				return runs, inBytes, active, err
			}
			add(r)
		}
	}
}

// foldSmallest merges the two shortest runs (fewest total copies, the
// same greedy choice as Huffman merging) and replaces them with the
// result.
func foldSmallest(runs []spillRun) []spillRun {
	a, b := 0, 1
	if len(runs[b].recs) < len(runs[a].recs) {
		a, b = b, a
	}
	for i := 2; i < len(runs); i++ {
		switch n := len(runs[i].recs); {
		case n < len(runs[a].recs):
			a, b = i, a
		case n < len(runs[b].recs):
			b = i
		}
	}
	merged := mergeTwo(runs[a], runs[b])
	lo, hi := min(a, b), max(a, b)
	runs[lo] = merged
	runs[hi] = runs[len(runs)-1]
	return runs[:len(runs)-1]
}

// reduceMerge merges the partition's runs and streams each key group to
// the reduce function through a reusable buffer — no per-group slice is
// materialized. It never mutates the runs (the loser tree keeps its own
// cursors), so a retrying reduce attempt re-merges identical inputs.
func (env *runEnv) reduceMerge(p int, runs []spillRun) (groups int64, err error) {
	j := env.job
	groupHist := env.reg.Histogram(MetricGroupValues)
	tree := newLoserTree(runs)
	group := make([]Shuffled, 0, 64)
	for {
		head := tree.peek()
		if head == nil {
			return groups, nil
		}
		key := head.key
		group = group[:0]
		for {
			h := tree.peek()
			if h == nil || h.key != key {
				break
			}
			group = append(group, Shuffled{MapperID: h.mapperID, RecordID: h.recordID, Value: h.value})
			tree.advance()
		}
		groups++
		groupHist.Observe(int64(len(group)))
		if err := j.Reduce(p, key, group); err != nil {
			return groups, fmt.Errorf("mapreduce %q: reduce task %d key %q: %w", j.Name, p, key, err)
		}
	}
}
