package mapreduce

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// The streaming engine. Map and reduce overlap: reduce tasks start
// before any map task and consume sorted spill runs from per-partition
// channels as mappers deliver them, pre-merging early arrivals while
// later maps still run. User Reduce calls begin only once every run has
// arrived — a k-way merge cannot know its smallest key earlier — but by
// then most merge work is already done, off the critical path. The
// (mapperID, recordID) composition order is unaffected: runs are sorted
// at the mapper and merged under the same total order the barrier
// engine sorts by.

// premergeMinRuns is the pending-run count above which an idle reduce
// task folds its two smallest runs into one while waiting for more map
// output. Below it, the final loser tree is already shallow and folding
// would only add copies.
const premergeMinRuns = 4

func (j *Job) runStreaming(conf Config, segments []*Segment) (*Metrics, error) {
	m := &Metrics{}
	start := time.Now()
	sem := make(chan struct{}, conf.Parallelism)

	// Per-partition run channels, buffered for one run per mapper so map
	// tasks never block on reducers.
	runCh := make([]chan spillRun, conf.NumReducers)
	for p := range runCh {
		runCh[p] = make(chan spillRun, len(segments))
	}
	// aborted tells reduce tasks a map failed; they then drop their runs
	// without invoking Reduce. It is set before the channels close, and
	// channel close happens-before the post-drain load.
	var aborted atomic.Bool

	// ---- Reduce tasks (launched first: there is no map barrier) ----
	type redOut struct {
		task   TaskMetrics
		groups int64
		err    error
	}
	redOuts := make([]redOut, conf.NumReducers)
	var rwg sync.WaitGroup
	for p := 0; p < conf.NumReducers; p++ {
		rwg.Add(1)
		go func(p int) {
			defer rwg.Done()
			runs, inBytes, active := collectRuns(runCh[p], conf.ExternalSort, sem)
			if aborted.Load() {
				releaseRuns(runs)
				return
			}
			// The merge and the user reduce calls are CPU work; cap them
			// like any other task. By now all maps are done, so their
			// semaphore slots are free.
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			groups, err := reducePartition(j, p, runs, conf)
			redOuts[p] = redOut{
				task:   TaskMetrics{Duration: active + time.Since(t0), InputBytes: inBytes, Records: groups},
				groups: groups,
				err:    err,
			}
		}(p)
	}

	// ---- Map tasks ----
	mapStart := time.Now()
	type mapOut struct {
		task    TaskMetrics
		emitted int64
		err     error
	}
	outs := make([]mapOut, len(segments))
	var wg sync.WaitGroup
	for i, seg := range segments {
		wg.Add(1)
		go func(i int, seg *Segment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			parts := make([][]kvRec, conf.NumReducers)
			outBytes := make([]int64, conf.NumReducers)
			var seq int64
			emit := func(key string, recordID int64, value []byte) {
				rec := kvRec{key: key, mapperID: seg.ID, recordID: recordID, seq: seq, value: value}
				seq++
				p := partition(key, conf.NumReducers)
				buf := parts[p]
				if buf == nil {
					buf = kvBufs.get(0)
				}
				parts[p] = append(buf, rec)
				outBytes[p] += rec.wireSize()
			}
			err := j.Map(seg.ID, seg, emit)
			var emitted int64
			for p := range parts {
				if parts[p] == nil {
					continue
				}
				if err != nil || len(parts[p]) == 0 {
					kvBufs.put(parts[p])
					continue
				}
				emitted += int64(len(parts[p]))
				// The spill sort is map-side work, as in Hadoop — except
				// under ExternalSort, where the §6.2 baseline pays for
				// sorting in the reducer's Unix sort pipe.
				if !conf.ExternalSort {
					sortRun(parts[p])
				}
				runCh[p] <- spillRun{recs: parts[p], bytes: outBytes[p]}
			}
			outs[i] = mapOut{
				task: TaskMetrics{
					Duration:   time.Since(t0),
					InputBytes: seg.Bytes(),
					Records:    int64(len(seg.Records)),
					OutBytes:   outBytes,
				},
				emitted: emitted,
				err:     err,
			}
		}(i, seg)
	}
	wg.Wait()
	mapDone := time.Now()
	m.MapWall = mapDone.Sub(mapStart)

	// Collect map results, folding shuffle-byte and record summation
	// into this single pass, then release the reducers by closing their
	// channels.
	var mapErr error
	for i, o := range outs {
		if o.err != nil && mapErr == nil {
			mapErr = fmt.Errorf("mapreduce %q: map task %d: %w", j.Name, segments[i].ID, o.err)
		}
		m.MapTasks = append(m.MapTasks, o.task)
		m.MapCPU += o.task.Duration
		m.InputBytes += o.task.InputBytes
		m.InputRecords += int64(len(segments[i].Records))
		m.ShuffleRecords += o.emitted
		for _, b := range o.task.OutBytes {
			m.ShuffleBytes += b
		}
	}
	if mapErr != nil {
		aborted.Store(true)
	}
	for p := range runCh {
		close(runCh[p])
	}
	rwg.Wait()
	if mapErr != nil {
		return nil, mapErr
	}

	for p := range redOuts {
		if redOuts[p].err != nil {
			return nil, redOuts[p].err
		}
		m.ReduceTasks = append(m.ReduceTasks, redOuts[p].task)
		m.ReduceCPU += redOuts[p].task.Duration
		m.Groups += redOuts[p].groups
	}
	// ReduceWall is the post-map tail: the part of reduce work left on
	// the critical path after pipelining has overlapped the rest.
	m.ReduceWall = time.Since(mapDone)
	m.TotalWall = time.Since(start)
	return m, nil
}

// collectRuns drains one partition's channel until all mappers are done.
// While the channel is open but momentarily empty — the reducer would
// otherwise idle — it folds the two smallest pending runs into one,
// overlapping merge work with still-running map tasks. Folding is CPU
// work and stays under the Parallelism cap: it runs only when a
// semaphore slot is free right now (non-blocking try), never at the
// expense of map progress. Returns the pending runs, total wire bytes
// received, and active (non-waiting) time.
func collectRuns(ch <-chan spillRun, external bool, sem chan struct{}) (runs []spillRun, inBytes int64, active time.Duration) {
	for {
		select {
		case r, ok := <-ch:
			if !ok {
				return runs, inBytes, active
			}
			runs = append(runs, r)
			inBytes += r.bytes
		default:
			if !external && len(runs) >= premergeMinRuns {
				select {
				case sem <- struct{}{}:
					t0 := time.Now()
					runs = foldSmallest(runs)
					active += time.Since(t0)
					<-sem
					continue
				default:
				}
			}
			r, ok := <-ch
			if !ok {
				return runs, inBytes, active
			}
			runs = append(runs, r)
			inBytes += r.bytes
		}
	}
}

// foldSmallest merges the two shortest runs (fewest total copies, the
// same greedy choice as Huffman merging) and replaces them with the
// result.
func foldSmallest(runs []spillRun) []spillRun {
	a, b := 0, 1
	if len(runs[b].recs) < len(runs[a].recs) {
		a, b = b, a
	}
	for i := 2; i < len(runs); i++ {
		switch n := len(runs[i].recs); {
		case n < len(runs[a].recs):
			a, b = i, a
		case n < len(runs[b].recs):
			b = i
		}
	}
	merged := mergeTwo(runs[a], runs[b])
	lo, hi := min(a, b), max(a, b)
	runs[lo] = merged
	runs[hi] = runs[len(runs)-1]
	return runs[:len(runs)-1]
}

// reducePartition merges the partition's runs and streams each key group
// to the reduce function through a reusable buffer — no per-group slice
// is materialized. Under ExternalSort the runs are concatenated and
// piped through the system sort binary first (§6.2 baseline), then
// streamed the same way as a single run. The map side skips its spill
// sort under ExternalSort, so the concatenate-and-sort here must happen
// unconditionally: when the sort binary is missing, externalSort falls
// back to the in-process sortPartition, honoring the Config contract.
func reducePartition(j *Job, p int, runs []spillRun, conf Config) (groups int64, err error) {
	if conf.ExternalSort {
		var n int
		var bytes int64
		for i := range runs {
			n += len(runs[i].recs)
			bytes += runs[i].bytes
		}
		flat := kvBufs.get(n)
		for i := range runs {
			flat = append(flat, runs[i].recs...)
		}
		releaseRuns(runs)
		sorted := externalSort(flat)
		if len(flat) > 0 && len(sorted) > 0 && &sorted[0] != &flat[0] {
			// externalSort returned a fresh slice; recycle the scratch.
			kvBufs.put(flat)
		}
		runs = []spillRun{{recs: sorted, bytes: bytes}}
	}
	defer releaseRuns(runs)

	tree := newLoserTree(runs)
	group := make([]Shuffled, 0, 64)
	for {
		head := tree.peek()
		if head == nil {
			return groups, nil
		}
		key := head.key
		group = group[:0]
		for {
			h := tree.peek()
			if h == nil || h.key != key {
				break
			}
			group = append(group, Shuffled{MapperID: h.mapperID, RecordID: h.recordID, Value: h.value})
			tree.advance()
		}
		groups++
		if err := j.Reduce(p, key, group); err != nil {
			return groups, fmt.Errorf("mapreduce %q: reduce task %d key %q: %w", j.Name, p, key, err)
		}
	}
}
