package mapreduce

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// obsTestJob is a small multi-segment wordcount-style job used by the
// tracing tests; emits enough keys to populate every reducer.
func obsTestJob(reducers int) (*Job, []*Segment) {
	var lines []string
	for i := 0; i < 120; i++ {
		lines = append(lines, fmt.Sprintf("key%02d value-%d", i%17, i))
	}
	segs := segmentsFromLines(lines, 6)
	var mu sync.Mutex
	seen := map[string]int{}
	job := &Job{
		Name: "obs-test",
		Map: func(id int, seg *Segment, emit Emit) error {
			for i, rec := range seg.Records {
				fields := strings.Fields(string(rec))
				emit(fields[0], int64(i), []byte(fields[1]))
			}
			return nil
		},
		Reduce: func(_ int, key string, values []Shuffled) error {
			mu.Lock()
			seen[key] = len(values)
			mu.Unlock()
			return nil
		},
		Conf: Config{NumReducers: reducers},
	}
	return job, segs
}

// TestTracedJobVerifies runs the streaming engine under every mode
// combination (compression, spill dir, external sort) with a trace
// attached, and requires the resulting trace to pass every obs.Verifier
// invariant — the engine's commit protocol, run accounting, and byte
// accounting proven on a live run, not asserted by construction.
func TestTracedJobVerifies(t *testing.T) {
	cases := []struct {
		name string
		conf func(t *testing.T) Config
	}{
		{"memory", func(t *testing.T) Config { return Config{NumReducers: 3} }},
		{"compressed", func(t *testing.T) Config { return Config{NumReducers: 3, CompressShuffle: true} }},
		{"spill", func(t *testing.T) Config { return Config{NumReducers: 3, SpillDir: t.TempDir()} }},
		{"spill-compressed", func(t *testing.T) Config {
			return Config{NumReducers: 3, SpillDir: t.TempDir(), CompressShuffle: true}
		}},
		{"external-sort", func(t *testing.T) Config { return Config{NumReducers: 2, ExternalSort: true} }},
		{"barrier", func(t *testing.T) Config { return Config{NumReducers: 3, BarrierShuffle: true} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			job, segs := obsTestJob(3)
			sink := obs.NewMemSink()
			conf := tc.conf(t)
			conf.NumReducers = max(conf.NumReducers, 1)
			conf.Trace = obs.NewTrace(sink)
			conf.Registry = obs.NewRegistry()
			job.Conf = conf
			m, err := job.Run(segs)
			if err != nil {
				t.Fatal(err)
			}
			spans := sink.Spans()
			if err := (obs.Verifier{}).Check(spans); err != nil {
				t.Fatalf("trace failed verification: %v", err)
			}
			var jobSpan *obs.Span
			attempts := 0
			for _, sp := range spans {
				switch sp.Kind {
				case obs.KindJob:
					jobSpan = sp
				case obs.KindMapAttempt:
					attempts++
				}
			}
			if jobSpan == nil {
				t.Fatal("no job span")
			}
			if got := jobSpan.Attr(obs.AttrWireBytes); got != m.ShuffleBytes {
				t.Errorf("job span wire bytes %d, Metrics %d", got, m.ShuffleBytes)
			}
			if got := jobSpan.Attr(obs.AttrGroups); got != m.Groups {
				t.Errorf("job span groups %d, Metrics %d", got, m.Groups)
			}
			if attempts != len(segs) {
				t.Errorf("%d map attempt spans, want %d", attempts, len(segs))
			}
			if err := conf.Registry.SelfCheck(); err != nil {
				t.Errorf("merged registry self-check: %v", err)
			}
		})
	}
}

// TestTracedChaosJobVerifies injects kill/error faults with retries
// enabled and requires the trace to still verify: failed attempts carry
// error outcomes, only winners commit, and every committed run is merged
// exactly once despite the retries.
func TestTracedChaosJobVerifies(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			job, segs := obsTestJob(2)
			sink := obs.NewMemSink()
			job.Conf = Config{
				NumReducers: 2,
				MaxAttempts: 4,
				Speculation: true,
				Faults:      NewFaultPlan(seed).WithRate(0.4).WithMaxDelay(2 * time.Millisecond),
				Trace:       obs.NewTrace(sink),
			}
			if _, err := job.Run(segs); err != nil {
				t.Fatalf("chaos job failed (final attempts are spared): %v", err)
			}
			if err := (obs.Verifier{}).Check(sink.Spans()); err != nil {
				t.Fatalf("chaos trace failed verification: %v", err)
			}
		})
	}
}

// TestMetricsDerivedFromRegistry pins the derived-view contract: the
// legacy Metrics scalars must equal the registry instruments the engine
// observed, and the per-job registry must merge into Config.Registry.
func TestMetricsDerivedFromRegistry(t *testing.T) {
	job, segs := obsTestJob(3)
	reg := obs.NewRegistry()
	job.Conf.Registry = reg
	m, err := job.Run(segs)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	checks := map[string]int64{
		MetricMapAttempts:    m.MapAttempts,
		MetricReduceAttempts: m.ReduceAttempts,
		MetricShuffleBytes:   m.ShuffleBytes,
		MetricShuffleLogical: m.ShuffleLogicalBytes,
		MetricShuffleRecords: m.ShuffleRecords,
		MetricInputBytes:     m.InputBytes,
		MetricInputRecords:   m.InputRecords,
		MetricGroups:         m.Groups,
	}
	for name, want := range checks {
		if snap[name] != want {
			t.Errorf("registry %s = %d, Metrics says %d", name, snap[name], want)
		}
	}
	if snap[MetricMapTaskNS+".count"] != m.MapAttempts {
		t.Errorf("map task duration histogram has %d observations, want %d",
			snap[MetricMapTaskNS+".count"], m.MapAttempts)
	}
	if snap[MetricGroupValues+".count"] != m.Groups {
		t.Errorf("group size histogram has %d observations, want %d groups",
			snap[MetricGroupValues+".count"], m.Groups)
	}
	if err := reg.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestUntracedJobEmitsNothing guards the off switch: with no trace and
// no registry configured the job must run exactly as before (the
// engine's private registry never escapes).
func TestUntracedJobEmitsNothing(t *testing.T) {
	job, segs := obsTestJob(2)
	if _, err := job.Run(segs); err != nil {
		t.Fatal(err)
	}
}
