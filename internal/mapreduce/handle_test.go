package mapreduce

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestHandleWait checks Start/Wait is equivalent to a synchronous Run.
func TestHandleWait(t *testing.T) {
	lines := []string{"a b", "b c", "c a"}
	segs := segmentsFromLines(lines, 2)
	var mu sync.Mutex
	counts := map[string]int{}
	job := &Job{
		Name: "handle-wait",
		Map: func(id int, seg *Segment, emit Emit) error {
			for i, rec := range seg.Records {
				for _, w := range splitWords(rec) {
					emit(w, int64(i), []byte("1"))
				}
			}
			return nil
		},
		Reduce: func(_ int, key string, values []Shuffled) error {
			mu.Lock()
			counts[key] = len(values)
			mu.Unlock()
			return nil
		},
		Conf: Config{NumReducers: 2},
	}
	h := job.Start(context.Background(), segs)
	select {
	case <-h.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("handle never finished")
	}
	m, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.Groups != 3 {
		t.Fatalf("groups = %+v, want 3", m)
	}
	if counts["a"] != 2 || counts["b"] != 2 || counts["c"] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	// Cancel after completion is a documented no-op.
	h.Cancel()
	if _, err := h.Wait(); err != nil {
		t.Fatalf("second Wait after finish: %v", err)
	}
}

func splitWords(rec []byte) []string {
	var out []string
	start := -1
	for i, b := range rec {
		if b == ' ' {
			if start >= 0 {
				out = append(out, string(rec[start:i]))
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, string(rec[start:]))
	}
	return out
}

// TestHandleCancel checks that cancelling a running handle stops the
// job: the run drains and Wait reports the context error.
func TestHandleCancel(t *testing.T) {
	segs := segmentsFromLines([]string{"a", "b", "c", "d", "e", "f", "g", "h"}, 8)
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	job := &Job{
		Name: "handle-cancel",
		Map: func(id int, seg *Segment, emit Emit) error {
			started <- struct{}{}
			<-release
			emit("k", 0, seg.Records[0])
			return nil
		},
		Reduce: func(_ int, key string, values []Shuffled) error { return nil },
		Conf:   Config{NumReducers: 1, Parallelism: 2},
	}
	h := job.Start(context.Background(), segs)
	// Wait until the first attempts are genuinely in flight, then cancel
	// while the remaining segments are still queued.
	<-started
	h.Cancel()
	close(release)
	_, err := h.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait after Cancel = %v, want context.Canceled", err)
	}
	h.Cancel() // idempotent
}

// TestHandleParentContext checks the handle observes its parent context.
func TestHandleParentContext(t *testing.T) {
	segs := segmentsFromLines([]string{"a", "b", "c", "d"}, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job := &Job{
		Name:   "handle-parent",
		Map:    func(id int, seg *Segment, emit Emit) error { return nil },
		Reduce: func(_ int, key string, values []Shuffled) error { return nil },
		Conf:   Config{NumReducers: 1},
	}
	_, err := job.Start(ctx, segs).Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait under cancelled parent = %v, want context.Canceled", err)
	}
}
