package mapreduce

import "strconv"

// Columnar is the per-field column representation of one segment's
// records (ROADMAP item 4). A tab-separated record set is decomposed by
// a fixed column plan: each leading field becomes one typed column, and
// the final column is the tail — the raw remainder of the record,
// including its leading tab, so reassembly is byte-exact even when
// records carry trailing fields the plan does not type.
//
// Rows that do not fit the plan (too few fields, a non-canonical
// integer) are ragged: their raw bytes are kept aside and the typed
// columns simply skip them, staying dense. Row order is preserved —
// iteration interleaves dense and ragged rows by ascending row index —
// so the columnar form carries exactly the information of the record
// slice it was built from: Materialize is the identity (pinned by the
// round-trip tests and, end to end, by the columnar golden digests).
//
// The representation is the read-path analogue of the shuffle's segment
// codec: dictionary codes for low-cardinality strings, int64 vectors
// for numeric fields, shared blobs for everything else. The batched
// GroupBy implementations (internal/queries) scan these vectors
// directly instead of re-splitting every record.
type Columnar struct {
	// Rows is the total row count, dense plus ragged.
	Rows int
	// Cols hold one entry per plan column. Every column has exactly
	// Rows − len(Ragged) dense entries, in row order.
	Cols []Col
	// Ragged lists the row indexes stored raw, ascending.
	Ragged []int32
	// RaggedRecs holds the raw bytes of each ragged row, parallel to
	// Ragged.
	RaggedRecs [][]byte
}

// ColKind types one column.
type ColKind uint8

const (
	// ColInt holds canonical decimal int64s: a row lands here only if
	// strconv re-rendering reproduces its bytes exactly, so
	// reconstruction is exact.
	ColInt ColKind = iota
	// ColDict holds dictionary-coded strings: a code per dense row into
	// Dict, built in first-use order. For low-cardinality fields (ops,
	// geos, keys) this is both the compact form and the fast one — a
	// batched GroupBy can map dictionary entries once per segment
	// instead of once per record.
	ColDict
	// ColStr holds arbitrary strings as offsets into a shared blob
	// (high-cardinality fields like datetimes).
	ColStr
	// ColTail is the final column: the raw record remainder including
	// its leading tab ("" when the record ends at the previous field).
	// Offsets into Blob, like ColStr.
	ColTail
	numColKinds
)

// Col is one typed column. Exactly one representation is populated,
// chosen by Kind.
type Col struct {
	Kind  ColKind
	Ints  []int64  // ColInt: value per dense row
	Codes []uint32 // ColDict: dictionary index per dense row
	Dict  []string // ColDict: entries in first-use order
	Offs  []uint32 // ColStr/ColTail: len(dense)+1 prefix offsets into Blob
	Blob  []byte   // ColStr/ColTail: concatenated bytes
}

// Str returns the dense row's bytes for a ColStr/ColTail column.
func (c *Col) Str(dense int) []byte {
	return c.Blob[c.Offs[dense]:c.Offs[dense+1]]
}

// Dense returns the number of dense rows.
func (c *Columnar) Dense() int { return c.Rows - len(c.Ragged) }

// RowIter walks rows [lo, hi) of a Columnar in row order, yielding for
// each row either its raw bytes (ragged) or its dense index (typed).
type RowIter struct {
	c     *Columnar
	row   int
	hi    int
	dense int
	rag   int
}

// Iter positions an iterator at row lo. Dense and ragged cursors are
// recovered by counting ragged rows before lo.
func (c *Columnar) Iter(lo, hi int) RowIter {
	rag := 0
	for rag < len(c.Ragged) && int(c.Ragged[rag]) < lo {
		rag++
	}
	return RowIter{c: c, row: lo, hi: hi, dense: lo - rag, rag: rag}
}

// Next yields the next row. raw is non-nil for ragged rows; otherwise
// dense indexes the typed columns. ok is false once the range is done.
func (it *RowIter) Next() (row int, raw []byte, dense int, ok bool) {
	if it.row >= it.hi {
		return 0, nil, 0, false
	}
	row = it.row
	it.row++
	if it.rag < len(it.c.Ragged) && int(it.c.Ragged[it.rag]) == row {
		raw = it.c.RaggedRecs[it.rag]
		it.rag++
		return row, raw, 0, true
	}
	dense = it.dense
	it.dense++
	return row, nil, dense, true
}

// AppendRow reconstructs one row's record bytes. For dense rows it
// re-joins the typed columns with tabs and appends the tail verbatim;
// ragged rows are copied raw. Byte-identity with the source record is
// the format's contract.
func (c *Columnar) appendRow(dst []byte, raw []byte, dense int) []byte {
	if raw != nil {
		return append(dst, raw...)
	}
	for i := range c.Cols {
		col := &c.Cols[i]
		if col.Kind != ColTail && i > 0 {
			dst = append(dst, '\t')
		}
		switch col.Kind {
		case ColInt:
			dst = strconv.AppendInt(dst, col.Ints[dense], 10)
		case ColDict:
			dst = append(dst, col.Dict[col.Codes[dense]]...)
		case ColStr, ColTail:
			dst = append(dst, col.Str(dense)...)
		}
	}
	return dst
}

// Materialize reconstructs every record, in row order, appending to
// dst. Each record is freshly allocated (none alias the columns).
func (c *Columnar) Materialize(dst [][]byte) [][]byte {
	it := c.Iter(0, c.Rows)
	for {
		_, raw, dense, ok := it.Next()
		if !ok {
			return dst
		}
		rec := c.appendRow(make([]byte, 0, 32), raw, dense)
		dst = append(dst, rec)
	}
}
