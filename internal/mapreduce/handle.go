package mapreduce

import "context"

// Handle is a job started asynchronously with Job.Start: a cancellable,
// waitable reference to one engine run. The serve layer uses handles to
// run many jobs concurrently under admission control and to honor
// client-side cancellation without tearing down the server.
type Handle struct {
	cancel  context.CancelFunc
	done    chan struct{}
	metrics *Metrics
	err     error
}

// Start launches the job on its own goroutine and returns immediately.
// The run observes ctx like RunContext does; Cancel aborts it early.
// Exactly one of Wait or draining Done-then-Wait should be used to
// collect the result.
func (j *Job) Start(ctx context.Context, segments []*Segment) *Handle {
	ctx, cancel := context.WithCancel(ctx)
	h := &Handle{cancel: cancel, done: make(chan struct{})}
	go func() {
		defer cancel()
		h.metrics, h.err = j.RunContext(ctx, segments)
		close(h.done)
	}()
	return h
}

// Cancel asks the run to stop: in-flight attempts drain, no new
// attempts launch, and Wait returns the context error. Idempotent, and
// a no-op once the run has finished.
func (h *Handle) Cancel() { h.cancel() }

// Done returns a channel closed when the run has fully drained —
// select on it to multiplex a job against other events.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Wait blocks until the run finishes and returns its result, like a
// synchronous RunContext. Safe to call from multiple goroutines.
func (h *Handle) Wait() (*Metrics, error) {
	<-h.done
	return h.metrics, h.err
}
