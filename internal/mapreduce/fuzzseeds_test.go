package mapreduce

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/fuzzseed"
	"repro/internal/wire"
)

var updateFuzzSeeds = flag.Bool("update-fuzz-seeds", false,
	"regenerate testdata/fuzz-seeds/segments from the current encoder")

// segSeedCorpus builds the committed segment corpus: genuine encoder
// output in both framings plus one seed per corruption class the decoder
// must reject (the classes TestDecodeSegmentRejectsCorruption pins).
// Names are load-bearing: corrupt-* seeds are asserted rejected by
// TestFuzzSeedSegmentCorpus, valid-* asserted accepted.
func segSeedCorpus() []fuzzseed.Seed {
	recs := segSeedRecs()
	raw := encodeSegment(recs, false)
	comp := encodeSegment(recs, true)

	badFlags := append([]byte(nil), raw...)
	badFlags[0] = 0x7C
	badFlagsComp := append([]byte(nil), comp...)
	badFlagsComp[0] = 0x7C

	// Out-of-range dictionary index: one record, empty dictionary.
	e := wire.NewEncoder(0)
	e.Uvarint(1)
	e.Uvarint(0)
	e.StringDict(nil)
	e.Varint(5)
	e.Varint(0)
	e.Varint(0)
	e.BytesField([]byte{})
	badDict := append([]byte{segRaw}, e.Bytes()...)

	// Valid flate frame whose decompressed payload is garbage.
	ge := wire.NewEncoder(0)
	ge.Byte(segFlate)
	ge.CompressedBlock([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	return []fuzzseed.Seed{
		{Name: "valid-raw.bin", Data: raw},
		{Name: "valid-flate.bin", Data: comp},
		{Name: "valid-empty-raw.bin", Data: encodeSegment(nil, false)},
		{Name: "valid-empty-flate.bin", Data: encodeSegment(nil, true)},
		{Name: "corrupt-truncated-raw.bin", Data: raw[:len(raw)/2]},
		{Name: "corrupt-truncated-raw-tail.bin", Data: raw[:len(raw)-1]},
		{Name: "corrupt-truncated-flate.bin", Data: comp[:len(comp)/2]},
		{Name: "corrupt-truncated-flate-tail.bin", Data: comp[:len(comp)-1]},
		{Name: "corrupt-flags.bin", Data: badFlags},
		{Name: "corrupt-flags-flate.bin", Data: badFlagsComp},
		{Name: "corrupt-dict-index.bin", Data: badDict},
		{Name: "corrupt-trailing.bin", Data: append(append([]byte(nil), raw...), 0xAA, 0xBB)},
		{Name: "corrupt-flate-garbage-payload.bin", Data: ge.Bytes()},
		{Name: "corrupt-flate-hugelen.bin", Data: []byte{segFlate, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}},
	}
}

// TestUpdateFuzzSeeds regenerates the committed corpus when run with
// -update-fuzz-seeds; otherwise it only checks the generator still
// produces every corruption class.
func TestUpdateFuzzSeeds(t *testing.T) {
	corpus := segSeedCorpus()
	if !*updateFuzzSeeds {
		t.Skipf("generator healthy (%d seeds); pass -update-fuzz-seeds to rewrite testdata/fuzz-seeds/segments", len(corpus))
	}
	if err := fuzzseed.Update("segments", corpus); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzSeedSegmentCorpus is the regression net over the committed
// corpus: every corrupt-* seed must be rejected by decodeSegment and
// every valid-* seed accepted — independent of how the seed was built,
// so decoder regressions against historical corruptions surface even if
// the generator drifts.
func TestFuzzSeedSegmentCorpus(t *testing.T) {
	seeds, err := fuzzseed.Load("segments")
	if err != nil {
		t.Fatal(err)
	}
	var valid, corrupt int
	for _, s := range seeds {
		got, err := decodeSegment(s.Data)
		switch {
		case strings.HasPrefix(s.Name, "corrupt-"):
			corrupt++
			if err == nil {
				t.Errorf("%s: corrupt seed accepted (%d records)", s.Name, len(got))
			}
		case strings.HasPrefix(s.Name, "valid-"):
			valid++
			if err != nil {
				t.Errorf("%s: valid seed rejected: %v", s.Name, err)
			} else {
				kvBufs.put(got)
			}
		default:
			t.Errorf("%s: seed name must start with valid- or corrupt-", s.Name)
		}
	}
	if valid < 2 || corrupt < 8 {
		t.Fatalf("corpus too small: %d valid / %d corrupt seeds", valid, corrupt)
	}
}
