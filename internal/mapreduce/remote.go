package mapreduce

import (
	"context"
	"fmt"
	"time"

	"repro/internal/obs"
)

// Remote map execution. User MapFuncs are closures and cannot cross a
// process boundary, so cluster mode splits the map attempt in two: the
// coordinator keeps the whole task lifecycle — retries with backoff,
// speculation, the first-finisher-wins commit — and delegates only the
// attempt body (run the map, sort, encode) to a RemoteMapper. Worker
// death and connection drops surface as attempt errors and are retried
// or speculated exactly like an injected fault; a worker whose output
// never commits cannot perturb the merged stream.

// MapOutput is one remotely executed map attempt's result: the encoded
// runs plus the task metrics the coordinator would have measured
// locally. Runs hold the segcodec wire form — byte-identical to what an
// in-process attempt over the same segment encodes, which is what makes
// placement invisible to reducers.
type MapOutput struct {
	Runs    []Run
	Emitted int64 // shuffle records across all partitions
	Records int64 // input records consumed
	// InputBytes is the segment payload the worker read.
	InputBytes int64
	// Duration is the worker-measured attempt time; it feeds the
	// speculation watchdog's straggler medians and MetricMapTaskNS.
	Duration time.Duration
	// LogicalOutBytes is the per-partition legacy-framing volume
	// (Metrics.ShuffleLogicalBytes), computed at the worker where the
	// records exist.
	LogicalOutBytes []int64
	// Spans are the worker-side trace spans covering this attempt
	// (map parse/exec chunks, spill encode), shipped back for
	// re-parenting under the coordinator's job root. May be nil.
	Spans []*obs.Span
}

// RemoteMapper executes map attempts out of process. RunMap must be
// safe for concurrent calls (the engine runs attempts in parallel up to
// Config.Parallelism) and must honor ctx cancellation. A non-nil error
// fails the attempt, not the task: the task lifecycle retries.
type RemoteMapper interface {
	RunMap(ctx context.Context, task, attempt int, seg *Segment) (*MapOutput, error)
}

// ExecuteMap runs one map attempt locally and publishes each non-empty
// partition's encoded run into sink. It is the worker-side half of
// remote execution and mirrors the engine's in-process attempt path —
// same emit sequence numbering, same per-partition spill sort, same
// segcodec encoding — so a run produced here is byte-identical to one
// produced by runMapAttempt over the same segment.
//
// task and attempt label the published runs and trace spans; trace may
// be nil. The returned MapOutput carries metrics only (Runs stays nil —
// the runs went through sink, which may have streamed them away).
func ExecuteMap(mapFn MapFunc, seg *Segment, task, attempt, numParts int,
	compress bool, trace *obs.Trace, sink RunSink) (*MapOutput, error) {
	if numParts <= 0 {
		numParts = 1
	}
	t0 := time.Now()
	parts := make([][]kvRec, numParts)
	logical := make([]int64, numParts)
	discardParts := func() {
		for p := range parts {
			if parts[p] != nil {
				kvBufs.put(parts[p])
				parts[p] = nil
			}
		}
	}
	var seq int64
	emit := func(key string, recordID int64, value []byte) {
		rec := kvRec{key: key, mapperID: seg.ID, recordID: recordID, seq: seq, value: value}
		seq++
		p := partition(key, numParts)
		buf := parts[p]
		if buf == nil {
			buf = kvBufs.get(0)
		}
		parts[p] = append(buf, rec)
		logical[p] += rec.wireSize()
	}
	if err := mapFn(seg.ID, seg, emit); err != nil {
		discardParts()
		return nil, err
	}
	out := &MapOutput{
		Records:         int64(len(seg.Records)),
		InputBytes:      seg.Bytes(),
		LogicalOutBytes: logical,
	}
	encSpan := trace.Start(obs.KindSpillEncode, fmt.Sprintf("map-%d", task)).
		Attr(obs.AttrTask, int64(task)).Attr(obs.AttrAttempt, int64(attempt))
	var encBytes int64
	for p := range parts {
		if parts[p] == nil {
			continue
		}
		if len(parts[p]) == 0 {
			kvBufs.put(parts[p])
			parts[p] = nil
			continue
		}
		out.Emitted += int64(len(parts[p]))
		sortRun(parts[p])
		sg := encodeSegment(parts[p], compress)
		kvBufs.put(parts[p])
		parts[p] = nil
		encBytes += int64(len(sg))
		if err := sink.Publish(Run{Task: task, Attempt: attempt, Part: p,
			Bytes: int64(len(sg)), Seg: sg}); err != nil {
			encSpan.Tag("outcome", "error").End()
			discardParts()
			return nil, err
		}
	}
	encSpan.Attr(obs.AttrBytes, encBytes).End()
	out.Duration = time.Since(t0)
	return out, nil
}

// runRemoteMapAttempt is the attempt body in cluster mode: delegate the
// map to Config.RemoteMap and adapt its output into the same
// attemptResult an in-process attempt builds, so commit and the reduce
// side cannot tell where the work ran.
func (env *runEnv) runRemoteMapAttempt(st *mapTask, attempt int) (*attemptResult, error) {
	conf := env.conf
	out, err := conf.RemoteMap.RunMap(env.ctx, st.id, attempt, st.seg)
	if err != nil {
		return nil, err
	}
	res := &attemptResult{
		emitted: out.Emitted,
		attempt: attempt,
		memRuns: make([]spillRun, conf.NumReducers),
	}
	wireOut := make([]int64, conf.NumReducers)
	for _, r := range out.Runs {
		if r.Part < 0 || r.Part >= conf.NumReducers || r.Seg == nil {
			return nil, fmt.Errorf("mapreduce %q: remote map task %d attempt %d returned invalid run (part %d of %d)",
				env.job.Name, st.id, attempt, r.Part, conf.NumReducers)
		}
		res.memRuns[r.Part] = spillRun{seg: r.Seg, bytes: r.Bytes,
			task: st.id, attempt: attempt, part: r.Part}
		wireOut[r.Part] = r.Bytes
	}
	logical := out.LogicalOutBytes
	if len(logical) != conf.NumReducers {
		logical = make([]int64, conf.NumReducers)
	}
	dur := out.Duration
	if dur <= 0 {
		dur = time.Nanosecond // keep the speculation median well-defined
	}
	res.task = TaskMetrics{
		Duration:        dur,
		InputBytes:      st.seg.Bytes(),
		Records:         int64(len(st.seg.Records)),
		OutBytes:        wireOut,
		LogicalOutBytes: logical,
	}
	// Re-parent the worker's spans under the coordinator job root only
	// for an attempt that came back whole; a dying worker's half-trace
	// is discarded with the attempt.
	for _, sp := range out.Spans {
		if sp == nil {
			continue
		}
		sp.ID = 0 // EmitRaw reassigns from the coordinator's sequence
		sp.Parent = env.trace.CurrentJob()
		if sp.Tags == nil {
			sp.Tags = map[string]string{}
		}
		sp.Tags["remote"] = "1"
		env.trace.EmitRaw(sp)
	}
	return res, nil
}

// validateRemote rejects Config combinations the remote map path cannot
// honor: the fault hooks, spill persistence, and the external-sort
// baseline all live inside the in-process attempt body.
func validateRemote(conf Config) error {
	switch {
	case conf.SpillDir != "":
		return fmt.Errorf("mapreduce: RemoteMap is incompatible with SpillDir (runs arrive encoded, not as local spill files)")
	case conf.ExternalSort:
		return fmt.Errorf("mapreduce: RemoteMap is incompatible with ExternalSort (workers ship pre-sorted runs)")
	case conf.Faults != nil:
		return fmt.Errorf("mapreduce: RemoteMap is incompatible with Faults (inject worker faults at the cluster layer instead)")
	}
	return nil
}
