package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
)

// Remote map execution. User MapFuncs are closures and cannot cross a
// process boundary, so cluster mode splits the map attempt in two: the
// coordinator keeps the whole task lifecycle — retries with backoff,
// speculation, the first-finisher-wins commit — and delegates only the
// attempt body (run the map, sort, encode) to a RemoteMapper. Worker
// death and connection drops surface as attempt errors and are retried
// or speculated exactly like an injected fault; a worker whose output
// never commits cannot perturb the merged stream.

// MapOutput is one remotely executed map attempt's result: the encoded
// runs plus the task metrics the coordinator would have measured
// locally. Runs hold the segcodec wire form — byte-identical to what an
// in-process attempt over the same segment encodes, which is what makes
// placement invisible to reducers.
type MapOutput struct {
	Runs    []Run
	Emitted int64 // shuffle records across all partitions
	Records int64 // input records consumed
	// InputBytes is the segment payload the worker read.
	InputBytes int64
	// Duration is the worker-measured attempt time; it feeds the
	// speculation watchdog's straggler medians and MetricMapTaskNS.
	Duration time.Duration
	// LogicalOutBytes is the per-partition legacy-framing volume
	// (Metrics.ShuffleLogicalBytes), computed at the worker where the
	// records exist.
	LogicalOutBytes []int64
	// Spans are the worker-side trace spans covering this attempt
	// (map parse/exec chunks, spill encode), shipped back for
	// re-parenting under the coordinator's job root. May be nil.
	Spans []*obs.Span
}

// RemoteMapper executes map attempts out of process. RunMap must be
// safe for concurrent calls (the engine runs attempts in parallel up to
// Config.Parallelism) and must honor ctx cancellation. A non-nil error
// fails the attempt, not the task: the task lifecycle retries.
type RemoteMapper interface {
	RunMap(ctx context.Context, task, attempt int, seg *Segment) (*MapOutput, error)
}

// ReducedGroup is one key group as merged (and, when a combiner is
// registered, folded) on the partition's owning worker. Rows keep the
// (MapperID, RecordID) ordering the §5.4 contract requires; after a
// successful combine a group is a single row holding the composed
// summary bundle.
type ReducedGroup struct {
	Key  string
	Rows []Shuffled
}

// ReduceOutput is one worker-resident reduce attempt's result: the
// partition's groups in ascending key order, ready for the coordinator
// to feed the user ReduceFunc.
type ReduceOutput struct {
	Groups []ReducedGroup
	// Worker identifies the worker that ran the merge — the partition's
	// owner. It lands on the re-parented spans as the worker attr, which
	// the verifier's owner-decode invariant joins against part_owner.
	Worker int
	// Spans are the worker-side trace spans covering the attempt
	// (seg_decode per run, combine per folded group). May be nil.
	Spans []*obs.Span
}

// RemoteReducer executes reduce attempt bodies on the worker owning the
// partition. commits lists the committed runs for the partition as
// receipts (nil Seg); the worker holds the bytes, pushed to it by map
// workers. Like RunMap, a non-nil error fails the attempt, not the
// task.
type RemoteReducer interface {
	RunReduce(ctx context.Context, part, attempt int, commits []Run) (*ReduceOutput, error)
}

// ExecuteMap runs one map attempt locally and publishes each non-empty
// partition's encoded run into sink. It is the worker-side half of
// remote execution and mirrors the engine's in-process attempt path —
// same emit sequence numbering, same per-partition spill sort, same
// segcodec encoding — so a run produced here is byte-identical to one
// produced by runMapAttempt over the same segment.
//
// task and attempt label the published runs and trace spans; trace may
// be nil. The returned MapOutput carries metrics only (Runs stays nil —
// the runs went through sink, which may have streamed them away).
func ExecuteMap(mapFn MapFunc, seg *Segment, task, attempt, numParts int,
	compress bool, trace *obs.Trace, sink RunSink) (*MapOutput, error) {
	if numParts <= 0 {
		numParts = 1
	}
	t0 := time.Now()
	parts := make([][]kvRec, numParts)
	logical := make([]int64, numParts)
	discardParts := func() {
		for p := range parts {
			if parts[p] != nil {
				kvBufs.put(parts[p])
				parts[p] = nil
			}
		}
	}
	var seq int64
	emit := func(key string, recordID int64, value []byte) {
		rec := kvRec{key: key, mapperID: seg.ID, recordID: recordID, seq: seq, value: value}
		seq++
		p := partition(key, numParts)
		buf := parts[p]
		if buf == nil {
			buf = kvBufs.get(0)
		}
		parts[p] = append(buf, rec)
		logical[p] += rec.wireSize()
	}
	if err := mapFn(seg.ID, seg, emit); err != nil {
		discardParts()
		return nil, err
	}
	out := &MapOutput{
		Records:         int64(len(seg.Records)),
		InputBytes:      seg.Bytes(),
		LogicalOutBytes: logical,
	}
	encSpan := trace.Start(obs.KindSpillEncode, fmt.Sprintf("map-%d", task)).
		Attr(obs.AttrTask, int64(task)).Attr(obs.AttrAttempt, int64(attempt))
	var encBytes int64
	for p := range parts {
		if parts[p] == nil {
			continue
		}
		if len(parts[p]) == 0 {
			kvBufs.put(parts[p])
			parts[p] = nil
			continue
		}
		out.Emitted += int64(len(parts[p]))
		sortRun(parts[p])
		sg := encodeSegment(parts[p], compress)
		kvBufs.put(parts[p])
		parts[p] = nil
		encBytes += int64(len(sg))
		if err := sink.Publish(Run{Task: task, Attempt: attempt, Part: p,
			Bytes: int64(len(sg)), Seg: sg}); err != nil {
			encSpan.Tag("outcome", "error").End()
			discardParts()
			return nil, err
		}
	}
	encSpan.Attr(obs.AttrBytes, encBytes).End()
	out.Duration = time.Since(t0)
	return out, nil
}

// runRemoteMapAttempt is the attempt body in cluster mode: delegate the
// map to Config.RemoteMap and adapt its output into the same
// attemptResult an in-process attempt builds, so commit and the reduce
// side cannot tell where the work ran.
func (env *runEnv) runRemoteMapAttempt(st *mapTask, attempt int) (*attemptResult, error) {
	conf := env.conf
	out, err := conf.RemoteMap.RunMap(env.ctx, st.id, attempt, st.seg)
	if err != nil {
		return nil, err
	}
	res := &attemptResult{
		emitted: out.Emitted,
		attempt: attempt,
	}
	wireOut := make([]int64, conf.NumReducers)
	if conf.RemoteReduce != nil {
		// Worker-to-worker topology: the run bytes went straight to each
		// partition's owning worker; what comes back are receipts. Commit
		// publishes the receipts so the reduce side knows exactly which
		// (task, attempt, part) runs the winning attempt placed.
		res.receipts = make([]Run, 0, len(out.Runs))
		for _, r := range out.Runs {
			if r.Part < 0 || r.Part >= conf.NumReducers || r.Seg != nil || r.Bytes <= 0 ||
				wireOut[r.Part] != 0 {
				return nil, fmt.Errorf("mapreduce %q: remote map task %d attempt %d returned invalid run receipt (part %d of %d)",
					env.job.Name, st.id, attempt, r.Part, conf.NumReducers)
			}
			res.receipts = append(res.receipts, Run{Task: st.id, Attempt: attempt,
				Part: r.Part, Bytes: r.Bytes})
			wireOut[r.Part] = r.Bytes
		}
	} else {
		res.memRuns = make([]spillRun, conf.NumReducers)
		for _, r := range out.Runs {
			if r.Part < 0 || r.Part >= conf.NumReducers || r.Seg == nil {
				return nil, fmt.Errorf("mapreduce %q: remote map task %d attempt %d returned invalid run (part %d of %d)",
					env.job.Name, st.id, attempt, r.Part, conf.NumReducers)
			}
			res.memRuns[r.Part] = spillRun{seg: r.Seg, bytes: r.Bytes,
				task: st.id, attempt: attempt, part: r.Part}
			wireOut[r.Part] = r.Bytes
		}
	}
	logical := out.LogicalOutBytes
	if len(logical) != conf.NumReducers {
		logical = make([]int64, conf.NumReducers)
	}
	dur := out.Duration
	if dur <= 0 {
		dur = time.Nanosecond // keep the speculation median well-defined
	}
	res.task = TaskMetrics{
		Duration:        dur,
		InputBytes:      st.seg.Bytes(),
		Records:         int64(len(st.seg.Records)),
		OutBytes:        wireOut,
		LogicalOutBytes: logical,
	}
	// Re-parent the worker's spans under the coordinator job root only
	// for an attempt that came back whole; a dying worker's half-trace
	// is discarded with the attempt.
	for _, sp := range out.Spans {
		if sp == nil {
			continue
		}
		sp.ID = 0 // EmitRaw reassigns from the coordinator's sequence
		sp.Parent = env.trace.CurrentJob()
		if sp.Tags == nil {
			sp.Tags = map[string]string{}
		}
		sp.Tags["remote"] = "1"
		env.trace.EmitRaw(sp)
	}
	return res, nil
}

// runRemoteReduceTask is the reduce lifecycle in worker-to-worker mode:
// the same retry/backoff budget and commit span as runReduceTask, but
// the attempt body — decode, k-way merge, optional combine — runs on
// the partition's owning worker. The coordinator receives only final
// groups and feeds them to the user ReduceFunc locally, so reducers
// (and their idempotency contract) are unchanged.
func (env *runEnv) runRemoteReduceTask(p int, commits []Run) (groups int64, err error) {
	conf := env.conf
	// Receipts drain off the transport in commit order, which varies with
	// scheduling; the worker decodes in the order given, so fix it for
	// deterministic span streams. Merge output is order-independent
	// either way (distinct tasks mean distinct mapperIDs).
	sort.Slice(commits, func(i, j int) bool { return commits[i].Task < commits[j].Task })
	groupHist := env.reg.Histogram(MetricGroupValues)
	var attemptErrs []error
	for a := 0; a < conf.MaxAttempts; a++ {
		if env.ctx.Err() != nil {
			return 0, env.ctx.Err()
		}
		if a > 0 {
			env.retries.Add(1)
			if serr := sleepCtx(env.ctx, backoffDelay(conf, a)); serr != nil {
				return 0, serr
			}
		}
		env.reduceAttempts.Add(1)
		span := env.trace.Start(obs.KindReduceAttempt, fmt.Sprintf("reduce-%d", p)).
			Attr(obs.AttrTask, int64(p)).Attr(obs.AttrAttempt, int64(a))
		t0 := time.Now()
		out, rerr := conf.RemoteReduce.RunReduce(env.ctx, p, a, commits)
		if rerr == nil {
			rerr = env.deliverRemoteGroups(p, out, groupHist)
		}
		if rerr == nil {
			groups = int64(len(out.Groups))
			env.reg.Histogram(MetricReduceTaskNS).Observe(int64(time.Since(t0)))
			span.Tag("outcome", "ok").Attr(obs.AttrGroups, groups).End()
			env.trace.Start(obs.KindCommit, fmt.Sprintf("reduce-%d", p)).
				Attr(obs.AttrTask, int64(p)).Attr(obs.AttrAttempt, int64(a)).
				Tag("phase", "reduce").End()
			return groups, nil
		}
		span.Tag("outcome", "error").End()
		if env.ctx.Err() != nil {
			return 0, env.ctx.Err()
		}
		attemptErrs = append(attemptErrs, fmt.Errorf("attempt %d: %w", a, rerr))
	}
	return 0, fmt.Errorf("mapreduce %q: reduce task %d failed after %d attempts: %w",
		env.job.Name, p, len(attemptErrs), errors.Join(attemptErrs...))
}

// deliverRemoteGroups feeds a worker-reduced partition to the user
// ReduceFunc, then — only once the whole partition has reduced cleanly —
// re-parents the worker's spans and records the partition's owner. Span
// emission after the last Reduce call keeps a failed attempt's decode
// spans out of the trace, which the run-merged-once invariant requires
// (the successful retry re-decodes the same runs).
func (env *runEnv) deliverRemoteGroups(p int, out *ReduceOutput, groupHist *obs.Histogram) error {
	j := env.job
	for _, g := range out.Groups {
		groupHist.Observe(int64(len(g.Rows)))
		if err := j.Reduce(p, g.Key, g.Rows); err != nil {
			return fmt.Errorf("mapreduce %q: reduce task %d key %q: %w", j.Name, p, g.Key, err)
		}
	}
	for _, sp := range out.Spans {
		if sp == nil {
			continue
		}
		sp.ID = 0 // EmitRaw reassigns from the coordinator's sequence
		sp.Parent = env.trace.CurrentJob()
		if sp.Tags == nil {
			sp.Tags = map[string]string{}
		}
		sp.Tags["remote"] = "1"
		if sp.Attrs == nil {
			sp.Attrs = map[string]int64{}
		}
		sp.Attrs[obs.AttrWorker] = int64(out.Worker)
		env.trace.EmitRaw(sp)
	}
	env.trace.Start(obs.KindPartOwner, fmt.Sprintf("part-%d", p)).
		Attr(obs.AttrPart, int64(p)).Attr(obs.AttrWorker, int64(out.Worker)).End()
	return nil
}

// validateRemote rejects Config combinations the remote map path cannot
// honor: the fault hooks, spill persistence, and the external-sort
// baseline all live inside the in-process attempt body.
func validateRemote(conf Config) error {
	switch {
	case conf.SpillDir != "":
		return fmt.Errorf("mapreduce: RemoteMap is incompatible with SpillDir (runs arrive encoded, not as local spill files)")
	case conf.ExternalSort:
		return fmt.Errorf("mapreduce: RemoteMap is incompatible with ExternalSort (workers ship pre-sorted runs)")
	case conf.Faults != nil:
		return fmt.Errorf("mapreduce: RemoteMap is incompatible with Faults (inject worker faults at the cluster layer instead)")
	}
	return nil
}
