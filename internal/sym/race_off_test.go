//go:build !race

package sym

const raceEnabled = false
