package sym

import (
	"fmt"
	"reflect"

	"repro/internal/wire"
)

// ValidateState checks a state factory against the programmer contract
// the runtime depends on (paper §5.3). The paper's C++ leans on the type
// checker plus the user-supplied list_fields and cannot verify that
// every symbolic member was actually listed; Go has reflection, so this
// goes further:
//
//   - Fields() returns at least one Value, with no duplicates and no
//     nils;
//   - every field of the state struct that implements Value (directly
//     or inside nested structs/arrays) appears in Fields() — a field
//     forgotten in Fields() would silently break cloning and produce
//     wrong answers;
//   - two instances from the factory have the same shape, and fields
//     survive a CopyFrom plus a symbolic-reset encode/decode round trip.
//
// Validation uses reflection and runs once per query, never on the
// record path.
func ValidateState[S State](newState func() S) (err error) {
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(failure)
			if !ok {
				panic(r)
			}
			err = fmt.Errorf("sym: state validation: %w", f.err)
		}
	}()
	a, b := newState(), newState()
	fa, fb := a.Fields(), b.Fields()
	if len(fa) == 0 {
		return fmt.Errorf("sym: state has no symbolic fields")
	}
	if len(fa) != len(fb) {
		return fmt.Errorf("sym: state factory is not shape-stable: %d vs %d fields", len(fa), len(fb))
	}
	seen := map[Value]int{}
	for i, f := range fa {
		if f == nil {
			return fmt.Errorf("sym: Fields()[%d] is nil", i)
		}
		if j, dup := seen[f]; dup {
			return fmt.Errorf("sym: Fields()[%d] and Fields()[%d] are the same value", j, i)
		}
		seen[f] = i
		if reflect.TypeOf(f) != reflect.TypeOf(fb[i]) {
			return fmt.Errorf("sym: Fields()[%d] type differs across instances: %T vs %T", i, f, fb[i])
		}
	}

	// Every symbolic member reachable in the struct must be listed.
	// SymStruct members enumerate their parts, so a listed SymStruct
	// covers the leaves it references.
	covered := map[uintptr]bool{}
	var cover func(v Value)
	cover = func(v Value) {
		covered[reflect.ValueOf(v).Pointer()] = true
		if st, ok := v.(*SymStruct); ok {
			for _, p := range st.Parts() {
				cover(p)
			}
		}
	}
	for _, f := range fa {
		cover(f)
	}
	if missing := findUnlistedValues(reflect.ValueOf(a), covered); missing != "" {
		return fmt.Errorf("sym: symbolic field %s is not returned by Fields(); the runtime cannot clone or serialize it", missing)
	}

	// Clone and wire round trips on a fresh symbolic state.
	s := freshSymbolic(newState)
	c := cloneState(newState, s)
	sf, cf := s.Fields(), c.Fields()
	e := wire.NewEncoder(64)
	for i := range sf {
		if !sf[i].SameTransfer(cf[i]) || !sf[i].ConstraintEq(cf[i]) {
			return fmt.Errorf("sym: Fields()[%d] does not survive CopyFrom", i)
		}
		sf[i].Encode(e)
	}
	d := wire.NewDecoder(e.Bytes())
	dec := newState()
	for i, f := range dec.Fields() {
		if err := f.Decode(d); err != nil {
			return fmt.Errorf("sym: Fields()[%d] does not survive encode/decode: %w", i, err)
		}
		if !f.SameTransfer(sf[i]) || !f.ConstraintEq(sf[i]) {
			return fmt.Errorf("sym: Fields()[%d] changes across encode/decode", i)
		}
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("sym: state encoding left %d undecoded bytes", d.Remaining())
	}
	return nil
}

// valueType is the interface reflection probes for.
var valueType = reflect.TypeOf((*Value)(nil)).Elem()

// findUnlistedValues walks the state looking for addressable members
// that implement Value but were not covered by Fields(). It returns a
// description of the first one found, or "".
func findUnlistedValues(v reflect.Value, covered map[uintptr]bool) string {
	switch v.Kind() {
	case reflect.Pointer:
		if v.IsNil() {
			return ""
		}
		return findUnlistedValues(v.Elem(), covered)
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			if !f.CanAddr() {
				continue
			}
			addr := f.Addr()
			if addr.Type().Implements(valueType) {
				if covered[addr.Pointer()] {
					continue
				}
				return fmt.Sprintf("%s.%s (%s)", t.Name(), t.Field(i).Name, f.Type())
			}
			if s := findUnlistedValues(f, covered); s != "" {
				return s
			}
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if s := findUnlistedValues(v.Index(i), covered); s != "" {
				return s
			}
		}
	}
	return ""
}
