package sym

import (
	"fmt"
	"sort"
)

// StreamComposer consumes chunk summaries as they arrive — possibly out
// of order, as mappers finish at different times — and maintains the
// aggregation state composed through the longest contiguous prefix of
// chunk sequence numbers. It is the incremental/streaming consumption
// mode the paper's conclusion points at ("a platform for interactive
// ad-hoc querying"): results tighten as chunks land, without waiting for
// a full barrier before composing.
//
// Chunks are identified by a dense sequence number starting at 0 (e.g.
// the (mapperID, recordID) order already used by the shuffle, flattened).
// Add is not safe for concurrent use; wrap with a lock if needed.
type StreamComposer[S State] struct {
	newState func() S
	state    S   // composed through chunks [0, next)
	next     int // first missing sequence number
	pending  map[int][]*Summary[S]
}

// NewStreamComposer starts a composer from the initial concrete state.
func NewStreamComposer[S State](newState func() S) *StreamComposer[S] {
	return &StreamComposer[S]{
		newState: newState,
		state:    newState(),
		pending:  map[int][]*Summary[S]{},
	}
}

// Add delivers the ordered summaries of chunk seq. It returns the number
// of chunks newly folded into the prefix state (0 if seq leaves a gap).
// Delivering the same sequence number twice is an error.
func (c *StreamComposer[S]) Add(seq int, sums []*Summary[S]) (int, error) {
	if seq < c.next {
		return 0, fmt.Errorf("sym: chunk %d already composed", seq)
	}
	if _, dup := c.pending[seq]; dup {
		return 0, fmt.Errorf("sym: chunk %d delivered twice", seq)
	}
	c.pending[seq] = sums
	folded := 0
	for {
		sums, ok := c.pending[c.next]
		if !ok {
			break
		}
		next, err := ApplyAll(c.state, sums)
		if err != nil {
			return folded, fmt.Errorf("sym: folding chunk %d: %w", c.next, err)
		}
		delete(c.pending, c.next)
		c.state = next
		c.next++
		folded++
	}
	return folded, nil
}

// Prefix returns the state composed through the contiguous prefix and
// the number of chunks it covers. The state must not be mutated.
func (c *StreamComposer[S]) Prefix() (S, int) {
	return c.state, c.next
}

// Pending returns the sequence numbers received but not yet foldable
// (blocked behind a gap), in ascending order.
func (c *StreamComposer[S]) Pending() []int {
	out := make([]int, 0, len(c.pending))
	for seq := range c.pending {
		out = append(out, seq)
	}
	sort.Ints(out)
	return out
}

// Speculate returns the state that would result if the pending chunks
// directly after the prefix gap-free region were... composed through
// every received chunk in sequence order, skipping gaps. It answers
// "what does the result look like so far" for interactive consumption;
// the answer is exact once Pending is empty. The prefix state is not
// affected.
func (c *StreamComposer[S]) Speculate() (S, error) {
	cur := c.state
	for _, seq := range c.Pending() {
		next, err := ApplyAll(cur, c.pending[seq])
		if err != nil {
			var zero S
			return zero, fmt.Errorf("sym: speculating through chunk %d: %w", seq, err)
		}
		cur = next
	}
	return cur, nil
}

// Done reports whether all chunks in [0, total) have been folded.
func (c *StreamComposer[S]) Done(total int) bool {
	return c.next >= total && len(c.pending) == 0
}
