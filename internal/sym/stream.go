package sym

import (
	"fmt"
	"sort"
)

// StreamComposer consumes chunk summaries as they arrive — possibly out
// of order, as mappers finish at different times — and maintains the
// aggregation state composed through the longest contiguous prefix of
// chunk sequence numbers. It is the incremental/streaming consumption
// mode the paper's conclusion points at ("a platform for interactive
// ad-hoc querying"): results tighten as chunks land, without waiting for
// a full barrier before composing.
//
// The composer takes ownership of the summaries handed to Add: once a
// chunk folds into the prefix, its summaries' path states are released
// back to the schema pool (and the superseded prefix state recycled), so
// a long stream holds live memory proportional to the out-of-order
// window, not to the number of chunks folded. Summaries still pending
// behind a gap are retained untouched until they fold.
//
// Chunks are identified by a dense sequence number starting at 0 (e.g.
// the (mapperID, recordID) order already used by the shuffle, flattened).
// Add is not safe for concurrent use; wrap with a lock if needed.
type StreamComposer[S State] struct {
	sc      *Schema[S]
	state   *pathState[S] // composed through chunks [0, next)
	next    int           // first missing sequence number
	pending map[int][]*Summary[S]
}

// streamTreeFoldMin is the bundle length above which Add pre-composes a
// chunk's summaries as a balanced tree before applying them, instead of
// applying one by one. Short bundles aren't worth the cross products.
const streamTreeFoldMin = 4

// NewStreamComposer starts a composer from the initial concrete state.
func NewStreamComposer[S State](newState func() S) *StreamComposer[S] {
	return NewStreamComposerSchema(newSchema(newState))
}

// NewStreamComposerSchema starts a composer whose recycled states
// circulate through sc's pool — share the schema of the executors that
// produce the summaries so the whole stream runs on one arena.
func NewStreamComposerSchema[S State](sc *Schema[S]) *StreamComposer[S] {
	return &StreamComposer[S]{
		sc:      sc,
		state:   wrapState(sc.newState()),
		pending: map[int][]*Summary[S]{},
	}
}

// Add delivers the ordered summaries of chunk seq, taking ownership of
// them. It returns the number of chunks newly folded into the prefix
// state (0 if seq leaves a gap). Delivering the same sequence number
// twice is an error.
func (c *StreamComposer[S]) Add(seq int, sums []*Summary[S]) (int, error) {
	if seq < c.next {
		return 0, fmt.Errorf("sym: chunk %d already composed", seq)
	}
	if _, dup := c.pending[seq]; dup {
		return 0, fmt.Errorf("sym: chunk %d delivered twice", seq)
	}
	c.pending[seq] = sums
	folded := 0
	for {
		sums, ok := c.pending[c.next]
		if !ok {
			break
		}
		// A long bundle folds cheaper as a tree: pre-compose the chunk's
		// summaries pairwise (ComposeAll keeps the §5.4 order and leaves
		// the inputs intact), then apply the single result. Falls back to
		// the sequential walk when composition fails — applyPS to a
		// concrete state is total where symbolic composition may not be.
		if len(sums) > streamTreeFoldMin {
			if composed, err := ComposeAll(sums); err == nil {
				nxt, aerr := composed.applyPS(c.state)
				composed.Release()
				if aerr == nil {
					for _, s := range sums {
						s.Release()
					}
					c.sc.put(c.state)
					c.state = nxt
					delete(c.pending, c.next)
					c.next++
					folded++
					continue
				}
			}
		}
		// Apply the chunk onto a working copy so an error leaves the
		// prefix state untouched, then retire the superseded state and
		// the consumed summaries to the pool.
		cur := c.state
		for i, s := range sums {
			nxt, err := s.applyPS(cur)
			if err != nil {
				if cur != c.state {
					c.sc.put(cur)
				}
				return folded, fmt.Errorf("sym: folding chunk %d summary %d/%d: %w",
					c.next, i+1, len(sums), err)
			}
			if cur != c.state {
				c.sc.put(cur)
			}
			cur = nxt
		}
		if cur != c.state {
			c.sc.put(c.state)
			c.state = cur
		}
		for _, s := range sums {
			s.Release()
		}
		delete(c.pending, c.next)
		c.next++
		folded++
	}
	return folded, nil
}

// Prefix returns the state composed through the contiguous prefix and
// the number of chunks it covers. The state must not be mutated and is
// invalidated by the next Add that folds a chunk.
func (c *StreamComposer[S]) Prefix() (S, int) {
	return c.state.s, c.next
}

// Pending returns the sequence numbers received but not yet foldable
// (blocked behind a gap), in ascending order.
func (c *StreamComposer[S]) Pending() []int {
	out := make([]int, 0, len(c.pending))
	for seq := range c.pending {
		out = append(out, seq)
	}
	sort.Ints(out)
	return out
}

// Speculate returns the state composed through every received chunk in
// sequence order, skipping gaps. It answers "what does the result look
// like so far" for interactive consumption; the answer is exact once
// Pending is empty. The prefix state and pending summaries are not
// affected.
func (c *StreamComposer[S]) Speculate() (S, error) {
	cur := c.state.s
	for _, seq := range c.Pending() {
		next, err := ApplyAll(cur, c.pending[seq])
		if err != nil {
			var zero S
			return zero, fmt.Errorf("sym: speculating through chunk %d: %w", seq, err)
		}
		cur = next
	}
	return cur, nil
}

// Done reports whether all chunks in [0, total) have been folded.
func (c *StreamComposer[S]) Done(total int) bool {
	return c.next >= total && len(c.pending) == 0
}
