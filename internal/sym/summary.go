package sym

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// Summary is a symbolic summary of a UDA execution over one input chunk:
// a set of paths, each a State whose fields carry a per-variable
// constraint on the chunk's unknown initial state and the transfer
// function producing the final state (paper §3.2). A valid summary's path
// constraints partition the initial-state space, so applying a summary to
// any concrete state selects exactly one path.
//
// Paths are held in schema containers. A summary produced by an Executor
// carries its schema, which lets Apply, ComposeWith and Encode run off
// the captured field slices with pooled scratch, and lets Release return
// the containers once the summary is consumed. Summaries built by
// NewSummary or DecodeSummary have no schema and fall back to the
// allocating paths.
type Summary[S State] struct {
	ps       []*pathState[S]
	newState func() S
	sc       *Schema[S] // nil for schemaless summaries
	// held counts path containers a released summary keeps parked in
	// ps[:cap] for its next pooled use. Retaining them makes the
	// summary+containers a single pooled unit, so finishing a key costs
	// one pool crossing (getSummary) instead of one per container —
	// sync.Pool's per-P pinning was a measurable share of the per-key
	// fixed cost on high-cardinality chunks. Only meaningful while the
	// struct sits parked in the schema's free stack.
	held int
}

// NewSummary builds a summary from explored paths. Intended for tests and
// extensions; executors produce summaries via Finish.
func NewSummary[S State](newState func() S, paths []S) *Summary[S] {
	ps := make([]*pathState[S], len(paths))
	for i, p := range paths {
		ps[i] = wrapState(p)
	}
	return &Summary[S]{ps: ps, newState: newState}
}

// NumPaths returns the number of paths.
func (s *Summary[S]) NumPaths() int { return len(s.ps) }

// Paths returns the underlying paths. They must not be mutated. The
// slice is rebuilt per call; this is a diagnostic/test accessor, not a
// hot-path API.
func (s *Summary[S]) Paths() []S {
	out := make([]S, len(s.ps))
	for i, p := range s.ps {
		out[i] = p.s
	}
	return out
}

// Release recycles the summary — struct, path-list backing array AND
// path containers — through the schema's summary pool as one unit. The
// containers stay parked inside the pooled struct (held) rather than
// going back to the container pool, so the next Finish on this schema
// reuses them with a single pool crossing. Call once the summary has
// been consumed (folded into a state or composed away); no-op for
// schemaless summaries. The summary must not be used — or released
// again — afterwards.
func (s *Summary[S]) Release() {
	sc := s.sc
	if sc == nil {
		return
	}
	s.held = len(s.ps)
	s.ps = s.ps[:0]
	s.newState = nil
	s.sc = nil
	sc.parkSummary(s)
}

// Apply composes the summary onto the concrete state c: it selects the
// path admitting c, applies the transfer functions, and resolves symbolic
// vector elements (paper §3.6). c is not mutated.
func (s *Summary[S]) Apply(c S) (out S, err error) {
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(failure)
			if !ok {
				panic(r)
			}
			err = f.err
		}
	}()
	res, aerr := s.applyPS(wrapState(c))
	if aerr != nil {
		var zero S
		return zero, aerr
	}
	return res.s, nil
}

// applyPS is Apply over containers: the returned container is freshly
// drawn from the schema pool (or GC-allocated without a schema) and owned
// by the caller.
func (s *Summary[S]) applyPS(cw *pathState[S]) (*pathState[S], error) {
	for _, p := range s.ps {
		if admitsFields(p.fs, cw.fs) {
			return s.concretizePS(p, cw), nil
		}
	}
	return nil, ErrNoPath
}

// ApplyStrict is Apply plus a validity check: it errors if the number of
// admitting paths differs from one (the partition property is violated).
// Use in tests; Apply takes the first admitting path.
func (s *Summary[S]) ApplyStrict(c S) (out S, err error) {
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(failure)
			if !ok {
				panic(r)
			}
			err = f.err
		}
	}()
	cw := wrapState(c)
	var chosen *pathState[S]
	n := 0
	for _, p := range s.ps {
		if admitsFields(p.fs, cw.fs) {
			chosen = p
			n++
		}
	}
	if n != 1 {
		var zero S
		return zero, fmt.Errorf("%w: %d of %d paths admit the state", ErrNoPath, n, len(s.ps))
	}
	return s.concretizePS(chosen, cw).s, nil
}

func (s *Summary[S]) concretizePS(p, cw *pathState[S]) *pathState[S] {
	var env Env
	captureEnvInto(&env, cw.fs)
	var out *pathState[S]
	if s.sc != nil {
		out = s.sc.cloneOf(p)
	} else {
		out = wrapState(cloneState(s.newState, p.s))
	}
	for i, f := range out.fs {
		f.Concretize(cw.fs[i], &env)
	}
	return out
}

// ApplyAll composes an ordered sequence of summaries onto the concrete
// state c, the reducer-side evaluation S_n(…S_2(S_1(c))…) of paper §3.6.
// The summaries are not consumed; see StreamComposer for the folding
// consumer that recycles them.
func ApplyAll[S State](c S, summaries []*Summary[S]) (S, error) {
	cur := c
	for i, s := range summaries {
		next, err := s.Apply(cur)
		if err != nil {
			var zero S
			return zero, fmt.Errorf("sym: applying summary %d/%d: %w", i+1, len(summaries), err)
		}
		cur = next
	}
	return cur, nil
}

// ComposeWith composes two summaries into one: s runs first, next runs
// second, and the result maps s's input directly to next's output
// (paper §3.6: function composition is associative, enabling parallel
// reduction of summaries). The composition takes the cross product of
// path pairs, eliminates infeasible combinations, and re-merges. Neither
// input is consumed; release them separately if pooled.
func (s *Summary[S]) ComposeWith(next *Summary[S]) (out *Summary[S], err error) {
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(failure)
			if !ok {
				panic(r)
			}
			err = f.err
		}
	}()
	var senv SymEnv
	var paths []*pathState[S]
	for _, pa := range s.ps {
		captureSymEnvInto(&senv, pa.fs)
		for _, pb := range next.ps {
			var cand *pathState[S]
			if s.sc != nil {
				cand = s.sc.cloneOf(pb)
			} else {
				cand = wrapState(cloneState(s.newState, pb.s))
			}
			feasible := true
			for i, f := range cand.fs {
				if !f.ComposeAfter(pa.fs[i], &senv) {
					feasible = false
					break
				}
			}
			if feasible {
				paths = append(paths, cand)
			} else if s.sc != nil {
				s.sc.put(cand)
			}
		}
	}
	if len(paths) == 0 {
		return nil, ErrInfeasible
	}
	paths, _ = mergePathStates(s.sc, paths)
	return &Summary[S]{ps: paths, newState: s.newState, sc: s.sc}, nil
}

// ComposeAll reduces an ordered list of summaries to a single summary.
// Composition is associative (paper §3.6), so instead of a left-to-right
// fold the reduction runs as a balanced pairwise tree: adjacent
// summaries compose first and the list halves per level. Every
// ComposeWith still pairs a summary with its immediate successor, so the
// §5.4 order is preserved at every node. The balanced shape matters for
// cost, not just depth — a skewed fold drags one ever-growing
// accumulator through every step, while the tree composes like-sized
// summaries whose path products stay small. The inputs are not consumed;
// intermediate results are recycled. With a single input, that input
// itself is returned.
func ComposeAll[S State](summaries []*Summary[S]) (*Summary[S], error) {
	s, _, err := ComposeAllCounted(summaries)
	return s, err
}

// ComposeAllCounted is ComposeAll returning the number of pairwise
// ComposeWith calls actually performed. Folding n summaries takes
// exactly n−1 composes however the tree is shaped — the count is
// measured, not derived, so the observability layer can assert that
// algebraic identity on real runs rather than trust it by construction.
func ComposeAllCounted[S State](summaries []*Summary[S]) (*Summary[S], int, error) {
	composes := 0
	if len(summaries) == 0 {
		return nil, 0, fmt.Errorf("sym: ComposeAll of zero summaries")
	}
	level := append([]*Summary[S](nil), summaries...)
	owned := make([]bool, len(level)) // inputs are borrowed, intermediates owned
	for len(level) > 1 {
		w := 0
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				level[w], owned[w] = level[i], owned[i]
				w++
				break
			}
			c, err := level[i].ComposeWith(level[i+1])
			composes++
			if err != nil {
				for j, s := range level {
					if s != nil && owned[j] {
						s.Release()
					}
				}
				return nil, composes, err
			}
			if owned[i] {
				level[i].Release()
			}
			if owned[i+1] {
				level[i+1].Release()
			}
			level[i], level[i+1] = nil, nil
			level[w], owned[w] = c, true
			w++
		}
		level, owned = level[:w], owned[:w]
	}
	return level[0], composes, nil
}

// ComposeAllParallel is ComposeAll for wide fan-ins: the pairs of each
// tree level compose on their own goroutines. It CONSUMES its input —
// every input and intermediate summary except the returned one is
// released (on error the not-yet-composed summaries fall to the GC).
// Narrow levels compose inline; goroutines only pay off once a level has
// several cross products to overlap.
func ComposeAllParallel[S State](summaries []*Summary[S]) (*Summary[S], error) {
	s, _, err := ComposeAllParallelCounted(summaries)
	return s, err
}

// ComposeAllParallelCounted is ComposeAllParallel returning the number
// of pairwise composes performed (n−1 on success; see
// ComposeAllCounted).
func ComposeAllParallelCounted[S State](summaries []*Summary[S]) (*Summary[S], int, error) {
	if len(summaries) == 0 {
		return nil, 0, fmt.Errorf("sym: ComposeAll of zero summaries")
	}
	const minParallelPairs = 4
	var composes atomic.Int64
	level := summaries
	for len(level) > 1 {
		next := make([]*Summary[S], (len(level)+1)/2)
		errs := make([]error, len(next))
		compose := func(i int) {
			c, err := level[i].ComposeWith(level[i+1])
			composes.Add(1)
			if err == nil {
				level[i].Release()
				level[i+1].Release()
			}
			next[i/2], errs[i/2] = c, err
		}
		if len(level)/2 < minParallelPairs {
			for i := 0; i+1 < len(level); i += 2 {
				compose(i)
			}
		} else {
			var wg sync.WaitGroup
			for i := 0; i+1 < len(level); i += 2 {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					compose(i)
				}(i)
			}
			wg.Wait()
		}
		if len(level)%2 == 1 {
			next[len(next)-1] = level[len(level)-1]
		}
		for _, err := range errs {
			if err != nil {
				return nil, int(composes.Load()), err
			}
		}
		level = next
	}
	return level[0], int(composes.Load()), nil
}

// summaryTagless is the header bit marking a summary whose fields are
// encoded without per-field tags: every field's tag equals its position
// in the state, so the schema's field order is the tag dictionary. The
// header is Uvarint(numPaths<<1 | taglessBit).
const summaryTagless = 1

// Encode appends the summary's compact wire form to e. The summary is
// Compacted first (idempotent), so what ships is the canonical deduped
// path set.
func (s *Summary[S]) Encode(e *wire.Encoder) {
	s.Compact()
	tagless := true
	for _, p := range s.ps {
		for i, f := range p.fs {
			if tc, ok := f.(taglessCodec); !ok || !tc.tagMatches(i) {
				tagless = false
				break
			}
		}
		if !tagless {
			break
		}
	}
	h := uint64(len(s.ps)) << 1
	if tagless {
		h |= summaryTagless
	}
	e.Uvarint(h)
	for _, p := range s.ps {
		for _, f := range p.fs {
			if tagless {
				f.(taglessCodec).encodeTagless(e)
			} else {
				f.Encode(e)
			}
		}
	}
}

// EncodedSize returns the wire size of the summary in bytes.
func (s *Summary[S]) EncodedSize() int {
	e := wire.GetEncoder()
	s.Encode(e)
	n := e.Len()
	wire.PutEncoder(e)
	return n
}

// DecodeSummary reads a summary written by Encode. newState must build
// states of the same shape (field order, enum domains, codecs) as the
// encoding side.
func DecodeSummary[S State](newState func() S, d *wire.Decoder) (*Summary[S], error) {
	return decodeSummary[S](nil, newState, d)
}

// DecodeSummary reads a summary written by Encode into pooled containers
// of the schema, so reducers that Release consumed summaries recycle
// their path states instead of reallocating per summary.
func (sc *Schema[S]) DecodeSummary(d *wire.Decoder) (*Summary[S], error) {
	return decodeSummary(sc, sc.newState, d)
}

func decodeSummary[S State](sc *Schema[S], newState func() S, d *wire.Decoder) (*Summary[S], error) {
	h := d.Uvarint()
	if err := d.Err(); err != nil {
		return nil, err
	}
	tagless := h&summaryTagless != 0
	if h>>1 > uint64(d.Remaining()+1) {
		return nil, fmt.Errorf("%w: summary claims %d paths with %d bytes left",
			wire.ErrCorrupt, h>>1, d.Remaining())
	}
	n := int(h >> 1)
	ps := make([]*pathState[S], 0, n)
	bail := func(i int, err error) (*Summary[S], error) {
		if sc != nil {
			for _, p := range ps {
				sc.put(p)
			}
		}
		return nil, fmt.Errorf("sym: decoding summary path %d: %w", i, err)
	}
	for i := 0; i < n; i++ {
		var p *pathState[S]
		if sc != nil {
			// Every Value.Decode fully overwrites its receiver (scalars
			// assigned, slices freshly made), so a recycled container
			// needs no reset.
			p = sc.get()
		} else {
			p = wrapState(newState())
		}
		ps = append(ps, p)
		for fi, f := range p.fs {
			if tagless {
				tc, ok := f.(taglessCodec)
				if !ok {
					return bail(i, fmt.Errorf("%w: tagless summary but field %d cannot decode tagless",
						wire.ErrCorrupt, fi))
				}
				if err := tc.decodeTagless(d, fi); err != nil {
					return bail(i, err)
				}
			} else if err := f.Decode(d); err != nil {
				return bail(i, err)
			}
		}
	}
	return &Summary[S]{ps: ps, newState: newState, sc: sc}, nil
}

// String renders the summary for diagnostics, one path per line.
func (s *Summary[S]) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "summary(%d paths)\n", len(s.ps))
	for _, p := range s.ps {
		parts := make([]string, 0, len(p.fs))
		for _, f := range p.fs {
			parts = append(parts, f.String())
		}
		fmt.Fprintf(&b, "  %s\n", strings.Join(parts, " ∧ "))
	}
	return b.String()
}
