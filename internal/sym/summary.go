package sym

import (
	"fmt"
	"strings"

	"repro/internal/wire"
)

// Summary is a symbolic summary of a UDA execution over one input chunk:
// a set of paths, each a State whose fields carry a per-variable
// constraint on the chunk's unknown initial state and the transfer
// function producing the final state (paper §3.2). A valid summary's path
// constraints partition the initial-state space, so applying a summary to
// any concrete state selects exactly one path.
type Summary[S State] struct {
	paths    []S
	newState func() S
}

// NewSummary builds a summary from explored paths. Intended for tests and
// extensions; executors produce summaries via Finish.
func NewSummary[S State](newState func() S, paths []S) *Summary[S] {
	return &Summary[S]{paths: paths, newState: newState}
}

// NumPaths returns the number of paths.
func (s *Summary[S]) NumPaths() int { return len(s.paths) }

// Paths returns the underlying paths. They must not be mutated.
func (s *Summary[S]) Paths() []S { return s.paths }

// Apply composes the summary onto the concrete state c: it selects the
// path admitting c, applies the transfer functions, and resolves symbolic
// vector elements (paper §3.6). c is not mutated.
func (s *Summary[S]) Apply(c S) (out S, err error) {
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(failure)
			if !ok {
				panic(r)
			}
			err = f.err
		}
	}()
	for _, p := range s.paths {
		if admits(p, c) {
			return s.concretize(p, c), nil
		}
	}
	var zero S
	return zero, ErrNoPath
}

// ApplyStrict is Apply plus a validity check: it errors if the number of
// admitting paths differs from one (the partition property is violated).
// Use in tests; Apply takes the first admitting path.
func (s *Summary[S]) ApplyStrict(c S) (out S, err error) {
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(failure)
			if !ok {
				panic(r)
			}
			err = f.err
		}
	}()
	var chosen S
	n := 0
	for _, p := range s.paths {
		if admits(p, c) {
			chosen = p
			n++
		}
	}
	if n != 1 {
		var zero S
		return zero, fmt.Errorf("%w: %d of %d paths admit the state", ErrNoPath, n, len(s.paths))
	}
	return s.concretize(chosen, c), nil
}

func (s *Summary[S]) concretize(p, c S) S {
	env := NewEnv(c)
	out := cloneState(s.newState, p)
	cf := c.Fields()
	for i, f := range out.Fields() {
		f.Concretize(cf[i], env)
	}
	return out
}

// ApplyAll composes an ordered sequence of summaries onto the concrete
// state c, the reducer-side evaluation S_n(…S_2(S_1(c))…) of paper §3.6.
func ApplyAll[S State](c S, summaries []*Summary[S]) (S, error) {
	cur := c
	for i, s := range summaries {
		next, err := s.Apply(cur)
		if err != nil {
			var zero S
			return zero, fmt.Errorf("sym: applying summary %d/%d: %w", i+1, len(summaries), err)
		}
		cur = next
	}
	return cur, nil
}

// ComposeWith composes two summaries into one: s runs first, next runs
// second, and the result maps s's input directly to next's output
// (paper §3.6: function composition is associative, enabling parallel
// reduction of summaries). The composition takes the cross product of
// path pairs, eliminates infeasible combinations, and re-merges.
func (s *Summary[S]) ComposeWith(next *Summary[S]) (out *Summary[S], err error) {
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(failure)
			if !ok {
				panic(r)
			}
			err = f.err
		}
	}()
	var paths []S
	for _, pa := range s.paths {
		senv := NewSymEnv(pa)
		paf := pa.Fields()
		for _, pb := range next.paths {
			cand := cloneState(s.newState, pb)
			feasible := true
			for i, f := range cand.Fields() {
				if !f.ComposeAfter(paf[i], senv) {
					feasible = false
					break
				}
			}
			if feasible {
				paths = append(paths, cand)
			}
		}
	}
	if len(paths) == 0 {
		return nil, ErrInfeasible
	}
	paths, _ = mergeAll(paths)
	return &Summary[S]{paths: paths, newState: s.newState}, nil
}

// ComposeAll reduces an ordered list of summaries to a single summary by
// left-to-right composition. With the associativity of composition this
// could equally run as a parallel tree; see the ablation benchmarks.
func ComposeAll[S State](summaries []*Summary[S]) (*Summary[S], error) {
	if len(summaries) == 0 {
		return nil, fmt.Errorf("sym: ComposeAll of zero summaries")
	}
	cur := summaries[0]
	for _, s := range summaries[1:] {
		next, err := cur.ComposeWith(s)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// Encode appends the summary's compact wire form to e.
func (s *Summary[S]) Encode(e *wire.Encoder) {
	e.Uvarint(uint64(len(s.paths)))
	for _, p := range s.paths {
		for _, f := range p.Fields() {
			f.Encode(e)
		}
	}
}

// EncodedSize returns the wire size of the summary in bytes.
func (s *Summary[S]) EncodedSize() int {
	e := wire.NewEncoder(256)
	s.Encode(e)
	return e.Len()
}

// DecodeSummary reads a summary written by Encode. newState must build
// states of the same shape (field order, enum domains, codecs) as the
// encoding side.
func DecodeSummary[S State](newState func() S, d *wire.Decoder) (*Summary[S], error) {
	n := d.Length(d.Remaining() + 1)
	if err := d.Err(); err != nil {
		return nil, err
	}
	paths := make([]S, n)
	for i := range paths {
		paths[i] = newState()
		for _, f := range paths[i].Fields() {
			if err := f.Decode(d); err != nil {
				return nil, fmt.Errorf("sym: decoding summary path %d: %w", i, err)
			}
		}
	}
	return &Summary[S]{paths: paths, newState: newState}, nil
}

// String renders the summary for diagnostics, one path per line.
func (s *Summary[S]) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "summary(%d paths)\n", len(s.paths))
	for _, p := range s.paths {
		parts := make([]string, 0, len(p.Fields()))
		for _, f := range p.Fields() {
			parts = append(parts, f.String())
		}
		fmt.Fprintf(&b, "  %s\n", strings.Join(parts, " ∧ "))
	}
	return b.String()
}
