package sym

import (
	"errors"
	"math"
	"testing"
)

func TestCtxLexicographicExploration(t *testing.T) {
	// Three forks of width 2: the context must enumerate all 8 paths in
	// lexicographic order.
	var ctx Ctx
	var seen [][3]int
	ctx.reset()
	for {
		ctx.begin()
		var p [3]int
		for i := range p {
			p[i] = ctx.ForkN(2)
		}
		seen = append(seen, p)
		if !ctx.advance() {
			break
		}
	}
	if len(seen) != 8 {
		t.Fatalf("explored %d paths, want 8", len(seen))
	}
	for i, p := range seen {
		want := [3]int{(i >> 2) & 1, (i >> 1) & 1, i & 1}
		if p != want {
			t.Errorf("path %d = %v, want %v", i, p, want)
		}
	}
}

func TestCtxVariableDepth(t *testing.T) {
	// A fork tree where outcome 1 at the first fork ends the run: paths
	// are 00, 01, 1 — the paper's 0,10,11 example modulo labeling.
	var ctx Ctx
	var seen []string
	ctx.reset()
	for {
		ctx.begin()
		if ctx.ForkN(2) == 0 {
			if ctx.ForkN(2) == 0 {
				seen = append(seen, "00")
			} else {
				seen = append(seen, "01")
			}
		} else {
			seen = append(seen, "1")
		}
		if !ctx.advance() {
			break
		}
	}
	if len(seen) != 3 || seen[0] != "00" || seen[1] != "01" || seen[2] != "1" {
		t.Fatalf("paths: %v", seen)
	}
}

func TestCtxMixedRadix(t *testing.T) {
	var ctx Ctx
	count := 0
	ctx.reset()
	for {
		ctx.begin()
		ctx.ForkN(3)
		ctx.ForkN(2)
		count++
		if !ctx.advance() {
			break
		}
	}
	if count != 6 {
		t.Fatalf("explored %d paths, want 6", count)
	}
}

func maxUpdate(ctx *Ctx, s *intState, e int64) {
	if s.V.Lt(ctx, e) {
		s.V.Set(e)
	}
}

func TestEngineMergingKeepsTwoPaths(t *testing.T) {
	// The Max UDA over any chunk merges to exactly 2 paths (paper §3.5).
	x := NewExecutor(newIntState(math.MinInt64), maxUpdate, DefaultOptions())
	for e := int64(0); e < 100; e++ {
		if err := x.Feed(e * 7 % 50); err != nil {
			t.Fatal(err)
		}
		if got := x.LivePaths(); got > 2 {
			t.Fatalf("after %d records: %d live paths, want ≤ 2", e+1, got)
		}
	}
	st := x.Stats()
	if st.Restarts != 0 {
		t.Fatalf("restarts = %d, want 0", st.Restarts)
	}
	if st.Merges == 0 {
		t.Fatal("expected merges to occur")
	}
}

func TestEngineMergingDisabledGrowsPaths(t *testing.T) {
	// With merging off, Max accumulates paths until the live cap forces
	// restarts — the ablation of paper §5.2.
	x := NewExecutor(newIntState(math.MinInt64), maxUpdate,
		Options{MaxLivePaths: 4, DisableMerging: true})
	for e := int64(1); e <= 40; e++ {
		if err := x.Feed(e); err != nil { // strictly increasing: every record forks
			t.Fatal(err)
		}
	}
	st := x.Stats()
	if st.Restarts == 0 {
		t.Fatal("expected restarts with merging disabled")
	}
	sums, err := x.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != st.Restarts+1 {
		t.Fatalf("%d summaries, want %d", len(sums), st.Restarts+1)
	}
	// Composition across restart summaries still yields the right max.
	got, err := ApplyAll(&intState{V: NewSymInt(math.MinInt64)}, sums)
	if err != nil {
		t.Fatal(err)
	}
	if g := got.V.Get(); g != 40 {
		t.Fatalf("max = %d, want 40", g)
	}
	got2, err := ApplyAll(&intState{V: NewSymInt(1000)}, sums)
	if err != nil {
		t.Fatal(err)
	}
	if g := got2.V.Get(); g != 1000 {
		t.Fatalf("max = %d, want 1000", g)
	}
}

func TestEngineRestartBoundsLivePaths(t *testing.T) {
	// A UDA whose paths never merge (distinct transfers): counters
	// diverge by path. Live paths must stay ≤ MaxLivePaths.
	update := func(ctx *Ctx, s *intState, e int64) {
		if s.V.Lt(ctx, e) {
			s.V.Mul(2)
			s.V.Add(e)
		} else {
			s.V.Add(1)
		}
	}
	x := NewExecutor(newIntState(0), update, Options{MaxLivePaths: 8, MaxRunsPerRecord: 1 << 16})
	for e := int64(1); e < 30; e++ {
		if err := x.Feed(e * 3); err != nil {
			t.Fatal(err)
		}
		if got := x.LivePaths(); got > 8 {
			t.Fatalf("live paths %d exceeds cap", got)
		}
	}
	sums, err := x.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) < 2 {
		t.Fatalf("expected multiple summaries, got %d", len(sums))
	}
	// Oracle check across the restart boundaries.
	concrete := func(v int64) int64 {
		for e := int64(1); e < 30; e++ {
			rec := e * 3
			if v < rec {
				v = v*2 + rec
			} else {
				v++
			}
		}
		return v
	}
	for _, init := range []int64{-5, 0, 10, 1000} {
		got, err := ApplyAll(&intState{V: NewSymInt(init)}, sums)
		if err != nil {
			t.Fatal(err)
		}
		if g, want := got.V.Get(), concrete(init); g != want {
			t.Fatalf("init %d: got %d, want %d", init, g, want)
		}
	}
}

func TestEnginePathExplosionDetected(t *testing.T) {
	// A state-dependent loop: unbounded forking within one record.
	update := func(ctx *Ctx, s *intState, _ struct{}) {
		for s.V.Gt(ctx, 0) {
			s.V.Dec()
		}
	}
	x := NewExecutor(newIntState(0), update, Options{MaxRunsPerRecord: 32})
	err := x.Feed(struct{}{})
	if !errors.Is(err, ErrPathExplosion) {
		t.Fatalf("got %v, want ErrPathExplosion", err)
	}
}

func TestEngineConcreteFastPath(t *testing.T) {
	// A concrete executor never clones or forks: Runs == Records.
	x := NewConcreteExecutor(newIntState(math.MinInt64), maxUpdate, DefaultOptions())
	for e := int64(0); e < 1000; e++ {
		if err := x.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	st := x.Stats()
	if st.Runs != st.Records {
		t.Fatalf("runs %d != records %d on concrete execution", st.Runs, st.Records)
	}
	s, err := x.ConcreteState()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.V.Get(); got != 999 {
		t.Fatalf("max = %d, want 999", got)
	}
}

func TestEngineSymbolicBecomesConcreteFast(t *testing.T) {
	// Once every path is fully bound, the engine switches to in-place
	// execution: Runs grows by paths-count per record, no forks.
	update := func(ctx *Ctx, s *intState, e int64) {
		if e == 0 {
			s.V.Set(0) // binds on first record in every path
		} else {
			s.V.Add(e)
		}
	}
	x := NewExecutor(newIntState(0), update, DefaultOptions())
	if err := x.Feed(0); err != nil {
		t.Fatal(err)
	}
	runsAfterFirst := x.Stats().Runs
	for e := int64(1); e <= 100; e++ {
		if err := x.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	st := x.Stats()
	if got := st.Runs - runsAfterFirst; got != 100 {
		t.Fatalf("post-bind runs = %d, want 100 (one in-place run per record)", got)
	}
}

func TestConcreteStateOnSymbolicExecutorFails(t *testing.T) {
	x := NewExecutor(newIntState(0), maxUpdate, DefaultOptions())
	if err := x.Feed(5); err != nil {
		t.Fatal(err)
	}
	if _, err := x.ConcreteState(); err == nil {
		t.Fatal("expected error reading concrete state of symbolic executor")
	}
}
