package sym

import (
	"fmt"

	"repro/internal/wire"
)

// Summary bundles are the engine's unit of summary handoff: the ordered
// summary list of one (mapper, key) pair, encoded as
//
//	Uvarint(count) · summary₀ · summary₁ · …
//
// Mappers emit bundles into the shuffle, reducers decode them back into
// pooled containers, and the serve layer caches the encoded bytes per
// segment so a re-submitted job can decode straight into a
// StreamComposer without re-running the map side. The helpers here are
// the single codec both paths share.

// EncodeSummaryBundle encodes an ordered summary list as one bundle and
// returns an exact-size buffer the caller owns (safe to retain — it
// does not alias pooled encoder state). The summaries are borrowed, not
// consumed, but Encode compacts them in place.
func (sc *Schema[S]) EncodeSummaryBundle(sums []*Summary[S]) []byte {
	e := wire.GetEncoder()
	e.Uvarint(uint64(len(sums)))
	for _, s := range sums {
		s.Encode(e)
	}
	buf := make([]byte, e.Len())
	copy(buf, e.Bytes())
	wire.PutEncoder(e)
	return buf
}

// DecodeSummaryBundle decodes one bundle from data, appending the
// summaries to dst and returning the extended slice. The summaries are
// drawn from the schema's pools; the caller owns them and releases them
// once consumed. Trailing bytes after the bundle are an error — a
// bundle is a complete unit, not a stream prefix.
func (sc *Schema[S]) DecodeSummaryBundle(dst []*Summary[S], data []byte) ([]*Summary[S], error) {
	d := wire.NewDecoder(data)
	dst, err := sc.decodeBundle(dst, d)
	if err != nil {
		return dst, err
	}
	if d.Remaining() != 0 {
		return dst, fmt.Errorf("%w: %d trailing bytes after summary bundle",
			wire.ErrCorrupt, d.Remaining())
	}
	return dst, nil
}

// DecodeSummaryBundleStream decodes one bundle from the head of d,
// leaving the decoder positioned after it — the reducer-side form,
// where several bundles may share one shuffled value.
func (sc *Schema[S]) DecodeSummaryBundleStream(dst []*Summary[S], d *wire.Decoder) ([]*Summary[S], error) {
	return sc.decodeBundle(dst, d)
}

func (sc *Schema[S]) decodeBundle(dst []*Summary[S], d *wire.Decoder) ([]*Summary[S], error) {
	n := d.Length(d.Remaining() + 1)
	if err := d.Err(); err != nil {
		return dst, err
	}
	for i := 0; i < n; i++ {
		s, err := sc.DecodeSummary(d)
		if err != nil {
			return dst, fmt.Errorf("sym: bundle summary %d/%d: %w", i+1, n, err)
		}
		dst = append(dst, s)
	}
	return dst, nil
}
