package sym

import "errors"

var (
	// ErrOverflow reports that a symbolic arithmetic operation overflowed
	// int64. SYMPLE's decision procedures are exact; rather than silently
	// wrapping (and potentially producing answers that differ from the
	// sequential execution), the engine aborts the offending path.
	ErrOverflow = errors.New("sym: integer overflow in symbolic arithmetic")

	// ErrPathExplosion reports that exploring a single input record
	// exceeded Options.MaxRunsPerRecord paths. Per the paper (§5.2) this
	// almost always means the UDA contains a loop that depends on the
	// aggregation state, which symbolic execution cannot bound.
	ErrPathExplosion = errors.New("sym: path explosion — UDA may contain a loop that depends on the aggregation state")

	// ErrSymbolicRead reports an attempt to read a concrete value out of a
	// variable that is still symbolic. Concrete reads are only legal once
	// a summary has been composed onto a concrete state.
	ErrSymbolicRead = errors.New("sym: concrete read of a symbolic value")

	// ErrNoPath reports that summary composition found no path admitting
	// the concrete input state. A valid summary partitions the input
	// space, so this indicates a corrupted or mismatched summary.
	ErrNoPath = errors.New("sym: no summary path admits the concrete state")

	// ErrInfeasible reports that a symbolic-on-symbolic composition
	// produced no feasible paths, which a pair of valid summaries over the
	// same state type cannot do.
	ErrInfeasible = errors.New("sym: summary composition produced no feasible paths")

	// ErrStateMismatch reports that two states that should have identical
	// shape (same fields in the same order) do not.
	ErrStateMismatch = errors.New("sym: aggregation state shape mismatch")
)

// failure carries a sentinel error through panic/recover inside the
// engine; Executor.Feed converts it back into an error return. Symbolic
// data types are used deep inside user Update code where threading an
// error return through every arithmetic helper would make UDAs unwritable.
type failure struct{ err error }

func fail(err error) {
	panic(failure{err})
}
