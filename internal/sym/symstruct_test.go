package sym

import (
	"math/rand"
	"testing"

	"repro/internal/wire"
)

// pairState nests two scalars inside a SymStruct plus a top-level
// counter, exercising composite clone/merge/compose paths.
type pairState struct {
	lo, hi SymInt
	Pair   SymStruct
	Count  SymInt
}

func (s *pairState) Fields() []Value { return []Value{&s.Pair, &s.Count} }

func newPairState() *pairState {
	s := &pairState{
		lo:    NewSymInt(0),
		hi:    NewSymInt(0),
		Count: NewSymInt(0),
	}
	s.Pair = NewSymStruct(&s.lo, &s.hi)
	return s
}

// pairUpdate tracks running min (lo), max (hi) and count.
func pairUpdate(ctx *Ctx, s *pairState, e int64) {
	if s.lo.Gt(ctx, e) {
		s.lo.Set(e)
	}
	if s.hi.Lt(ctx, e) {
		s.hi.Set(e)
	}
	s.Count.Inc()
}

func pairConcrete(lo, hi, count int64, events []int64) (int64, int64, int64) {
	for _, e := range events {
		if lo > e {
			lo = e
		}
		if hi < e {
			hi = e
		}
		count++
	}
	return lo, hi, count
}

func TestSymStructChunkedOracle(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n := 5 + r.Intn(60)
		events := make([]int64, n)
		for i := range events {
			events[i] = int64(r.Intn(200) - 100)
		}
		cut := 1 + r.Intn(n-1)

		var sums []*Summary[*pairState]
		for _, chunk := range [][]int64{events[:cut], events[cut:]} {
			x := NewExecutor(newPairState, pairUpdate, DefaultOptions())
			for _, e := range chunk {
				if err := x.Feed(e); err != nil {
					t.Fatal(err)
				}
			}
			s, err := x.Finish()
			if err != nil {
				t.Fatal(err)
			}
			sums = append(sums, s...)
		}

		init := newPairState()
		init.lo.Set(50)
		init.hi.Set(-50)
		init.Count.Set(3)
		got, err := ApplyAll(init, sums)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		wantLo, wantHi, wantCount := pairConcrete(50, -50, 3, events)
		if got.lo.Get() != wantLo || got.hi.Get() != wantHi || got.Count.Get() != wantCount {
			t.Fatalf("trial %d: got (%d,%d,%d), want (%d,%d,%d)",
				trial, got.lo.Get(), got.hi.Get(), got.Count.Get(),
				wantLo, wantHi, wantCount)
		}

		// Symbolic-on-symbolic composition agrees too.
		one, err := ComposeAll(sums)
		if err != nil {
			t.Fatal(err)
		}
		init2 := newPairState()
		init2.lo.Set(50)
		init2.hi.Set(-50)
		init2.Count.Set(3)
		got2, err := one.ApplyStrict(init2)
		if err != nil {
			t.Fatal(err)
		}
		if got2.lo.Get() != wantLo || got2.hi.Get() != wantHi || got2.Count.Get() != wantCount {
			t.Fatalf("trial %d: composed output differs", trial)
		}
	}
}

func TestSymStructMergeOneLeafRule(t *testing.T) {
	mk := func(loLB, loUB, hiLB, hiUB int64) *pairState {
		s := newPairState()
		s.lo.ResetSymbolic(0)
		s.hi.ResetSymbolic(0)
		s.lo.lb, s.lo.ub = loLB, loUB
		s.hi.lb, s.hi.ub = hiLB, hiUB
		return s
	}
	// Same hi constraint, adjacent lo constraints: merges.
	a := mk(0, 4, 10, 20)
	b := mk(5, 9, 10, 20)
	if !a.Pair.UnionConstraint(&b.Pair) {
		t.Fatal("one-leaf adjacent union refused")
	}
	if a.lo.lb != 0 || a.lo.ub != 9 {
		t.Fatalf("merged lo = [%d,%d]", a.lo.lb, a.lo.ub)
	}
	// Two differing leaves: refused.
	c := mk(0, 4, 10, 20)
	d := mk(5, 9, 30, 40)
	if c.Pair.UnionConstraint(&d.Pair) {
		t.Fatal("two-leaf union accepted")
	}
	// One differing leaf but disjoint: refused.
	e := mk(0, 3, 10, 20)
	f := mk(7, 9, 10, 20)
	if e.Pair.UnionConstraint(&f.Pair) {
		t.Fatal("disjoint union accepted")
	}
}

func TestSymStructEncodeDecode(t *testing.T) {
	s := newPairState()
	s.lo.ResetSymbolic(0)
	s.hi.Set(42)
	e := wire.NewEncoder(0)
	s.Pair.Encode(e)

	got := newPairState()
	if err := got.Pair.Decode(wire.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got.lo.IsConcrete() {
		t.Error("lo should be symbolic after decode")
	}
	if v, ok := got.hi.TryGet(); !ok || v != 42 {
		t.Errorf("hi = (%d,%t)", v, ok)
	}
}

func TestSymStructString(t *testing.T) {
	s := newPairState()
	if got := s.Pair.String(); got == "" || got[0] != '{' {
		t.Errorf("String() = %q", got)
	}
	if len(s.Pair.Parts()) != 2 {
		t.Error("Parts() wrong")
	}
}
