package sym

// Helpers over State values shared by the engine and summaries.

// cloneState builds a deep copy of src using the state factory.
func cloneState[S State](newState func() S, src S) S {
	dst := newState()
	df, sf := dst.Fields(), src.Fields()
	if len(df) != len(sf) {
		fail(ErrStateMismatch)
	}
	for i := range df {
		df[i].CopyFrom(sf[i])
	}
	return dst
}

// freshSymbolic builds a state whose every field is a fresh unconstrained
// symbolic input; field indices identify the variables.
func freshSymbolic[S State](newState func() S) S {
	s := newState()
	for i, f := range s.Fields() {
		f.ResetSymbolic(i)
	}
	return s
}

// allConcrete reports whether no field of s depends on symbolic input, in
// which case running the UDA on s cannot fork and needs no cloning — the
// paper's "once bound, as fast as the concrete type but for the bound
// check" fast path.
func allConcrete(s State) bool {
	for _, f := range s.Fields() {
		if !f.IsConcrete() {
			return false
		}
	}
	return true
}

// tryMergePaths merges path b into path a when sound: every field pair
// must have an identical transfer function, and the constraints may
// differ in at most one field whose union is canonical (the union of two
// boxes differing in one dimension is a box). Reports whether the merge
// happened; a is mutated only on success.
func tryMergePaths(a, b State) bool {
	af, bf := a.Fields(), b.Fields()
	if len(af) != len(bf) {
		fail(ErrStateMismatch)
	}
	for i := range af {
		if !af[i].SameTransfer(bf[i]) {
			return false
		}
	}
	diff := -1
	for i := range af {
		if !af[i].ConstraintEq(bf[i]) {
			if diff >= 0 {
				return false
			}
			diff = i
		}
	}
	if diff < 0 {
		// Identical paths; absorbing b is trivially sound.
		return true
	}
	return af[diff].UnionConstraint(bf[diff])
}

// mergeAll repeatedly merges path pairs until no pair merges, returning
// the compacted slice (paper §3.5). Path counts are small (bounded by the
// live-path cap), so the quadratic scan is cheap.
func mergeAll[S State](paths []S) ([]S, int) {
	merged := 0
	for i := 0; i < len(paths); i++ {
		for j := i + 1; j < len(paths); j++ {
			if tryMergePaths(paths[i], paths[j]) {
				paths[j] = paths[len(paths)-1]
				paths = paths[:len(paths)-1]
				merged++
				j--
			}
		}
	}
	return paths, merged
}

// admits reports whether concrete state c satisfies every per-field
// constraint of path p.
func admits(p, c State) bool {
	pf, cf := p.Fields(), c.Fields()
	if len(pf) != len(cf) {
		fail(ErrStateMismatch)
	}
	for i := range pf {
		if !pf[i].Admits(cf[i]) {
			return false
		}
	}
	return true
}
