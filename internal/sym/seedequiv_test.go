package sym

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/wire"
)

// The frozen SeedExecutor is the equivalence oracle for the compiled
// schema + memoized engine: on any record stream the two must produce
// byte-identical summaries and identical restart behaviour. These
// property tests drive both engines over randomized streams — including
// path-cap restarts and SymPred windowed dependence — at several memo
// sizes (default, tiny to force eviction, disabled).

// encodeSummaries serializes a Finish result for byte comparison.
func encodeSummaries[S State](tb testing.TB, sums []*Summary[S]) []byte {
	tb.Helper()
	e := wire.NewEncoder(256)
	e.Uvarint(uint64(len(sums)))
	for _, s := range sums {
		s.Encode(e)
	}
	buf := make([]byte, e.Len())
	copy(buf, e.Bytes())
	return buf
}

// runSeed drives the frozen seed engine over a stream.
func runSeed[S State, E any](tb testing.TB, newState func() S, update func(*Ctx, S, E), opts Options, stream []E) ([]byte, Stats) {
	tb.Helper()
	x := NewSeedExecutor(newState, update, opts)
	for i, e := range stream {
		if err := x.Feed(e); err != nil {
			tb.Fatalf("seed feed %d: %v", i, err)
		}
	}
	sums, err := x.Finish()
	if err != nil {
		tb.Fatalf("seed finish: %v", err)
	}
	return encodeSummaries(tb, sums), x.Stats()
}

// runFast drives the schema-compiled engine, optionally memoized, over
// the same stream. memoSize < 0 disables memoization.
func runFast[S State, E any](tb testing.TB, newState func() S, update func(*Ctx, S, E), opts Options, memoSize int, stream []E) ([]byte, Stats) {
	tb.Helper()
	sc := newSchema(newState)
	x := NewSchemaExecutor(sc, update, opts)
	if memoSize >= 0 {
		x = x.WithMemo(NewMemo[S, E](sc, memoSize))
	}
	for i, e := range stream {
		if err := x.Feed(e); err != nil {
			tb.Fatalf("fast(memo=%d) feed %d: %v", memoSize, i, err)
		}
	}
	sums, err := x.Finish()
	if err != nil {
		tb.Fatalf("fast(memo=%d) finish: %v", memoSize, err)
	}
	return encodeSummaries(tb, sums), x.Stats()
}

// checkEquiv runs the oracle and the fast engine at several memo sizes
// and requires byte-identical summaries plus matching record/restart
// accounting.
func checkEquiv[S State, E any](tb testing.TB, label string, newState func() S, update func(*Ctx, S, E), opts Options, stream []E) {
	tb.Helper()
	want, wstats := runSeed(tb, newState, update, opts, stream)
	for _, memoSize := range []int{-1, 0, 2} {
		got, gstats := runFast(tb, newState, update, opts, memoSize, stream)
		if !bytes.Equal(got, want) {
			tb.Fatalf("%s memo=%d: summaries diverge from seed engine (%d vs %d bytes)",
				label, memoSize, len(got), len(want))
		}
		if gstats.Records != wstats.Records || gstats.Restarts != wstats.Restarts {
			tb.Fatalf("%s memo=%d: stats diverge: records %d/%d restarts %d/%d",
				label, memoSize, gstats.Records, wstats.Records, gstats.Restarts, wstats.Restarts)
		}
	}
}

func TestSeedEquivalenceMaxStream(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	stream := make([]int64, 600)
	for i := range stream {
		stream[i] = int64(r.Intn(40)) // small alphabet: memo hits dominate
	}
	checkEquiv(t, "max", newIntState(math.MinInt64), maxUpdate, DefaultOptions(), stream)
}

// TestSeedEquivalenceRandomPrograms drives both engines with UDAs that
// pick a random straight-line SymInt program per event, over streams
// drawn from a small event alphabet (so the memo gets real hits) and
// with a tiny path cap (so restarts interleave with memo composition).
func TestSeedEquivalenceRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		nprogs := 1 + r.Intn(4)
		progs := make([][]intOp, nprogs)
		for i := range progs {
			progs[i] = randOps(r, 1+r.Intn(4))
			// Drop multiplications: over hundreds of records they
			// compound the transfer coefficient past the overflow guard
			// (legitimately, in both engines); this test is about
			// memo/compose equivalence, not overflow.
			for j := range progs[i] {
				if progs[i][j].kind == 1 {
					progs[i][j].kind = 0
				}
			}
		}
		update := func(ctx *Ctx, s *intState, e int64) {
			runSymProgram(ctx, s, progs[int(e)%nprogs])
		}
		stream := make([]int64, 120+r.Intn(200))
		for i := range stream {
			stream[i] = int64(r.Intn(nprogs))
		}
		for _, opts := range []Options{
			{MaxLivePaths: 64, MaxRunsPerRecord: 1 << 16},
			{MaxLivePaths: 3, MaxRunsPerRecord: 1 << 16}, // force restarts
		} {
			checkEquiv(t, "randprog", newIntState(int64(trial)), update, opts, stream)
		}
	}
}

// TestSeedEquivalenceSessionPred covers SymPred windowed dependence
// (§4.4): black-box predicates fork blindly from the symbolic state, so
// memoized transitions carry both branches and composition must prune
// exactly like direct exploration.
func TestSeedEquivalenceSessionPred(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		stream := make([]int64, 80+r.Intn(150))
		for i := range stream {
			// Clustered values: sessions of nearby timestamps with jumps.
			base := int64(r.Intn(5)) * 100
			stream[i] = base + int64(r.Intn(12))
		}
		for _, opts := range []Options{
			DefaultOptions(),
			{MaxLivePaths: 2, MaxRunsPerRecord: 256}, // restart on every widening
		} {
			checkEquiv(t, "sessionpred", newPredState, sessionUpdate, opts, stream)
		}
	}
}

// TestSeedEquivalenceFunnel covers the Figure 1 multi-field UDA
// (bool + int + vector) whose vector appends exercise the
// copy-on-append alias discipline under pooled containers.
func TestSeedEquivalenceFunnel(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	items := []string{"a", "b", "c"}
	for trial := 0; trial < 20; trial++ {
		stream := make([]funnelEvent, 100+r.Intn(100))
		for i := range stream {
			stream[i] = funnelEvent{kind: r.Intn(4), item: items[r.Intn(len(items))]}
		}
		checkEquiv(t, "funnel", newFunnelState, funnelUpdate, DefaultOptions(), stream)
	}
}

// FuzzSeedEquivalence lets the fuzzer pick the event stream; every
// corpus entry must keep the memoized engine byte-identical to the seed
// engine for both the max UDA and the sessionization UDA.
func FuzzSeedEquivalence(f *testing.F) {
	f.Add([]byte{3, 8, 50, 55, 200})
	f.Add([]byte{0, 0, 0, 1, 2, 1, 0, 255, 254, 3})
	f.Add(bytes.Repeat([]byte{7, 9}, 80))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 512 {
			raw = raw[:512]
		}
		stream := make([]int64, len(raw))
		for i, b := range raw {
			stream[i] = int64(b)
		}
		opts := Options{MaxLivePaths: 4, MaxRunsPerRecord: 1 << 12}
		checkEquiv(t, "fuzz/max", newIntState(math.MinInt64), maxUpdate, opts, stream)
		checkEquiv(t, "fuzz/session", newPredState, sessionUpdate, opts, stream)
	})
}
