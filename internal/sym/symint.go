package sym

import (
	"fmt"

	"repro/internal/wire"
)

// SymInt is the symbolic version of a 64-bit integer (paper §4.3). It
// supports addition, subtraction and multiplication by concrete integers,
// and comparison against concrete integers. Operations between two SymInts
// are deliberately not provided: this keeps every constraint over a single
// symbolic variable, so branch feasibility is decided in constant time
// instead of by an integer-linear solver.
//
// Canonical form: under the path constraint lb ≤ x ≤ ub on the variable's
// unknown initial value x, the current value is a·x+b (or the constant b
// once bound). The constraint outlives binding — a path that learned
// x < 5 before assigning a constant still carries x < 5 for composition.
type SymInt struct {
	id     int
	bound  bool
	a, b   int64 // transfer: b if bound, else a·x+b with a ≠ 0
	lb, ub int64 // constraint on x
}

// NewSymInt returns a SymInt bound to the concrete initial value v. The
// engine rebinds state fields to fresh symbolic inputs per chunk; the
// concrete initial value is what summary composition starts from.
func NewSymInt(v int64) SymInt {
	return SymInt{bound: true, b: v, lb: noLB, ub: noUB}
}

// ResetSymbolic implements Value.
func (v *SymInt) ResetSymbolic(id int) {
	*v = SymInt{id: id, a: 1, lb: noLB, ub: noUB}
}

// CopyFrom implements Value.
func (v *SymInt) CopyFrom(src Value) {
	*v = *src.(*SymInt)
}

// concreteVal returns the current value when it is determined: bound by
// an assignment, or an affine transfer over a single-point constraint
// (lb = ub). The transfer representation is kept as-is in the singleton
// case so that same-transfer paths still merge (paper §4.3).
func (v *SymInt) concreteVal() (int64, bool) {
	if v.bound {
		return v.b, true
	}
	if v.lb == v.ub {
		return addChecked(mulChecked(v.a, v.lb), v.b), true
	}
	return 0, false
}

// IsConcrete implements Value: true when bound by assignment or when
// the constraint has narrowed to a single point.
func (v *SymInt) IsConcrete() bool {
	return v.bound || v.lb == v.ub
}

// Get returns the concrete value; it aborts the path if the value is
// still symbolic. Call it from Result functions, which run on fully
// concrete states.
func (v *SymInt) Get() int64 {
	c, ok := v.concreteVal()
	if !ok {
		fail(ErrSymbolicRead)
	}
	return c
}

// TryGet returns the concrete value and whether it is determined.
func (v *SymInt) TryGet() (int64, bool) { return v.concreteVal() }

// Set binds the value to the concrete constant c.
func (v *SymInt) Set(c int64) {
	v.bound, v.a, v.b = true, 0, c
}

// Add adds the concrete constant c to the value.
func (v *SymInt) Add(c int64) { v.b = addChecked(v.b, c) }

// Sub subtracts the concrete constant c from the value.
func (v *SymInt) Sub(c int64) { v.b = subChecked(v.b, c) }

// Inc increments the value by one.
func (v *SymInt) Inc() { v.Add(1) }

// Dec decrements the value by one.
func (v *SymInt) Dec() { v.Sub(1) }

// Mul multiplies the value by the concrete constant c.
func (v *SymInt) Mul(c int64) {
	if c == 0 {
		v.bound, v.a, v.b = true, 0, 0
		return
	}
	v.b = mulChecked(v.b, c)
	if !v.bound {
		v.a = mulChecked(v.a, c)
	}
}

// Neg negates the value.
func (v *SymInt) Neg() { v.Mul(-1) }

// Rescaled returns a copy of v representing mul·v + add without mutating
// v. Useful for pushing derived expressions (e.g. a time delta
// ts − lastTs, written lastTs.Rescaled(-1, ts)) into a SymIntVector.
func (v *SymInt) Rescaled(mul, add int64) SymInt {
	c := *v
	c.Mul(mul)
	c.Add(add)
	return c
}

// splitLt returns the subintervals of [v.lb, v.ub] on which a·x+b < c
// holds (t) and fails (f). v must not be bound.
func (v *SymInt) splitLt(c int64) (t, f ivl) {
	d := subChecked(c, v.b) // a·x < d
	cur := ivl{v.lb, v.ub}
	if v.a > 0 {
		// x ≤ thr, thr = ⌊(d-1)/a⌋ computed without forming d-1.
		thr := floorDiv(d, v.a)
		if d%v.a == 0 {
			if thr == noLB {
				return emptyIvl, cur
			}
			thr--
		}
		return isect(cur, ivl{noLB, thr}), isect(cur, aboveExcl(thr))
	}
	// a < 0: x ≥ thr+1, thr = ⌊d/a⌋.
	thr := floorDiv(d, v.a)
	return isect(cur, aboveExcl(thr)), isect(cur, ivl{noLB, thr})
}

// decide resolves a two-way split: if only one side is feasible it is
// taken without forking; otherwise the context picks. The receiver's
// constraint is tightened to the chosen side.
func (v *SymInt) decide(ctx *Ctx, t, f ivl) bool {
	res := false
	switch {
	case f.empty() && t.empty():
		fail(ErrInfeasible) // live paths always have nonempty constraints
	case f.empty():
		v.lb, v.ub = t.lo, t.hi
		res = true
	case t.empty():
		v.lb, v.ub = f.lo, f.hi
	case ctx.Fork():
		v.lb, v.ub = t.lo, t.hi
		res = true
	default:
		v.lb, v.ub = f.lo, f.hi
	}
	return res
}

// Lt reports value < c, forking when both outcomes are feasible.
func (v *SymInt) Lt(ctx *Ctx, c int64) bool {
	if v.bound {
		return v.b < c
	}
	t, f := v.splitLt(c)
	return v.decide(ctx, t, f)
}

// Le reports value ≤ c.
func (v *SymInt) Le(ctx *Ctx, c int64) bool {
	if v.bound {
		return v.b <= c
	}
	if c == noUB {
		return true // every representable value satisfies ≤ MaxInt64
	}
	t, f := v.splitLt(c + 1)
	return v.decide(ctx, t, f)
}

// Gt reports value > c.
func (v *SymInt) Gt(ctx *Ctx, c int64) bool { return !v.Le(ctx, c) }

// Ge reports value ≥ c.
func (v *SymInt) Ge(ctx *Ctx, c int64) bool { return !v.Lt(ctx, c) }

// Eq reports value == c. When the value is symbolic this splits the
// domain three ways (below, equal, above), since the canonical form is a
// single interval and x ≠ x₀ is not one.
func (v *SymInt) Eq(ctx *Ctx, c int64) bool {
	if v.bound {
		return v.b == c
	}
	d := subChecked(c, v.b) // a·x == d
	cur := ivl{v.lb, v.ub}
	eq, below, above := emptyIvl, emptyIvl, emptyIvl
	if d%v.a == 0 && !(d == noLB && v.a == -1) {
		x0 := d / v.a
		eq = isect(cur, ivl{x0, x0})
		below = isect(cur, belowExcl(x0))
		above = isect(cur, aboveExcl(x0))
	} else {
		below = cur // never equal: the whole current interval is "false"
	}
	type out struct {
		iv  ivl
		res bool
	}
	outs := make([]out, 0, 3)
	if !eq.empty() {
		outs = append(outs, out{eq, true})
	}
	if !below.empty() {
		outs = append(outs, out{below, false})
	}
	if !above.empty() {
		outs = append(outs, out{above, false})
	}
	if len(outs) == 0 {
		fail(ErrInfeasible)
	}
	o := outs[0]
	if len(outs) > 1 {
		o = outs[ctx.ForkN(len(outs))]
	}
	v.lb, v.ub = o.iv.lo, o.iv.hi
	return o.res
}

// Ne reports value != c.
func (v *SymInt) Ne(ctx *Ctx, c int64) bool { return !v.Eq(ctx, c) }

// SameTransfer implements Value.
func (v *SymInt) SameTransfer(other Value) bool {
	o := other.(*SymInt)
	if v.bound != o.bound || v.b != o.b {
		return false
	}
	return v.bound || v.a == o.a
}

// ConstraintEq implements Value.
func (v *SymInt) ConstraintEq(other Value) bool {
	o := other.(*SymInt)
	return v.lb == o.lb && v.ub == o.ub
}

// UnionConstraint implements Value. Per the paper (§4.3), two summaries
// with the same transfer merge when their x-intervals overlap or are
// adjacent: the union is then itself an interval.
func (v *SymInt) UnionConstraint(other Value) bool {
	o := other.(*SymInt)
	u, ok := unionIvl(ivl{v.lb, v.ub}, ivl{o.lb, o.ub})
	if !ok {
		return false
	}
	v.lb, v.ub = u.lo, u.hi
	return true
}

// Admits implements Value.
func (v *SymInt) Admits(prev Value) bool {
	p := prev.(*SymInt)
	if !p.bound {
		fail(ErrSymbolicRead)
	}
	return v.lb <= p.b && p.b <= v.ub
}

// Concretize implements Value.
func (v *SymInt) Concretize(prev Value, _ *Env) {
	p := prev.(*SymInt)
	if !v.bound {
		v.b = addChecked(mulChecked(v.a, p.b), v.b)
		v.a, v.bound = 0, true
	}
	v.lb, v.ub = noLB, noUB
	v.id = p.id
}

// ComposeAfter implements Value (paper §3.6): rewrite this later-path
// field over the earlier path's input x, intersecting the earlier
// constraint with the preimage of this field's constraint under the
// earlier transfer.
func (v *SymInt) ComposeAfter(prev Value, _ *SymEnv) bool {
	p := prev.(*SymInt)
	var nc ivl
	if p.bound {
		if !(ivl{v.lb, v.ub}).contains(p.b) {
			return false
		}
		nc = ivl{p.lb, p.ub}
		if !v.bound {
			v.b = addChecked(mulChecked(v.a, p.b), v.b)
			v.a, v.bound = 0, true
		}
	} else {
		nc = isect(ivl{p.lb, p.ub}, preimageAffine(p.a, p.b, v.lb, v.ub))
		if nc.empty() {
			return false
		}
		if !v.bound {
			// a·(pa·x+pb)+b = (a·pa)·x + (a·pb + b)
			v.b = addChecked(mulChecked(v.a, p.b), v.b)
			v.a = mulChecked(v.a, p.a)
		}
	}
	v.lb, v.ub = nc.lo, nc.hi
	v.id = p.id
	return true
}

// canonicalize implements canonicalizer: an unbound SymInt over a
// single-point constraint computes a constant, but stores its transfer
// as (a, b) — so two paths reaching the same constant through different
// affine routes never compare equal. Rewriting to the bound form (the
// constraint stays) makes the equivalence syntactic without changing
// Admits, Concretize, ComposeAfter or transfer(), all of which already
// treat the two forms identically. Skipped when the constant would
// overflow: such a path fails on any concrete read anyway, and Compact
// must not abort the whole summary for it.
func (v *SymInt) canonicalize() {
	if v.bound || v.lb != v.ub {
		return
	}
	p, ok := mul64(v.a, v.lb)
	if !ok {
		return
	}
	s, ok := add64(p, v.b)
	if !ok {
		return
	}
	v.b, v.a, v.bound = s, 0, true
}

// concreteInput implements scalarInput.
func (v *SymInt) concreteInput() (int64, bool) { return v.concreteVal() }

// transfer implements scalarTransfer.
func (v *SymInt) transfer() (bool, int64, int64) {
	if !v.bound {
		if c, ok := v.concreteVal(); ok {
			return true, 0, c
		}
	}
	return v.bound, v.a, v.b
}

const (
	intFlagBound = 1 << iota
	intFlagHasLB
	intFlagHasUB
)

// Encode implements Value.
func (v *SymInt) Encode(e *wire.Encoder) { v.encodeBody(e, true) }

// tagMatches implements taglessCodec.
func (v *SymInt) tagMatches(pos int) bool { return v.id == pos }

// encodeTagless implements taglessCodec.
func (v *SymInt) encodeTagless(e *wire.Encoder) { v.encodeBody(e, false) }

func (v *SymInt) encodeBody(e *wire.Encoder, withTag bool) {
	var flags byte
	if v.bound {
		flags |= intFlagBound
	}
	if v.lb != noLB {
		flags |= intFlagHasLB
	}
	if v.ub != noUB {
		flags |= intFlagHasUB
	}
	e.Byte(flags)
	if withTag {
		e.Uvarint(uint64(v.id))
	}
	e.Varint(v.b)
	if !v.bound {
		e.Varint(v.a)
	}
	if v.lb != noLB {
		e.Varint(v.lb)
	}
	if v.ub != noUB {
		if v.lb != noLB {
			// Doubly-bounded intervals are common and narrow (often a
			// single point); ship the width ub−lb instead of the
			// absolute upper bound. lb ≤ ub on every live path, so the
			// width is a small non-negative uvarint, exact mod 2⁶⁴.
			e.Uvarint(uint64(v.ub) - uint64(v.lb))
		} else {
			e.Varint(v.ub)
		}
	}
}

// Decode implements Value.
func (v *SymInt) Decode(d *wire.Decoder) error { return v.decodeBody(d, -1) }

// decodeTagless implements taglessCodec.
func (v *SymInt) decodeTagless(d *wire.Decoder, pos int) error { return v.decodeBody(d, pos) }

func (v *SymInt) decodeBody(d *wire.Decoder, pos int) error {
	flags := d.Byte()
	if pos >= 0 {
		v.id = pos
	} else {
		v.id = d.Length(maxFieldID)
	}
	v.b = d.Varint()
	v.bound = flags&intFlagBound != 0
	if v.bound {
		v.a = 0
	} else {
		v.a = d.Varint()
	}
	v.lb, v.ub = noLB, noUB
	if flags&intFlagHasLB != 0 {
		v.lb = d.Varint()
	}
	if flags&intFlagHasUB != 0 {
		if flags&intFlagHasLB != 0 {
			v.ub = int64(uint64(v.lb) + d.Uvarint())
		} else {
			v.ub = d.Varint()
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	if !v.bound && v.a == 0 {
		return fmt.Errorf("%w: symbolic SymInt with zero coefficient", wire.ErrCorrupt)
	}
	if v.lb != noLB && v.ub != noUB && v.ub < v.lb {
		return fmt.Errorf("%w: SymInt constraint [%d,%d] is empty", wire.ErrCorrupt, v.lb, v.ub)
	}
	return nil
}

// String implements Value.
func (v *SymInt) String() string {
	c := "true"
	if v.lb != noLB || v.ub != noUB {
		c = fmt.Sprintf("x%d∈[%s,%s]", v.id, boundStr(v.lb, "-inf"), boundStr(v.ub, "+inf"))
	}
	if v.bound {
		return fmt.Sprintf("%s ⇒ %d", c, v.b)
	}
	return fmt.Sprintf("%s ⇒ %d·x%d%+d", c, v.a, v.id, v.b)
}

func boundStr(v int64, inf string) string {
	if v == noLB || v == noUB {
		return inf
	}
	return fmt.Sprintf("%d", v)
}

var (
	_ Value          = (*SymInt)(nil)
	_ scalarInput    = (*SymInt)(nil)
	_ scalarTransfer = (*SymInt)(nil)
	_ taglessCodec   = (*SymInt)(nil)
	_ canonicalizer  = (*SymInt)(nil)
)
