package sym

import (
	"fmt"
	"strings"

	"repro/internal/wire"
)

// SymEnum is the symbolic version of an enumeration over the bounded
// domain {0, …, n−1} (paper §4.1). It supports equality and inequality
// checks against, and assignment to, concrete constants. Two SymEnums
// cannot be compared, preserving the single-variable constraint property.
//
// Canonical form: x ∈ S ⇒ v = (bound ? c : x). While unbound the value is
// the unknown input x restricted to the set S; once assigned, the value is
// the constant c but the constraint S remains for path selection. Because
// set union is always a set, SymEnum paths with equal transfers always
// merge, bounding path growth on enum-driven UDAs (FSM-style states).
type SymEnum struct {
	id    int
	n     int
	set   bitset
	bound bool
	c     int64
}

// NewSymEnum returns a SymEnum over domain size n (at most 64), bound to
// the concrete initial value c.
func NewSymEnum(n int, c int64) SymEnum {
	if n <= 0 || n > maxEnumDomain || c < 0 || c >= int64(n) {
		fail(fmt.Errorf("sym: NewSymEnum(%d, %d): domain must be 1..%d and value inside it",
			n, c, maxEnumDomain))
	}
	return SymEnum{n: n, set: fullBitset(n), bound: true, c: c}
}

// Domain returns the domain size n.
func (v *SymEnum) Domain() int { return v.n }

// ResetSymbolic implements Value.
func (v *SymEnum) ResetSymbolic(id int) {
	v.id = id
	v.set = fullBitset(v.n)
	v.bound = false
	v.c = 0
}

// CopyFrom implements Value.
func (v *SymEnum) CopyFrom(src Value) {
	*v = *src.(*SymEnum)
}

// IsConcrete implements Value: true when bound by assignment or when
// the constraint has narrowed to a single feasible input.
func (v *SymEnum) IsConcrete() bool {
	_, ok := v.concreteVal()
	return ok
}

// Get returns the concrete value, aborting the path if still symbolic.
func (v *SymEnum) Get() int64 {
	c, ok := v.concreteVal()
	if !ok {
		fail(ErrSymbolicRead)
	}
	return c
}

// TryGet returns the concrete value and whether it is determined.
func (v *SymEnum) TryGet() (int64, bool) { return v.concreteVal() }

// Set binds the value to the concrete constant c.
func (v *SymEnum) Set(c int64) {
	if c < 0 || c >= int64(v.n) {
		fail(fmt.Errorf("sym: SymEnum.Set(%d): value outside domain [0,%d)", c, v.n))
	}
	v.bound, v.c = true, c
}

// concreteVal returns the current value when it is determined: either
// bound by an assignment, or an identity transfer whose constraint set
// has narrowed to a single element (the "unshaded" transition of the
// paper's Figure 3). The transfer representation is deliberately NOT
// rewritten to a constant in the singleton case: per the paper (§4.1)
// a SymEnum is bound only on assignment, and keeping the identity
// transfer lets same-transfer paths merge by set union.
func (v *SymEnum) concreteVal() (int64, bool) {
	if v.bound {
		return v.c, true
	}
	if c := v.set.single(); c >= 0 {
		return c, true
	}
	return 0, false
}

// Eq reports value == c, forking when both outcomes are feasible. The
// decision procedure is two bitset probes (paper §4.1): the true outcome
// restricts the set to S ∩ {c}, the false outcome to S ∖ {c}.
func (v *SymEnum) Eq(ctx *Ctx, c int64) bool {
	if v.bound {
		return v.c == c
	}
	if !v.set.has(c) {
		return false
	}
	if v.set.single() == c {
		return true
	}
	if ctx.Fork() {
		v.set = 0
		v.set.add(c)
		return true
	}
	v.set.remove(c)
	return false
}

// Ne reports value != c.
func (v *SymEnum) Ne(ctx *Ctx, c int64) bool { return !v.Eq(ctx, c) }

// In reports value ∈ cs, forking when both outcomes are feasible.
func (v *SymEnum) In(ctx *Ctx, cs ...int64) bool {
	if v.bound {
		for _, c := range cs {
			if v.c == c {
				return true
			}
		}
		return false
	}
	var tset bitset
	for _, c := range cs {
		if v.set.has(c) {
			tset.add(c)
		}
	}
	fset := v.set
	for _, c := range cs {
		fset.remove(c)
	}
	switch {
	case tset.empty() && fset.empty():
		fail(ErrInfeasible)
	case fset.empty():
		v.set = tset
		return true
	case tset.empty():
		v.set = fset
		return false
	}
	if ctx.Fork() {
		v.set = tset
		return true
	}
	v.set = fset
	return false
}

// SameTransfer implements Value.
func (v *SymEnum) SameTransfer(other Value) bool {
	o := other.(*SymEnum)
	if v.n != o.n || v.bound != o.bound {
		return false
	}
	return !v.bound || v.c == o.c
}

// ConstraintEq implements Value.
func (v *SymEnum) ConstraintEq(other Value) bool {
	o := other.(*SymEnum)
	return v.n == o.n && v.set == o.set
}

// UnionConstraint implements Value. Set union is always canonical
// (paper §4.1).
func (v *SymEnum) UnionConstraint(other Value) bool {
	v.set |= other.(*SymEnum).set
	return true
}

// Admits implements Value.
func (v *SymEnum) Admits(prev Value) bool {
	p := prev.(*SymEnum)
	if !p.bound {
		fail(ErrSymbolicRead)
	}
	return v.set.has(p.c)
}

// Concretize implements Value.
func (v *SymEnum) Concretize(prev Value, _ *Env) {
	p := prev.(*SymEnum)
	if !v.bound {
		v.bound, v.c = true, p.c
	}
	v.set = fullBitset(v.n)
	v.id = p.id
}

// ComposeAfter implements Value.
func (v *SymEnum) ComposeAfter(prev Value, _ *SymEnv) bool {
	p := prev.(*SymEnum)
	if v.n != p.n {
		fail(ErrStateMismatch)
	}
	if p.bound {
		if !v.set.has(p.c) {
			return false
		}
		if !v.bound {
			v.bound, v.c = true, p.c
		}
		v.set = p.set
	} else {
		ns := p.set & v.set
		if ns.empty() {
			return false
		}
		v.set = ns
	}
	v.id = p.id
	return true
}

// concreteInput implements scalarInput.
func (v *SymEnum) concreteInput() (int64, bool) { return v.concreteVal() }

// transfer implements scalarTransfer. An unbound enum passes its input
// through unchanged — the identity affine function — which over a
// singleton constraint set is the constant it determines.
func (v *SymEnum) transfer() (bool, int64, int64) {
	if c, ok := v.concreteVal(); ok {
		return true, 0, c
	}
	return false, 1, 0
}

// Encode implements Value.
func (v *SymEnum) Encode(e *wire.Encoder) { v.encodeBody(e, true) }

// tagMatches implements taglessCodec.
func (v *SymEnum) tagMatches(pos int) bool { return v.id == pos }

// encodeTagless implements taglessCodec.
func (v *SymEnum) encodeTagless(e *wire.Encoder) { v.encodeBody(e, false) }

func (v *SymEnum) encodeBody(e *wire.Encoder, withTag bool) {
	e.Bool(v.bound)
	if withTag {
		e.Uvarint(uint64(v.id))
	}
	e.Uvarint(uint64(v.n))
	if v.bound {
		e.Varint(v.c)
	}
	// Enum domains are small in practice, so the constraint bitset fits
	// a one- or two-byte uvarint far more often than a fixed 8 bytes.
	e.Uvarint(uint64(v.set))
}

// Decode implements Value.
func (v *SymEnum) Decode(d *wire.Decoder) error { return v.decodeBody(d, -1) }

// decodeTagless implements taglessCodec.
func (v *SymEnum) decodeTagless(d *wire.Decoder, pos int) error { return v.decodeBody(d, pos) }

func (v *SymEnum) decodeBody(d *wire.Decoder, pos int) error {
	v.bound = d.Bool()
	if pos >= 0 {
		v.id = pos
	} else {
		v.id = d.Length(maxFieldID)
	}
	n := d.Length(maxEnumDomain)
	if err := d.Err(); err != nil {
		return err
	}
	if n != v.n {
		return fmt.Errorf("%w: SymEnum domain %d, receiver expects %d", wire.ErrCorrupt, n, v.n)
	}
	if v.bound {
		v.c = d.Varint()
	} else {
		v.c = 0
	}
	v.set = bitset(d.Uvarint())
	if err := d.Err(); err != nil {
		return err
	}
	if v.set&^fullBitset(v.n) != 0 {
		return fmt.Errorf("%w: SymEnum constraint outside domain %d", wire.ErrCorrupt, v.n)
	}
	return nil
}

// String implements Value.
func (v *SymEnum) String() string {
	var vals []string
	for i := int64(0); i < int64(v.n); i++ {
		if v.set.has(i) {
			vals = append(vals, fmt.Sprintf("%d", i))
		}
	}
	c := fmt.Sprintf("x%d∈{%s}", v.id, strings.Join(vals, ","))
	if v.bound {
		return fmt.Sprintf("%s ⇒ %d", c, v.c)
	}
	return fmt.Sprintf("%s ⇒ x%d", c, v.id)
}

var (
	_ Value          = (*SymEnum)(nil)
	_ scalarInput    = (*SymEnum)(nil)
	_ scalarTransfer = (*SymEnum)(nil)
	_ taglessCodec   = (*SymEnum)(nil)
)
