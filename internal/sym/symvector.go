package sym

import (
	"fmt"
	"strings"

	"repro/internal/wire"
)

// SymVector is an append-only vector of concrete elements of type T
// (paper §4.5, inspired by Cilk reducer hyperobjects). Each chunk's UDA
// execution appends to its local vector; composition stitches the local
// vectors in chunk order. A SymVector places no constraint on the unknown
// initial state — its "transfer function" is always
// "previous contents ++ local appends".
//
// Use SymIntVector instead when appended elements can themselves be
// symbolic (e.g. a count that is still a·x+b when pushed).
type SymVector[T any] struct {
	codec Codec[T]
	elems []T
}

// NewSymVector returns an empty SymVector using codec for serialization
// and merge equality.
func NewSymVector[T any](codec Codec[T]) SymVector[T] {
	return SymVector[T]{codec: codec}
}

// Push appends a concrete element.
func (v *SymVector[T]) Push(e T) {
	// Three-index append: paths sharing a backing array after CopyFrom
	// must not see each other's appends.
	v.elems = append(v.elems[:len(v.elems):len(v.elems)], e)
}

// Elems returns the vector contents. The slice must not be mutated.
func (v *SymVector[T]) Elems() []T { return v.elems }

// Len returns the number of elements.
func (v *SymVector[T]) Len() int { return len(v.elems) }

// ResetSymbolic implements Value.
func (v *SymVector[T]) ResetSymbolic(int) { v.elems = nil }

// CopyFrom implements Value.
func (v *SymVector[T]) CopyFrom(src Value) {
	s := src.(*SymVector[T])
	v.elems = s.elems // copy-on-append via Push's three-index slice
	if s.codec.Encode != nil {
		v.codec = s.codec
	}
}

// IsConcrete implements Value: elements are always concrete.
func (v *SymVector[T]) IsConcrete() bool { return true }

// SameTransfer implements Value: the transfer is the local append list.
func (v *SymVector[T]) SameTransfer(other Value) bool {
	o := other.(*SymVector[T])
	if len(v.elems) != len(o.elems) {
		return false
	}
	for i := range v.elems {
		if !v.codec.Equal(v.elems[i], o.elems[i]) {
			return false
		}
	}
	return true
}

// ConstraintEq implements Value: vectors carry no constraint.
func (v *SymVector[T]) ConstraintEq(Value) bool { return true }

// UnionConstraint implements Value.
func (v *SymVector[T]) UnionConstraint(Value) bool { return true }

// Admits implements Value.
func (v *SymVector[T]) Admits(Value) bool { return true }

// Concretize implements Value: prepend the previous contents.
func (v *SymVector[T]) Concretize(prev Value, _ *Env) {
	p := prev.(*SymVector[T])
	v.elems = concatElems(p.elems, v.elems)
}

// ComposeAfter implements Value.
func (v *SymVector[T]) ComposeAfter(prev Value, _ *SymEnv) bool {
	p := prev.(*SymVector[T])
	v.elems = concatElems(p.elems, v.elems)
	return true
}

func concatElems[T any](a, b []T) []T {
	if len(a) == 0 {
		return b
	}
	out := make([]T, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// Encode implements Value.
func (v *SymVector[T]) Encode(e *wire.Encoder) {
	e.Uvarint(uint64(len(v.elems)))
	for _, el := range v.elems {
		v.codec.Encode(e, el)
	}
}

// SymVector's wire form carries no field tag to elide, so the tagless
// form is the tagged one; implementing taglessCodec keeps a vector field
// from forcing the whole summary back to tagged encoding.

// tagMatches implements taglessCodec.
func (v *SymVector[T]) tagMatches(int) bool { return true }

// encodeTagless implements taglessCodec.
func (v *SymVector[T]) encodeTagless(e *wire.Encoder) { v.Encode(e) }

// decodeTagless implements taglessCodec.
func (v *SymVector[T]) decodeTagless(d *wire.Decoder, _ int) error { return v.Decode(d) }

// Decode implements Value.
func (v *SymVector[T]) Decode(d *wire.Decoder) error {
	if v.codec.Decode == nil {
		return fmt.Errorf("sym: decoding SymVector without codec")
	}
	n := d.Length(d.Remaining())
	if err := d.Err(); err != nil {
		return err
	}
	v.elems = make([]T, n)
	for i := range v.elems {
		v.elems[i] = v.codec.Decode(d)
	}
	return d.Err()
}

// String implements Value.
func (v *SymVector[T]) String() string {
	return fmt.Sprintf("vector(len=%d)", len(v.elems))
}

// intElem is one element of a SymIntVector: either a concrete int64, or
// the affine expression a·x(field)+b over another field's symbolic input.
type intElem struct {
	sym   bool
	field int
	a, b  int64 // concrete value in b when !sym
}

func (e intElem) String() string {
	if !e.sym {
		return fmt.Sprintf("%d", e.b)
	}
	return fmt.Sprintf("%d·x%d%+d", e.a, e.field, e.b)
}

// SymIntVector is an append-only vector of possibly symbolic int64
// values. Pushing a still-symbolic SymInt (or SymEnum) records the affine
// expression over that field's input; composition concretizes it once the
// referenced input resolves — the paper's example of appending a symbolic
// count x+5 that a later composition turns concrete (§4.5).
type SymIntVector struct {
	elems []intElem
}

// NewSymIntVector returns an empty SymIntVector.
func NewSymIntVector() SymIntVector { return SymIntVector{} }

// Push appends a concrete element.
func (v *SymIntVector) Push(val int64) {
	v.push(intElem{b: val})
}

// PushInt appends the current value of s, symbolic or not.
func (v *SymIntVector) PushInt(s *SymInt) {
	if s.bound {
		v.push(intElem{b: s.b})
		return
	}
	v.push(intElem{sym: true, field: s.id, a: s.a, b: s.b})
}

// PushEnum appends the current (integer) value of s, symbolic or not.
func (v *SymIntVector) PushEnum(s *SymEnum) {
	if s.bound {
		v.push(intElem{b: s.c})
		return
	}
	v.push(intElem{sym: true, field: s.id, a: 1, b: 0})
}

func (v *SymIntVector) push(e intElem) {
	v.elems = append(v.elems[:len(v.elems):len(v.elems)], e)
}

// Len returns the number of elements.
func (v *SymIntVector) Len() int { return len(v.elems) }

// Elems returns the concrete contents; it aborts if any element is still
// symbolic (call only after full composition).
func (v *SymIntVector) Elems() []int64 {
	out := make([]int64, len(v.elems))
	for i, e := range v.elems {
		if e.sym {
			fail(ErrSymbolicRead)
		}
		out[i] = e.b
	}
	return out
}

// ResetSymbolic implements Value.
func (v *SymIntVector) ResetSymbolic(int) { v.elems = nil }

// CopyFrom implements Value.
func (v *SymIntVector) CopyFrom(src Value) {
	v.elems = src.(*SymIntVector).elems // copy-on-append via push
}

// IsConcrete implements Value.
func (v *SymIntVector) IsConcrete() bool {
	for _, e := range v.elems {
		if e.sym {
			return false
		}
	}
	return true
}

// SameTransfer implements Value.
func (v *SymIntVector) SameTransfer(other Value) bool {
	o := other.(*SymIntVector)
	if len(v.elems) != len(o.elems) {
		return false
	}
	for i := range v.elems {
		if v.elems[i] != o.elems[i] {
			return false
		}
	}
	return true
}

// ConstraintEq implements Value.
func (v *SymIntVector) ConstraintEq(Value) bool { return true }

// UnionConstraint implements Value.
func (v *SymIntVector) UnionConstraint(Value) bool { return true }

// Admits implements Value.
func (v *SymIntVector) Admits(Value) bool { return true }

// Concretize implements Value: prepend the previous contents and resolve
// symbolic elements against the concrete inputs in env.
func (v *SymIntVector) Concretize(prev Value, env *Env) {
	p := prev.(*SymIntVector)
	out := make([]intElem, 0, len(p.elems)+len(v.elems))
	out = append(out, p.elems...)
	for _, e := range v.elems {
		if e.sym {
			x := env.Int(e.field)
			e = intElem{b: addChecked(mulChecked(e.a, x), e.b)}
		}
		out = append(out, e)
	}
	v.elems = out
}

// ComposeAfter implements Value: prepend prev's elements and rewrite
// symbolic elements through prev's per-field transfer functions.
func (v *SymIntVector) ComposeAfter(prev Value, senv *SymEnv) bool {
	p := prev.(*SymIntVector)
	out := make([]intElem, 0, len(p.elems)+len(v.elems))
	out = append(out, p.elems...)
	for _, e := range v.elems {
		if e.sym {
			t := senv.lookup(e.field)
			if t.bound {
				e = intElem{b: addChecked(mulChecked(e.a, t.b), e.b)}
			} else {
				// a·(ta·x+tb)+b = (a·ta)·x + (a·tb+b)
				e = intElem{
					sym:   true,
					field: e.field,
					a:     mulChecked(e.a, t.a),
					b:     addChecked(mulChecked(e.a, t.b), e.b),
				}
			}
		}
		out = append(out, e)
	}
	v.elems = out
	return true
}

// Encode implements Value.
func (v *SymIntVector) Encode(e *wire.Encoder) {
	e.Uvarint(uint64(len(v.elems)))
	for _, el := range v.elems {
		e.Bool(el.sym)
		e.Varint(el.b)
		if el.sym {
			e.Uvarint(uint64(el.field))
			e.Varint(el.a)
		}
	}
}

// tagMatches implements taglessCodec (no tag to elide; see SymVector).
func (v *SymIntVector) tagMatches(int) bool { return true }

// encodeTagless implements taglessCodec.
func (v *SymIntVector) encodeTagless(e *wire.Encoder) { v.Encode(e) }

// decodeTagless implements taglessCodec.
func (v *SymIntVector) decodeTagless(d *wire.Decoder, _ int) error { return v.Decode(d) }

// Decode implements Value.
func (v *SymIntVector) Decode(d *wire.Decoder) error {
	n := d.Length(d.Remaining())
	if err := d.Err(); err != nil {
		return err
	}
	v.elems = make([]intElem, n)
	for i := range v.elems {
		v.elems[i].sym = d.Bool()
		v.elems[i].b = d.Varint()
		if v.elems[i].sym {
			v.elems[i].field = d.Length(maxFieldID)
			v.elems[i].a = d.Varint()
		}
	}
	return d.Err()
}

// String implements Value.
func (v *SymIntVector) String() string {
	parts := make([]string, 0, len(v.elems))
	for _, e := range v.elems {
		parts = append(parts, e.String())
	}
	return "[" + strings.Join(parts, " ") + "]"
}

var (
	_ Value        = (*SymVector[string])(nil)
	_ Value        = (*SymIntVector)(nil)
	_ taglessCodec = (*SymVector[string])(nil)
	_ taglessCodec = (*SymIntVector)(nil)
)
