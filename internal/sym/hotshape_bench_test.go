package sym

import "testing"

// Benchmarks of the engine on the query shapes the symexec experiment
// gates on: G1 (a lone SymBool that stays symbolic on the hot event) and
// R1 (a lone SymInt accumulator). These isolate the per-record engine
// cost from the parse cost symExecChunk measures around them.

type g1Shape struct {
	OnlyPush SymBool
}

func (s *g1Shape) Fields() []Value { return []Value{&s.OnlyPush} }

func newG1Shape() *g1Shape { return &g1Shape{OnlyPush: NewSymBool(true)} }

func g1ShapeUpdate(_ *Ctx, s *g1Shape, op int64) {
	if op != 0 {
		s.OnlyPush.Set(false)
	}
}

type r1Shape struct {
	Count SymInt
}

func (s *r1Shape) Fields() []Value { return []Value{&s.Count} }

func newR1Shape() *r1Shape { return &r1Shape{Count: NewSymInt(0)} }

func r1ShapeUpdate(_ *Ctx, s *r1Shape, _ struct{}) { s.Count.Inc() }

func BenchmarkHotShapeG1(b *testing.B) {
	// All-push stream: the state stays symbolic and the update is a no-op,
	// the common case for G1's dominant groups.
	b.Run("seed", func(b *testing.B) {
		x := NewSeedExecutor(newG1Shape, g1ShapeUpdate, DefaultOptions())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := x.Feed(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fast", func(b *testing.B) {
		x := NewExecutor(newG1Shape, g1ShapeUpdate, DefaultOptions())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := x.Feed(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("memo", func(b *testing.B) {
		sc := newSchema(newG1Shape)
		x := NewSchemaExecutor(sc, g1ShapeUpdate, DefaultOptions()).
			WithMemo(NewMemo[*g1Shape, int64](sc, DefaultMemoSize))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := x.Feed(0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkHotShapeR1(b *testing.B) {
	b.Run("seed", func(b *testing.B) {
		x := NewSeedExecutor(newR1Shape, r1ShapeUpdate, DefaultOptions())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := x.Feed(struct{}{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fast", func(b *testing.B) {
		x := NewExecutor(newR1Shape, r1ShapeUpdate, DefaultOptions())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := x.Feed(struct{}{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("memo", func(b *testing.B) {
		sc := newSchema(newR1Shape)
		x := NewSchemaExecutor(sc, r1ShapeUpdate, DefaultOptions()).
			WithMemo(NewMemo[*r1Shape, struct{}](sc, DefaultMemoSize))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := x.Feed(struct{}{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
