package sym

import (
	"testing"

	"repro/internal/wire"
)

// FuzzDecodeSummary feeds arbitrary bytes to the summary decoder for the
// funnel state (bool + int + string vector): it must never panic, and
// anything it accepts must survive re-encoding.
func FuzzDecodeSummary(f *testing.F) {
	// Seed with a genuine summary.
	x := NewExecutor(newFunnelState, funnelUpdate, DefaultOptions())
	for i := 0; i < 20; i++ {
		if err := x.Feed(funnelEvent{kind: i % 4, item: "t"}); err != nil {
			f.Fatal(err)
		}
	}
	sums, err := x.Finish()
	if err != nil {
		f.Fatal(err)
	}
	e := wire.NewEncoder(0)
	sums[0].Encode(e)
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSummary(newFunnelState, wire.NewDecoder(data))
		if err != nil {
			return
		}
		// Accepted summaries must re-encode without panicking.
		e := wire.NewEncoder(0)
		s.Encode(e)
		// And applying to a concrete state must not panic (it may
		// legitimately fail with ErrNoPath if the fuzzer forged
		// non-covering constraints).
		_, _ = s.Apply(newFunnelState())
	})
}

// FuzzSymIntDecode checks the SymInt decoder on raw bytes.
func FuzzSymIntDecode(f *testing.F) {
	v := NewSymInt(42)
	e := wire.NewEncoder(0)
	v.Encode(e)
	f.Add(e.Bytes())
	var s SymInt
	s.ResetSymbolic(3)
	e2 := wire.NewEncoder(0)
	s.Encode(e2)
	f.Add(e2.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		var got SymInt
		if err := got.Decode(wire.NewDecoder(data)); err != nil {
			return
		}
		e := wire.NewEncoder(0)
		got.Encode(e)
		var again SymInt
		if err := again.Decode(wire.NewDecoder(e.Bytes())); err != nil {
			t.Fatalf("re-decode of accepted value failed: %v", err)
		}
		if again != got {
			t.Fatalf("decode/encode not idempotent: %+v vs %+v", got, again)
		}
	})
}
