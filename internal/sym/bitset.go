package sym

import "math/bits"

// bitset is a fixed-domain set over at most 64 values, backing SymEnum
// constraints. A single machine word keeps SymEnum operations — probe,
// narrow, union — allocation-free on the engine's hot path; the paper's
// enum domains (op codes, countries, booleans, FSM states) are far below
// the cap, and larger domains are better served by SymPred.
type bitset uint64

// maxEnumDomain is the largest SymEnum domain size.
const maxEnumDomain = 64

func fullBitset(n int) bitset {
	if n >= 64 {
		return ^bitset(0)
	}
	return bitset(1)<<n - 1
}

func (s bitset) has(v int64) bool {
	return uint64(v) < 64 && s&(1<<uint64(v)) != 0
}

func (s *bitset) add(v int64)    { *s |= 1 << uint64(v) }
func (s *bitset) remove(v int64) { *s &^= 1 << uint64(v) }

func (s bitset) count() int { return bits.OnesCount64(uint64(s)) }

func (s bitset) empty() bool { return s == 0 }

// single returns the sole element if the set has exactly one, else -1.
func (s bitset) single() int64 {
	if bits.OnesCount64(uint64(s)) != 1 {
		return -1
	}
	return int64(bits.TrailingZeros64(uint64(s)))
}
