// Package sym implements SYMPLE's symbolic data types and the symbolic
// execution engine that parallelizes user-defined aggregations (UDAs).
//
// A UDA iterates over an ordered list of records updating an aggregation
// state; the loop-carried dependence through that state normally forces
// sequential execution. SYMPLE breaks the dependence by running the UDA on
// each input chunk from an "unknown" symbolic initial state. The result of
// a chunk is a symbolic summary
//
//	⋀ᵢ PCᵢ(x) ⇒ s = TFᵢ(x)
//
// a set of paths, each pairing a path constraint PCᵢ over the unknown
// initial state x with a transfer function TFᵢ giving the final state as a
// function of x. Valid summaries partition the input space: the PCᵢ are
// pairwise disjoint and their disjunction is true. Composing the chunk
// summaries in input order reproduces exactly the sequential output.
//
// Three properties make this fast enough to run at disk speed (paper §2.3):
//
//   - Canonical forms. Every symbolic type keeps its constraint and
//     transfer in a closed canonical form (SymInt: lb ≤ x ≤ ub ⇒ a·x+b;
//     SymEnum: x ∈ S ⇒ (bound ? c : x)), so branch feasibility is decided
//     in constant time with no external solver.
//   - Restricted operations. A symbolic value only combines with concrete
//     values (e.g. two SymInts cannot be added or compared), so every
//     constraint mentions a single symbolic variable and a path constraint
//     is a conjunction of independent per-variable constraints.
//   - Path merging and explosion controls. Paths with identical transfer
//     functions merge when their constraints union back into canonical
//     form; if the live-path count still exceeds a bound, the engine emits
//     the summary so far and restarts fresh, trading parallelism for
//     sequential efficiency instead of blowing up.
//
// Aggregation states are plain Go structs whose symbolic fields implement
// Value and are enumerated by Fields (the Go analogue of the paper's
// list_fields, needed for clone/merge/serialize without reflection on the
// hot path). The Executor explores paths by re-running the user Update
// function under a lexicographically incremented choice vector, exactly as
// the paper's C++ library does with operator overloading (§5.1).
package sym
