package sym

import (
	"testing"

	"repro/internal/wire"
)

func TestSymVectorPushAndCopyIsolation(t *testing.T) {
	v := NewSymVector(StringCodec())
	v.Push("a")
	var c1, c2 SymVector[string]
	c1.CopyFrom(&v)
	c2.CopyFrom(&v)
	c1.Push("b")
	c2.Push("c")
	if got := c1.Elems(); len(got) != 2 || got[1] != "b" {
		t.Fatalf("c1 = %v", got)
	}
	if got := c2.Elems(); len(got) != 2 || got[1] != "c" {
		t.Fatalf("c2 = %v", got)
	}
	if v.Len() != 1 {
		t.Fatal("base mutated")
	}
}

func TestSymVectorConcretizeConcatenates(t *testing.T) {
	prev := NewSymVector(StringCodec())
	prev.Push("p1")
	prev.Push("p2")
	local := NewSymVector(StringCodec())
	local.Push("l1")
	local.Concretize(&prev, nil)
	got := local.Elems()
	want := []string{"p1", "p2", "l1"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSymVectorSameTransfer(t *testing.T) {
	a := NewSymVector(StringCodec())
	b := NewSymVector(StringCodec())
	a.Push("x")
	b.Push("x")
	if !a.SameTransfer(&b) {
		t.Fatal("equal vectors differ")
	}
	b.Push("y")
	if a.SameTransfer(&b) {
		t.Fatal("unequal lengths compare equal")
	}
}

func TestSymVectorEncodeDecode(t *testing.T) {
	v := NewSymVector(StringCodec())
	v.Push("hello")
	v.Push("")
	v.Push("world")
	e := wire.NewEncoder(0)
	v.Encode(e)
	got := NewSymVector(StringCodec())
	if err := got.Decode(wire.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 || got.Elems()[2] != "world" {
		t.Fatalf("decoded: %v", got.Elems())
	}
}

func TestSymIntVectorSymbolicElements(t *testing.T) {
	var count SymInt
	count.ResetSymbolic(1)
	count.Add(5) // x1 + 5, the paper's example

	var v SymIntVector
	v.PushInt(&count)
	v.Push(99)
	if v.IsConcrete() {
		t.Fatal("vector with symbolic element reports concrete")
	}

	// Concretize with x1 = 10: element becomes 15.
	env := &Env{ints: []int64{0, 10}, ok: []bool{true, true}}
	var prev SymIntVector
	prev.Push(-1)
	v.Concretize(&prev, env)
	got := v.Elems()
	want := []int64{-1, 15, 99}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSymIntVectorElemsFailsOnSymbolic(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected failure panic")
		}
	}()
	var count SymInt
	count.ResetSymbolic(0)
	var v SymIntVector
	v.PushInt(&count)
	v.Elems()
}

func TestSymIntVectorPushEnum(t *testing.T) {
	en := NewSymEnum(5, 2)
	en.ResetSymbolic(0)
	var v SymIntVector
	v.PushEnum(&en)
	en2 := NewSymEnum(5, 3)
	v.PushEnum(&en2) // bound: concrete 3

	env := &Env{ints: []int64{4}, ok: []bool{true}}
	var prev SymIntVector
	v.Concretize(&prev, env)
	got := v.Elems()
	if got[0] != 4 || got[1] != 3 {
		t.Fatalf("got %v, want [4 3]", got)
	}
}

func TestSymIntVectorComposeAfterRewrites(t *testing.T) {
	// Later path pushed 2·x0+1; earlier path's field 0 transfer is
	// 3·x0+4. Composed element must be 2·(3x+4)+1 = 6x+9.
	var later SymIntVector
	later.push(intElem{sym: true, field: 0, a: 2, b: 1})
	senv := &SymEnv{entries: []symEnvEntry{{ok: true, bound: false, a: 3, b: 4}}}
	var prevVec SymIntVector
	prevVec.Push(7)
	if !later.ComposeAfter(&prevVec, senv) {
		t.Fatal("compose failed")
	}
	if later.elems[0] != (intElem{b: 7}) {
		t.Fatalf("prev element wrong: %+v", later.elems[0])
	}
	e := later.elems[1]
	if !e.sym || e.a != 6 || e.b != 9 || e.field != 0 {
		t.Fatalf("composed element: %+v", e)
	}

	// With a bound earlier transfer (x0 resolved to 5), 2·5+1 = 11.
	var later2 SymIntVector
	later2.push(intElem{sym: true, field: 0, a: 2, b: 1})
	senv2 := &SymEnv{entries: []symEnvEntry{{ok: true, bound: true, b: 5}}}
	if !later2.ComposeAfter(&SymIntVector{}, senv2) {
		t.Fatal("compose failed")
	}
	if later2.elems[0] != (intElem{b: 11}) {
		t.Fatalf("resolved element: %+v", later2.elems[0])
	}
}

func TestSymIntVectorEncodeDecode(t *testing.T) {
	var v SymIntVector
	v.Push(-5)
	v.push(intElem{sym: true, field: 2, a: -1, b: 100})
	e := wire.NewEncoder(0)
	v.Encode(e)
	var got SymIntVector
	if err := got.Decode(wire.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.elems[0] != v.elems[0] || got.elems[1] != v.elems[1] {
		t.Fatalf("decoded: %+v", got.elems)
	}
}
