package sym

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// FeedBatch must be observationally identical to a Feed loop: same
// summaries byte for byte, same record accounting, on every stream and
// for every placement of the batch boundaries. These tests drive the
// batch API across the three execution regimes it specializes — runs of
// identical events (one transition probe per run), fork-free windows
// (checkpoint + in-place update), and the scalar fallback when a record
// forks mid-window — against the scalar loop as the oracle.

// runFastBatch drives the schema engine through FeedBatch, cutting the
// stream at the given boundaries (each entry is an absolute index; the
// final slice runs to the end). memoSize < 0 disables memoization.
func runFastBatch[S State, E any](tb testing.TB, newState func() S, update func(*Ctx, S, E), opts Options, memoSize int, stream []E, cuts []int) ([]byte, Stats) {
	tb.Helper()
	sc := newSchema(newState)
	x := NewSchemaExecutor(sc, update, opts)
	if memoSize >= 0 {
		x = x.WithMemo(NewMemo[S, E](sc, memoSize))
	}
	lo := 0
	for _, hi := range append(append([]int{}, cuts...), len(stream)) {
		if err := x.FeedBatch(stream[lo:hi]); err != nil {
			tb.Fatalf("batch(memo=%d) feed [%d:%d): %v", memoSize, lo, hi, err)
		}
		lo = hi
	}
	sums, err := x.Finish()
	if err != nil {
		tb.Fatalf("batch(memo=%d) finish: %v", memoSize, err)
	}
	return encodeSummaries(tb, sums), x.Stats()
}

// checkBatchEquiv compares FeedBatch against the scalar Feed loop at
// several memo sizes and batch cuts.
func checkBatchEquiv[S State, E any](tb testing.TB, label string, newState func() S, update func(*Ctx, S, E), opts Options, stream []E, cuts []int) {
	tb.Helper()
	for _, memoSize := range []int{-1, 0, 2} {
		want, wstats := runFast(tb, newState, update, opts, memoSize, stream)
		got, gstats := runFastBatch(tb, newState, update, opts, memoSize, stream, cuts)
		if !bytes.Equal(got, want) {
			tb.Fatalf("%s memo=%d cuts=%v: batch summaries diverge from scalar loop (%d vs %d bytes)",
				label, memoSize, cuts, len(got), len(want))
		}
		if gstats.Records != wstats.Records || gstats.Restarts != wstats.Restarts {
			tb.Fatalf("%s memo=%d cuts=%v: stats diverge: records %d/%d restarts %d/%d",
				label, memoSize, cuts, gstats.Records, wstats.Records, gstats.Restarts, wstats.Restarts)
		}
	}
}

// runStream builds a stream dominated by runs of identical values, the
// shape the run-length probe exists for.
func runStream(r *rand.Rand, n, alphabet, maxRun int) []int64 {
	var s []int64
	for len(s) < n {
		v := int64(r.Intn(alphabet))
		for k := 1 + r.Intn(maxRun); k > 0 && len(s) < n; k-- {
			s = append(s, v)
		}
	}
	return s
}

// addUpdate is an always-symbolic fork-free UDA (a running sum): a
// single live path whose transitions compose by powering over runs.
func addUpdate(ctx *Ctx, s *intState, e int64) {
	s.V.Add(e)
}

// gateUpdate leaves the state untouched for zero events — an identity
// transition, the G1 push-run shape — and collapses it otherwise.
func gateUpdate(ctx *Ctx, s *intState, e int64) {
	if e != 0 {
		s.V.Set(1)
	}
}

func TestBatchEquivalenceMax(t *testing.T) {
	// Max forks on the first record, merges to two paths (§3.5), and
	// keeps deciding Lt per record — mid-window forks interleave with
	// quiet stretches, exercising checkpoint rollback and replay.
	r := rand.New(rand.NewSource(21))
	stream := runStream(r, 500, 12, 9)
	checkBatchEquiv(t, "max", newIntState(math.MinInt64), maxUpdate, DefaultOptions(), stream, nil)
	checkBatchEquiv(t, "max", newIntState(math.MinInt64), maxUpdate, DefaultOptions(), stream, []int{1, 7, 250, 499})
}

func TestBatchEquivalenceSum(t *testing.T) {
	// A running sum never forks: long runs fold through transition
	// powering, the stretches in between through fork-free windows.
	r := rand.New(rand.NewSource(22))
	stream := runStream(r, 500, 6, 20)
	checkBatchEquiv(t, "sum", newIntState(0), addUpdate, DefaultOptions(), stream, nil)
}

func TestBatchEquivalenceIdentityRuns(t *testing.T) {
	// Streams dominated by identity transitions (zero events): the run
	// probe must detect and skip them without touching the paths.
	r := rand.New(rand.NewSource(23))
	stream := make([]int64, 400)
	for i := range stream {
		if r.Intn(10) == 0 {
			stream[i] = int64(1 + r.Intn(3))
		}
	}
	checkBatchEquiv(t, "gate", newIntState(0), gateUpdate, DefaultOptions(), stream, nil)

	x := NewSchemaExecutor(newSchema(newIntState(0)), gateUpdate, DefaultOptions())
	if err := x.FeedBatch(make([]int64, 256)); err != nil {
		t.Fatal(err)
	}
	st := x.Stats()
	if st.RunProbes == 0 {
		t.Error("a 256-record identity run produced no run probes")
	}
	if st.Records != 256 {
		t.Errorf("records %d, want 256", st.Records)
	}
}

func TestBatchEquivalenceRandomSplits(t *testing.T) {
	// Metamorphic: any placement of the batch boundaries reproduces the
	// scalar summaries. Random UDAs from the seed-equivalence generator
	// family, random streams, random cuts.
	r := rand.New(rand.NewSource(24))
	for trial := 0; trial < 20; trial++ {
		stream := runStream(r, 200+r.Intn(200), 2+r.Intn(10), 1+r.Intn(12))
		var cuts []int
		for k := r.Intn(4); k > 0; k-- {
			cuts = append(cuts, r.Intn(len(stream)))
		}
		// Cuts must be non-decreasing absolute indices.
		for i := 1; i < len(cuts); i++ {
			if cuts[i] < cuts[i-1] {
				cuts[i] = cuts[i-1]
			}
		}
		switch trial % 3 {
		case 0:
			checkBatchEquiv(t, "splits/max", newIntState(math.MinInt64), maxUpdate, DefaultOptions(), stream, cuts)
		case 1:
			checkBatchEquiv(t, "splits/sum", newIntState(0), addUpdate, DefaultOptions(), stream, cuts)
		case 2:
			checkBatchEquiv(t, "splits/gate", newIntState(0), gateUpdate, DefaultOptions(), stream, cuts)
		}
	}
}

func TestBatchEquivalencePathCapRestarts(t *testing.T) {
	// Tight path cap with merging off: restarts must land on the same
	// records under batch and scalar execution (settle() is shared, so
	// this pins the accounting the restart decision reads).
	opts := Options{MaxLivePaths: 4, MaxRunsPerRecord: 256, DisableMerging: true}
	r := rand.New(rand.NewSource(25))
	stream := runStream(r, 300, 8, 6)
	checkBatchEquiv(t, "restarts", newIntState(math.MinInt64), maxUpdate, opts, stream, []int{100, 200})
}

func TestFeedBatchEmptyAndErrorStickiness(t *testing.T) {
	x := NewSchemaExecutor(newSchema(newIntState(0)), addUpdate, DefaultOptions())
	if err := x.FeedBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if st := x.Stats(); st.Records != 0 {
		t.Fatalf("empty batch counted %d records", st.Records)
	}
}

// BenchmarkBatchExec measures the fork-free window path on a
// never-forking UDA over a mixed stream — the per-record cost the
// columnar experiment's exec pass is made of.
func BenchmarkBatchExec(b *testing.B) {
	r := rand.New(rand.NewSource(31))
	stream := runStream(r, 4096, 16, 8)
	sc := newSchema(newIntState(0))
	x := NewSchemaExecutor(sc, addUpdate, DefaultOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.FeedBatch(stream); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunProbe measures folding one long run through a single
// transition probe plus powering, amortized per record.
func BenchmarkRunProbe(b *testing.B) {
	stream := make([]int64, 4096)
	for i := range stream {
		stream[i] = 3
	}
	sc := newSchema(newIntState(0))
	x := NewSchemaExecutor(sc, addUpdate, DefaultOptions()).
		WithMemo(NewMemo[*intState, int64](sc, DefaultMemoSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.FeedBatch(stream); err != nil {
			b.Fatal(err)
		}
	}
	if x.Stats().RunProbes == 0 {
		b.Fatal("no run probes — benchmark is not measuring the run path")
	}
}

// BenchmarkBatchKeyedGroups measures the per-group fixed cost of the
// batch path — Reset, FeedBatch over a short identity run, FinishInto —
// the regime high-cardinality queries (G1-shaped groups of two or three
// identical no-op events) spend their execution pass in. Mirroring the
// mapper's exec pass, summaries accumulate over a block of groups and
// are released in bulk outside the timed region; one op is
// keyedGroupBlock groups, so per-group cost is ns/op divided by it.
func BenchmarkBatchKeyedGroups(b *testing.B) {
	const keyedGroupBlock = 512
	sc := newSchema(newIntState(0))
	x := NewSchemaExecutor(sc, gateUpdate, DefaultOptions()).
		WithMemo(NewMemo[*intState, int64](sc, DefaultMemoSize))
	evs := []int64{0, 0, 0}
	dst := make([]*Summary[*intState], 0, keyedGroupBlock)
	first := true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = dst[:0]
		for g := 0; g < keyedGroupBlock; g++ {
			if !first {
				x.Reset()
			}
			first = false
			if err := x.FeedBatch(evs); err != nil {
				b.Fatal(err)
			}
			var err error
			if dst, err = x.FinishInto(dst); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		for _, s := range dst {
			s.Release()
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/keyedGroupBlock, "ns/group")
	if x.Stats().RunProbes == 0 {
		b.Fatal("no run probes — groups are not taking the identity skip")
	}
}
