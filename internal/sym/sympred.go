package sym

import (
	"fmt"

	"repro/internal/wire"
)

// SymPred is the black-box predicate holder of paper §4.4: a possibly
// symbolic value of type T supporting exactly two operations — assigning a
// concrete T, and evaluating a pre-specified arbitrary predicate
// pred(held, arg) against a concrete T.
//
// While the held value is still the unknown input x, EvalPred cannot
// reason symbolically (the predicate is a black box), so it blindly
// explores both outcomes, recording the assumption (arg, outcome) as the
// path constraint. At composition time the predicate is simply evaluated
// on the now-concrete previous value to check each assumption. UDAs with
// windowed dependence assign a concrete value on the first record of the
// chunk in every branch, so the blowup is bounded by 2 per chunk — the
// pattern all the paper's Pred queries follow (window of size one).
type SymPred[T any] struct {
	id      int
	pred    func(held, arg T) bool
	codec   Codec[T]
	bound   bool
	val     T
	assumps []predAssump[T]
}

type predAssump[T any] struct {
	arg     T
	outcome bool
}

// NewSymPred returns a SymPred holding the concrete initial value v,
// evaluating pred, with codec used for serialization and merge equality.
func NewSymPred[T any](pred func(held, arg T) bool, codec Codec[T], v T) SymPred[T] {
	return SymPred[T]{pred: pred, codec: codec, bound: true, val: v}
}

// EvalPred evaluates the black-box predicate between the held value and
// the concrete argument. While the held value is symbolic both outcomes
// are explored blindly and the assumption recorded.
func (v *SymPred[T]) EvalPred(ctx *Ctx, arg T) bool {
	if v.bound {
		return v.pred(v.val, arg)
	}
	outcome := ctx.Fork()
	v.assumps = append(v.assumps[:len(v.assumps):len(v.assumps)],
		predAssump[T]{arg: arg, outcome: outcome})
	return outcome
}

// SetValue binds the held value to the concrete v.
func (v *SymPred[T]) SetValue(val T) {
	v.bound, v.val = true, val
}

// Get returns the held concrete value, aborting the path if symbolic.
func (v *SymPred[T]) Get() T {
	if !v.bound {
		fail(ErrSymbolicRead)
	}
	return v.val
}

// TryGet returns the held value and whether it is bound.
func (v *SymPred[T]) TryGet() (T, bool) { return v.val, v.bound }

// ResetSymbolic implements Value.
func (v *SymPred[T]) ResetSymbolic(id int) {
	v.id = id
	v.bound = false
	var zero T
	v.val = zero
	v.assumps = nil
}

// CopyFrom implements Value.
func (v *SymPred[T]) CopyFrom(src Value) {
	s := src.(*SymPred[T])
	v.id, v.bound, v.val = s.id, s.bound, s.val
	// Assumption slices are shared copy-on-append (see EvalPred's
	// three-index slice expression), so a shallow copy is safe.
	v.assumps = s.assumps
	if s.pred != nil {
		v.pred = s.pred
	}
	if s.codec.Encode != nil {
		v.codec = s.codec
	}
}

// IsConcrete implements Value.
func (v *SymPred[T]) IsConcrete() bool { return v.bound }

// SameTransfer implements Value.
func (v *SymPred[T]) SameTransfer(other Value) bool {
	o := other.(*SymPred[T])
	if v.bound != o.bound {
		return false
	}
	return !v.bound || v.codec.Equal(v.val, o.val)
}

// ConstraintEq implements Value.
func (v *SymPred[T]) ConstraintEq(other Value) bool {
	o := other.(*SymPred[T])
	if len(v.assumps) != len(o.assumps) {
		return false
	}
	for i, a := range v.assumps {
		if a.outcome != o.assumps[i].outcome || !v.codec.Equal(a.arg, o.assumps[i].arg) {
			return false
		}
	}
	return true
}

// UnionConstraint implements Value. A disjunction of two distinct
// assumption lists has no canonical form, so union succeeds only on
// identical constraints.
func (v *SymPred[T]) UnionConstraint(other Value) bool {
	return v.ConstraintEq(other)
}

// Admits implements Value: every recorded assumption must agree with the
// predicate evaluated on the concrete previous value.
func (v *SymPred[T]) Admits(prev Value) bool {
	p := prev.(*SymPred[T])
	if !p.bound {
		fail(ErrSymbolicRead)
	}
	for _, a := range v.assumps {
		if v.pred(p.val, a.arg) != a.outcome {
			return false
		}
	}
	return true
}

// Concretize implements Value.
func (v *SymPred[T]) Concretize(prev Value, _ *Env) {
	p := prev.(*SymPred[T])
	if !v.bound {
		v.bound, v.val = true, p.val
	}
	v.assumps = nil
	v.id = p.id
}

// ComposeAfter implements Value. A SymPred's transfer is identity (while
// unbound) or constant, so composition either resolves this path's
// assumptions against prev's concrete value, or — when prev is also
// unbound — concatenates assumption lists over the same input.
func (v *SymPred[T]) ComposeAfter(prev Value, _ *SymEnv) bool {
	p := prev.(*SymPred[T])
	if p.bound {
		for _, a := range v.assumps {
			if v.pred(p.val, a.arg) != a.outcome {
				return false
			}
		}
		if !v.bound {
			v.bound, v.val = true, p.val
		}
		v.assumps = p.assumps
	} else {
		merged := make([]predAssump[T], 0, len(p.assumps)+len(v.assumps))
		merged = append(merged, p.assumps...)
		merged = append(merged, v.assumps...)
		v.assumps = merged
	}
	v.id = p.id
	return true
}

// Encode implements Value.
func (v *SymPred[T]) Encode(e *wire.Encoder) { v.encodeBody(e, true) }

// tagMatches implements taglessCodec.
func (v *SymPred[T]) tagMatches(pos int) bool { return v.id == pos }

// encodeTagless implements taglessCodec.
func (v *SymPred[T]) encodeTagless(e *wire.Encoder) { v.encodeBody(e, false) }

func (v *SymPred[T]) encodeBody(e *wire.Encoder, withTag bool) {
	e.Bool(v.bound)
	if withTag {
		e.Uvarint(uint64(v.id))
	}
	if v.bound {
		v.codec.Encode(e, v.val)
	}
	e.Uvarint(uint64(len(v.assumps)))
	for _, a := range v.assumps {
		e.Bool(a.outcome)
		v.codec.Encode(e, a.arg)
	}
}

// Decode implements Value. The receiver must have been constructed with
// the predicate and codec (they are code, not data, and do not travel).
func (v *SymPred[T]) Decode(d *wire.Decoder) error { return v.decodeBody(d, -1) }

// decodeTagless implements taglessCodec.
func (v *SymPred[T]) decodeTagless(d *wire.Decoder, pos int) error { return v.decodeBody(d, pos) }

func (v *SymPred[T]) decodeBody(d *wire.Decoder, pos int) error {
	if v.pred == nil || v.codec.Decode == nil {
		return fmt.Errorf("sym: decoding SymPred without predicate/codec")
	}
	v.bound = d.Bool()
	if pos >= 0 {
		v.id = pos
	} else {
		v.id = d.Length(maxFieldID)
	}
	var zero T
	v.val = zero
	if v.bound {
		v.val = v.codec.Decode(d)
	}
	const maxAssumps = 1 << 20
	n := d.Length(maxAssumps)
	if err := d.Err(); err != nil {
		return err
	}
	v.assumps = make([]predAssump[T], n)
	for i := range v.assumps {
		v.assumps[i].outcome = d.Bool()
		v.assumps[i].arg = v.codec.Decode(d)
	}
	return d.Err()
}

// String implements Value.
func (v *SymPred[T]) String() string {
	s := "true"
	if len(v.assumps) > 0 {
		s = fmt.Sprintf("%d assumption(s) on x%d", len(v.assumps), v.id)
	}
	if v.bound {
		return fmt.Sprintf("%s ⇒ %v", s, v.val)
	}
	return fmt.Sprintf("%s ⇒ x%d", s, v.id)
}

var (
	_ Value        = (*SymPred[int64])(nil)
	_ taglessCodec = (*SymPred[int64])(nil)
)
