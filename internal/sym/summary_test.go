package sym

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/wire"
)

// funnelEvent and funnelState mirror the paper's Figure 1 UDA: report
// items a user purchased after searching and reading more than 10
// reviews.
type funnelEvent struct {
	kind int // 0 search, 1 review, 2 purchase, 3 other
	item string
}

type funnelState struct {
	SrchFound SymBool
	Count     SymInt
	Ret       SymVector[string]
}

func (s *funnelState) Fields() []Value {
	return []Value{&s.SrchFound, &s.Count, &s.Ret}
}

func newFunnelState() *funnelState {
	return &funnelState{
		SrchFound: NewSymBool(false),
		Count:     NewSymInt(0),
		Ret:       NewSymVector(StringCodec()),
	}
}

func funnelUpdate(ctx *Ctx, s *funnelState, e funnelEvent) {
	if s.SrchFound.IsFalse(ctx) && e.kind == 0 {
		s.SrchFound.Set(true)
		s.Count.Set(0)
	}
	if s.SrchFound.IsTrue(ctx) && e.kind == 1 {
		s.Count.Inc()
	}
	if s.SrchFound.IsTrue(ctx) && e.kind == 2 {
		if s.Count.Gt(ctx, 10) {
			s.Ret.Push(e.item)
		}
		s.SrchFound.Set(false)
	}
}

// funnelConcrete is the independent oracle, written with plain Go types.
func funnelConcrete(events []funnelEvent) []string {
	srch := false
	count := int64(0)
	var ret []string
	for _, e := range events {
		if !srch && e.kind == 0 {
			srch = true
			count = 0
		}
		if srch && e.kind == 1 {
			count++
		}
		if srch && e.kind == 2 {
			if count > 10 {
				ret = append(ret, e.item)
			}
			srch = false
		}
	}
	return ret
}

func randFunnelEvents(r *rand.Rand, n int) []funnelEvent {
	items := []string{"tv", "book", "phone"}
	evs := make([]funnelEvent, n)
	for i := range evs {
		evs[i] = funnelEvent{kind: r.Intn(4), item: items[r.Intn(len(items))]}
	}
	return evs
}

// chunkSummaries runs the UDA symbolically over each chunk and returns
// the concatenated summaries in order.
func chunkSummaries(t *testing.T, events []funnelEvent, bounds []int) []*Summary[*funnelState] {
	t.Helper()
	var sums []*Summary[*funnelState]
	start := 0
	for _, end := range append(bounds, len(events)) {
		if end < start || end > len(events) {
			t.Fatalf("bad chunk bound %d", end)
		}
		x := NewExecutor(newFunnelState, funnelUpdate, DefaultOptions())
		for _, e := range events[start:end] {
			if err := x.Feed(e); err != nil {
				t.Fatalf("feed: %v", err)
			}
		}
		s, err := x.Finish()
		if err != nil {
			t.Fatalf("finish: %v", err)
		}
		sums = append(sums, s...)
		start = end
	}
	return sums
}

func checkFunnelResult(t *testing.T, got *funnelState, want []string, label string) {
	t.Helper()
	g := got.Ret.Elems()
	if len(g) != len(want) {
		t.Fatalf("%s: got %v, want %v", label, g, want)
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("%s: got %v, want %v", label, g, want)
		}
	}
}

// TestFunnelChunkedEqualsSequential is the headline soundness property:
// symbolic execution over arbitrary chunkings composes to exactly the
// sequential output of the Figure 1 UDA.
func TestFunnelChunkedEqualsSequential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(60)
		events := randFunnelEvents(r, n)
		want := funnelConcrete(events)

		// Random chunk boundaries.
		var bounds []int
		for i := 1; i < n; i++ {
			if r.Intn(4) == 0 {
				bounds = append(bounds, i)
			}
		}
		sums := chunkSummaries(t, events, bounds)

		// Reducer-side: apply summaries in order to the initial state.
		got, err := ApplyAll(newFunnelState(), sums)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkFunnelResult(t, got, want, "ApplyAll")

		// Tree-side: pre-compose all summaries, then apply once.
		composed, err := ComposeAll(sums)
		if err != nil {
			t.Fatalf("trial %d: compose: %v", trial, err)
		}
		got2, err := composed.ApplyStrict(newFunnelState())
		if err != nil {
			t.Fatalf("trial %d: apply composed: %v", trial, err)
		}
		checkFunnelResult(t, got2, want, "ComposeAll")
	}
}

// TestFunnelSummaryWireRoundTrip pushes every chunk summary through the
// wire format before composing, as the real shuffle does.
func TestFunnelSummaryWireRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	events := randFunnelEvents(r, 80)
	want := funnelConcrete(events)
	sums := chunkSummaries(t, events, []int{20, 40, 60})

	var decoded []*Summary[*funnelState]
	for _, s := range sums {
		e := wire.NewEncoder(0)
		s.Encode(e)
		d, err := DecodeSummary(newFunnelState, wire.NewDecoder(e.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if d.NumPaths() != s.NumPaths() {
			t.Fatalf("paths %d != %d after round trip", d.NumPaths(), s.NumPaths())
		}
		decoded = append(decoded, d)
	}
	got, err := ApplyAll(newFunnelState(), decoded)
	if err != nil {
		t.Fatal(err)
	}
	checkFunnelResult(t, got, want, "decoded")
}

// TestComposeAssociativity verifies (S3∘S2)∘S1 ≡ S3∘(S2∘S1) by applying
// both to many concrete states — the property that enables parallel
// summary reduction (paper §3.6).
func TestComposeAssociativity(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	events := randFunnelEvents(r, 45)
	sums := chunkSummaries(t, events, []int{15, 30})
	if len(sums) != 3 {
		t.Fatalf("expected 3 summaries, got %d", len(sums))
	}
	s12, err := sums[0].ComposeWith(sums[1])
	if err != nil {
		t.Fatal(err)
	}
	left, err := s12.ComposeWith(sums[2])
	if err != nil {
		t.Fatal(err)
	}
	s23, err := sums[1].ComposeWith(sums[2])
	if err != nil {
		t.Fatal(err)
	}
	right, err := sums[0].ComposeWith(s23)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		init := newFunnelState()
		init.SrchFound.Set(r.Intn(2) == 0)
		init.Count.Set(int64(r.Intn(30) - 5))
		a, err := left.ApplyStrict(init)
		if err != nil {
			t.Fatal(err)
		}
		b, err := right.ApplyStrict(init)
		if err != nil {
			t.Fatal(err)
		}
		if a.SrchFound.Get() != b.SrchFound.Get() || a.Count.Get() != b.Count.Get() {
			t.Fatalf("scalar outputs differ: %v vs %v", a, b)
		}
		ae, be := a.Ret.Elems(), b.Ret.Elems()
		if len(ae) != len(be) {
			t.Fatalf("vector outputs differ: %v vs %v", ae, be)
		}
		for i := range ae {
			if ae[i] != be[i] {
				t.Fatalf("vector outputs differ: %v vs %v", ae, be)
			}
		}
	}
}

// TestPaperSection36Composition reproduces the paper's §3.6 worked
// example: composing the summaries of Max chunks [5,3,10] and [8,2,1]
// yields x<10 ⇒ 10 ∧ x≥10 ⇒ x, and applying to 9 gives 10.
func TestPaperSection36Composition(t *testing.T) {
	mkSummary := func(chunk []int64) *Summary[*intState] {
		x := NewExecutor(newIntState(math.MinInt64), maxUpdate, DefaultOptions())
		for _, e := range chunk {
			if err := x.Feed(e); err != nil {
				t.Fatal(err)
			}
		}
		sums, err := x.Finish()
		if err != nil || len(sums) != 1 {
			t.Fatalf("finish: %v (%d summaries)", err, len(sums))
		}
		return sums[0]
	}
	s2 := mkSummary([]int64{5, 3, 10})
	s3 := mkSummary([]int64{8, 2, 1})
	s32, err := s2.ComposeWith(s3)
	if err != nil {
		t.Fatal(err)
	}
	if s32.NumPaths() != 2 {
		t.Fatalf("composed summary has %d paths, want 2:\n%s", s32.NumPaths(), s32)
	}
	got, err := s32.ApplyStrict(&intState{V: NewSymInt(9)})
	if err != nil {
		t.Fatal(err)
	}
	if g := got.V.Get(); g != 10 {
		t.Fatalf("S3∘S2(9) = %d, want 10", g)
	}
	got2, err := s32.ApplyStrict(&intState{V: NewSymInt(99)})
	if err != nil {
		t.Fatal(err)
	}
	if g := got2.V.Get(); g != 99 {
		t.Fatalf("S3∘S2(99) = %d, want 99", g)
	}
}

// TestSummaryPartitionProperty uses testing/quick: for random summaries
// of the funnel UDA and random concrete initial states, exactly one path
// admits the state (validity: PCs are disjoint and cover the space).
func TestSummaryPartitionProperty(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	events := randFunnelEvents(r, 25)
	sums := chunkSummaries(t, events, nil)
	s := sums[0]
	f := func(srch bool, count int16) bool {
		c := newFunnelState()
		c.SrchFound.Set(srch)
		c.Count.Set(int64(count))
		n := 0
		for _, p := range s.Paths() {
			if admits(p, c) {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestSummaryCompactness checks the serialized size of a long chunk's
// summary stays tiny — the property behind the paper's shuffle savings.
func TestSummaryCompactness(t *testing.T) {
	x := NewExecutor(newIntState(math.MinInt64), maxUpdate, DefaultOptions())
	for e := int64(0); e < 100000; e++ {
		if err := x.Feed(e % 1000); err != nil {
			t.Fatal(err)
		}
	}
	sums, err := x.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if n := sums[0].EncodedSize(); n > 64 {
		t.Fatalf("summary of 100k records serialized to %d bytes, want ≤ 64", n)
	}
}

func TestApplyNoPathError(t *testing.T) {
	// A hand-built invalid summary (empty) must report ErrNoPath.
	s := NewSummary(newIntState(0), nil)
	if _, err := s.Apply(&intState{V: NewSymInt(0)}); err == nil {
		t.Fatal("expected ErrNoPath")
	}
}

func TestDecodeSummaryCorrupt(t *testing.T) {
	e := wire.NewEncoder(0)
	e.Uvarint(5) // claims 5 paths, provides none
	if _, err := DecodeSummary(newIntState(0), wire.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("expected decode error")
	}
}
