package sym

import (
	"math"
	"math/rand"
	"testing"
)

func maxChunkSummaries(t *testing.T, chunk []int64) []*Summary[*intState] {
	t.Helper()
	x := NewExecutor(newIntState(math.MinInt64), maxUpdate, DefaultOptions())
	for _, e := range chunk {
		if err := x.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	sums, err := x.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return sums
}

func TestStreamComposerInOrder(t *testing.T) {
	c := NewStreamComposer(newIntState(math.MinInt64))
	chunks := [][]int64{{2, 9, 1}, {5, 3, 10}, {8, 2, 1}}
	for i, chunk := range chunks {
		folded, err := c.Add(i, maxChunkSummaries(t, chunk))
		if err != nil {
			t.Fatal(err)
		}
		if folded != 1 {
			t.Fatalf("chunk %d: folded %d, want 1", i, folded)
		}
	}
	state, n := c.Prefix()
	if n != 3 || state.V.Get() != 10 {
		t.Fatalf("prefix (%d chunks) = %d", n, state.V.Get())
	}
	if !c.Done(3) {
		t.Fatal("not done")
	}
}

func TestStreamComposerOutOfOrder(t *testing.T) {
	c := NewStreamComposer(newIntState(math.MinInt64))
	chunks := [][]int64{{2, 9, 1}, {5, 3, 10}, {8, 2, 1}, {4, 4}}

	// Deliver 2, 1, 3, 0.
	if folded, err := c.Add(2, maxChunkSummaries(t, chunks[2])); err != nil || folded != 0 {
		t.Fatalf("add 2: folded %d err %v", folded, err)
	}
	if folded, err := c.Add(1, maxChunkSummaries(t, chunks[1])); err != nil || folded != 0 {
		t.Fatalf("add 1: folded %d err %v", folded, err)
	}
	if got := c.Pending(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("pending %v", got)
	}
	// Speculative answer uses all received chunks.
	spec, err := c.Speculate()
	if err != nil {
		t.Fatal(err)
	}
	if spec.V.Get() != 10 {
		t.Fatalf("speculate = %d, want 10 (chunks 1,2 received)", spec.V.Get())
	}

	if folded, err := c.Add(3, maxChunkSummaries(t, chunks[3])); err != nil || folded != 0 {
		t.Fatalf("add 3: folded %d err %v", folded, err)
	}
	// Chunk 0 closes the gap: everything folds at once.
	folded, err := c.Add(0, maxChunkSummaries(t, chunks[0]))
	if err != nil {
		t.Fatal(err)
	}
	if folded != 4 {
		t.Fatalf("folded %d, want 4", folded)
	}
	state, n := c.Prefix()
	if n != 4 || state.V.Get() != 10 {
		t.Fatalf("prefix (%d) = %d", n, state.V.Get())
	}
	if !c.Done(4) || len(c.Pending()) != 0 {
		t.Fatal("not done after all chunks")
	}
}

func TestStreamComposerRejectsDuplicates(t *testing.T) {
	// Add takes ownership of the summaries it folds, so every delivery
	// gets its own freshly built list.
	c := NewStreamComposer(newIntState(math.MinInt64))
	if _, err := c.Add(1, maxChunkSummaries(t, []int64{1})); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add(1, maxChunkSummaries(t, []int64{1})); err == nil {
		t.Fatal("duplicate pending accepted")
	}
	if _, err := c.Add(0, maxChunkSummaries(t, []int64{1})); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add(0, maxChunkSummaries(t, []int64{1})); err == nil {
		t.Fatal("already-composed chunk accepted")
	}
}

// TestStreamComposerMatchesBatch: random chunkings and arrival orders
// always converge to the batch answer.
func TestStreamComposerMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(8)
		chunks := make([][]int64, n)
		want := int64(math.MinInt64)
		for i := range chunks {
			m := 1 + r.Intn(10)
			chunks[i] = make([]int64, m)
			for j := range chunks[i] {
				chunks[i][j] = int64(r.Intn(1000))
				if chunks[i][j] > want {
					want = chunks[i][j]
				}
			}
		}
		order := r.Perm(n)
		c := NewStreamComposer(newIntState(math.MinInt64))
		for _, seq := range order {
			if _, err := c.Add(seq, maxChunkSummaries(t, chunks[seq])); err != nil {
				t.Fatal(err)
			}
		}
		state, folded := c.Prefix()
		if folded != n || state.V.Get() != want {
			t.Fatalf("trial %d: folded %d/%d, value %d want %d",
				trial, folded, n, state.V.Get(), want)
		}
	}
}
