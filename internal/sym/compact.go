package sym

import "repro/internal/wire"

// Summary compaction: canonicalize and deduplicate semantically
// equivalent paths before a summary ships. Executors already merge
// same-transfer paths as they run (tryMergeFields), but two sources of
// redundancy survive to the shuffle:
//
//   - Representation aliasing. An unbound SymInt over a single-point
//     constraint lb = ub = k computes the constant a·k+b, yet its
//     transfer is stored as (a, b) — so two paths producing the same
//     constant through different affine routes compare as different
//     transfers and never merge. Rewriting such fields to their bound
//     canonical form (constant a·k+b, constraint kept) makes the
//     equivalence syntactic.
//   - Merge ordering. Interval unions are only attempted between paths
//     already equal elsewhere; a union that succeeds can expose further
//     unions. One quadratic pass stops early.
//
// Compact therefore runs: merge as-is (so adjacent singleton intervals
// union while their transfers are still identity — canonicalizing first
// would bind them to different constants and block the union), then
// canonicalize, then re-merge to a fixpoint. SymEnum is deliberately
// not canonicalized: per the paper (§4.1) an enum binds only on
// assignment, and the identity transfer is what lets enum paths merge
// by set union.

// canonicalizer is implemented by Values with a non-unique transfer
// representation that can be rewritten to a canonical form without
// changing path semantics.
type canonicalizer interface {
	// canonicalize rewrites the receiver in place. It must preserve
	// Admits, Concretize, ComposeAfter and transfer() behaviour exactly.
	canonicalize()
}

// taglessCodec is implemented by Values whose wire form can drop the
// leading field tag when it equals the field's position in the state —
// the overwhelmingly common case, since executors name inputs by field
// index. The summary header carries one bit saying whether every field
// of every path qualifies; when set, the schema's field order is the
// tag dictionary and no per-field tag is shipped.
type taglessCodec interface {
	// tagMatches reports whether the field's tag equals pos, i.e. the
	// tag is recoverable from position alone.
	tagMatches(pos int) bool
	// encodeTagless appends the field's wire form without its tag.
	encodeTagless(e *wire.Encoder)
	// decodeTagless reads the tagless wire form, adopting pos as the tag.
	decodeTagless(d *wire.Decoder, pos int) error
}

// Compact canonicalizes path fields and merges semantically equivalent
// paths, returning the number of paths eliminated. It is idempotent and
// run automatically by Encode; call it directly to shrink a summary
// that is composed further rather than shipped. Absorbed paths return
// to the schema pool when the summary has one.
func (s *Summary[S]) Compact() int {
	if len(s.ps) == 0 {
		return 0
	}
	total := 0
	s.ps, total = mergePathStates(s.sc, s.ps)
	for _, p := range s.ps {
		for _, f := range p.fs {
			if c, ok := f.(canonicalizer); ok {
				c.canonicalize()
			}
		}
	}
	for len(s.ps) > 1 {
		var n int
		s.ps, n = mergePathStates(s.sc, s.ps)
		if n == 0 {
			break
		}
		total += n
	}
	return total
}
