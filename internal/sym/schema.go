package sym

import (
	"sync"
	"sync/atomic"
)

// Schema is the compiled field plan of one State type: everything the
// runtime needs to clone, merge, compose, apply and serialize states of
// that shape without consulting State.Fields on the hot path. Fields()
// allocates a fresh []Value on every call — at one executor run per
// record per path that allocation (three per clone in the seed engine)
// dominated the mapper profile. The schema walks the type once, pins the
// field count and the per-field capability plan (which fields carry a
// scalar input, which carry a scalar transfer), and thereafter hands out
// pooled pathStates whose field slice is captured exactly once per
// container lifetime.
//
// A Schema is safe for concurrent use: the container pool is a
// sync.Pool and the counters are atomic. Share one schema across all
// executors, summaries and reducers of a query run so retired path
// states circulate instead of being reallocated.
type Schema[S State] struct {
	newState func() S
	nf       int
	// scalarIn[i] / scalarTr[i] record whether field i implements
	// scalarInput / scalarTransfer — probed once here instead of
	// type-asserted per field per record in Env/SymEnv capture.
	scalarIn []bool
	scalarTr []bool

	pool sync.Pool // *pathState[S]
	// sumFree parks released summaries — struct, path-list backing array
	// and retained containers, one unit per entry — for reuse by the
	// per-key Finish. A plain LIFO under a mutex rather than a sync.Pool:
	// executors claim blocks into a private cache (refillSummaries), so
	// the hot per-key draw touches no synchronization at all and the lock
	// is crossed once per block. sync.Pool's per-P pinning on every
	// Get/Put was a measurable share of the per-key fixed cost on
	// high-cardinality chunks.
	sumFreeMu sync.Mutex
	sumFree   []*Summary[S]
	// allocated counts containers ever created (pool misses). Tests use
	// it to assert that long runs recycle instead of growing the heap.
	allocated atomic.Int64
}

// sumFreeCap bounds the parked-summary stack; overflow drops the struct
// to the GC and returns its retained containers to the container pool,
// so a release burst cannot strand containers unreachable.
const sumFreeCap = 1 << 14

// summaryRefill is the block size executors claim from the free stack:
// one lock crossing amortized over this many per-key draws.
const summaryRefill = 32

// parkSummary retires a released summary (held containers included) to
// the schema's free stack.
func (sc *Schema[S]) parkSummary(s *Summary[S]) {
	sc.sumFreeMu.Lock()
	if len(sc.sumFree) < sumFreeCap {
		sc.sumFree = append(sc.sumFree, s)
		sc.sumFreeMu.Unlock()
		return
	}
	sc.sumFreeMu.Unlock()
	for _, p := range s.ps[:s.held] {
		sc.put(p)
	}
}

// refillSummaries moves up to n parked summaries into dst with one lock
// crossing. dst should be an executor-private cache.
func (sc *Schema[S]) refillSummaries(dst []*Summary[S], n int) []*Summary[S] {
	sc.sumFreeMu.Lock()
	k := min(n, len(sc.sumFree))
	if k > 0 {
		off := len(sc.sumFree) - k
		dst = append(dst, sc.sumFree[off:]...)
		for i := off; i < len(sc.sumFree); i++ {
			sc.sumFree[i] = nil
		}
		sc.sumFree = sc.sumFree[:off]
	}
	sc.sumFreeMu.Unlock()
	return dst
}

// prepSummary readies a parked (or zero) summary for n paths, binding it
// to sc. It returns k: entries ps[:k] are valid containers retained by a
// previous Release — the caller copies state contents into them; entries
// ps[k:] are nil and must be filled with cloned containers. Surplus
// retained containers beyond n go back to the container pool so nothing
// leaks when path counts shrink.
func (sc *Schema[S]) prepSummary(s *Summary[S], n int) int {
	held := s.held
	s.held = 0
	s.ps = s.ps[:held]
	k := min(held, n)
	for _, p := range s.ps[k:] {
		sc.put(p)
	}
	if cap(s.ps) >= n {
		s.ps = s.ps[:n]
		// Cells past the retained prefix may hold stale pointers to
		// containers already recycled — nil them so no caller can ever
		// alias a container that lives elsewhere.
		for i := k; i < n; i++ {
			s.ps[i] = nil
		}
	} else {
		np := make([]*pathState[S], n)
		copy(np, s.ps[:k])
		s.ps = np
	}
	s.newState, s.sc = sc.newState, sc
	return k
}

// pathState pairs a state with its captured field slice. All engine and
// summary internals traverse fs; s is only handed to user code (Update,
// Result) and to State-typed public APIs.
type pathState[S State] struct {
	s  S
	fs []Value
}

// NewSchema compiles the field plan for the state type produced by
// newState, validating the programmer contract (ValidateState) once up
// front — validation runs here, never on the record path.
func NewSchema[S State](newState func() S) (*Schema[S], error) {
	if err := ValidateState(newState); err != nil {
		return nil, err
	}
	return newSchema(newState), nil
}

// newSchema compiles the plan without validating; NewExecutor uses it so
// constructing a per-key executor stays as cheap as in the seed engine.
func newSchema[S State](newState func() S) *Schema[S] {
	probe := newState()
	fs := probe.Fields()
	sc := &Schema[S]{
		newState: newState,
		nf:       len(fs),
		scalarIn: make([]bool, len(fs)),
		scalarTr: make([]bool, len(fs)),
	}
	for i, f := range fs {
		_, sc.scalarIn[i] = f.(scalarInput)
		_, sc.scalarTr[i] = f.(scalarTransfer)
	}
	// The probe state becomes the pool's first container.
	sc.allocated.Add(1)
	sc.pool.Put(&pathState[S]{s: probe, fs: fs})
	return sc
}

// NumFields returns the number of symbolic fields in the plan.
func (sc *Schema[S]) NumFields() int { return sc.nf }

// Allocated returns the number of path-state containers created so far.
// Pooled operation keeps it near the peak number of simultaneously live
// paths; it is a lower bound on — not a census of — live memory, since
// sync.Pool may drop containers under GC.
func (sc *Schema[S]) Allocated() int64 { return sc.allocated.Load() }

// get returns a pooled or fresh container. The state's contents are
// whatever the previous user left; callers overwrite via CopyFrom or
// ResetSymbolic before use.
func (sc *Schema[S]) get() *pathState[S] {
	if v := sc.pool.Get(); v != nil {
		return v.(*pathState[S])
	}
	sc.allocated.Add(1)
	s := sc.newState()
	fs := s.Fields()
	if len(fs) != sc.nf {
		fail(ErrStateMismatch)
	}
	return &pathState[S]{s: s, fs: fs}
}

// put retires a container to the pool. Safe even while other states
// alias its slice-valued fields: every Value either copies on append
// (three-index slices in SymVector/SymIntVector/SymPred) or replaces
// whole slice headers, so a recycled container can never scribble over
// data a live path still references.
func (sc *Schema[S]) put(p *pathState[S]) {
	if p != nil {
		sc.pool.Put(p)
	}
}

// cloneOf deep-copies src into a pooled container.
func (sc *Schema[S]) cloneOf(src *pathState[S]) *pathState[S] {
	dst := sc.get()
	if len(src.fs) != len(dst.fs) {
		fail(ErrStateMismatch)
	}
	for i, f := range dst.fs {
		f.CopyFrom(src.fs[i])
	}
	return dst
}

// fresh returns a pooled container reset to the fully symbolic state:
// every field an unconstrained symbolic input named by its index.
func (sc *Schema[S]) fresh() *pathState[S] {
	p := sc.get()
	for i, f := range p.fs {
		f.ResetSymbolic(i)
	}
	return p
}

// wrap adopts an externally built state into a container, capturing its
// field slice once.
func wrapState[S State](s S) *pathState[S] {
	return &pathState[S]{s: s, fs: s.Fields()}
}

// captureSymEnv fills e with the scalar transfer functions of the path
// fields fs, reusing e's entry slice. It is the allocation-free
// equivalent of NewSymEnv, driven by the schema's capability plan
// instead of per-field type assertions on the miss side.
func (sc *Schema[S]) captureSymEnv(e *SymEnv, fs []Value) {
	if cap(e.entries) < len(fs) {
		e.entries = make([]symEnvEntry, len(fs))
	}
	e.entries = e.entries[:len(fs)]
	for i, f := range fs {
		if !sc.scalarTr[i] {
			e.entries[i] = symEnvEntry{}
			continue
		}
		bound, a, b := f.(scalarTransfer).transfer()
		e.entries[i] = symEnvEntry{ok: true, bound: bound, a: a, b: b}
	}
}

// captureEnv fills e with the concrete scalar inputs of fs, reusing e's
// slices: the allocation-free equivalent of NewEnv.
func (sc *Schema[S]) captureEnv(e *Env, fs []Value) {
	if cap(e.ints) < len(fs) {
		e.ints = make([]int64, len(fs))
		e.ok = make([]bool, len(fs))
	}
	e.ints = e.ints[:len(fs)]
	e.ok = e.ok[:len(fs)]
	for i, f := range fs {
		if !sc.scalarIn[i] {
			e.ints[i], e.ok[i] = 0, false
			continue
		}
		e.ints[i], e.ok[i] = f.(scalarInput).concreteInput()
	}
}

// allConcreteFields is allConcrete over a captured field slice.
func allConcreteFields(fs []Value) bool {
	for _, f := range fs {
		if !f.IsConcrete() {
			return false
		}
	}
	return true
}

// tryMergeFields is tryMergePaths over captured field slices: merge b
// into a when every transfer matches and at most one constraint differs
// with a canonical union. a is mutated only on success.
func tryMergeFields(af, bf []Value) bool {
	if len(af) != len(bf) {
		fail(ErrStateMismatch)
	}
	for i := range af {
		if !af[i].SameTransfer(bf[i]) {
			return false
		}
	}
	diff := -1
	for i := range af {
		if !af[i].ConstraintEq(bf[i]) {
			if diff >= 0 {
				return false
			}
			diff = i
		}
	}
	if diff < 0 {
		return true
	}
	return af[diff].UnionConstraint(bf[diff])
}

// mergePathStates is mergeAll over containers, recycling absorbed paths
// into the pool (the seed engine dropped them to the GC). sc may be nil
// for summaries built outside a schema; absorbed paths then fall to the
// GC as before.
func mergePathStates[S State](sc *Schema[S], paths []*pathState[S]) ([]*pathState[S], int) {
	merged := 0
	for i := 0; i < len(paths); i++ {
		for j := i + 1; j < len(paths); j++ {
			if tryMergeFields(paths[i].fs, paths[j].fs) {
				if sc != nil {
					sc.put(paths[j])
				}
				paths[j] = paths[len(paths)-1]
				paths = paths[:len(paths)-1]
				merged++
				j--
			}
		}
	}
	return paths, merged
}

// captureSymEnvInto is captureSymEnv without a schema plan (per-field
// type assertions instead of the precomputed capability bits), for
// summary composition outside an executor.
func captureSymEnvInto(e *SymEnv, fs []Value) {
	if cap(e.entries) < len(fs) {
		e.entries = make([]symEnvEntry, len(fs))
	}
	e.entries = e.entries[:len(fs)]
	for i, f := range fs {
		st, ok := f.(scalarTransfer)
		if !ok {
			e.entries[i] = symEnvEntry{}
			continue
		}
		bound, a, b := st.transfer()
		e.entries[i] = symEnvEntry{ok: true, bound: bound, a: a, b: b}
	}
}

// captureEnvInto is captureEnv without a schema plan.
func captureEnvInto(e *Env, fs []Value) {
	if cap(e.ints) < len(fs) {
		e.ints = make([]int64, len(fs))
		e.ok = make([]bool, len(fs))
	}
	e.ints = e.ints[:len(fs)]
	e.ok = e.ok[:len(fs)]
	for i, f := range fs {
		si, ok := f.(scalarInput)
		if !ok {
			e.ints[i], e.ok[i] = 0, false
			continue
		}
		e.ints[i], e.ok[i] = si.concreteInput()
	}
}

// admitsFields is admits over captured field slices.
func admitsFields(pf, cf []Value) bool {
	if len(pf) != len(cf) {
		fail(ErrStateMismatch)
	}
	for i := range pf {
		if !pf[i].Admits(cf[i]) {
			return false
		}
	}
	return true
}
