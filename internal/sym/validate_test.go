package sym

import (
	"strings"
	"testing"
)

func TestValidateStateAccepts(t *testing.T) {
	cases := []struct {
		name string
		run  func() error
	}{
		{"intState", func() error { return ValidateState(newIntState(0)) }},
		{"enumState", func() error { return ValidateState(newEnumState(4, 1)) }},
		{"funnelState", func() error { return ValidateState(newFunnelState) }},
		{"predState", func() error { return ValidateState(newPredState) }},
		{"pairState (SymStruct)", func() error { return ValidateState(newPairState) }},
	}
	for _, c := range cases {
		if err := c.run(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

// forgotState omits Count from Fields — the bug class §5.3's checking
// targets.
type forgotState struct {
	Flag  SymBool
	Count SymInt
}

func (s *forgotState) Fields() []Value { return []Value{&s.Flag} }

func TestValidateStateCatchesUnlistedField(t *testing.T) {
	err := ValidateState(func() *forgotState {
		return &forgotState{Flag: NewSymBool(false), Count: NewSymInt(0)}
	})
	if err == nil {
		t.Fatal("expected error for field missing from Fields()")
	}
	if !strings.Contains(err.Error(), "Count") {
		t.Fatalf("error should name the missing field: %v", err)
	}
}

// nestedForgotState hides the unlisted field inside a nested plain
// struct.
type innerCounters struct {
	A SymInt
	B SymInt
}

type nestedForgotState struct {
	In innerCounters
}

func (s *nestedForgotState) Fields() []Value { return []Value{&s.In.A} }

func TestValidateStateCatchesNestedUnlisted(t *testing.T) {
	err := ValidateState(func() *nestedForgotState {
		return &nestedForgotState{innerCounters{NewSymInt(0), NewSymInt(0)}}
	})
	if err == nil || !strings.Contains(err.Error(), "B") {
		t.Fatalf("expected error naming nested field B, got %v", err)
	}
}

// dupState lists the same field twice.
type dupState struct {
	V SymInt
}

func (s *dupState) Fields() []Value { return []Value{&s.V, &s.V} }

func TestValidateStateCatchesDuplicate(t *testing.T) {
	if err := ValidateState(func() *dupState { return &dupState{V: NewSymInt(0)} }); err == nil {
		t.Fatal("expected error for duplicate field")
	}
}

// nilFieldState returns a nil Value.
type nilFieldState struct {
	V SymInt
}

func (s *nilFieldState) Fields() []Value { return []Value{&s.V, nil} }

func TestValidateStateCatchesNil(t *testing.T) {
	if err := ValidateState(func() *nilFieldState { return &nilFieldState{V: NewSymInt(0)} }); err == nil {
		t.Fatal("expected error for nil field")
	}
}

// emptyState has no symbolic fields at all.
type emptyState struct{}

func (s *emptyState) Fields() []Value { return nil }

func TestValidateStateCatchesEmpty(t *testing.T) {
	if err := ValidateState(func() *emptyState { return &emptyState{} }); err == nil {
		t.Fatal("expected error for empty state")
	}
}

// arrayState holds symbolic values in an array, all listed.
type arrayState struct {
	Preds [2]SymPred[int64]
}

func (s *arrayState) Fields() []Value { return []Value{&s.Preds[0], &s.Preds[1]} }

func TestValidateStateArrayFields(t *testing.T) {
	mk := func() *arrayState {
		return &arrayState{Preds: [2]SymPred[int64]{
			NewSymPred(withinTen, Int64Codec(), 0),
			NewSymPred(withinTen, Int64Codec(), 0),
		}}
	}
	if err := ValidateState(mk); err != nil {
		t.Fatalf("array fields: %v", err)
	}
}
