package sym

import (
	"math/rand"
	"testing"
)

// BenchmarkBatchMixedGate drives the batch path over G1-shaped keyed
// groups: ~17 mixed events per key, a dominant identity event (0) with
// p=0.55, update concretizes on the first non-identity event.
func BenchmarkBatchMixedGate(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	const keys = 256
	const perKey = 17
	groups := make([][]int64, keys)
	total := 0
	for k := range groups {
		evs := make([]int64, perKey)
		for i := range evs {
			if r.Intn(100) >= 55 {
				evs[i] = int64(1 + r.Intn(7))
			}
		}
		groups[k] = evs
		total += perKey
	}
	sc := newSchema(newIntState(0))
	x := NewSchemaExecutor(sc, gateUpdate, DefaultOptions()).
		WithMemo(NewMemo[*intState, int64](sc, DefaultMemoSize))
	dst := make([]*Summary[*intState], 0, keys)
	first := true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = dst[:0]
		for _, evs := range groups {
			var done bool
			if dst, done = x.TryFinishIdentity(evs, dst); done {
				continue
			}
			if !first {
				x.Reset()
			}
			first = false
			if err := x.FeedBatch(evs); err != nil {
				b.Fatal(err)
			}
			var err error
			if dst, err = x.FinishInto(dst); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		for _, s := range dst {
			s.Release()
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(total), "ns/rec")
}
