package sym

import "fmt"

// Options configure an Executor's path-explosion controls (paper §5.2).
type Options struct {
	// MaxLivePaths bounds the live paths carried across records. When
	// exceeded (after merging), the executor emits the summary built so
	// far and restarts from a fresh symbolic state, trading parallelism
	// for sequential efficiency instead of blowing up. Default 8, the
	// paper's setting.
	MaxLivePaths int

	// MaxRunsPerRecord bounds the paths explored while processing a
	// single record. Exceeding it indicates a loop that depends on the
	// aggregation state and aborts with ErrPathExplosion. Default 256.
	MaxRunsPerRecord int

	// DisableMerging turns off path merging (ablation only).
	DisableMerging bool
}

// DefaultOptions returns the paper's settings.
func DefaultOptions() Options {
	return Options{MaxLivePaths: 8, MaxRunsPerRecord: 256}
}

func (o Options) withDefaults() Options {
	if o.MaxLivePaths <= 0 {
		o.MaxLivePaths = 8
	}
	if o.MaxRunsPerRecord <= 0 {
		o.MaxRunsPerRecord = 256
	}
	return o
}

// Stats counts the work an Executor performed.
type Stats struct {
	Records  int // records fed
	Runs     int // Update invocations (≥ Records; the symbolic overhead)
	MaxLive  int // peak live paths after merging
	Merges   int // path pairs merged
	Restarts int // summaries emitted due to the live-path cap
}

// Executor runs a UDA's Update function over a stream of records,
// exploring every feasible path per record with a lexicographically
// incremented choice vector (paper §5.1) and maintaining the set of live
// paths that constitutes the symbolic summary so far.
//
// The zero Executor is not usable; construct with NewExecutor (symbolic
// start, for mappers) or NewConcreteExecutor (concrete start, for the
// sequential baseline and single-chunk runs).
type Executor[S State, E any] struct {
	newState func() S
	update   func(*Ctx, S, E)
	opts     Options
	ctx      Ctx
	paths    []S
	scratch  []S // recycled backing array for the next-paths slice
	pool     []S // retired states recycled for clones (allocation-free hot path)
	// fastConcrete caches "exactly one live path and it is fully
	// concrete". Concreteness is monotone within a path (no operation
	// reintroduces symbolic state; only a restart does), so once set the
	// per-record Fields walk is skipped entirely — the native-speed
	// execution mode of a bound state (paper §4.1).
	fastConcrete bool
	done         []*Summary[S]
	maxSeen      int
	err          error
	stats        Stats
}

// NewExecutor returns an executor starting from a fresh symbolic state:
// the mapper side of SYMPLE, which does not know the state its chunk will
// receive. newState must return the user's initial aggregation state (its
// concrete values are ignored here but used by summary application).
func NewExecutor[S State, E any](newState func() S, update func(*Ctx, S, E), opts Options) *Executor[S, E] {
	x := &Executor[S, E]{
		newState: newState,
		update:   update,
		opts:     opts.withDefaults(),
	}
	x.paths = []S{freshSymbolic(newState)}
	x.maxSeen = 1
	x.stats.MaxLive = 1
	return x
}

// NewConcreteExecutor returns an executor starting from the user's
// initial concrete state. All branches resolve concretely, so exactly one
// path is ever live: this is the sequential execution of the UDA through
// the same code path, used as the correctness oracle and the Sequential
// baseline.
func NewConcreteExecutor[S State, E any](newState func() S, update func(*Ctx, S, E), opts Options) *Executor[S, E] {
	x := &Executor[S, E]{
		newState: newState,
		update:   update,
		opts:     opts.withDefaults(),
	}
	x.paths = []S{newState()}
	x.maxSeen = 1
	x.stats.MaxLive = 1
	x.fastConcrete = allConcrete(x.paths[0])
	return x
}

// Feed processes one input record, advancing every live path. A returned
// error (path explosion, overflow) is sticky: the executor is dead.
func (x *Executor[S, E]) Feed(rec E) (err error) {
	if x.err != nil {
		return x.err
	}
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(failure)
			if !ok {
				panic(r)
			}
			x.err = f.err
			err = f.err
		}
	}()
	x.feed(rec)
	return nil
}

func (x *Executor[S, E]) feed(rec E) {
	x.stats.Records++
	if x.fastConcrete {
		x.ctx.reset()
		x.ctx.begin()
		x.stats.Runs++
		x.update(&x.ctx, x.paths[0], rec)
		return
	}
	next := x.scratch[:0]
	for _, p := range x.paths {
		if allConcrete(p) {
			// Fast path: no field depends on symbolic input, so Update
			// cannot fork and may run in place without cloning.
			x.ctx.reset()
			x.ctx.begin()
			x.stats.Runs++
			x.update(&x.ctx, p, rec)
			next = append(next, p)
			continue
		}
		x.ctx.reset()
		for {
			x.ctx.begin()
			x.stats.Runs++
			if x.ctx.runs > x.opts.MaxRunsPerRecord {
				fail(ErrPathExplosion)
			}
			run := x.clone(p)
			x.update(&x.ctx, run, rec)
			next = append(next, run)
			if !x.ctx.advance() {
				break
			}
		}
		// p was replaced by its clones and is never referenced again;
		// recycle it. Sharing through CopyFrom is pointer-level and
		// copy-on-append, so reuse cannot alias live paths.
		x.pool = append(x.pool, p)
	}
	x.scratch = x.paths
	x.paths = next

	// Merge as soon as the path count exceeds the previous maximum
	// (paper §5.2), then restart if still over the live cap.
	if len(x.paths) > x.maxSeen {
		if !x.opts.DisableMerging {
			var m int
			x.paths, m = mergeAll(x.paths)
			x.stats.Merges += m
		}
		if len(x.paths) > x.maxSeen {
			x.maxSeen = len(x.paths)
		}
		if len(x.paths) > x.stats.MaxLive {
			x.stats.MaxLive = len(x.paths)
		}
	}
	if len(x.paths) > x.opts.MaxLivePaths {
		x.done = append(x.done, &Summary[S]{paths: x.paths, newState: x.newState})
		x.paths = []S{freshSymbolic(x.newState)}
		x.maxSeen = 1
		x.stats.Restarts++
	}
	x.fastConcrete = len(x.paths) == 1 && allConcrete(x.paths[0])
}

// clone deep-copies src into a pooled or fresh state.
func (x *Executor[S, E]) clone(src S) S {
	var dst S
	if n := len(x.pool); n > 0 {
		dst = x.pool[n-1]
		x.pool = x.pool[:n-1]
	} else {
		dst = x.newState()
	}
	df, sf := dst.Fields(), src.Fields()
	if len(df) != len(sf) {
		fail(ErrStateMismatch)
	}
	for i := range df {
		df[i].CopyFrom(sf[i])
	}
	return dst
}

// Finish returns the ordered symbolic summaries for everything fed so
// far. A mapper usually produces one summary; path-explosion restarts
// produce several, composed in order at the reducer.
func (x *Executor[S, E]) Finish() ([]*Summary[S], error) {
	if x.err != nil {
		return nil, x.err
	}
	out := make([]*Summary[S], 0, len(x.done)+1)
	out = append(out, x.done...)
	out = append(out, &Summary[S]{paths: x.paths, newState: x.newState})
	return out, nil
}

// ConcreteState returns the single live state of a concrete execution.
// It errors if the executor was started symbolically or has failed.
func (x *Executor[S, E]) ConcreteState() (S, error) {
	var zero S
	if x.err != nil {
		return zero, x.err
	}
	if len(x.done) != 0 || len(x.paths) != 1 || !allConcrete(x.paths[0]) {
		return zero, fmt.Errorf("sym: executor state is symbolic (%d summaries, %d paths)",
			len(x.done), len(x.paths))
	}
	return x.paths[0], nil
}

// Stats returns the executor's work counters.
func (x *Executor[S, E]) Stats() Stats { return x.stats }

// LivePaths returns the number of currently live paths.
func (x *Executor[S, E]) LivePaths() int { return len(x.paths) }

// Err returns the sticky error, if any.
func (x *Executor[S, E]) Err() error { return x.err }
