package sym

import "fmt"

// Options configure an Executor's path-explosion controls (paper §5.2).
type Options struct {
	// MaxLivePaths bounds the live paths carried across records. When
	// exceeded (after merging), the executor emits the summary built so
	// far and restarts from a fresh symbolic state, trading parallelism
	// for sequential efficiency instead of blowing up. Default 8, the
	// paper's setting.
	MaxLivePaths int

	// MaxRunsPerRecord bounds the paths explored while processing a
	// single record. Exceeding it indicates a loop that depends on the
	// aggregation state and aborts with ErrPathExplosion. Default 256.
	MaxRunsPerRecord int

	// DisableMerging turns off path merging (ablation only).
	DisableMerging bool
}

// DefaultOptions returns the paper's settings.
func DefaultOptions() Options {
	return Options{MaxLivePaths: 8, MaxRunsPerRecord: 256}
}

func (o Options) withDefaults() Options {
	if o.MaxLivePaths <= 0 {
		o.MaxLivePaths = 8
	}
	if o.MaxRunsPerRecord <= 0 {
		o.MaxRunsPerRecord = 256
	}
	return o
}

// Stats counts the work an Executor performed.
type Stats struct {
	Records  int // records fed
	Runs     int // Update invocations (≥ Records when unmemoized; the symbolic overhead)
	MaxLive  int // peak live paths after merging
	Merges   int // path pairs merged
	Restarts int // summaries emitted due to the live-path cap
	// MemoHits counts records folded through a cached record-transition
	// summary instead of path exploration; MemoMisses counts records
	// that had to explore (first sighting, eviction, or a record whose
	// transition cannot be cached). Both stay zero without a memo.
	MemoHits   int
	MemoMisses int
	// RunProbes counts runs of identical events handled by FeedBatch
	// with a single transition probe (identity skip or transition
	// powering) instead of per-record processing.
	RunProbes int
}

// Executor runs a UDA's Update function over a stream of records,
// exploring every feasible path per record with a lexicographically
// incremented choice vector (paper §5.1) and maintaining the set of live
// paths that constitutes the symbolic summary so far.
//
// The executor is driven by a compiled Schema: path states live in
// pooled containers whose field slices are captured once, so the
// per-record clone/merge/compose work runs with zero State.Fields calls
// and no steady-state allocation. With a Memo attached (WithMemo),
// records whose transition summary is already cached skip exploration
// entirely and fold into every live path via summary composition
// (§3.6) — byte-identical to direct exploration, pinned by the
// seed-equivalence tests against SeedExecutor.
//
// The zero Executor is not usable; construct with NewExecutor (symbolic
// start, for mappers), NewConcreteExecutor (concrete start, for the
// sequential baseline), or NewSchemaExecutor (symbolic start sharing a
// schema across the executors of one mapper).
type Executor[S State, E any] struct {
	sc      *Schema[S]
	update  func(*Ctx, S, E)
	opts    Options
	ctx     Ctx
	paths   []*pathState[S]
	scratch []*pathState[S] // recycled backing array for the next-paths slice
	memo    *Memo[S, E]
	senv    SymEnv // reused scratch for memo-fold composition
	// noForkRun counts consecutive records whose processing produced no
	// fork (every live path advanced to exactly one successor, whether by
	// exploration or by memo composition — the two are byte-identical, so
	// either observation is valid). Once the streak reaches
	// memoQuietStreak the memo is bypassed: on a non-forking stream a
	// single direct Update run is strictly cheaper than cloning and
	// composing a cached transition, and even the cache lookup is pure
	// overhead. Any fork resets the streak and re-engages the memo.
	noForkRun int
	// spare is a one-container cache in front of the schema pool. The
	// dominant record shape retires exactly one container (the replaced
	// path) and clones exactly one (its successor); handing the retired
	// container straight to the next clone skips two sync.Pool crossings
	// per record.
	spare *pathState[S]
	// fastConcrete caches "exactly one live path and it is fully
	// concrete". Concreteness is monotone within a path (no operation
	// reintroduces symbolic state; only a restart does), so once set the
	// per-record field walk is skipped entirely — the native-speed
	// execution mode of a bound state (paper §4.1).
	fastConcrete bool
	done         []*Summary[S]
	maxSeen      int
	err          error
	stats        Stats
	// eq compares two events for the batch path's run-length detection;
	// nil (after eqInit) means the event type has no cheap comparison
	// and FeedBatch never detects runs. Lazily specialized on first use.
	eq     func(E, E) bool
	eqInit bool
	// identScan counts the leading events of a vector equal to a probe
	// event. Specialized alongside eq for the concrete event types, so
	// the comparison loop runs with an inlined == instead of one eq
	// closure call per record — the batch hot loops swallow an identity
	// run in a single indirect call. nil whenever eq is nil.
	identScan func([]E, E) int
	// identCompact filters a vector's non-hot events into dst with a
	// store-then-advance loop (no data-dependent branch): the random
	// identity/advancing interleaving of a real corpus costs no branch
	// mispredicts, and the concrete tail's update loop then runs over a
	// dense, perfectly predictable vector. Specialized with identScan.
	identCompact func(dst, src []E, hot E) int
	// evBuf is identCompact's reused destination (one speculative window
	// long at most).
	evBuf []E
	// ckpt holds per-path checkpoints for FeedBatch's speculative
	// in-place windows (batch.go); reused across windows.
	ckpt []*pathState[S]
	// identEvs/identIsID cache identity verdicts per run event, scanned
	// linearly with eq (identCacheCap entries; identPos is the clock
	// hand). isIdentity walks every field against a fresh state, but the
	// verdict is a deterministic property of the event alone (transitions
	// are built from the fresh symbolic state), so one check serves every
	// later run of the same event — and a run of a known-identity event
	// is skipped outright, with no memo probe and under any regime. A
	// multi-entry cache matters: corpora interleave identity and
	// non-identity runs, and a single-entry cache thrashes between them.
	// Survives Reset for the same reason noForkRun does.
	identEvs  []E
	identIsID []bool
	identPos  int
	// identHotEv is the first identity event discovered — the one no-op
	// event that dominates a corpus (G1's push) — pinned in a dedicated
	// field so the per-record skip in feedWindow is a single eq call
	// instead of a cache scan.
	identHotEv  E
	identHotSet bool
	// ladder caches the square-and-multiply ladder of the last powered
	// run event: ladder[k] = T^(2^k) for ladderEv's transition, rungs
	// owned by the executor. The memo's transitions are key-independent
	// and one chunk's keys repeat the same run events, so after the first
	// key a powered run costs popcount(n)-1 compositions instead of a
	// full ladder rebuild. Survives Reset like the memo does.
	ladderEv E
	ladder   []*transition[S]
	// sumCache holds parked summary structs claimed from the schema's
	// free stack in blocks (refillSummaries), so the per-key Finish
	// draws one with a plain slice pop. Survives Reset.
	sumCache []*Summary[S]
}

// NewExecutor returns an executor starting from a fresh symbolic state:
// the mapper side of SYMPLE, which does not know the state its chunk will
// receive. newState must return the user's initial aggregation state (its
// concrete values are ignored here but used by summary application).
func NewExecutor[S State, E any](newState func() S, update func(*Ctx, S, E), opts Options) *Executor[S, E] {
	return NewSchemaExecutor(newSchema(newState), update, opts)
}

// NewSchemaExecutor is NewExecutor over a shared compiled schema: the
// form mappers use, so every per-key executor of a map task draws from
// one path-state pool and one field plan.
func NewSchemaExecutor[S State, E any](sc *Schema[S], update func(*Ctx, S, E), opts Options) *Executor[S, E] {
	x := &Executor[S, E]{
		sc:     sc,
		update: update,
		opts:   opts.withDefaults(),
	}
	x.paths = []*pathState[S]{sc.fresh()}
	x.maxSeen = 1
	x.stats.MaxLive = 1
	return x
}

// NewConcreteExecutor returns an executor starting from the user's
// initial concrete state. All branches resolve concretely, so exactly one
// path is ever live: this is the sequential execution of the UDA through
// the same code path, used as the correctness oracle and the Sequential
// baseline.
func NewConcreteExecutor[S State, E any](newState func() S, update func(*Ctx, S, E), opts Options) *Executor[S, E] {
	sc := newSchema(newState)
	x := &Executor[S, E]{
		sc:     sc,
		update: update,
		opts:   opts.withDefaults(),
	}
	x.paths = []*pathState[S]{wrapState(sc.newState())}
	x.maxSeen = 1
	x.stats.MaxLive = 1
	x.fastConcrete = allConcreteFields(x.paths[0].fs)
	return x
}

// WithMemo attaches a record-transition memo, which must have been built
// over the same schema the executor runs on. It returns the executor for
// chaining. Call before the first Feed.
func (x *Executor[S, E]) WithMemo(m *Memo[S, E]) *Executor[S, E] {
	if m == nil {
		return x
	}
	if m.sc != x.sc {
		panic("sym: memo schema does not match executor schema")
	}
	x.memo = m
	return x
}

// Feed processes one input record, advancing every live path. A returned
// error (path explosion, overflow) is sticky: the executor is dead.
func (x *Executor[S, E]) Feed(rec E) (err error) {
	if x.err != nil {
		return x.err
	}
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(failure)
			if !ok {
				panic(r)
			}
			x.err = f.err
			err = f.err
		}
	}()
	x.feed(rec)
	return nil
}

// FeedAll processes a batch of records with a single panic barrier and
// no per-record interface indirection: the form the mapper's batched
// per-key loop uses. Equivalent to calling Feed on each record.
func (x *Executor[S, E]) FeedAll(recs []E) (err error) {
	if x.err != nil {
		return x.err
	}
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(failure)
			if !ok {
				panic(r)
			}
			x.err = f.err
			err = f.err
		}
	}()
	for _, rec := range recs {
		x.feed(rec)
	}
	return nil
}

func (x *Executor[S, E]) feed(rec E) {
	x.stats.Records++
	if x.fastConcrete {
		x.ctx.reset()
		x.ctx.begin()
		x.stats.Runs++
		x.update(&x.ctx, x.paths[0].s, rec)
		return
	}
	var tr *transition[S]
	if x.memo != nil && x.memo.active() && x.noForkRun < memoQuietStreak {
		tr = x.lookupTransition(rec)
	}
	next := x.scratch[:0]
	for _, p := range x.paths {
		if allConcreteFields(p.fs) {
			// Fast path: no field depends on symbolic input, so Update
			// cannot fork and may run in place without cloning.
			x.ctx.reset()
			x.ctx.begin()
			x.stats.Runs++
			x.update(&x.ctx, p.s, rec)
			next = append(next, p)
			continue
		}
		if tr != nil {
			var ok bool
			next, ok = x.composeOnto(next, p, tr)
			if ok {
				x.sc.put(p)
				continue
			}
		}
		next = x.explore(next, p, rec)
		// p was replaced by its clones and is never referenced again;
		// recycle it. Sharing through CopyFrom is pointer-level and
		// copy-on-append, so reuse cannot alias live paths.
		x.recycle(p)
	}
	x.settle(next, 1)
}

// settle installs next as the live path set after records input records
// advanced every path, then applies the paper's explosion controls:
// merge as soon as the path count exceeds the previous maximum (§5.2),
// restart if still over the live cap. Shared by the scalar feed and the
// batch path (batch.go), which settles once per folded run.
func (x *Executor[S, E]) settle(next []*pathState[S], records int) {
	if len(next) > len(x.paths) {
		x.noForkRun = 0
	} else {
		x.noForkRun = min(x.noForkRun+records, memoQuietStreak)
	}
	x.scratch = x.paths
	x.paths = next

	if len(x.paths) > x.maxSeen {
		if !x.opts.DisableMerging {
			var m int
			x.paths, m = mergePathStates(x.sc, x.paths)
			x.stats.Merges += m
		}
		if len(x.paths) > x.maxSeen {
			x.maxSeen = len(x.paths)
		}
		if len(x.paths) > x.stats.MaxLive {
			x.stats.MaxLive = len(x.paths)
		}
	}
	if len(x.paths) > x.opts.MaxLivePaths {
		x.done = append(x.done, &Summary[S]{ps: x.paths, newState: x.sc.newState, sc: x.sc})
		x.paths = []*pathState[S]{x.sc.fresh()}
		x.maxSeen = 1
		x.stats.Restarts++
	}
	x.fastConcrete = len(x.paths) == 1 && allConcreteFields(x.paths[0].fs)
}

// explore runs the seed exploration loop for one symbolic path: one
// Update invocation per feasible choice vector, each on a pooled clone.
func (x *Executor[S, E]) explore(next []*pathState[S], p *pathState[S], rec E) []*pathState[S] {
	x.ctx.reset()
	for {
		x.ctx.begin()
		x.stats.Runs++
		if x.ctx.runs > x.opts.MaxRunsPerRecord {
			fail(ErrPathExplosion)
		}
		run := x.cloneOf(p)
		x.update(&x.ctx, run.s, rec)
		next = append(next, run)
		if !x.ctx.advance() {
			break
		}
	}
	return next
}

// cloneOf deep-copies p into the spare container when one is held,
// falling back to the schema pool.
func (x *Executor[S, E]) cloneOf(p *pathState[S]) *pathState[S] {
	sp := x.spare
	if sp == nil {
		return x.sc.cloneOf(p)
	}
	x.spare = nil
	for i, f := range sp.fs {
		f.CopyFrom(p.fs[i])
	}
	return sp
}

// recycle retires a container to the spare slot, overflowing to the
// schema pool. Ownership rules are identical to sc.put: the container
// must not be referenced by any live path.
func (x *Executor[S, E]) recycle(p *pathState[S]) {
	if x.spare == nil {
		x.spare = p
		return
	}
	x.sc.put(p)
}

// lookupTransition returns the record's cached transition summary,
// building and caching it on first sight. nil means the record cannot be
// folded through the memo (its transition failed to build) and must be
// explored directly.
func (x *Executor[S, E]) lookupTransition(rec E) *transition[S] {
	tr, cached := x.memo.get(rec)
	if !cached {
		x.stats.MemoMisses++
		if !x.memo.admit() {
			return nil
		}
		tr = x.buildTransition(rec)
		x.memo.add(rec, tr)
		return tr
	}
	if tr != nil {
		x.stats.MemoHits++
	} else {
		x.stats.MemoMisses++
	}
	return tr
}

// buildTransition explores the record once from a fresh symbolic state,
// producing the record's transition summary T_rec: the map from any
// pre-record state to the post-record state. Folding T_rec onto a live
// path by composition is byte-identical to exploring the record from
// that path (the decision procedures are exact, compositions are exact,
// and filtering the fresh-state path enumeration by feasibility against
// the live path preserves the lexicographic order the direct exploration
// would produce).
//
// Exploration from an unconstrained state can fail where direct
// exploration would not — more branches are feasible, so the
// MaxRunsPerRecord cap bites earlier, and user code may read a value
// that only the live path binds. Any such failure is swallowed here and
// the record reported as non-memoizable (nil).
func (x *Executor[S, E]) buildTransition(rec E) (tr *transition[S]) {
	var built []*pathState[S]
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(failure); !ok {
				panic(r)
			}
			for _, t := range built {
				x.sc.put(t)
			}
			tr = nil
		}
	}()
	base := x.sc.fresh()
	built = x.explore(built[:0], base, rec)
	x.sc.put(base)
	return &transition[S]{ps: built}
}

// composeOnto folds the cached transition onto live path p: each
// transition path is cloned from the pool and composed after p,
// infeasible combinations dropped (paper §3.6). On any composition
// failure (e.g. transfer-coefficient overflow that direct execution on
// p's concrete values would not hit) it unwinds and reports ok=false so
// the caller falls back to direct exploration; p is never mutated.
func (x *Executor[S, E]) composeOnto(next []*pathState[S], p *pathState[S], tr *transition[S]) (out []*pathState[S], ok bool) {
	base := len(next)
	defer func() {
		if r := recover(); r != nil {
			if _, isFailure := r.(failure); !isFailure {
				panic(r)
			}
			for _, c := range next[base:] {
				x.sc.put(c)
			}
			out, ok = next[:base], false
		}
	}()
	x.sc.captureSymEnv(&x.senv, p.fs)
	for _, t := range tr.ps {
		cand := x.sc.cloneOf(t)
		feasible := true
		for i, f := range cand.fs {
			if !f.ComposeAfter(p.fs[i], &x.senv) {
				feasible = false
				break
			}
		}
		if feasible {
			next = append(next, cand)
		} else {
			x.sc.put(cand)
		}
	}
	if len(next) == base {
		// A valid transition partitions the state space, so some path
		// must admit p; reaching here means the composition could not
		// represent the combination. Fall back to direct exploration.
		return next, false
	}
	return next, true
}

// Finish returns the ordered symbolic summaries for everything fed so
// far. A mapper usually produces one summary; path-explosion restarts
// produce several, composed in order at the reducer. The summary holds
// copies: the executor's own paths stay live, so feeding may continue
// after a Finish snapshot.
func (x *Executor[S, E]) Finish() ([]*Summary[S], error) {
	return x.FinishInto(make([]*Summary[S], 0, len(x.done)+1))
}

// FinishInto is Finish appending into a caller-owned slice: the form the
// per-key mapper loops use, so finishing a key costs one pool crossing
// and, in the steady state, no allocation. The summary is drawn from the
// schema's summary pool as a unit — struct, path list and the containers
// a previous Release parked in it — and the live paths' field contents
// are copied in. The executor keeps its own containers, which lets Reset
// reinitialize them in place instead of drawing fresh ones. For
// high-cardinality queries these per-key fixed costs, not the per-record
// work, bounded the mapper's execution pass.
func (x *Executor[S, E]) FinishInto(dst []*Summary[S]) ([]*Summary[S], error) {
	if x.err != nil {
		return dst, x.err
	}
	if x.spare != nil {
		x.sc.put(x.spare)
		x.spare = nil
	}
	dst = append(dst, x.done...)
	s, k := x.nextSummary(len(x.paths))
	for i, p := range x.paths {
		if i < k {
			for fi, f := range s.ps[i].fs {
				f.CopyFrom(p.fs[fi])
			}
		} else {
			s.ps[i] = x.sc.cloneOf(p)
		}
	}
	dst = append(dst, s)
	return dst, nil
}

// nextSummary draws a summary readied for n paths (see prepSummary for
// the returned prefix contract) from the executor's private cache,
// refilling the cache from the schema's free stack in blocks.
func (x *Executor[S, E]) nextSummary(n int) (*Summary[S], int) {
	if len(x.sumCache) == 0 {
		x.sumCache = x.sc.refillSummaries(x.sumCache, summaryRefill)
		if len(x.sumCache) == 0 {
			s := &Summary[S]{ps: make([]*pathState[S], n), newState: x.sc.newState, sc: x.sc}
			return s, 0
		}
	}
	s := x.sumCache[len(x.sumCache)-1]
	x.sumCache[len(x.sumCache)-1] = nil
	x.sumCache = x.sumCache[:len(x.sumCache)-1]
	return s, x.sc.prepSummary(s, n)
}

// Reset returns the executor to a fresh symbolic start for a new input
// stream, retaining its schema, memo, options, scratch buffers and
// cumulative Stats. One resettable executor can serve every group of a
// map chunk in turn — for high-cardinality queries the per-group
// constructor cost, not the per-record cost, dominated the mapper's
// symbolic-execution profile. The first live container is reinitialized
// in place (Finish copies contents out rather than taking ownership, so
// the executor always still holds its paths here); extras are recycled.
func (x *Executor[S, E]) Reset() {
	x.err = nil
	x.done = x.done[:0]
	if len(x.paths) == 0 {
		x.paths = append(x.paths, x.sc.fresh())
	} else {
		for _, p := range x.paths[1:] {
			x.sc.put(p)
		}
		x.paths = x.paths[:1]
		for i, f := range x.paths[0].fs {
			f.ResetSymbolic(i)
		}
	}
	x.maxSeen = 1
	x.fastConcrete = false
	// noForkRun deliberately survives Reset: forking behavior is a
	// property of the query's Update function and event mix, not of the
	// group, so a quiet streak learned on one group's stream carries to
	// the next. Any fork still re-engages the memo immediately.
}

// ConcreteState returns the single live state of a concrete execution.
// It errors if the executor was started symbolically or has failed.
func (x *Executor[S, E]) ConcreteState() (S, error) {
	var zero S
	if x.err != nil {
		return zero, x.err
	}
	if len(x.done) != 0 || len(x.paths) != 1 || !allConcreteFields(x.paths[0].fs) {
		return zero, fmt.Errorf("sym: executor state is symbolic (%d summaries, %d paths)",
			len(x.done), len(x.paths))
	}
	return x.paths[0].s, nil
}

// Stats returns the executor's work counters.
func (x *Executor[S, E]) Stats() Stats { return x.stats }

// LivePaths returns the number of currently live paths.
func (x *Executor[S, E]) LivePaths() int { return len(x.paths) }

// Err returns the sticky error, if any.
func (x *Executor[S, E]) Err() error { return x.err }
