package sym

import (
	"strings"

	"repro/internal/wire"
)

// SymStruct composes several symbolic values into one (paper §4.5,
// "Symbolic Struct"). The composite is itself a Value, so aggregation
// states can nest: a field of the state can be a struct of symbolic
// fields, and structs can contain structs.
//
// Like the paper — where C++'s lack of reflection forces the programmer
// to provide list_fields — the contained values are enumerated
// explicitly at construction. The contained values must be the same
// (count, order, dynamic type) across all instances produced by a state
// factory.
//
// Semantics are the product of the parts: the struct's constraint is the
// conjunction of its parts' constraints, its transfer the tuple of their
// transfers. Merging follows the engine's box rule transitively: a
// struct counts as "constraint differs in one field" only when exactly
// one nested leaf differs and that leaf unions canonically.
//
// One restriction: SymIntVector.PushInt/PushEnum resolve their symbolic
// element against top-level state fields; a scalar nested inside a
// SymStruct cannot be pushed while symbolic (push it from a top-level
// field instead).
type SymStruct struct {
	parts []Value
}

// NewSymStruct builds a composite over parts. The composite holds the
// given values by reference; callers typically pass pointers to fields
// of an enclosing Go struct.
func NewSymStruct(parts ...Value) SymStruct {
	return SymStruct{parts: parts}
}

// Parts returns the contained values.
func (v *SymStruct) Parts() []Value { return v.parts }

// ResetSymbolic implements Value. All parts share the struct's field
// index as their variable identity base; their own identities remain
// distinguishable through position, which is stable by construction.
func (v *SymStruct) ResetSymbolic(id int) {
	for _, p := range v.parts {
		p.ResetSymbolic(id)
	}
}

// CopyFrom implements Value.
func (v *SymStruct) CopyFrom(src Value) {
	s := src.(*SymStruct)
	if len(v.parts) != len(s.parts) {
		fail(ErrStateMismatch)
	}
	for i, p := range v.parts {
		p.CopyFrom(s.parts[i])
	}
}

// IsConcrete implements Value.
func (v *SymStruct) IsConcrete() bool {
	for _, p := range v.parts {
		if !p.IsConcrete() {
			return false
		}
	}
	return true
}

// SameTransfer implements Value.
func (v *SymStruct) SameTransfer(other Value) bool {
	o := other.(*SymStruct)
	if len(v.parts) != len(o.parts) {
		return false
	}
	for i, p := range v.parts {
		if !p.SameTransfer(o.parts[i]) {
			return false
		}
	}
	return true
}

// ConstraintEq implements Value.
func (v *SymStruct) ConstraintEq(other Value) bool {
	o := other.(*SymStruct)
	if len(v.parts) != len(o.parts) {
		return false
	}
	for i, p := range v.parts {
		if !p.ConstraintEq(o.parts[i]) {
			return false
		}
	}
	return true
}

// UnionConstraint implements Value: sound only when the constraints
// differ in exactly one nested part whose union is canonical (the box
// rule, applied through the nesting).
func (v *SymStruct) UnionConstraint(other Value) bool {
	o := other.(*SymStruct)
	if len(v.parts) != len(o.parts) {
		return false
	}
	diff := -1
	for i, p := range v.parts {
		if !p.ConstraintEq(o.parts[i]) {
			if diff >= 0 {
				return false
			}
			diff = i
		}
	}
	if diff < 0 {
		return true
	}
	return v.parts[diff].UnionConstraint(o.parts[diff])
}

// Admits implements Value.
func (v *SymStruct) Admits(prev Value) bool {
	p := prev.(*SymStruct)
	for i, part := range v.parts {
		if !part.Admits(p.parts[i]) {
			return false
		}
	}
	return true
}

// Concretize implements Value.
func (v *SymStruct) Concretize(prev Value, env *Env) {
	p := prev.(*SymStruct)
	for i, part := range v.parts {
		part.Concretize(p.parts[i], env)
	}
}

// ComposeAfter implements Value.
func (v *SymStruct) ComposeAfter(prev Value, senv *SymEnv) bool {
	p := prev.(*SymStruct)
	if len(v.parts) != len(p.parts) {
		fail(ErrStateMismatch)
	}
	for i, part := range v.parts {
		if !part.ComposeAfter(p.parts[i], senv) {
			return false
		}
	}
	return true
}

// Encode implements Value.
func (v *SymStruct) Encode(e *wire.Encoder) {
	for _, p := range v.parts {
		p.Encode(e)
	}
}

// Decode implements Value.
func (v *SymStruct) Decode(d *wire.Decoder) error {
	for _, p := range v.parts {
		if err := p.Decode(d); err != nil {
			return err
		}
	}
	return nil
}

// String implements Value.
func (v *SymStruct) String() string {
	parts := make([]string, len(v.parts))
	for i, p := range v.parts {
		parts[i] = p.String()
	}
	return "{" + strings.Join(parts, "; ") + "}"
}

var _ Value = (*SymStruct)(nil)
