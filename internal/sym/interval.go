package sym

// ivl is a closed int64 interval; empty iff lo > hi. The sentinels noLB
// and noUB stand for "unbounded" on the respective side: SYMPLE treats the
// symbolic input x as a mathematical integer, and a constraint touching
// the sentinel means "no constraint from that side".
type ivl struct {
	lo, hi int64
}

var emptyIvl = ivl{lo: 1, hi: 0}
var fullIvl = ivl{lo: noLB, hi: noUB}

func (i ivl) empty() bool { return i.lo > i.hi }

func (i ivl) contains(v int64) bool { return i.lo <= v && v <= i.hi }

func isect(a, b ivl) ivl {
	lo, hi := a.lo, a.hi
	if b.lo > lo {
		lo = b.lo
	}
	if b.hi < hi {
		hi = b.hi
	}
	return ivl{lo, hi}
}

// unionIvl returns the union of a and b when it is itself an interval
// (the intervals overlap or are adjacent), else ok=false. Both inputs must
// be nonempty.
func unionIvl(a, b ivl) (u ivl, ok bool) {
	if a.lo > b.lo {
		a, b = b, a
	}
	// Now a.lo <= b.lo. Union is an interval iff b.lo <= a.hi+1.
	if a.hi != noUB && b.lo > a.hi && b.lo-1 > a.hi {
		return ivl{}, false
	}
	hi := a.hi
	if b.hi > hi {
		hi = b.hi
	}
	return ivl{a.lo, hi}, true
}

// aboveExcl returns {t+1, +∞}, empty when t is the upper sentinel.
func aboveExcl(t int64) ivl {
	if t == noUB {
		return emptyIvl
	}
	return ivl{t + 1, noUB}
}

// belowExcl returns {-∞, t-1}, empty when t is the lower sentinel.
func belowExcl(t int64) ivl {
	if t == noLB {
		return emptyIvl
	}
	return ivl{noLB, t - 1}
}

// ceilDiv returns ⌈a/b⌉ for b ≠ 0. Divisibility is tested with the
// remainder rather than q·b, which can overflow near the int64 extremes.
func ceilDiv(a, b int64) int64 {
	q := floorDiv(a, b)
	if a%b != 0 {
		q++
	}
	return q
}

// preimageAffine returns the x-interval {x : lo ≤ a·x+b ≤ hi} for a ≠ 0,
// treating sentinel bounds as unbounded sides. Used when composing a later
// summary's constraint through an earlier summary's affine transfer.
func preimageAffine(a, b int64, lo, hi int64) ivl {
	res := fullIvl
	if lo != noLB {
		d := subChecked(lo, b) // a·x ≥ d
		if a > 0 {
			res = isect(res, ivl{ceilDiv(d, a), noUB})
		} else {
			res = isect(res, ivl{noLB, floorDiv(d, a)})
		}
	}
	if hi != noUB {
		d := subChecked(hi, b) // a·x ≤ d
		if a > 0 {
			res = isect(res, ivl{noLB, floorDiv(d, a)})
		} else {
			res = isect(res, ivl{ceilDiv(d, a), noUB})
		}
	}
	return res
}
