package sym

import "fmt"

// SeedExecutor is the pre-optimization symbolic executor, frozen
// verbatim: per-record Fields() walks, reflection-free but
// allocation-heavy cloning, no schema, no memoization. It is retained —
// exactly like the barrier shuffle behind Config.BarrierShuffle — as
// the byte-level equivalence oracle for the schema-compiled, memoizing
// Executor and as the benchmark baseline the symexec experiment
// measures against. Not intended for production runs.
type SeedExecutor[S State, E any] struct {
	newState     func() S
	update       func(*Ctx, S, E)
	opts         Options
	ctx          Ctx
	paths        []S
	scratch      []S // recycled backing array for the next-paths slice
	pool         []S // retired states recycled for clones
	fastConcrete bool
	done         []*Summary[S]
	maxSeen      int
	err          error
	stats        Stats
}

// NewSeedExecutor returns a seed-engine executor starting from a fresh
// symbolic state, the mapper side of SYMPLE.
func NewSeedExecutor[S State, E any](newState func() S, update func(*Ctx, S, E), opts Options) *SeedExecutor[S, E] {
	x := &SeedExecutor[S, E]{
		newState: newState,
		update:   update,
		opts:     opts.withDefaults(),
	}
	x.paths = []S{freshSymbolic(newState)}
	x.maxSeen = 1
	x.stats.MaxLive = 1
	return x
}

// Feed processes one input record, advancing every live path. A returned
// error (path explosion, overflow) is sticky: the executor is dead.
func (x *SeedExecutor[S, E]) Feed(rec E) (err error) {
	if x.err != nil {
		return x.err
	}
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(failure)
			if !ok {
				panic(r)
			}
			x.err = f.err
			err = f.err
		}
	}()
	x.feed(rec)
	return nil
}

func (x *SeedExecutor[S, E]) feed(rec E) {
	x.stats.Records++
	if x.fastConcrete {
		x.ctx.reset()
		x.ctx.begin()
		x.stats.Runs++
		x.update(&x.ctx, x.paths[0], rec)
		return
	}
	next := x.scratch[:0]
	for _, p := range x.paths {
		if allConcrete(p) {
			x.ctx.reset()
			x.ctx.begin()
			x.stats.Runs++
			x.update(&x.ctx, p, rec)
			next = append(next, p)
			continue
		}
		x.ctx.reset()
		for {
			x.ctx.begin()
			x.stats.Runs++
			if x.ctx.runs > x.opts.MaxRunsPerRecord {
				fail(ErrPathExplosion)
			}
			run := x.clone(p)
			x.update(&x.ctx, run, rec)
			next = append(next, run)
			if !x.ctx.advance() {
				break
			}
		}
		x.pool = append(x.pool, p)
	}
	x.scratch = x.paths
	x.paths = next

	if len(x.paths) > x.maxSeen {
		if !x.opts.DisableMerging {
			var m int
			x.paths, m = mergeAll(x.paths)
			x.stats.Merges += m
		}
		if len(x.paths) > x.maxSeen {
			x.maxSeen = len(x.paths)
		}
		if len(x.paths) > x.stats.MaxLive {
			x.stats.MaxLive = len(x.paths)
		}
	}
	if len(x.paths) > x.opts.MaxLivePaths {
		x.done = append(x.done, NewSummary(x.newState, x.paths))
		x.paths = []S{freshSymbolic(x.newState)}
		x.maxSeen = 1
		x.stats.Restarts++
	}
	x.fastConcrete = len(x.paths) == 1 && allConcrete(x.paths[0])
}

// clone deep-copies src into a pooled or fresh state.
func (x *SeedExecutor[S, E]) clone(src S) S {
	var dst S
	if n := len(x.pool); n > 0 {
		dst = x.pool[n-1]
		x.pool = x.pool[:n-1]
	} else {
		dst = x.newState()
	}
	df, sf := dst.Fields(), src.Fields()
	if len(df) != len(sf) {
		fail(ErrStateMismatch)
	}
	for i := range df {
		df[i].CopyFrom(sf[i])
	}
	return dst
}

// Finish returns the ordered symbolic summaries for everything fed so
// far.
func (x *SeedExecutor[S, E]) Finish() ([]*Summary[S], error) {
	if x.err != nil {
		return nil, x.err
	}
	out := make([]*Summary[S], 0, len(x.done)+1)
	out = append(out, x.done...)
	out = append(out, NewSummary(x.newState, x.paths))
	return out, nil
}

// ConcreteState returns the single live state of a concrete execution.
func (x *SeedExecutor[S, E]) ConcreteState() (S, error) {
	var zero S
	if x.err != nil {
		return zero, x.err
	}
	if len(x.done) != 0 || len(x.paths) != 1 || !allConcrete(x.paths[0]) {
		return zero, fmt.Errorf("sym: executor state is symbolic (%d summaries, %d paths)",
			len(x.done), len(x.paths))
	}
	return x.paths[0], nil
}

// Stats returns the executor's work counters.
func (x *SeedExecutor[S, E]) Stats() Stats { return x.stats }

// LivePaths returns the number of currently live paths.
func (x *SeedExecutor[S, E]) LivePaths() int { return len(x.paths) }

// Err returns the sticky error, if any.
func (x *SeedExecutor[S, E]) Err() error { return x.err }
