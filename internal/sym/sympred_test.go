package sym

import (
	"testing"

	"repro/internal/wire"
)

// withinTen is a black-box predicate: |held - arg| < 10.
func withinTen(held, arg int64) bool {
	d := held - arg
	if d < 0 {
		d = -d
	}
	return d < 10
}

type predState struct {
	Prev  SymPred[int64]
	Count SymInt
	Out   SymIntVector
}

func (s *predState) Fields() []Value { return []Value{&s.Prev, &s.Count, &s.Out} }

func newPredState() *predState {
	return &predState{
		Prev:  NewSymPred(withinTen, Int64Codec(), 0),
		Count: NewSymInt(0),
	}
}

// sessionUpdate is the paper's §4.4 sessionization pattern with a window
// of one: count events within "sessions" of nearby values.
func sessionUpdate(ctx *Ctx, s *predState, e int64) {
	if s.Prev.EvalPred(ctx, e) {
		s.Count.Inc()
	} else {
		s.Out.PushInt(&s.Count)
		s.Count.Set(0)
	}
	s.Prev.SetValue(e)
}

// sessionConcrete is the independent concrete oracle.
func sessionConcrete(init int64, initCount int64, events []int64) (prev, count int64, out []int64) {
	prev, count = init, initCount
	for _, e := range events {
		if withinTen(prev, e) {
			count++
		} else {
			out = append(out, count)
			count = 0
		}
		prev = e
	}
	return prev, count, out
}

func TestSymPredWindowedBlowupIsTwo(t *testing.T) {
	x := NewExecutor(newPredState, sessionUpdate, DefaultOptions())
	for _, e := range []int64{3, 8, 50, 55, 200} {
		if err := x.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	// The blind fork happens only on the first record: prev is assigned
	// concretely in both branches, so the path count stays at 2.
	if got := x.LivePaths(); got != 2 {
		t.Fatalf("got %d live paths, want 2 (windowed dependence)", got)
	}
	sums, err := x.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for _, init := range []int64{0, 5, 400, -3} {
		wantPrev, wantCount, wantOut := sessionConcrete(init, 7, []int64{3, 8, 50, 55, 200})
		start := newPredState()
		start.Prev.SetValue(init)
		start.Count.Set(7)
		got, err := sums[0].ApplyStrict(start)
		if err != nil {
			t.Fatalf("init %d: %v", init, err)
		}
		if g := got.Prev.Get(); g != wantPrev {
			t.Errorf("init %d: prev %d, want %d", init, g, wantPrev)
		}
		if g := got.Count.Get(); g != wantCount {
			t.Errorf("init %d: count %d, want %d", init, g, wantCount)
		}
		gotOut := got.Out.Elems()
		if len(gotOut) != len(wantOut) {
			t.Fatalf("init %d: out %v, want %v", init, gotOut, wantOut)
		}
		for i := range wantOut {
			if gotOut[i] != wantOut[i] {
				t.Errorf("init %d: out[%d] = %d, want %d", init, i, gotOut[i], wantOut[i])
			}
		}
	}
}

func TestSymPredSymbolicPushResolved(t *testing.T) {
	// The else branch of the first record pushes Count while Count is
	// still symbolic x+0; composition must resolve it to the initial
	// count (the paper's "appending a symbolic count" example).
	x := NewExecutor(newPredState, sessionUpdate, DefaultOptions())
	if err := x.Feed(int64(1000)); err != nil {
		t.Fatal(err)
	}
	sums, _ := x.Finish()
	start := newPredState()
	start.Prev.SetValue(0) // far from 1000: predicate false, count pushed
	start.Count.Set(42)
	got, err := sums[0].ApplyStrict(start)
	if err != nil {
		t.Fatal(err)
	}
	out := got.Out.Elems()
	if len(out) != 1 || out[0] != 42 {
		t.Fatalf("out = %v, want [42]", out)
	}
	if got.Count.Get() != 0 {
		t.Fatalf("count = %d, want 0", got.Count.Get())
	}
}

func TestSymPredAssumptionsDistinguishPaths(t *testing.T) {
	p1 := NewSymPred(withinTen, Int64Codec(), 0)
	p1.ResetSymbolic(0)
	p2 := NewSymPred(withinTen, Int64Codec(), 0)
	p2.ResetSymbolic(0)
	var ctx1, ctx2 Ctx
	ctx1.choices = []choice{{0, 2}}
	ctx2.choices = []choice{{1, 2}}
	p1.EvalPred(&ctx1, 100)
	p2.EvalPred(&ctx2, 100)
	if p1.ConstraintEq(&p2) {
		t.Fatal("opposite assumptions compare equal")
	}
	if p1.UnionConstraint(&p2) {
		t.Fatal("differing assumptions must not union")
	}
	near := NewSymPred(withinTen, Int64Codec(), 95)
	far := NewSymPred(withinTen, Int64Codec(), 0)
	if !p1.Admits(&near) || p1.Admits(&far) {
		t.Error("p1 (assumed true) admits wrong values")
	}
	if p2.Admits(&near) || !p2.Admits(&far) {
		t.Error("p2 (assumed false) admits wrong values")
	}
}

func TestSymPredCopyOnAppend(t *testing.T) {
	base := NewSymPred(withinTen, Int64Codec(), 0)
	base.ResetSymbolic(0)
	var ctx Ctx
	ctx.choices = []choice{{0, 2}}
	base.EvalPred(&ctx, 1)

	var c1, c2 SymPred[int64]
	c1.CopyFrom(&base)
	c2.CopyFrom(&base)
	ctx1 := Ctx{choices: []choice{{0, 2}}}
	ctx2 := Ctx{choices: []choice{{1, 2}}}
	c1.EvalPred(&ctx1, 2)
	c2.EvalPred(&ctx2, 3)
	if len(c1.assumps) != 2 || len(c2.assumps) != 2 {
		t.Fatal("assumption counts wrong")
	}
	if c1.assumps[1].arg != 2 || c2.assumps[1].arg != 3 {
		t.Fatal("appends leaked across copies")
	}
	if len(base.assumps) != 1 {
		t.Fatal("base mutated")
	}
}

func TestSymPredEncodeDecode(t *testing.T) {
	p := NewSymPred(withinTen, Int64Codec(), 0)
	p.ResetSymbolic(3)
	var ctx Ctx
	ctx.choices = []choice{{1, 2}}
	p.EvalPred(&ctx, 77)

	e := wire.NewEncoder(0)
	p.Encode(e)
	got := NewSymPred(withinTen, Int64Codec(), 0)
	if err := got.Decode(wire.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got.bound || got.id != 3 || len(got.assumps) != 1 {
		t.Fatalf("decoded: %+v", got)
	}
	if got.assumps[0].arg != 77 || got.assumps[0].outcome {
		t.Fatalf("assumption: %+v", got.assumps[0])
	}

	// Decoding into a receiver without pred/codec must error.
	var bare SymPred[int64]
	if err := bare.Decode(wire.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("expected error decoding without codec")
	}
}
