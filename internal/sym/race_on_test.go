//go:build race

package sym

// raceEnabled lets pool-bound assertions stand down under the race
// detector, where sync.Pool deliberately drops a fraction of Puts.
const raceEnabled = true
