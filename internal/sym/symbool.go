package sym

import (
	"fmt"

	"repro/internal/wire"
)

// SymBool is the symbolic version of a boolean: a SymEnum over the
// two-element domain {false, true} with boolean-flavoured operations
// (paper §4.2).
type SymBool struct {
	e SymEnum
}

const (
	boolFalse = 0
	boolTrue  = 1
)

// NewSymBool returns a SymBool bound to the concrete initial value v.
func NewSymBool(v bool) SymBool {
	c := int64(boolFalse)
	if v {
		c = boolTrue
	}
	return SymBool{e: NewSymEnum(2, c)}
}

// IsTrue reports whether the value is true, forking when both outcomes
// are feasible.
func (b *SymBool) IsTrue(ctx *Ctx) bool { return b.e.Eq(ctx, boolTrue) }

// IsFalse reports whether the value is false.
func (b *SymBool) IsFalse(ctx *Ctx) bool { return b.e.Eq(ctx, boolFalse) }

// Set binds the value to the concrete constant v.
func (b *SymBool) Set(v bool) {
	if v {
		b.e.Set(boolTrue)
	} else {
		b.e.Set(boolFalse)
	}
}

// Get returns the concrete value, aborting the path if still symbolic.
func (b *SymBool) Get() bool { return b.e.Get() == boolTrue }

// TryGet returns the concrete value and whether the bool is bound.
func (b *SymBool) TryGet() (bool, bool) {
	c, ok := b.e.TryGet()
	return c == boolTrue, ok
}

// ResetSymbolic implements Value.
func (b *SymBool) ResetSymbolic(id int) {
	b.e.n = 2
	b.e.ResetSymbolic(id)
}

// CopyFrom implements Value.
func (b *SymBool) CopyFrom(src Value) { b.e.CopyFrom(&src.(*SymBool).e) }

// IsConcrete implements Value.
func (b *SymBool) IsConcrete() bool { return b.e.IsConcrete() }

// SameTransfer implements Value.
func (b *SymBool) SameTransfer(other Value) bool {
	return b.e.SameTransfer(&other.(*SymBool).e)
}

// ConstraintEq implements Value.
func (b *SymBool) ConstraintEq(other Value) bool {
	return b.e.ConstraintEq(&other.(*SymBool).e)
}

// UnionConstraint implements Value.
func (b *SymBool) UnionConstraint(other Value) bool {
	return b.e.UnionConstraint(&other.(*SymBool).e)
}

// Admits implements Value.
func (b *SymBool) Admits(prev Value) bool {
	return b.e.Admits(&prev.(*SymBool).e)
}

// Concretize implements Value.
func (b *SymBool) Concretize(prev Value, env *Env) {
	b.e.Concretize(&prev.(*SymBool).e, env)
}

// ComposeAfter implements Value.
func (b *SymBool) ComposeAfter(prev Value, senv *SymEnv) bool {
	return b.e.ComposeAfter(&prev.(*SymBool).e, senv)
}

// concreteInput implements scalarInput.
func (b *SymBool) concreteInput() (int64, bool) { return b.e.concreteInput() }

// transfer implements scalarTransfer.
func (b *SymBool) transfer() (bool, int64, int64) { return b.e.transfer() }

// Encode implements Value.
func (b *SymBool) Encode(e *wire.Encoder) { b.e.Encode(e) }

// Decode implements Value.
func (b *SymBool) Decode(d *wire.Decoder) error {
	b.e.n = 2
	return b.e.Decode(d)
}

// String implements Value.
func (b *SymBool) String() string {
	c, ok := b.e.TryGet()
	if ok {
		return fmt.Sprintf("%s ⇒ %t", b.constraintString(), c == boolTrue)
	}
	return fmt.Sprintf("%s ⇒ x%d", b.constraintString(), b.e.id)
}

func (b *SymBool) constraintString() string {
	hasF, hasT := b.e.set.has(boolFalse), b.e.set.has(boolTrue)
	switch {
	case hasF && hasT:
		return "true"
	case hasT:
		return fmt.Sprintf("x%d", b.e.id)
	case hasF:
		return fmt.Sprintf("¬x%d", b.e.id)
	default:
		return "false"
	}
}

var _ Value = (*SymBool)(nil)
