package sym

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/wire"
)

// intState is a single-SymInt aggregation state for focused tests.
type intState struct {
	V SymInt
}

func (s *intState) Fields() []Value { return []Value{&s.V} }

func newIntState(init int64) func() *intState {
	return func() *intState { return &intState{V: NewSymInt(init)} }
}

// intOp is one step of a random straight-line SymInt program.
type intOp struct {
	kind int // 0 add, 1 mul, 2 set, 3 cmpLt, 4 cmpLe, 5 cmpEq, 6 cmpGt
	c    int64
	then intAct // action when comparison true
	els  intAct // action when comparison false
}

type intAct struct {
	kind int // 0 nothing, 1 add, 2 set
	c    int64
}

func applyAct(ctx *Ctx, v *SymInt, a intAct) {
	switch a.kind {
	case 1:
		v.Add(a.c)
	case 2:
		v.Set(a.c)
	}
}

func applyActConcrete(v *int64, a intAct) {
	switch a.kind {
	case 1:
		*v += a.c
	case 2:
		*v = a.c
	}
}

func runSymProgram(ctx *Ctx, s *intState, ops []intOp) {
	for _, op := range ops {
		switch op.kind {
		case 0:
			s.V.Add(op.c)
		case 1:
			s.V.Mul(op.c)
		case 2:
			s.V.Set(op.c)
		case 3, 4, 5, 6:
			var taken bool
			switch op.kind {
			case 3:
				taken = s.V.Lt(ctx, op.c)
			case 4:
				taken = s.V.Le(ctx, op.c)
			case 5:
				taken = s.V.Eq(ctx, op.c)
			case 6:
				taken = s.V.Gt(ctx, op.c)
			}
			if taken {
				applyAct(ctx, &s.V, op.then)
			} else {
				applyAct(ctx, &s.V, op.els)
			}
		}
	}
}

func runConcreteProgram(x int64, ops []intOp) int64 {
	v := x
	for _, op := range ops {
		switch op.kind {
		case 0:
			v += op.c
		case 1:
			v *= op.c
		case 2:
			v = op.c
		case 3, 4, 5, 6:
			var taken bool
			switch op.kind {
			case 3:
				taken = v < op.c
			case 4:
				taken = v <= op.c
			case 5:
				taken = v == op.c
			case 6:
				taken = v > op.c
			}
			if taken {
				applyActConcrete(&v, op.then)
			} else {
				applyActConcrete(&v, op.els)
			}
		}
	}
	return v
}

func randAct(r *rand.Rand) intAct {
	return intAct{kind: r.Intn(3), c: int64(r.Intn(21) - 10)}
}

func randOps(r *rand.Rand, n int) []intOp {
	ops := make([]intOp, n)
	for i := range ops {
		k := r.Intn(7)
		ops[i] = intOp{kind: k, c: int64(r.Intn(41) - 20), then: randAct(r), els: randAct(r)}
		if k == 1 {
			// Keep multipliers small to stay far from overflow.
			ops[i].c = int64(r.Intn(5) - 2)
		}
	}
	return ops
}

// TestSymIntProgramOracle is the core soundness property for SymInt: a
// random straight-line program with state-dependent branches, executed
// symbolically as one "record", must summarize to exactly the concrete
// execution for every initial value.
func TestSymIntProgramOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		ops := randOps(r, 1+r.Intn(8))
		x := NewExecutor(newIntState(0), func(ctx *Ctx, s *intState, _ struct{}) {
			runSymProgram(ctx, s, ops)
		}, Options{MaxLivePaths: 1 << 20, MaxRunsPerRecord: 1 << 20})
		if err := x.Feed(struct{}{}); err != nil {
			t.Fatalf("trial %d: feed: %v", trial, err)
		}
		sums, err := x.Finish()
		if err != nil {
			t.Fatalf("trial %d: finish: %v", trial, err)
		}
		if len(sums) != 1 {
			t.Fatalf("trial %d: got %d summaries, want 1", trial, len(sums))
		}
		for _, init := range []int64{-100, -21, -20, -1, 0, 1, 5, 19, 20, 21, 100, int64(r.Intn(1000) - 500)} {
			want := runConcreteProgram(init, ops)
			got, err := sums[0].ApplyStrict(&intState{V: NewSymInt(init)})
			if err != nil {
				t.Fatalf("trial %d init %d: apply: %v\nops: %+v\n%s", trial, init, err, ops, sums[0])
			}
			if g := got.V.Get(); g != want {
				t.Fatalf("trial %d init %d: got %d, want %d\nops: %+v\n%s", trial, init, g, want, ops, sums[0])
			}
		}
	}
}

// TestMaxSummaryShape reproduces the paper's §3.5 running example: the
// Max UDA over chunk [5,3,10] must summarize, after merging, to
// x<10 ⇒ 10 ∧ x≥10 ⇒ x.
func TestMaxSummaryShape(t *testing.T) {
	maxUpdate := func(ctx *Ctx, s *intState, e int64) {
		if s.V.Lt(ctx, e) {
			s.V.Set(e)
		}
	}
	x := NewExecutor(newIntState(math.MinInt64), maxUpdate, DefaultOptions())
	for _, e := range []int64{5, 3, 10} {
		if err := x.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	sums, err := x.Finish()
	if err != nil {
		t.Fatal(err)
	}
	s := sums[0]
	if s.NumPaths() != 2 {
		t.Fatalf("got %d paths, want 2:\n%s", s.NumPaths(), s)
	}
	// One path: x ≤ 9 ⇒ 10 (bound); other: x ≥ 10 ⇒ x (identity).
	var sawBound, sawIdent bool
	for _, p := range s.Paths() {
		v := &p.V
		if v.bound {
			if v.b != 10 || v.ub != 9 || v.lb != noLB {
				t.Errorf("bound path wrong: %s", v)
			}
			sawBound = true
		} else {
			if v.a != 1 || v.b != 0 || v.lb != 10 || v.ub != noUB {
				t.Errorf("identity path wrong: %s", v)
			}
			sawIdent = true
		}
	}
	if !sawBound || !sawIdent {
		t.Fatalf("missing expected paths:\n%s", s)
	}

	// Composing onto concrete 9 (the first chunk's max) gives 10;
	// onto 42 gives 42.
	for _, c := range []struct{ in, want int64 }{{9, 10}, {42, 42}, {10, 10}, {11, 11}} {
		got, err := s.ApplyStrict(&intState{V: NewSymInt(c.in)})
		if err != nil {
			t.Fatal(err)
		}
		if g := got.V.Get(); g != c.want {
			t.Errorf("apply(%d): got %d, want %d", c.in, g, c.want)
		}
	}
}

func TestSymIntComparisonsConcrete(t *testing.T) {
	var ctx Ctx
	v := NewSymInt(7)
	if !v.Lt(&ctx, 8) || v.Lt(&ctx, 7) || v.Lt(&ctx, 6) {
		t.Error("Lt on bound value wrong")
	}
	if !v.Le(&ctx, 7) || v.Le(&ctx, 6) {
		t.Error("Le on bound value wrong")
	}
	if !v.Gt(&ctx, 6) || v.Gt(&ctx, 7) {
		t.Error("Gt on bound value wrong")
	}
	if !v.Ge(&ctx, 7) || v.Ge(&ctx, 8) {
		t.Error("Ge on bound value wrong")
	}
	if !v.Eq(&ctx, 7) || v.Eq(&ctx, 8) {
		t.Error("Eq on bound value wrong")
	}
	if !v.Ne(&ctx, 8) || v.Ne(&ctx, 7) {
		t.Error("Ne on bound value wrong")
	}
}

func TestSymIntArithmetic(t *testing.T) {
	v := NewSymInt(10)
	v.Add(5)
	v.Sub(3)
	v.Inc()
	v.Dec()
	v.Mul(2)
	if got := v.Get(); got != 24 {
		t.Fatalf("got %d, want 24", got)
	}
	v.Neg()
	if got := v.Get(); got != -24 {
		t.Fatalf("got %d, want -24", got)
	}
	v.Mul(0)
	if got := v.Get(); got != 0 {
		t.Fatalf("got %d, want 0", got)
	}
}

func TestSymIntRescaled(t *testing.T) {
	var v SymInt
	v.ResetSymbolic(0)
	r := v.Rescaled(-1, 100) // 100 - x
	if r.a != -1 || r.b != 100 || r.bound {
		t.Fatalf("rescaled: %+v", r)
	}
	if v.a != 1 || v.b != 0 {
		t.Fatal("Rescaled mutated receiver")
	}
	b := NewSymInt(30)
	rb := b.Rescaled(-1, 100)
	if got := rb.Get(); got != 70 {
		t.Fatalf("got %d, want 70", got)
	}
}

func TestSymIntSymbolicSplit(t *testing.T) {
	// value = 2x+1, branch on < 10: true iff x ≤ 4.
	run := func(takeTrue bool) *SymInt {
		var v SymInt
		v.ResetSymbolic(0)
		v.Mul(2)
		v.Add(1)
		var ctx Ctx
		if takeTrue {
			ctx.choices = []choice{{0, 2}}
		} else {
			ctx.choices = []choice{{1, 2}}
		}
		v.Lt(&ctx, 10)
		return &v
	}
	tv := run(true)
	if tv.lb != noLB || tv.ub != 4 {
		t.Errorf("true side: [%d,%d], want [-inf,4]", tv.lb, tv.ub)
	}
	fv := run(false)
	if fv.lb != 5 || fv.ub != noUB {
		t.Errorf("false side: [%d,%d], want [5,+inf]", fv.lb, fv.ub)
	}
}

func TestSymIntNegativeCoefficientSplit(t *testing.T) {
	// value = -3x+2 < 5  ⇔  -3x < 3  ⇔  x > -1  ⇔  x ≥ 0.
	var v SymInt
	v.ResetSymbolic(0)
	v.Mul(-3)
	v.Add(2)
	tIv, fIv := v.splitLt(5)
	if tIv.lo != 0 || tIv.hi != noUB {
		t.Errorf("true side [%d,%d], want [0,+inf]", tIv.lo, tIv.hi)
	}
	if fIv.lo != noLB || fIv.hi != -1 {
		t.Errorf("false side [%d,%d], want [-inf,-1]", fIv.lo, fIv.hi)
	}
}

func TestSymIntEqThreeWaySplit(t *testing.T) {
	var v SymInt
	v.ResetSymbolic(0)
	x := NewExecutor(newIntState(0), func(ctx *Ctx, s *intState, _ struct{}) {
		if s.V.Eq(ctx, 5) {
			s.V.Set(100)
		} else {
			s.V.Set(200)
		}
	}, Options{DisableMerging: true})
	if err := x.Feed(struct{}{}); err != nil {
		t.Fatal(err)
	}
	if got := x.LivePaths(); got != 3 {
		t.Fatalf("got %d paths, want 3 (below, equal, above)", got)
	}
	sums, _ := x.Finish()
	for _, c := range []struct{ in, want int64 }{{4, 200}, {5, 100}, {6, 200}} {
		got, err := sums[0].ApplyStrict(&intState{V: NewSymInt(c.in)})
		if err != nil {
			t.Fatal(err)
		}
		if g := got.V.Get(); g != c.want {
			t.Errorf("apply(%d): got %d, want %d", c.in, g, c.want)
		}
	}
}

func TestSymIntEqNotDivisible(t *testing.T) {
	// value = 2x: Eq(5) is never true; no fork should occur.
	var v SymInt
	v.ResetSymbolic(0)
	v.Mul(2)
	var ctx Ctx
	if v.Eq(&ctx, 5) {
		t.Fatal("2x == 5 reported true")
	}
	if len(ctx.choices) != 0 {
		t.Fatal("infeasible Eq forked")
	}
}

func TestSymIntMergeAdjacent(t *testing.T) {
	a, b := NewSymInt(10), NewSymInt(10)
	a.lb, a.ub = noLB, 4
	b.lb, b.ub = 5, 9
	if !a.UnionConstraint(&b) {
		t.Fatal("adjacent intervals did not merge")
	}
	if a.lb != noLB || a.ub != 9 {
		t.Fatalf("merged to [%d,%d]", a.lb, a.ub)
	}
}

func TestSymIntMergeDisjointFails(t *testing.T) {
	a, b := NewSymInt(10), NewSymInt(10)
	a.lb, a.ub = 0, 3
	b.lb, b.ub = 5, 9
	if a.UnionConstraint(&b) {
		t.Fatal("disjoint non-adjacent intervals merged")
	}
	if a.lb != 0 || a.ub != 3 {
		t.Fatal("failed union mutated receiver")
	}
}

func TestSymIntEncodeDecode(t *testing.T) {
	cases := []SymInt{
		{id: 3, bound: true, b: 42, lb: noLB, ub: noUB},
		{id: 0, a: 2, b: -7, lb: -100, ub: 100},
		{id: 7, a: -1, b: 0, lb: 5, ub: noUB},
		{id: 1, a: 1, b: math.MaxInt64, lb: noLB, ub: -1},
	}
	for i, c := range cases {
		e := wire.NewEncoder(0)
		c.Encode(e)
		var got SymInt
		if err := got.Decode(wire.NewDecoder(e.Bytes())); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c {
			t.Errorf("case %d: got %+v, want %+v", i, got, c)
		}
	}
}

func TestSymIntDecodeRejectsZeroCoefficient(t *testing.T) {
	e := wire.NewEncoder(0)
	e.Byte(0) // not bound, no lb, no ub
	e.Uvarint(0)
	e.Varint(5) // b
	e.Varint(0) // a = 0: invalid for symbolic
	var v SymInt
	if err := v.Decode(wire.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("expected error for zero symbolic coefficient")
	}
}

func TestSymIntOverflow(t *testing.T) {
	x := NewExecutor(newIntState(0), func(ctx *Ctx, s *intState, _ struct{}) {
		s.V.Set(math.MaxInt64)
		s.V.Add(1)
	}, DefaultOptions())
	err := x.Feed(struct{}{})
	if !errors.Is(err, ErrOverflow) {
		t.Fatalf("got %v, want ErrOverflow", err)
	}
	// Error is sticky.
	if err := x.Feed(struct{}{}); !errors.Is(err, ErrOverflow) {
		t.Fatalf("sticky error lost: %v", err)
	}
	if _, err := x.Finish(); !errors.Is(err, ErrOverflow) {
		t.Fatalf("finish after error: %v", err)
	}
}

func TestSymIntGetSymbolicFails(t *testing.T) {
	x := NewExecutor(newIntState(0), func(ctx *Ctx, s *intState, _ struct{}) {
		s.V.Get() // symbolic at chunk start: must abort
	}, DefaultOptions())
	if err := x.Feed(struct{}{}); !errors.Is(err, ErrSymbolicRead) {
		t.Fatalf("got %v, want ErrSymbolicRead", err)
	}
}

func TestSymIntExtremeConstants(t *testing.T) {
	// Comparisons against extreme constants on identity transfer.
	probe := func(c int64, f func(ctx *Ctx, v *SymInt) bool) (tEmpty, fEmpty bool) {
		var v SymInt
		v.ResetSymbolic(0)
		x := NewExecutor(newIntState(0), func(ctx *Ctx, s *intState, _ struct{}) {
			f(ctx, &s.V)
		}, Options{DisableMerging: true})
		if err := x.Feed(struct{}{}); err != nil {
			t.Fatalf("feed: %v", err)
		}
		return false, x.LivePaths() == 1
	}
	// x < MinInt64 is never true: single path.
	if _, single := probe(math.MinInt64, func(ctx *Ctx, v *SymInt) bool { return v.Lt(ctx, math.MinInt64) }); !single {
		t.Error("x < MinInt64 forked")
	}
	// x ≤ MaxInt64 is always true: single path.
	if _, single := probe(math.MaxInt64, func(ctx *Ctx, v *SymInt) bool { return v.Le(ctx, math.MaxInt64) }); !single {
		t.Error("x ≤ MaxInt64 forked")
	}
	// x ≥ MinInt64 is always true: single path.
	if _, single := probe(math.MinInt64, func(ctx *Ctx, v *SymInt) bool { return v.Ge(ctx, math.MinInt64) }); !single {
		t.Error("x ≥ MinInt64 forked")
	}
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct{ a, b, floor, ceil int64 }{
		{10, 3, 3, 4},
		{9, 3, 3, 3},
		{-10, 3, -4, -3},
		{-9, 3, -3, -3},
		{10, -3, -4, -3},
		{-10, -3, 3, 4},
		{0, 5, 0, 0},
		{math.MinInt64, 2, math.MinInt64 / 2, math.MinInt64 / 2},
		{math.MinInt64, 3, -3074457345618258603, -3074457345618258602},
		{math.MaxInt64, 1, math.MaxInt64, math.MaxInt64},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.floor {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.floor)
		}
		if got := ceilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
	}
}

func TestFloorDivMinByMinusOne(t *testing.T) {
	defer func() {
		r := recover()
		f, ok := r.(failure)
		if !ok || !errors.Is(f.err, ErrOverflow) {
			t.Fatalf("got %v, want ErrOverflow failure", r)
		}
	}()
	floorDiv(math.MinInt64, -1)
}
