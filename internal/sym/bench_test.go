package sym

import (
	"math"
	"testing"

	"repro/internal/wire"
)

// Micro-benchmarks of the engine's hot paths: the per-record costs the
// paper's §6.2 multi-core evaluation is made of.

func BenchmarkSymIntLtConcrete(b *testing.B) {
	v := NewSymInt(7)
	var ctx Ctx
	for i := 0; i < b.N; i++ {
		_ = v.Lt(&ctx, int64(i&1023))
	}
}

func BenchmarkSymIntLtSymbolicForced(b *testing.B) {
	// Constraint already implies the outcome: decision without forking.
	var v SymInt
	v.ResetSymbolic(0)
	var ctx Ctx
	ctx.choices = []choice{{0, 2}}
	v.Lt(&ctx, 100) // narrow to x ≤ 99
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Lt(&ctx, 200) // always true under x ≤ 99
	}
}

func BenchmarkSymEnumEqConcrete(b *testing.B) {
	v := NewSymEnum(16, 3)
	var ctx Ctx
	for i := 0; i < b.N; i++ {
		_ = v.Eq(&ctx, int64(i&15))
	}
}

func BenchmarkSymPredEvalConcrete(b *testing.B) {
	p := NewSymPred(withinTen, Int64Codec(), 5)
	var ctx Ctx
	for i := 0; i < b.N; i++ {
		_ = p.EvalPred(&ctx, int64(i&63))
	}
}

func BenchmarkEngineFeedMaxSymbolic(b *testing.B) {
	x := NewExecutor(newIntState(math.MinInt64), maxUpdate, DefaultOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.Feed(int64(i % 512)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineFeedMaxConcrete(b *testing.B) {
	x := NewConcreteExecutor(newIntState(math.MinInt64), maxUpdate, DefaultOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.Feed(int64(i % 512)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineFeedFunnelSymbolic(b *testing.B) {
	// The Figure 1 UDA: three fields, bool+int+vector.
	x := NewExecutor(newFunnelState, funnelUpdate, DefaultOptions())
	items := []string{"a", "b"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := funnelEvent{kind: i & 3, item: items[i&1]}
		if err := x.Feed(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineFeedSessionPred(b *testing.B) {
	// The §4.4 windowed-dependence UDA (SymPred, two live paths).
	x := NewExecutor(newPredState, sessionUpdate, DefaultOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.Feed(int64(i * 3 % 1000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSymExec is the symexec hot-loop benchmark the CI smoke
// tracks: the per-record cost of the seed engine vs the compiled-schema
// engine, bare and memoized, on the max UDA over a skewed event stream.
func BenchmarkSymExec(b *testing.B) {
	feedLoop := func(b *testing.B, x interface {
		Feed(int64) error
	}) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := x.Feed(int64(i % 512)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("seed", func(b *testing.B) {
		feedLoop(b, NewSeedExecutor(newIntState(math.MinInt64), maxUpdate, DefaultOptions()))
	})
	b.Run("fast", func(b *testing.B) {
		feedLoop(b, NewExecutor(newIntState(math.MinInt64), maxUpdate, DefaultOptions()))
	})
	b.Run("memo", func(b *testing.B) {
		sc := newSchema(newIntState(math.MinInt64))
		x := NewSchemaExecutor(sc, maxUpdate, DefaultOptions()).
			WithMemo(NewMemo[*intState, int64](sc, DefaultMemoSize))
		feedLoop(b, x)
	})
}

func BenchmarkSummaryEncode(b *testing.B) {
	x := NewExecutor(newFunnelState, funnelUpdate, DefaultOptions())
	for i := 0; i < 200; i++ {
		if err := x.Feed(funnelEvent{kind: i & 3, item: "t"}); err != nil {
			b.Fatal(err)
		}
	}
	sums, err := x.Finish()
	if err != nil {
		b.Fatal(err)
	}
	e := wire.NewEncoder(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		sums[0].Encode(e)
	}
	b.SetBytes(int64(e.Len()))
}

func BenchmarkSummaryDecode(b *testing.B) {
	x := NewExecutor(newFunnelState, funnelUpdate, DefaultOptions())
	for i := 0; i < 200; i++ {
		if err := x.Feed(funnelEvent{kind: i & 3, item: "t"}); err != nil {
			b.Fatal(err)
		}
	}
	sums, err := x.Finish()
	if err != nil {
		b.Fatal(err)
	}
	e := wire.NewEncoder(256)
	sums[0].Encode(e)
	raw := e.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSummary(newFunnelState, wire.NewDecoder(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSummaryApply(b *testing.B) {
	x := NewExecutor(newFunnelState, funnelUpdate, DefaultOptions())
	for i := 0; i < 200; i++ {
		if err := x.Feed(funnelEvent{kind: i & 3, item: "t"}); err != nil {
			b.Fatal(err)
		}
	}
	sums, err := x.Finish()
	if err != nil {
		b.Fatal(err)
	}
	init := newFunnelState()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sums[0].Apply(init); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSummaryComposeWith(b *testing.B) {
	mk := func(lo int64) *Summary[*intState] {
		x := NewExecutor(newIntState(math.MinInt64), maxUpdate, DefaultOptions())
		for i := int64(0); i < 100; i++ {
			if err := x.Feed(lo + i%37); err != nil {
				b.Fatal(err)
			}
		}
		sums, err := x.Finish()
		if err != nil {
			b.Fatal(err)
		}
		return sums[0]
	}
	s1, s2 := mk(10), mk(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s1.ComposeWith(s2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComposeTree measures the balanced pairwise tree reduction the
// reducers run over a key's mapper summaries (ComposeAll, the
// non-consuming sequential variant — the parallel variant's per-level
// goroutine cost is scheduling, not composition, and would only add
// noise to the smoke check).
func BenchmarkComposeTree(b *testing.B) {
	mk := func(lo int64) *Summary[*intState] {
		x := NewExecutor(newIntState(math.MinInt64), maxUpdate, DefaultOptions())
		for i := int64(0); i < 100; i++ {
			if err := x.Feed(lo + i%37); err != nil {
				b.Fatal(err)
			}
		}
		sums, err := x.Finish()
		if err != nil {
			b.Fatal(err)
		}
		return sums[0]
	}
	sums := make([]*Summary[*intState], 64)
	for i := range sums {
		sums[i] = mk(int64(i * 3))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := ComposeAll(sums)
		if err != nil {
			b.Fatal(err)
		}
		c.Release()
	}
}

func BenchmarkMergeAll(b *testing.B) {
	// Build eight paths with identical transfers and adjacent
	// constraints, the merge-friendly worst case.
	mkPaths := func() []*intState {
		var paths []*intState
		for i := 0; i < 8; i++ {
			s := newIntState(0)()
			s.V.Set(5)
			s.V.lb, s.V.ub = int64(i*10), int64(i*10+9)
			paths = append(paths, s)
		}
		return paths
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		paths := mkPaths()
		b.StartTimer()
		mergeAll(paths)
	}
}
