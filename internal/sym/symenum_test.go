package sym

import (
	"errors"
	"testing"

	"repro/internal/wire"
)

type enumState struct {
	M SymEnum
}

func (s *enumState) Fields() []Value { return []Value{&s.M} }

func newEnumState(n int, c int64) func() *enumState {
	return func() *enumState { return &enumState{M: NewSymEnum(n, c)} }
}

func TestSymEnumConcreteOps(t *testing.T) {
	var ctx Ctx
	v := NewSymEnum(4, 2)
	if !v.Eq(&ctx, 2) || v.Eq(&ctx, 1) {
		t.Error("Eq on bound enum wrong")
	}
	if !v.Ne(&ctx, 3) || v.Ne(&ctx, 2) {
		t.Error("Ne on bound enum wrong")
	}
	if !v.In(&ctx, 1, 2) || v.In(&ctx, 0, 3) {
		t.Error("In on bound enum wrong")
	}
	v.Set(3)
	if got := v.Get(); got != 3 {
		t.Fatalf("got %d, want 3", got)
	}
	if len(ctx.choices) != 0 {
		t.Fatal("concrete enum ops forked")
	}
}

func TestSymEnumSymbolicForks(t *testing.T) {
	// FSM: if state == 0, go to 1, else stay. Two paths.
	x := NewExecutor(newEnumState(3, 0), func(ctx *Ctx, s *enumState, _ struct{}) {
		if s.M.Eq(ctx, 0) {
			s.M.Set(1)
		}
	}, Options{DisableMerging: true})
	if err := x.Feed(struct{}{}); err != nil {
		t.Fatal(err)
	}
	if got := x.LivePaths(); got != 2 {
		t.Fatalf("got %d paths, want 2", got)
	}
	sums, _ := x.Finish()
	for _, c := range []struct{ in, want int64 }{{0, 1}, {1, 1}, {2, 2}} {
		got, err := sums[0].ApplyStrict(&enumState{M: NewSymEnum(3, c.in)})
		if err != nil {
			t.Fatalf("apply(%d): %v", c.in, err)
		}
		if g := got.M.Get(); g != c.want {
			t.Errorf("apply(%d): got %d, want %d", c.in, g, c.want)
		}
	}
}

func TestSymEnumInfeasiblePruning(t *testing.T) {
	// After learning state != 0, Eq(0) must not fork again.
	x := NewExecutor(newEnumState(3, 0), func(ctx *Ctx, s *enumState, _ struct{}) {
		if s.M.Ne(ctx, 0) {
			if s.M.Eq(ctx, 0) { // infeasible under the path constraint
				s.M.Set(2)
			}
		}
	}, Options{DisableMerging: true})
	if err := x.Feed(struct{}{}); err != nil {
		t.Fatal(err)
	}
	if got := x.LivePaths(); got != 2 {
		t.Fatalf("got %d paths, want 2 (Ne fork only)", got)
	}
}

func TestSymEnumSingletonNoFork(t *testing.T) {
	// Once the set narrows to {1}, Eq(1) is decided without forking.
	x := NewExecutor(newEnumState(3, 0), func(ctx *Ctx, s *enumState, _ struct{}) {
		if s.M.In(ctx, 1) { // splits {0,1,2} into {1} and {0,2}
			if s.M.Eq(ctx, 1) { // forced true on the {1} path
				s.M.Set(2)
			}
		}
	}, Options{DisableMerging: true})
	if err := x.Feed(struct{}{}); err != nil {
		t.Fatal(err)
	}
	if got := x.LivePaths(); got != 2 {
		t.Fatalf("got %d paths, want 2", got)
	}
}

func TestSymEnumFSMMergesByUnion(t *testing.T) {
	// A transition that maps every state to 1 collapses to a single
	// path after merging: set union is always canonical.
	x := NewExecutor(newEnumState(4, 0), func(ctx *Ctx, s *enumState, _ struct{}) {
		if s.M.Eq(ctx, 0) {
			s.M.Set(1)
		} else if s.M.Eq(ctx, 1) {
			s.M.Set(1)
		} else if s.M.Eq(ctx, 2) {
			s.M.Set(1)
		} else {
			s.M.Set(1)
		}
	}, DefaultOptions())
	if err := x.Feed(struct{}{}); err != nil {
		t.Fatal(err)
	}
	if got := x.LivePaths(); got != 1 {
		t.Fatalf("got %d paths, want 1 after merge", got)
	}
}

func TestSymEnumEncodeDecode(t *testing.T) {
	v := NewSymEnum(60, 33)
	v.ResetSymbolic(5)
	// Narrow the constraint a bit.
	var ctx Ctx
	ctx.choices = []choice{{1, 2}} // take the false branch
	v.Eq(&ctx, 33)

	e := wire.NewEncoder(0)
	v.Encode(e)
	got := SymEnum{n: 60}
	if err := got.Decode(wire.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got.id != 5 || got.bound || got.set.has(33) || !got.set.has(32) || !got.set.has(59) {
		t.Fatalf("decoded: %s", got.String())
	}

	// Domain mismatch must be rejected.
	bad := SymEnum{n: 64}
	if err := bad.Decode(wire.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("expected domain mismatch error")
	}
}

func TestSymEnumDecodeRejectsOutOfDomainSet(t *testing.T) {
	v := NewSymEnum(60, 3)
	v.ResetSymbolic(0)
	e := wire.NewEncoder(0)
	v.Encode(e)
	// A receiver with a smaller domain must reject the constraint set.
	bad := SymEnum{n: 60}
	raw := append([]byte(nil), e.Bytes()...)
	// Corrupt the set word (last 8 bytes) to include bit 63.
	raw[len(raw)-1] |= 0x80
	if err := bad.Decode(wire.NewDecoder(raw)); err == nil {
		t.Fatal("expected out-of-domain constraint error")
	}
}

func TestSymEnumDomainCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected failure for domain > 64")
		}
	}()
	NewSymEnum(65, 0)
}

func TestSymEnumSetOutOfDomain(t *testing.T) {
	x := NewExecutor(newEnumState(3, 0), func(ctx *Ctx, s *enumState, _ struct{}) {
		s.M.Set(7)
	}, DefaultOptions())
	if err := x.Feed(struct{}{}); err == nil {
		t.Fatal("expected error for out-of-domain Set")
	}
}

func TestSymBoolBasics(t *testing.T) {
	var ctx Ctx
	b := NewSymBool(false)
	if b.Get() {
		t.Fatal("initial true")
	}
	if b.IsTrue(&ctx) || !b.IsFalse(&ctx) {
		t.Fatal("concrete checks wrong")
	}
	b.Set(true)
	if !b.IsTrue(&ctx) {
		t.Fatal("Set(true) not observed")
	}
	if len(ctx.choices) != 0 {
		t.Fatal("concrete bool forked")
	}
}

type boolState struct {
	B SymBool
}

func (s *boolState) Fields() []Value { return []Value{&s.B} }

func TestSymBoolSymbolic(t *testing.T) {
	newBS := func() *boolState { return &boolState{B: NewSymBool(false)} }
	x := NewExecutor(newBS, func(ctx *Ctx, s *boolState, e int64) {
		if e == 1 {
			s.B.Set(true)
		} else if s.B.IsTrue(ctx) {
			s.B.Set(false)
		}
	}, DefaultOptions())
	// First record e=0: forks on B. The true path assigns false (bound
	// transfer); the false path keeps the identity transfer over {false}.
	// Both outcomes are semantically false but the transfers differ
	// syntactically, so — like the paper's syntactic merge rule — they
	// stay as two paths.
	if err := x.Feed(int64(0)); err != nil {
		t.Fatal(err)
	}
	if got := x.LivePaths(); got != 2 {
		t.Fatalf("after e=0: %d paths, want 2 (bound-false and identity-over-{false})", got)
	}
	sums, err := x.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for _, init := range []bool{false, true} {
		got, err := sums[0].ApplyStrict(&boolState{B: NewSymBool(init)})
		if err != nil {
			t.Fatal(err)
		}
		if got.B.Get() {
			t.Errorf("init %t: want false", init)
		}
	}
}

func TestSymBoolEncodeDecode(t *testing.T) {
	b := NewSymBool(true)
	b.ResetSymbolic(2)
	e := wire.NewEncoder(0)
	b.Encode(e)
	var got SymBool
	if err := got.Decode(wire.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got.IsConcrete() {
		t.Fatal("decoded bool should be symbolic")
	}
	if _, ok := got.TryGet(); ok {
		t.Fatal("TryGet on symbolic bool")
	}
}

func TestSymEnumGetSymbolicFails(t *testing.T) {
	x := NewExecutor(newEnumState(3, 0), func(ctx *Ctx, s *enumState, _ struct{}) {
		s.M.Get()
	}, DefaultOptions())
	if err := x.Feed(struct{}{}); !errors.Is(err, ErrSymbolicRead) {
		t.Fatalf("got %v, want ErrSymbolicRead", err)
	}
}

func TestBitset(t *testing.T) {
	var s bitset
	if !s.empty() {
		t.Fatal("zero bitset not empty")
	}
	s.add(0)
	s.add(40)
	s.add(63)
	if s.count() != 3 || !s.has(0) || !s.has(40) || !s.has(63) || s.has(1) {
		t.Fatal("add/has wrong")
	}
	if s.has(-1) || s.has(64) || s.has(1000) {
		t.Fatal("out-of-range has should be false")
	}
	s.remove(40)
	if s.count() != 2 || s.has(40) {
		t.Fatal("remove wrong")
	}
	if got := fullBitset(64).count(); got != 64 {
		t.Fatalf("full(64) count %d", got)
	}
	if got := fullBitset(10).count(); got != 10 {
		t.Fatalf("full(10) count %d", got)
	}
	if fullBitset(10).has(10) {
		t.Fatal("full(10) contains 10")
	}
	if fullBitset(3).single() != -1 {
		t.Fatal("single on non-singleton")
	}
	var one bitset
	one.add(61)
	if one.single() != 61 {
		t.Fatalf("single = %d", one.single())
	}
}
