package sym

// Batch execution: FeedBatch processes a key's whole event vector with
// batch-level strategies the record-at-a-time loop cannot use —
// run-length transition probes and speculative in-place windows — while
// remaining observationally identical to feeding the records one by one
// (pinned by the equivalence and metamorphic tests, and end to end by
// the columnar golden digests).
//
// Three regimes, chosen per position in the vector:
//
//   - Run folding (feedRun): a run of identical events (≥ minRunLen, or
//     any whole-vector run — high-cardinality groups are often two or
//     three identical events) has one transition summary T; instead of
//     probing the memo once per record, the run costs one probe
//     (stats.RunProbes) and the fold is either skipped outright (T is
//     the identity — e.g. a push event on a push-only group) or applied
//     as T^n by square-and-multiply (composition is associative and
//     exact, §3.6, and powers of one transition commute). Two per-event
//     caches survive across keys: the identity verdict (a run of a
//     known-identity event skips with no probe at all, under any
//     regime) and the squaring ladder T^(2^k) (a repeated run event
//     pays only its multiply steps).
//   - In-place windows (feedWindow): once the stream has been fork-free
//     for windowQuiet records, live paths are checkpointed once per
//     window and updated in place — no per-record clone/recycle. A fork
//     mid-window rolls every path back to its checkpoint, replays the
//     fork-free prefix (Update is deterministic, so the replay follows
//     the original trajectory exactly), and routes the forking record
//     through the scalar feed.
//   - Scalar feed: everything else — records near a fork, and short
//     runs, where the batch bookkeeping would cost more than it saves.
const (
	// minRunLen is the shortest run worth a transition probe: below it
	// the compose/fold bookkeeping costs more than scalar feeding.
	minRunLen = 4
	// batchWindow bounds one speculative in-place window, so a fork
	// never forces replaying more than this many records.
	batchWindow = 64
	// windowQuiet is the fork-free streak required before the batch
	// path speculates on in-place windows.
	windowQuiet = 3
)

// FeedBatch processes a key's event vector. Equivalent to calling Feed
// on each event in order; a returned error is sticky.
func (x *Executor[S, E]) FeedBatch(evs []E) (err error) {
	if x.err != nil {
		return x.err
	}
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(failure)
			if !ok {
				panic(r)
			}
			x.err = f.err
			err = f.err
		}
	}()
	if !x.eqInit {
		x.initEq()
	}
	i := 0
	for i < len(evs) {
		if x.eq != nil {
			if ci := x.identLookup(evs[i]); ci >= 0 && x.identIsID[ci] {
				// A run of a known-identity event advances no path no
				// matter the regime — concrete included, since the
				// identity maps every state to itself. Skip it outright;
				// only the record count moves.
				j := i + x.identScan(evs[i:], evs[i])
				x.stats.RunProbes++
				x.stats.Records += j - i
				x.noForkRun = min(x.noForkRun+(j-i), memoQuietStreak)
				i = j
				continue
			}
			if !x.fastConcrete {
				j := i + x.identScan(evs[i:], evs[i])
				// A run shorter than minRunLen still folds when it spans
				// the whole vector: high-cardinality groups are often two
				// or three identical events, and folding them once is how
				// the identity cache gets seeded for the O(1) skip above.
				if j-i >= minRunLen || (i == 0 && j == len(evs) && j >= 2) {
					x.feedRun(evs[i], j-i)
					i = j
					continue
				}
			}
		}
		if x.fastConcrete || x.noForkRun >= windowQuiet {
			hi := min(len(evs), i+batchWindow)
			i += x.feedWindow(evs[i:hi])
			continue
		}
		x.feed(evs[i])
		i++
	}
	return nil
}

// TryFinishIdentity recognizes a key whose entire event vector consists
// of known-identity events and appends that key's summary directly:
// identity transitions advance no path, so the group's summary is the
// identity summary — one fresh symbolic path — no matter what the
// events' values or multiplicities are. The whole Reset/FeedBatch/Finish
// cycle for the key collapses to filling one pooled container, without
// touching the executor's live paths (so no Reset is needed before or
// after; the caller Resets only between keys that take the regular
// path). On high-cardinality corpora where no-op events dominate (G1's
// push events), most groups finish through this path.
//
// It reports false — and appends nothing — when the vector is not
// provably all-identity: an event with no cached verdict, a cached
// non-identity verdict, or no cheap event comparison at all. Callers
// then run the regular Reset/FeedBatch/FinishInto path, which (via
// feedRun) is what seeds the identity cache in the first place.
func (x *Executor[S, E]) TryFinishIdentity(evs []E, dst []*Summary[S]) ([]*Summary[S], bool) {
	// identHotSet is true iff at least one identity verdict is cached, so
	// without it the all-identity check cannot succeed. With it, runs of
	// the hot identity are swallowed by the typed scan — an all-hot
	// vector (the dominant case) costs one indirect call — and only
	// other events pay the cache scan.
	if x.err != nil || len(evs) == 0 || x.eq == nil || !x.identHotSet {
		return dst, false
	}
	hot, scan := x.identHotEv, x.identScan
	for i := 0; i < len(evs); i++ {
		i += scan(evs[i:], hot)
		if i >= len(evs) {
			break
		}
		ci := x.identLookup(evs[i])
		if ci < 0 || !x.identIsID[ci] {
			return dst, false
		}
	}
	s, k := x.nextSummary(1)
	if k == 1 {
		for i, f := range s.ps[0].fs {
			f.ResetSymbolic(i)
		}
	} else {
		s.ps[0] = x.sc.fresh()
	}
	x.stats.RunProbes++
	x.stats.Records += len(evs)
	x.noForkRun = min(x.noForkRun+len(evs), memoQuietStreak)
	return append(dst, s), true
}

// identCacheCap bounds the identity-verdict cache. Query event alphabets
// are tiny (an op code, a small enum); eight entries hold a whole
// alphabet while keeping the linear eq scan trivially cheap.
const identCacheCap = 8

// identLookup returns the cache index of ev's identity verdict, or -1.
// Callers must hold a non-nil eq.
func (x *Executor[S, E]) identLookup(ev E) int {
	for i := range x.identEvs {
		if x.eq(ev, x.identEvs[i]) {
			return i
		}
	}
	return -1
}

// identInsert caches ev's verdict, evicting round-robin once full. The
// first identity event found is pinned as the hot event for the
// per-record skip in feedWindow.
func (x *Executor[S, E]) identInsert(ev E, isID bool) {
	if isID && !x.identHotSet {
		x.identHotEv, x.identHotSet = ev, true
	}
	if len(x.identEvs) < identCacheCap {
		x.identEvs = append(x.identEvs, ev)
		x.identIsID = append(x.identIsID, isID)
		return
	}
	x.identEvs[x.identPos] = ev
	x.identIsID[x.identPos] = isID
	x.identPos = (x.identPos + 1) % identCacheCap
}

// initEq specializes the run-detection comparison for the event types
// the queries use. Event types without a case here (or that are not
// cheaply comparable at all) simply never fold runs — every other batch
// strategy still applies.
func (x *Executor[S, E]) initEq() {
	x.eqInit = true
	switch f := any(&x.eq).(type) {
	case *func(int64, int64) bool:
		*f = func(a, b int64) bool { return a == b }
		*any(&x.identScan).(*func([]int64, int64) int) = scanEq[int64]
		*any(&x.identCompact).(*func([]int64, []int64, int64) int) = compactNe[int64]
	case *func(int, int) bool:
		*f = func(a, b int) bool { return a == b }
		*any(&x.identScan).(*func([]int, int) int) = scanEq[int]
		*any(&x.identCompact).(*func([]int, []int, int) int) = compactNe[int]
	case *func(struct{}, struct{}) bool:
		*f = func(struct{}, struct{}) bool { return true }
		*any(&x.identScan).(*func([]struct{}, struct{}) int) = func(evs []struct{}, _ struct{}) int { return len(evs) }
		*any(&x.identCompact).(*func([]struct{}, []struct{}, struct{}) int) = func(_, _ []struct{}, _ struct{}) int { return 0 }
	case *func(string, string) bool:
		*f = func(a, b string) bool { return a == b }
		*any(&x.identScan).(*func([]string, string) int) = scanEq[string]
		*any(&x.identCompact).(*func([]string, []string, string) int) = compactNe[string]
	}
}

// scanEq counts the leading events equal to hot, with the comparison
// inlined at the concrete type — the amortized form of calling eq once
// per record.
func scanEq[T comparable](evs []T, hot T) int {
	for i, e := range evs {
		if e != hot {
			return i
		}
	}
	return len(evs)
}

// compactNe writes src's events that differ from hot into dst, in
// order, and returns how many. The store is unconditional and the index
// advance is a flag add, so the loop carries no data-dependent branch.
// dst must have len ≥ len(src).
func compactNe[T comparable](dst, src []T, hot T) int {
	j := 0
	for _, e := range src {
		dst[j] = e
		if e != hot {
			j++
		}
	}
	return j
}

// feedWindow advances every live path in place over a fork-free prefix
// of evs, returning how many events were consumed (always ≥ 1). In-place
// update of a path that does not fork is equivalent to the scalar feed's
// clone-then-update (the clone is a deep copy and the original is
// recycled), so the only speculation is fork-freedom — repaired by
// checkpoint rollback when it fails.
func (x *Executor[S, E]) feedWindow(evs []E) int {
	// A mixed window still carries known-identity events interleaved with
	// advancing ones (G1: pushes between other ops). An identity event
	// advances no path on any state — concrete included — so the hot
	// identity event is skipped per record here, update never called: one
	// flag test and one eq call, no scan, no closure. Queries with no
	// identity event pay only the flag test.
	skipID := x.identHotSet && x.eq != nil
	eq, hot := x.eq, x.identHotEv
	if x.fastConcrete {
		x.concreteTail(evs, skipID, hot)
		return len(evs)
	}
	x.saveCkpt()
	for k := 0; k < len(evs); k++ {
		ev := evs[k]
		if skipID && eq(ev, hot) {
			// Swallow the whole identity run with one stats update.
			j := k + x.identScan(evs[k:], hot)
			x.stats.Records += j - k
			x.noForkRun = min(x.noForkRun+(j-k), memoQuietStreak)
			k = j - 1
			continue
		}
		forked := false
		for _, p := range x.paths {
			x.ctx.reset()
			x.ctx.begin()
			x.stats.Runs++
			x.update(&x.ctx, p.s, ev)
			// Concrete fields cannot fork (the scalar feed relies on the
			// same invariant); checking the recorded choices costs the
			// same either way.
			if x.ctx.advance() {
				forked = true
				break
			}
		}
		if forked {
			// Roll back and replay the fork-free prefix, then hand the
			// forking record to the scalar feed, which owns the full
			// explore/merge/restart bookkeeping. Identity events are
			// skipped in the replay too — they did not move the state on
			// the way in, so the replayed trajectory is identical.
			for pi, p := range x.paths {
				for fi, f := range p.fs {
					f.CopyFrom(x.ckpt[pi].fs[fi])
				}
			}
			for _, prev := range evs[:k] {
				if skipID && eq(prev, hot) {
					continue
				}
				for _, p := range x.paths {
					x.ctx.reset()
					x.ctx.begin()
					x.stats.Runs++
					x.update(&x.ctx, p.s, prev)
				}
			}
			x.feed(ev)
			return k + 1
		}
		x.stats.Records++
		x.noForkRun = min(x.noForkRun+1, memoQuietStreak)
		if len(x.paths) == 1 && allConcreteFields(x.paths[0].fs) {
			// The single live path went fully concrete mid-window (a
			// gate-style UDA collapsing on its first advancing event).
			// Concrete fields cannot fork, so the checkpoints are moot
			// and the rest of the window runs in the tight concrete
			// loop.
			x.fastConcrete = true
			x.concreteTail(evs[k+1:], skipID, hot)
			return len(evs)
		}
	}
	x.fastConcrete = len(x.paths) == 1 && allConcreteFields(x.paths[0].fs)
	return len(evs)
}

// concreteTail runs evs over the single fully concrete live path. A
// concrete path cannot fork (the scalar feed relies on the same
// invariant), so one context reset covers the whole stretch and stats
// accumulate in locals. With an identity event pinned, the tail first
// compacts the advancing events branchlessly — a real corpus
// interleaves identity and advancing events unpredictably, and taking
// that interleaving as branches costs a mispredict per run boundary —
// then updates over the dense vector, which the branch predictor
// handles perfectly.
func (x *Executor[S, E]) concreteTail(evs []E, skipID bool, hot E) {
	p := x.paths[0]
	upd := x.update
	x.ctx.reset()
	x.ctx.begin()
	n := len(evs)
	runs := 0
	if skipID {
		if cap(x.evBuf) < n {
			x.evBuf = make([]E, n)
		}
		buf := x.evBuf[:n]
		runs = x.identCompact(buf, evs, hot)
		for _, ev := range buf[:runs] {
			upd(&x.ctx, p.s, ev)
		}
	} else {
		for _, ev := range evs {
			runs++
			upd(&x.ctx, p.s, ev)
		}
	}
	x.stats.Records += n
	x.stats.Runs += runs
}

// saveCkpt snapshots every live path into the executor-owned checkpoint
// buffer. Entries are pooled containers claimed once and reused for all
// subsequent windows, so a window costs field copies only — no
// container pool round trip per window.
func (x *Executor[S, E]) saveCkpt() {
	for len(x.ckpt) < len(x.paths) {
		x.ckpt = append(x.ckpt, x.sc.get())
	}
	for pi, p := range x.paths {
		cf := x.ckpt[pi].fs
		for fi, f := range p.fs {
			cf[fi].CopyFrom(f)
		}
	}
}

// feedRun folds a run of n identical events through one transition
// probe. Any failure along the way — unbuildable transition, compose
// overflow, path blow-up during powering — falls back to the scalar
// feed loop, so feedRun never gives up correctness, only speed.
func (x *Executor[S, E]) feedRun(ev E, n int) {
	x.stats.RunProbes++
	var tr *transition[S]
	owned := false
	if x.memo != nil && x.memo.active() {
		tr = x.lookupTransition(ev)
	}
	if tr == nil {
		// No memo, memo declined admission, or a negative entry: a run
		// amortizes one ephemeral build across n records, so try anyway.
		tr = x.buildTransition(ev)
		owned = tr != nil
	}
	if tr == nil {
		x.feedLoop(ev, n)
		return
	}
	var ident bool
	if ci := x.identLookup(ev); ci >= 0 {
		ident = x.identIsID[ci]
	} else {
		// The verdict depends only on the event (transitions are built
		// deterministically from the fresh state), so cache it for the
		// next run of this event — and, when it is the identity, for the
		// probe-free skip in FeedBatch and TryFinishIdentity.
		ident = x.isIdentity(tr)
		x.identInsert(ev, ident)
	}
	if ident {
		// T is the identity on every state, so T^n is too: the run
		// advances no path and only the record count moves.
		x.stats.Records += n
		x.noForkRun = min(x.noForkRun+n, memoQuietStreak)
		if owned {
			x.releaseTransition(tr)
		}
		return
	}
	pow, powOwned := x.powerRun(ev, tr, owned, n)
	if pow == nil {
		x.feedLoop(ev, n)
		return
	}
	next := x.scratch[:0]
	ok := true
	for _, p := range x.paths {
		next, ok = x.composeOnto(next, p, pow)
		if !ok {
			break
		}
	}
	if !ok {
		for _, c := range next {
			x.sc.put(c)
		}
		if powOwned {
			x.releaseTransition(pow)
		}
		x.feedLoop(ev, n)
		return
	}
	for _, p := range x.paths {
		x.sc.put(p)
	}
	if powOwned {
		x.releaseTransition(pow)
	}
	x.stats.Records += n
	x.settle(next, n)
}

// feedLoop is the scalar fallback for a run feedRun could not fold.
func (x *Executor[S, E]) feedLoop(ev E, n int) {
	for k := 0; k < n; k++ {
		x.feed(ev)
	}
}

// isIdentity reports whether tr maps every state to itself: a single
// path whose every field has the fresh state's transfer (each field is
// its own symbolic input) and constraint (none). Composing an identity
// transition onto any path reproduces that path.
func (x *Executor[S, E]) isIdentity(tr *transition[S]) bool {
	if len(tr.ps) != 1 {
		return false
	}
	fresh := x.sc.fresh()
	same := true
	for i, f := range tr.ps[0].fs {
		if !f.SameTransfer(fresh.fs[i]) || !f.ConstraintEq(fresh.fs[i]) {
			same = false
			break
		}
	}
	x.sc.put(fresh)
	return same
}

// powerRun computes T^n for the run event ev by square-and-multiply —
// O(log n) compositions instead of n per-record folds. Composition of
// summaries is associative and exact (§3.6) and powers of one transition
// commute, so the fold order cannot change results.
//
// The squaring ladder T^(2^k) is cached on the executor, keyed by the
// event (not the transition pointer — memo eviction may rebuild the
// transition, but rebuilding is deterministic, so the event alone
// determines the ladder). One chunk's keys repeat the same run events,
// so after the first key a powered run costs only the popcount(n)-1
// multiply steps, with the ladder extended lazily when a longer run
// needs higher rungs. Returns nil when any intermediate fails to compose
// or exceeds the live-path cap; the caller falls back to the scalar
// loop. The returned transition is borrowed from the ladder (owned =
// false) when n is a power of two.
func (x *Executor[S, E]) powerRun(ev E, tr *transition[S], owned bool, n int) (*transition[S], bool) {
	if len(x.ladder) == 0 || !x.eq(ev, x.ladderEv) {
		x.resetLadder()
		base := tr
		if !owned {
			// The memo keeps tr; the ladder owns its rungs.
			base = x.cloneTransition(tr)
		}
		x.ladder = append(x.ladder, base)
		x.ladderEv = ev
	} else if owned {
		// The ladder already carries this event's base transition.
		x.releaseTransition(tr)
	}
	var result *transition[S]
	resultOwned := false
	for k := 0; n > 0; k++ {
		if k == len(x.ladder) {
			next := x.composeTransitions(x.ladder[k-1], x.ladder[k-1])
			if next == nil {
				if resultOwned {
					x.releaseTransition(result)
				}
				return nil, false
			}
			x.ladder = append(x.ladder, next)
		}
		if n&1 == 1 {
			if result == nil {
				result, resultOwned = x.ladder[k], false // borrowed rung
			} else {
				nr := x.composeTransitions(result, x.ladder[k])
				if resultOwned {
					x.releaseTransition(result)
				}
				if nr == nil {
					return nil, false
				}
				result, resultOwned = nr, true
			}
		}
		n >>= 1
	}
	return result, resultOwned
}

// cloneTransition deep-copies a transition into pool-backed containers
// owned by the caller.
func (x *Executor[S, E]) cloneTransition(tr *transition[S]) *transition[S] {
	ps := make([]*pathState[S], len(tr.ps))
	for i, p := range tr.ps {
		ps[i] = x.sc.cloneOf(p)
	}
	return &transition[S]{ps: ps}
}

// resetLadder releases every cached ladder rung (all rungs are owned by
// the executor).
func (x *Executor[S, E]) resetLadder() {
	for _, t := range x.ladder {
		x.releaseTransition(t)
	}
	x.ladder = x.ladder[:0]
}

// composeTransitions builds "a then b" over the executor's schema:
// the cross product of a's and b's paths, infeasible pairs dropped,
// then merged and capped exactly like the live path set. nil means the
// composition could not be represented (overflow, explosion past the
// live cap) and the caller must fall back.
func (x *Executor[S, E]) composeTransitions(a, b *transition[S]) *transition[S] {
	var out []*pathState[S]
	failed := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(failure); !ok {
					panic(r)
				}
				failed = true
			}
		}()
		for _, pa := range a.ps {
			x.sc.captureSymEnv(&x.senv, pa.fs)
			for _, pb := range b.ps {
				cand := x.sc.cloneOf(pb)
				feasible := true
				for i, f := range cand.fs {
					if !f.ComposeAfter(pa.fs[i], &x.senv) {
						feasible = false
						break
					}
				}
				if feasible {
					out = append(out, cand)
				} else {
					x.sc.put(cand)
				}
			}
		}
	}()
	if failed || len(out) == 0 {
		for _, c := range out {
			x.sc.put(c)
		}
		return nil
	}
	if !x.opts.DisableMerging {
		var m int
		out, m = mergePathStates(x.sc, out)
		x.stats.Merges += m
	}
	if len(out) > x.opts.MaxLivePaths {
		for _, c := range out {
			x.sc.put(c)
		}
		return nil
	}
	return &transition[S]{ps: out}
}

func (x *Executor[S, E]) releaseTransition(tr *transition[S]) {
	for _, p := range tr.ps {
		x.sc.put(p)
	}
}
