package sym

import (
	"math"
	"testing"
)

func TestMemoIncomparableKeyDisabled(t *testing.T) {
	sc := newSchema(newIntState(0))
	// Slice events cannot key a map: NewMemo must opt out, not panic.
	if m := NewMemo[*intState, []int64](sc, 8); m != nil {
		t.Fatal("memo over incomparable event type should be nil")
	}
	// A nil memo on the executor is a no-op, not an error.
	x := NewSchemaExecutor(sc, func(ctx *Ctx, s *intState, e []int64) {
		for _, v := range e {
			if s.V.Lt(ctx, v) {
				s.V.Set(v)
			}
		}
	}, DefaultOptions()).WithMemo(nil)
	if err := x.Feed([]int64{3, 9, 2}); err != nil {
		t.Fatal(err)
	}
	if st := x.Stats(); st.MemoHits != 0 || st.MemoMisses != 0 {
		t.Fatalf("nil memo counted traffic: %+v", st)
	}
}

func TestMemoHitMissCounters(t *testing.T) {
	sc := newSchema(newIntState(math.MinInt64))
	m := NewMemo[*intState, int64](sc, 64)
	x := NewSchemaExecutor(sc, maxUpdate, DefaultOptions()).WithMemo(m)
	stream := []int64{5, 3, 10, 5, 3, 10, 5, 3, 10}
	for _, e := range stream {
		if err := x.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	st := x.Stats()
	// Three distinct events: first sight misses, repeats hit.
	if st.MemoMisses != 3 {
		t.Fatalf("misses = %d, want 3", st.MemoMisses)
	}
	if st.MemoHits != len(stream)-3 {
		t.Fatalf("hits = %d, want %d", st.MemoHits, len(stream)-3)
	}
	if m.Len() != 3 {
		t.Fatalf("len = %d, want 3", m.Len())
	}
}

func TestMemoFIFOEviction(t *testing.T) {
	sc := newSchema(newIntState(math.MinInt64))
	m := NewMemo[*intState, int64](sc, 2)
	x := NewSchemaExecutor(sc, maxUpdate, DefaultOptions()).WithMemo(m)
	// Cycle through 3 distinct events with cap 2: every insert past the
	// second evicts the oldest, and the memo never exceeds its cap.
	for i := 0; i < 30; i++ {
		if err := x.Feed(int64(i % 3)); err != nil {
			t.Fatal(err)
		}
		if m.Len() > 2 {
			t.Fatalf("len %d exceeds cap 2", m.Len())
		}
	}
	if m.Evicts() == 0 {
		t.Fatal("no evictions despite cap pressure")
	}
	sums, err := x.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Max over {0,1,2} from MinInt64 is 2 regardless of memo churn.
	got, err := sums[len(sums)-1].ApplyStrict(&intState{V: NewSymInt(math.MinInt64)})
	if err != nil {
		t.Fatal(err)
	}
	if got.V.Get() != 2 {
		t.Fatalf("result %d, want 2", got.V.Get())
	}
	m.Release()
	if m.Len() != 0 {
		t.Fatal("release left entries behind")
	}
}

// TestMemoAdaptiveDisable: a stream of (nearly) unique events keeps the
// hit rate at zero; past the warmup the memo must shut itself off and
// free its cache, and the executor must keep producing correct results
// by direct exploration.
func TestMemoAdaptiveDisable(t *testing.T) {
	sc := newSchema(newIntState(math.MinInt64))
	m := NewMemo[*intState, int64](sc, DefaultMemoSize)
	x := NewSchemaExecutor(sc, maxUpdate, DefaultOptions()).WithMemo(m)
	n := memoWarmup * 4
	for i := 0; i < n; i++ {
		if err := x.Feed(int64(i)); err != nil { // all distinct: 0% hits
			t.Fatal(err)
		}
	}
	if m.active() {
		t.Fatalf("memo still active after %d lookups with zero hits", n)
	}
	if m.Len() != 0 {
		t.Fatalf("disabled memo retains %d entries", m.Len())
	}
	st := x.Stats()
	// Once disabled the executor stops consulting the memo entirely, so
	// lookups stop well short of the record count.
	if st.MemoHits+st.MemoMisses >= n {
		t.Fatalf("memo consulted %d times after cutoff (records %d)",
			st.MemoHits+st.MemoMisses, n)
	}
	sums, err := x.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got, err := sums[len(sums)-1].ApplyStrict(&intState{V: NewSymInt(math.MinInt64)})
	if err != nil {
		t.Fatal(err)
	}
	if got.V.Get() != int64(n-1) {
		t.Fatalf("result %d, want %d", got.V.Get(), n-1)
	}
}

// negState keeps one field (B) symbolic forever so the executor never
// upgrades to the memo-free fastConcrete mode, while the UDA reads the
// other field (A) concretely — readable on the live path once event 0
// concretizes it, unreadable during a transition build from the fully
// symbolic state.
type negState struct {
	A SymInt
	B SymInt
}

func (s *negState) Fields() []Value { return []Value{&s.A, &s.B} }

func newNegState() *negState {
	return &negState{A: NewSymInt(0), B: NewSymInt(5)}
}

// TestMemoNegativeEntry: a UDA that reads a field concretely (Get)
// cannot have its transition built from the fully symbolic state — the
// read fails during the build. The memo must record a negative entry
// once and the executor must keep answering by direct exploration on
// the live paths.
func TestMemoNegativeEntry(t *testing.T) {
	update := func(ctx *Ctx, s *negState, e int64) {
		if e == 0 {
			s.A.Set(0) // concretizes A; buildable symbolically
		} else {
			s.A.Set(s.A.Get() + e) // concrete read; not buildable symbolically
		}
	}
	sc := newSchema(newNegState)
	m := NewMemo[*negState, int64](sc, 16)
	x := NewSchemaExecutor(sc, update, DefaultOptions()).WithMemo(m)
	if err := x.Feed(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := x.Feed(7); err != nil {
			t.Fatal(err)
		}
	}
	// Two entries: a positive one for event 0, a negative one for 7.
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}
	if tr, ok := m.get(int64(7)); !ok || tr != nil {
		t.Fatalf("entry for event 7: tr=%v ok=%v, want negative (nil, true)", tr, ok)
	}
	// Repeats of event 7 hit the cached negative entry (keeping the
	// memo's internal hit rate honest) but count as executor misses —
	// they still cost a direct exploration.
	if m.hits == 0 {
		t.Fatal("negative entry not hit on repeats")
	}
	if st := x.Stats(); st.MemoHits != 0 {
		t.Fatalf("executor counted %d hits; negative entries must count as misses", st.MemoHits)
	}
	sums, err := x.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got, err := sums[len(sums)-1].ApplyStrict(newNegState())
	if err != nil {
		t.Fatal(err)
	}
	if got.A.Get() != 63 {
		t.Fatalf("A = %d, want 63", got.A.Get())
	}
}

// TestMemoRecyclesThroughPool: executors sharing one schema with
// per-run memos must reach a steady state where containers recycle
// through the pool instead of accumulating.
func TestMemoRecyclesThroughPool(t *testing.T) {
	sc := newSchema(newIntState(math.MinInt64))
	run := func() {
		m := NewMemo[*intState, int64](sc, 32)
		x := NewSchemaExecutor(sc, maxUpdate, DefaultOptions()).WithMemo(m)
		for i := 0; i < 500; i++ {
			if err := x.Feed(int64(i % 16)); err != nil {
				t.Fatal(err)
			}
		}
		sums, err := x.Finish()
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sums {
			s.Release()
		}
		m.Release()
	}
	run()
	after := sc.Allocated()
	for i := 0; i < 50; i++ {
		run()
	}
	if raceEnabled {
		// The race detector makes sync.Pool drop Puts on purpose; the
		// recycling bound only holds without it.
		return
	}
	// sync.Pool may shed containers under GC pressure, so allow slack,
	// but 50 further runs must not allocate 50 runs' worth of states.
	if grew := sc.Allocated() - after; grew > after*10 {
		t.Fatalf("pool not recycling: %d containers after warmup run, %d more after 50 runs",
			after, grew)
	}
}
