package sym

import "reflect"

// DefaultMemoSize is the record-transition cache capacity used when a
// caller enables memoization without picking a size.
const DefaultMemoSize = 4096

// Adaptive cutoff: after memoWarmup lookups, a memo whose hit count is
// below memoMinHitNum/memoMinHitDen of its lookups disables itself and
// frees its cache. A miss costs more than direct exploration (the
// transition is built from the fully symbolic state AND composed), so
// memoization only pays on skewed/low-cardinality event streams; on
// near-unique streams (e.g. raw timestamps) the memo must get out of the
// way.
const (
	memoWarmup    = 128
	memoMinHitNum = 1
	memoMinHitDen = 2
)

// memoQuietStreak: after this many consecutive non-forking records the
// executor stops consulting its memo (see Executor.noForkRun). The
// adaptive cutoff above handles streams whose events don't repeat; this
// one handles streams whose events repeat but whose records never fork,
// where a cached transition saves nothing over a single Update run.
const memoQuietStreak = 16

// transition is a cached record-transition summary T_rec: the set of
// path states produced by exploring one record from the fully symbolic
// state. A nil ps marks a negative entry — the record's transition
// could not be built (path explosion from the unconstrained state, or a
// read of a value only a concrete run binds) and the record must always
// be explored directly.
type transition[S State] struct {
	ps []*pathState[S]
}

// Memo is a bounded record-transition cache (tentpole part 2): it maps a
// record-equivalence class to the pre-built transition summary of that
// record, so repeated records skip path exploration entirely and fold
// into the live paths by summary composition. The key is the projected
// event E itself — queries project exactly the fields the UDA reads into
// E (the read-set), so two equal E values are by construction
// indistinguishable to Update.
//
// Eviction is FIFO over insertion order, which is cheap, allocation-free
// amortized, and good enough for the skewed record distributions that
// make memoization pay (the hot classes are re-inserted immediately
// after an unlucky eviction). Evicted transitions return their path
// states to the schema pool.
//
// A Memo is NOT safe for concurrent use; give each worker its own (the
// parallel mapper does) while sharing the schema.
type Memo[S State, E any] struct {
	sc  *Schema[S]
	cap int
	// E is not constrained comparable (the executor API predates the
	// memo), so the map is keyed by any: comparability is proved once by
	// reflection in NewMemo. Lookups do not escape their key and stay
	// allocation-free; only inserts box.
	m        map[any]*transition[S]
	fifo     []any
	head     int
	lookups  int64
	hits     int64
	evicts   int64
	disabled bool
}

// NewMemo returns a transition cache over sc holding at most size
// entries (DefaultMemoSize when size <= 0). It returns nil — memoization
// disabled — when E is not a comparable type and therefore cannot key a
// map; callers treat a nil memo as "always explore".
func NewMemo[S State, E any](sc *Schema[S], size int) *Memo[S, E] {
	var zero E
	t := reflect.TypeOf(zero)
	if t == nil || !t.Comparable() {
		return nil
	}
	if size <= 0 {
		size = DefaultMemoSize
	}
	return &Memo[S, E]{
		sc:   sc,
		cap:  size,
		m:    make(map[any]*transition[S], size),
		fifo: make([]any, 0, size),
	}
}

// active reports whether the memo is still worth consulting; false once
// the adaptive cutoff has disabled it.
func (m *Memo[S, E]) active() bool { return !m.disabled }

// get returns the cached transition for rec and whether an entry (even a
// negative one) exists.
func (m *Memo[S, E]) get(rec E) (*transition[S], bool) {
	m.lookups++
	tr, ok := m.m[rec]
	if ok {
		m.hits++
	}
	return tr, ok
}

// admit reports whether a missed record should have its transition built
// and cached. It is the adaptive-cutoff decision point: past the warmup,
// a hit rate below the floor disables the memo and frees its cache. The
// caller must not build (let alone add) when admit returns false —
// deciding before the build keeps cache ownership unambiguous.
func (m *Memo[S, E]) admit() bool {
	if m.disabled {
		return false
	}
	if m.lookups >= memoWarmup && m.hits*memoMinHitDen < m.lookups*memoMinHitNum {
		m.disabled = true
		m.Release()
		return false
	}
	return true
}

// add inserts a transition (nil for a negative entry), evicting the
// oldest entry at capacity. The memo owns tr's path states from here on.
func (m *Memo[S, E]) add(rec E, tr *transition[S]) {
	if _, dup := m.m[rec]; dup {
		return
	}
	if len(m.m) >= m.cap {
		old := m.fifo[m.head]
		m.head++
		if m.head >= len(m.fifo)/2 && m.head > 16 {
			m.fifo = append(m.fifo[:0], m.fifo[m.head:]...)
			m.head = 0
		}
		if ev, ok := m.m[old]; ok {
			delete(m.m, old)
			if ev != nil {
				for _, p := range ev.ps {
					m.sc.put(p)
				}
			}
			m.evicts++
		}
	}
	if tr == nil {
		m.m[rec] = nil
	} else {
		m.m[rec] = tr
	}
	m.fifo = append(m.fifo, rec)
}

// Len returns the number of cached entries (including negative ones).
func (m *Memo[S, E]) Len() int { return len(m.m) }

// Evicts returns the number of evictions performed.
func (m *Memo[S, E]) Evicts() int64 { return m.evicts }

// Release returns every cached transition's path states to the schema
// pool and empties the memo. Call when the mapper that owns the memo is
// done, so cached states recycle instead of waiting for the GC.
func (m *Memo[S, E]) Release() {
	for k, tr := range m.m {
		if tr != nil {
			for _, p := range tr.ps {
				m.sc.put(p)
			}
		}
		delete(m.m, k)
	}
	m.fifo = m.fifo[:0]
	m.head = 0
}
