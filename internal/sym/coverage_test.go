package sym

import (
	"math/rand"
	"strings"
	"testing"
)

// TestSymPredComposeSymbolic covers symbolic-on-symbolic composition of
// SymPred paths (ComposeAll over the session UDA), including assumption
// concatenation when both sides are unbound and resolution when the
// earlier side bound a value.
func TestSymPredComposeSymbolic(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		events := make([]int64, 6+r.Intn(20))
		for i := range events {
			events[i] = int64(r.Intn(60))
		}
		cut := 1 + r.Intn(len(events)-1)
		var sums []*Summary[*predState]
		for _, chunk := range [][]int64{events[:cut], events[cut:]} {
			x := NewExecutor(newPredState, sessionUpdate, DefaultOptions())
			for _, e := range chunk {
				if err := x.Feed(e); err != nil {
					t.Fatal(err)
				}
			}
			s, err := x.Finish()
			if err != nil {
				t.Fatal(err)
			}
			sums = append(sums, s...)
		}
		one, err := ComposeAll(sums)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, init := range []int64{0, 7, 55, 1000} {
			start := newPredState()
			start.Prev.SetValue(init)
			start.Count.Set(2)
			composed, err := one.ApplyStrict(start)
			if err != nil {
				t.Fatalf("trial %d init %d: %v", trial, init, err)
			}
			wantPrev, wantCount, wantOut := sessionConcrete(init, 2, events)
			if composed.Prev.Get() != wantPrev || composed.Count.Get() != wantCount {
				t.Fatalf("trial %d init %d: (%d,%d) want (%d,%d)", trial, init,
					composed.Prev.Get(), composed.Count.Get(), wantPrev, wantCount)
			}
			got := composed.Out.Elems()
			if len(got) != len(wantOut) {
				t.Fatalf("trial %d init %d: out %v want %v", trial, init, got, wantOut)
			}
			for i := range wantOut {
				if got[i] != wantOut[i] {
					t.Fatalf("trial %d init %d: out %v want %v", trial, init, got, wantOut)
				}
			}
		}
	}
}

// TestStringRenderings exercises the diagnostic String methods: they
// must be non-empty and reflect symbolic vs concrete states.
func TestStringRenderings(t *testing.T) {
	var i SymInt
	i.ResetSymbolic(0)
	if s := i.String(); !strings.Contains(s, "x0") {
		t.Errorf("symbolic int: %q", s)
	}
	i.Set(5)
	if s := i.String(); !strings.Contains(s, "5") {
		t.Errorf("bound int: %q", s)
	}

	e := NewSymEnum(4, 2)
	if s := e.String(); !strings.Contains(s, "2") {
		t.Errorf("bound enum: %q", s)
	}
	e.ResetSymbolic(1)
	if s := e.String(); !strings.Contains(s, "x1") {
		t.Errorf("symbolic enum: %q", s)
	}
	if e.Domain() != 4 {
		t.Error("Domain")
	}

	b := NewSymBool(true)
	if s := b.String(); !strings.Contains(s, "true") {
		t.Errorf("bound bool: %q", s)
	}
	b.ResetSymbolic(2)
	if s := b.String(); !strings.Contains(s, "x2") {
		t.Errorf("symbolic bool: %q", s)
	}
	var ctx Ctx
	ctx.choices = []choice{{0, 2}}
	b.IsTrue(&ctx)
	if s := b.String(); s == "" {
		t.Error("narrowed bool renders empty")
	}

	p := NewSymPred(withinTen, Int64Codec(), 3)
	if s := p.String(); !strings.Contains(s, "3") {
		t.Errorf("bound pred: %q", s)
	}
	p.ResetSymbolic(4)
	ctx2 := Ctx{choices: []choice{{1, 2}}}
	p.EvalPred(&ctx2, 9)
	if s := p.String(); !strings.Contains(s, "assumption") {
		t.Errorf("symbolic pred: %q", s)
	}
	if _, ok := p.TryGet(); ok {
		t.Error("TryGet on unbound pred")
	}
	p.SetValue(7)
	if v, ok := p.TryGet(); !ok || v != 7 {
		t.Error("TryGet on bound pred")
	}

	v := NewSymVector(StringCodec())
	v.Push("a")
	if s := v.String(); !strings.Contains(s, "1") {
		t.Errorf("vector: %q", s)
	}
	if !v.UnionConstraint(&v) || !v.Admits(&v) || !v.ConstraintEq(&v) {
		t.Error("vector constraint trivia")
	}

	var iv SymIntVector
	iv.Push(3)
	var sym SymInt
	sym.ResetSymbolic(0)
	iv.PushInt(&sym)
	if s := iv.String(); !strings.Contains(s, "3") || !strings.Contains(s, "x0") {
		t.Errorf("int vector: %q", s)
	}
	if !iv.UnionConstraint(&iv) {
		t.Error("int vector union")
	}

	x := NewExecutor(newIntState(0), maxUpdate, DefaultOptions())
	if err := x.Feed(5); err != nil {
		t.Fatal(err)
	}
	if x.Err() != nil {
		t.Error("unexpected executor error")
	}
	sums, _ := x.Finish()
	if s := sums[0].String(); !strings.Contains(s, "paths") {
		t.Errorf("summary: %q", s)
	}
}

func TestMulCheckedEdges(t *testing.T) {
	if got := mulChecked(0, 5); got != 0 {
		t.Error("0*5")
	}
	if got := mulChecked(5, 0); got != 0 {
		t.Error("5*0")
	}
	if got := mulChecked(1, noLB); got != noLB {
		t.Error("1*min")
	}
	if got := mulChecked(noLB, 1); got != noLB {
		t.Error("min*1")
	}
	expectOverflow := func(a, b int64) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("mulChecked(%d,%d): expected overflow", a, b)
			}
		}()
		mulChecked(a, b)
	}
	expectOverflow(noLB, 2)
	expectOverflow(2, noLB)
	expectOverflow(noUB, 2)
	expectOverflow(1<<32, 1<<32)
}
