package sym

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Property tests (testing/quick) for the decision procedures and the
// summary algebra. These complement the randomized oracle tests with
// shrunk, generator-driven coverage of the canonical forms.

// smallIvl generates non-degenerate intervals within a small range so
// brute-force enumeration is feasible.
type smallIvl struct {
	Lo, Hi int64
}

func (smallIvl) Generate(r *rand.Rand, _ int) reflect.Value {
	lo := int64(r.Intn(41) - 20)
	hi := lo + int64(r.Intn(20))
	return reflect.ValueOf(smallIvl{lo, hi})
}

func TestQuickUnionIvlSound(t *testing.T) {
	f := func(a, b smallIvl) bool {
		u, ok := unionIvl(ivl{a.Lo, a.Hi}, ivl{b.Lo, b.Hi})
		inA := func(x int64) bool { return a.Lo <= x && x <= a.Hi }
		inB := func(x int64) bool { return b.Lo <= x && x <= b.Hi }
		if !ok {
			// Union refused: there must be a gap between the intervals.
			for x := int64(-25); x <= 25; x++ {
				if inA(x) || inB(x) {
					continue
				}
				// x is outside both; refusal is justified only if some
				// such x lies strictly between them.
				if x > min64(a.Lo, b.Lo) && x < max64(a.Hi, b.Hi) {
					return true
				}
			}
			return false
		}
		// Union accepted: membership must match exactly.
		for x := int64(-25); x <= 25; x++ {
			if u.contains(x) != (inA(x) || inB(x)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// affine generates small affine transfers with nonzero slope.
type affine struct {
	A, B int64
}

func (affine) Generate(r *rand.Rand, _ int) reflect.Value {
	a := int64(r.Intn(9) - 4)
	if a == 0 {
		a = 1
	}
	return reflect.ValueOf(affine{a, int64(r.Intn(21) - 10)})
}

func TestQuickPreimageAffineExact(t *testing.T) {
	f := func(tf affine, c smallIvl) bool {
		pre := preimageAffine(tf.A, tf.B, c.Lo, c.Hi)
		for x := int64(-60); x <= 60; x++ {
			y := tf.A*x + tf.B
			want := c.Lo <= y && y <= c.Hi
			if pre.contains(x) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSplitLtExact checks the Lt decision procedure against brute
// force: the true/false intervals partition the current constraint and
// classify every point correctly.
func TestQuickSplitLtExact(t *testing.T) {
	f := func(tf affine, cur smallIvl, c int8) bool {
		v := SymInt{id: 0, a: tf.A, b: tf.B, lb: cur.Lo, ub: cur.Hi}
		tIv, fIv := v.splitLt(int64(c))
		for x := cur.Lo; x <= cur.Hi; x++ {
			want := tf.A*x+tf.B < int64(c)
			inT := tIv.contains(x)
			inF := fIv.contains(x)
			if inT == inF { // must be in exactly one
				return false
			}
			if inT != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEnumOpsOracle runs random Eq/Ne/In/Set sequences on a SymEnum
// summary and validates every resulting path against a concrete oracle.
func TestQuickEnumOpsOracle(t *testing.T) {
	type op struct {
		kind byte // 0 eq+set, 1 ne+set, 2 in+set
		c    int64
		set  int64
	}
	const domain = 6
	run := func(ops []op) bool {
		newState := newEnumState(domain, 0)
		x := NewExecutor(newState, func(ctx *Ctx, s *enumState, _ struct{}) {
			for _, o := range ops {
				switch o.kind % 3 {
				case 0:
					if s.M.Eq(ctx, o.c) {
						s.M.Set(o.set)
					}
				case 1:
					if s.M.Ne(ctx, o.c) {
						s.M.Set(o.set)
					}
				case 2:
					if s.M.In(ctx, o.c, (o.c+1)%domain) {
						s.M.Set(o.set)
					}
				}
			}
		}, Options{MaxLivePaths: 1 << 16, MaxRunsPerRecord: 1 << 16})
		if err := x.Feed(struct{}{}); err != nil {
			return false
		}
		sums, err := x.Finish()
		if err != nil {
			return false
		}
		concrete := func(v int64) int64 {
			for _, o := range ops {
				switch o.kind % 3 {
				case 0:
					if v == o.c {
						v = o.set
					}
				case 1:
					if v != o.c {
						v = o.set
					}
				case 2:
					if v == o.c || v == (o.c+1)%domain {
						v = o.set
					}
				}
			}
			return v
		}
		for init := int64(0); init < domain; init++ {
			got, err := sums[0].ApplyStrict(&enumState{M: NewSymEnum(domain, init)})
			if err != nil {
				return false
			}
			if got.M.Get() != concrete(init) {
				return false
			}
		}
		return true
	}
	f := func(raw []struct {
		Kind byte
		C    uint8
		Set  uint8
	}) bool {
		if len(raw) > 6 {
			raw = raw[:6]
		}
		ops := make([]op, len(raw))
		for i, r := range raw {
			ops[i] = op{kind: r.Kind, c: int64(r.C % domain), set: int64(r.Set % domain)}
		}
		return run(ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickComposeEqualsApply: for random Max-style summaries A, B and
// random concrete starts c, (B∘A)(c) == B(A(c)) — composition is exact.
func TestQuickComposeEqualsApply(t *testing.T) {
	mk := func(seed int64, n int) *Summary[*intState] {
		r := rand.New(rand.NewSource(seed))
		x := NewExecutor(newIntState(0), maxUpdate, DefaultOptions())
		for i := 0; i < n; i++ {
			if err := x.Feed(int64(r.Intn(100))); err != nil {
				t.Fatal(err)
			}
		}
		sums, err := x.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return sums[0]
	}
	f := func(seedA, seedB int64, nA, nB uint8, start int16) bool {
		a := mk(seedA, 1+int(nA%20))
		b := mk(seedB, 1+int(nB%20))
		ab, err := a.ComposeWith(b)
		if err != nil {
			return false
		}
		c := &intState{V: NewSymInt(int64(start))}
		mid, err := a.ApplyStrict(c)
		if err != nil {
			return false
		}
		direct, err := b.ApplyStrict(mid)
		if err != nil {
			return false
		}
		viaCompose, err := ab.ApplyStrict(c)
		if err != nil {
			return false
		}
		return direct.V.Get() == viaCompose.V.Get()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSummaryDisjointCover: random session-UDA summaries remain
// valid partitions over random probes of the full state space.
func TestQuickSummaryDisjointCover(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	x := NewExecutor(newPredState, sessionUpdate, DefaultOptions())
	for i := 0; i < 40; i++ {
		if err := x.Feed(int64(r.Intn(300))); err != nil {
			t.Fatal(err)
		}
	}
	sums, err := x.Finish()
	if err != nil {
		t.Fatal(err)
	}
	s := sums[0]
	f := func(prev int16, count int16) bool {
		c := newPredState()
		c.Prev.SetValue(int64(prev))
		c.Count.Set(int64(count))
		n := 0
		for _, p := range s.Paths() {
			if admits(p, c) {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
