package sym

import "math"

// Checked int64 arithmetic. SYMPLE's summaries must agree bit-for-bit with
// the sequential execution, so transfer-function coefficients may never
// silently wrap; overflow aborts the path via fail(ErrOverflow).

func addChecked(a, b int64) int64 {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		fail(ErrOverflow)
	}
	return s
}

func subChecked(a, b int64) int64 {
	s := a - b
	if (b > 0 && s > a) || (b < 0 && s < a) {
		fail(ErrOverflow)
	}
	return s
}

func mulChecked(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		// MinInt64 * anything other than 1 overflows; * 1 is identity.
		if a == 1 {
			return b
		}
		if b == 1 {
			return a
		}
		fail(ErrOverflow)
	}
	p := a * b
	if p/b != a {
		fail(ErrOverflow)
	}
	return p
}

// add64 and mul64 are non-panicking variants for callers outside a
// symbolic execution (no fail/recover in scope), e.g. Compact running on
// the encode path of a mapper goroutine.

func add64(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

func mul64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		if a == 1 {
			return b, true
		}
		if b == 1 {
			return a, true
		}
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// floorDiv returns ⌊a/b⌋ for b ≠ 0 (Go's / truncates toward zero).
// MinInt64/-1 is the one quotient not representable in int64 (Go defines
// it to wrap); it aborts the path instead.
func floorDiv(a, b int64) int64 {
	if a == math.MinInt64 && b == -1 {
		fail(ErrOverflow)
	}
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// Interval bound helpers. noLB/noUB are the "unbounded" sentinels used by
// SymInt constraints; arithmetic that would involve a sentinel is handled
// by the callers before reaching the checked helpers.
const (
	noLB = math.MinInt64
	noUB = math.MaxInt64
)
