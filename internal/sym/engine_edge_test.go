package sym

import (
	"errors"
	"math"
	"testing"
)

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxLivePaths != 8 || o.MaxRunsPerRecord != 256 {
		t.Fatalf("defaults: %+v", o)
	}
	d := DefaultOptions()
	if d.MaxLivePaths != 8 || d.MaxRunsPerRecord != 256 || d.DisableMerging {
		t.Fatalf("DefaultOptions: %+v", d)
	}
	// Explicit values survive.
	o2 := Options{MaxLivePaths: 3, MaxRunsPerRecord: 10}.withDefaults()
	if o2.MaxLivePaths != 3 || o2.MaxRunsPerRecord != 10 {
		t.Fatalf("explicit: %+v", o2)
	}
}

func TestForkNBounds(t *testing.T) {
	// ForkN outside [2,255] aborts the path with ErrPathExplosion.
	x := NewExecutor(newIntState(0), func(ctx *Ctx, s *intState, _ struct{}) {
		ctx.ForkN(1)
	}, DefaultOptions())
	if err := x.Feed(struct{}{}); !errors.Is(err, ErrPathExplosion) {
		t.Fatalf("ForkN(1): %v", err)
	}
	y := NewExecutor(newIntState(0), func(ctx *Ctx, s *intState, _ struct{}) {
		ctx.ForkN(256)
	}, DefaultOptions())
	if err := y.Feed(struct{}{}); !errors.Is(err, ErrPathExplosion) {
		t.Fatalf("ForkN(256): %v", err)
	}
}

func TestFeedAfterFinishContinues(t *testing.T) {
	// Finish is a snapshot; further feeding extends the live summary.
	// (The runtime never does this, but the semantics should be sane.)
	x := NewExecutor(newIntState(math.MinInt64), maxUpdate, DefaultOptions())
	if err := x.Feed(5); err != nil {
		t.Fatal(err)
	}
	s1, err := x.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got1, err := ApplyAll(&intState{V: NewSymInt(0)}, s1)
	if err != nil {
		t.Fatal(err)
	}
	if got1.V.Get() != 5 {
		t.Fatalf("first snapshot: %d", got1.V.Get())
	}
	if err := x.Feed(9); err != nil {
		t.Fatal(err)
	}
	s2, err := x.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got2, err := ApplyAll(&intState{V: NewSymInt(0)}, s2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.V.Get() != 9 {
		t.Fatalf("second snapshot: %d", got2.V.Get())
	}
}

func TestApplyAllErrorNamesSummary(t *testing.T) {
	// An invalid (empty) summary in the middle reports its position.
	good := maxChunkSummaries(t, []int64{1, 2})
	bad := NewSummary(newIntState(0), nil)
	_, err := ApplyAll(&intState{V: NewSymInt(0)}, []*Summary[*intState]{good[0], bad})
	if err == nil || !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v", err)
	}
}

func TestSymIntNe(t *testing.T) {
	x := NewExecutor(newIntState(0), func(ctx *Ctx, s *intState, _ struct{}) {
		if s.V.Ne(ctx, 7) {
			s.V.Set(1)
		} else {
			s.V.Set(2)
		}
	}, Options{DisableMerging: true})
	if err := x.Feed(struct{}{}); err != nil {
		t.Fatal(err)
	}
	sums, _ := x.Finish()
	for _, c := range []struct{ in, want int64 }{{6, 1}, {7, 2}, {8, 1}} {
		got, err := sums[0].ApplyStrict(&intState{V: NewSymInt(c.in)})
		if err != nil {
			t.Fatal(err)
		}
		if g := got.V.Get(); g != c.want {
			t.Errorf("Ne apply(%d) = %d, want %d", c.in, g, c.want)
		}
	}
}

func TestRescaledDoesNotFailOnBoundOverflowFreeCase(t *testing.T) {
	v := NewSymInt(10)
	r := v.Rescaled(3, -5)
	if got := r.Get(); got != 25 {
		t.Fatalf("rescaled bound: %d", got)
	}
}

func TestSymIntSingletonStaysMergeableWithAffine(t *testing.T) {
	// A path whose interval narrowed to a point keeps its affine
	// transfer (no constant rewriting), so it still merges with the
	// adjacent identity path — the paper-faithful representation choice.
	var a, b SymInt
	a.ResetSymbolic(0)
	b.ResetSymbolic(0)
	a.lb, a.ub = 5, 5 // singleton, identity transfer
	b.lb, b.ub = 6, 20
	if !a.IsConcrete() {
		t.Fatal("singleton not concrete for reads")
	}
	if v, ok := a.TryGet(); !ok || v != 5 {
		t.Fatalf("TryGet: %d %t", v, ok)
	}
	if !a.SameTransfer(&b) {
		t.Fatal("identity transfers differ")
	}
	if !a.UnionConstraint(&b) {
		t.Fatal("adjacent singleton union refused")
	}
	if a.lb != 5 || a.ub != 20 {
		t.Fatalf("union: [%d,%d]", a.lb, a.ub)
	}
}

func TestEnumSingletonConcreteReads(t *testing.T) {
	e := NewSymEnum(5, 0)
	e.ResetSymbolic(0)
	var ctx Ctx
	ctx.choices = []choice{{0, 2}}
	if !e.Eq(&ctx, 3) {
		t.Fatal("forced true branch")
	}
	// Constraint {3}, identity transfer: concrete for reads, transfer
	// representation unchanged.
	if !e.IsConcrete() {
		t.Fatal("singleton enum not concrete")
	}
	if e.Get() != 3 {
		t.Fatalf("Get = %d", e.Get())
	}
	if e.bound {
		t.Fatal("Eq must not bind (assignment-only binding)")
	}
}
