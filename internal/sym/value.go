package sym

import "repro/internal/wire"

// Value is the interface implemented by all symbolic data types. A Value
// bundles, for one field of the aggregation state, both halves of a path:
// the constraint its path places on the field's unknown initial value x,
// and the transfer function giving the field's current value in terms
// of x. Keeping the two together is what makes every decision procedure a
// constant-time, single-variable check (paper §3.3–§3.4).
//
// User-defined symbolic types (paper §4.5) implement this interface; they
// must keep a canonical constraint form, decide branch feasibility without
// a general solver, support merging, and serialize compactly.
type Value interface {
	// ResetSymbolic reinitializes the value to a fresh, unconstrained
	// symbolic input identified by field index id. Field indices are the
	// positions returned by State.Fields and identify symbolic variables
	// across serialization and composition.
	ResetSymbolic(id int)

	// CopyFrom overwrites the value with src, which must have the same
	// dynamic type. Used to clone paths.
	CopyFrom(src Value)

	// IsConcrete reports whether the current value no longer depends on
	// the symbolic input (it can still carry a constraint on that input).
	IsConcrete() bool

	// SameTransfer reports whether other (same dynamic type) has an
	// identical transfer function. Two paths are merge candidates only if
	// every field pair has the same transfer (paper §3.5).
	SameTransfer(other Value) bool

	// ConstraintEq reports whether other carries an identical constraint.
	ConstraintEq(other Value) bool

	// UnionConstraint attempts to widen the receiver's constraint to the
	// union with other's, in place. It reports false — without mutating
	// the receiver — when the union is not representable in the type's
	// canonical form (e.g. two disjoint, non-adjacent intervals).
	UnionConstraint(other Value) bool

	// Admits reports whether the concrete value held by prev (same
	// dynamic type, IsConcrete) satisfies the receiver's constraint.
	// Summary application uses it to select the unique admitted path.
	Admits(prev Value) bool

	// Concretize rewrites the receiver in place into its concrete output
	// value, given prev as the concrete input for this field and env for
	// cross-field references (symbolic elements inside vectors). The
	// caller must have established Admits(prev). After Concretize the
	// value reports IsConcrete and carries no constraint.
	Concretize(prev Value, env *Env)

	// ComposeAfter rewrites the receiver — a field of a later summary's
	// path — to be expressed over prev's symbolic input, where prev is
	// the same field of an earlier summary's path (paper §3.6). It
	// reports false, leaving the receiver unspecified, when the combined
	// path is infeasible. senv resolves cross-field references.
	ComposeAfter(prev Value, senv *SymEnv) bool

	// Encode appends the value's canonical form to e.
	Encode(e *wire.Encoder)

	// Decode reads the canonical form written by Encode. The receiver
	// must have been constructed with the same shape (e.g. enum domain
	// size, vector codec) as the encoder side.
	Decode(d *wire.Decoder) error

	// String renders the constraint and transfer for diagnostics, e.g.
	// "[lb,ub] => 2x+3".
	String() string
}

// State is implemented by user aggregation-state structs. Fields returns
// pointers to every symbolic field in a stable order; it is the Go
// analogue of the paper's list_fields (§5.3) and lets the runtime clone,
// merge, serialize and compose states without reflection.
type State interface {
	Fields() []Value
}

// Env carries the concrete initial values of every field during summary
// application, so vector elements that reference other fields' inputs can
// be resolved (paper §4.5: a vector "concretizes all elements that depend
// on x" at composition).
type Env struct {
	ints []int64
	ok   []bool
}

// scalarInput is implemented by Values whose symbolic input is an
// int64-valued scalar (SymInt, SymEnum, SymBool); only such inputs can be
// referenced by vector elements.
type scalarInput interface {
	// concreteInput returns the field's concrete value as an int64.
	concreteInput() (int64, bool)
}

// NewEnv captures the concrete scalar inputs of state s.
func NewEnv(s State) *Env {
	fs := s.Fields()
	e := &Env{ints: make([]int64, len(fs)), ok: make([]bool, len(fs))}
	for i, f := range fs {
		if si, isScalar := f.(scalarInput); isScalar {
			e.ints[i], e.ok[i] = si.concreteInput()
		}
	}
	return e
}

// Int returns the concrete int64 input of field id.
func (e *Env) Int(id int) int64 {
	if e == nil || id < 0 || id >= len(e.ints) || !e.ok[id] {
		fail(ErrSymbolicRead)
	}
	return e.ints[id]
}

// SymEnv carries, for symbolic-on-symbolic composition, the transfer
// function of every scalar field of the earlier path: value = a·x(field)+b
// when not bound, or the constant b when bound.
type SymEnv struct {
	entries []symEnvEntry
}

type symEnvEntry struct {
	ok    bool
	bound bool
	a, b  int64
}

// scalarTransfer is implemented by Values whose transfer over their own
// input is affine (SymInt) or identity/constant (SymEnum, SymBool).
type scalarTransfer interface {
	// transfer returns (bound, a, b): the current value is b if bound,
	// else a·x+b over the field's symbolic input x.
	transfer() (bound bool, a, b int64)
}

// NewSymEnv captures the scalar transfer functions of path state p.
func NewSymEnv(p State) *SymEnv {
	fs := p.Fields()
	e := &SymEnv{entries: make([]symEnvEntry, len(fs))}
	for i, f := range fs {
		if st, isScalar := f.(scalarTransfer); isScalar {
			bound, a, b := st.transfer()
			e.entries[i] = symEnvEntry{ok: true, bound: bound, a: a, b: b}
		}
	}
	return e
}

func (e *SymEnv) lookup(id int) symEnvEntry {
	if e == nil || id < 0 || id >= len(e.entries) || !e.entries[id].ok {
		fail(ErrStateMismatch)
	}
	return e.entries[id]
}

// Codec serializes and compares user element types stored in symbolic
// vectors and predicates. Go has no reflection-free generic encoding, so
// like the paper's list_fields this is explicit programmer support.
type Codec[T any] struct {
	Encode func(*wire.Encoder, T)
	Decode func(*wire.Decoder) T
	Equal  func(a, b T) bool
}

// Int64Codec is a Codec for int64 elements.
func Int64Codec() Codec[int64] {
	return Codec[int64]{
		Encode: func(e *wire.Encoder, v int64) { e.Varint(v) },
		Decode: func(d *wire.Decoder) int64 { return d.Varint() },
		Equal:  func(a, b int64) bool { return a == b },
	}
}

// StringCodec is a Codec for string elements.
func StringCodec() Codec[string] {
	return Codec[string]{
		Encode: func(e *wire.Encoder, v string) { e.String(v) },
		Decode: func(d *wire.Decoder) string { return d.String() },
		Equal:  func(a, b string) bool { return a == b },
	}
}

// maxFieldID bounds field indices accepted from the wire; real states
// have a handful of fields, and an unbounded index would let corrupt
// input drive huge allocations or out-of-range lookups.
const maxFieldID = 1 << 16
