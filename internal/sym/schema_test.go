package sym

import (
	"math"
	"testing"
)

func TestSchemaCompilesFieldPlan(t *testing.T) {
	sc, err := NewSchema(newPredState)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumFields() != 3 {
		t.Fatalf("NumFields = %d, want 3", sc.NumFields())
	}
	// The plan must classify fields once: SymInt is a scalar input with a
	// scalar transfer; SymPred (black-box predicate) and SymIntVector are
	// neither.
	wantIn := []bool{false, true, false}
	wantTr := []bool{false, true, false}
	for i := 0; i < sc.NumFields(); i++ {
		if sc.scalarIn[i] != wantIn[i] || sc.scalarTr[i] != wantTr[i] {
			t.Fatalf("field %d: scalarIn=%v scalarTr=%v, want %v/%v",
				i, sc.scalarIn[i], sc.scalarTr[i], wantIn[i], wantTr[i])
		}
	}
}

func TestSchemaPoolRoundTrip(t *testing.T) {
	sc := newSchema(newIntState(5))
	p := sc.get()
	if len(p.fs) != 1 {
		t.Fatalf("container has %d fields, want 1", len(p.fs))
	}
	p.s.V.Set(42)
	c := sc.cloneOf(p)
	if c.s.V.Get() != 42 {
		t.Fatalf("clone value %d, want 42", c.s.V.Get())
	}
	c.s.V.Set(7)
	if p.s.V.Get() != 42 {
		t.Fatal("clone aliases its source")
	}
	f := sc.fresh()
	if allConcreteFields(f.fs) {
		t.Fatal("fresh container not reset to symbolic")
	}
	sc.put(p)
	sc.put(c)
	sc.put(f)
}

// TestSchemaPoolBoundedAcrossRuns: repeated runs of a Reset-loop
// executor over one schema must recycle containers through the pool
// rather than allocate per run. (A Reset loop is the supported
// recycling idiom: Finish snapshots copy into pooled summaries and the
// executor's own containers are reinitialized in place; an executor
// dropped without Reset hands its final working set to the GC.)
func TestSchemaPoolBoundedAcrossRuns(t *testing.T) {
	sc := newSchema(newIntState(math.MinInt64))
	x := NewSchemaExecutor(sc, maxUpdate, DefaultOptions())
	run := func() {
		x.Reset()
		for i := 0; i < 300; i++ {
			if err := x.Feed(int64(i % 37)); err != nil {
				t.Fatal(err)
			}
		}
		sums, err := x.Finish()
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sums {
			s.Release()
		}
	}
	run()
	after := sc.Allocated()
	for i := 0; i < 100; i++ {
		run()
	}
	if raceEnabled {
		// The race detector makes sync.Pool drop Puts on purpose; the
		// recycling bound only holds without it.
		return
	}
	if grew := sc.Allocated() - after; grew > after*10 {
		t.Fatalf("pool not recycling: %d containers after first run, %d more after 100 runs",
			after, grew)
	}
}

// TestStreamComposerBoundedLiveMemory is the regression test for the
// composer releasing composed-out summaries: folding a long
// out-of-order stream of chunks through one schema must keep the number
// of live containers bounded — each chunk's summaries return to the
// pool as they fold, instead of accumulating for the GC.
func TestStreamComposerBoundedLiveMemory(t *testing.T) {
	sc := newSchema(newIntState(math.MinInt64))
	x := NewSchemaExecutor(sc, maxUpdate, DefaultOptions())
	chunkSummaries := func(lo int64) []*Summary[*intState] {
		x.Reset()
		for i := int64(0); i < 20; i++ {
			if err := x.Feed(lo + i%13); err != nil {
				t.Fatal(err)
			}
		}
		sums, err := x.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return sums
	}
	c := NewStreamComposerSchema(sc)
	const chunks = 400
	// Deliver each adjacent pair out of order (1,0),(3,2),...: the
	// composer always holds at most one pending chunk while the folded
	// prefix keeps advancing.
	for i := 0; i < chunks; i += 2 {
		if _, err := c.Add(i+1, chunkSummaries(int64(i+1))); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Add(i, chunkSummaries(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	state, folded := c.Prefix()
	if folded != chunks {
		t.Fatalf("folded %d/%d chunks", folded, chunks)
	}
	if want := int64(chunks - 1 + 12); state.V.Get() != want {
		t.Fatalf("prefix max = %d, want %d", state.V.Get(), want)
	}
	// The bound: live containers stay O(paths per chunk), not O(chunks).
	// 400 chunks × ≥2 paths each would exceed 800 allocations if folded
	// summaries leaked instead of returning to the pool. (Skipped under
	// the race detector, which makes sync.Pool drop Puts on purpose.)
	if got := sc.Allocated(); !raceEnabled && got > 200 {
		t.Fatalf("allocated %d containers across %d chunks — composer leaks summaries", got, chunks)
	}
}
