package sym

// Ctx is the per-run execution context for one symbolic exploration of the
// user Update function. Symbolic data types call ForkN whenever both (or
// several) outcomes of a branch are feasible; the context replays or
// records the decision in its choice vector (paper §5.1).
//
// The engine runs Update once per feasible path: the first run takes
// outcome 0 at every fork, and advance then increments the choice vector
// lexicographically (popping maxed-out trailing choices and bumping the
// last incrementable one) until the whole space is explored. Because
// feasibility checks are deterministic, a replayed prefix always
// encounters the same forks, so recorded choices are always valid.
type Ctx struct {
	choices []choice
	pos     int
	runs    int // runs consumed for the current record (explosion guard)
}

type choice struct {
	v uint8 // chosen outcome
	n uint8 // number of feasible outcomes at this fork
}

// ForkN returns the outcome (0..n-1) to take at a branch with n feasible
// outcomes. n must be in [2, 255]; single-outcome branches must not fork.
func (c *Ctx) ForkN(n int) int {
	if n < 2 || n > 255 {
		fail(ErrPathExplosion)
	}
	if c.pos < len(c.choices) {
		ch := c.choices[c.pos]
		c.pos++
		return int(ch.v)
	}
	c.choices = append(c.choices, choice{v: 0, n: uint8(n)})
	c.pos++
	return 0
}

// Fork is ForkN(2), returning true for outcome 0. By convention symbolic
// comparisons take the "predicate holds" outcome first.
func (c *Ctx) Fork() bool {
	return c.ForkN(2) == 0
}

// begin readies the context for a fresh run along the current choice
// vector.
func (c *Ctx) begin() {
	c.pos = 0
	c.runs++
}

// advance moves the choice vector to the lexicographically next unexplored
// path. It reports false once the space is exhausted. Choices beyond the
// consumed prefix belong to runs that no longer exist and are discarded.
func (c *Ctx) advance() bool {
	c.choices = c.choices[:c.pos]
	for len(c.choices) > 0 {
		last := &c.choices[len(c.choices)-1]
		if last.v+1 < last.n {
			last.v++
			return true
		}
		c.choices = c.choices[:len(c.choices)-1]
	}
	return false
}

// reset clears the context for a new (path, record) exploration.
func (c *Ctx) reset() {
	c.choices = c.choices[:0]
	c.pos = 0
	c.runs = 0
}
