// Package fuzzseed manages the shared fuzz seed corpora under
// testdata/fuzz-seeds/ at the repository root. The corpora are committed
// files, one input per file, grouped by subcorpus directory:
//
//	records/   op streams and query-traffic records (FuzzWireRoundTrip)
//	segments/  encoded shuffle segments, valid and corrupt (FuzzSegmentDecode)
//
// Fuzz targets load a subcorpus with Load and f.Add every entry, so the
// interesting shapes discovered once are shared by every future run.
// Regenerate with `go test -run UpdateFuzzSeeds -update-fuzz-seeds` in
// the owning package; corrupt-* seeds double as regression inputs the
// decoder must reject.
package fuzzseed

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Seed is one corpus entry: the file's base name and raw contents.
type Seed struct {
	Name string
	Data []byte
}

// dir resolves the seed directory for a subcorpus by walking up from the
// working directory to the module root (the directory holding go.mod) —
// tests run with the package directory as cwd, so a fixed relative path
// would break the moment a package moves.
func dir(sub string) (string, error) {
	d, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return filepath.Join(d, "testdata", "fuzz-seeds", sub), nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("fuzzseed: no go.mod above working directory")
		}
		d = parent
	}
}

// Load reads every file of a subcorpus in name order. A missing
// subcorpus directory is an error: the corpora are committed, so absence
// means the checkout (or an -update run) is incomplete.
func Load(sub string) ([]Seed, error) {
	p, err := dir(sub)
	if err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(p)
	if err != nil {
		return nil, fmt.Errorf("fuzzseed: %w (regenerate with -update-fuzz-seeds)", err)
	}
	var seeds []Seed
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(p, ent.Name()))
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, Seed{Name: ent.Name(), Data: b})
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].Name < seeds[j].Name })
	return seeds, nil
}

// Update replaces a subcorpus with the given seeds: the directory is
// recreated so renamed or dropped entries don't linger.
func Update(sub string, seeds []Seed) error {
	p, err := dir(sub)
	if err != nil {
		return err
	}
	if err := os.RemoveAll(p); err != nil {
		return err
	}
	if err := os.MkdirAll(p, 0o755); err != nil {
		return err
	}
	for _, s := range seeds {
		if s.Name == "" || strings.ContainsAny(s.Name, "/\\") {
			return fmt.Errorf("fuzzseed: bad seed name %q", s.Name)
		}
		if err := os.WriteFile(filepath.Join(p, s.Name), s.Data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
