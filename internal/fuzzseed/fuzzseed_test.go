package fuzzseed

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestUpdateLoadRoundTrip exercises the corpus store against a scratch
// module root (a temp dir with a fake go.mod, entered via Chdir so the
// upward go.mod walk lands there instead of the real repository).
func TestUpdateLoadRoundTrip(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module scratch\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	nested := filepath.Join(root, "internal", "pkg")
	if err := os.MkdirAll(nested, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Chdir(nested)

	in := []Seed{
		{Name: "b-second.bin", Data: []byte{1, 2, 3}},
		{Name: "a-first.bin", Data: nil},
	}
	if err := Update("demo", in); err != nil {
		t.Fatal(err)
	}
	got, err := Load("demo")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "a-first.bin" || got[1].Name != "b-second.bin" {
		t.Fatalf("loaded %+v, want the two seeds in name order", got)
	}
	if !bytes.Equal(got[1].Data, []byte{1, 2, 3}) {
		t.Fatalf("seed data %v, want [1 2 3]", got[1].Data)
	}

	// Update replaces: a dropped entry must not linger.
	if err := Update("demo", in[:1]); err != nil {
		t.Fatal(err)
	}
	got, err = Load("demo")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "b-second.bin" {
		t.Fatalf("after shrink loaded %+v, want only b-second.bin", got)
	}

	if _, err := Load("missing"); err == nil {
		t.Fatal("loading a missing subcorpus must error")
	}
	if err := Update("demo", []Seed{{Name: "../escape", Data: nil}}); err == nil {
		t.Fatal("path-traversing seed name must be rejected")
	}
}
