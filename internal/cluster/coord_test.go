package cluster

import (
	"context"
	"errors"
	"io"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// checkGoroutineLeaks fails the test if goroutines have not returned to
// the baseline by cleanup (same pattern as the engine's fault tests).
func checkGoroutineLeaks(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d running, baseline %d\n%s",
					runtime.NumGoroutine(), base, buf[:n])
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	})
}

// startWorker runs an in-process Worker on a loopback listener and
// returns its endpoint. Cleanup waits for Serve to return, so the leak
// check sees the accept loop and every connection goroutine gone.
func startWorker(t *testing.T) (Endpoint, *Worker) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Serve(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("worker serve: %v", err)
		}
		if n := w.Active(); n != 0 {
			t.Errorf("worker still serving %d connections after shutdown", n)
		}
	})
	return Dial(ln.Addr().String()), w
}

// silentWorker accepts connections and answers the hello exchange, then
// reads and discards everything: an assignment sent to it never gets a
// reply. It exists to pin the pool's context-cancellation path.
func silentWorker(t *testing.T) Endpoint {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	ctx, cancel := context.WithCancel(context.Background())
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				stop := context.AfterFunc(ctx, func() { conn.Close() })
				defer stop()
				fr, fw := newFrameReader(conn), newFrameWriter(conn)
				if f, err := fr.next(); err != nil || f.Type != FrameHello {
					return
				}
				if err := fw.write(FrameHello, encodeHello()); err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, conn) // swallow assignments forever
			}()
		}
	}()
	t.Cleanup(func() {
		cancel()
		ln.Close()
		wg.Wait()
	})
	return Dial(ln.Addr().String())
}

// testSpec is a registered no-op job for pool unit tests: identity
// grouping on the record's first byte.
func testSpec(t *testing.T) JobSpec {
	t.Helper()
	RegisterJob("cluster-unit-test", func(spec JobSpec, trace *obs.Trace) (mapreduce.MapFunc, error) {
		return func(mapperID int, seg *mapreduce.Segment, emit mapreduce.Emit) error {
			for i, rec := range seg.Records {
				if len(rec) == 0 {
					continue
				}
				emit(string(rec[:1]), int64(i), rec)
			}
			return nil
		}, nil
	})
	return JobSpec{Query: "cluster-unit-test", NumReducers: 2}
}

func testSegment() *mapreduce.Segment {
	return &mapreduce.Segment{ID: 0, Records: [][]byte{
		[]byte("alpha"), []byte("beta"), []byte("avocado"), []byte("banana"),
	}}
}

// TestPoolRunMapRoundTrip: one attempt through a real worker over
// loopback TCP produces runs addressed to the right task/attempt and
// sane metrics, and the pool and worker shut down leak-free.
func TestPoolRunMapRoundTrip(t *testing.T) {
	checkGoroutineLeaks(t)
	ep, _ := startWorker(t)
	p, err := NewPool(testSpec(t), []Endpoint{ep})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	out, err := p.RunMap(context.Background(), 3, 1, testSegment())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Runs) == 0 {
		t.Fatal("no runs returned")
	}
	for _, r := range out.Runs {
		if r.Task != 3 || r.Attempt != 1 {
			t.Errorf("run addressed to task %d attempt %d, want 3/1", r.Task, r.Attempt)
		}
		if r.Part < 0 || r.Part >= 2 {
			t.Errorf("run partition %d out of range", r.Part)
		}
		if len(r.Seg) == 0 || r.Bytes != int64(len(r.Seg)) {
			t.Errorf("run bytes %d inconsistent with %d-byte segment", r.Bytes, len(r.Seg))
		}
	}
	if out.Records != 4 || out.Emitted != 4 {
		t.Errorf("metrics records=%d emitted=%d, want 4/4", out.Records, out.Emitted)
	}
	if out.Duration <= 0 {
		t.Errorf("non-positive duration %v", out.Duration)
	}
}

// TestPoolContextCancellation: a cancelled context unblocks RunMap
// promptly even when the worker never answers, and an already-cancelled
// context never reaches the wire. No goroutines or connections leak.
func TestPoolContextCancellation(t *testing.T) {
	checkGoroutineLeaks(t)
	spec := testSpec(t)
	p, err := NewPool(spec, []Endpoint{silentWorker(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunMap(ctx, 0, 0, testSegment()); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: got %v, want context.Canceled", err)
	}

	ctx, cancel = context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = p.RunMap(ctx, 0, 1, testSegment())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-stream cancel: got %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("cancellation took %v — the read did not unblock", d)
	}
}

// TestPoolWorkerErrorKeepsConnection: a worker-side attempt failure
// (here: an unregistered job) comes back as an error without killing
// the connection — the next attempt on the same pool still runs.
func TestPoolWorkerErrorKeepsConnection(t *testing.T) {
	checkGoroutineLeaks(t)
	ep, w := startWorker(t)
	p, err := NewPool(JobSpec{Query: "no-such-job", NumReducers: 2}, []Endpoint{ep})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 3; i++ {
		_, err := p.RunMap(context.Background(), i, 0, testSegment())
		if err == nil || !strings.Contains(err.Error(), "no job registered") {
			t.Fatalf("attempt %d: got %v, want unregistered-job error", i, err)
		}
	}
	if n := w.Active(); n != 1 {
		t.Errorf("worker serving %d connections, want the original 1 — errors must not retire conns", n)
	}
}

// TestPoolRetiresAndRedials: an injected pre-assignment worker loss
// retires the connection, and the background redial restores capacity
// so later attempts succeed against the same single worker.
func TestPoolRetiresAndRedials(t *testing.T) {
	checkGoroutineLeaks(t)
	ep, _ := startWorker(t)
	spec := testSpec(t)
	// Rate 1 with maxAttempts 3: attempts 0 and 1 draw injections,
	// attempt 2 (final) is spared by construction.
	plan := NewChaosPlan(7, 3).WithRate(1)
	p, err := NewPool(spec, []Endpoint{ep}, WithChaos(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var failures int
	for attempt := 0; attempt < 3; attempt++ {
		_, err := p.RunMap(context.Background(), 0, attempt, testSegment())
		if attempt < 2 {
			if err == nil {
				t.Fatalf("attempt %d: injection did not fire", attempt)
			}
			failures++
			continue
		}
		if err != nil {
			t.Fatalf("final attempt must be spared and succeed: %v", err)
		}
	}
	if failures != 2 {
		t.Fatalf("%d injected failures, want 2", failures)
	}
}

// TestPoolAllWorkersLost: when every endpoint is gone for good, acquire
// fails fast instead of hanging.
func TestPoolAllWorkersLost(t *testing.T) {
	checkGoroutineLeaks(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Serve(ctx, ln) }()
	p, err := NewPool(testSpec(t), []Endpoint{Dial(ln.Addr().String())})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Kill the worker for good, then force the pool to notice: the
	// leased conn breaks, and every redial is refused.
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunMap(context.Background(), 0, 0, testSegment()); err == nil {
		t.Fatal("attempt against a dead worker succeeded")
	}
	start := time.Now()
	_, err = p.RunMap(context.Background(), 0, 1, testSegment())
	if err == nil {
		t.Fatal("attempt with no live workers succeeded")
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("dead-pool detection took %v", d)
	}
}

// TestChaosPlanDeterminism pins the plan's contract: pure in
// (seed, task, attempt), final attempts spared, distinct seeds diverge.
func TestChaosPlanDeterminism(t *testing.T) {
	plan := NewChaosPlan(42, 4)
	for task := 0; task < 20; task++ {
		for attempt := 0; attempt < 6; attempt++ {
			k1, a1 := plan.decide(task, attempt)
			k2, a2 := plan.decide(task, attempt)
			if k1 != k2 || a1 != a2 {
				t.Fatalf("decide(%d,%d) not deterministic: %v/%d vs %v/%d",
					task, attempt, k1, a1, k2, a2)
			}
			if attempt >= 3 && k1 != ChaosNone {
				t.Fatalf("decide(%d,%d) injected %v on a spared attempt", task, attempt, k1)
			}
		}
	}
	var injected, diverged int
	other := NewChaosPlan(43, 4)
	for task := 0; task < 200; task++ {
		k, _ := plan.decide(task, 0)
		ko, _ := other.decide(task, 0)
		if k != ChaosNone {
			injected++
		}
		if k != ko {
			diverged++
		}
	}
	if injected < 40 || injected > 160 {
		t.Errorf("rate 0.4 plan injected %d/200 — mixer is biased", injected)
	}
	if diverged == 0 {
		t.Error("seeds 42 and 43 produced identical schedules")
	}
	if k, _ := (*ChaosPlan)(nil).decide(0, 0); k != ChaosNone {
		t.Error("nil plan must inject nothing")
	}
	if k, _ := NewChaosPlan(42, 4).WithRate(0).decide(0, 0); k != ChaosNone {
		t.Error("rate-0 plan injected")
	}
}
