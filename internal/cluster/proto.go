package cluster

import (
	"fmt"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Payload codecs for the frame protocol, built on the wire primitives
// the segment codec already uses. Every decoder is total: corrupt
// input returns an error naming wire.ErrCorrupt or ErrFrame, never a
// panic — the same contract decodeSegment holds, extended across the
// socket.

// JobSpec identifies, to a worker, how to build the map side of a job:
// the registered query plus the engine knobs that change map output.
// All fields are scalar so specs are comparable — workers cache one
// built mapper per distinct spec.
type JobSpec struct {
	// Query is the job registry key (RegisterJob), e.g. "G1".
	Query string
	// NumReducers and Compress must match the coordinator's
	// mapreduce.Config: they shape the partitioning and encoding of
	// every run the worker ships.
	NumReducers int
	Compress    bool
	// Combine, Columnar, MemoSize, and MapParallelism are the
	// core.SympleOptions knobs that affect the map side.
	Combine        bool
	Columnar       bool
	MemoSize       int
	MapParallelism int
}

func appendJobSpec(e *wire.Encoder, s JobSpec) {
	e.String(s.Query)
	e.Uvarint(uint64(s.NumReducers))
	e.Bool(s.Compress)
	e.Bool(s.Combine)
	e.Bool(s.Columnar)
	e.Varint(int64(s.MemoSize))
	e.Varint(int64(s.MapParallelism))
}

func decodeJobSpec(d *wire.Decoder) JobSpec {
	return JobSpec{
		Query:          d.String(),
		NumReducers:    int(d.Uvarint()),
		Compress:       d.Bool(),
		Combine:        d.Bool(),
		Columnar:       d.Bool(),
		MemoSize:       int(d.Varint()),
		MapParallelism: int(d.Varint()),
	}
}

// encodeHello builds the hello payload: magic then protocol version.
func encodeHello() []byte {
	e := wire.NewEncoder(8)
	e.Uvarint(helloMagic)
	e.Uvarint(ProtocolVersion)
	return e.Bytes()
}

// DecodeHello validates a hello payload, returning the peer's version.
// Bad magic and unsupported versions are errors (never panics); the
// fuzz corpus pins both classes.
func DecodeHello(payload []byte) (version uint64, err error) {
	d := wire.NewDecoder(payload)
	magic := d.Uvarint()
	version = d.Uvarint()
	if d.Err() != nil {
		return 0, fmt.Errorf("%w: truncated hello", ErrFrame)
	}
	if magic != helloMagic {
		return 0, fmt.Errorf("%w: bad hello magic 0x%x", ErrFrame, magic)
	}
	if version != ProtocolVersion {
		return version, fmt.Errorf("cluster: protocol version %d not supported (want %d)", version, ProtocolVersion)
	}
	if d.Remaining() != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes after hello", ErrFrame, d.Remaining())
	}
	return version, nil
}

// assignment is one map attempt shipped to a worker.
type assignment struct {
	spec    JobSpec
	task    int
	attempt int
	// abortAfter, when ≥ 0, instructs the worker to abort the
	// connection after streaming that many runs — the deterministic
	// worker-death injection the chaos plans drive. -1 disables.
	abortAfter int
	// w2w switches the attempt to the worker-to-worker topology: the
	// worker pushes runs straight to each partition's owner and sends
	// the coordinator byte-counted receipts instead of run payloads.
	w2w    bool
	jobID  uint64
	selfID int
	// owners[p] is the worker index owning partition p; addrs[i] is
	// worker i's listen address for peer dials.
	owners []int
	addrs  []string
	// peerDropAfter, when ≥ 0, closes the attempt's peer connections
	// after that many pushes — the chaos peer-drop injection. -1
	// disables.
	peerDropAfter int
	// refillPart, when ≥ 0, marks a refill re-execution: re-derive and
	// re-push only that partition's run, with no receipts and no spans
	// (the original attempt already committed). -1 is a normal attempt.
	refillPart int
	// segDigest content-addresses the input segment; seg is nil when
	// the coordinator believes the worker already caches the digest.
	segDigest uint64
	segID     int
	seg       *mapreduce.Segment
}

// maxSegmentRecords caps a decoded assignment's record count; segments
// in this repo are thousands of records, so the cap only rejects
// forged counts before allocation.
const maxSegmentRecords = 1 << 26

// maxWorkers caps decoded topology tables (owners/addrs).
const maxWorkers = 1 << 12

func encodeAssign(a *assignment) []byte {
	e := wire.NewEncoder(1 << 16)
	appendJobSpec(e, a.spec)
	e.Uvarint(uint64(a.task))
	e.Uvarint(uint64(a.attempt))
	e.Varint(int64(a.abortAfter))
	e.Bool(a.w2w)
	if a.w2w {
		e.Uvarint(a.jobID)
		e.Uvarint(uint64(a.selfID))
		e.Uvarint(uint64(len(a.owners)))
		for _, o := range a.owners {
			e.Uvarint(uint64(o))
		}
		e.Uvarint(uint64(len(a.addrs)))
		for _, s := range a.addrs {
			e.String(s)
		}
		e.Varint(int64(a.peerDropAfter))
		e.Varint(int64(a.refillPart))
	}
	e.Uvarint(uint64(a.segID))
	e.Uvarint(a.segDigest)
	if a.seg == nil {
		e.Bool(false) // digest-only: the worker resolves it from cache
		return e.Bytes()
	}
	e.Bool(true)
	e.Uvarint(uint64(len(a.seg.Records)))
	for _, r := range a.seg.Records {
		e.BytesField(r)
	}
	// The columnar form rides along in colcodec framing when the
	// coordinator has it, so workers run the same batched execution
	// path they would in process.
	if a.seg.Columns != nil {
		e.Bool(true)
		e.BytesField(mapreduce.EncodeColumnar(a.seg.Columns, false))
	} else {
		e.Bool(false)
	}
	return e.Bytes()
}

func decodeAssign(payload []byte) (*assignment, error) {
	d := wire.NewDecoder(payload)
	a := &assignment{
		spec:          decodeJobSpec(d),
		task:          int(d.Uvarint()),
		attempt:       int(d.Uvarint()),
		abortAfter:    int(d.Varint()),
		peerDropAfter: -1,
		refillPart:    -1,
	}
	if d.Bool() {
		a.w2w = true
		a.jobID = d.Uvarint()
		a.selfID = int(d.Uvarint())
		no := d.Length(maxParts)
		if d.Err() != nil {
			return nil, d.Err()
		}
		a.owners = make([]int, no)
		for i := range a.owners {
			a.owners[i] = int(d.Uvarint())
		}
		na := d.Length(maxWorkers)
		if d.Err() != nil {
			return nil, d.Err()
		}
		a.addrs = make([]string, na)
		for i := range a.addrs {
			a.addrs[i] = d.String()
		}
		a.peerDropAfter = int(d.Varint())
		a.refillPart = int(d.Varint())
		if d.Err() != nil {
			return nil, d.Err()
		}
		if a.selfID < 0 || a.selfID >= len(a.addrs) {
			return nil, fmt.Errorf("%w: assignment self ID %d outside %d workers", ErrFrame, a.selfID, len(a.addrs))
		}
		for _, o := range a.owners {
			if o < 0 || o >= len(a.addrs) {
				return nil, fmt.Errorf("%w: assignment owner %d outside %d workers", ErrFrame, o, len(a.addrs))
			}
		}
	}
	a.segID = int(d.Uvarint())
	a.segDigest = d.Uvarint()
	if !d.Bool() {
		// Digest-only assignment: no payload follows.
		if d.Err() != nil {
			return nil, d.Err()
		}
		if d.Remaining() != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes after assignment", ErrFrame, d.Remaining())
		}
		return a, nil
	}
	n := d.Length(maxSegmentRecords)
	if d.Err() != nil {
		return nil, d.Err()
	}
	recs := make([][]byte, n)
	for i := range recs {
		b := d.BytesField()
		if d.Err() != nil {
			return nil, d.Err()
		}
		// Copy out of the frame buffer: segments outlive the frame.
		recs[i] = append([]byte(nil), b...)
	}
	a.seg = &mapreduce.Segment{ID: a.segID, Records: recs}
	if d.Bool() {
		cols, err := mapreduce.DecodeColumnar(d.BytesField())
		if err != nil {
			return nil, fmt.Errorf("cluster: assignment columnar payload: %w", err)
		}
		a.seg.Columns = cols
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after assignment", ErrFrame, d.Remaining())
	}
	return a, nil
}

func encodeRun(r mapreduce.Run) []byte {
	e := wire.NewEncoder(len(r.Seg) + 16)
	e.Uvarint(uint64(r.Task))
	e.Uvarint(uint64(r.Attempt))
	e.Uvarint(uint64(r.Part))
	e.BytesField(r.Seg)
	return e.Bytes()
}

func decodeRun(payload []byte) (mapreduce.Run, error) {
	d := wire.NewDecoder(payload)
	r := mapreduce.Run{
		Task:    int(d.Uvarint()),
		Attempt: int(d.Uvarint()),
		Part:    int(d.Uvarint()),
	}
	seg := d.BytesField()
	if d.Err() != nil {
		return mapreduce.Run{}, d.Err()
	}
	if d.Remaining() != 0 {
		return mapreduce.Run{}, fmt.Errorf("%w: %d trailing bytes after run", ErrFrame, d.Remaining())
	}
	r.Seg = append([]byte(nil), seg...) // outlives the frame buffer
	r.Bytes = int64(len(r.Seg))
	return r, nil
}

// mapDone is the attempt-closing metrics message, the wire form of the
// non-run fields of mapreduce.MapOutput.
type mapDone struct {
	emitted    int64
	records    int64
	inputBytes int64
	duration   time.Duration
	// procs is the worker's GOMAXPROCS — the benchmark methodology
	// records it per worker so oversubscribed hosts are visible.
	procs   int
	logical []int64
}

// maxParts caps the per-partition slice in a decoded mapDone.
const maxParts = 1 << 16

func encodeMapDone(m *mapDone) []byte {
	e := wire.NewEncoder(64)
	e.Varint(m.emitted)
	e.Varint(m.records)
	e.Varint(m.inputBytes)
	e.Varint(int64(m.duration))
	e.Varint(int64(m.procs))
	e.Uvarint(uint64(len(m.logical)))
	for _, v := range m.logical {
		e.Varint(v)
	}
	return e.Bytes()
}

func decodeMapDone(payload []byte) (*mapDone, error) {
	d := wire.NewDecoder(payload)
	m := &mapDone{
		emitted:    d.Varint(),
		records:    d.Varint(),
		inputBytes: d.Varint(),
		duration:   time.Duration(d.Varint()),
		procs:      int(d.Varint()),
	}
	n := d.Length(maxParts)
	if d.Err() != nil {
		return nil, d.Err()
	}
	m.logical = make([]int64, n)
	for i := range m.logical {
		m.logical[i] = d.Varint()
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after map-done", ErrFrame, d.Remaining())
	}
	return m, nil
}

// maxSpans and maxSpanKVs cap a decoded spans frame.
const (
	maxSpans   = 1 << 20
	maxSpanKVs = 1 << 10
)

func encodeSpans(spans []*obs.Span) []byte {
	e := wire.NewEncoder(len(spans) * 64)
	e.Uvarint(uint64(len(spans)))
	for _, sp := range spans {
		e.String(sp.Kind)
		e.String(sp.Name)
		e.Varint(sp.Start)
		e.Varint(sp.End)
		e.Uvarint(uint64(len(sp.Attrs)))
		for k, v := range sp.Attrs {
			e.String(k)
			e.Varint(v)
		}
		e.Uvarint(uint64(len(sp.Tags)))
		for k, v := range sp.Tags {
			e.String(k)
			e.String(v)
		}
	}
	return e.Bytes()
}

func decodeSpans(payload []byte) ([]*obs.Span, error) {
	d := wire.NewDecoder(payload)
	n := d.Length(maxSpans)
	if d.Err() != nil {
		return nil, d.Err()
	}
	spans := make([]*obs.Span, 0, n)
	for i := 0; i < n; i++ {
		sp := &obs.Span{
			Kind:  d.String(),
			Name:  d.String(),
			Start: d.Varint(),
			End:   d.Varint(),
		}
		if na := d.Length(maxSpanKVs); na > 0 {
			sp.Attrs = make(map[string]int64, na)
			for j := 0; j < na; j++ {
				k := d.String()
				sp.Attrs[k] = d.Varint()
			}
		}
		if nt := d.Length(maxSpanKVs); nt > 0 {
			sp.Tags = make(map[string]string, nt)
			for j := 0; j < nt; j++ {
				k := d.String()
				sp.Tags[k] = d.String()
			}
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		spans = append(spans, sp)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after spans", ErrFrame, d.Remaining())
	}
	return spans, nil
}

func encodeError(msg string) []byte {
	e := wire.NewEncoder(len(msg) + 4)
	e.String(msg)
	return e.Bytes()
}

func decodeError(payload []byte) (string, error) {
	d := wire.NewDecoder(payload)
	msg := d.String()
	if d.Err() != nil {
		return "", d.Err()
	}
	return msg, nil
}

// --- worker-to-worker shuffle codecs (protocol version 2) ---

// taskAttempt names one committed map attempt.
type taskAttempt struct {
	task    int
	attempt int
}

// encodePeerHello builds the peer-connection opener: magic, version,
// and the job the pushes belong to. The receiver echoes the payload
// back verbatim as its accept.
func encodePeerHello(jobID uint64) []byte {
	e := wire.NewEncoder(16)
	e.Uvarint(helloMagic)
	e.Uvarint(ProtocolVersion)
	e.Uvarint(jobID)
	return e.Bytes()
}

func decodePeerHello(payload []byte) (jobID uint64, err error) {
	d := wire.NewDecoder(payload)
	magic := d.Uvarint()
	version := d.Uvarint()
	jobID = d.Uvarint()
	if d.Err() != nil {
		return 0, fmt.Errorf("%w: truncated peer hello", ErrFrame)
	}
	if magic != helloMagic {
		return 0, fmt.Errorf("%w: bad peer hello magic 0x%x", ErrFrame, magic)
	}
	if version != ProtocolVersion {
		return 0, fmt.Errorf("cluster: peer protocol version %d not supported (want %d)", version, ProtocolVersion)
	}
	if d.Remaining() != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes after peer hello", ErrFrame, d.Remaining())
	}
	return jobID, nil
}

func encodeRunPush(jobID uint64, r mapreduce.Run) []byte {
	e := wire.NewEncoder(len(r.Seg) + 24)
	e.Uvarint(jobID)
	e.Uvarint(uint64(r.Task))
	e.Uvarint(uint64(r.Attempt))
	e.Uvarint(uint64(r.Part))
	e.BytesField(r.Seg)
	return e.Bytes()
}

func decodeRunPush(payload []byte) (jobID uint64, r mapreduce.Run, err error) {
	d := wire.NewDecoder(payload)
	jobID = d.Uvarint()
	r = mapreduce.Run{
		Task:    int(d.Uvarint()),
		Attempt: int(d.Uvarint()),
		Part:    int(d.Uvarint()),
	}
	seg := d.BytesField()
	if d.Err() != nil {
		return 0, mapreduce.Run{}, d.Err()
	}
	if d.Remaining() != 0 {
		return 0, mapreduce.Run{}, fmt.Errorf("%w: %d trailing bytes after run push", ErrFrame, d.Remaining())
	}
	r.Seg = append([]byte(nil), seg...) // buffered runs outlive the frame
	r.Bytes = int64(len(r.Seg))
	return jobID, r, nil
}

func encodePartDone(jobID uint64, task, attempt, count int) []byte {
	e := wire.NewEncoder(24)
	e.Uvarint(jobID)
	e.Uvarint(uint64(task))
	e.Uvarint(uint64(attempt))
	e.Uvarint(uint64(count))
	return e.Bytes()
}

func decodePartDone(payload []byte) (jobID uint64, ta taskAttempt, count int, err error) {
	d := wire.NewDecoder(payload)
	jobID = d.Uvarint()
	ta = taskAttempt{task: int(d.Uvarint()), attempt: int(d.Uvarint())}
	count = int(d.Uvarint())
	if d.Err() != nil {
		return 0, taskAttempt{}, 0, d.Err()
	}
	if d.Remaining() != 0 {
		return 0, taskAttempt{}, 0, fmt.Errorf("%w: %d trailing bytes after partition done", ErrFrame, d.Remaining())
	}
	return jobID, ta, count, nil
}

func encodeRunReceipt(r mapreduce.Run) []byte {
	e := wire.NewEncoder(24)
	e.Uvarint(uint64(r.Task))
	e.Uvarint(uint64(r.Attempt))
	e.Uvarint(uint64(r.Part))
	e.Varint(r.Bytes)
	return e.Bytes()
}

func decodeRunReceipt(payload []byte) (mapreduce.Run, error) {
	d := wire.NewDecoder(payload)
	r := mapreduce.Run{
		Task:    int(d.Uvarint()),
		Attempt: int(d.Uvarint()),
		Part:    int(d.Uvarint()),
		Bytes:   d.Varint(),
	}
	if d.Err() != nil {
		return mapreduce.Run{}, d.Err()
	}
	if d.Remaining() != 0 {
		return mapreduce.Run{}, fmt.Errorf("%w: %d trailing bytes after run receipt", ErrFrame, d.Remaining())
	}
	if r.Bytes <= 0 {
		return mapreduce.Run{}, fmt.Errorf("%w: run receipt with non-positive byte count %d", ErrFrame, r.Bytes)
	}
	return r, nil
}

// reduceReq is one worker-resident reduce attempt request.
type reduceReq struct {
	jobID uint64
	spec  JobSpec
	part  int
	// dropState injects the chaos reduce-owner death: the worker drops
	// the partition's buffered runs and aborts the connection, so the
	// retried attempt exercises the refill path.
	dropState bool
	// commits is the coordinator's committed run list for the
	// partition; the worker reduces exactly these and reports any it
	// never received.
	commits []taskAttempt
}

// maxReduceCommits caps a decoded commit list (one entry per map task).
const maxReduceCommits = 1 << 20

func encodeReduce(q *reduceReq) []byte {
	e := wire.NewEncoder(64 + len(q.commits)*4)
	e.Uvarint(q.jobID)
	appendJobSpec(e, q.spec)
	e.Uvarint(uint64(q.part))
	e.Bool(q.dropState)
	e.Uvarint(uint64(len(q.commits)))
	for _, c := range q.commits {
		e.Uvarint(uint64(c.task))
		e.Uvarint(uint64(c.attempt))
	}
	return e.Bytes()
}

func decodeReduce(payload []byte) (*reduceReq, error) {
	d := wire.NewDecoder(payload)
	q := &reduceReq{
		jobID:     d.Uvarint(),
		spec:      decodeJobSpec(d),
		part:      int(d.Uvarint()),
		dropState: d.Bool(),
	}
	n := d.Length(maxReduceCommits)
	if d.Err() != nil {
		return nil, d.Err()
	}
	q.commits = make([]taskAttempt, n)
	for i := range q.commits {
		q.commits[i] = taskAttempt{task: int(d.Uvarint()), attempt: int(d.Uvarint())}
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after reduce request", ErrFrame, d.Remaining())
	}
	return q, nil
}

// maxReduceGroups caps a decoded reduce reply's group count, and
// maxGroupRows one group's row count.
const (
	maxReduceGroups = 1 << 21
	maxGroupRows    = 1 << 21
)

// encodeReduceMissing builds the "refill me" reduce reply: the
// committed runs the owner never received.
func encodeReduceMissing(missing []taskAttempt) []byte {
	e := wire.NewEncoder(16 + len(missing)*4)
	e.Uvarint(uint64(len(missing)))
	for _, m := range missing {
		e.Uvarint(uint64(m.task))
		e.Uvarint(uint64(m.attempt))
	}
	e.Uvarint(0) // zero groups
	return e.Bytes()
}

// encodeReduceGroups builds the successful reduce reply: the merged
// (and combined) key groups in the engine's streaming order.
func encodeReduceGroups(groups []mapreduce.ReducedGroup) []byte {
	e := wire.NewEncoder(1 << 12)
	e.Uvarint(0) // nothing missing
	e.Uvarint(uint64(len(groups)))
	for _, g := range groups {
		e.String(g.Key)
		e.Uvarint(uint64(len(g.Rows)))
		for _, r := range g.Rows {
			e.Uvarint(uint64(r.MapperID))
			e.Varint(r.RecordID)
			e.BytesField(r.Value)
		}
	}
	return e.Bytes()
}

// decodeReduceDone decodes a reduce reply. Exactly one of groups and
// missing is meaningful: a non-empty missing list means the owner
// needs refills before it can reduce. Row values are copied out of the
// frame buffer.
func decodeReduceDone(payload []byte) (groups []mapreduce.ReducedGroup, missing []taskAttempt, err error) {
	d := wire.NewDecoder(payload)
	nm := d.Length(maxReduceCommits)
	if d.Err() != nil {
		return nil, nil, d.Err()
	}
	if nm > 0 {
		missing = make([]taskAttempt, nm)
		for i := range missing {
			missing[i] = taskAttempt{task: int(d.Uvarint()), attempt: int(d.Uvarint())}
		}
	}
	ng := d.Length(maxReduceGroups)
	if d.Err() != nil {
		return nil, nil, d.Err()
	}
	if ng > 0 {
		groups = make([]mapreduce.ReducedGroup, 0, min(ng, d.Remaining()/2+1))
		for i := 0; i < ng; i++ {
			g := mapreduce.ReducedGroup{Key: d.String()}
			nr := d.Length(maxGroupRows)
			if d.Err() != nil {
				return nil, nil, d.Err()
			}
			g.Rows = make([]mapreduce.Shuffled, 0, min(nr, d.Remaining()/3+1))
			for j := 0; j < nr; j++ {
				row := mapreduce.Shuffled{
					MapperID: int(d.Uvarint()),
					RecordID: d.Varint(),
				}
				row.Value = append([]byte(nil), d.BytesField()...)
				if d.Err() != nil {
					return nil, nil, d.Err()
				}
				g.Rows = append(g.Rows, row)
			}
			groups = append(groups, g)
		}
	}
	if d.Err() != nil {
		return nil, nil, d.Err()
	}
	if d.Remaining() != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes after reduce reply", ErrFrame, d.Remaining())
	}
	if len(missing) > 0 && len(groups) > 0 {
		return nil, nil, fmt.Errorf("%w: reduce reply carries both groups and missing runs", ErrFrame)
	}
	return groups, missing, nil
}

func encodeJobDone(jobID uint64) []byte {
	e := wire.NewEncoder(12)
	e.Uvarint(jobID)
	return e.Bytes()
}

func decodeJobDone(payload []byte) (uint64, error) {
	d := wire.NewDecoder(payload)
	jobID := d.Uvarint()
	if d.Err() != nil {
		return 0, d.Err()
	}
	if d.Remaining() != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes after job done", ErrFrame, d.Remaining())
	}
	return jobID, nil
}
