package cluster

import (
	"fmt"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Payload codecs for the frame protocol, built on the wire primitives
// the segment codec already uses. Every decoder is total: corrupt
// input returns an error naming wire.ErrCorrupt or ErrFrame, never a
// panic — the same contract decodeSegment holds, extended across the
// socket.

// JobSpec identifies, to a worker, how to build the map side of a job:
// the registered query plus the engine knobs that change map output.
// All fields are scalar so specs are comparable — workers cache one
// built mapper per distinct spec.
type JobSpec struct {
	// Query is the job registry key (RegisterJob), e.g. "G1".
	Query string
	// NumReducers and Compress must match the coordinator's
	// mapreduce.Config: they shape the partitioning and encoding of
	// every run the worker ships.
	NumReducers int
	Compress    bool
	// Combine, Columnar, MemoSize, and MapParallelism are the
	// core.SympleOptions knobs that affect the map side.
	Combine        bool
	Columnar       bool
	MemoSize       int
	MapParallelism int
}

func appendJobSpec(e *wire.Encoder, s JobSpec) {
	e.String(s.Query)
	e.Uvarint(uint64(s.NumReducers))
	e.Bool(s.Compress)
	e.Bool(s.Combine)
	e.Bool(s.Columnar)
	e.Varint(int64(s.MemoSize))
	e.Varint(int64(s.MapParallelism))
}

func decodeJobSpec(d *wire.Decoder) JobSpec {
	return JobSpec{
		Query:          d.String(),
		NumReducers:    int(d.Uvarint()),
		Compress:       d.Bool(),
		Combine:        d.Bool(),
		Columnar:       d.Bool(),
		MemoSize:       int(d.Varint()),
		MapParallelism: int(d.Varint()),
	}
}

// encodeHello builds the hello payload: magic then protocol version.
func encodeHello() []byte {
	e := wire.NewEncoder(8)
	e.Uvarint(helloMagic)
	e.Uvarint(ProtocolVersion)
	return e.Bytes()
}

// DecodeHello validates a hello payload, returning the peer's version.
// Bad magic and unsupported versions are errors (never panics); the
// fuzz corpus pins both classes.
func DecodeHello(payload []byte) (version uint64, err error) {
	d := wire.NewDecoder(payload)
	magic := d.Uvarint()
	version = d.Uvarint()
	if d.Err() != nil {
		return 0, fmt.Errorf("%w: truncated hello", ErrFrame)
	}
	if magic != helloMagic {
		return 0, fmt.Errorf("%w: bad hello magic 0x%x", ErrFrame, magic)
	}
	if version != ProtocolVersion {
		return version, fmt.Errorf("cluster: protocol version %d not supported (want %d)", version, ProtocolVersion)
	}
	if d.Remaining() != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes after hello", ErrFrame, d.Remaining())
	}
	return version, nil
}

// assignment is one map attempt shipped to a worker.
type assignment struct {
	spec    JobSpec
	task    int
	attempt int
	// abortAfter, when ≥ 0, instructs the worker to abort the
	// connection after streaming that many runs — the deterministic
	// worker-death injection the chaos plans drive. -1 disables.
	abortAfter int
	seg        *mapreduce.Segment
}

// maxSegmentRecords caps a decoded assignment's record count; segments
// in this repo are thousands of records, so the cap only rejects
// forged counts before allocation.
const maxSegmentRecords = 1 << 26

func encodeAssign(a *assignment) []byte {
	e := wire.NewEncoder(1 << 16)
	appendJobSpec(e, a.spec)
	e.Uvarint(uint64(a.task))
	e.Uvarint(uint64(a.attempt))
	e.Varint(int64(a.abortAfter))
	e.Uvarint(uint64(a.seg.ID))
	e.Uvarint(uint64(len(a.seg.Records)))
	for _, r := range a.seg.Records {
		e.BytesField(r)
	}
	// The columnar form rides along in colcodec framing when the
	// coordinator has it, so workers run the same batched execution
	// path they would in process.
	if a.seg.Columns != nil {
		e.Bool(true)
		e.BytesField(mapreduce.EncodeColumnar(a.seg.Columns, false))
	} else {
		e.Bool(false)
	}
	return e.Bytes()
}

func decodeAssign(payload []byte) (*assignment, error) {
	d := wire.NewDecoder(payload)
	a := &assignment{
		spec:       decodeJobSpec(d),
		task:       int(d.Uvarint()),
		attempt:    int(d.Uvarint()),
		abortAfter: int(d.Varint()),
	}
	segID := int(d.Uvarint())
	n := d.Length(maxSegmentRecords)
	if d.Err() != nil {
		return nil, d.Err()
	}
	recs := make([][]byte, n)
	for i := range recs {
		b := d.BytesField()
		if d.Err() != nil {
			return nil, d.Err()
		}
		// Copy out of the frame buffer: segments outlive the frame.
		recs[i] = append([]byte(nil), b...)
	}
	a.seg = &mapreduce.Segment{ID: segID, Records: recs}
	if d.Bool() {
		cols, err := mapreduce.DecodeColumnar(d.BytesField())
		if err != nil {
			return nil, fmt.Errorf("cluster: assignment columnar payload: %w", err)
		}
		a.seg.Columns = cols
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after assignment", ErrFrame, d.Remaining())
	}
	return a, nil
}

func encodeRun(r mapreduce.Run) []byte {
	e := wire.NewEncoder(len(r.Seg) + 16)
	e.Uvarint(uint64(r.Task))
	e.Uvarint(uint64(r.Attempt))
	e.Uvarint(uint64(r.Part))
	e.BytesField(r.Seg)
	return e.Bytes()
}

func decodeRun(payload []byte) (mapreduce.Run, error) {
	d := wire.NewDecoder(payload)
	r := mapreduce.Run{
		Task:    int(d.Uvarint()),
		Attempt: int(d.Uvarint()),
		Part:    int(d.Uvarint()),
	}
	seg := d.BytesField()
	if d.Err() != nil {
		return mapreduce.Run{}, d.Err()
	}
	if d.Remaining() != 0 {
		return mapreduce.Run{}, fmt.Errorf("%w: %d trailing bytes after run", ErrFrame, d.Remaining())
	}
	r.Seg = append([]byte(nil), seg...) // outlives the frame buffer
	r.Bytes = int64(len(r.Seg))
	return r, nil
}

// mapDone is the attempt-closing metrics message, the wire form of the
// non-run fields of mapreduce.MapOutput.
type mapDone struct {
	emitted    int64
	records    int64
	inputBytes int64
	duration   time.Duration
	logical    []int64
}

// maxParts caps the per-partition slice in a decoded mapDone.
const maxParts = 1 << 16

func encodeMapDone(m *mapDone) []byte {
	e := wire.NewEncoder(64)
	e.Varint(m.emitted)
	e.Varint(m.records)
	e.Varint(m.inputBytes)
	e.Varint(int64(m.duration))
	e.Uvarint(uint64(len(m.logical)))
	for _, v := range m.logical {
		e.Varint(v)
	}
	return e.Bytes()
}

func decodeMapDone(payload []byte) (*mapDone, error) {
	d := wire.NewDecoder(payload)
	m := &mapDone{
		emitted:    d.Varint(),
		records:    d.Varint(),
		inputBytes: d.Varint(),
		duration:   time.Duration(d.Varint()),
	}
	n := d.Length(maxParts)
	if d.Err() != nil {
		return nil, d.Err()
	}
	m.logical = make([]int64, n)
	for i := range m.logical {
		m.logical[i] = d.Varint()
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after map-done", ErrFrame, d.Remaining())
	}
	return m, nil
}

// maxSpans and maxSpanKVs cap a decoded spans frame.
const (
	maxSpans   = 1 << 20
	maxSpanKVs = 1 << 10
)

func encodeSpans(spans []*obs.Span) []byte {
	e := wire.NewEncoder(len(spans) * 64)
	e.Uvarint(uint64(len(spans)))
	for _, sp := range spans {
		e.String(sp.Kind)
		e.String(sp.Name)
		e.Varint(sp.Start)
		e.Varint(sp.End)
		e.Uvarint(uint64(len(sp.Attrs)))
		for k, v := range sp.Attrs {
			e.String(k)
			e.Varint(v)
		}
		e.Uvarint(uint64(len(sp.Tags)))
		for k, v := range sp.Tags {
			e.String(k)
			e.String(v)
		}
	}
	return e.Bytes()
}

func decodeSpans(payload []byte) ([]*obs.Span, error) {
	d := wire.NewDecoder(payload)
	n := d.Length(maxSpans)
	if d.Err() != nil {
		return nil, d.Err()
	}
	spans := make([]*obs.Span, 0, n)
	for i := 0; i < n; i++ {
		sp := &obs.Span{
			Kind:  d.String(),
			Name:  d.String(),
			Start: d.Varint(),
			End:   d.Varint(),
		}
		if na := d.Length(maxSpanKVs); na > 0 {
			sp.Attrs = make(map[string]int64, na)
			for j := 0; j < na; j++ {
				k := d.String()
				sp.Attrs[k] = d.Varint()
			}
		}
		if nt := d.Length(maxSpanKVs); nt > 0 {
			sp.Tags = make(map[string]string, nt)
			for j := 0; j < nt; j++ {
				k := d.String()
				sp.Tags[k] = d.String()
			}
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		spans = append(spans, sp)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after spans", ErrFrame, d.Remaining())
	}
	return spans, nil
}

func encodeError(msg string) []byte {
	e := wire.NewEncoder(len(msg) + 4)
	e.String(msg)
	return e.Bytes()
}

func decodeError(payload []byte) (string, error) {
	d := wire.NewDecoder(payload)
	msg := d.String()
	if d.Err() != nil {
		return "", d.Err()
	}
	return msg, nil
}
