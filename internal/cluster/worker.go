package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// The worker side: accept coordinator connections, exchange hellos,
// then serve assignments one at a time per connection. Each assignment
// runs the registered map side over the shipped segment via
// mapreduce.ExecuteMap — the exact attempt body the in-process engine
// runs — and streams every non-empty partition's encoded run back as
// it is produced, followed by the worker-side trace spans and the
// closing metrics frame. A worker holds no job state across attempts
// beyond a cache of built mappers, so killing one loses nothing that
// isn't re-derivable: the coordinator just retries the attempt.

// Worker serves map assignments to coordinators.
type Worker struct {
	mu     sync.Mutex
	maps   map[JobSpec]*cachedMapper
	active atomic.Int64
}

// cachedMapper is one built map side plus the trace plumbing that
// collects its spans per assignment. sympleMapFunc closes over its
// trace, so the trace and sink live as long as the mapper; runs of the
// same spec on one worker serialize on mu (one connection per worker
// in practice, so this never contends).
type cachedMapper struct {
	mu    sync.Mutex
	fn    mapreduce.MapFunc
	trace *obs.Trace
	sink  *obs.MemSink
}

// NewWorker returns an empty worker.
func NewWorker() *Worker {
	return &Worker{maps: map[JobSpec]*cachedMapper{}}
}

// Active reports connections currently being served — the
// connection-leak probe the differential tests poll to zero.
func (w *Worker) Active() int { return int(w.active.Load()) }

// Serve accepts and serves connections until ln is closed or ctx is
// cancelled; a closed listener returns nil.
func (w *Worker) Serve(ctx context.Context, ln net.Listener) error {
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.active.Add(1)
			defer w.active.Add(-1)
			w.serveConn(ctx, conn) // per-connection errors end that conn only
		}()
	}
}

// errAbortConn is the sentinel the chaos-injected worker abort uses to
// tear down the connection mid-stream.
var errAbortConn = errors.New("cluster: injected worker abort")

// serveConn handshakes and then serves assignments until the peer
// disconnects or a protocol/injected fault kills the connection.
func (w *Worker) serveConn(ctx context.Context, conn net.Conn) error {
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	fr, fw := newFrameReader(conn), newFrameWriter(conn)
	// Hello exchange: coordinator speaks first, worker answers.
	f, err := fr.next()
	if err != nil {
		return err
	}
	if f.Type != FrameHello {
		return fmt.Errorf("%w: expected hello, got frame type %d", ErrFrame, f.Type)
	}
	if _, err := DecodeHello(f.Payload); err != nil {
		// Tell a mismatched peer why before hanging up.
		_ = fw.write(FrameError, encodeError(err.Error()))
		return err
	}
	if err := fw.write(FrameHello, encodeHello()); err != nil {
		return err
	}
	for {
		f, err := fr.next()
		if err != nil {
			if err == io.EOF {
				return nil // coordinator hung up cleanly between assignments
			}
			return err
		}
		if f.Type != FrameAssign {
			return fmt.Errorf("%w: expected assignment, got frame type %d", ErrFrame, f.Type)
		}
		a, err := decodeAssign(f.Payload)
		if err != nil {
			// Undecodable assignment: the stream is unsynchronized, kill it.
			_ = fw.write(FrameError, encodeError(err.Error()))
			return err
		}
		if err := w.runAssignment(a, fw); err != nil {
			if errors.Is(err, errAbortConn) {
				return err // injected death: abandon the conn abruptly
			}
			// Attempt-level failure: report and stay available.
			if werr := fw.write(FrameError, encodeError(err.Error())); werr != nil {
				return werr
			}
		}
	}
}

// mapper returns the cached map side for a spec, building and caching
// it on first use. The returned cachedMapper is locked; the caller
// unlocks when the assignment finishes.
func (w *Worker) mapper(spec JobSpec) (*cachedMapper, error) {
	w.mu.Lock()
	cm, ok := w.maps[spec]
	if !ok {
		sink := obs.NewMemSink()
		trace := obs.NewTrace(sink)
		builder, err := lookupJob(spec.Query)
		if err != nil {
			w.mu.Unlock()
			return nil, err
		}
		fn, err := builder(spec, trace)
		if err != nil {
			w.mu.Unlock()
			return nil, err
		}
		cm = &cachedMapper{fn: fn, trace: trace, sink: sink}
		w.maps[spec] = cm
	}
	w.mu.Unlock()
	cm.mu.Lock()
	cm.sink.Reset() // spans emitted from here on belong to this assignment
	return cm, nil
}

// runSink streams runs to the coordinator as FrameRun messages,
// implementing the worker half of the transport seam. abortAfter ≥ 0
// injects the chaos worker death after that many runs.
type runSink struct {
	fw         *frameWriter
	sent       int
	abortAfter int
}

func (s *runSink) Publish(r mapreduce.Run) error {
	if s.abortAfter >= 0 && s.sent >= s.abortAfter {
		return errAbortConn
	}
	if err := s.fw.write(FrameRun, encodeRun(r)); err != nil {
		return err
	}
	s.sent++
	return nil
}

// runAssignment executes one map attempt and streams its output.
func (w *Worker) runAssignment(a *assignment, fw *frameWriter) error {
	cm, err := w.mapper(a.spec)
	if err != nil {
		return err
	}
	defer cm.mu.Unlock()
	sink := &runSink{fw: fw, abortAfter: a.abortAfter}
	out, err := mapreduce.ExecuteMap(cm.fn, a.seg, a.task, a.attempt,
		a.spec.NumReducers, a.spec.Compress, cm.trace, sink)
	if err != nil {
		return err
	}
	if spans := cm.sink.Spans(); len(spans) > 0 {
		if err := fw.write(FrameSpans, encodeSpans(spans)); err != nil {
			return err
		}
	}
	return fw.write(FrameMapDone, encodeMapDone(&mapDone{
		emitted:    out.Emitted,
		records:    out.Records,
		inputBytes: out.InputBytes,
		duration:   out.Duration,
		logical:    out.LogicalOutBytes,
	}))
}

// WorkerMain runs a worker daemon the way cmd/sympled and the spawned
// subprocess mode use it: listen on addr (host:0 picks a free port),
// announce the bound address on stdout as "SYMPLED LISTEN <addr>", and
// serve until stdin reaches EOF — the parent closing the pipe (or
// dying) is the shutdown signal, so orphaned workers cannot linger.
func WorkerMain(addr string) error {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: worker listen: %w", err)
	}
	fmt.Printf("%s%s\n", spawnBanner, ln.Addr())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		defer cancel()
		// Block until the parent closes our stdin (EOF) or it errors.
		_, _ = io.Copy(io.Discard, bufio.NewReader(os.Stdin))
	}()
	return NewWorker().Serve(ctx, ln)
}
