package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// The worker side: accept coordinator connections, exchange hellos,
// then serve assignments one at a time per connection. Each assignment
// runs the registered map side over the shipped segment via
// mapreduce.ExecuteMap — the exact attempt body the in-process engine
// runs. In the via-coordinator topology every non-empty partition's
// encoded run streams back on the same connection; in the w2w topology
// runs push straight to each partition's owning worker (peer.go) and
// only byte-counted receipts go back. Worker-to-worker mode also makes
// the worker a reduce host: FrameReduce merges the runs buffered for a
// partition, applies the job's registered group combiner, and returns
// the (usually tiny) combined groups. Killing a worker still loses
// nothing that isn't re-derivable — buffered runs are refilled by
// re-running the committed map attempt over its retained segment.

// maxWorkerJobs caps per-job shuffle states retained by a worker; the
// oldest is evicted (peers closed, runs dropped) when exceeded.
const maxWorkerJobs = 8

// maxCachedSegments caps the content-addressed segment cache.
const maxCachedSegments = 64

// needSegmentPrefix opens the FrameError message a worker sends when a
// digest-only assignment misses its cache; the coordinator retries
// that one assignment with the payload attached.
const needSegmentPrefix = "need-segment: "

// Worker serves map assignments to coordinators.
type Worker struct {
	mu     sync.Mutex
	maps   map[JobSpec]*cachedMapper
	reds   map[JobSpec]*cachedReducer
	active atomic.Int64

	jmu      sync.Mutex
	jobs     map[uint64]*jobState
	jobOrder []uint64

	smu      sync.Mutex
	segs     map[uint64]*mapreduce.Segment
	segOrder []uint64
}

// cachedMapper is one built map side plus the trace plumbing that
// collects its spans per assignment. sympleMapFunc closes over its
// trace, so the trace and sink live as long as the mapper; runs of the
// same spec on one worker serialize on mu (one connection per worker
// in practice, so this never contends).
type cachedMapper struct {
	mu    sync.Mutex
	fn    mapreduce.MapFunc
	trace *obs.Trace
	sink  *obs.MemSink
}

// cachedReducer is the reduce-side analogue: the job's group combiner
// (nil when none is registered — groups pass through uncombined) plus
// the trace that collects the reduce attempt's spans.
type cachedReducer struct {
	mu    sync.Mutex
	comb  GroupCombiner
	trace *obs.Trace
	sink  *obs.MemSink
}

// NewWorker returns an empty worker.
func NewWorker() *Worker {
	return &Worker{
		maps: map[JobSpec]*cachedMapper{},
		reds: map[JobSpec]*cachedReducer{},
		jobs: map[uint64]*jobState{},
		segs: map[uint64]*mapreduce.Segment{},
	}
}

// Active reports connections currently being served — the
// connection-leak probe the differential tests poll to zero.
func (w *Worker) Active() int { return int(w.active.Load()) }

// Jobs reports retained per-job shuffle states — the state-leak probe:
// after Pool.Close broadcasts job-done, this drains to zero.
func (w *Worker) Jobs() int {
	w.jmu.Lock()
	defer w.jmu.Unlock()
	return len(w.jobs)
}

// CachedSegments reports the content-addressed segment cache size.
func (w *Worker) CachedSegments() int {
	w.smu.Lock()
	defer w.smu.Unlock()
	return len(w.segs)
}

// DropSegmentCache empties the segment cache — the test hook that
// forces the need-segment re-ship path.
func (w *Worker) DropSegmentCache() {
	w.smu.Lock()
	w.segs = map[uint64]*mapreduce.Segment{}
	w.segOrder = w.segOrder[:0]
	w.smu.Unlock()
}

// Serve accepts and serves connections until ln is closed or ctx is
// cancelled; a closed listener returns nil.
func (w *Worker) Serve(ctx context.Context, ln net.Listener) error {
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.active.Add(1)
			defer w.active.Add(-1)
			w.serveConn(ctx, conn) // per-connection errors end that conn only
		}()
	}
}

// errAbortConn is the sentinel the chaos-injected worker abort uses to
// tear down the connection mid-stream.
var errAbortConn = errors.New("cluster: injected worker abort")

// serveConn handshakes and then serves the connection until the peer
// disconnects or a protocol/injected fault kills it. The opening frame
// decides the connection's role: FrameHello starts a coordinator
// conversation (assignments, reduce requests, job-done), FramePeerHello
// a worker-to-worker push stream.
func (w *Worker) serveConn(ctx context.Context, conn net.Conn) error {
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	fr, fw := newFrameReader(conn), newFrameWriter(conn)
	f, err := fr.next()
	if err != nil {
		return err
	}
	switch f.Type {
	case FramePeerHello:
		jobID, err := decodePeerHello(f.Payload)
		if err != nil {
			_ = fw.write(FrameError, encodeError(err.Error()))
			return err
		}
		if err := fw.write(FramePeerHello, f.Payload); err != nil {
			return err
		}
		return w.servePeer(jobID, fr, fw)
	case FrameHello:
		if _, err := DecodeHello(f.Payload); err != nil {
			// Tell a mismatched peer why before hanging up.
			_ = fw.write(FrameError, encodeError(err.Error()))
			return err
		}
		if err := fw.write(FrameHello, encodeHello()); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w: expected hello, got frame type %d", ErrFrame, f.Type)
	}
	for {
		f, err := fr.next()
		if err != nil {
			if err == io.EOF {
				return nil // coordinator hung up cleanly between requests
			}
			return err
		}
		switch f.Type {
		case FrameAssign:
			a, err := decodeAssign(f.Payload)
			if err != nil {
				// Undecodable assignment: the stream is unsynchronized, kill it.
				_ = fw.write(FrameError, encodeError(err.Error()))
				return err
			}
			if err := w.runAssignment(a, fw); err != nil {
				if errors.Is(err, errAbortConn) {
					return err // injected death: abandon the conn abruptly
				}
				// Attempt-level failure: report and stay available.
				if werr := fw.write(FrameError, encodeError(err.Error())); werr != nil {
					return werr
				}
			}
		case FrameReduce:
			req, err := decodeReduce(f.Payload)
			if err != nil {
				_ = fw.write(FrameError, encodeError(err.Error()))
				return err
			}
			if err := w.runReduce(req, fw); err != nil {
				if errors.Is(err, errAbortConn) {
					return err
				}
				if werr := fw.write(FrameError, encodeError(err.Error())); werr != nil {
					return werr
				}
			}
		case FrameJobDone:
			id, err := decodeJobDone(f.Payload)
			if err != nil {
				return err
			}
			w.dropJob(id)
		default:
			return fmt.Errorf("%w: unexpected frame type %d on coordinator connection", ErrFrame, f.Type)
		}
	}
}

// jobState returns (creating if needed) the shuffle state for a job.
// Creation is push-order agnostic: a peer's run push may land before
// this worker ever sees an assignment for the job.
func (w *Worker) jobState(id uint64) *jobState {
	w.jmu.Lock()
	defer w.jmu.Unlock()
	if js, ok := w.jobs[id]; ok {
		return js
	}
	js := newJobState(id)
	w.jobs[id] = js
	w.jobOrder = append(w.jobOrder, id)
	if len(w.jobOrder) > maxWorkerJobs {
		evict := w.jobOrder[0]
		w.jobOrder = append(w.jobOrder[:0], w.jobOrder[1:]...)
		if old, ok := w.jobs[evict]; ok {
			delete(w.jobs, evict)
			go old.dropPeers() // socket teardown off the registry lock
		}
	}
	return js
}

// dropJob discards a job's shuffle state — the FrameJobDone cleanup.
func (w *Worker) dropJob(id uint64) {
	w.jmu.Lock()
	js, ok := w.jobs[id]
	delete(w.jobs, id)
	for i, v := range w.jobOrder {
		if v == id {
			w.jobOrder = append(w.jobOrder[:i], w.jobOrder[i+1:]...)
			break
		}
	}
	w.jmu.Unlock()
	if ok {
		js.dropPeers()
	}
}

// cacheSegment stores a segment under its content digest.
func (w *Worker) cacheSegment(digest uint64, seg *mapreduce.Segment) {
	if digest == 0 {
		return
	}
	w.smu.Lock()
	defer w.smu.Unlock()
	if _, ok := w.segs[digest]; ok {
		return
	}
	w.segs[digest] = seg
	w.segOrder = append(w.segOrder, digest)
	if len(w.segOrder) > maxCachedSegments {
		evict := w.segOrder[0]
		w.segOrder = append(w.segOrder[:0], w.segOrder[1:]...)
		delete(w.segs, evict)
	}
}

// resolveSegment produces the assignment's input segment: the attached
// payload (cached for next time), or the digest cache. A cache miss on
// a digest-only assignment is the need-segment error the coordinator
// answers by re-sending with the payload.
func (w *Worker) resolveSegment(a *assignment) (*mapreduce.Segment, error) {
	if a.seg != nil {
		w.cacheSegment(a.segDigest, a.seg)
		return a.seg, nil
	}
	w.smu.Lock()
	seg := w.segs[a.segDigest]
	w.smu.Unlock()
	if seg == nil {
		return nil, fmt.Errorf("%s%016x", needSegmentPrefix, a.segDigest)
	}
	return seg, nil
}

// isNeedSegment reports whether a worker error message is the cache
// miss that asks for a payload re-ship.
func isNeedSegment(msg string) bool { return strings.HasPrefix(msg, needSegmentPrefix) }

// mapper returns the cached map side for a spec, building and caching
// it on first use. The returned cachedMapper is locked; the caller
// unlocks when the assignment finishes.
func (w *Worker) mapper(spec JobSpec) (*cachedMapper, error) {
	w.mu.Lock()
	cm, ok := w.maps[spec]
	if !ok {
		sink := obs.NewMemSink()
		trace := obs.NewTrace(sink)
		builder, err := lookupJob(spec.Query)
		if err != nil {
			w.mu.Unlock()
			return nil, err
		}
		fn, err := builder(spec, trace)
		if err != nil {
			w.mu.Unlock()
			return nil, err
		}
		cm = &cachedMapper{fn: fn, trace: trace, sink: sink}
		w.maps[spec] = cm
	}
	w.mu.Unlock()
	cm.mu.Lock()
	cm.sink.Reset() // spans emitted from here on belong to this assignment
	return cm, nil
}

// reducer returns the cached reduce side for a spec (combiner may be
// nil), locked like mapper.
func (w *Worker) reducer(spec JobSpec) (*cachedReducer, error) {
	w.mu.Lock()
	cr, ok := w.reds[spec]
	if !ok {
		sink := obs.NewMemSink()
		trace := obs.NewTrace(sink)
		var comb GroupCombiner
		if cb := lookupCombiner(spec.Query); cb != nil {
			var err error
			comb, err = cb(spec, trace)
			if err != nil {
				w.mu.Unlock()
				return nil, err
			}
		}
		cr = &cachedReducer{comb: comb, trace: trace, sink: sink}
		w.reds[spec] = cr
	}
	w.mu.Unlock()
	cr.mu.Lock()
	cr.sink.Reset()
	return cr, nil
}

// runSink streams runs to the coordinator as FrameRun messages,
// implementing the worker half of the transport seam. abortAfter ≥ 0
// injects the chaos worker death after that many runs.
type runSink struct {
	fw         *frameWriter
	sent       int
	abortAfter int
}

func (s *runSink) Publish(r mapreduce.Run) error {
	if s.abortAfter >= 0 && s.sent >= s.abortAfter {
		return errAbortConn
	}
	if err := s.fw.write(FrameRun, encodeRun(r)); err != nil {
		return err
	}
	s.sent++
	return nil
}

// peerRunSink is the w2w run sink: self-owned partitions buffer
// locally, the rest push to their owners, and (outside refill mode) a
// byte-counted receipt goes to the coordinator per run. The injected
// faults keep their via-coordinator counting semantics: abortAfter
// counts published runs, peerDropAfter counts remote pushes.
type peerRunSink struct {
	a      *assignment
	js     *jobState
	fw     *frameWriter // coordinator connection, for receipts
	sent   int
	pushed int
	counts map[int]int // owner → pushes, for the partDone barriers
}

func (s *peerRunSink) Publish(r mapreduce.Run) error {
	if s.a.abortAfter >= 0 && s.sent >= s.a.abortAfter {
		return errAbortConn
	}
	if s.a.refillPart >= 0 && r.Part != s.a.refillPart {
		return nil // refill re-derives one partition; drop the rest
	}
	owner := s.a.owners[r.Part]
	if owner == s.a.selfID {
		s.js.putRun(r)
	} else {
		if s.a.peerDropAfter >= 0 && s.pushed >= s.a.peerDropAfter {
			s.js.dropPeers()
			return fmt.Errorf("cluster: injected peer-connection drop (task %d attempt %d after %d pushes)",
				r.Task, r.Attempt, s.pushed)
		}
		pc, err := s.js.peer(owner)
		if err != nil {
			return err
		}
		if err := pc.push(s.js.id, r); err != nil {
			s.js.closePeer(owner)
			return fmt.Errorf("cluster: pushing run to worker %d: %w", owner, err)
		}
		s.pushed++
		s.counts[owner]++
	}
	if s.a.refillPart < 0 {
		if err := s.fw.write(FrameRunReceipt, encodeRunReceipt(r)); err != nil {
			return err
		}
	}
	s.sent++
	return nil
}

// finish runs the partition-done barrier against every pushed-to owner
// so FrameMapDone (and thus the coordinator's commit) implies the runs
// are resident where the reduce will look for them.
func (s *peerRunSink) finish(task, attempt int) error {
	for owner, n := range s.counts {
		pc, err := s.js.peer(owner)
		if err != nil {
			return err
		}
		if err := pc.partDone(s.js.id, task, attempt, n); err != nil {
			s.js.closePeer(owner)
			return fmt.Errorf("cluster: settling pushes with worker %d: %w", owner, err)
		}
	}
	return nil
}

// runAssignment executes one map attempt and streams its output.
func (w *Worker) runAssignment(a *assignment, fw *frameWriter) error {
	seg, err := w.resolveSegment(a)
	if err != nil {
		return err
	}
	cm, err := w.mapper(a.spec)
	if err != nil {
		return err
	}
	defer cm.mu.Unlock()
	var sink mapreduce.RunSink
	var ps *peerRunSink
	if a.w2w {
		js := w.jobState(a.jobID)
		js.setTopo(a.owners, a.addrs)
		ps = &peerRunSink{a: a, js: js, fw: fw, counts: map[int]int{}}
		sink = ps
	} else {
		sink = &runSink{fw: fw, abortAfter: a.abortAfter}
	}
	out, err := mapreduce.ExecuteMap(cm.fn, seg, a.task, a.attempt,
		a.spec.NumReducers, a.spec.Compress, cm.trace, sink)
	if err != nil {
		return err
	}
	if ps != nil {
		if err := ps.finish(a.task, a.attempt); err != nil {
			return err
		}
	}
	// A refill re-derives an already committed attempt: its spans
	// already shipped with the original, so re-sending would double
	// them in the trace.
	if a.refillPart < 0 {
		if spans := cm.sink.Spans(); len(spans) > 0 {
			if err := fw.write(FrameSpans, encodeSpans(spans)); err != nil {
				return err
			}
		}
	}
	return fw.write(FrameMapDone, encodeMapDone(&mapDone{
		emitted:    out.Emitted,
		records:    out.Records,
		inputBytes: out.InputBytes,
		duration:   out.Duration,
		procs:      runtime.GOMAXPROCS(0),
		logical:    out.LogicalOutBytes,
	}))
}

// runReduce serves one worker-resident reduce attempt: merge the
// partition's buffered runs, combine each key group, and reply with
// the groups — or with the committed runs this worker is missing, so
// the coordinator can refill them. Spans for the attempt precede the
// reply frame and ship only on success, preserving the verifier's
// run-merged-once invariant (a failed attempt's decodes never reach
// the coordinator's trace).
func (w *Worker) runReduce(req *reduceReq, fw *frameWriter) error {
	js := w.jobState(req.jobID)
	if req.dropState {
		js.dropPart(req.part)
		return errAbortConn
	}
	var missing []taskAttempt
	runs := make([]mapreduce.Run, 0, len(req.commits))
	for _, c := range req.commits {
		r, ok := js.getRun(c.task, c.attempt, req.part)
		if !ok {
			missing = append(missing, c)
			continue
		}
		runs = append(runs, r)
	}
	if len(missing) > 0 {
		return fw.write(FrameReduceDone, encodeReduceMissing(missing))
	}
	cr, err := w.reducer(req.spec)
	if err != nil {
		return err
	}
	defer cr.mu.Unlock()
	var groups []mapreduce.ReducedGroup
	err = mapreduce.MergeEncodedRuns(req.part, runs, cr.trace, func(key string, group []mapreduce.Shuffled) error {
		rows := group
		if cr.comb != nil {
			var cerr error
			rows, cerr = cr.comb(key, group)
			if cerr != nil {
				return cerr
			}
		}
		// Copy: the merge reuses the group buffer and its values alias
		// pooled decode buffers.
		g := mapreduce.ReducedGroup{Key: key, Rows: make([]mapreduce.Shuffled, len(rows))}
		for i, r := range rows {
			g.Rows[i] = mapreduce.Shuffled{
				MapperID: r.MapperID,
				RecordID: r.RecordID,
				Value:    append([]byte(nil), r.Value...),
			}
		}
		groups = append(groups, g)
		return nil
	})
	if err != nil {
		return err
	}
	if spans := cr.sink.Spans(); len(spans) > 0 {
		if err := fw.write(FrameSpans, encodeSpans(spans)); err != nil {
			return err
		}
	}
	return fw.write(FrameReduceDone, encodeReduceGroups(groups))
}

// WorkerMain runs a worker daemon the way cmd/sympled and the spawned
// subprocess mode use it: listen on addr (host:0 picks a free port),
// announce the bound address on stdout as "SYMPLED LISTEN <addr>", and
// serve until stdin reaches EOF — the parent closing the pipe (or
// dying) is the shutdown signal, so orphaned workers cannot linger.
func WorkerMain(addr string) error {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: worker listen: %w", err)
	}
	fmt.Printf("%s%s\n", spawnBanner, ln.Addr())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		defer cancel()
		// Block until the parent closes our stdin (EOF) or it errors.
		_, _ = io.Copy(io.Discard, bufio.NewReader(os.Stdin))
	}()
	return NewWorker().Serve(ctx, ln)
}
