package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mapreduce"
)

// The coordinator side. A Pool implements mapreduce.RemoteMapper over a
// fixed set of worker endpoints: RunMap leases a connection, ships the
// assignment, and demultiplexes the reply stream back into a
// mapreduce.MapOutput. Any connection failure retires the lease and
// surfaces as an attempt error; a background redial restores the
// worker, and the engine's retry/speculation machinery does the rest.
// The pool never commits anything itself: first-finisher-wins stays
// with the engine, exactly as in process.
//
// With WithW2W the pool also implements mapreduce.RemoteReducer and
// takes itself off the data path: partitions get static owners
// (p mod workers), assignments carry the ownership tables so map
// workers push runs straight to their owners, and RunReduce asks the
// owning worker to merge in place — only byte-counted receipts flow up
// during maps and only combined group summaries flow back at reduce.
// Segments are content-addressed: once a worker has acknowledged an
// attempt over some segment, later attempts ship only the digest, and
// a worker whose cache was lost answers need-segment to get one
// payload re-ship.

// Endpoint is one worker the pool can (re)connect to.
type Endpoint interface {
	// Connect establishes a fresh transport connection to the worker.
	Connect(ctx context.Context) (net.Conn, error)
	// Addr is the worker's listen address — the identity peers dial in
	// the w2w topology.
	Addr() string
	// Close releases the endpoint (kills a spawned worker process).
	Close() error
}

// dialEndpoint connects to an already-listening worker address.
type dialEndpoint struct{ addr string }

// Dial returns an endpoint for a worker listening on addr.
func Dial(addr string) Endpoint { return &dialEndpoint{addr: addr} }

func (e *dialEndpoint) Connect(ctx context.Context) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", e.addr)
}

// Addr returns the worker's listen address.
func (e *dialEndpoint) Addr() string { return e.addr }

func (e *dialEndpoint) Close() error { return nil }

// workerConn is one leased connection to a worker.
type workerConn struct {
	ep   Endpoint
	conn net.Conn
	fr   *frameReader
	fw   *frameWriter
}

// ownerConn is the dedicated reduce connection to one partition owner,
// dialed lazily; mu serializes reduce conversations when one worker
// owns several partitions.
type ownerConn struct {
	mu sync.Mutex
	w  *workerConn
}

// Placement records where one map attempt was dispatched — the
// speculation anti-affinity and cache-affinity tests read these.
type Placement struct {
	Task    int
	Attempt int
	Addr    string
}

// PoolStats are the coordinator-side byte counters the benchmark
// methodology records per topology.
type PoolStats struct {
	// ConnIngressBytes / ConnEgressBytes count every byte the
	// coordinator read from / wrote to worker connections.
	ConnIngressBytes int64
	ConnEgressBytes  int64
	// ShuffleIngressBytes counts the shuffle-plane payload bytes that
	// reached the coordinator: run frames (via-coordinator), receipts
	// and reduce replies (w2w). This is the number the w2w topology
	// collapses.
	ShuffleIngressBytes int64
}

// Pool leases worker connections to concurrent map attempts.
type Pool struct {
	spec  JobSpec
	chaos *ChaosPlan

	w2w       bool
	jobID     uint64
	endpoints []Endpoint
	epIndex   map[Endpoint]int
	owners    []int
	addrs     []string

	free chan *workerConn
	dead chan struct{} // closed when every worker is permanently lost

	mu         sync.Mutex
	closed     bool
	live       int
	conns      map[*workerConn]struct{}
	lastEp     map[int]Endpoint             // task → endpoint of the latest dispatched attempt
	epSegs     map[Endpoint]map[uint64]bool // segments acknowledged cached per endpoint
	segs       map[int]*mapreduce.Segment   // task → segment, retained for w2w refills
	segDigests map[*mapreduce.Segment]uint64
	placements []Placement
	procs      map[string]int // worker addr → GOMAXPROCS, from map-done

	rmu    sync.Mutex
	rconns map[int]*ownerConn

	connIn    atomic.Int64
	connOut   atomic.Int64
	shuffleIn atomic.Int64

	wg sync.WaitGroup // background redials
}

// PoolOption configures NewPool.
type PoolOption func(*Pool)

// WithChaos injects a deterministic worker-fault plan (tests only).
func WithChaos(plan *ChaosPlan) PoolOption {
	return func(p *Pool) { p.chaos = plan }
}

// WithW2W switches the pool to the worker-to-worker shuffle topology.
// The pool then also implements mapreduce.RemoteReducer; wire it into
// both Config.RemoteMap and Config.RemoteReduce.
func WithW2W() PoolOption {
	return func(p *Pool) { p.w2w = true }
}

// jobSeq disambiguates pools within one coordinator process; combined
// with the pid it keys per-job worker state across coordinators
// sharing workers.
var jobSeq atomic.Uint64

// reconnect backoff schedule for retired workers.
const (
	redialAttempts = 8
	redialBase     = 2 * time.Millisecond
	redialMax      = 200 * time.Millisecond
)

// NewPool connects to every endpoint and performs the hello exchange.
// On any failure it closes what it opened and returns the error. The
// pool borrows the endpoints — several pools (one per job spec) can
// share one set of workers — so the caller closes the endpoints after
// the last pool is done with them.
func NewPool(spec JobSpec, endpoints []Endpoint, opts ...PoolOption) (*Pool, error) {
	if len(endpoints) == 0 {
		return nil, errors.New("cluster: pool needs at least one worker endpoint")
	}
	p := &Pool{
		spec:       spec,
		jobID:      uint64(os.Getpid())<<20 ^ jobSeq.Add(1),
		endpoints:  endpoints,
		epIndex:    make(map[Endpoint]int, len(endpoints)),
		free:       make(chan *workerConn, len(endpoints)),
		dead:       make(chan struct{}),
		conns:      map[*workerConn]struct{}{},
		lastEp:     map[int]Endpoint{},
		epSegs:     map[Endpoint]map[uint64]bool{},
		segs:       map[int]*mapreduce.Segment{},
		segDigests: map[*mapreduce.Segment]uint64{},
		procs:      map[string]int{},
		rconns:     map[int]*ownerConn{},
		live:       len(endpoints),
	}
	for i, ep := range endpoints {
		p.epIndex[ep] = i
		p.addrs = append(p.addrs, ep.Addr())
	}
	for _, o := range opts {
		o(p)
	}
	if p.w2w {
		// Static partition ownership: p mod workers. Deterministic, so
		// every assignment of the job carries the same tables and a
		// retried attempt pushes to the same owners.
		p.owners = make([]int, spec.NumReducers)
		for i := range p.owners {
			p.owners[i] = i % len(endpoints)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, ep := range endpoints {
		w, err := p.connect(ctx, ep)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.free <- w
	}
	return p, nil
}

// countingConn tallies raw socket bytes into the pool's counters.
type countingConn struct {
	net.Conn
	p *Pool
}

func (c *countingConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	c.p.connIn.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(b []byte) (int, error) {
	n, err := c.Conn.Write(b)
	c.p.connOut.Add(int64(n))
	return n, err
}

// connect opens and handshakes one worker connection, registering it
// for Close.
func (p *Pool) connect(ctx context.Context, ep Endpoint) (*workerConn, error) {
	raw, err := ep.Connect(ctx)
	if err != nil {
		return nil, fmt.Errorf("cluster: connecting worker: %w", err)
	}
	conn := net.Conn(&countingConn{Conn: raw, p: p})
	w := &workerConn{ep: ep, conn: conn, fr: newFrameReader(conn), fw: newFrameWriter(conn)}
	if err := w.fw.write(FrameHello, encodeHello()); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: hello send: %w", err)
	}
	f, err := w.fr.next()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: hello reply: %w", err)
	}
	if f.Type == FrameError {
		msg, _ := decodeError(f.Payload)
		conn.Close()
		return nil, fmt.Errorf("cluster: worker rejected hello: %s", msg)
	}
	if f.Type != FrameHello {
		conn.Close()
		return nil, fmt.Errorf("%w: expected hello reply, got frame type %d", ErrFrame, f.Type)
	}
	if _, err := DecodeHello(f.Payload); err != nil {
		conn.Close()
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return nil, errors.New("cluster: pool closed")
	}
	p.conns[w] = struct{}{}
	p.mu.Unlock()
	return w, nil
}

// acquire leases a worker connection for an attempt of task, preferring
// (a) a different worker than the task's previous attempt — so
// speculation and retries land on another machine — and (b) a worker
// that already caches the segment digest. It drains whatever is free
// right now and scores it; when nothing is free it blocks on the next
// lease regardless of preference (liveness beats placement).
func (p *Pool) acquire(ctx context.Context, task, attempt int, digest uint64) (*workerConn, error) {
	var cands []*workerConn
drain:
	for {
		select {
		case w := <-p.free:
			cands = append(cands, w)
		default:
			break drain
		}
	}
	if len(cands) == 0 {
		select {
		case w := <-p.free:
			cands = append(cands, w)
		case <-p.dead:
			return nil, errors.New("cluster: all workers permanently lost")
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	p.mu.Lock()
	last := p.lastEp[task]
	best, bestScore := 0, -1
	for i, w := range cands {
		score := 0
		if last != nil && w.ep != last {
			score += 2 // anti-affinity to the previous attempt's worker
		}
		if digest != 0 && p.epSegs[w.ep][digest] {
			score++ // cache affinity: the segment is already resident
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	w := cands[best]
	p.lastEp[task] = w.ep
	p.placements = append(p.placements, Placement{Task: task, Attempt: attempt, Addr: w.ep.Addr()})
	p.mu.Unlock()
	for i, c := range cands {
		if i != best {
			p.release(c)
		}
	}
	return w, nil
}

// release returns a healthy lease to the pool.
func (p *Pool) release(w *workerConn) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		w.conn.Close()
		return
	}
	p.free <- w
}

// retire kills a lease and redials its endpoint in the background with
// capped backoff. A worker that cannot be reached after the redial
// budget is written off; when the last one goes, acquire fails fast
// instead of blocking forever.
func (p *Pool) retire(w *workerConn) {
	w.conn.Close()
	p.mu.Lock()
	delete(p.conns, w)
	// The worker (re)starting means its segment cache may be gone;
	// forget what we believed it held so the next assignment ships the
	// payload rather than a digest the worker cannot resolve.
	delete(p.epSegs, w.ep)
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.wg.Add(1)
	p.mu.Unlock()
	go func() {
		defer p.wg.Done()
		delay := redialBase
		for i := 0; i < redialAttempts; i++ {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			nw, err := p.connect(ctx, w.ep)
			cancel()
			if err == nil {
				p.release(nw)
				return
			}
			time.Sleep(delay)
			delay = min(delay*2, redialMax)
		}
		p.mu.Lock()
		p.live--
		lost := p.live == 0 && !p.closed
		p.mu.Unlock()
		if lost {
			close(p.dead)
		}
	}()
}

// Close tears the pool down: broadcasts job-done so workers drop this
// job's shuffle state, closes every connection (leased ones included —
// in-flight RunMap calls fail fast), and waits for background redials
// to stop. The endpoints stay open for other pools; the caller closes
// them when done.
func (p *Pool) Close() error {
	p.mu.Lock()
	alreadyClosed := p.closed
	p.mu.Unlock()
	if !alreadyClosed && p.w2w {
		p.broadcastJobDone()
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for w := range p.conns {
		w.conn.Close()
	}
	p.conns = map[*workerConn]struct{}{}
	p.mu.Unlock()
	p.wg.Wait()
	// Drain leases parked in free (their conns are already closed).
	for {
		select {
		case <-p.free:
			continue
		default:
		}
		break
	}
	return nil
}

// broadcastJobDone tells every reachable worker the job is over —
// drop buffered runs, close peer connections — before the sockets go
// away. Best effort: a worker we cannot reach has nothing durable to
// leak anyway.
func (p *Pool) broadcastJobDone() {
	payload := encodeJobDone(p.jobID)
	p.rmu.Lock()
	for _, oc := range p.rconns {
		oc.mu.Lock()
		if oc.w != nil {
			_ = oc.w.fw.write(FrameJobDone, payload)
		}
		oc.mu.Unlock()
	}
	p.rmu.Unlock()
	var drained []*workerConn
drain:
	for {
		select {
		case w := <-p.free:
			drained = append(drained, w)
		default:
			break drain
		}
	}
	for _, w := range drained {
		_ = w.fw.write(FrameJobDone, payload)
		p.free <- w
	}
}

// Stats returns the pool's byte counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		ConnIngressBytes:    p.connIn.Load(),
		ConnEgressBytes:     p.connOut.Load(),
		ShuffleIngressBytes: p.shuffleIn.Load(),
	}
}

// Placements returns where every map attempt was dispatched, in
// dispatch order.
func (p *Pool) Placements() []Placement {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Placement(nil), p.placements...)
}

// WorkerProcs reports each worker's GOMAXPROCS as observed from its
// map-done replies, keyed by address.
func (p *Pool) WorkerProcs() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.procs))
	for k, v := range p.procs {
		out[k] = v
	}
	return out
}

// segmentDigest content-addresses a segment (FNV-1a over ID, records,
// and columnar presence), memoizing per pointer — segments are
// immutable once built. Zero is reserved for "no digest".
func (p *Pool) segmentDigest(seg *mapreduce.Segment) uint64 {
	p.mu.Lock()
	if d, ok := p.segDigests[seg]; ok {
		p.mu.Unlock()
		return d
	}
	p.mu.Unlock()
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(seg.ID))
	mix(uint64(len(seg.Records)))
	for _, r := range seg.Records {
		mix(uint64(len(r)))
		for _, b := range r {
			h ^= uint64(b)
			h *= prime64
		}
	}
	if seg.Columns != nil {
		mix(1)
	}
	if h == 0 {
		h = 1
	}
	p.mu.Lock()
	p.segDigests[seg] = h
	p.mu.Unlock()
	return h
}

// markCached records that ep acknowledged an attempt over digest, so
// future assignments can go digest-only.
func (p *Pool) markCached(ep Endpoint, digest uint64, procs int) {
	p.mu.Lock()
	if digest != 0 {
		m := p.epSegs[ep]
		if m == nil {
			m = map[uint64]bool{}
			p.epSegs[ep] = m
		}
		m[digest] = true
	}
	if procs > 0 {
		p.procs[ep.Addr()] = procs
	}
	p.mu.Unlock()
}

// RunMap implements mapreduce.RemoteMapper: execute one map attempt on
// some worker. Safe for concurrent calls; each call holds one lease.
func (p *Pool) RunMap(ctx context.Context, task, attempt int, seg *mapreduce.Segment) (*mapreduce.MapOutput, error) {
	kind, after := p.chaos.decide(task, attempt)
	if kind == ChaosPeerDrop && !p.w2w {
		// No peer mesh to drop; keep the seeded schedule by taking the
		// nearest equivalent worker-side death.
		kind = ChaosWorkerAbort
	}
	digest := p.segmentDigest(seg)
	if p.w2w {
		// Retain the segment: a dead reduce owner is refilled by
		// re-running this task's committed attempt.
		p.mu.Lock()
		p.segs[task] = seg
		p.mu.Unlock()
	}
	w, err := p.acquire(ctx, task, attempt, digest)
	if err != nil {
		return nil, err
	}
	if kind == ChaosLoseWorker {
		p.retire(w)
		return nil, fmt.Errorf("cluster: worker lost before assignment (injected, task %d attempt %d)", task, attempt)
	}
	// ctx cancellation unblocks the socket read by closing the conn.
	stop := context.AfterFunc(ctx, func() { w.conn.Close() })
	defer stop()
	fail := func(err error) (*mapreduce.MapOutput, error) {
		p.retire(w)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	p.mu.Lock()
	hasPayload := digest == 0 || !p.epSegs[w.ep][digest]
	p.mu.Unlock()
	sendAssign := func(withPayload bool) error {
		a := &assignment{
			spec: p.spec, task: task, attempt: attempt, abortAfter: -1,
			segID: seg.ID, segDigest: digest,
			peerDropAfter: -1, refillPart: -1,
		}
		if withPayload {
			a.seg = seg
		}
		if p.w2w {
			a.w2w = true
			a.jobID = p.jobID
			a.selfID = p.epIndex[w.ep]
			a.owners = p.owners
			a.addrs = p.addrs
		}
		switch kind {
		case ChaosWorkerAbort:
			a.abortAfter = after
		case ChaosPeerDrop:
			a.peerDropAfter = after
		}
		return w.fw.write(FrameAssign, encodeAssign(a))
	}
	if err := sendAssign(hasPayload); err != nil {
		return fail(fmt.Errorf("cluster: sending assignment (task %d attempt %d): %w", task, attempt, err))
	}
	out := &mapreduce.MapOutput{}
	resent := false
	for {
		f, err := w.fr.next()
		if err != nil {
			return fail(fmt.Errorf("cluster: worker stream (task %d attempt %d): %w", task, attempt, err))
		}
		switch f.Type {
		case FrameRun:
			if p.w2w {
				return fail(fmt.Errorf("%w: run payload on a w2w attempt stream", ErrFrame))
			}
			p.shuffleIn.Add(int64(len(f.Payload)))
			r, err := decodeRun(f.Payload)
			if err != nil {
				return fail(err)
			}
			if r.Task != task || r.Attempt != attempt {
				return fail(fmt.Errorf("%w: run for task %d attempt %d on stream for task %d attempt %d",
					ErrFrame, r.Task, r.Attempt, task, attempt))
			}
			out.Runs = append(out.Runs, r)
			if kind == ChaosDropConn && len(out.Runs) > after {
				p.retire(w)
				return nil, fmt.Errorf("cluster: connection dropped mid-stream (injected, task %d attempt %d after %d runs)",
					task, attempt, len(out.Runs))
			}
		case FrameRunReceipt:
			if !p.w2w {
				return fail(fmt.Errorf("%w: run receipt on a via-coordinator attempt stream", ErrFrame))
			}
			p.shuffleIn.Add(int64(len(f.Payload)))
			r, err := decodeRunReceipt(f.Payload)
			if err != nil {
				return fail(err)
			}
			if r.Task != task || r.Attempt != attempt {
				return fail(fmt.Errorf("%w: receipt for task %d attempt %d on stream for task %d attempt %d",
					ErrFrame, r.Task, r.Attempt, task, attempt))
			}
			out.Runs = append(out.Runs, r)
			if kind == ChaosDropConn && len(out.Runs) > after {
				p.retire(w)
				return nil, fmt.Errorf("cluster: connection dropped mid-stream (injected, task %d attempt %d after %d runs)",
					task, attempt, len(out.Runs))
			}
		case FrameSpans:
			spans, err := decodeSpans(f.Payload)
			if err != nil {
				return fail(err)
			}
			out.Spans = spans
		case FrameMapDone:
			m, err := decodeMapDone(f.Payload)
			if err != nil {
				return fail(err)
			}
			out.Emitted = m.emitted
			out.Records = m.records
			out.InputBytes = m.inputBytes
			out.Duration = m.duration
			out.LogicalOutBytes = m.logical
			if ctx.Err() != nil {
				// The AfterFunc may have closed the conn under us.
				p.retire(w)
				return nil, ctx.Err()
			}
			p.markCached(w.ep, digest, m.procs)
			p.release(w)
			return out, nil
		case FrameError:
			msg, derr := decodeError(f.Payload)
			if derr != nil {
				return fail(derr)
			}
			if isNeedSegment(msg) && !hasPayload && !resent {
				// The worker's content cache lost the segment (restart,
				// eviction): re-ship the payload once on the same conn.
				resent, hasPayload = true, true
				if err := sendAssign(true); err != nil {
					return fail(fmt.Errorf("cluster: re-sending assignment with payload (task %d attempt %d): %w", task, attempt, err))
				}
				continue
			}
			// The worker reported a clean attempt failure; the conn is
			// still synchronized and reusable.
			p.release(w)
			return nil, fmt.Errorf("cluster: worker attempt failed (task %d attempt %d): %s", task, attempt, msg)
		default:
			return fail(fmt.Errorf("%w: unexpected frame type %d in attempt stream", ErrFrame, f.Type))
		}
	}
}

// RunReduce implements mapreduce.RemoteReducer: run one reduce attempt
// for a partition on its owning worker. If the owner reports committed
// runs it never received (it restarted, or chaos dropped its state),
// the pool refills them — re-running each missing committed attempt
// over its retained segment, pushing only this partition — and asks
// again. One refill round per attempt; the engine's retry budget
// handles the rest.
func (p *Pool) RunReduce(ctx context.Context, part, attempt int, commits []mapreduce.Run) (*mapreduce.ReduceOutput, error) {
	if !p.w2w {
		return nil, errors.New("cluster: RunReduce requires the worker-to-worker topology (WithW2W)")
	}
	if part < 0 || part >= len(p.owners) {
		return nil, fmt.Errorf("cluster: reduce for partition %d outside %d partitions", part, len(p.owners))
	}
	owner := p.owners[part]
	reqCommits := make([]taskAttempt, len(commits))
	for i, c := range commits {
		reqCommits[i] = taskAttempt{task: c.Task, attempt: c.Attempt}
	}
	drop := p.chaos.decideReduce(part, attempt)
	refilled := false
	for {
		out, missing, err := p.reduceOnce(ctx, owner, part, reqCommits, drop)
		drop = false
		if err != nil {
			return nil, err
		}
		if len(missing) == 0 {
			out.Worker = owner
			return out, nil
		}
		if refilled {
			return nil, fmt.Errorf("cluster: partition %d owner still missing %d committed runs after refill", part, len(missing))
		}
		if err := p.refill(ctx, part, missing); err != nil {
			return nil, fmt.Errorf("cluster: refilling partition %d: %w", part, err)
		}
		refilled = true
	}
}

// reduceConn returns the lazily dialed, locked reduce connection to an
// owner; the caller must unlock oc.mu.
func (p *Pool) reduceConn(ctx context.Context, owner int) (*ownerConn, error) {
	p.rmu.Lock()
	oc, ok := p.rconns[owner]
	if !ok {
		oc = &ownerConn{}
		p.rconns[owner] = oc
	}
	p.rmu.Unlock()
	oc.mu.Lock()
	if oc.w == nil {
		w, err := p.connect(ctx, p.endpoints[owner])
		if err != nil {
			oc.mu.Unlock()
			return nil, err
		}
		oc.w = w
	}
	return oc, nil
}

// dropOwnerConn kills a broken reduce connection; the next attempt
// redials. Caller holds oc.mu.
func (p *Pool) dropOwnerConn(oc *ownerConn) {
	if oc.w == nil {
		return
	}
	oc.w.conn.Close()
	p.mu.Lock()
	delete(p.conns, oc.w)
	p.mu.Unlock()
	oc.w = nil
}

// reduceOnce runs one reduce conversation with the owner.
func (p *Pool) reduceOnce(ctx context.Context, owner, part int, commits []taskAttempt, drop bool) (*mapreduce.ReduceOutput, []taskAttempt, error) {
	oc, err := p.reduceConn(ctx, owner)
	if err != nil {
		return nil, nil, err
	}
	defer oc.mu.Unlock()
	w := oc.w
	stop := context.AfterFunc(ctx, func() { w.conn.Close() })
	defer stop()
	fail := func(err error) (*mapreduce.ReduceOutput, []taskAttempt, error) {
		p.dropOwnerConn(oc)
		if ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		return nil, nil, err
	}
	req := &reduceReq{jobID: p.jobID, spec: p.spec, part: part, dropState: drop, commits: commits}
	if err := w.fw.write(FrameReduce, encodeReduce(req)); err != nil {
		return fail(fmt.Errorf("cluster: sending reduce request (part %d): %w", part, err))
	}
	out := &mapreduce.ReduceOutput{}
	for {
		f, err := w.fr.next()
		if err != nil {
			return fail(fmt.Errorf("cluster: reduce stream (part %d): %w", part, err))
		}
		switch f.Type {
		case FrameSpans:
			spans, err := decodeSpans(f.Payload)
			if err != nil {
				return fail(err)
			}
			out.Spans = spans
		case FrameReduceDone:
			p.shuffleIn.Add(int64(len(f.Payload)))
			groups, missing, err := decodeReduceDone(f.Payload)
			if err != nil {
				return fail(err)
			}
			if ctx.Err() != nil {
				p.dropOwnerConn(oc)
				return nil, nil, ctx.Err()
			}
			if len(missing) > 0 {
				return nil, missing, nil
			}
			out.Groups = groups
			return out, nil, nil
		case FrameError:
			msg, derr := decodeError(f.Payload)
			if derr != nil {
				return fail(derr)
			}
			// Clean worker-side reduce failure; the conn stays usable.
			return nil, nil, fmt.Errorf("cluster: worker reduce failed (part %d): %s", part, msg)
		default:
			return fail(fmt.Errorf("%w: unexpected frame type %d in reduce stream", ErrFrame, f.Type))
		}
	}
}

// refill re-derives missing committed runs: each missing (task,
// attempt) is re-run over the task's retained segment on some free
// worker, pushing only the affected partition to its owner, with no
// receipts, no spans, and no chaos — the original attempt already
// committed; this is recovery, not a new attempt.
func (p *Pool) refill(ctx context.Context, part int, missing []taskAttempt) error {
	for _, ta := range missing {
		p.mu.Lock()
		seg := p.segs[ta.task]
		p.mu.Unlock()
		if seg == nil {
			return fmt.Errorf("cluster: no retained segment for task %d", ta.task)
		}
		if err := p.refillOne(ctx, part, ta, seg); err != nil {
			return err
		}
	}
	return nil
}

func (p *Pool) refillOne(ctx context.Context, part int, ta taskAttempt, seg *mapreduce.Segment) error {
	digest := p.segmentDigest(seg)
	w, err := p.acquire(ctx, ta.task, ta.attempt, digest)
	if err != nil {
		return err
	}
	stop := context.AfterFunc(ctx, func() { w.conn.Close() })
	defer stop()
	fail := func(err error) error {
		p.retire(w)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	a := &assignment{
		spec: p.spec, task: ta.task, attempt: ta.attempt, abortAfter: -1,
		w2w: true, jobID: p.jobID, selfID: p.epIndex[w.ep],
		owners: p.owners, addrs: p.addrs,
		peerDropAfter: -1, refillPart: part,
		segID: seg.ID, segDigest: digest, seg: seg,
	}
	if err := w.fw.write(FrameAssign, encodeAssign(a)); err != nil {
		return fail(fmt.Errorf("cluster: sending refill (task %d attempt %d part %d): %w", ta.task, ta.attempt, part, err))
	}
	for {
		f, err := w.fr.next()
		if err != nil {
			return fail(fmt.Errorf("cluster: refill stream (task %d attempt %d): %w", ta.task, ta.attempt, err))
		}
		switch f.Type {
		case FrameMapDone:
			if _, err := decodeMapDone(f.Payload); err != nil {
				return fail(err)
			}
			if ctx.Err() != nil {
				p.retire(w)
				return ctx.Err()
			}
			p.release(w)
			return nil
		case FrameError:
			msg, derr := decodeError(f.Payload)
			if derr != nil {
				return fail(derr)
			}
			p.release(w)
			return fmt.Errorf("cluster: refill failed (task %d attempt %d): %s", ta.task, ta.attempt, msg)
		default:
			return fail(fmt.Errorf("%w: unexpected frame type %d in refill stream", ErrFrame, f.Type))
		}
	}
}
