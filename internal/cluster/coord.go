package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/mapreduce"
)

// The coordinator side. A Pool implements mapreduce.RemoteMapper over a
// fixed set of worker endpoints: RunMap leases a connection, ships the
// assignment, and demultiplexes the reply stream — runs, spans, then
// the closing metrics — back into a mapreduce.MapOutput. Any
// connection failure retires the lease and surfaces as an attempt
// error; a background redial restores the worker, and the engine's
// retry/speculation machinery does the rest. The pool never commits
// anything itself: first-finisher-wins stays with the engine, exactly
// as in process.

// Endpoint is one worker the pool can (re)connect to.
type Endpoint interface {
	// Connect establishes a fresh transport connection to the worker.
	Connect(ctx context.Context) (net.Conn, error)
	// Close releases the endpoint (kills a spawned worker process).
	Close() error
}

// dialEndpoint connects to an already-listening worker address.
type dialEndpoint struct{ addr string }

// Dial returns an endpoint for a worker listening on addr.
func Dial(addr string) Endpoint { return &dialEndpoint{addr: addr} }

func (e *dialEndpoint) Connect(ctx context.Context) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", e.addr)
}

func (e *dialEndpoint) Close() error { return nil }

// workerConn is one leased connection to a worker.
type workerConn struct {
	ep   Endpoint
	conn net.Conn
	fr   *frameReader
	fw   *frameWriter
}

// Pool leases worker connections to concurrent map attempts.
type Pool struct {
	spec  JobSpec
	chaos *ChaosPlan

	free chan *workerConn
	dead chan struct{} // closed when every worker is permanently lost

	mu     sync.Mutex
	closed bool
	live   int
	conns  map[*workerConn]struct{}

	wg sync.WaitGroup // background redials
}

// PoolOption configures NewPool.
type PoolOption func(*Pool)

// WithChaos injects a deterministic worker-fault plan (tests only).
func WithChaos(plan *ChaosPlan) PoolOption {
	return func(p *Pool) { p.chaos = plan }
}

// reconnect backoff schedule for retired workers.
const (
	redialAttempts = 8
	redialBase     = 2 * time.Millisecond
	redialMax      = 200 * time.Millisecond
)

// NewPool connects to every endpoint and performs the hello exchange.
// On any failure it closes what it opened and returns the error. The
// pool borrows the endpoints — several pools (one per job spec) can
// share one set of workers — so the caller closes the endpoints after
// the last pool is done with them.
func NewPool(spec JobSpec, endpoints []Endpoint, opts ...PoolOption) (*Pool, error) {
	if len(endpoints) == 0 {
		return nil, errors.New("cluster: pool needs at least one worker endpoint")
	}
	p := &Pool{
		spec:  spec,
		free:  make(chan *workerConn, len(endpoints)),
		dead:  make(chan struct{}),
		conns: map[*workerConn]struct{}{},
		live:  len(endpoints),
	}
	for _, o := range opts {
		o(p)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, ep := range endpoints {
		w, err := p.connect(ctx, ep)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.free <- w
	}
	return p, nil
}

// connect opens and handshakes one worker connection, registering it
// for Close.
func (p *Pool) connect(ctx context.Context, ep Endpoint) (*workerConn, error) {
	conn, err := ep.Connect(ctx)
	if err != nil {
		return nil, fmt.Errorf("cluster: connecting worker: %w", err)
	}
	w := &workerConn{ep: ep, conn: conn, fr: newFrameReader(conn), fw: newFrameWriter(conn)}
	if err := w.fw.write(FrameHello, encodeHello()); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: hello send: %w", err)
	}
	f, err := w.fr.next()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: hello reply: %w", err)
	}
	if f.Type == FrameError {
		msg, _ := decodeError(f.Payload)
		conn.Close()
		return nil, fmt.Errorf("cluster: worker rejected hello: %s", msg)
	}
	if f.Type != FrameHello {
		conn.Close()
		return nil, fmt.Errorf("%w: expected hello reply, got frame type %d", ErrFrame, f.Type)
	}
	if _, err := DecodeHello(f.Payload); err != nil {
		conn.Close()
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return nil, errors.New("cluster: pool closed")
	}
	p.conns[w] = struct{}{}
	p.mu.Unlock()
	return w, nil
}

// acquire leases a worker connection.
func (p *Pool) acquire(ctx context.Context) (*workerConn, error) {
	select {
	case w := <-p.free:
		return w, nil
	case <-p.dead:
		return nil, errors.New("cluster: all workers permanently lost")
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// release returns a healthy lease to the pool.
func (p *Pool) release(w *workerConn) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		w.conn.Close()
		return
	}
	p.free <- w
}

// retire kills a lease and redials its endpoint in the background with
// capped backoff. A worker that cannot be reached after the redial
// budget is written off; when the last one goes, acquire fails fast
// instead of blocking forever.
func (p *Pool) retire(w *workerConn) {
	w.conn.Close()
	p.mu.Lock()
	delete(p.conns, w)
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.wg.Add(1)
	p.mu.Unlock()
	go func() {
		defer p.wg.Done()
		delay := redialBase
		for i := 0; i < redialAttempts; i++ {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			nw, err := p.connect(ctx, w.ep)
			cancel()
			if err == nil {
				p.release(nw)
				return
			}
			time.Sleep(delay)
			delay = min(delay*2, redialMax)
		}
		p.mu.Lock()
		p.live--
		lost := p.live == 0 && !p.closed
		p.mu.Unlock()
		if lost {
			close(p.dead)
		}
	}()
}

// Close tears the pool down: closes every connection (leased ones
// included — in-flight RunMap calls fail fast) and waits for
// background redials to stop. The endpoints stay open for other pools;
// the caller closes them when done.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for w := range p.conns {
		w.conn.Close()
	}
	p.conns = map[*workerConn]struct{}{}
	p.mu.Unlock()
	p.wg.Wait()
	// Drain leases parked in free (their conns are already closed).
	for {
		select {
		case <-p.free:
			continue
		default:
		}
		break
	}
	return nil
}

// RunMap implements mapreduce.RemoteMapper: execute one map attempt on
// some worker. Safe for concurrent calls; each call holds one lease.
func (p *Pool) RunMap(ctx context.Context, task, attempt int, seg *mapreduce.Segment) (*mapreduce.MapOutput, error) {
	kind, after := p.chaos.decide(task, attempt)
	w, err := p.acquire(ctx)
	if err != nil {
		return nil, err
	}
	if kind == ChaosLoseWorker {
		p.retire(w)
		return nil, fmt.Errorf("cluster: worker lost before assignment (injected, task %d attempt %d)", task, attempt)
	}
	// ctx cancellation unblocks the socket read by closing the conn.
	stop := context.AfterFunc(ctx, func() { w.conn.Close() })
	defer stop()
	fail := func(err error) (*mapreduce.MapOutput, error) {
		p.retire(w)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	a := &assignment{spec: p.spec, task: task, attempt: attempt, abortAfter: -1, seg: seg}
	if kind == ChaosWorkerAbort {
		a.abortAfter = after
	}
	if err := w.fw.write(FrameAssign, encodeAssign(a)); err != nil {
		return fail(fmt.Errorf("cluster: sending assignment (task %d attempt %d): %w", task, attempt, err))
	}
	out := &mapreduce.MapOutput{}
	for {
		f, err := w.fr.next()
		if err != nil {
			return fail(fmt.Errorf("cluster: worker stream (task %d attempt %d): %w", task, attempt, err))
		}
		switch f.Type {
		case FrameRun:
			r, err := decodeRun(f.Payload)
			if err != nil {
				return fail(err)
			}
			if r.Task != task || r.Attempt != attempt {
				return fail(fmt.Errorf("%w: run for task %d attempt %d on stream for task %d attempt %d",
					ErrFrame, r.Task, r.Attempt, task, attempt))
			}
			out.Runs = append(out.Runs, r)
			if kind == ChaosDropConn && len(out.Runs) > after {
				p.retire(w)
				return nil, fmt.Errorf("cluster: connection dropped mid-stream (injected, task %d attempt %d after %d runs)",
					task, attempt, len(out.Runs))
			}
		case FrameSpans:
			spans, err := decodeSpans(f.Payload)
			if err != nil {
				return fail(err)
			}
			out.Spans = spans
		case FrameMapDone:
			m, err := decodeMapDone(f.Payload)
			if err != nil {
				return fail(err)
			}
			out.Emitted = m.emitted
			out.Records = m.records
			out.InputBytes = m.inputBytes
			out.Duration = m.duration
			out.LogicalOutBytes = m.logical
			if ctx.Err() != nil {
				// The AfterFunc may have closed the conn under us.
				p.retire(w)
				return nil, ctx.Err()
			}
			p.release(w)
			return out, nil
		case FrameError:
			msg, derr := decodeError(f.Payload)
			if derr != nil {
				return fail(derr)
			}
			// The worker reported a clean attempt failure; the conn is
			// still synchronized and reusable.
			p.release(w)
			return nil, fmt.Errorf("cluster: worker attempt failed (task %d attempt %d): %s", task, attempt, msg)
		default:
			return fail(fmt.Errorf("%w: unexpected frame type %d in attempt stream", ErrFrame, f.Type))
		}
	}
}
