// Package cluster_test is the distributed differential-test suite: it
// proves the TCP coordinator/worker execution path equivalent to the
// in-process engine by running the paper's queries through both and
// requiring byte-identical digests — against the committed golden
// reference, under injected worker faults, and across real worker
// subprocesses (this test binary re-executed in worker mode).
package cluster_test

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/queries"
)

// workerEnv flips a spawned copy of this test binary into worker mode;
// silentEnv makes it sit on stdin without ever printing the listen
// banner (for the spawn-timeout hardening test).
const (
	workerEnv = "SYMPLE_TEST_WORKER"
	silentEnv = "SYMPLE_TEST_SILENT"
)

// TestMain is the re-exec shim: with workerEnv set, the process is a
// cluster worker daemon, not a test run. SpawnWorker passes Env only —
// no flags — so the test framework's flag parsing never sees it.
func TestMain(m *testing.M) {
	switch {
	case os.Getenv(workerEnv) == "1":
		queries.RegisterClusterJobs()
		if err := cluster.WorkerMain(""); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	case os.Getenv(silentEnv) == "1":
		// Misbehaving worker: alive, reads stdin, never announces.
		buf := make([]byte, 1)
		for {
			if _, err := os.Stdin.Read(buf); err != nil {
				os.Exit(0)
			}
		}
	}
	os.Exit(m.Run())
}

// checkGoroutineLeaks fails the test if goroutines have not returned to
// the baseline by cleanup.
func checkGoroutineLeaks(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d running, baseline %d\n%s",
					runtime.NumGoroutine(), base, buf[:n])
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	})
}

// startWorkers runs n in-process loopback workers; cleanup asserts each
// drained its connections and its accept loop exited.
func startWorkers(t *testing.T, n int) []cluster.Endpoint {
	t.Helper()
	eps := make([]cluster.Endpoint, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		w := cluster.NewWorker()
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- w.Serve(ctx, ln) }()
		t.Cleanup(func() {
			cancel()
			if err := <-done; err != nil {
				t.Errorf("worker serve: %v", err)
			}
			if active := w.Active(); active != 0 {
				t.Errorf("worker leaked %d connections", active)
			}
		})
		eps[i] = cluster.Dial(ln.Addr().String())
	}
	return eps
}

// goldenEntry mirrors one line of the committed golden digest file.
type goldenEntry struct {
	digest  uint64
	results int
}

// readGolden parses the queries package's committed reference digests —
// the transport equivalence contract is against those exact bytes.
func readGolden(t *testing.T) map[string]goldenEntry {
	t.Helper()
	path := filepath.Join("..", "queries", "testdata", "golden_digests.txt")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden digests: %v", err)
	}
	want := make(map[string]goldenEntry, 12)
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			t.Fatalf("malformed golden line %q", line)
		}
		d, err := strconv.ParseUint(fields[1], 16, 64)
		if err != nil {
			t.Fatal(err)
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil {
			t.Fatal(err)
		}
		want[fields[0]] = goldenEntry{d, n}
	}
	if len(want) != 12 {
		t.Fatalf("golden file has %d queries, want 12", len(want))
	}
	return want
}

// remoteConf is the engine configuration for a coordinator run: the
// given pool executes map attempts, with a retry budget and speculation
// so injected faults are survivable.
func remoteConf(pool *cluster.Pool) mapreduce.Config {
	return mapreduce.Config{
		NumReducers:     3,
		MaxAttempts:     4,
		Speculation:     true,
		RetryBackoff:    100 * time.Microsecond,
		MaxRetryBackoff: time.Millisecond,
		RemoteMap:       pool,
	}
}

// TestTransportEquivalenceGolden is the core satellite contract: all 12
// queries produce byte-identical digests through the in-memory
// transport, through loopback TCP workers shuffling via the
// coordinator, and through the worker-to-worker topology — all matching
// the committed golden reference. Across the whole suite, the w2w
// topology must also collapse the coordinator's shuffle-plane ingress
// (runs vs receipts + combined reduce replies). Goroutines and worker
// connections are checked back to baseline afterwards.
func TestTransportEquivalenceGolden(t *testing.T) {
	checkGoroutineLeaks(t)
	golden := readGolden(t)
	datasets := queries.GoldenDatasets(queries.GoldenSegments)
	eps := startWorkers(t, 2)
	var viaIngress, w2wIngress int64
	for _, spec := range queries.All() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			segs := datasets[spec.Dataset]
			mem, err := spec.Symple(segs, mapreduce.Config{NumReducers: 3})
			if err != nil {
				t.Fatalf("in-memory transport: %v", err)
			}
			pool, err := cluster.NewPool(
				queries.ClusterSpec(spec.ID, mapreduce.Config{NumReducers: 3}, core.SympleOptions{}), eps)
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Close()
			conf := remoteConf(pool)
			tcp, err := spec.SympleOpts(segs, conf, core.SympleOptions{})
			if err != nil {
				t.Fatalf("TCP transport: %v", err)
			}
			viaIngress += pool.Stats().ShuffleIngressBytes

			w2wPool, err := cluster.NewPool(
				queries.ClusterSpec(spec.ID, mapreduce.Config{NumReducers: 3}, core.SympleOptions{}),
				eps, cluster.WithW2W())
			if err != nil {
				t.Fatal(err)
			}
			defer w2wPool.Close()
			w2wConf := remoteConf(w2wPool)
			w2wConf.RemoteReduce = w2wPool
			w2w, err := spec.SympleOpts(segs, w2wConf, core.SympleOptions{})
			if err != nil {
				t.Fatalf("w2w transport: %v", err)
			}
			w2wIngress += w2wPool.Stats().ShuffleIngressBytes

			w := golden[spec.ID]
			if mem.Digest != w.digest || mem.NumResults != w.results {
				t.Errorf("in-memory digest %016x (%d results) != golden %016x (%d)",
					mem.Digest, mem.NumResults, w.digest, w.results)
			}
			if tcp.Digest != w.digest || tcp.NumResults != w.results {
				t.Errorf("TCP digest %016x (%d results) != golden %016x (%d)",
					tcp.Digest, tcp.NumResults, w.digest, w.results)
			}
			if w2w.Digest != w.digest || w2w.NumResults != w.results {
				t.Errorf("w2w digest %016x (%d results) != golden %016x (%d)",
					w2w.Digest, w2w.NumResults, w.digest, w.results)
			}
		})
	}
	if viaIngress == 0 || w2wIngress == 0 {
		t.Fatalf("shuffle ingress not recorded (via %d, w2w %d)", viaIngress, w2wIngress)
	}
	if w2wIngress*2 > viaIngress {
		t.Errorf("w2w coordinator shuffle ingress %d bytes is not well below via-coordinator %d bytes",
			w2wIngress, viaIngress)
	}
	t.Logf("coordinator shuffle ingress across the suite: via %d bytes, w2w %d bytes (%.1fx reduction)",
		viaIngress, w2wIngress, float64(viaIngress)/float64(w2wIngress))
}

// TestW2WTraceSpans extends the observability contract to the w2w
// topology: every partition gets a part_owner span, worker reduce spans
// arrive tagged remote with the owner's worker attr, and the merged
// trace passes every verifier invariant — including the owner-decode
// join between part_owner and the reduce-side seg_decode spans.
func TestW2WTraceSpans(t *testing.T) {
	checkGoroutineLeaks(t)
	datasets := queries.GoldenDatasets(queries.GoldenSegments)
	eps := startWorkers(t, 2)
	spec := queries.ByID("G1")
	pool, err := cluster.NewPool(
		queries.ClusterSpec("G1", mapreduce.Config{NumReducers: 3}, core.SympleOptions{}),
		eps, cluster.WithW2W())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sink := obs.NewMemSink()
	conf := remoteConf(pool)
	conf.RemoteReduce = pool
	conf.Trace = obs.NewTrace(sink)
	if _, err := spec.SympleOpts(datasets[spec.Dataset], conf, core.SympleOptions{}); err != nil {
		t.Fatal(err)
	}
	spans := sink.Spans()
	var owners, remoteDecodes int
	for _, sp := range spans {
		switch {
		case sp.Kind == obs.KindPartOwner:
			owners++
			if _, ok := sp.Attrs[obs.AttrWorker]; !ok {
				t.Errorf("part_owner span %d missing the worker attr", sp.ID)
			}
		case sp.Kind == obs.KindSegDecode && sp.Tags["remote"] == "1":
			remoteDecodes++
			if _, ok := sp.Attrs[obs.AttrWorker]; !ok {
				t.Errorf("remote seg_decode span %d missing the worker attr", sp.ID)
			}
		}
	}
	if owners != 3 {
		t.Errorf("%d part_owner spans, want one per partition (3)", owners)
	}
	if remoteDecodes == 0 {
		t.Error("no remote seg_decode spans — worker reduce spans did not ship")
	}
	if err := (obs.Verifier{}).Check(spans); err != nil {
		t.Errorf("merged w2w trace failed verification: %v", err)
	}
}

// TestW2WOwnerDeathFailsCleanly pins the dead-reduce-owner semantics:
// partition ownership is static for the job's lifetime, so when an
// owner dies for good, map attempts cannot settle their pushes and the
// job fails with a clean error once the retry budget exhausts — no
// hang, no partial result, and the surviving worker drains.
func TestW2WOwnerDeathFailsCleanly(t *testing.T) {
	checkGoroutineLeaks(t)
	// Worker 0 gets its own lifecycle so the test can kill it; the
	// startWorkers cleanup contract (serve error nil) still holds.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w0 := cluster.NewWorker()
	ctx0, cancel0 := context.WithCancel(context.Background())
	done0 := make(chan error, 1)
	go func() { done0 <- w0.Serve(ctx0, ln) }()
	killed := false
	kill0 := func() {
		if killed {
			return
		}
		killed = true
		cancel0()
		if err := <-done0; err != nil {
			t.Errorf("worker 0 serve: %v", err)
		}
	}
	t.Cleanup(kill0)
	eps := append([]cluster.Endpoint{cluster.Dial(ln.Addr().String())}, startWorkers(t, 1)...)

	pool, err := cluster.NewPool(
		queries.ClusterSpec("G1", mapreduce.Config{NumReducers: 3}, core.SympleOptions{}),
		eps, cluster.WithW2W())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	kill0() // owner of partitions 0 and 2 is now permanently gone

	spec := queries.ByID("G1")
	segs := queries.GoldenDatasets(queries.GoldenSegments)[spec.Dataset]
	start := time.Now()
	if _, err := spec.SympleOpts(segs, func() mapreduce.Config {
		conf := remoteConf(pool)
		conf.RemoteReduce = pool
		return conf
	}(), core.SympleOptions{}); err == nil {
		t.Fatal("job with a dead partition owner succeeded — ownership must not re-elect mid-job")
	} else if !strings.Contains(err.Error(), "failed after") {
		t.Fatalf("unexpected failure shape: %v", err)
	}
	if d := time.Since(start); d > 60*time.Second {
		t.Fatalf("dead-owner failure took %v — retries did not fail fast", d)
	}
}

// TestTransportEquivalenceCompressedColumnar covers the knobs that
// change the bytes on the wire: flate-compressed runs and columnar
// batched mappers must survive the socket and still hit the golden
// digests.
func TestTransportEquivalenceCompressedColumnar(t *testing.T) {
	checkGoroutineLeaks(t)
	golden := readGolden(t)
	datasets := queries.GoldenDatasets(queries.GoldenSegments)
	eps := startWorkers(t, 2)
	for _, id := range []string{"G1", "B1", "R1"} {
		spec := queries.ByID(id)
		segs := datasets[spec.Dataset]
		for _, mode := range []struct {
			name     string
			compress bool
			opt      core.SympleOptions
		}{
			{"compressed", true, core.SympleOptions{}},
			{"columnar", false, core.SympleOptions{Columnar: true}},
			{"combined", false, core.SympleOptions{Combine: true}},
		} {
			t.Run(id+"/"+mode.name, func(t *testing.T) {
				base := mapreduce.Config{NumReducers: 3, CompressShuffle: mode.compress}
				pool, err := cluster.NewPool(queries.ClusterSpec(id, base, mode.opt), eps)
				if err != nil {
					t.Fatal(err)
				}
				defer pool.Close()
				conf := remoteConf(pool)
				conf.CompressShuffle = mode.compress
				run, err := spec.SympleOpts(segs, conf, mode.opt)
				if err != nil {
					t.Fatal(err)
				}
				if w := golden[id]; run.Digest != w.digest || run.NumResults != w.results {
					t.Errorf("digest %016x (%d results) != golden %016x (%d)",
						run.Digest, run.NumResults, w.digest, w.results)
				}
			})
		}
	}
}

// TestRemoteTraceSpans checks the observability thread across the
// process boundary: worker-side spans come back re-parented under the
// coordinator's job root, tagged remote, and the merged trace still
// passes every engine invariant.
func TestRemoteTraceSpans(t *testing.T) {
	checkGoroutineLeaks(t)
	datasets := queries.GoldenDatasets(queries.GoldenSegments)
	eps := startWorkers(t, 2)
	spec := queries.ByID("G1")
	pool, err := cluster.NewPool(
		queries.ClusterSpec("G1", mapreduce.Config{NumReducers: 3}, core.SympleOptions{}), eps)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sink := obs.NewMemSink()
	conf := remoteConf(pool)
	conf.Trace = obs.NewTrace(sink)
	if _, err := spec.SympleOpts(datasets[spec.Dataset], conf, core.SympleOptions{}); err != nil {
		t.Fatal(err)
	}
	spans := sink.Spans()
	var remote, exec int
	var jobID int64
	for _, sp := range spans {
		if sp.Kind == obs.KindJob {
			jobID = sp.ID
		}
	}
	if jobID == 0 {
		t.Fatal("no job root span")
	}
	for _, sp := range spans {
		if sp.Tags["remote"] != "1" {
			continue
		}
		remote++
		if sp.Kind == obs.KindMapExec {
			exec++
		}
		if sp.Parent != jobID {
			t.Errorf("remote %s span %d parented to %d, want job root %d", sp.Kind, sp.ID, sp.Parent, jobID)
		}
	}
	if remote == 0 || exec == 0 {
		t.Fatalf("no re-parented worker spans in trace (%d remote, %d exec)", remote, exec)
	}
	if err := (obs.Verifier{}).Check(spans); err != nil {
		t.Errorf("merged trace failed verification: %v", err)
	}
}

// TestTransportEquivalenceJobFailure pins teardown on the error path:
// a job whose map side fails remotely must surface a clean error, and
// the pool, workers and goroutines must all drain.
func TestTransportEquivalenceJobFailure(t *testing.T) {
	checkGoroutineLeaks(t)
	eps := startWorkers(t, 2)
	// No such job is registered, so every attempt fails worker-side and
	// the retry budget exhausts.
	pool, err := cluster.NewPool(cluster.JobSpec{Query: "not-a-query", NumReducers: 3}, eps)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	spec := queries.ByID("G1")
	segs := queries.GoldenDatasets(queries.GoldenSegments)[spec.Dataset]
	if _, err := spec.SympleOpts(segs, remoteConf(pool), core.SympleOptions{}); err == nil {
		t.Fatal("job with an unregistered remote map side succeeded")
	} else if !strings.Contains(err.Error(), "no job registered") {
		t.Fatalf("unexpected failure shape: %v", err)
	}
}

// spawnTestWorkers re-executes this test binary as n real worker
// subprocesses.
func spawnTestWorkers(t *testing.T, n int) []cluster.Endpoint {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	eps, err := cluster.SpawnWorkers(exe, n, cluster.SpawnOptions{
		Env: append(os.Environ(), workerEnv+"=1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			if err := ep.Close(); err != nil {
				t.Errorf("stopping worker: %v", err)
			}
		}
	})
	return eps
}

// TestClusterMultiProcessDifferential is the distributed differential:
// real worker subprocesses (this binary re-executed), real sockets, and
// the digests must still match the in-memory transport exactly. Mid-
// suite, one of the two workers is killed outright — the engine's
// retry/speculation machinery must absorb the death and keep every
// digest identical.
func TestClusterMultiProcessDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process differential skipped in -short")
	}
	checkGoroutineLeaks(t)
	golden := readGolden(t)
	datasets := queries.GoldenDatasets(queries.GoldenSegments)
	eps := spawnTestWorkers(t, 2)

	runPool := func(t *testing.T, id string, pool *cluster.Pool) {
		spec := queries.ByID(id)
		run, err := spec.SympleOpts(datasets[spec.Dataset], remoteConf(pool), core.SympleOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if w := golden[id]; run.Digest != w.digest || run.NumResults != w.results {
			t.Errorf("%s: subprocess digest %016x (%d results) != golden %016x (%d)",
				id, run.Digest, run.NumResults, w.digest, w.results)
		}
	}

	for _, id := range []string{"G1", "B1", "R1"} {
		t.Run(id, func(t *testing.T) {
			pool, err := cluster.NewPool(
				queries.ClusterSpec(id, mapreduce.Config{NumReducers: 3}, core.SympleOptions{}), eps)
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Close()
			runPool(t, id, pool)
		})
	}

	// Kill worker 0 for real (process death, not an injected frame)
	// while a pool holds live connections to it: the pool retires its
	// broken conns and the retry budget routes every attempt to the
	// survivor — digests unchanged.
	t.Run("G1-after-worker-death", func(t *testing.T) {
		pool, err := cluster.NewPool(
			queries.ClusterSpec("G1", mapreduce.Config{NumReducers: 3}, core.SympleOptions{}), eps)
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		if err := eps[0].Close(); err != nil {
			t.Fatal(err)
		}
		runPool(t, "G1", pool)
	})
}

// TestSpawnWorkerMissingBinary: a nonexistent worker binary fails
// immediately with a clear error, never a hang (the empty-PATH
// hardening satellite).
func TestSpawnWorkerMissingBinary(t *testing.T) {
	if _, err := cluster.SpawnWorker(filepath.Join(t.TempDir(), "no-such-sympled"),
		cluster.SpawnOptions{Timeout: 5 * time.Second}); err == nil {
		t.Fatal("spawning a nonexistent binary succeeded")
	}
	if _, err := cluster.ResolveWorkerBinary(""); err == nil {
		t.Fatal("empty binary name accepted")
	}
}

// TestResolveWorkerBinaryEmptyPath: with PATH empty and no sibling
// binary, resolution fails with an error that names the binary and the
// fix, instead of deferring the failure to a hang at connect time.
func TestResolveWorkerBinaryEmptyPath(t *testing.T) {
	t.Setenv("PATH", "")
	_, err := cluster.ResolveWorkerBinary("definitely-no-such-worker-binary")
	if err == nil {
		t.Fatal("resolution succeeded with an empty PATH")
	}
	msg := err.Error()
	if !strings.Contains(msg, "definitely-no-such-worker-binary") || !strings.Contains(msg, "go build") {
		t.Fatalf("error does not explain the failure: %v", err)
	}
}

// TestSpawnWorkerNeverAnnounces: a worker process that starts but never
// prints the listen banner is killed at the spawn timeout — the caller
// gets an error, not a wedged startup.
func TestSpawnWorkerNeverAnnounces(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = cluster.SpawnWorker(exe, cluster.SpawnOptions{
		Env:     append(os.Environ(), silentEnv+"=1"),
		Timeout: 300 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("silent worker accepted")
	}
	if !strings.Contains(err.Error(), "listen address") {
		t.Fatalf("unexpected error shape: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("spawn took %v to fail — timeout not enforced", d)
	}
}

// TestWorkerMainRejectsBadAddr: an unusable listen address surfaces as
// an error from WorkerMain, not a silent exit.
func TestWorkerMainRejectsBadAddr(t *testing.T) {
	if err := cluster.WorkerMain("256.256.256.256:0"); err == nil {
		t.Fatal("bad listen address accepted")
	}
}
