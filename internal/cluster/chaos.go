package cluster

import (
	"math"
	"sync/atomic"
)

// Deterministic worker-fault injection, mirroring the engine's
// FaultPlan design (mapreduce/faultinject.go): every decision is a
// pure function of (seed, task, attempt) through a splitmix64
// finalizer, so a chaos run is exactly reproducible from its seed and
// two sweeps over the same seed range replay identical schedules. The
// plan spares any attempt that could be a task's last (the driver's
// final budgeted attempt, and speculative attempts whose IDs run past
// the budget), so every chaos run must still commit — divergence or
// failure is an engine or protocol bug, never injection bad luck.

// ChaosKind is one injected worker-fault flavor.
type ChaosKind int

const (
	// ChaosNone injects nothing.
	ChaosNone ChaosKind = iota
	// ChaosLoseWorker drops the worker's connection before the
	// assignment is even sent — the worker died between attempts.
	ChaosLoseWorker
	// ChaosWorkerAbort makes the worker abort its connection after
	// streaming After runs — the worker died mid-attempt, mid-stream.
	ChaosWorkerAbort
	// ChaosDropConn makes the coordinator drop the connection after
	// receiving After run frames — a network partition mid-stream.
	ChaosDropConn
	// ChaosPeerDrop makes the map worker close its peer connections
	// after After pushes — a worker-to-worker shuffle link dying
	// mid-push. In the via-coordinator topology (no peer mesh) the pool
	// downgrades it to ChaosWorkerAbort so the schedule stays seeded.
	ChaosPeerDrop
	// ChaosServeDisconnect makes a serve client drop its connection
	// while a submitted job is still running — a tenant going away
	// mid-job. The service must cancel the orphaned job and leak
	// nothing.
	ChaosServeDisconnect
	// ChaosServeCancel makes a serve client send a JobCancel while the
	// job is in flight — a clean mid-stream cancellation. The job must
	// settle with a cancelled JobResult.
	ChaosServeCancel
	// ChaosServeEvict flushes the service's summary cache while the
	// job's fold is in progress — eviction mid-fold. The job must still
	// complete with the fault-free digest (the fold owns its decoded
	// summaries; only future jobs re-map).
	ChaosServeEvict
)

// ChaosPlan injects deterministic worker faults into a Pool.
type ChaosPlan struct {
	seed        uint64
	rate        float64
	maxAttempts int
	injected    atomic.Int64
}

// NewChaosPlan seeds a plan. maxAttempts must match the job's
// mapreduce.Config.MaxAttempts so the spare-final rule lines up with
// the retry budget. The default injection rate is 0.4 per attempt.
func NewChaosPlan(seed int64, maxAttempts int) *ChaosPlan {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	return &ChaosPlan{seed: uint64(seed), rate: 0.4, maxAttempts: maxAttempts}
}

// WithRate sets the per-attempt injection probability (0..1).
func (p *ChaosPlan) WithRate(r float64) *ChaosPlan {
	p.rate = math.Min(math.Max(r, 0), 1)
	return p
}

// decide returns the fault for one (task, attempt), with After counting
// the runs/frames to let through before the injected death.
func (p *ChaosPlan) decide(task, attempt int) (kind ChaosKind, after int) {
	if p == nil {
		return ChaosNone, 0
	}
	// Spare-final: the driver's last budgeted attempt (maxAttempts-1)
	// and any speculative attempt beyond the budget run clean, so the
	// task always has a survivable path.
	if attempt >= p.maxAttempts-1 {
		return ChaosNone, 0
	}
	h := chaosMix(p.seed ^ chaosMix(uint64(task)+1) ^ chaosMix(uint64(attempt)+0x9E37))
	if float64(h%1000)/1000 >= p.rate {
		return ChaosNone, 0
	}
	kind = ChaosKind(1 + (h>>10)%4)
	after = int((h >> 20) % 3)
	p.injected.Add(1)
	return kind, after
}

// decideReduce returns whether to kill the partition's reduce owner on
// this attempt: the owner drops the partition's buffered runs and
// aborts its connection, so the retried attempt must refill. Drawn
// from a salted stream separate from the map-side decisions, with the
// same rate and the same spare-final rule.
func (p *ChaosPlan) decideReduce(part, attempt int) bool {
	if p == nil {
		return false
	}
	if attempt >= p.maxAttempts-1 {
		return false
	}
	h := chaosMix(p.seed ^ chaosMix(uint64(part)+0x517C) ^ chaosMix(uint64(attempt)+0xC2B2))
	if float64(h%1000)/1000 >= p.rate {
		return false
	}
	p.injected.Add(1)
	return true
}

// DecideServe returns the serve-path fault for one submitted job, or
// ChaosNone. Drawn from a salted stream separate from the map- and
// reduce-side decisions so adding serve faults never perturbs a
// worker-fault schedule with the same seed. There is no spare-final
// rule: serve faults are survivable by design (disconnect and cancel
// settle the job as cancelled; eviction must not change results), so
// every job is fair game.
func (p *ChaosPlan) DecideServe(job int) ChaosKind {
	if p == nil {
		return ChaosNone
	}
	h := chaosMix(p.seed ^ chaosMix(uint64(job)+0x5EB7))
	if float64(h%1000)/1000 >= p.rate {
		return ChaosNone
	}
	p.injected.Add(1)
	return ChaosServeDisconnect + ChaosKind((h>>10)%3)
}

// Injected counts the faults the plan has armed so far — differential
// sweeps assert it is non-zero, so a silently disarmed harness fails.
func (p *ChaosPlan) Injected() int64 {
	if p == nil {
		return 0
	}
	return p.injected.Load()
}

// chaosMix is the splitmix64 finalizer, the same mixer FaultPlan uses.
func chaosMix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
