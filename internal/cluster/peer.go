package cluster

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/mapreduce"
)

// The worker-to-worker shuffle mesh. In the w2w topology a map worker
// pushes each run straight to the worker owning its partition (one
// lazily dialed peer connection per owner per job), sending the
// coordinator only a byte-counted receipt. The owner buffers runs
// keyed by (task, attempt, part) — idempotent, so refills and retried
// pushes overwrite rather than duplicate — and reduces them in place
// when the coordinator's FrameReduce arrives. The coordinator stays on
// the control path only: receipts up, assignments and reduce requests
// down, merged group summaries back.

// runRef keys one buffered run.
type runRef struct {
	task    int
	attempt int
	part    int
}

// jobState is one job's shuffle state on one worker: the runs pushed
// to it (as owner) and the peer connections it pushes on (as mapper).
type jobState struct {
	id uint64

	mu     sync.Mutex
	owners []int
	addrs  []string
	runs   map[runRef]mapreduce.Run
	peers  map[int]*peerClient
}

func newJobState(id uint64) *jobState {
	return &jobState{
		id:    id,
		runs:  map[runRef]mapreduce.Run{},
		peers: map[int]*peerClient{},
	}
}

// setTopo installs the partition-ownership tables an assignment
// carries. Every assignment of one job carries the same tables, so
// overwriting is idempotent.
func (js *jobState) setTopo(owners []int, addrs []string) {
	js.mu.Lock()
	js.owners = owners
	js.addrs = addrs
	js.mu.Unlock()
}

func (js *jobState) putRun(r mapreduce.Run) {
	js.mu.Lock()
	js.runs[runRef{task: r.Task, attempt: r.Attempt, part: r.Part}] = r
	js.mu.Unlock()
}

func (js *jobState) getRun(task, attempt, part int) (mapreduce.Run, bool) {
	js.mu.Lock()
	r, ok := js.runs[runRef{task: task, attempt: attempt, part: part}]
	js.mu.Unlock()
	return r, ok
}

// dropPart discards a partition's buffered runs — the injected
// reduce-owner death.
func (js *jobState) dropPart(part int) {
	js.mu.Lock()
	for ref := range js.runs {
		if ref.part == part {
			delete(js.runs, ref)
		}
	}
	js.mu.Unlock()
}

// peer returns the lazily dialed push connection to owner.
func (js *jobState) peer(owner int) (*peerClient, error) {
	js.mu.Lock()
	defer js.mu.Unlock()
	if pc, ok := js.peers[owner]; ok {
		return pc, nil
	}
	if owner < 0 || owner >= len(js.addrs) {
		return nil, fmt.Errorf("cluster: no address for peer worker %d", owner)
	}
	pc, err := dialPeer(js.addrs[owner], js.id)
	if err != nil {
		return nil, fmt.Errorf("cluster: dialing peer worker %d: %w", owner, err)
	}
	js.peers[owner] = pc
	return pc, nil
}

// closePeer drops one peer connection after a push error so the next
// attempt redials fresh.
func (js *jobState) closePeer(owner int) {
	js.mu.Lock()
	pc := js.peers[owner]
	delete(js.peers, owner)
	js.mu.Unlock()
	if pc != nil {
		pc.conn.Close()
	}
}

// dropPeers closes every peer connection — the injected peer-drop
// fault and the job-done cleanup. Closing the sockets also lets the
// receiving workers' peer-serving goroutines exit.
func (js *jobState) dropPeers() {
	js.mu.Lock()
	peers := js.peers
	js.peers = map[int]*peerClient{}
	js.mu.Unlock()
	for _, pc := range peers {
		pc.conn.Close()
	}
}

// peerDialTimeout bounds a worker-to-worker dial; peers are on the
// same fabric as the coordinator, so seconds of silence means dead.
const peerDialTimeout = 5 * time.Second

// peerClient is the pushing end of one worker-to-worker connection.
type peerClient struct {
	conn net.Conn
	fr   *frameReader
	fw   *frameWriter
}

func dialPeer(addr string, jobID uint64) (*peerClient, error) {
	conn, err := net.DialTimeout("tcp", addr, peerDialTimeout)
	if err != nil {
		return nil, err
	}
	pc := &peerClient{conn: conn, fr: newFrameReader(conn), fw: newFrameWriter(conn)}
	if err := pc.fw.write(FramePeerHello, encodePeerHello(jobID)); err != nil {
		conn.Close()
		return nil, err
	}
	f, err := pc.fr.next()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if f.Type == FrameError {
		msg, _ := decodeError(f.Payload)
		conn.Close()
		return nil, fmt.Errorf("cluster: peer rejected hello: %s", msg)
	}
	if f.Type != FramePeerHello {
		conn.Close()
		return nil, fmt.Errorf("%w: expected peer hello echo, got frame type %d", ErrFrame, f.Type)
	}
	if got, err := decodePeerHello(f.Payload); err != nil {
		conn.Close()
		return nil, err
	} else if got != jobID {
		conn.Close()
		return nil, fmt.Errorf("%w: peer hello echoed job %d, want %d", ErrFrame, got, jobID)
	}
	return pc, nil
}

// push streams one run to the owner. No per-push ack — partDone
// settles the stream.
func (pc *peerClient) push(jobID uint64, r mapreduce.Run) error {
	return pc.fw.write(FrameRunPush, encodeRunPush(jobID, r))
}

// partDone closes a (task, attempt)'s pushes on this connection and
// waits for the owner's echo — the ack that every push is buffered.
// Only after every pushed-to owner acks does the worker send
// FrameMapDone, so a coordinator commit implies the runs are resident
// at their owners.
func (pc *peerClient) partDone(jobID uint64, task, attempt, count int) error {
	if err := pc.fw.write(FramePartDone, encodePartDone(jobID, task, attempt, count)); err != nil {
		return err
	}
	f, err := pc.fr.next()
	if err != nil {
		return err
	}
	switch f.Type {
	case FramePartDone:
		id, ta, n, err := decodePartDone(f.Payload)
		if err != nil {
			return err
		}
		if id != jobID || ta.task != task || ta.attempt != attempt || n != count {
			return fmt.Errorf("%w: partition-done ack mismatch", ErrFrame)
		}
		return nil
	case FrameError:
		msg, _ := decodeError(f.Payload)
		return fmt.Errorf("cluster: peer rejected pushes: %s", msg)
	default:
		return fmt.Errorf("%w: expected partition-done ack, got frame type %d", ErrFrame, f.Type)
	}
}

// servePeer is the receiving end: buffer pushes into the job's state
// and ack partition-done barriers, until the pusher hangs up. The
// barrier is a stream property — it counts pushes received on THIS
// connection since the last barrier for the (task, attempt), not runs
// resident in job state: a refill re-pushes only the partition that
// was lost, while the owner may still hold the same attempt's runs for
// its other partitions.
func (w *Worker) servePeer(jobID uint64, fr *frameReader, fw *frameWriter) error {
	recv := map[taskAttempt]int{}
	for {
		f, err := fr.next()
		if err != nil {
			if err == io.EOF {
				return nil // pusher closed the mesh cleanly
			}
			return err
		}
		switch f.Type {
		case FrameRunPush:
			id, r, err := decodeRunPush(f.Payload)
			if err != nil {
				_ = fw.write(FrameError, encodeError(err.Error()))
				return err
			}
			if id != jobID {
				err := fmt.Errorf("%w: run push for job %d on a job-%d peer connection", ErrFrame, id, jobID)
				_ = fw.write(FrameError, encodeError(err.Error()))
				return err
			}
			w.jobState(id).putRun(r)
			recv[taskAttempt{task: r.Task, attempt: r.Attempt}]++
		case FramePartDone:
			id, ta, count, err := decodePartDone(f.Payload)
			if err != nil {
				_ = fw.write(FrameError, encodeError(err.Error()))
				return err
			}
			if id != jobID {
				err := fmt.Errorf("%w: partition done for job %d on a job-%d peer connection", ErrFrame, id, jobID)
				_ = fw.write(FrameError, encodeError(err.Error()))
				return err
			}
			if got := recv[ta]; got != count {
				err := fmt.Errorf("cluster: peer pushed %d runs for task %d attempt %d, barrier says %d", got, ta.task, ta.attempt, count)
				_ = fw.write(FrameError, encodeError(err.Error()))
				return err
			}
			delete(recv, ta)
			if err := fw.write(FramePartDone, f.Payload); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unexpected frame type %d on peer connection", ErrFrame, f.Type)
		}
	}
}
