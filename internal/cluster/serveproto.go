package cluster

import (
	"fmt"

	"repro/internal/wire"
)

// Payload codecs for the query-service job frames (protocol version 3).
// Same contract as proto.go: every decoder is total — corrupt input
// returns an error naming wire.ErrCorrupt or ErrFrame, never a panic —
// and the frame fuzz corpus pins both the valid and corrupt classes.

// maxServeString caps the tenant/query/dataset/reason strings in job
// frames; they are identifiers and short sentences, not payloads.
const maxServeString = 1 << 12

// JobSubmit asks a serve-mode daemon to run one query job (client →
// server, FrameJobSubmit).
type JobSubmit struct {
	// Tenant is the admission-control principal the job is billed to.
	Tenant string
	// Query is the registered query ID (e.g. "G1").
	Query string
	// Dataset names a dataset hosted by the service.
	Dataset string
	// Tail subscribes to the dataset: instead of one final result the
	// job emits a refreshed result every TailEvery appended segments
	// until cancelled.
	Tail bool
	// TailEvery is the tail refresh stride in segments (min 1).
	TailEvery int
}

// JobAccept is the immediate admission verdict for one submit (server →
// client, FrameJobAccept).
type JobAccept struct {
	// ID is the service-assigned job ID echoed by every later frame for
	// this job. Zero when the job was rejected.
	ID uint64
	// OK reports admission; when false, Reason says why (queue full,
	// unknown query or dataset, over budget).
	OK     bool
	Reason string
	// QueuePos is the number of jobs ahead in the tenant's queue at
	// admission time (0 = dispatched immediately).
	QueuePos int
}

// JobUpdate is one refreshed result of a tail job (server → client,
// FrameJobUpdate).
type JobUpdate struct {
	ID uint64
	// Seq numbers the updates of one job from 1, in emit order.
	Seq uint64
	// Digest/NumResults mirror queries.Run: the digest of the formatted
	// result lines and the group count.
	Digest     uint64
	NumResults int
	// Segments counts the segments folded into this result; CacheHits
	// of them came from the summary cache and MappedSegments were
	// mapped fresh by this job.
	Segments       int
	CacheHits      int
	MappedSegments int
}

// JobResult settles a job (server → client, FrameJobResult).
type JobResult struct {
	ID uint64
	// Err is the job error ("" on success; "cancelled" after a
	// JobCancel or client disconnect).
	Err        string
	Digest     uint64
	NumResults int
	// Segments/CacheHits/MappedSegments carry the final fold's
	// provenance, as in JobUpdate. Updates counts the tail updates
	// emitted before settling.
	Segments       int
	CacheHits      int
	MappedSegments int
	Updates        int
}

// JobCancel asks the service to cancel an accepted job (client →
// server, FrameJobCancel). The job still settles with a JobResult.
type JobCancel struct {
	ID uint64
}

// EncodeHello builds the hello payload (magic, protocol version) for a
// FrameHello. Exported for the serve client/server handshake; the
// worker path uses it via encodeHello.
func EncodeHello() []byte { return encodeHello() }

func encodeJobSubmit(s JobSubmit) []byte {
	e := wire.NewEncoder(len(s.Tenant) + len(s.Query) + len(s.Dataset) + 16)
	e.String(s.Tenant)
	e.String(s.Query)
	e.String(s.Dataset)
	e.Bool(s.Tail)
	e.Uvarint(uint64(s.TailEvery))
	return e.Bytes()
}

// DecodeJobSubmit decodes a FrameJobSubmit payload.
func DecodeJobSubmit(payload []byte) (JobSubmit, error) {
	d := wire.NewDecoder(payload)
	var s JobSubmit
	s.Tenant = d.String()
	s.Query = d.String()
	s.Dataset = d.String()
	s.Tail = d.Bool()
	s.TailEvery = int(d.Uvarint())
	if err := d.Err(); err != nil {
		return JobSubmit{}, fmt.Errorf("%w: truncated job submit: %v", ErrFrame, err)
	}
	if len(s.Tenant) > maxServeString || len(s.Query) > maxServeString || len(s.Dataset) > maxServeString {
		return JobSubmit{}, fmt.Errorf("%w: oversized job submit field", ErrFrame)
	}
	if d.Remaining() != 0 {
		return JobSubmit{}, fmt.Errorf("%w: %d trailing bytes after job submit", ErrFrame, d.Remaining())
	}
	return s, nil
}

func encodeJobAccept(a JobAccept) []byte {
	e := wire.NewEncoder(len(a.Reason) + 16)
	e.Uvarint(a.ID)
	e.Bool(a.OK)
	e.String(a.Reason)
	e.Uvarint(uint64(a.QueuePos))
	return e.Bytes()
}

// DecodeJobAccept decodes a FrameJobAccept payload.
func DecodeJobAccept(payload []byte) (JobAccept, error) {
	d := wire.NewDecoder(payload)
	var a JobAccept
	a.ID = d.Uvarint()
	a.OK = d.Bool()
	a.Reason = d.String()
	a.QueuePos = int(d.Uvarint())
	if err := d.Err(); err != nil {
		return JobAccept{}, fmt.Errorf("%w: truncated job accept: %v", ErrFrame, err)
	}
	if len(a.Reason) > maxServeString {
		return JobAccept{}, fmt.Errorf("%w: oversized job accept reason", ErrFrame)
	}
	if d.Remaining() != 0 {
		return JobAccept{}, fmt.Errorf("%w: %d trailing bytes after job accept", ErrFrame, d.Remaining())
	}
	return a, nil
}

func encodeJobUpdate(u JobUpdate) []byte {
	e := wire.NewEncoder(40)
	e.Uvarint(u.ID)
	e.Uvarint(u.Seq)
	e.Uint64(u.Digest)
	e.Uvarint(uint64(u.NumResults))
	e.Uvarint(uint64(u.Segments))
	e.Uvarint(uint64(u.CacheHits))
	e.Uvarint(uint64(u.MappedSegments))
	return e.Bytes()
}

// DecodeJobUpdate decodes a FrameJobUpdate payload.
func DecodeJobUpdate(payload []byte) (JobUpdate, error) {
	d := wire.NewDecoder(payload)
	var u JobUpdate
	u.ID = d.Uvarint()
	u.Seq = d.Uvarint()
	u.Digest = d.Uint64()
	u.NumResults = int(d.Uvarint())
	u.Segments = int(d.Uvarint())
	u.CacheHits = int(d.Uvarint())
	u.MappedSegments = int(d.Uvarint())
	if err := d.Err(); err != nil {
		return JobUpdate{}, fmt.Errorf("%w: truncated job update: %v", ErrFrame, err)
	}
	if d.Remaining() != 0 {
		return JobUpdate{}, fmt.Errorf("%w: %d trailing bytes after job update", ErrFrame, d.Remaining())
	}
	return u, nil
}

func encodeJobResult(r JobResult) []byte {
	e := wire.NewEncoder(len(r.Err) + 48)
	e.Uvarint(r.ID)
	e.String(r.Err)
	e.Uint64(r.Digest)
	e.Uvarint(uint64(r.NumResults))
	e.Uvarint(uint64(r.Segments))
	e.Uvarint(uint64(r.CacheHits))
	e.Uvarint(uint64(r.MappedSegments))
	e.Uvarint(uint64(r.Updates))
	return e.Bytes()
}

// DecodeJobResult decodes a FrameJobResult payload.
func DecodeJobResult(payload []byte) (JobResult, error) {
	d := wire.NewDecoder(payload)
	var r JobResult
	r.ID = d.Uvarint()
	r.Err = d.String()
	r.Digest = d.Uint64()
	r.NumResults = int(d.Uvarint())
	r.Segments = int(d.Uvarint())
	r.CacheHits = int(d.Uvarint())
	r.MappedSegments = int(d.Uvarint())
	r.Updates = int(d.Uvarint())
	if err := d.Err(); err != nil {
		return JobResult{}, fmt.Errorf("%w: truncated job result: %v", ErrFrame, err)
	}
	if len(r.Err) > maxServeString {
		return JobResult{}, fmt.Errorf("%w: oversized job result error", ErrFrame)
	}
	if d.Remaining() != 0 {
		return JobResult{}, fmt.Errorf("%w: %d trailing bytes after job result", ErrFrame, d.Remaining())
	}
	return r, nil
}

func encodeJobCancel(c JobCancel) []byte {
	e := wire.NewEncoder(8)
	e.Uvarint(c.ID)
	return e.Bytes()
}

// DecodeJobCancel decodes a FrameJobCancel payload.
func DecodeJobCancel(payload []byte) (JobCancel, error) {
	d := wire.NewDecoder(payload)
	c := JobCancel{ID: d.Uvarint()}
	if err := d.Err(); err != nil {
		return JobCancel{}, fmt.Errorf("%w: truncated job cancel: %v", ErrFrame, err)
	}
	if d.Remaining() != 0 {
		return JobCancel{}, fmt.Errorf("%w: %d trailing bytes after job cancel", ErrFrame, d.Remaining())
	}
	return c, nil
}

// EncodeJobSubmit and friends expose the job-frame encoders to the
// serve package without exporting the wire-level encoder plumbing.
func EncodeJobSubmit(s JobSubmit) []byte { return encodeJobSubmit(s) }

// EncodeJobAccept encodes a FrameJobAccept payload.
func EncodeJobAccept(a JobAccept) []byte { return encodeJobAccept(a) }

// EncodeJobUpdate encodes a FrameJobUpdate payload.
func EncodeJobUpdate(u JobUpdate) []byte { return encodeJobUpdate(u) }

// EncodeJobResult encodes a FrameJobResult payload.
func EncodeJobResult(r JobResult) []byte { return encodeJobResult(r) }

// EncodeJobCancel encodes a FrameJobCancel payload.
func EncodeJobCancel(c JobCancel) []byte { return encodeJobCancel(c) }
