package cluster

import (
	"bytes"
	"encoding/binary"
	"flag"
	"strings"
	"testing"
	"time"

	"repro/internal/fuzzseed"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/wire"
)

var updateFuzzSeeds = flag.Bool("update-fuzz-seeds", false,
	"regenerate testdata/fuzz-seeds/frames from the current encoder")

// seedAssignment builds a realistic small assignment for the corpus.
func seedAssignment() *assignment {
	return &assignment{
		spec: JobSpec{
			Query: "G1", NumReducers: 3, Compress: true,
			Combine: true, MemoSize: 64, MapParallelism: 2,
		},
		task: 4, attempt: 1, abortAfter: -1,
		peerDropAfter: -1, refillPart: -1,
		segID: 4, segDigest: 0xFEEDFACE,
		seg: &mapreduce.Segment{
			ID: 4,
			Records: [][]byte{
				[]byte("1700000000\trepo/alpha\tpush\tu1"),
				[]byte("1700000005\trepo/beta\tpull_open\tu2"),
				[]byte(""),
			},
		},
	}
}

// seedAssignmentW2W is seedAssignment in the worker-to-worker
// topology, ownership tables attached.
func seedAssignmentW2W() *assignment {
	a := seedAssignment()
	a.w2w = true
	a.jobID = 77
	a.selfID = 1
	a.owners = []int{0, 1, 0}
	a.addrs = []string{"127.0.0.1:7001", "127.0.0.1:7002"}
	return a
}

// seedReduce builds a realistic reduce request for the corpus.
func seedReduce() *reduceReq {
	return &reduceReq{
		jobID: 77,
		spec:  JobSpec{Query: "G1", NumReducers: 3, Compress: true, Combine: true},
		part:  2,
		commits: []taskAttempt{
			{task: 0, attempt: 0}, {task: 1, attempt: 2}, {task: 2, attempt: 0},
		},
	}
}

// seedReduceGroups builds a combined-groups reduce reply.
func seedReduceGroups() []mapreduce.ReducedGroup {
	return []mapreduce.ReducedGroup{
		{Key: "repo/alpha", Rows: []mapreduce.Shuffled{
			{MapperID: 0, RecordID: 3, Value: []byte{0x01, 0x44, 0x02}}}},
		{Key: "repo/beta", Rows: []mapreduce.Shuffled{
			{MapperID: 1, RecordID: 0, Value: []byte{0x01, 0x9C}},
			{MapperID: 2, RecordID: 5, Value: []byte{0x01, 0x00}}}},
	}
}

// seedSpans builds a spans payload shaped like a real worker attempt.
func seedSpans() []*obs.Span {
	return []*obs.Span{
		{Kind: "map_exec", Name: "G1/symple", Start: 100, End: 2100,
			Attrs: map[string]int64{"records": 3}, Tags: map[string]string{"chunk": "0"}},
		{Kind: "spill_encode", Name: "part0", Start: 2200, End: 2300},
	}
}

// frame wraps a payload in its wire framing.
func frame(t FrameType, payload []byte) []byte {
	return AppendFrame(nil, t, payload)
}

// helloWith builds a hello payload with arbitrary magic/version, for
// the corruption seeds.
func helloWith(magic, version uint64) []byte {
	e := wire.NewEncoder(8)
	e.Uvarint(magic)
	e.Uvarint(version)
	return e.Bytes()
}

// frameSeedCorpus builds the committed frame corpus: one genuine frame
// per protocol message type plus one seed per corruption class the
// decoders must reject. Names are load-bearing: corrupt-* seeds are
// asserted rejected by TestFuzzSeedFrameCorpus, valid-* accepted.
func frameSeedCorpus() []fuzzseed.Seed {
	assign := frame(FrameAssign, encodeAssign(seedAssignment()))
	hello := frame(FrameHello, encodeHello())
	run := frame(FrameRun, encodeRun(mapreduce.Run{
		Task: 4, Attempt: 1, Part: 2, Seg: []byte{0x01, 0x02, 0x03, 0x9C}}))
	done := frame(FrameMapDone, encodeMapDone(&mapDone{
		emitted: 7, records: 3, inputBytes: 88,
		duration: 1500 * time.Microsecond, logical: []int64{12, 0, 34}}))
	spans := frame(FrameSpans, encodeSpans(seedSpans()))

	// Oversized declared length: type byte plus uvarint(maxFrameLen+1).
	oversized := append([]byte{byte(FrameRun)}, binary.AppendUvarint(nil, maxFrameLen+1)...)

	digestOnly := seedAssignmentW2W()
	digestOnly.seg = nil

	return []fuzzseed.Seed{
		{Name: "valid-hello.bin", Data: hello},
		{Name: "valid-assign.bin", Data: assign},
		{Name: "valid-assign-w2w.bin", Data: frame(FrameAssign, encodeAssign(seedAssignmentW2W()))},
		{Name: "valid-assign-digest-only.bin", Data: frame(FrameAssign, encodeAssign(digestOnly))},
		{Name: "valid-run.bin", Data: run},
		{Name: "valid-mapdone.bin", Data: done},
		{Name: "valid-spans.bin", Data: spans},
		{Name: "valid-error.bin", Data: frame(FrameError, encodeError("mapper: boom"))},
		{Name: "valid-peerhello.bin", Data: frame(FramePeerHello, encodePeerHello(77))},
		{Name: "valid-runpush.bin", Data: frame(FrameRunPush, encodeRunPush(77, mapreduce.Run{
			Task: 4, Attempt: 1, Part: 2, Seg: []byte{0x01, 0x02, 0x03, 0x9C}}))},
		{Name: "valid-partdone.bin", Data: frame(FramePartDone, encodePartDone(77, 4, 1, 2))},
		{Name: "valid-receipt.bin", Data: frame(FrameRunReceipt, encodeRunReceipt(mapreduce.Run{
			Task: 4, Attempt: 1, Part: 2, Bytes: 128}))},
		{Name: "valid-reduce.bin", Data: frame(FrameReduce, encodeReduce(seedReduce()))},
		{Name: "valid-reducedone-groups.bin", Data: frame(FrameReduceDone, encodeReduceGroups(seedReduceGroups()))},
		{Name: "valid-reducedone-missing.bin", Data: frame(FrameReduceDone,
			encodeReduceMissing([]taskAttempt{{task: 1, attempt: 2}}))},
		{Name: "valid-jobdone.bin", Data: frame(FrameJobDone, encodeJobDone(77))},
		{Name: "valid-jobsubmit.bin", Data: frame(FrameJobSubmit, encodeJobSubmit(JobSubmit{
			Tenant: "acme", Query: "G1", Dataset: "github", Tail: true, TailEvery: 2}))},
		{Name: "valid-jobaccept.bin", Data: frame(FrameJobAccept, encodeJobAccept(JobAccept{
			ID: 9, OK: true, QueuePos: 3}))},
		{Name: "valid-jobaccept-rejected.bin", Data: frame(FrameJobAccept, encodeJobAccept(JobAccept{
			OK: false, Reason: "queue full: 64 jobs pending"}))},
		{Name: "valid-jobupdate.bin", Data: frame(FrameJobUpdate, encodeJobUpdate(JobUpdate{
			ID: 9, Seq: 2, Digest: 0x5B4CE1A74A6DB4E3, NumResults: 74,
			Segments: 6, CacheHits: 5, MappedSegments: 1}))},
		{Name: "valid-jobresult.bin", Data: frame(FrameJobResult, encodeJobResult(JobResult{
			ID: 9, Digest: 0x5B4CE1A74A6DB4E3, NumResults: 74,
			Segments: 6, CacheHits: 6, Updates: 4}))},
		{Name: "valid-jobresult-cancelled.bin", Data: frame(FrameJobResult, encodeJobResult(JobResult{
			ID: 9, Err: "cancelled"}))},
		{Name: "valid-jobcancel.bin", Data: frame(FrameJobCancel, encodeJobCancel(JobCancel{ID: 9}))},
		{Name: "corrupt-empty.bin", Data: []byte{}},
		{Name: "corrupt-zero-type.bin", Data: []byte{0x00, 0x00}},
		{Name: "corrupt-unknown-type.bin", Data: []byte{0xEE, 0x00}},
		{Name: "corrupt-unterminated-length.bin", Data: []byte{byte(FrameRun), 0xFF}},
		{Name: "corrupt-oversized-length.bin", Data: oversized},
		{Name: "corrupt-truncated-hello.bin", Data: hello[:len(hello)-2]},
		{Name: "corrupt-truncated-assign.bin", Data: assign[:len(assign)/2]},
		{Name: "corrupt-frame-trailing.bin", Data: append(append([]byte(nil), run...), 0xAB)},
		{Name: "corrupt-hello-magic.bin", Data: frame(FrameHello, helloWith(0xBADC0DE, ProtocolVersion))},
		{Name: "corrupt-hello-version.bin", Data: frame(FrameHello, helloWith(helloMagic, ProtocolVersion+9))},
		{Name: "corrupt-hello-payload-trailing.bin",
			Data: frame(FrameHello, append(encodeHello(), 0x00))},
		{Name: "corrupt-assign-payload-trailing.bin",
			Data: frame(FrameAssign, append(encodeAssign(seedAssignment()), 0x7F))},
		{Name: "corrupt-assign-forged-count.bin",
			Data: frame(FrameAssign, forgedAssignCount())},
		{Name: "corrupt-run-payload-trailing.bin",
			Data: frame(FrameRun, append(encodeRun(mapreduce.Run{Task: 1, Seg: []byte{1}}), 0x01))},
		{Name: "corrupt-mapdone-forged-parts.bin",
			Data: frame(FrameMapDone, forgedMapDoneParts())},
		{Name: "corrupt-spans-forged-count.bin",
			Data: frame(FrameSpans, binary.AppendUvarint(nil, maxSpans+1))},
		{Name: "corrupt-peerhello-version.bin",
			Data: frame(FramePeerHello, peerHelloWith(helloMagic, ProtocolVersion+9, 77))},
		{Name: "corrupt-peerhello-magic.bin",
			Data: frame(FramePeerHello, peerHelloWith(0xBADC0DE, ProtocolVersion, 77))},
		{Name: "corrupt-runpush-trailing.bin",
			Data: frame(FrameRunPush, append(encodeRunPush(77, mapreduce.Run{Task: 1, Seg: []byte{1}}), 0x01))},
		{Name: "corrupt-receipt-zero-bytes.bin",
			Data: frame(FrameRunReceipt, encodeRunReceipt(mapreduce.Run{Task: 4, Attempt: 1, Part: 2}))},
		{Name: "corrupt-reduce-forged-commits.bin",
			Data: frame(FrameReduce, forgedReduceCommits())},
		{Name: "corrupt-reducedone-forged-groups.bin",
			Data: frame(FrameReduceDone, forgedReduceGroups())},
		{Name: "corrupt-assign-forged-owner.bin",
			Data: frame(FrameAssign, encodeAssign(forgedOwnerAssignment()))},
		{Name: "corrupt-jobdone-trailing.bin",
			Data: frame(FrameJobDone, append(encodeJobDone(77), 0x00))},
		{Name: "corrupt-jobsubmit-trailing.bin",
			Data: frame(FrameJobSubmit, append(encodeJobSubmit(JobSubmit{
				Tenant: "acme", Query: "G1", Dataset: "github"}), 0x01))},
		{Name: "corrupt-jobsubmit-oversized-tenant.bin",
			Data: frame(FrameJobSubmit, encodeJobSubmit(JobSubmit{
				Tenant: strings.Repeat("t", maxServeString+1), Query: "G1", Dataset: "github"}))},
		{Name: "corrupt-jobsubmit-forged-length.bin",
			Data: frame(FrameJobSubmit, forgedJobSubmitLength())},
		{Name: "corrupt-jobaccept-trailing.bin",
			Data: frame(FrameJobAccept, append(encodeJobAccept(JobAccept{ID: 9, OK: true}), 0x00))},
		{Name: "corrupt-jobupdate-truncated.bin",
			Data: frame(FrameJobUpdate, encodeJobUpdate(JobUpdate{ID: 9, Seq: 1})[:4])},
		{Name: "corrupt-jobresult-oversized-err.bin",
			Data: frame(FrameJobResult, encodeJobResult(JobResult{
				ID: 9, Err: strings.Repeat("e", maxServeString+1)}))},
		{Name: "corrupt-jobcancel-trailing.bin",
			Data: frame(FrameJobCancel, append(encodeJobCancel(JobCancel{ID: 9}), 0xFF))},
	}
}

// forgedJobSubmitLength claims a huge tenant-string length with no
// string data behind it.
func forgedJobSubmitLength() []byte {
	e := wire.NewEncoder(8)
	e.Uvarint(1 << 30) // forged tenant length
	return e.Bytes()
}

// peerHelloWith builds a peer hello with arbitrary magic/version.
func peerHelloWith(magic, version, jobID uint64) []byte {
	e := wire.NewEncoder(16)
	e.Uvarint(magic)
	e.Uvarint(version)
	e.Uvarint(jobID)
	return e.Bytes()
}

// forgedReduceCommits claims a huge commit count with no data.
func forgedReduceCommits() []byte {
	e := wire.NewEncoder(32)
	e.Uvarint(77)
	appendJobSpec(e, JobSpec{Query: "G1", NumReducers: 3})
	e.Uvarint(2)                    // part
	e.Bool(false)                   // dropState
	e.Uvarint(maxReduceCommits + 1) // forged commit count
	return e.Bytes()
}

// forgedReduceGroups claims a huge group count with no data.
func forgedReduceGroups() []byte {
	e := wire.NewEncoder(16)
	e.Uvarint(0)                   // nothing missing
	e.Uvarint(maxReduceGroups + 1) // forged group count
	return e.Bytes()
}

// forgedOwnerAssignment points a partition at a worker index outside
// the address table.
func forgedOwnerAssignment() *assignment {
	a := seedAssignmentW2W()
	a.owners = []int{0, 5, 0} // worker 5 of 2
	return a
}

// forgedAssignCount claims a huge record count with no record data.
func forgedAssignCount() []byte {
	e := wire.NewEncoder(32)
	appendJobSpec(e, JobSpec{Query: "G1", NumReducers: 3})
	e.Uvarint(0)                     // task
	e.Uvarint(0)                     // attempt
	e.Varint(-1)                     // abortAfter
	e.Bool(false)                    // not w2w
	e.Uvarint(0)                     // segment ID
	e.Uvarint(0)                     // segment digest
	e.Bool(true)                     // payload attached
	e.Uvarint(maxSegmentRecords + 1) // forged record count
	return e.Bytes()
}

// forgedMapDoneParts claims more per-partition entries than maxParts.
func forgedMapDoneParts() []byte {
	e := wire.NewEncoder(16)
	e.Varint(0)
	e.Varint(0)
	e.Varint(0)
	e.Varint(0)
	e.Uvarint(maxParts + 1)
	return e.Bytes()
}

// decodeSeedFrame fully decodes a single-frame seed: framing first,
// then the type's payload codec, rejecting stream leftovers. This is
// the acceptance predicate the corpus assertions and the corruption
// test share.
func decodeSeedFrame(data []byte) error {
	f, rest, err := DecodeFrame(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return errTrailingSeed
	}
	switch f.Type {
	case FrameHello:
		_, err = DecodeHello(f.Payload)
	case FrameAssign:
		_, err = decodeAssign(f.Payload)
	case FrameRun:
		_, err = decodeRun(f.Payload)
	case FrameSpans:
		_, err = decodeSpans(f.Payload)
	case FrameMapDone:
		_, err = decodeMapDone(f.Payload)
	case FrameError:
		_, err = decodeError(f.Payload)
	case FramePeerHello:
		_, err = decodePeerHello(f.Payload)
	case FrameRunPush:
		_, _, err = decodeRunPush(f.Payload)
	case FramePartDone:
		_, _, _, err = decodePartDone(f.Payload)
	case FrameRunReceipt:
		_, err = decodeRunReceipt(f.Payload)
	case FrameReduce:
		_, err = decodeReduce(f.Payload)
	case FrameReduceDone:
		_, _, err = decodeReduceDone(f.Payload)
	case FrameJobDone:
		_, err = decodeJobDone(f.Payload)
	case FrameJobSubmit:
		_, err = DecodeJobSubmit(f.Payload)
	case FrameJobAccept:
		_, err = DecodeJobAccept(f.Payload)
	case FrameJobUpdate:
		_, err = DecodeJobUpdate(f.Payload)
	case FrameJobResult:
		_, err = DecodeJobResult(f.Payload)
	case FrameJobCancel:
		_, err = DecodeJobCancel(f.Payload)
	}
	return err
}

var errTrailingSeed = bytes.ErrTooLarge // any non-nil sentinel; message unused

// TestUpdateFrameFuzzSeeds regenerates the committed corpus when run
// with -update-fuzz-seeds; otherwise it only checks the generator still
// produces every class.
func TestUpdateFrameFuzzSeeds(t *testing.T) {
	corpus := frameSeedCorpus()
	if !*updateFuzzSeeds {
		t.Skipf("generator healthy (%d seeds); pass -update-fuzz-seeds to rewrite testdata/fuzz-seeds/frames", len(corpus))
	}
	if err := fuzzseed.Update("frames", corpus); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzSeedFrameCorpus is the regression net over the committed
// corpus: every corrupt-* seed must be rejected and every valid-* seed
// accepted, independent of how the seed was built.
func TestFuzzSeedFrameCorpus(t *testing.T) {
	seeds, err := fuzzseed.Load("frames")
	if err != nil {
		t.Fatal(err)
	}
	var valid, corrupt int
	for _, s := range seeds {
		err := decodeSeedFrame(s.Data)
		switch {
		case strings.HasPrefix(s.Name, "corrupt-"):
			corrupt++
			if err == nil {
				t.Errorf("%s: corrupt seed accepted", s.Name)
			}
		case strings.HasPrefix(s.Name, "valid-"):
			valid++
			if err != nil {
				t.Errorf("%s: valid seed rejected: %v", s.Name, err)
			}
		default:
			t.Errorf("%s: seed name must start with valid- or corrupt-", s.Name)
		}
	}
	if valid < 20 || corrupt < 27 {
		t.Fatalf("corpus too small: %d valid / %d corrupt seeds", valid, corrupt)
	}
}

// FuzzFrameDecode feeds the frame decoder arbitrary bytes. Contract:
// malformed input — truncation anywhere, unknown types, oversized or
// unterminated lengths, garbage payloads — returns an error, never
// panics and never over-allocates; an accepted frame must survive a
// re-encode/re-decode round trip; and every payload codec must be
// total on whatever payload the framing layer hands it.
func FuzzFrameDecode(f *testing.F) {
	seeds, err := fuzzseed.Load("frames")
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range seeds {
		f.Add(s.Data)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, in []byte) {
		fr, rest, err := DecodeFrame(in)
		if err != nil {
			return
		}
		if len(fr.Payload)+len(rest) > len(in) {
			t.Fatalf("decoded more bytes than supplied: %d payload + %d rest > %d input",
				len(fr.Payload), len(rest), len(in))
		}
		// Round trip: re-framing the decoded frame must decode back to
		// the identical frame with nothing left over.
		re := AppendFrame(nil, fr.Type, fr.Payload)
		fr2, rest2, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		if len(rest2) != 0 || fr2.Type != fr.Type || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("frame round trip diverged: %v/%d bytes vs %v/%d bytes (+%d rest)",
				fr.Type, len(fr.Payload), fr2.Type, len(fr2.Payload), len(rest2))
		}
		// Payload codecs must be total: errors fine, panics never. Run
		// the payload through every decoder, not just its own type's —
		// a desynchronized stream can hand any bytes to any of them.
		_, _ = DecodeHello(fr.Payload)
		_, _ = decodeAssign(fr.Payload)
		_, _ = decodeRun(fr.Payload)
		_, _ = decodeSpans(fr.Payload)
		_, _ = decodeMapDone(fr.Payload)
		_, _ = decodeError(fr.Payload)
		_, _ = decodePeerHello(fr.Payload)
		_, _, _ = decodeRunPush(fr.Payload)
		_, _, _, _ = decodePartDone(fr.Payload)
		_, _ = decodeRunReceipt(fr.Payload)
		_, _ = decodeReduce(fr.Payload)
		_, _, _ = decodeReduceDone(fr.Payload)
		_, _ = decodeJobDone(fr.Payload)
		_, _ = DecodeJobSubmit(fr.Payload)
		_, _ = DecodeJobAccept(fr.Payload)
		_, _ = DecodeJobUpdate(fr.Payload)
		_, _ = DecodeJobResult(fr.Payload)
		_, _ = DecodeJobCancel(fr.Payload)
	})
}

// TestFrameDecodeRejectsCorruption pins the specific corruption classes
// the satellite contract names: truncation at every byte of a genuine
// frame, a bad protocol version, an oversized declared length, and
// trailing garbage after a payload must all error — never panic, never
// silently succeed.
func TestFrameDecodeRejectsCorruption(t *testing.T) {
	for _, s := range frameSeedCorpus() {
		if !strings.HasPrefix(s.Name, "valid-") {
			continue
		}
		// Every strict prefix of a single well-formed frame is truncated
		// somewhere — type, length varint, or payload — and must error.
		for cut := 0; cut < len(s.Data); cut++ {
			if _, _, err := DecodeFrame(s.Data[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d/%d bytes accepted", s.Name, cut, len(s.Data))
			}
		}
	}

	if _, err := DecodeHello(helloWith(helloMagic, ProtocolVersion+1)); err == nil {
		t.Error("future protocol version accepted")
	}
	if _, err := DecodeHello(helloWith(0xDEAD, ProtocolVersion)); err == nil {
		t.Error("bad hello magic accepted")
	}
	if _, err := DecodeHello(append(encodeHello(), 0x00)); err == nil {
		t.Error("trailing garbage after hello accepted")
	}

	oversized := append([]byte{byte(FrameRun)}, binary.AppendUvarint(nil, maxFrameLen+1)...)
	if _, _, err := DecodeFrame(oversized); err == nil {
		t.Error("oversized declared length accepted")
	}

	if _, err := decodeAssign(append(encodeAssign(seedAssignment()), 0x7F)); err == nil {
		t.Error("trailing garbage after assignment accepted")
	}
	if _, err := decodeRun(append(encodeRun(mapreduce.Run{Task: 1, Seg: []byte{1}}), 0x01)); err == nil {
		t.Error("trailing garbage after run accepted")
	}
	if _, err := decodeAssign(forgedAssignCount()); err == nil {
		t.Error("forged record count accepted")
	}
	if _, err := decodeMapDone(forgedMapDoneParts()); err == nil {
		t.Error("forged partition count accepted")
	}

	if _, err := decodePeerHello(peerHelloWith(helloMagic, ProtocolVersion+1, 7)); err == nil {
		t.Error("future peer protocol version accepted")
	}
	if _, err := decodePeerHello(peerHelloWith(0xDEAD, ProtocolVersion, 7)); err == nil {
		t.Error("bad peer hello magic accepted")
	}
	if _, err := decodeRunReceipt(encodeRunReceipt(mapreduce.Run{Task: 1, Part: 0})); err == nil {
		t.Error("zero-byte run receipt accepted")
	}
	if _, err := decodeReduce(forgedReduceCommits()); err == nil {
		t.Error("forged reduce commit count accepted")
	}
	if _, _, err := decodeReduceDone(forgedReduceGroups()); err == nil {
		t.Error("forged reduce group count accepted")
	}
	if _, err := decodeAssign(encodeAssign(forgedOwnerAssignment())); err == nil {
		t.Error("out-of-range partition owner accepted")
	}
	if _, err := decodeJobDone(append(encodeJobDone(7), 0x00)); err == nil {
		t.Error("trailing garbage after job done accepted")
	}
	if _, err := DecodeJobSubmit(append(encodeJobSubmit(JobSubmit{Tenant: "t", Query: "q", Dataset: "d"}), 0x01)); err == nil {
		t.Error("trailing garbage after job submit accepted")
	}
	if _, err := DecodeJobSubmit(encodeJobSubmit(JobSubmit{
		Tenant: strings.Repeat("t", maxServeString+1), Query: "q", Dataset: "d"})); err == nil {
		t.Error("oversized job submit tenant accepted")
	}
	if _, err := DecodeJobSubmit(forgedJobSubmitLength()); err == nil {
		t.Error("forged job submit string length accepted")
	}
	if _, err := DecodeJobAccept(append(encodeJobAccept(JobAccept{ID: 1, OK: true}), 0x00)); err == nil {
		t.Error("trailing garbage after job accept accepted")
	}
	if _, err := DecodeJobUpdate(encodeJobUpdate(JobUpdate{ID: 1, Seq: 1, Digest: 1})[:4]); err == nil {
		t.Error("truncated job update accepted")
	}
	if _, err := DecodeJobResult(encodeJobResult(JobResult{
		ID: 1, Err: strings.Repeat("e", maxServeString+1)})); err == nil {
		t.Error("oversized job result error accepted")
	}
	if _, err := DecodeJobCancel(append(encodeJobCancel(JobCancel{ID: 1}), 0xFF)); err == nil {
		t.Error("trailing garbage after job cancel accepted")
	}
	// A reply claiming both groups and missing runs is ambiguous.
	both := wire.NewEncoder(16)
	both.Uvarint(1)
	both.Uvarint(1) // missing: task 1
	both.Uvarint(1) // missing: attempt 1
	both.Uvarint(1) // one group
	both.String("k")
	both.Uvarint(0) // zero rows
	if _, _, err := decodeReduceDone(both.Bytes()); err == nil {
		t.Error("reduce reply with both groups and missing accepted")
	}
}

// TestAssignRoundTrip pins the assignment codec on both record forms.
func TestAssignRoundTrip(t *testing.T) {
	a := seedAssignment()
	got, err := decodeAssign(encodeAssign(a))
	if err != nil {
		t.Fatal(err)
	}
	if got.spec != a.spec || got.task != a.task || got.attempt != a.attempt ||
		got.abortAfter != a.abortAfter || got.seg.ID != a.seg.ID {
		t.Fatalf("assignment metadata diverged: %+v vs %+v", got, a)
	}
	if len(got.seg.Records) != len(a.seg.Records) {
		t.Fatalf("record count %d, want %d", len(got.seg.Records), len(a.seg.Records))
	}
	for i := range a.seg.Records {
		if !bytes.Equal(got.seg.Records[i], a.seg.Records[i]) {
			t.Fatalf("record %d diverged", i)
		}
	}
}

// TestAssignW2WRoundTrip pins the extended assignment codec: topology
// tables, digest-only form, refill markers.
func TestAssignW2WRoundTrip(t *testing.T) {
	a := seedAssignmentW2W()
	a.peerDropAfter = 2
	a.refillPart = 1
	got, err := decodeAssign(encodeAssign(a))
	if err != nil {
		t.Fatal(err)
	}
	if !got.w2w || got.jobID != a.jobID || got.selfID != a.selfID ||
		got.peerDropAfter != 2 || got.refillPart != 1 || got.segDigest != a.segDigest {
		t.Fatalf("w2w assignment metadata diverged: %+v vs %+v", got, a)
	}
	if len(got.owners) != len(a.owners) || len(got.addrs) != len(a.addrs) {
		t.Fatalf("topology tables diverged: %+v vs %+v", got, a)
	}
	for i := range a.owners {
		if got.owners[i] != a.owners[i] {
			t.Fatalf("owner %d: %d vs %d", i, got.owners[i], a.owners[i])
		}
	}
	for i := range a.addrs {
		if got.addrs[i] != a.addrs[i] {
			t.Fatalf("addr %d: %q vs %q", i, got.addrs[i], a.addrs[i])
		}
	}

	a.seg = nil // digest-only form
	got, err = decodeAssign(encodeAssign(a))
	if err != nil {
		t.Fatal(err)
	}
	if got.seg != nil || got.segDigest != a.segDigest || got.segID != a.segID {
		t.Fatalf("digest-only assignment diverged: %+v", got)
	}
}

// TestW2WCodecRoundTrips pins the push/receipt/reduce codecs.
func TestW2WCodecRoundTrips(t *testing.T) {
	jid, run, err := decodeRunPush(encodeRunPush(77, mapreduce.Run{
		Task: 4, Attempt: 1, Part: 2, Seg: []byte{9, 8, 7}}))
	if err != nil {
		t.Fatal(err)
	}
	if jid != 77 || run.Task != 4 || run.Attempt != 1 || run.Part != 2 ||
		run.Bytes != 3 || !bytes.Equal(run.Seg, []byte{9, 8, 7}) {
		t.Fatalf("run push diverged: job %d run %+v", jid, run)
	}

	jid, ta, n, err := decodePartDone(encodePartDone(77, 4, 1, 6))
	if err != nil {
		t.Fatal(err)
	}
	if jid != 77 || ta.task != 4 || ta.attempt != 1 || n != 6 {
		t.Fatalf("partition done diverged: job %d %+v count %d", jid, ta, n)
	}

	rec, err := decodeRunReceipt(encodeRunReceipt(mapreduce.Run{Task: 4, Attempt: 1, Part: 2, Bytes: 321}))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Task != 4 || rec.Attempt != 1 || rec.Part != 2 || rec.Bytes != 321 || rec.Seg != nil {
		t.Fatalf("receipt diverged: %+v", rec)
	}

	req := seedReduce()
	gotReq, err := decodeReduce(encodeReduce(req))
	if err != nil {
		t.Fatal(err)
	}
	if gotReq.jobID != req.jobID || gotReq.spec != req.spec || gotReq.part != req.part ||
		gotReq.dropState != req.dropState || len(gotReq.commits) != len(req.commits) {
		t.Fatalf("reduce request diverged: %+v vs %+v", gotReq, req)
	}
	for i := range req.commits {
		if gotReq.commits[i] != req.commits[i] {
			t.Fatalf("commit %d: %+v vs %+v", i, gotReq.commits[i], req.commits[i])
		}
	}

	groups := seedReduceGroups()
	gotGroups, missing, err := decodeReduceDone(encodeReduceGroups(groups))
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 || len(gotGroups) != len(groups) {
		t.Fatalf("reduce groups diverged: %d groups, %d missing", len(gotGroups), len(missing))
	}
	for i, g := range groups {
		got := gotGroups[i]
		if got.Key != g.Key || len(got.Rows) != len(g.Rows) {
			t.Fatalf("group %d diverged: %+v vs %+v", i, got, g)
		}
		for j, r := range g.Rows {
			gr := got.Rows[j]
			if gr.MapperID != r.MapperID || gr.RecordID != r.RecordID || !bytes.Equal(gr.Value, r.Value) {
				t.Fatalf("group %d row %d diverged: %+v vs %+v", i, j, gr, r)
			}
		}
	}

	want := []taskAttempt{{task: 1, attempt: 2}, {task: 5, attempt: 0}}
	gotGroups, missing, err = decodeReduceDone(encodeReduceMissing(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotGroups) != 0 || len(missing) != len(want) {
		t.Fatalf("reduce missing diverged: %d groups, %d missing", len(gotGroups), len(missing))
	}
	for i := range want {
		if missing[i] != want[i] {
			t.Fatalf("missing %d: %+v vs %+v", i, missing[i], want[i])
		}
	}

	jid2, err := decodeJobDone(encodeJobDone(12345))
	if err != nil || jid2 != 12345 {
		t.Fatalf("job done diverged: %d, %v", jid2, err)
	}
}

// TestJobFrameRoundTrips pins the five serve job-frame codecs: every
// field survives an encode/decode round trip, including the rejected
// and cancelled forms.
func TestJobFrameRoundTrips(t *testing.T) {
	sub := JobSubmit{Tenant: "acme", Query: "R4", Dataset: "redshift", Tail: true, TailEvery: 3}
	if got, err := DecodeJobSubmit(encodeJobSubmit(sub)); err != nil || got != sub {
		t.Fatalf("job submit diverged: %+v vs %+v (%v)", got, sub, err)
	}
	for _, acc := range []JobAccept{
		{ID: 42, OK: true, QueuePos: 7},
		{OK: false, Reason: "unknown query Z9"},
	} {
		if got, err := DecodeJobAccept(encodeJobAccept(acc)); err != nil || got != acc {
			t.Fatalf("job accept diverged: %+v vs %+v (%v)", got, acc, err)
		}
	}
	u := JobUpdate{ID: 42, Seq: 9, Digest: 0xCE4386EA43DC8579, NumResults: 40,
		Segments: 6, CacheHits: 4, MappedSegments: 2}
	if got, err := DecodeJobUpdate(encodeJobUpdate(u)); err != nil || got != u {
		t.Fatalf("job update diverged: %+v vs %+v (%v)", got, u, err)
	}
	for _, r := range []JobResult{
		{ID: 42, Digest: 0xA0A6156645A7A793, NumResults: 53, Segments: 6, CacheHits: 6, Updates: 2},
		{ID: 43, Err: "cancelled", Updates: 5},
	} {
		if got, err := DecodeJobResult(encodeJobResult(r)); err != nil || got != r {
			t.Fatalf("job result diverged: %+v vs %+v (%v)", got, r, err)
		}
	}
	if got, err := DecodeJobCancel(encodeJobCancel(JobCancel{ID: 42})); err != nil || got.ID != 42 {
		t.Fatalf("job cancel diverged: %+v (%v)", got, err)
	}
}

// TestSpansRoundTrip pins the spans codec, attrs and tags included.
func TestSpansRoundTrip(t *testing.T) {
	in := seedSpans()
	got, err := decodeSpans(encodeSpans(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("span count %d, want %d", len(got), len(in))
	}
	for i := range in {
		a, b := in[i], got[i]
		if a.Kind != b.Kind || a.Name != b.Name || a.Start != b.Start || a.End != b.End ||
			len(a.Attrs) != len(b.Attrs) || len(a.Tags) != len(b.Tags) {
			t.Fatalf("span %d diverged: %+v vs %+v", i, a, b)
		}
		for k, v := range a.Attrs {
			if b.Attrs[k] != v {
				t.Fatalf("span %d attr %q: %d vs %d", i, k, v, b.Attrs[k])
			}
		}
		for k, v := range a.Tags {
			if b.Tags[k] != v {
				t.Fatalf("span %d tag %q: %q vs %q", i, k, v, b.Tags[k])
			}
		}
	}
}
