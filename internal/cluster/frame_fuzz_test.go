package cluster

import (
	"bytes"
	"encoding/binary"
	"flag"
	"strings"
	"testing"
	"time"

	"repro/internal/fuzzseed"
	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/wire"
)

var updateFuzzSeeds = flag.Bool("update-fuzz-seeds", false,
	"regenerate testdata/fuzz-seeds/frames from the current encoder")

// seedAssignment builds a realistic small assignment for the corpus.
func seedAssignment() *assignment {
	return &assignment{
		spec: JobSpec{
			Query: "G1", NumReducers: 3, Compress: true,
			Combine: true, MemoSize: 64, MapParallelism: 2,
		},
		task: 4, attempt: 1, abortAfter: -1,
		seg: &mapreduce.Segment{
			ID: 4,
			Records: [][]byte{
				[]byte("1700000000\trepo/alpha\tpush\tu1"),
				[]byte("1700000005\trepo/beta\tpull_open\tu2"),
				[]byte(""),
			},
		},
	}
}

// seedSpans builds a spans payload shaped like a real worker attempt.
func seedSpans() []*obs.Span {
	return []*obs.Span{
		{Kind: "map_exec", Name: "G1/symple", Start: 100, End: 2100,
			Attrs: map[string]int64{"records": 3}, Tags: map[string]string{"chunk": "0"}},
		{Kind: "spill_encode", Name: "part0", Start: 2200, End: 2300},
	}
}

// frame wraps a payload in its wire framing.
func frame(t FrameType, payload []byte) []byte {
	return AppendFrame(nil, t, payload)
}

// helloWith builds a hello payload with arbitrary magic/version, for
// the corruption seeds.
func helloWith(magic, version uint64) []byte {
	e := wire.NewEncoder(8)
	e.Uvarint(magic)
	e.Uvarint(version)
	return e.Bytes()
}

// frameSeedCorpus builds the committed frame corpus: one genuine frame
// per protocol message type plus one seed per corruption class the
// decoders must reject. Names are load-bearing: corrupt-* seeds are
// asserted rejected by TestFuzzSeedFrameCorpus, valid-* accepted.
func frameSeedCorpus() []fuzzseed.Seed {
	assign := frame(FrameAssign, encodeAssign(seedAssignment()))
	hello := frame(FrameHello, encodeHello())
	run := frame(FrameRun, encodeRun(mapreduce.Run{
		Task: 4, Attempt: 1, Part: 2, Seg: []byte{0x01, 0x02, 0x03, 0x9C}}))
	done := frame(FrameMapDone, encodeMapDone(&mapDone{
		emitted: 7, records: 3, inputBytes: 88,
		duration: 1500 * time.Microsecond, logical: []int64{12, 0, 34}}))
	spans := frame(FrameSpans, encodeSpans(seedSpans()))

	// Oversized declared length: type byte plus uvarint(maxFrameLen+1).
	oversized := append([]byte{byte(FrameRun)}, binary.AppendUvarint(nil, maxFrameLen+1)...)

	return []fuzzseed.Seed{
		{Name: "valid-hello.bin", Data: hello},
		{Name: "valid-assign.bin", Data: assign},
		{Name: "valid-run.bin", Data: run},
		{Name: "valid-mapdone.bin", Data: done},
		{Name: "valid-spans.bin", Data: spans},
		{Name: "valid-error.bin", Data: frame(FrameError, encodeError("mapper: boom"))},
		{Name: "corrupt-empty.bin", Data: []byte{}},
		{Name: "corrupt-zero-type.bin", Data: []byte{0x00, 0x00}},
		{Name: "corrupt-unknown-type.bin", Data: []byte{0xEE, 0x00}},
		{Name: "corrupt-unterminated-length.bin", Data: []byte{byte(FrameRun), 0xFF}},
		{Name: "corrupt-oversized-length.bin", Data: oversized},
		{Name: "corrupt-truncated-hello.bin", Data: hello[:len(hello)-2]},
		{Name: "corrupt-truncated-assign.bin", Data: assign[:len(assign)/2]},
		{Name: "corrupt-frame-trailing.bin", Data: append(append([]byte(nil), run...), 0xAB)},
		{Name: "corrupt-hello-magic.bin", Data: frame(FrameHello, helloWith(0xBADC0DE, ProtocolVersion))},
		{Name: "corrupt-hello-version.bin", Data: frame(FrameHello, helloWith(helloMagic, ProtocolVersion+9))},
		{Name: "corrupt-hello-payload-trailing.bin",
			Data: frame(FrameHello, append(encodeHello(), 0x00))},
		{Name: "corrupt-assign-payload-trailing.bin",
			Data: frame(FrameAssign, append(encodeAssign(seedAssignment()), 0x7F))},
		{Name: "corrupt-assign-forged-count.bin",
			Data: frame(FrameAssign, forgedAssignCount())},
		{Name: "corrupt-run-payload-trailing.bin",
			Data: frame(FrameRun, append(encodeRun(mapreduce.Run{Task: 1, Seg: []byte{1}}), 0x01))},
		{Name: "corrupt-mapdone-forged-parts.bin",
			Data: frame(FrameMapDone, forgedMapDoneParts())},
		{Name: "corrupt-spans-forged-count.bin",
			Data: frame(FrameSpans, binary.AppendUvarint(nil, maxSpans+1))},
	}
}

// forgedAssignCount claims a huge record count with no record data.
func forgedAssignCount() []byte {
	e := wire.NewEncoder(32)
	appendJobSpec(e, JobSpec{Query: "G1", NumReducers: 3})
	e.Uvarint(0)                     // task
	e.Uvarint(0)                     // attempt
	e.Varint(-1)                     // abortAfter
	e.Uvarint(0)                     // segment ID
	e.Uvarint(maxSegmentRecords + 1) // forged record count
	return e.Bytes()
}

// forgedMapDoneParts claims more per-partition entries than maxParts.
func forgedMapDoneParts() []byte {
	e := wire.NewEncoder(16)
	e.Varint(0)
	e.Varint(0)
	e.Varint(0)
	e.Varint(0)
	e.Uvarint(maxParts + 1)
	return e.Bytes()
}

// decodeSeedFrame fully decodes a single-frame seed: framing first,
// then the type's payload codec, rejecting stream leftovers. This is
// the acceptance predicate the corpus assertions and the corruption
// test share.
func decodeSeedFrame(data []byte) error {
	f, rest, err := DecodeFrame(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return errTrailingSeed
	}
	switch f.Type {
	case FrameHello:
		_, err = DecodeHello(f.Payload)
	case FrameAssign:
		_, err = decodeAssign(f.Payload)
	case FrameRun:
		_, err = decodeRun(f.Payload)
	case FrameSpans:
		_, err = decodeSpans(f.Payload)
	case FrameMapDone:
		_, err = decodeMapDone(f.Payload)
	case FrameError:
		_, err = decodeError(f.Payload)
	}
	return err
}

var errTrailingSeed = bytes.ErrTooLarge // any non-nil sentinel; message unused

// TestUpdateFrameFuzzSeeds regenerates the committed corpus when run
// with -update-fuzz-seeds; otherwise it only checks the generator still
// produces every class.
func TestUpdateFrameFuzzSeeds(t *testing.T) {
	corpus := frameSeedCorpus()
	if !*updateFuzzSeeds {
		t.Skipf("generator healthy (%d seeds); pass -update-fuzz-seeds to rewrite testdata/fuzz-seeds/frames", len(corpus))
	}
	if err := fuzzseed.Update("frames", corpus); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzSeedFrameCorpus is the regression net over the committed
// corpus: every corrupt-* seed must be rejected and every valid-* seed
// accepted, independent of how the seed was built.
func TestFuzzSeedFrameCorpus(t *testing.T) {
	seeds, err := fuzzseed.Load("frames")
	if err != nil {
		t.Fatal(err)
	}
	var valid, corrupt int
	for _, s := range seeds {
		err := decodeSeedFrame(s.Data)
		switch {
		case strings.HasPrefix(s.Name, "corrupt-"):
			corrupt++
			if err == nil {
				t.Errorf("%s: corrupt seed accepted", s.Name)
			}
		case strings.HasPrefix(s.Name, "valid-"):
			valid++
			if err != nil {
				t.Errorf("%s: valid seed rejected: %v", s.Name, err)
			}
		default:
			t.Errorf("%s: seed name must start with valid- or corrupt-", s.Name)
		}
	}
	if valid < 5 || corrupt < 12 {
		t.Fatalf("corpus too small: %d valid / %d corrupt seeds", valid, corrupt)
	}
}

// FuzzFrameDecode feeds the frame decoder arbitrary bytes. Contract:
// malformed input — truncation anywhere, unknown types, oversized or
// unterminated lengths, garbage payloads — returns an error, never
// panics and never over-allocates; an accepted frame must survive a
// re-encode/re-decode round trip; and every payload codec must be
// total on whatever payload the framing layer hands it.
func FuzzFrameDecode(f *testing.F) {
	seeds, err := fuzzseed.Load("frames")
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range seeds {
		f.Add(s.Data)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, in []byte) {
		fr, rest, err := DecodeFrame(in)
		if err != nil {
			return
		}
		if len(fr.Payload)+len(rest) > len(in) {
			t.Fatalf("decoded more bytes than supplied: %d payload + %d rest > %d input",
				len(fr.Payload), len(rest), len(in))
		}
		// Round trip: re-framing the decoded frame must decode back to
		// the identical frame with nothing left over.
		re := AppendFrame(nil, fr.Type, fr.Payload)
		fr2, rest2, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		if len(rest2) != 0 || fr2.Type != fr.Type || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("frame round trip diverged: %v/%d bytes vs %v/%d bytes (+%d rest)",
				fr.Type, len(fr.Payload), fr2.Type, len(fr2.Payload), len(rest2))
		}
		// Payload codecs must be total: errors fine, panics never. Run
		// the payload through every decoder, not just its own type's —
		// a desynchronized stream can hand any bytes to any of them.
		_, _ = DecodeHello(fr.Payload)
		_, _ = decodeAssign(fr.Payload)
		_, _ = decodeRun(fr.Payload)
		_, _ = decodeSpans(fr.Payload)
		_, _ = decodeMapDone(fr.Payload)
		_, _ = decodeError(fr.Payload)
	})
}

// TestFrameDecodeRejectsCorruption pins the specific corruption classes
// the satellite contract names: truncation at every byte of a genuine
// frame, a bad protocol version, an oversized declared length, and
// trailing garbage after a payload must all error — never panic, never
// silently succeed.
func TestFrameDecodeRejectsCorruption(t *testing.T) {
	for _, s := range frameSeedCorpus() {
		if !strings.HasPrefix(s.Name, "valid-") {
			continue
		}
		// Every strict prefix of a single well-formed frame is truncated
		// somewhere — type, length varint, or payload — and must error.
		for cut := 0; cut < len(s.Data); cut++ {
			if _, _, err := DecodeFrame(s.Data[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d/%d bytes accepted", s.Name, cut, len(s.Data))
			}
		}
	}

	if _, err := DecodeHello(helloWith(helloMagic, ProtocolVersion+1)); err == nil {
		t.Error("future protocol version accepted")
	}
	if _, err := DecodeHello(helloWith(0xDEAD, ProtocolVersion)); err == nil {
		t.Error("bad hello magic accepted")
	}
	if _, err := DecodeHello(append(encodeHello(), 0x00)); err == nil {
		t.Error("trailing garbage after hello accepted")
	}

	oversized := append([]byte{byte(FrameRun)}, binary.AppendUvarint(nil, maxFrameLen+1)...)
	if _, _, err := DecodeFrame(oversized); err == nil {
		t.Error("oversized declared length accepted")
	}

	if _, err := decodeAssign(append(encodeAssign(seedAssignment()), 0x7F)); err == nil {
		t.Error("trailing garbage after assignment accepted")
	}
	if _, err := decodeRun(append(encodeRun(mapreduce.Run{Task: 1, Seg: []byte{1}}), 0x01)); err == nil {
		t.Error("trailing garbage after run accepted")
	}
	if _, err := decodeAssign(forgedAssignCount()); err == nil {
		t.Error("forged record count accepted")
	}
	if _, err := decodeMapDone(forgedMapDoneParts()); err == nil {
		t.Error("forged partition count accepted")
	}
}

// TestAssignRoundTrip pins the assignment codec on both record forms.
func TestAssignRoundTrip(t *testing.T) {
	a := seedAssignment()
	got, err := decodeAssign(encodeAssign(a))
	if err != nil {
		t.Fatal(err)
	}
	if got.spec != a.spec || got.task != a.task || got.attempt != a.attempt ||
		got.abortAfter != a.abortAfter || got.seg.ID != a.seg.ID {
		t.Fatalf("assignment metadata diverged: %+v vs %+v", got, a)
	}
	if len(got.seg.Records) != len(a.seg.Records) {
		t.Fatalf("record count %d, want %d", len(got.seg.Records), len(a.seg.Records))
	}
	for i := range a.seg.Records {
		if !bytes.Equal(got.seg.Records[i], a.seg.Records[i]) {
			t.Fatalf("record %d diverged", i)
		}
	}
}

// TestSpansRoundTrip pins the spans codec, attrs and tags included.
func TestSpansRoundTrip(t *testing.T) {
	in := seedSpans()
	got, err := decodeSpans(encodeSpans(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("span count %d, want %d", len(got), len(in))
	}
	for i := range in {
		a, b := in[i], got[i]
		if a.Kind != b.Kind || a.Name != b.Name || a.Start != b.Start || a.End != b.End ||
			len(a.Attrs) != len(b.Attrs) || len(a.Tags) != len(b.Tags) {
			t.Fatalf("span %d diverged: %+v vs %+v", i, a, b)
		}
		for k, v := range a.Attrs {
			if b.Attrs[k] != v {
				t.Fatalf("span %d attr %q: %d vs %d", i, k, v, b.Attrs[k])
			}
		}
		for k, v := range a.Tags {
			if b.Tags[k] != v {
				t.Fatalf("span %d tag %q: %q vs %q", i, k, v, b.Tags[k])
			}
		}
	}
}
