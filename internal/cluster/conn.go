package cluster

import (
	"io"
	"sync"
)

// FrameConn pairs a frame reader and writer over one byte stream — the
// exported face of the framing layer for the serve package, which runs
// the job protocol without the worker/coordinator machinery. Reads are
// single-consumer (one goroutine owns Next); writes are mutex-guarded
// so many job goroutines can interleave whole frames on one connection.
type FrameConn struct {
	fr  *frameReader
	wmu sync.Mutex
	fw  *frameWriter
}

// NewFrameConn wraps rw (usually a net.Conn) in frame framing. The
// caller keeps ownership of rw and closes it to unblock Next.
func NewFrameConn(rw io.ReadWriter) *FrameConn {
	return &FrameConn{fr: newFrameReader(rw), fw: newFrameWriter(rw)}
}

// Write sends one frame and flushes. Safe for concurrent use.
func (c *FrameConn) Write(t FrameType, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.fw.write(t, payload)
}

// Next reads one frame. io.EOF surfaces unchanged at a clean frame
// boundary; truncation mid-frame becomes io.ErrUnexpectedEOF.
func (c *FrameConn) Next() (Frame, error) {
	return c.fr.next()
}
