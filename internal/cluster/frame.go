// Package cluster turns the in-process mapreduce engine into a
// coordinator/worker system over TCP. The coordinator keeps the whole
// task lifecycle — retries with backoff, speculation, the
// first-finisher-wins commit — and ships only the map attempt body to
// worker processes: a worker receives an input segment (records, plus
// the colcodec columnar form when attached), runs the registered map
// side, and streams the segcodec-encoded runs and composed summaries
// back. Worker death and connection drops surface as attempt errors
// the existing lifecycle retries, so a worker whose output never
// commits cannot perturb the merged stream — the paper's placement-
// invariance argument (§5.4) carried across a process boundary.
//
// Everything crosses the socket inside length-prefixed, versioned
// frames (this file); payload codecs live in proto.go, the worker loop
// in worker.go, and the coordinator pool in coord.go.
package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ProtocolVersion is negotiated by the hello exchange; a peer speaking
// a different version is rejected before any job traffic. Version 2
// added the worker-to-worker shuffle frames (peer_hello, run_push,
// partition_done, run_receipt, reduce, reduce_done, job_done) and the
// extended assignment payload (topology, segment digest). Version 3
// added the query-service job frames (job_submit, job_accept,
// job_update, job_result, job_cancel).
const ProtocolVersion = 3

// helloMagic opens every hello payload, guarding against a stray TCP
// client. Spells "SYMP".
const helloMagic = 0x53594D50

// maxFrameLen caps a frame payload. The largest legitimate frame is an
// assignment carrying one input segment; 256 MiB is far above any
// in-tree corpus while still rejecting absurd lengths from a corrupt
// or hostile stream before allocation.
const maxFrameLen = 1 << 28

// ErrFrame is wrapped by every framing-layer decode error.
var ErrFrame = errors.New("cluster: corrupt frame")

// FrameType discriminates the protocol's messages.
type FrameType byte

const (
	// FrameHello is exchanged once in each direction when a connection
	// opens: magic and protocol version.
	FrameHello FrameType = 1
	// FrameAssign carries one map attempt from coordinator to worker:
	// the job spec, task/attempt IDs, and the input segment.
	FrameAssign FrameType = 2
	// FrameRun streams one encoded map-output run (a mapreduce.Run in
	// segcodec form) from worker to coordinator.
	FrameRun FrameType = 3
	// FrameSpans ships the worker-side trace spans covering the
	// attempt, for re-parenting under the coordinator's job root.
	FrameSpans FrameType = 4
	// FrameMapDone closes an attempt: metrics for the completed map.
	FrameMapDone FrameType = 5
	// FrameError reports a worker-side attempt failure; the connection
	// stays usable for the next assignment.
	FrameError FrameType = 6
	// FramePeerHello opens a worker-to-worker peer connection: magic,
	// protocol version, and the job ID the pushes belong to. The
	// receiving worker echoes it back as the accept.
	FramePeerHello FrameType = 7
	// FrameRunPush streams one encoded run from a map worker directly to
	// the worker owning the run's partition (w2w topology). No per-push
	// ack; FramePartDone settles the stream.
	FrameRunPush FrameType = 8
	// FramePartDone closes a map attempt's pushes to one peer: the push
	// count for (task, attempt), echoed back by the owner as the ack
	// that every push is buffered — the durability point the
	// coordinator's commit relies on.
	FramePartDone FrameType = 9
	// FrameRunReceipt replaces FrameRun on the worker→coordinator stream
	// in w2w mode: the run's coordinates and byte count, without the
	// bytes (those went to the owner).
	FrameRunReceipt FrameType = 10
	// FrameReduce asks the owning worker to run one reduce attempt over
	// its buffered runs: job ID, spec, partition, and the committed
	// (task, attempt) list.
	FrameReduce FrameType = 11
	// FrameReduceDone answers FrameReduce: either the merged (and
	// combined) key groups, or the list of committed runs the owner is
	// missing and needs refilled.
	FrameReduceDone FrameType = 12
	// FrameJobDone tells a worker the job is over: drop its buffered
	// runs and close its peer connections. No reply.
	FrameJobDone FrameType = 13
	// FrameJobSubmit asks a serve-mode daemon to run one query job for a
	// tenant: tenant, query ID, dataset name, and the tail-mode knobs.
	FrameJobSubmit FrameType = 14
	// FrameJobAccept answers a submit immediately with the admission
	// verdict: the assigned job ID and queue position, or a rejection
	// reason (queue full, unknown query, over budget).
	FrameJobAccept FrameType = 15
	// FrameJobUpdate streams one refreshed result for a tail job: the
	// update sequence number, result digest, and fold provenance.
	FrameJobUpdate FrameType = 16
	// FrameJobResult closes a job: the final digest and result count, or
	// the job error, plus cache-hit/mapped-segment provenance.
	FrameJobResult FrameType = 17
	// FrameJobCancel asks the service to cancel a previously accepted
	// job (client→server); the job still settles with a FrameJobResult.
	FrameJobCancel FrameType = 18

	frameTypeMax = FrameJobCancel
)

// Frame is one decoded protocol frame.
type Frame struct {
	Type    FrameType
	Payload []byte
}

// AppendFrame appends the wire form of one frame to dst:
//
//	[1B type][uvarint payload length][payload]
func AppendFrame(dst []byte, t FrameType, payload []byte) []byte {
	dst = append(dst, byte(t))
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// DecodeFrame decodes one frame from the head of buf, returning the
// frame and the remaining bytes. It is a pure function over the buffer
// — the fuzz target — and must never panic: truncation anywhere, an
// unknown type, or an oversized length all return an error wrapping
// ErrFrame. The returned payload aliases buf.
func DecodeFrame(buf []byte) (Frame, []byte, error) {
	if len(buf) == 0 {
		return Frame{}, nil, fmt.Errorf("%w: empty buffer", ErrFrame)
	}
	t := FrameType(buf[0])
	if t == 0 || t > frameTypeMax {
		return Frame{}, nil, fmt.Errorf("%w: unknown frame type 0x%02x", ErrFrame, buf[0])
	}
	n, sz := binary.Uvarint(buf[1:])
	if sz <= 0 {
		return Frame{}, nil, fmt.Errorf("%w: bad payload length", ErrFrame)
	}
	if n > maxFrameLen {
		return Frame{}, nil, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrFrame, n, maxFrameLen)
	}
	rest := buf[1+sz:]
	if uint64(len(rest)) < n {
		return Frame{}, nil, fmt.Errorf("%w: truncated payload (%d of %d bytes)", ErrFrame, len(rest), n)
	}
	return Frame{Type: t, Payload: rest[:n]}, rest[n:], nil
}

// frameReader reads frames off a stream, enforcing the same limits as
// DecodeFrame.
type frameReader struct {
	r *bufio.Reader
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// next reads one frame. io.EOF surfaces unchanged at a clean frame
// boundary; truncation mid-frame becomes io.ErrUnexpectedEOF.
func (fr *frameReader) next() (Frame, error) {
	tb, err := fr.r.ReadByte()
	if err != nil {
		return Frame{}, err
	}
	t := FrameType(tb)
	if t == 0 || t > frameTypeMax {
		return Frame{}, fmt.Errorf("%w: unknown frame type 0x%02x", ErrFrame, tb)
	}
	n, err := binary.ReadUvarint(fr.r)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, fmt.Errorf("%w: reading payload length: %v", ErrFrame, err)
	}
	if n > maxFrameLen {
		return Frame{}, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrFrame, n, maxFrameLen)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, fmt.Errorf("%w: truncated payload: %v", ErrFrame, err)
	}
	return Frame{Type: t, Payload: payload}, nil
}

// frameWriter writes frames to a stream, flushing after every frame so
// the peer never waits on a partially buffered message.
type frameWriter struct {
	w   *bufio.Writer
	buf []byte
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{w: bufio.NewWriterSize(w, 64<<10)}
}

func (fw *frameWriter) write(t FrameType, payload []byte) error {
	fw.buf = AppendFrame(fw.buf[:0], t, payload)
	if _, err := fw.w.Write(fw.buf); err != nil {
		return err
	}
	return fw.w.Flush()
}
