package cluster

import (
	"fmt"
	"sync"

	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// The job registry maps a JobSpec.Query key to a builder for the job's
// map side. User MapFuncs are closures and cannot cross the socket, so
// coordinator and worker must agree out of band on what a job name
// means: both processes link the same registrations (internal/queries
// registers every query's SYMPLE mapper), and the assignment carries
// only the key plus the option knobs. cluster cannot import queries —
// queries imports cluster — which is why registration is inverted
// through this table.

// MapBuilder constructs the map side of a job for the given spec.
// trace receives the worker-side spans (map parse/exec chunks) that
// ship back to the coordinator; it may be nil.
type MapBuilder func(spec JobSpec, trace *obs.Trace) (mapreduce.MapFunc, error)

// GroupCombiner folds one merged key group on the reduce owner before
// the group crosses back to the coordinator — for SYMPLE jobs,
// composing the group's summary bundles into one (ApplyAll ∘ ComposeAll
// = ApplyAll, §4.2), which is what shrinks the reduce reply to KBs. The
// rows slice and its values are only valid for the call; the returned
// rows must not alias them unless they are the input rows unchanged
// (the allowed "cannot combine, pass through" fallback).
type GroupCombiner func(key string, rows []mapreduce.Shuffled) ([]mapreduce.Shuffled, error)

// CombinerBuilder constructs a job's reduce-side group combiner.
type CombinerBuilder func(spec JobSpec, trace *obs.Trace) (GroupCombiner, error)

var (
	regMu        sync.RWMutex
	regJobs      = map[string]MapBuilder{}
	regCombiners = map[string]CombinerBuilder{}
)

// RegisterJob registers the map-side builder for a query key.
// Re-registering a key overwrites it (registration happens wherever
// the typed query is constructed, which may run more than once); all
// registrations for a key must be behaviorally identical.
func RegisterJob(query string, b MapBuilder) {
	regMu.Lock()
	regJobs[query] = b
	regMu.Unlock()
}

// RegisterJobCombiner registers the reduce-side group combiner for a
// query key. Optional: a job without one reduces worker-resident but
// ships every merged group row back uncombined.
func RegisterJobCombiner(query string, b CombinerBuilder) {
	regMu.Lock()
	regCombiners[query] = b
	regMu.Unlock()
}

// lookupJob resolves a registered builder.
func lookupJob(query string) (MapBuilder, error) {
	regMu.RLock()
	b, ok := regJobs[query]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cluster: no job registered for query %q (did the worker link the registrations?)", query)
	}
	return b, nil
}

// lookupCombiner resolves a registered combiner builder; nil when the
// query has none.
func lookupCombiner(query string) CombinerBuilder {
	regMu.RLock()
	defer regMu.RUnlock()
	return regCombiners[query]
}
