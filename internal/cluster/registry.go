package cluster

import (
	"fmt"
	"sync"

	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// The job registry maps a JobSpec.Query key to a builder for the job's
// map side. User MapFuncs are closures and cannot cross the socket, so
// coordinator and worker must agree out of band on what a job name
// means: both processes link the same registrations (internal/queries
// registers every query's SYMPLE mapper), and the assignment carries
// only the key plus the option knobs. cluster cannot import queries —
// queries imports cluster — which is why registration is inverted
// through this table.

// MapBuilder constructs the map side of a job for the given spec.
// trace receives the worker-side spans (map parse/exec chunks) that
// ship back to the coordinator; it may be nil.
type MapBuilder func(spec JobSpec, trace *obs.Trace) (mapreduce.MapFunc, error)

var (
	regMu   sync.RWMutex
	regJobs = map[string]MapBuilder{}
)

// RegisterJob registers the map-side builder for a query key.
// Re-registering a key overwrites it (registration happens wherever
// the typed query is constructed, which may run more than once); all
// registrations for a key must be behaviorally identical.
func RegisterJob(query string, b MapBuilder) {
	regMu.Lock()
	regJobs[query] = b
	regMu.Unlock()
}

// lookupJob resolves a registered builder.
func lookupJob(query string) (MapBuilder, error) {
	regMu.RLock()
	b, ok := regJobs[query]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cluster: no job registered for query %q (did the worker link the registrations?)", query)
	}
	return b, nil
}
