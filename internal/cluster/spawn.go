package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Spawning local worker subprocesses: cmd/symple -workers N starts N
// copies of the worker binary, each announcing its listen address on
// stdout, and holds their stdin pipes open — closing the pipe (or the
// parent dying) is the shutdown signal. The failure modes here are the
// ugly ones the streaming-sort fallback test taught us about: an empty
// PATH, a missing binary, or a worker that starts but never prints its
// banner must all surface as immediate, explanatory errors — never a
// silent hang waiting on a pipe that will stay empty forever.

// spawnBanner is the line prefix a worker prints on stdout once it is
// listening. WorkerMain writes it; SpawnWorker waits for it.
const spawnBanner = "SYMPLED LISTEN "

// DefaultSpawnTimeout bounds how long SpawnWorker waits for the banner.
const DefaultSpawnTimeout = 10 * time.Second

// SpawnOptions configures SpawnWorker.
type SpawnOptions struct {
	// Args are extra arguments passed to the worker binary.
	Args []string
	// Env, when non-nil, replaces the subprocess environment entirely
	// (like exec.Cmd.Env). The test harness uses this to flip the
	// spawned copy of the test binary into worker mode.
	Env []string
	// Timeout bounds the wait for the listen banner; 0 means
	// DefaultSpawnTimeout.
	Timeout time.Duration
}

// ResolveWorkerBinary locates the worker binary explicitly instead of
// leaning on exec.Command's implicit PATH search, so a missing binary
// or an empty PATH produces a clear error up front rather than a
// confusing late failure. Candidates, in order: the name as given when
// it contains a path separator, a sibling of the running executable,
// then $PATH.
func ResolveWorkerBinary(name string) (string, error) {
	if name == "" {
		return "", errors.New("cluster: worker binary name is empty")
	}
	if strings.ContainsRune(name, os.PathSeparator) {
		if _, err := os.Stat(name); err != nil {
			return "", fmt.Errorf("cluster: worker binary %q: %w", name, err)
		}
		return name, nil
	}
	if self, err := os.Executable(); err == nil {
		sib := filepath.Join(filepath.Dir(self), name)
		if st, err := os.Stat(sib); err == nil && !st.IsDir() {
			return sib, nil
		}
	}
	path, err := exec.LookPath(name)
	if err != nil {
		return "", fmt.Errorf("cluster: worker binary %q not found next to %s or on PATH "+
			"(build it with: go build ./cmd/sympled): %w", name, os.Args[0], err)
	}
	return path, nil
}

// SpawnedWorker is a worker subprocess this process started. It
// implements Endpoint: Connect dials the announced address, Close
// shuts the worker down (stdin EOF, then kill as a backstop).
type SpawnedWorker struct {
	dialEndpoint
	cmd   *exec.Cmd
	stdin io.WriteCloser

	once    sync.Once
	stopErr error
}

// Addr returns the worker's announced listen address.
func (s *SpawnedWorker) Addr() string { return s.addr }

// Close implements Endpoint: signal shutdown by closing stdin, then
// wait briefly and kill if the worker ignores the signal.
func (s *SpawnedWorker) Close() error {
	s.once.Do(func() {
		_ = s.stdin.Close()
		done := make(chan error, 1)
		go func() { done <- s.cmd.Wait() }()
		select {
		case err := <-done:
			// Exit after stdin EOF is the clean path; any exit code is
			// fine, we only care that it is gone.
			_ = err
		case <-time.After(5 * time.Second):
			_ = s.cmd.Process.Kill()
			s.stopErr = fmt.Errorf("cluster: worker %d ignored shutdown, killed", s.cmd.Process.Pid)
			<-done
		}
	})
	return s.stopErr
}

// SpawnWorker starts one worker subprocess from the resolved binary
// path and waits (bounded) for its listen banner. bin should come from
// ResolveWorkerBinary; passing a bare name that is not on PATH fails
// here immediately with exec's error rather than hanging.
func SpawnWorker(bin string, opts SpawnOptions) (*SpawnedWorker, error) {
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = DefaultSpawnTimeout
	}
	cmd := exec.Command(bin, opts.Args...)
	if opts.Env != nil {
		cmd.Env = opts.Env
	}
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("cluster: worker stdin pipe: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("cluster: worker stdout pipe: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("cluster: starting worker %q: %w", bin, err)
	}
	// Read lines until the banner, with a hard deadline: a worker that
	// exits early or wedges before listening must not hang the spawn.
	type banner struct {
		addr string
		err  error
	}
	ch := make(chan banner, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if addr, ok := strings.CutPrefix(line, spawnBanner); ok {
				ch <- banner{addr: strings.TrimSpace(addr)}
				// Keep draining stdout so the worker never blocks on a
				// full pipe.
				go func() { _, _ = io.Copy(io.Discard, stdout) }()
				return
			}
		}
		err := sc.Err()
		if err == nil {
			err = errors.New("worker exited before announcing a listen address")
		}
		ch <- banner{err: err}
	}()
	fail := func(err error) (*SpawnedWorker, error) {
		_ = stdin.Close()
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, err
	}
	select {
	case b := <-ch:
		if b.err != nil {
			return fail(fmt.Errorf("cluster: worker %q: %w", bin, b.err))
		}
		if b.addr == "" {
			return fail(fmt.Errorf("cluster: worker %q printed an empty listen address", bin))
		}
		return &SpawnedWorker{
			dialEndpoint: dialEndpoint{addr: b.addr},
			cmd:          cmd,
			stdin:        stdin,
		}, nil
	case <-time.After(timeout):
		return fail(fmt.Errorf("cluster: worker %q did not announce a listen address within %v", bin, timeout))
	}
}

// SpawnWorkers starts n workers of the same binary, tearing all of
// them down if any fails to come up. The returned endpoints are ready
// to hand to NewPool; the caller closes them (stopping the workers)
// after the last pool using them is closed.
func SpawnWorkers(bin string, n int, opts SpawnOptions) ([]Endpoint, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least one worker, got %d", n)
	}
	eps := make([]Endpoint, 0, n)
	for i := 0; i < n; i++ {
		w, err := SpawnWorker(bin, opts)
		if err != nil {
			for _, ep := range eps {
				_ = ep.Close()
			}
			return nil, err
		}
		eps = append(eps, w)
	}
	return eps, nil
}
