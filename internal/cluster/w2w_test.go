package cluster

import (
	"bytes"
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"repro/internal/mapreduce"
)

// Worker-to-worker topology unit tests: the pool as RemoteMapper +
// RemoteReducer over real loopback workers, exercised directly so the
// shuffle routing, segment cache, placement scoring, and chaos recovery
// paths are each pinned in isolation (the queries package runs the
// full-engine differentials).

// w2wSegments returns two fixed segments whose keys (first byte) span
// both partitions of testSpec: "a" x3, "b" x2, "c" x1.
func w2wSegments() []*mapreduce.Segment {
	return []*mapreduce.Segment{
		{ID: 0, Records: [][]byte{
			[]byte("alpha"), []byte("beta"), []byte("avocado"), []byte("banana")}},
		{ID: 1, Records: [][]byte{[]byte("cherry"), []byte("apricot")}},
	}
}

// runW2WJob maps every segment at the given attempt and reduces both
// partitions, returning groups keyed by partition.
func runW2WJob(t *testing.T, p *Pool, mapAttempt, reduceAttempt int) map[int][]mapreduce.ReducedGroup {
	t.Helper()
	ctx := context.Background()
	commits := map[int][]mapreduce.Run{}
	for task, seg := range w2wSegments() {
		out, err := p.RunMap(ctx, task, mapAttempt, seg)
		if err != nil {
			t.Fatalf("map task %d: %v", task, err)
		}
		for _, r := range out.Runs {
			if r.Seg != nil {
				t.Fatalf("w2w map returned run bytes, want receipts only: %+v", r)
			}
			if r.Bytes <= 0 {
				t.Fatalf("receipt without byte count: %+v", r)
			}
			commits[r.Part] = append(commits[r.Part], r)
		}
	}
	groups := map[int][]mapreduce.ReducedGroup{}
	for part := 0; part < 2; part++ {
		out, err := p.RunReduce(ctx, part, reduceAttempt, commits[part])
		if err != nil {
			t.Fatalf("reduce part %d: %v", part, err)
		}
		if want := part % 2; out.Worker != want {
			t.Errorf("part %d reduced on worker %d, want owner %d", part, out.Worker, want)
		}
		groups[part] = out.Groups
	}
	return groups
}

// checkW2WGroups asserts the reduced groups carry exactly the six
// emitted rows under keys a/b/c, each group sorted and intact.
func checkW2WGroups(t *testing.T, groups map[int][]mapreduce.ReducedGroup) {
	t.Helper()
	rowsByKey := map[string]int{}
	var rows int
	for part, gs := range groups {
		var prev string
		for i, g := range gs {
			if i > 0 && g.Key <= prev {
				t.Errorf("part %d keys out of order: %q after %q", part, g.Key, prev)
			}
			prev = g.Key
			rowsByKey[g.Key] += len(g.Rows)
			rows += len(g.Rows)
		}
	}
	if rows != 6 {
		t.Fatalf("reduced %d rows across partitions, want 6: %v", rows, rowsByKey)
	}
	if rowsByKey["a"] != 3 || rowsByKey["b"] != 2 || rowsByKey["c"] != 1 {
		t.Fatalf("group sizes diverged: %v", rowsByKey)
	}
}

// TestW2WMapReduceRoundTrip: maps push runs to their partition owners,
// the coordinator sees only receipts, and worker-resident reduces
// return the merged groups. Closing the pool broadcasts job-done, so
// both workers drop their shuffle state.
func TestW2WMapReduceRoundTrip(t *testing.T) {
	checkGoroutineLeaks(t)
	ep0, w0 := startWorker(t)
	ep1, w1 := startWorker(t)
	p, err := NewPool(testSpec(t), []Endpoint{ep0, ep1}, WithW2W())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	checkW2WGroups(t, runW2WJob(t, p, 0, 0))
	if in := p.Stats().ShuffleIngressBytes; in <= 0 {
		t.Errorf("no shuffle-plane ingress recorded (%d bytes)", in)
	}
	p.Close()
	deadline := time.Now().Add(5 * time.Second)
	for w0.Jobs()+w1.Jobs() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("job state leaked after Close: worker0=%d worker1=%d jobs", w0.Jobs(), w1.Jobs())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestW2WMatchesViaCoordinator: the worker-resident reduce produces the
// same groups, bytes included, as merging the via-coordinator runs
// locally — the transport-equivalence contract at the unit level.
func TestW2WMatchesViaCoordinator(t *testing.T) {
	checkGoroutineLeaks(t)
	ep0, _ := startWorker(t)
	ep1, _ := startWorker(t)
	spec := testSpec(t)
	via, err := NewPool(spec, []Endpoint{ep0, ep1})
	if err != nil {
		t.Fatal(err)
	}
	defer via.Close()
	runs := map[int][]mapreduce.Run{}
	for task, seg := range w2wSegments() {
		out, err := via.RunMap(context.Background(), task, 0, seg)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range out.Runs {
			runs[r.Part] = append(runs[r.Part], r)
		}
	}
	want := map[int][]mapreduce.ReducedGroup{}
	for part, rs := range runs {
		sort.Slice(rs, func(i, j int) bool { return rs[i].Task < rs[j].Task })
		err := mapreduce.MergeEncodedRuns(part, rs, nil, func(key string, group []mapreduce.Shuffled) error {
			g := mapreduce.ReducedGroup{Key: key}
			for _, r := range group {
				g.Rows = append(g.Rows, mapreduce.Shuffled{
					MapperID: r.MapperID, RecordID: r.RecordID,
					Value: append([]byte(nil), r.Value...)})
			}
			want[part] = append(want[part], g)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	w2w, err := NewPool(spec, []Endpoint{ep0, ep1}, WithW2W())
	if err != nil {
		t.Fatal(err)
	}
	defer w2w.Close()
	got := runW2WJob(t, w2w, 0, 0)
	for part := 0; part < 2; part++ {
		if len(got[part]) != len(want[part]) {
			t.Fatalf("part %d: %d groups via w2w, %d via coordinator", part, len(got[part]), len(want[part]))
		}
		for i, g := range got[part] {
			w := want[part][i]
			if g.Key != w.Key || len(g.Rows) != len(w.Rows) {
				t.Fatalf("part %d group %d diverged: %+v vs %+v", part, i, g, w)
			}
			for j, r := range g.Rows {
				wr := w.Rows[j]
				if r.MapperID != wr.MapperID || r.RecordID != wr.RecordID || !bytes.Equal(r.Value, wr.Value) {
					t.Fatalf("part %d group %q row %d diverged: %+v vs %+v", part, g.Key, j, r, wr)
				}
			}
		}
	}
}

// TestSpeculativePlacementAntiAffinity pins the acquire scoring: with
// both workers free, a task's next attempt lands on the worker the
// previous attempt did NOT use — anti-affinity outweighs the segment
// cache bonus — so speculation gets an independent machine.
func TestSpeculativePlacementAntiAffinity(t *testing.T) {
	checkGoroutineLeaks(t)
	ep0, _ := startWorker(t)
	ep1, _ := startWorker(t)
	p, err := NewPool(testSpec(t), []Endpoint{ep0, ep1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	seg := testSegment()
	for attempt := 0; attempt < 3; attempt++ {
		if _, err := p.RunMap(context.Background(), 0, attempt, seg); err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
	}
	pl := p.Placements()
	if len(pl) != 3 {
		t.Fatalf("%d placements recorded, want 3", len(pl))
	}
	for i := 1; i < len(pl); i++ {
		if pl[i].Addr == pl[i-1].Addr {
			t.Errorf("attempt %d placed on %s, same worker as attempt %d — anti-affinity not applied",
				pl[i].Attempt, pl[i].Addr, pl[i-1].Attempt)
		}
	}
}

// TestSegmentCacheDigestOnly: after a worker acknowledges an attempt
// over a segment, later attempts ship only the digest (egress collapses
// below the payload size); after the worker loses its cache, the
// need-segment reply gets exactly one payload re-ship and the attempt
// still succeeds.
func TestSegmentCacheDigestOnly(t *testing.T) {
	checkGoroutineLeaks(t)
	ep, w := startWorker(t)
	p, err := NewPool(testSpec(t), []Endpoint{ep})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	big := make([]byte, 64<<10)
	for i := range big {
		big[i] = byte('a' + i%4)
	}
	seg := &mapreduce.Segment{ID: 7, Records: [][]byte{big}}
	payload := int64(len(big))

	egress := func() int64 { return p.Stats().ConnEgressBytes }
	e0 := egress()
	if _, err := p.RunMap(context.Background(), 0, 0, seg); err != nil {
		t.Fatal(err)
	}
	if d := egress() - e0; d < payload {
		t.Fatalf("first attempt shipped %d bytes, expected the %d-byte payload", d, payload)
	}
	if n := w.CachedSegments(); n != 1 {
		t.Fatalf("worker caches %d segments, want 1", n)
	}

	e1 := egress()
	if _, err := p.RunMap(context.Background(), 0, 1, seg); err != nil {
		t.Fatal(err)
	}
	if d := egress() - e1; d >= payload {
		t.Fatalf("cached attempt shipped %d bytes — digest-only path not taken", d)
	}

	w.DropSegmentCache()
	e2 := egress()
	if _, err := p.RunMap(context.Background(), 0, 2, seg); err != nil {
		t.Fatalf("attempt after cache loss: %v", err)
	}
	if d := egress() - e2; d < payload {
		t.Fatalf("post-cache-loss attempt shipped %d bytes — need-segment re-ship did not happen", d)
	}
	if n := w.CachedSegments(); n != 1 {
		t.Fatalf("worker caches %d segments after re-ship, want 1", n)
	}
}

// TestW2WReduceChaosRefillsDroppedState: a chaos-killed reduce owner
// (state dropped, connection torn down) fails that attempt; the retry
// finds the runs missing, the coordinator refills them from retained
// segments, and the reduce completes with the right groups.
func TestW2WReduceChaosRefillsDroppedState(t *testing.T) {
	checkGoroutineLeaks(t)
	ep0, _ := startWorker(t)
	ep1, _ := startWorker(t)
	// Rate 1 with maxAttempts 2: reduce attempt 0 draws the state drop,
	// attempt 1 (final) is spared by construction.
	plan := NewChaosPlan(5, 2).WithRate(1)
	p, err := NewPool(testSpec(t), []Endpoint{ep0, ep1}, WithW2W(), WithChaos(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()
	commits := map[int][]mapreduce.Run{}
	for task, seg := range w2wSegments() {
		// Attempt 1 is each map task's final attempt: spared, so the push
		// succeeds and the pool retains the segment for refills.
		out, err := p.RunMap(ctx, task, 1, seg)
		if err != nil {
			t.Fatalf("map task %d: %v", task, err)
		}
		for _, r := range out.Runs {
			commits[r.Part] = append(commits[r.Part], r)
		}
	}
	groups := map[int][]mapreduce.ReducedGroup{}
	for part := 0; part < 2; part++ {
		if _, err := p.RunReduce(ctx, part, 0, commits[part]); err == nil {
			t.Fatalf("part %d: chaos-dropped reduce attempt succeeded", part)
		}
		out, err := p.RunReduce(ctx, part, 1, commits[part])
		if err != nil {
			t.Fatalf("part %d retry (with refill) failed: %v", part, err)
		}
		groups[part] = out.Groups
	}
	checkW2WGroups(t, groups)
	if plan.Injected() < 2 {
		t.Errorf("only %d chaos injections recorded, want the 2 reduce drops", plan.Injected())
	}
}

// TestW2WReduceContextCancellation: a cancelled context unblocks
// RunReduce even when the owner never answers.
func TestW2WReduceContextCancellation(t *testing.T) {
	checkGoroutineLeaks(t)
	p, err := NewPool(testSpec(t), []Endpoint{silentWorker(t)}, WithW2W())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = p.RunReduce(ctx, 0, 0, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("cancellation took %v — the reduce read did not unblock", d)
	}
}

// TestW2WReduceRequiresTopology: RunReduce on a via-coordinator pool is
// a configuration error, reported as such.
func TestW2WReduceRequiresTopology(t *testing.T) {
	checkGoroutineLeaks(t)
	ep, _ := startWorker(t)
	p, err := NewPool(testSpec(t), []Endpoint{ep})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.RunReduce(context.Background(), 0, 0, nil); err == nil {
		t.Fatal("RunReduce succeeded without WithW2W")
	}
}

// TestChaosReducePlanDeterminism extends the chaos-plan contract to the
// reduce stream: pure in (part, attempt), final attempts spared,
// independent of the map-side schedule, nil-safe.
func TestChaosReducePlanDeterminism(t *testing.T) {
	plan := NewChaosPlan(42, 4)
	var injected int
	for part := 0; part < 50; part++ {
		for attempt := 0; attempt < 6; attempt++ {
			d1 := plan.decideReduce(part, attempt)
			d2 := plan.decideReduce(part, attempt)
			if d1 != d2 {
				t.Fatalf("decideReduce(%d,%d) not deterministic", part, attempt)
			}
			if attempt >= 3 && d1 {
				t.Fatalf("decideReduce(%d,%d) dropped state on a spared attempt", part, attempt)
			}
			if d1 {
				injected++
			}
		}
	}
	if injected == 0 {
		t.Error("rate 0.4 plan never dropped reduce state")
	}
	if (*ChaosPlan)(nil).decideReduce(0, 0) {
		t.Error("nil plan dropped reduce state")
	}
	if NewChaosPlan(42, 4).WithRate(0).decideReduce(0, 0) {
		t.Error("rate-0 plan dropped reduce state")
	}
}
