package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// composeSpanCap bounds per-group compose spans per job. Group counts
// track key cardinality, which for queries like G1 or B3 approaches
// record cardinality — a span per group there costs more than the reduce
// work it describes and alone pushes tracing past the ≤3% overhead
// budget. The first composeSpanCap groups get individual spans (enough
// to cover every group of the paper's low-cardinality regimes: B1=1,
// B2=50, R1=100); the rest fold into one overflow span whose attrs are
// the sums. The verifier's compose-count invariant survives the
// aggregation exactly: composes + applies == summaries is additive
// across groups.
const composeSpanCap = 128

// composeAgg caps per-group compose-span cardinality for one job. Groups
// past the cap cost four atomic adds and no clock reads.
type composeAgg struct {
	admitted      atomic.Int64
	groups        atomic.Int64
	summaries     atomic.Int64
	composes      atomic.Int64
	applies       atomic.Int64
	overflowStart atomic.Int64 // unix nanos of the first overflow group
}

// admit reports whether this group gets its own span. The first group
// past the cap stamps the overflow span's start time.
func (a *composeAgg) admit() bool {
	if a.admitted.Add(1) <= composeSpanCap {
		return true
	}
	if a.overflowStart.Load() == 0 {
		a.overflowStart.CompareAndSwap(0, time.Now().UnixNano())
	}
	return false
}

// addOverflow folds one past-cap group into the aggregate.
func (a *composeAgg) addOverflow(summaries, composes, applies int64) {
	a.groups.Add(1)
	a.summaries.Add(summaries)
	a.composes.Add(composes)
	a.applies.Add(applies)
}

// flush emits the overflow aggregate (when any group ran past the cap).
// Called once after the job completes: the span is parented to the job
// via Trace.CurrentJob (which outlives the job span's End) and closed at
// flush time, within the verifier's containment slack of the job end.
func (a *composeAgg) flush(trace *obs.Trace) {
	g := a.groups.Load()
	if g == 0 {
		return
	}
	end := time.Now().UnixNano()
	start := a.overflowStart.Load()
	if start == 0 || start > end {
		start = end
	}
	trace.EmitRaw(&obs.Span{
		Parent: trace.CurrentJob(),
		Kind:   obs.KindCompose,
		Name:   fmt.Sprintf("overflow+%d-groups", g),
		Start:  start,
		End:    end,
		Attrs: map[string]int64{
			obs.AttrGroups:    g,
			obs.AttrSummaries: a.summaries.Load(),
			obs.AttrComposes:  a.composes.Load(),
			obs.AttrApplies:   a.applies.Load(),
		},
	})
	a.groups.Store(0)
}

// emitComposeSpan emits one under-cap per-group compose span.
func emitComposeSpan(trace *obs.Trace, key string, start, end time.Time, summaries, composes, applies int64) {
	trace.EmitRaw(&obs.Span{
		Parent: trace.CurrentJob(),
		Kind:   obs.KindCompose,
		Name:   key,
		Start:  start.UnixNano(),
		End:    end.UnixNano(),
		Attrs: map[string]int64{
			obs.AttrSummaries: summaries,
			obs.AttrComposes:  composes,
			obs.AttrApplies:   applies,
		},
	})
}
