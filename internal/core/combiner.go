package core

import (
	"fmt"

	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/sym"
	"repro/internal/wire"
)

// Reduce-side group combining for worker-resident reduces. When a
// partition's owning worker merges its runs (cluster w2w topology),
// each key group holds one summary bundle per mapper chunk. The owner
// does the real reduce work in place: compose the group's summaries,
// apply the result to the query's initial state, and ship the concrete
// final state back as a single constant summary — legitimate because
// ApplyAll(sums) ≡ Apply(ComposeAll(sums)) (§4.2), and a concretized
// state admits any input (Concretize clears every field's constraint),
// so the coordinator-side apply over the constant bundle reproduces
// the sequential semantics byte for byte. Shipping the applied state
// rather than the composed summary matters for reply size: a composed
// summary is still a function of the unknown initial state and keeps
// one path per feasible precondition, while the applied state has
// collapsed to the single path the real initial state selects.

// SympleCombiner builds the reduce-side group combiner for a query.
// The returned function matches cluster.GroupCombiner: it reduces a
// merged group's summary bundles to one constant-summary bundle, or
// passes the rows through unchanged when the apply fails — the
// coordinator-side reducer then sees exactly the via-coordinator bytes
// and surfaces the identical error. Correctness never depends on the
// combiner firing, only reply size does. The emitted combine spans
// carry the s≥2, composes==s−1 shape the trace verifier pins.
func SympleCombiner[S sym.State, E, R any](q *Query[S, E, R], trace *obs.Trace) (func(key string, rows []mapreduce.Shuffled) ([]mapreduce.Shuffled, error), error) {
	if err := validateQuery(q); err != nil {
		return nil, err
	}
	sc, err := sym.NewSchema(q.NewState)
	if err != nil {
		return nil, fmt.Errorf("core %q: %w", q.Name, err)
	}
	return func(key string, rows []mapreduce.Shuffled) ([]mapreduce.Shuffled, error) {
		if len(rows) == 0 {
			return rows, nil
		}
		sums, err := decodeSummaryBundles(sc, rows)
		if err != nil {
			return nil, fmt.Errorf("combining group %q: %w", key, err)
		}
		if len(sums) == 0 {
			return rows, nil
		}
		// Compose first when there is anything to fold: the balanced
		// tree is the owner-resident share of the reduce, and the span
		// is emitted only when composition succeeds — the same
		// convention as the mapper-side combiner (a fallback did no
		// combining, and a half-open span is never flushed).
		var final S
		var aerr error
		if len(sums) >= 2 {
			span := trace.Start(obs.KindCombine, "combine-reduce/"+key)
			if composed, n, cerr := sym.ComposeAllCounted(sums); cerr == nil {
				span.Attr(obs.AttrSummaries, int64(len(sums))).
					Attr(obs.AttrComposes, int64(n)).End()
				final, aerr = composed.Apply(q.NewState())
				composed.Release()
			} else {
				// ComposeAllCounted leaves its inputs intact on failure;
				// the sequential fold is the reduce that cannot fail to
				// compose (§3.6).
				final, aerr = sym.ApplyAll(q.NewState(), sums)
			}
		} else {
			final, aerr = sums[0].Apply(q.NewState())
		}
		for _, s := range sums {
			s.Release()
		}
		if aerr != nil {
			return rows, nil
		}
		e := wire.GetEncoder()
		e.Uvarint(1)
		sym.NewSummary(q.NewState, []S{final}).Encode(e)
		buf := make([]byte, e.Len())
		copy(buf, e.Bytes())
		wire.PutEncoder(e)
		// Row identity comes from the group's first row: the classic and
		// tree reducers ignore (MapperID, RecordID), and keeping the
		// minimum preserves the merge order's invariants for any future
		// reader that does look.
		return []mapreduce.Shuffled{{MapperID: rows[0].MapperID, RecordID: rows[0].RecordID, Value: buf}}, nil
	}, nil
}
