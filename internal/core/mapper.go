package core

import (
	"fmt"
	"sync"

	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/sym"
)

// SympleMapper builds the standalone map side of a SYMPLE query — the
// exact mapper RunSympleOpts wires into its in-process job — for use
// by a cluster worker. The worker executes assignments through this
// function and mapreduce.ExecuteMap, so the bytes it ships are the
// bytes the in-process engine would have produced for the same
// (task, segment) pair: groupby, symbolic execution, memoization and
// combining all behave identically, which is what the transport
// differential tests pin down.
//
// trace receives the worker-side spans (map parse/exec, spill encode)
// that ship back to the coordinator; it may be nil. The returned
// mapper owns private stats/mutex state, so one built mapper is safe
// for any number of sequential or concurrent attempts.
func SympleMapper[S sym.State, E, R any](q *Query[S, E, R], opt SympleOptions, trace *obs.Trace) (mapreduce.MapFunc, error) {
	if err := validateQuery(q); err != nil {
		return nil, err
	}
	sc, err := sym.NewSchema(q.NewState)
	if err != nil {
		return nil, fmt.Errorf("core %q: %w", q.Name, err)
	}
	var mu sync.Mutex
	stats := &SymStats{}
	return sympleMapFunc(q, sc, &mu, stats, opt, trace, nil), nil
}
