package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/sym"
	"repro/internal/wire"
)

// countState counts records per group — stage 2 of the chained plan.
type countState struct {
	N sym.SymInt
}

func (s *countState) Fields() []sym.Value { return []sym.Value{&s.N} }

func countQuery() *Query[*countState, struct{}, int64] {
	return &Query[*countState, struct{}, int64]{
		Name: "count",
		GroupBy: func(rec []byte) (string, struct{}, bool) {
			return string(rec), struct{}{}, true
		},
		NewState:    func() *countState { return &countState{N: sym.NewSymInt(0)} },
		Update:      func(_ *sym.Ctx, s *countState, _ struct{}) { s.N.Inc() },
		Result:      func(_ string, s *countState) int64 { return s.N.Get() },
		EncodeEvent: func(*wire.Encoder, struct{}) {},
		DecodeEvent: func(d *wire.Decoder) (struct{}, error) { return struct{}{}, d.Err() },
	}
}

// TestTwoStagePlan chains session extraction (stage 1, the order-
// sensitive SymPred UDA) into a session-length histogram (stage 2),
// both stages under symbolic parallelism, and checks the end-to-end
// result against running both stages sequentially.
func TestTwoStagePlan(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	lines := make([]string, 600)
	ts := map[string]int64{}
	for i := range lines {
		k := fmt.Sprintf("u%d", r.Intn(10))
		ts[k] += int64(r.Intn(180))
		lines[i] = fmt.Sprintf("%s\t%d", k, ts[k])
	}
	input := makeSegments(lines, 6)

	runPlan := func(symbolic bool) (map[string]int64, error) {
		s1 := sessionQuery()
		var out1 *Output[[]int64]
		var err error
		if symbolic {
			out1, err = RunSymple(s1, input, mapreduce.Config{NumReducers: 3})
		} else {
			out1, err = RunSequential(s1, input)
		}
		if err != nil {
			return nil, err
		}
		// Stage boundary: one record per session, keyed by its length.
		mid := ResultSegments(out1, func(_ string, sessions []int64) [][]byte {
			var recs [][]byte
			for _, l := range sessions {
				recs = append(recs, []byte(fmt.Sprintf("len%d", l)))
			}
			return recs
		}, 4)
		s2 := countQuery()
		var out2 *Output[int64]
		if symbolic {
			out2, err = RunSymple(s2, mid, mapreduce.Config{NumReducers: 2})
		} else {
			out2, err = RunSequential(s2, mid)
		}
		if err != nil {
			return nil, err
		}
		return out2.Results, nil
	}

	want, err := runPlan(false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runPlan(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("empty histogram")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("two-stage plans differ:\nsequential: %v\nsymbolic:   %v", want, got)
	}
}

func TestResultSegmentsShape(t *testing.T) {
	out := &Output[int64]{Results: map[string]int64{"b": 2, "a": 1, "c": 3}}
	segs := ResultSegments(out, func(key string, v int64) [][]byte {
		return [][]byte{[]byte(fmt.Sprintf("%s=%d", key, v))}
	}, 2)
	if len(segs) != 2 {
		t.Fatalf("%d segments", len(segs))
	}
	var all []string
	for _, s := range segs {
		for _, r := range s.Records {
			all = append(all, string(r))
		}
	}
	// Sorted key order.
	want := []string{"a=1", "b=2", "c=3"}
	if !reflect.DeepEqual(all, want) {
		t.Fatalf("records %v, want %v", all, want)
	}

	// Empty output yields empty segments without panicking.
	empty := ResultSegments(&Output[int64]{Results: map[string]int64{}},
		func(string, int64) [][]byte { return nil }, 3)
	if len(empty) != 3 {
		t.Fatal("segment count wrong for empty output")
	}
}
