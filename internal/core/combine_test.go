package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/sym"
)

// TestCombinerAgrees: the mapper-side combiner must not change any
// result, under either reducer composition strategy, across randomized
// chunkings.
func TestCombinerAgrees(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	q := maxQuery()
	sq := sessionQuery()
	for _, numSegs := range []int{1, 3, 6} {
		lines := randMaxInput(r, 600, 5)
		segs := makeSegments(lines, numSegs)
		want, err := RunSequential(q, segs)
		if err != nil {
			t.Fatal(err)
		}
		for _, opt := range []SympleOptions{
			{Combine: true},
			{Combine: true, Tree: true},
		} {
			got, err := RunSympleOpts(q, segs, mapreduce.Config{NumReducers: 3}, opt)
			if err != nil {
				t.Fatalf("segs=%d opt=%+v: %v", numSegs, opt, err)
			}
			if !reflect.DeepEqual(got.Results, want.Results) {
				t.Errorf("segs=%d opt=%+v: results diverge from sequential", numSegs, opt)
			}
		}
		// A SymPred/vector query exercises summaries whose composition
		// can fail, covering the fall-back-to-uncombined path too.
		slines := make([]string, 400)
		ts := int64(0)
		for i := range slines {
			ts += int64(r.Intn(200))
			slines[i] = lines[i%len(lines)][:2] + "\t" + itoa(ts)
		}
		ssegs := makeSegments(slines, numSegs)
		swant, err := RunSequential(sq, ssegs)
		if err != nil {
			t.Fatal(err)
		}
		sgot, err := RunSympleOpts(sq, ssegs, mapreduce.Config{NumReducers: 2}, SympleOptions{Combine: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sgot.Results, swant.Results) {
			t.Errorf("segs=%d: session results diverge with combiner", numSegs)
		}
	}
}

// TestCombinerShrinksShuffle: when mappers restart and ship multi-summary
// bundles, the combiner should reduce shuffled summaries and bytes.
func TestCombinerShrinksShuffle(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	q := maxQuery()
	// Forced restarts make uncombined bundles carry many summaries per
	// group, giving the combiner something to compose.
	q.Options = sym.Options{MaxLivePaths: 1, DisableMerging: true, MaxRunsPerRecord: 64}
	lines := randMaxInput(r, 2000, 2)
	segs := makeSegments(lines, 4)
	plain, err := RunSymple(q, segs, mapreduce.Config{})
	if err != nil {
		t.Fatal(err)
	}
	combined, err := RunSympleOpts(q, segs, mapreduce.Config{}, SympleOptions{Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Results, combined.Results) {
		t.Fatal("combiner changed results")
	}
	if plain.Sym.Summaries <= combined.Sym.Summaries {
		t.Errorf("summaries shuffled: plain %d, combined %d — combiner did not combine",
			plain.Sym.Summaries, combined.Sym.Summaries)
	}
	if plain.Metrics.ShuffleBytes <= combined.Metrics.ShuffleBytes {
		t.Errorf("shuffle bytes: plain %d, combined %d — combiner did not shrink the shuffle",
			plain.Metrics.ShuffleBytes, combined.Metrics.ShuffleBytes)
	}
}
