package core

import (
	"repro/internal/mapreduce"
)

// ResultSegments converts a query's output into ordered input segments
// for a downstream query — the minimal form of the "more sophisticated
// query plans" the paper leaves as future work (§8): chaining
// groupby-aggregate stages, each stage free to run under symbolic
// parallelism.
//
// format renders one group's result as zero or more raw records for the
// next stage's GroupBy. Groups are emitted in sorted key order so the
// downstream input is deterministic; records spread across numSegments
// ordered segments.
func ResultSegments[R any](out *Output[R], format func(key string, r R) [][]byte, numSegments int) []*mapreduce.Segment {
	if numSegments <= 0 {
		numSegments = 1
	}
	var records [][]byte
	for _, key := range out.Keys() {
		records = append(records, format(key, out.Results[key])...)
	}
	segs := make([]*mapreduce.Segment, numSegments)
	for i := range segs {
		segs[i] = &mapreduce.Segment{ID: i}
	}
	if len(records) == 0 {
		return segs
	}
	for i, r := range records {
		s := segs[i*numSegments/len(records)]
		s.Records = append(s.Records, r)
	}
	return segs
}
