package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/sym"
	"repro/internal/wire"
)

// ---- Test query 1: max value per key (paper §3.1) ----

type maxState struct {
	Max sym.SymInt
}

func (s *maxState) Fields() []sym.Value { return []sym.Value{&s.Max} }

func maxQuery() *Query[*maxState, int64, int64] {
	return &Query[*maxState, int64, int64]{
		Name: "max",
		GroupBy: func(rec []byte) (string, int64, bool) {
			parts := strings.SplitN(string(rec), "\t", 2)
			if len(parts) != 2 {
				return "", 0, false
			}
			v, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				return "", 0, false
			}
			return parts[0], v, true
		},
		NewState: func() *maxState { return &maxState{Max: sym.NewSymInt(math.MinInt64)} },
		Update: func(ctx *sym.Ctx, s *maxState, e int64) {
			if s.Max.Lt(ctx, e) {
				s.Max.Set(e)
			}
		},
		Result:      func(_ string, s *maxState) int64 { return s.Max.Get() },
		EncodeEvent: func(e *wire.Encoder, v int64) { e.Varint(v) },
		DecodeEvent: func(d *wire.Decoder) (int64, error) { return d.Varint(), d.Err() },
	}
}

// ---- Test query 2: session counts with a SymPred (paper §4.4) ----

type sessState struct {
	Prev   sym.SymPred[int64]
	Count  sym.SymInt
	Counts sym.SymIntVector
}

func (s *sessState) Fields() []sym.Value {
	return []sym.Value{&s.Prev, &s.Count, &s.Counts}
}

func gap(prev, cur int64) bool { return cur-prev < 100 }

func sessionQuery() *Query[*sessState, int64, []int64] {
	return &Query[*sessState, int64, []int64]{
		Name: "sessions",
		GroupBy: func(rec []byte) (string, int64, bool) {
			parts := strings.SplitN(string(rec), "\t", 2)
			if len(parts) != 2 {
				return "", 0, false
			}
			v, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				return "", 0, false
			}
			return parts[0], v, true
		},
		NewState: func() *sessState {
			return &sessState{
				Prev:  sym.NewSymPred(gap, sym.Int64Codec(), math.MinInt64/2),
				Count: sym.NewSymInt(0),
			}
		},
		Update: func(ctx *sym.Ctx, s *sessState, ts int64) {
			if s.Prev.EvalPred(ctx, ts) {
				s.Count.Inc()
			} else {
				s.Counts.PushInt(&s.Count)
				s.Count.Set(1)
			}
			s.Prev.SetValue(ts)
		},
		Result: func(_ string, s *sessState) []int64 {
			out := append([]int64(nil), s.Counts.Elems()...)
			return append(out, s.Count.Get())
		},
		EncodeEvent: func(e *wire.Encoder, v int64) { e.Varint(v) },
		DecodeEvent: func(d *wire.Decoder) (int64, error) { return d.Varint(), d.Err() },
	}
}

// makeSegments builds tab-separated key\tvalue records spread over
// numSegments ordered segments.
func makeSegments(lines []string, numSegments int) []*mapreduce.Segment {
	segs := make([]*mapreduce.Segment, numSegments)
	for i := range segs {
		segs[i] = &mapreduce.Segment{ID: i}
	}
	for i, l := range lines {
		s := segs[i*numSegments/len(lines)]
		s.Records = append(s.Records, []byte(l))
	}
	return segs
}

func randMaxInput(r *rand.Rand, n, keys int) []string {
	lines := make([]string, n)
	for i := range lines {
		lines[i] = fmt.Sprintf("k%d\t%d", r.Intn(keys), r.Intn(10000)-5000)
	}
	return lines
}

// TestEnginesAgreeMax: the three engines must produce identical results.
func TestEnginesAgreeMax(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	q := maxQuery()
	for _, numSegs := range []int{1, 2, 4, 9} {
		lines := randMaxInput(r, 500, 7)
		segs := makeSegments(lines, numSegs)
		seq, err := RunSequential(q, segs)
		if err != nil {
			t.Fatal(err)
		}
		base, err := RunBaseline(q, segs, mapreduce.Config{NumReducers: 3})
		if err != nil {
			t.Fatal(err)
		}
		symp, err := RunSymple(q, segs, mapreduce.Config{NumReducers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.Results, base.Results) {
			t.Fatalf("segs=%d: baseline differs from sequential", numSegs)
		}
		if !reflect.DeepEqual(seq.Results, symp.Results) {
			t.Fatalf("segs=%d: symple differs from sequential\nseq:  %v\nsymp: %v",
				numSegs, seq.Results, symp.Results)
		}
	}
}

// TestEnginesAgreeSessions: order-sensitive UDA with SymPred and a
// symbolic vector across many chunkings.
func TestEnginesAgreeSessions(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	q := sessionQuery()
	for trial := 0; trial < 20; trial++ {
		n := 50 + r.Intn(200)
		lines := make([]string, n)
		ts := make(map[string]int64)
		for i := range lines {
			k := fmt.Sprintf("u%d", r.Intn(4))
			ts[k] += int64(r.Intn(200)) // sometimes within session, sometimes not
			lines[i] = fmt.Sprintf("%s\t%d", k, ts[k])
		}
		segs := makeSegments(lines, 1+r.Intn(6))
		seq, err := RunSequential(q, segs)
		if err != nil {
			t.Fatal(err)
		}
		symp, err := RunSymple(q, segs, mapreduce.Config{NumReducers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.Results, symp.Results) {
			t.Fatalf("trial %d: symple differs\nseq:  %v\nsymp: %v",
				trial, seq.Results, symp.Results)
		}
	}
}

// TestSympleShrinksShuffle: with few groups and many records per group,
// the symbolic shuffle must be far smaller than the baseline's — the
// effect behind Figures 6 and 8.
func TestSympleShrinksShuffle(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	q := maxQuery()
	lines := randMaxInput(r, 20000, 3)
	segs := makeSegments(lines, 8)
	base, err := RunBaseline(q, segs, mapreduce.Config{NumReducers: 2})
	if err != nil {
		t.Fatal(err)
	}
	symp, err := RunSymple(q, segs, mapreduce.Config{NumReducers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if symp.Metrics.ShuffleBytes*50 > base.Metrics.ShuffleBytes {
		t.Fatalf("shuffle reduction too small: baseline %d, symple %d",
			base.Metrics.ShuffleBytes, symp.Metrics.ShuffleBytes)
	}
	if symp.Metrics.ShuffleRecords != 8*3 {
		t.Fatalf("symple shuffled %d records, want one per (mapper, group) = 24",
			symp.Metrics.ShuffleRecords)
	}
}

// TestSympleSingleGroup reproduces the B1 regime: one group, so groupby
// parallelism is zero and symbolic parallelism is the only parallelism.
func TestSympleSingleGroup(t *testing.T) {
	q := maxQuery()
	var lines []string
	for i := 0; i < 5000; i++ {
		lines = append(lines, fmt.Sprintf("only\t%d", (i*37)%1000))
	}
	segs := makeSegments(lines, 10)
	seq, err := RunSequential(q, segs)
	if err != nil {
		t.Fatal(err)
	}
	symp, err := RunSymple(q, segs, mapreduce.Config{NumReducers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Results, symp.Results) {
		t.Fatal("single-group results differ")
	}
	if symp.Metrics.ShuffleRecords != 10 {
		t.Fatalf("shuffled %d records, want 10 (one summary bundle per mapper)",
			symp.Metrics.ShuffleRecords)
	}
	if symp.Sym.Summaries < 10 {
		t.Fatalf("summaries = %d", symp.Sym.Summaries)
	}
}

// TestSympleWithRestarts forces the live-path cap to trigger mid-chunk
// and checks results still match (graceful degradation, paper §5.2).
func TestSympleWithRestarts(t *testing.T) {
	q := maxQuery()
	q.Options = sym.Options{MaxLivePaths: 1, DisableMerging: true, MaxRunsPerRecord: 64}
	var lines []string
	for i := 0; i < 300; i++ {
		lines = append(lines, fmt.Sprintf("k%d\t%d", i%3, i))
	}
	segs := makeSegments(lines, 4)
	seq, err := RunSequential(maxQuery(), segs)
	if err != nil {
		t.Fatal(err)
	}
	symp, err := RunSymple(q, segs, mapreduce.Config{NumReducers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Results, symp.Results) {
		t.Fatal("results differ under forced restarts")
	}
	if symp.Sym.Restarts == 0 {
		t.Fatal("expected restarts with MaxLivePaths=1")
	}
}

// TestFilteredRecordsDropped: GroupBy ok=false must drop records in all
// engines identically.
func TestFilteredRecordsDropped(t *testing.T) {
	q := maxQuery()
	lines := []string{"a\t5", "garbage", "a\t9", "b\tnotanumber", "b\t2"}
	segs := makeSegments(lines, 2)
	seq, err := RunSequential(q, segs)
	if err != nil {
		t.Fatal(err)
	}
	symp, err := RunSymple(q, segs, mapreduce.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Results, symp.Results) {
		t.Fatal("results differ with filtered records")
	}
	if seq.Results["a"] != 9 || seq.Results["b"] != 2 {
		t.Fatalf("results: %v", seq.Results)
	}
}

func TestOutputKeysSorted(t *testing.T) {
	o := &Output[int]{Results: map[string]int{"b": 1, "a": 2, "c": 3}}
	keys := o.Keys()
	if !reflect.DeepEqual(keys, []string{"a", "b", "c"}) {
		t.Fatalf("keys: %v", keys)
	}
}

// badState omits a field from Fields; every engine must reject it
// before running (the §5.3 verification).
type badState struct {
	A sym.SymInt
	B sym.SymInt
}

func (s *badState) Fields() []sym.Value { return []sym.Value{&s.A} }

func TestEnginesRejectInvalidState(t *testing.T) {
	q := &Query[*badState, int64, int64]{
		Name:     "bad",
		GroupBy:  func([]byte) (string, int64, bool) { return "k", 0, true },
		NewState: func() *badState { return &badState{A: sym.NewSymInt(0), B: sym.NewSymInt(0)} },
		Update:   func(*sym.Ctx, *badState, int64) {},
		Result:   func(string, *badState) int64 { return 0 },
	}
	segs := makeSegments([]string{"x\t1"}, 1)
	if _, err := RunSequential(q, segs); err == nil {
		t.Error("sequential accepted invalid state")
	}
	if _, err := RunSymple(q, segs, mapreduce.Config{}); err == nil {
		t.Error("symple accepted invalid state")
	}
	if _, err := RunSympleTree(q, segs, mapreduce.Config{}); err == nil {
		t.Error("symple-tree accepted invalid state")
	}
}

func TestEnginesRejectNilFuncs(t *testing.T) {
	q := &Query[*maxState, int64, int64]{Name: "nil"}
	if _, err := RunSequential(q, nil); err == nil {
		t.Error("accepted query with nil functions")
	}
}
