package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mapreduce"
)

// TestBaselineExternalSortAgrees runs the baseline engine with the
// Unix-sort shuffle (the paper's §6.2 local configuration) and checks
// result equivalence with the in-process shuffle.
func TestBaselineExternalSortAgrees(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	q := maxQuery()
	lines := randMaxInput(r, 600, 9)
	segs := makeSegments(lines, 5)
	inproc, err := RunBaseline(q, segs, mapreduce.Config{NumReducers: 3})
	if err != nil {
		t.Fatal(err)
	}
	ext, err := RunBaseline(q, segs, mapreduce.Config{NumReducers: 3, ExternalSort: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inproc.Results, ext.Results) {
		t.Fatal("external-sort baseline differs")
	}
}

// TestExternalSortOrderSensitive runs the order-sensitive session UDA
// through the Unix-sort shuffle: the (key, mapperID, recordID) order
// must survive the text round trip exactly.
func TestExternalSortOrderSensitive(t *testing.T) {
	r := rand.New(rand.NewSource(89))
	q := sessionQuery()
	lines := make([]string, 400)
	ts := map[string]int64{}
	for i := range lines {
		k := []string{"ua", "ub", "uc"}[r.Intn(3)]
		ts[k] += int64(r.Intn(150))
		lines[i] = k + "\t" + itoa(ts[k])
	}
	segs := makeSegments(lines, 7)
	seq, err := RunSequential(q, segs)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := RunBaseline(q, segs, mapreduce.Config{NumReducers: 2, ExternalSort: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Results, ext.Results) {
		t.Fatalf("order lost through external sort:\nseq: %v\next: %v", seq.Results, ext.Results)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [24]byte
	i := len(b)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// TestSympleDeterministicAcrossParallelism: results must not depend on
// scheduling (parallelism level or reducer count).
func TestSympleDeterministicAcrossParallelism(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	q := maxQuery()
	lines := randMaxInput(r, 1000, 11)
	segs := makeSegments(lines, 8)
	var ref map[string]int64
	for _, conf := range []mapreduce.Config{
		{NumReducers: 1, Parallelism: 1},
		{NumReducers: 1, Parallelism: 8},
		{NumReducers: 7, Parallelism: 2},
		{NumReducers: 16, Parallelism: 16},
	} {
		out, err := RunSymple(q, segs, conf)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = out.Results
			continue
		}
		if !reflect.DeepEqual(ref, out.Results) {
			t.Fatalf("results depend on config %+v", conf)
		}
	}
}

// TestSequentialMetrics sanity-checks the synthetic metrics the
// sequential engine reports.
func TestSequentialMetrics(t *testing.T) {
	q := maxQuery()
	segs := makeSegments([]string{"a\t1", "a\t2", "b\t3"}, 2)
	out, err := RunSequential(q, segs)
	if err != nil {
		t.Fatal(err)
	}
	m := out.Metrics
	if m.InputRecords != 3 || m.Groups != 2 || m.InputBytes == 0 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.ShuffleBytes != 0 {
		t.Fatal("sequential engine has no shuffle")
	}
}
