package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/sym"
)

// Batch is the vectorized GroupBy output for one chunk of rows: the
// kept rows' events plus, per event, the index of its group key. Keys
// are interned in first-use order — the same order the scalar per-record
// loop discovers groups in, so the batch path emits bundles in an
// identical order and results stay byte-for-byte comparable.
type Batch[E any] struct {
	// Keys lists the distinct group keys in first-use order.
	Keys []string
	// KeyIdx holds, per kept row, the index of its key in Keys.
	KeyIdx []int32
	// Rows holds, per kept row, its segment-global row index (ascending).
	Rows []int32
	// Events holds the kept rows' events, in row order.
	Events []E
}

// Reset empties the batch, retaining capacity.
func (b *Batch[E]) Reset() {
	b.Keys = b.Keys[:0]
	b.KeyIdx = b.KeyIdx[:0]
	b.Rows = b.Rows[:0]
	b.Events = b.Events[:0]
}

// scalarBatch is the fallback vectorizer: the scalar GroupBy applied
// per record with map-based key interning. It is what makes GroupByBatch
// optional — every query runs under SympleOptions.Columnar whether or
// not it understands columns.
func scalarBatch[S sym.State, E, R any](q *Query[S, E, R], records [][]byte, lo, hi int, b *Batch[E]) {
	b.Reset()
	idx := make(map[string]int32, 64)
	for i := lo; i < hi; i++ {
		key, ev, ok := q.GroupBy(records[i])
		if !ok {
			continue
		}
		ki, seen := idx[key]
		if !seen {
			ki = int32(len(b.Keys))
			b.Keys = append(b.Keys, key)
			idx[key] = ki
		}
		b.KeyIdx = append(b.KeyIdx, ki)
		b.Rows = append(b.Rows, int32(i))
		b.Events = append(b.Events, ev)
	}
}

// batchExec bundles the executor and memo one chunk of the batch path
// runs with. Pooled per engine run (the sympleMapFunc closure) so the
// memo — whose cached transitions depend only on the schema and update
// function, never on the chunk — persists across chunks instead of
// being allocated, rebuilt, and torn down once per chunk, and the
// executor's identity caches, power ladder, and summary block cache
// stay warm. used marks an executor that has fed keys since its last
// Reset and so needs one before its next FeedBatch.
type batchExec[S sym.State, E any] struct {
	fast *sym.Executor[S, E]
	memo *sym.Memo[S, E]
	used bool
}

// batchExecPool hands batch executors to concurrently running chunks
// of one engine run. Zero value is ready; an empty pool means the
// chunk builds a fresh batchExec and parks it here when done.
type batchExecPool[S sym.State, E any] struct {
	mu   sync.Mutex
	free []*batchExec[S, E]
}

func (bp *batchExecPool[S, E]) get() *batchExec[S, E] {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if n := len(bp.free); n > 0 {
		be := bp.free[n-1]
		bp.free[n-1] = nil
		bp.free = bp.free[:n-1]
		return be
	}
	return nil
}

func (bp *batchExecPool[S, E]) put(be *batchExec[S, E]) {
	bp.mu.Lock()
	bp.free = append(bp.free, be)
	bp.mu.Unlock()
}

// addStatsDelta folds the growth of one executor's counters between two
// snapshots into the chunk totals — the pooled executor accumulates
// across chunks, so a chunk owns only its delta.
func addStatsDelta(dst *SymStats, cur, prev sym.Stats) {
	dst.Records += cur.Records - prev.Records
	dst.Runs += cur.Runs - prev.Runs
	dst.Merges += cur.Merges - prev.Merges
	dst.Restarts += cur.Restarts - prev.Restarts
	dst.MemoHits += cur.MemoHits - prev.MemoHits
	dst.MemoMisses += cur.MemoMisses - prev.MemoMisses
	dst.RunProbes += cur.RunProbes - prev.RunProbes
}

// symExecChunkBatch is the batched symExecChunk: same two passes, same
// spans, vectorized internals. Pass one fills a Batch — through the
// query's GroupByBatch over the segment's columns when possible, else
// through the scalar fallback — and counting-sorts the key-index vector
// into per-key contiguous event vectors. Pass two feeds each key's
// vector to the executor's batch API (FeedBatch), which folds runs of
// identical events through single transition probes and executes quiet
// stretches in place. ExecWall covers exactly pass two, as in the
// scalar chunk, so engine throughput stays comparable across paths.
func symExecChunkBatch[S sym.State, E, R any](q *Query[S, E, R], sc *sym.Schema[S], opt SympleOptions, pool *batchExecPool[S, E], seg *mapreduce.Segment, lo, hi int, trace *obs.Trace, mapperID, chunk int) chunkResult[S] {
	out := chunkResult[S]{}
	parseSpan := trace.Start(obs.KindMapParse, fmt.Sprintf("parse-%d.%d", mapperID, chunk)).
		Attr(obs.AttrTask, int64(mapperID)).Attr(obs.AttrChunk, int64(chunk)).
		Attr(obs.AttrRecords, int64(hi-lo))
	var b Batch[E]
	if seg.Columns == nil || q.GroupByBatch == nil || !q.GroupByBatch(seg.Columns, lo, hi, &b) {
		// A false return means the columns don't match the shape the
		// query compiled against (different plan, foreign dataset); the
		// batch content is then unspecified and rebuilt scalar.
		scalarBatch(q, seg.Records, lo, hi, &b)
	}
	out.order = b.Keys
	parseSpan.Attr(obs.AttrGroups, int64(len(b.Keys))).
		Attr(obs.AttrBatchRecords, int64(len(b.Events))).End()

	// Counting sort over the key-index vector: per-key contiguous event
	// runs without per-record map lookups or per-key slice growth.
	nk := len(b.Keys)
	offs := make([]int32, nk+1)
	for _, ki := range b.KeyIdx {
		offs[ki+1]++
	}
	for i := 1; i <= nk; i++ {
		offs[i] += offs[i-1]
	}
	events := make([]E, len(b.Events))
	last := make([]int64, nk)
	cur := make([]int32, nk)
	copy(cur, offs[:nk])
	for r, ki := range b.KeyIdx {
		events[cur[ki]] = b.Events[r]
		cur[ki]++
		last[ki] = int64(b.Rows[r]) // rows ascend, so the final write is the max
	}

	// lastRec falls straight out of the counting sort (rows ascend, so
	// the final write per key was the max); the summary arena and its
	// offsets are sized here so the timed pass below only appends.
	out.lastRec = last
	out.sums = make([]*sym.Summary[S], 0, nk)
	out.sumOff = make([]int32, 1, nk+1)

	start := time.Now()
	execSpan := trace.Start(obs.KindMapExec, fmt.Sprintf("exec-%d.%d", mapperID, chunk)).
		Attr(obs.AttrTask, int64(mapperID)).Attr(obs.AttrChunk, int64(chunk)).
		Attr(obs.AttrGroups, int64(len(b.Keys))).
		Attr(obs.AttrBatchRecords, int64(len(b.Events)))
	var be *batchExec[S, E]
	var fast *sym.Executor[S, E]
	var prev sym.Stats
	if !opt.SeedExecutor {
		if pool != nil {
			be = pool.get()
		}
		if be == nil {
			var memo *sym.Memo[S, E]
			if opt.MemoSize >= 0 {
				memo = sym.NewMemo[S, E](sc, opt.MemoSize)
			}
			be = &batchExec[S, E]{
				fast: sym.NewSchemaExecutor(sc, q.Update, q.Options).WithMemo(memo),
				memo: memo,
			}
		}
		fast = be.fast
		prev = fast.Stats()
	}
	// needReset tracks whether the executor has run a key since its last
	// reset; the all-identity fast finish below bypasses the executor's
	// paths entirely and so neither needs nor forces one. A pooled
	// executor arrives with the previous chunk's last key still live.
	needReset := be != nil && be.used
	for ki, key := range b.Keys {
		evs := events[offs[ki]:offs[ki+1]]
		var err error
		if opt.SeedExecutor {
			// The frozen seed engine predates the batch API; feed it
			// record-at-a-time, as symExecChunk does.
			x := sym.NewSeedExecutor(q.NewState, q.Update, q.Options)
			for _, ev := range evs {
				if err = x.Feed(ev); err != nil {
					break
				}
			}
			var sums []*sym.Summary[S]
			if err == nil {
				sums, err = x.Finish()
			}
			if err == nil {
				out.sums = append(out.sums, sums...)
				addStats(&out.stats, x.Stats())
			}
		} else {
			var done bool
			if out.sums, done = fast.TryFinishIdentity(evs, out.sums); !done {
				if needReset {
					fast.Reset()
				}
				needReset = true
				if err = fast.FeedBatch(evs); err == nil {
					out.sums, err = fast.FinishInto(out.sums)
				}
			}
		}
		if err != nil {
			// Don't repool: an errored executor's path state is
			// unspecified, and the whole run is aborting anyway.
			out.err = fmt.Errorf("key %q: %w", key, err)
			execSpan.Tag("outcome", "error").End()
			if be != nil && be.memo != nil {
				be.memo.Release()
			}
			return out
		}
		out.sumOff = append(out.sumOff, int32(len(out.sums)))
	}
	if fast != nil {
		addStatsDelta(&out.stats, fast.Stats(), prev)
	}
	out.stats.ExecWall = time.Since(start)
	execSpan.End()
	if be != nil {
		be.used = needReset
		if pool != nil {
			pool.put(be)
		} else if be.memo != nil {
			be.memo.Release()
		}
	}
	return out
}
