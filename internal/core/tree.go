package core

import (
	"fmt"
	"sync"

	"repro/internal/mapreduce"
	"repro/internal/sym"
	"repro/internal/wire"
)

// RunSympleTree is RunSymple with the reducer's composition restructured
// as a parallel binary tree (paper §3.6: function composition is
// associative, so rather than apply summaries to the running state one
// by one, adjacent summaries can be pre-composed pairwise in parallel
// and the single resulting summary applied once).
//
// For groups with many summaries this trades extra total work (summary
// composition is a cross product) for reduction-depth parallelism —
// worthwhile when a single group dominates a reducer, as in B1. The
// ablation benchmarks compare both strategies.
func RunSympleTree[S sym.State, E, R any](q *Query[S, E, R], segments []*mapreduce.Segment, conf mapreduce.Config) (*Output[R], error) {
	return RunSympleOpts(q, segments, conf, SympleOptions{Tree: true})
}

// sympleMapFunc is the shared SYMPLE mapper: groupby plus symbolic UDA
// execution per group, emitting one summary bundle per group. With
// combine set it acts as its own combiner, pre-composing the group's
// summary list into one summary before the shuffle (falling back to the
// uncombined list when composition fails).
func sympleMapFunc[S sym.State, E, R any](q *Query[S, E, R], mu *sync.Mutex, stats *SymStats, combine bool) mapreduce.MapFunc {
	return func(mapperID int, seg *mapreduce.Segment, emit mapreduce.Emit) error {
		execs := make(map[string]*sym.Executor[S, E])
		lastRec := make(map[string]int64)
		var order []string
		for i, rec := range seg.Records {
			key, ev, ok := q.GroupBy(rec)
			if !ok {
				continue
			}
			x := execs[key]
			if x == nil {
				x = sym.NewExecutor(q.NewState, q.Update, q.Options)
				execs[key] = x
				order = append(order, key)
			}
			if err := x.Feed(ev); err != nil {
				return fmt.Errorf("key %q: %w", key, err)
			}
			lastRec[key] = int64(i)
		}
		local := SymStats{}
		for _, key := range order {
			x := execs[key]
			sums, err := x.Finish()
			if err != nil {
				return fmt.Errorf("key %q: %w", key, err)
			}
			if combine && len(sums) > 1 {
				if composed, cerr := sym.ComposeAll(sums); cerr == nil {
					sums = []*sym.Summary[S]{composed}
				}
			}
			e := wire.NewEncoder(64)
			e.Uvarint(uint64(len(sums)))
			for _, s := range sums {
				s.Encode(e)
			}
			emit(key, lastRec[key], e.Bytes())
			st := x.Stats()
			local.Records += st.Records
			local.Runs += st.Runs
			local.Merges += st.Merges
			local.Restarts += st.Restarts
			local.Summaries += len(sums)
		}
		mu.Lock()
		stats.Records += local.Records
		stats.Runs += local.Runs
		stats.Merges += local.Merges
		stats.Restarts += local.Restarts
		stats.Summaries += local.Summaries
		mu.Unlock()
		return nil
	}
}

// treeReduceFunc composes a group's summaries as a parallel binary tree
// and applies the single result to the initial state.
func treeReduceFunc[S sym.State, E, R any](q *Query[S, E, R], mu *sync.Mutex, results map[string]R) mapreduce.ReduceFunc {
	return func(_ int, key string, values []mapreduce.Shuffled) error {
		sums, err := decodeSummaryBundles[S](q.NewState, values)
		if err != nil {
			return err
		}
		composed, err := composeTree(sums)
		if err != nil {
			return fmt.Errorf("key %q: %w", key, err)
		}
		final, err := composed.Apply(q.NewState())
		if err != nil {
			return fmt.Errorf("key %q: %w", key, err)
		}
		r := q.Result(key, final)
		mu.Lock()
		results[key] = r
		mu.Unlock()
		return nil
	}
}

// decodeSummaryBundles decodes the ordered summary bundles of one group.
func decodeSummaryBundles[S sym.State](newState func() S, values []mapreduce.Shuffled) ([]*sym.Summary[S], error) {
	var sums []*sym.Summary[S]
	for _, v := range values {
		d := wire.NewDecoder(v.Value)
		n := d.Length(d.Remaining() + 1)
		if err := d.Err(); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			s, err := sym.DecodeSummary(newState, d)
			if err != nil {
				return nil, err
			}
			sums = append(sums, s)
		}
	}
	return sums, nil
}

// composeTree reduces ordered summaries pairwise, level by level, with
// the pairs of each level composed concurrently.
func composeTree[S sym.State](sums []*sym.Summary[S]) (*sym.Summary[S], error) {
	if len(sums) == 0 {
		return nil, fmt.Errorf("core: no summaries to compose")
	}
	level := sums
	for len(level) > 1 {
		next := make([]*sym.Summary[S], (len(level)+1)/2)
		errs := make([]error, len(next))
		var wg sync.WaitGroup
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next[i/2] = level[i]
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				next[i/2], errs[i/2] = level[i].ComposeWith(level[i+1])
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		level = next
	}
	return level[0], nil
}
