package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/sym"
	"repro/internal/wire"
)

// RunSympleTree is RunSymple with the reducer's composition restructured
// as a parallel binary tree (paper §3.6: function composition is
// associative, so rather than apply summaries to the running state one
// by one, adjacent summaries can be pre-composed pairwise in parallel
// and the single resulting summary applied once).
//
// For groups with many summaries this trades extra total work (summary
// composition is a cross product) for reduction-depth parallelism —
// worthwhile when a single group dominates a reducer, as in B1. The
// ablation benchmarks compare both strategies.
func RunSympleTree[S sym.State, E, R any](q *Query[S, E, R], segments []*mapreduce.Segment, conf mapreduce.Config) (*Output[R], error) {
	return RunSympleOpts(q, segments, conf, SympleOptions{Tree: true})
}

// chunkResult is one sub-chunk's symbolic output: per-key ordered
// summary lists plus the work counters, produced by symExecChunk. The
// per-key data is order-aligned slices, not maps — the executors emit
// keys in a known order, so the timed execution pass appends instead of
// hashing, and the stitcher walks the arena by offset.
type chunkResult[S sym.State] struct {
	order []string
	// sums holds every key's summaries back to back; key i's summaries
	// are sums[sumOff[i]:sumOff[i+1]] (sumOff has len(order)+1 entries).
	sums   []*sym.Summary[S]
	sumOff []int32
	// lastRec holds, per key in order, the segment-global index of the
	// key's last record.
	lastRec []int64
	stats   SymStats
	err     error
}

// keySums returns key i's summary list (a sub-slice of the arena).
func (c *chunkResult[S]) keySums(i int) []*sym.Summary[S] {
	return c.sums[c.sumOff[i]:c.sumOff[i+1]]
}

// symExecChunk runs the symbolic per-key UDA loop over one contiguous
// slice of a segment's records. base is the slice's offset within the
// segment, so lastRec carries segment-global record indices and the §5.4
// (key, mapperID, recordID) order survives sub-chunking.
//
// The chunk runs in two passes. Pass one parses: GroupBy every record
// and batch the events per key, in record order. Pass two executes: one
// executor per key consumes its batch in a tight Feed loop. Batching
// keeps the per-record map lookups out of the symbolic hot loop and lets
// the execution pass be timed on its own (stats.ExecWall), so engine
// throughput can be compared net of the parse cost every engine shares.
func symExecChunk[S sym.State, E, R any](q *Query[S, E, R], sc *sym.Schema[S], opt SympleOptions, records [][]byte, base int, trace *obs.Trace, mapperID, chunk int) chunkResult[S] {
	out := chunkResult[S]{}
	type batch struct {
		events []E
		last   int64 // segment-global index of the key's last record
	}
	parseSpan := trace.Start(obs.KindMapParse, fmt.Sprintf("parse-%d.%d", mapperID, chunk)).
		Attr(obs.AttrTask, int64(mapperID)).Attr(obs.AttrChunk, int64(chunk)).
		Attr(obs.AttrRecords, int64(len(records)))
	batches := make(map[string]*batch)
	for i, rec := range records {
		key, ev, ok := q.GroupBy(rec)
		if !ok {
			continue
		}
		b := batches[key]
		if b == nil {
			b = &batch{}
			batches[key] = b
			out.order = append(out.order, key)
		}
		b.events = append(b.events, ev)
		b.last = int64(base + i)
	}
	parseSpan.Attr(obs.AttrGroups, int64(len(out.order))).End()
	out.sums = make([]*sym.Summary[S], 0, len(out.order))
	out.sumOff = make([]int32, 1, len(out.order)+1)
	out.lastRec = make([]int64, 0, len(out.order))

	// One memo serves every key of this chunk: transitions are built
	// from the fully symbolic state, so they are key-independent. The
	// memo is single-goroutine (each chunk owns its own); only the
	// schema pool is shared across chunks.
	var memo *sym.Memo[S, E]
	if !opt.SeedExecutor && opt.MemoSize >= 0 {
		memo = sym.NewMemo[S, E](sc, opt.MemoSize)
	}
	start := time.Now()
	execSpan := trace.Start(obs.KindMapExec, fmt.Sprintf("exec-%d.%d", mapperID, chunk)).
		Attr(obs.AttrTask, int64(mapperID)).Attr(obs.AttrChunk, int64(chunk)).
		Attr(obs.AttrGroups, int64(len(out.order)))
	// One resettable executor serves every key of the chunk (its Stats
	// accumulate across keys); the seed engine has no Reset and is
	// constructed per key, as the pre-optimization mapper did.
	var fast *sym.Executor[S, E]
	if !opt.SeedExecutor {
		fast = sym.NewSchemaExecutor(sc, q.Update, q.Options).WithMemo(memo)
	}
	for i, key := range out.order {
		b := batches[key]
		var err error
		if opt.SeedExecutor {
			x := sym.NewSeedExecutor(q.NewState, q.Update, q.Options)
			for _, ev := range b.events {
				if err = x.Feed(ev); err != nil {
					break
				}
			}
			var sums []*sym.Summary[S]
			if err == nil {
				sums, err = x.Finish()
			}
			if err == nil {
				out.sums = append(out.sums, sums...)
				addStats(&out.stats, x.Stats())
			}
		} else {
			if i > 0 {
				fast.Reset()
			}
			if err = fast.FeedAll(b.events); err == nil {
				out.sums, err = fast.FinishInto(out.sums)
			}
		}
		if err != nil {
			out.err = fmt.Errorf("key %q: %w", key, err)
			execSpan.Tag("outcome", "error").End()
			return out
		}
		out.sumOff = append(out.sumOff, int32(len(out.sums)))
		out.lastRec = append(out.lastRec, b.last)
	}
	if fast != nil {
		addStats(&out.stats, fast.Stats())
	}
	out.stats.ExecWall = time.Since(start)
	execSpan.End()
	if memo != nil {
		memo.Release()
	}
	return out
}

// addStats folds one executor's counters into the chunk totals.
func addStats(dst *SymStats, st sym.Stats) {
	dst.Records += st.Records
	dst.Runs += st.Runs
	dst.Merges += st.Merges
	dst.Restarts += st.Restarts
	dst.MemoHits += st.MemoHits
	dst.MemoMisses += st.MemoMisses
	dst.RunProbes += st.RunProbes
}

// splitChunks cuts n records into at most p contiguous chunks of
// near-equal size, returning the start offsets (ascending, first 0).
func splitChunks(n, p int) []int {
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	starts := make([]int, 0, p)
	for i := 0; i < p; i++ {
		starts = append(starts, i*n/p)
	}
	return starts
}

// sympleMapFunc is the shared SYMPLE mapper: groupby plus symbolic UDA
// execution per group, emitting one summary bundle per group. With
// opt.MapParallelism > 1 the segment is cut into contiguous sub-chunks
// executed on their own goroutines and stitched back per key in chunk
// order, so a single large segment no longer serializes one core. With
// opt.Combine it acts as its own combiner, pre-composing each group's
// summary list into one summary before the shuffle (falling back to the
// uncombined list when composition fails).
func sympleMapFunc[S sym.State, E, R any](q *Query[S, E, R], sc *sym.Schema[S], mu *sync.Mutex, stats *SymStats, opt SympleOptions, trace *obs.Trace, reg *obs.Registry) mapreduce.MapFunc {
	// One executor/memo pool for the whole engine run: memoized
	// transitions depend only on the schema and update function, so the
	// memo built by early chunks answers probes for every later chunk,
	// and reused executors keep identity caches and summary blocks warm.
	var pool *batchExecPool[S, E]
	if opt.Columnar && !opt.SeedExecutor {
		pool = &batchExecPool[S, E]{}
	}
	return func(mapperID int, seg *mapreduce.Segment, emit mapreduce.Emit) error {
		p := opt.MapParallelism
		if p < 1 {
			p = 1
		}
		starts := splitChunks(len(seg.Records), p)
		outs := make([]chunkResult[S], len(starts))
		runChunk := func(ci, start, end int) chunkResult[S] {
			if opt.Columnar {
				return symExecChunkBatch(q, sc, opt, pool, seg, start, end, trace, mapperID, ci)
			}
			return symExecChunk(q, sc, opt, seg.Records[start:end], start, trace, mapperID, ci)
		}
		if len(starts) == 1 {
			outs[0] = runChunk(0, 0, len(seg.Records))
		} else {
			var wg sync.WaitGroup
			for ci, start := range starts {
				end := len(seg.Records)
				if ci+1 < len(starts) {
					end = starts[ci+1]
				}
				wg.Add(1)
				go func(ci, start, end int) {
					defer wg.Done()
					outs[ci] = runChunk(ci, start, end)
				}(ci, start, end)
			}
			wg.Wait()
		}
		local := SymStats{}
		for ci := range outs {
			if err := outs[ci].err; err != nil {
				return err
			}
			local.Records += outs[ci].stats.Records
			local.Runs += outs[ci].stats.Runs
			local.Merges += outs[ci].stats.Merges
			local.Restarts += outs[ci].stats.Restarts
			local.MemoHits += outs[ci].stats.MemoHits
			local.MemoMisses += outs[ci].stats.MemoMisses
			local.RunProbes += outs[ci].stats.RunProbes
			local.ExecWall += outs[ci].stats.ExecWall
		}

		// Stitch: per key, concatenate the chunks' ordered summary lists
		// in chunk order — record order within the key, so composing the
		// bundle left-to-right reproduces the sequential semantics.
		var order []string
		keySums := make(map[string][]*sym.Summary[S])
		keyLast := make(map[string]int64)
		for ci := range outs {
			o := &outs[ci]
			for i, key := range o.order {
				if _, seen := keySums[key]; !seen {
					order = append(order, key)
				}
				keySums[key] = append(keySums[key], o.keySums(i)...)
				keyLast[key] = o.lastRec[i] // ascending ci → final value is the max
			}
		}

		// Observe into a task-local registry and merge once at task end:
		// the job registry's histogram mutex would otherwise be hammered
		// once per bundle by every mapper in parallel.
		var lreg *obs.Registry
		var sumBytes *obs.Histogram
		if reg != nil {
			lreg = obs.NewRegistry()
			sumBytes = lreg.Histogram(MetricSummaryBytes)
		}
		for _, key := range order {
			sums := keySums[key]
			if opt.Combine && len(sums) > 1 {
				// The combine span is emitted only when composition
				// succeeds: a fallback to the uncombined list did no
				// combining, and a half-open span is never flushed.
				span := trace.Start(obs.KindCombine, fmt.Sprintf("combine-%d/%s", mapperID, key)).
					Attr(obs.AttrTask, int64(mapperID))
				if composed, n, cerr := sym.ComposeAllCounted(sums); cerr == nil {
					span.Attr(obs.AttrSummaries, int64(len(sums))).
						Attr(obs.AttrComposes, int64(n)).End()
					for _, s := range sums {
						s.Release()
					}
					sums = []*sym.Summary[S]{composed}
				}
			}
			e := wire.GetEncoder()
			e.Uvarint(uint64(len(sums)))
			for _, s := range sums {
				s.Encode(e)
			}
			// The shuffle retains emitted values, so hand it an
			// exact-size copy and recycle the encoder buffer.
			buf := make([]byte, e.Len())
			copy(buf, e.Bytes())
			wire.PutEncoder(e)
			sumBytes.Observe(int64(len(buf)))
			emit(key, keyLast[key], buf)
			for _, s := range sums {
				s.Release()
			}
			local.Summaries += len(sums)
		}
		if reg != nil {
			lreg.Counter(MetricMemoHits).Add(int64(local.MemoHits))
			lreg.Counter(MetricMemoMisses).Add(int64(local.MemoMisses))
			if local.RunProbes > 0 {
				lreg.Counter(MetricMemoRunProbes).Add(int64(local.RunProbes))
			}
			lreg.MergeInto(reg)
		}
		mu.Lock()
		stats.Records += local.Records
		stats.Runs += local.Runs
		stats.Merges += local.Merges
		stats.Restarts += local.Restarts
		stats.Summaries += local.Summaries
		stats.MemoHits += local.MemoHits
		stats.MemoMisses += local.MemoMisses
		stats.RunProbes += local.RunProbes
		stats.ExecWall += local.ExecWall
		mu.Unlock()
		return nil
	}
}

// treeReduceFunc composes a group's summaries as a parallel binary tree
// and applies the single result to the initial state.
func treeReduceFunc[S sym.State, E, R any](q *Query[S, E, R], sc *sym.Schema[S], mu *sync.Mutex, results map[string]R, trace *obs.Trace, agg *composeAgg) mapreduce.ReduceFunc {
	return func(_ int, key string, values []mapreduce.Shuffled) error {
		sums, err := decodeSummaryBundles(sc, values)
		if err != nil {
			return err
		}
		if len(sums) == 0 {
			return fmt.Errorf("key %q: no summaries to compose", key)
		}
		// n summaries tree-compose with exactly n-1 pairwise compositions
		// and a single apply — the count the span carries is measured by
		// ComposeAllParallelCounted, not assumed, so the verifier's
		// compose-count invariant checks the tree actually did its job.
		var t0 time.Time
		timed := false
		if trace != nil {
			if timed = agg.admit(); timed {
				t0 = time.Now()
			}
		}
		composed, n, err := sym.ComposeAllParallelCounted(sums)
		if err != nil {
			return fmt.Errorf("key %q: %w", key, err)
		}
		final, err := composed.Apply(q.NewState())
		if err != nil {
			return fmt.Errorf("key %q: %w", key, err)
		}
		composed.Release()
		r := q.Result(key, final)
		if timed {
			emitComposeSpan(trace, key, t0, time.Now(), int64(len(sums)), int64(n), 1)
		} else if trace != nil {
			agg.addOverflow(int64(len(sums)), int64(n), 1)
		}
		mu.Lock()
		results[key] = r
		mu.Unlock()
		return nil
	}
}

// decodeSummaryBundles decodes the ordered summary bundles of one group
// into pooled containers of the run's schema. The caller owns the
// summaries and releases them once consumed.
func decodeSummaryBundles[S sym.State](sc *sym.Schema[S], values []mapreduce.Shuffled) ([]*sym.Summary[S], error) {
	var sums []*sym.Summary[S]
	var err error
	for _, v := range values {
		if sums, err = sc.DecodeSummaryBundle(sums, v.Value); err != nil {
			return nil, err
		}
	}
	return sums, nil
}

// The pairwise tree reduction itself lives in the sym package
// (sym.ComposeAllParallel), where StreamComposer and the combiner share
// it; this file only wires it into the reducer.
