package core

import (
	"fmt"
	"os"

	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// obsVerifyEnabled gates the self-verifying run mode: with OBS_VERIFY=1
// in the environment, every RunBaseline/RunSympleOpts call that was not
// given a trace gets an in-memory one, and after a successful run the
// trace must pass every obs.Verifier invariant and the registry its
// self-checks, or the run reports an error. The CI `traced` leg runs the
// full engine suite under this flag, so every query execution in every
// test doubles as an invariant check at zero test-writing cost.
var obsVerifyEnabled = os.Getenv("OBS_VERIFY") == "1"

// obsAutoVerify inspects conf and, when self-verification is on and the
// caller did not attach its own trace, wires an in-memory sink and
// registry into it. The returned function wraps the job's error: it
// passes real failures through untouched and otherwise replaces a nil
// error with any invariant violation found in the captured trace.
func obsAutoVerify(conf *mapreduce.Config) func(error) error {
	if !obsVerifyEnabled || conf.Trace != nil {
		return func(err error) error { return err }
	}
	sink := obs.NewMemSink()
	conf.Trace = obs.NewTrace(sink)
	if conf.Registry == nil {
		conf.Registry = obs.NewRegistry()
	}
	reg := conf.Registry
	return func(err error) error {
		if err != nil {
			return err
		}
		if verr := (obs.Verifier{}).Check(sink.Spans()); verr != nil {
			return fmt.Errorf("OBS_VERIFY trace: %w", verr)
		}
		if serr := reg.SelfCheck(); serr != nil {
			return fmt.Errorf("OBS_VERIFY registry: %w", serr)
		}
		return nil
	}
}
