package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/sym"
)

func TestTreeEngineAgreesMax(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	q := maxQuery()
	for _, numSegs := range []int{1, 2, 7, 16} {
		lines := randMaxInput(r, 800, 5)
		segs := makeSegments(lines, numSegs)
		seq, err := RunSequential(q, segs)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := RunSympleTree(q, segs, mapreduce.Config{NumReducers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.Results, tree.Results) {
			t.Fatalf("segs=%d: tree composition differs from sequential", numSegs)
		}
	}
}

func TestTreeEngineAgreesSessions(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	q := sessionQuery()
	lines := make([]string, 300)
	ts := map[string]int64{}
	for i := range lines {
		k := fmt.Sprintf("u%d", r.Intn(3))
		ts[k] += int64(r.Intn(200))
		lines[i] = fmt.Sprintf("%s\t%d", k, ts[k])
	}
	segs := makeSegments(lines, 9)
	seq, err := RunSequential(q, segs)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := RunSympleTree(q, segs, mapreduce.Config{NumReducers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Results, tree.Results) {
		t.Fatalf("tree differs:\nseq:  %v\ntree: %v", seq.Results, tree.Results)
	}
}

func TestTreeEngineWithRestarts(t *testing.T) {
	// Many summaries per group (cap 1 forces a restart per record):
	// the tree has real depth.
	q := maxQuery()
	q.Options = sym.Options{MaxLivePaths: 1, DisableMerging: true, MaxRunsPerRecord: 64}
	var lines []string
	for i := 0; i < 120; i++ {
		lines = append(lines, fmt.Sprintf("k\t%d", (i*31)%100))
	}
	segs := makeSegments(lines, 4)
	seq, err := RunSequential(maxQuery(), segs)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := RunSympleTree(q, segs, mapreduce.Config{NumReducers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Results, tree.Results) {
		t.Fatal("tree composition differs under restarts")
	}
	if tree.Sym.Restarts == 0 {
		t.Fatal("expected restarts")
	}
}

func TestComposeTreeOddCounts(t *testing.T) {
	// The tree reduction must handle odd level sizes (carry the last
	// summary).
	newState := func() *maxState { return &maxState{Max: sym.NewSymInt(0)} }
	update := func(ctx *sym.Ctx, s *maxState, e int64) {
		if s.Max.Lt(ctx, e) {
			s.Max.Set(e)
		}
	}
	for _, n := range []int{1, 2, 3, 5, 7, 8} {
		var sums []*sym.Summary[*maxState]
		for c := 0; c < n; c++ {
			x := sym.NewExecutor(newState, update, sym.DefaultOptions())
			if err := x.Feed(int64(c * 10)); err != nil {
				t.Fatal(err)
			}
			s, err := x.Finish()
			if err != nil {
				t.Fatal(err)
			}
			sums = append(sums, s...)
		}
		composed, err := sym.ComposeAllParallel(sums)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		out, err := composed.Apply(newState())
		if err != nil {
			t.Fatal(err)
		}
		if got, want := out.Max.Get(), int64((n-1)*10); got != want {
			t.Fatalf("n=%d: max %d, want %d", n, got, want)
		}
	}
	if _, err := sym.ComposeAllParallel[*maxState](nil); err == nil {
		t.Fatal("expected error for zero summaries")
	}
}
