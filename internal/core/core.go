// Package core is the SYMPLE runtime: it turns a groupby-aggregate query
// with a user-defined aggregation into MapReduce jobs (paper §1.2, §5.4).
//
// A Query bundles the user's GroupBy (parse a raw record, extract a key
// and an event), the UDA (initial state, Update, Result), and event
// serialization for the baseline engine. Three engines execute the same
// query:
//
//   - RunSequential: one pass, concrete UDA per group — the semantic
//     reference every other engine must match, and the "Sequential" bar
//     of the paper's Figure 4.
//   - RunBaseline: the paper's hand-optimized Hadoop baseline — GroupBy
//     in mappers (shuffling only the event fields the UDA uses), the UDA
//     running concretely in reducers.
//   - RunSymple: the paper's contribution — mappers also run the UDA
//     symbolically per group and shuffle compact symbolic summaries; the
//     reducer composes summaries in input order and applies Result.
//
// SYMPLE "lifts" the aggregation into mappers exactly like built-in
// associative aggregations, parallelizing per-group work and shrinking
// the shuffle — the effects measured across the paper's evaluation.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/obs"
	"repro/internal/sym"
	"repro/internal/wire"
)

// Registry metric names observed by the core engines, alongside the
// engine-level metrics in package mapreduce.
const (
	// MetricSummaryBytes is a histogram of encoded summary-bundle sizes
	// as shipped to the shuffle, one observation per (mapper, group).
	MetricSummaryBytes = "summary_bytes"
	// MetricMemoHits / MetricMemoMisses count records folded through the
	// record-transition cache vs records that required path exploration.
	MetricMemoHits   = "memo_hits"
	MetricMemoMisses = "memo_misses"
	// MetricMemoRunProbes counts runs of identical events the batch path
	// handled with a single transition probe (SympleOptions.Columnar).
	MetricMemoRunProbes = "memo_run_probes"
)

// Query is a groupby-aggregate query over raw input records.
type Query[S sym.State, E, R any] struct {
	// Name identifies the query (e.g. "G1").
	Name string

	// GroupBy parses one raw input record, returning the group key and
	// the event the UDA consumes. ok=false drops the record (filter).
	// Only fields the UDA needs should be propagated into E — the same
	// hand-optimization the paper applies to its baseline.
	GroupBy func(record []byte) (key string, event E, ok bool)

	// GroupByBatch, when set, vectorizes GroupBy over a columnar segment:
	// it fills out with the kept rows of [lo, hi) — key indexes, row
	// numbers and events — reading the typed columns directly and routing
	// ragged rows through the scalar GroupBy. It must keep exactly the
	// rows GroupBy keeps, produce identical keys and events, and intern
	// keys in first-use order. Returning false (columns don't match the
	// shape the query expects) makes the engine rebuild the batch with
	// the scalar GroupBy, so the field is purely an optimization; nil is
	// always valid.
	GroupByBatch func(cols *mapreduce.Columnar, lo, hi int, out *Batch[E]) bool

	// NewState returns the initial aggregation state.
	NewState func() S

	// Update advances the aggregation state by one event. It must
	// confine all side effects to the state (paper §2.1).
	Update func(*sym.Ctx, S, E)

	// Result extracts the query result from the final state. It must be
	// pure; it runs on a fully concrete state.
	Result func(key string, s S) R

	// EncodeEvent/DecodeEvent serialize events for the baseline's
	// shuffle.
	EncodeEvent func(*wire.Encoder, E)
	DecodeEvent func(*wire.Decoder) (E, error)

	// Options tunes the symbolic engine; zero means paper defaults.
	Options sym.Options
}

// validateQuery checks the query's programmer contract once per run: the
// analogue of the paper's §5.3 static verification of user code, with
// reflection standing in for what C++'s type system could not express.
func validateQuery[S sym.State, E, R any](q *Query[S, E, R]) error {
	if q.GroupBy == nil || q.NewState == nil || q.Update == nil || q.Result == nil {
		return fmt.Errorf("core %q: GroupBy, NewState, Update and Result are required", q.Name)
	}
	if err := sym.ValidateState(q.NewState); err != nil {
		return fmt.Errorf("core %q: %w", q.Name, err)
	}
	return nil
}

// SymStats aggregates symbolic-execution work across all mapper-side
// executors of a run.
type SymStats struct {
	Records   int // events fed to symbolic executors
	Runs      int // Update invocations (symbolic overhead factor)
	Merges    int
	Restarts  int
	Summaries int // summaries shuffled
	// MemoHits/MemoMisses count records folded through the
	// record-transition cache vs records that required path exploration
	// (both zero when memoization is off).
	MemoHits   int
	MemoMisses int
	// RunProbes counts runs of identical events the batch path folded
	// through a single transition probe (zero outside Columnar runs).
	RunProbes int
	// ExecWall is the wall time spent inside the symbolic-execution pass
	// of the map chunks (feeding grouped events and finishing executors),
	// excluding record parsing and grouping, summed across chunks. It
	// isolates the engine cost from the parse cost every engine shares.
	ExecWall time.Duration
}

// Output is the result of running a query under any engine.
type Output[R any] struct {
	Results map[string]R
	Metrics *mapreduce.Metrics
	Sym     SymStats
}

// Keys returns the sorted group keys, for deterministic iteration.
func (o *Output[R]) Keys() []string {
	keys := make([]string, 0, len(o.Results))
	for k := range o.Results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// RunSequential executes the query in one sequential pass: the reference
// semantics. Events are grouped per key preserving global input order and
// the UDA runs concretely.
func RunSequential[S sym.State, E, R any](q *Query[S, E, R], segments []*mapreduce.Segment) (*Output[R], error) {
	if err := validateQuery(q); err != nil {
		return nil, err
	}
	start := time.Now()
	m := &mapreduce.Metrics{}
	execs := make(map[string]*sym.Executor[S, E])
	var order []string
	for _, seg := range segments {
		m.InputBytes += seg.Bytes()
		m.InputRecords += int64(len(seg.Records))
		for _, rec := range seg.Records {
			key, ev, ok := q.GroupBy(rec)
			if !ok {
				continue
			}
			x := execs[key]
			if x == nil {
				x = sym.NewConcreteExecutor(q.NewState, q.Update, q.Options)
				execs[key] = x
				order = append(order, key)
			}
			if err := x.Feed(ev); err != nil {
				return nil, fmt.Errorf("core %q: sequential key %q: %w", q.Name, key, err)
			}
		}
	}
	results := make(map[string]R, len(execs))
	for _, key := range order {
		s, err := execs[key].ConcreteState()
		if err != nil {
			return nil, fmt.Errorf("core %q: sequential key %q: %w", q.Name, key, err)
		}
		results[key] = q.Result(key, s)
	}
	m.Groups = int64(len(execs))
	m.TotalWall = time.Since(start)
	m.MapCPU = m.TotalWall
	return &Output[R]{Results: results, Metrics: m}, nil
}

// RunBaseline executes the query as the paper's hand-optimized Hadoop
// baseline: mappers group and shuffle (only) the UDA's event fields;
// reducers run the UDA concretely over each ordered group.
func RunBaseline[S sym.State, E, R any](q *Query[S, E, R], segments []*mapreduce.Segment, conf mapreduce.Config) (*Output[R], error) {
	if err := validateQuery(q); err != nil {
		return nil, err
	}
	if q.EncodeEvent == nil || q.DecodeEvent == nil {
		return nil, fmt.Errorf("core %q: the baseline engine requires EncodeEvent/DecodeEvent", q.Name)
	}
	finish := obsAutoVerify(&conf)
	trace := conf.Trace
	var mu sync.Mutex
	results := make(map[string]R)
	job := &mapreduce.Job{
		Name: q.Name + "/baseline",
		Map: func(mapperID int, seg *mapreduce.Segment, emit mapreduce.Emit) error {
			span := trace.Start(obs.KindMapParse, fmt.Sprintf("parse-%d", mapperID)).
				Attr(obs.AttrTask, int64(mapperID))
			emitted := int64(0)
			for i, rec := range seg.Records {
				key, ev, ok := q.GroupBy(rec)
				if !ok {
					continue
				}
				e := wire.NewEncoder(16)
				q.EncodeEvent(e, ev)
				emit(key, int64(i), e.Bytes())
				emitted++
			}
			span.Attr(obs.AttrRecords, int64(len(seg.Records))).
				Attr(obs.AttrValues, emitted).End()
			return nil
		},
		Reduce: func(_ int, key string, values []mapreduce.Shuffled) error {
			span := trace.Start(obs.KindReduceGroup, key).
				Attr(obs.AttrValues, int64(len(values)))
			x := sym.NewConcreteExecutor(q.NewState, q.Update, q.Options)
			for _, v := range values {
				ev, err := q.DecodeEvent(wire.NewDecoder(v.Value))
				if err != nil {
					return err
				}
				if err := x.Feed(ev); err != nil {
					return err
				}
			}
			s, err := x.ConcreteState()
			if err != nil {
				return err
			}
			r := q.Result(key, s)
			span.End()
			mu.Lock()
			results[key] = r
			mu.Unlock()
			return nil
		},
		Conf: conf,
	}
	metrics, err := job.Run(segments)
	if err := finish(err); err != nil {
		return nil, err
	}
	return &Output[R]{Results: results, Metrics: metrics}, nil
}

// SympleOptions tunes how the SYMPLE engines execute a query. The zero
// value is RunSymple's classic behavior.
type SympleOptions struct {
	// Combine enables the mapper-side combiner: before shuffling, each
	// group's ordered summary list is pre-composed into a single summary
	// via the associative summary∘summary composition (paper §3.6) —
	// the classic mapper-side combining lever (Lin's "monoidify"
	// principle), which summary composition extends to non-monoid UDAs.
	// It shrinks both reducer CPU and shuffle payload. Ordering
	// semantics (§5.4) are preserved because only adjacent summaries of
	// one (mapper, group) list are composed, in order; composition can
	// fail (e.g. the path cross product exceeds limits), in which case
	// the mapper falls back to shipping the uncombined list, so results
	// are identical either way.
	Combine bool
	// Tree composes each group's summaries at the reducer as a parallel
	// binary tree (RunSympleTree's strategy) instead of applying them
	// left-to-right onto the concrete state.
	Tree bool
	// MemoSize bounds the per-mapper record-transition cache: records
	// whose projected event was seen before skip path exploration and
	// fold their cached transition summary into the live paths by
	// composition (§3.6), which is byte-identical to direct exploration.
	// 0 uses sym.DefaultMemoSize; negative disables memoization.
	MemoSize int
	// MapParallelism splits each mapper's segment into that many
	// contiguous sub-chunks executed symbolically in parallel and
	// stitched back per key in chunk order — associativity of summary
	// composition makes the concatenated per-key summary lists
	// equivalent to the single-threaded run (§3.6), and the §5.4
	// (key, mapperID, recordID) contract is preserved because each key's
	// bundle keeps its global record order. 0 or 1 runs mappers
	// single-threaded (classic behavior).
	MapParallelism int
	// SeedExecutor runs mappers on the frozen pre-optimization executor
	// (sym.SeedExecutor): the equivalence oracle and the baseline the
	// symexec benchmark measures against. Disables memoization.
	SeedExecutor bool
	// Columnar runs mappers on the batched execution path: vectorized
	// grouping (Query.GroupByBatch over Segment.Columns, with a scalar
	// fallback), counting-sorted per-key event vectors, and the
	// executor's batch API with run-length transition probes. Results
	// are byte-identical to the scalar path — the batch boundary cannot
	// change summaries because composition is associative and exact
	// (§3.6); only the work profile changes.
	Columnar bool
}

// RunSymple executes the query with symbolic parallelism: each mapper
// groups its segment and runs the UDA symbolically per group, shuffling
// one compact record per (mapper, group) that carries the group's ordered
// symbolic summaries. Reducers compose the summaries in (mapperID,
// recordID) order starting from the initial aggregation state — exactly
// the sequential semantics (paper §5.4).
func RunSymple[S sym.State, E, R any](q *Query[S, E, R], segments []*mapreduce.Segment, conf mapreduce.Config) (*Output[R], error) {
	return RunSympleOpts(q, segments, conf, SympleOptions{})
}

// RunSympleOpts is RunSymple with explicit engine options.
func RunSympleOpts[S sym.State, E, R any](q *Query[S, E, R], segments []*mapreduce.Segment, conf mapreduce.Config, opt SympleOptions) (*Output[R], error) {
	if err := validateQuery(q); err != nil {
		return nil, err
	}
	// One compiled schema serves the whole run: mapper executors, memo
	// transitions, reducer decoding and summary application all draw
	// path-state containers from its pool (it is concurrency-safe).
	sc, err := sym.NewSchema(q.NewState)
	if err != nil {
		return nil, fmt.Errorf("core %q: %w", q.Name, err)
	}
	finish := obsAutoVerify(&conf)
	trace := conf.Trace
	var mu sync.Mutex
	results := make(map[string]R)
	stats := SymStats{}
	name := q.Name + "/symple"
	if opt.Tree {
		name = q.Name + "/symple-tree"
	}
	agg := &composeAgg{}
	reduce := func(_ int, key string, values []mapreduce.Shuffled) error {
		// values arrive ordered by (mapperID, recordID): the order
		// the chunks appear in the input.
		sums, err := decodeSummaryBundles(sc, values)
		if err != nil {
			return err
		}
		// The classic path folds summaries onto the concrete state one
		// by one: n applies, zero summary∘summary compositions. The
		// compose span records both so the verifier's compose-count
		// invariant (composes + applies = summaries) covers this path
		// as well as the tree path.
		var t0 time.Time
		timed := false
		if trace != nil {
			if timed = agg.admit(); timed {
				t0 = time.Now()
			}
		}
		final, err := sym.ApplyAll(q.NewState(), sums)
		if err != nil {
			return fmt.Errorf("composing %d summaries: %w", len(sums), err)
		}
		for _, s := range sums {
			s.Release()
		}
		r := q.Result(key, final)
		if timed {
			emitComposeSpan(trace, key, t0, time.Now(), int64(len(sums)), 0, int64(len(sums)))
		} else if trace != nil {
			agg.addOverflow(int64(len(sums)), 0, int64(len(sums)))
		}
		mu.Lock()
		results[key] = r
		mu.Unlock()
		return nil
	}
	if opt.Tree {
		reduce = treeReduceFunc(q, sc, &mu, results, trace, agg)
	}
	job := &mapreduce.Job{
		Name:   name,
		Map:    sympleMapFunc(q, sc, &mu, &stats, opt, trace, conf.Registry),
		Reduce: reduce,
		Conf:   conf,
	}
	metrics, err := job.Run(segments)
	if err == nil && trace != nil {
		agg.flush(trace)
	}
	if err := finish(err); err != nil {
		return nil, err
	}
	return &Output[R]{Results: results, Metrics: metrics, Sym: stats}, nil
}
