package wire

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Block compression for shuffle segments. A compressed block is framed as
//
//	uvarint rawLen | uvarint compLen | compLen bytes of DEFLATE stream
//
// so a decoder can validate both lengths before allocating or inflating
// anything: compLen is checked against the remaining input, and rawLen
// against the maximum expansion DEFLATE permits (stored blocks cost ~5
// bytes of header per 64 KiB, so a compressed stream can never inflate
// by more than ~1032x plus a small constant). Truncated or corrupt
// blocks surface as ErrCorrupt-wrapped errors, never as panics or
// unbounded allocations.

// maxInflateRatio bounds rawLen relative to compLen: DEFLATE emits at
// least one bit per byte produced, so a forged header claiming a larger
// expansion is rejected before any allocation.
const maxInflateRatio = 1032

// flateLevel is the compression level for shuffle segments. BestSpeed:
// the shuffle is latency-sensitive and segment payloads (varint columns,
// dictionary strings) are highly redundant, so the cheap level already
// captures most of the win.
const flateLevel = flate.BestSpeed

// flateWriters pools *flate.Writer — constructing one allocates its
// whole match-finder state (~64 KiB), far too expensive per segment.
var flateWriters = sync.Pool{
	New: func() any {
		w, err := flate.NewWriter(io.Discard, flateLevel)
		if err != nil {
			panic(err) // unreachable: flateLevel is a valid constant level
		}
		return w
	},
}

// flateReaders pools inflater state via flate's Resetter interface.
var flateReaders = sync.Pool{
	New: func() any { return flate.NewReader(bytes.NewReader(nil)) },
}

// compressBufs pools the scratch buffers compression streams into before
// the framed copy into the encoder.
var compressBufs = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// CompressedBlock appends payload as a framed DEFLATE block. The payload
// is compressed first so the frame can carry both lengths up front.
func (e *Encoder) CompressedBlock(payload []byte) {
	buf := compressBufs.Get().(*bytes.Buffer)
	buf.Reset()
	fw := flateWriters.Get().(*flate.Writer)
	fw.Reset(buf)
	// Writes to a bytes.Buffer cannot fail.
	_, _ = fw.Write(payload)
	_ = fw.Close()
	flateWriters.Put(fw)
	e.Uvarint(uint64(len(payload)))
	e.Uvarint(uint64(buf.Len()))
	e.buf = append(e.buf, buf.Bytes()...)
	compressBufs.Put(buf)
}

// CompressedBlock reads a framed DEFLATE block written by
// Encoder.CompressedBlock, returning the decompressed payload in a fresh
// buffer. Both frame lengths are validated before any allocation; a
// truncated stream, forged length, or corrupt DEFLATE body returns an
// error wrapping ErrCorrupt.
func (d *Decoder) CompressedBlock() ([]byte, error) {
	rawLen := d.Uvarint()
	compLen := d.Uvarint()
	if err := d.err; err != nil {
		return nil, err
	}
	if compLen > uint64(d.Remaining()) {
		d.fail("compressed block body")
		return nil, d.err
	}
	if rawLen > compLen*maxInflateRatio+64 {
		d.err = fmt.Errorf("%w: compressed block claims %d bytes from %d (beyond max expansion)",
			ErrCorrupt, rawLen, compLen)
		return nil, d.err
	}
	comp := d.buf[d.off : d.off+int(compLen)]
	d.off += int(compLen)

	fr := flateReaders.Get().(io.ReadCloser)
	defer flateReaders.Put(fr)
	if err := fr.(flate.Resetter).Reset(bytes.NewReader(comp), nil); err != nil {
		d.err = fmt.Errorf("%w: resetting inflater: %v", ErrCorrupt, err)
		return nil, d.err
	}
	out := make([]byte, rawLen)
	if _, err := io.ReadFull(fr, out); err != nil {
		d.err = fmt.Errorf("%w: inflating block: %v", ErrCorrupt, err)
		return nil, d.err
	}
	// The stream must end exactly at rawLen: trailing compressed data
	// means the frame header lied.
	var tail [1]byte
	if n, _ := fr.Read(tail[:]); n != 0 {
		d.err = fmt.Errorf("%w: compressed block longer than declared %d bytes", ErrCorrupt, rawLen)
		return nil, d.err
	}
	return out, nil
}

// StringDict appends a length-prefixed string dictionary: entry count,
// then each entry length-prefixed. Decoders reference entries by index,
// so a repeated string costs one varint per use instead of its bytes.
func (e *Encoder) StringDict(dict []string) {
	e.Uvarint(uint64(len(dict)))
	for _, s := range dict {
		e.String(s)
	}
}

// StringDict reads a dictionary written by Encoder.StringDict. The entry
// count is validated against maxEntries and the remaining input before
// allocation; each entry's length is validated by String. One string is
// allocated per distinct entry — the decode-side win of dictionary
// encoding over per-record keys.
func (d *Decoder) StringDict(maxEntries int) []string {
	n := d.Length(min(maxEntries, d.Remaining()))
	if d.err != nil {
		return nil
	}
	dict := make([]string, n)
	for i := range dict {
		dict[i] = d.String()
		if d.err != nil {
			return nil
		}
	}
	return dict
}
