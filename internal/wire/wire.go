// Package wire implements the compact binary encoding SYMPLE uses for
// symbolic summaries and shuffle records.
//
// The paper (§2.3, §4) requires symbolic expressions to be "represented in
// a compact form for efficient serialization and transfer across the
// network"; every canonical form in package sym serializes through this
// package so the shuffle-byte measurements in the evaluation reflect the
// real on-the-wire cost. The format is a simple length-free stream of
// varints (unsigned LEB128), zig-zag-encoded signed integers, and
// length-prefixed byte strings. Streams are self-framing only to the
// extent the decoder knows the schema, exactly like Hadoop writables.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// ErrCorrupt is returned (wrapped) when a decoder reads malformed data.
var ErrCorrupt = errors.New("wire: corrupt stream")

// Encoder appends primitive values to a byte buffer.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with capacity preallocated for n bytes.
func NewEncoder(n int) *Encoder {
	return &Encoder{buf: make([]byte, 0, n)}
}

// Bytes returns the encoded stream. The slice aliases the encoder's
// internal buffer and is invalidated by further writes.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the encoded contents, retaining the buffer.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// encPool recycles encoders for transient encode work (summary bundling,
// size computation). Buffers grow to their workload's high-water mark and
// are reused instead of resized per call.
var encPool = sync.Pool{
	New: func() any { return NewEncoder(256) },
}

// maxPooledEncoder bounds the buffer capacity returned to the pool, so
// one pathological summary does not pin megabytes for the process
// lifetime.
const maxPooledEncoder = 1 << 20

// GetEncoder returns a reset pooled encoder. Pair with PutEncoder; the
// encoder's Bytes are invalidated by the return, so copy them out first.
func GetEncoder() *Encoder {
	e := encPool.Get().(*Encoder)
	e.Reset()
	return e
}

// PutEncoder returns an encoder obtained from GetEncoder to the pool.
func PutEncoder(e *Encoder) {
	if e == nil || cap(e.buf) > maxPooledEncoder {
		return
	}
	encPool.Put(e)
}

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// UvarintLen returns the number of bytes Uvarint writes for v, computed
// arithmetically so size accounting never needs a scratch encoder. A
// varint carries 7 payload bits per byte; v|1 makes the zero value cost
// one byte like the encoder does.
func UvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// Varint appends a zig-zag-encoded signed varint.
func (e *Encoder) Varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// Bool appends a boolean as a single byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Byte appends a raw byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Uint64 appends a fixed-width little-endian uint64. Used for values with
// high entropy where a varint would usually cost more.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// Float64 appends a float64 as its IEEE-754 bits.
func (e *Encoder) Float64(v float64) {
	e.Uint64(math.Float64bits(v))
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// BytesField appends a length-prefixed byte slice.
func (e *Encoder) BytesField(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Decoder reads primitive values from a byte stream produced by Encoder.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over buf. The decoder does not copy buf.
func NewDecoder(buf []byte) *Decoder {
	return &Decoder{buf: buf}
}

// Err returns the first decoding error encountered, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining reports the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: reading %s at offset %d", ErrCorrupt, what, d.off)
	}
}

// Uvarint reads an unsigned varint. On error it returns 0 and records the
// error, so callers may defer error checks to Err.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zig-zag-encoded signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

// Length reads an unsigned varint intended as an element count and
// validates it against max before any conversion to int, so a forged
// huge value can neither wrap negative nor drive an allocation.
func (d *Decoder) Length(max int) int {
	v := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if max < 0 || v > uint64(max) {
		if d.err == nil {
			d.err = fmt.Errorf("%w: length %d exceeds limit %d", ErrCorrupt, v, max)
		}
		return 0
	}
	return int(v)
}

// Bool reads a single-byte boolean.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("bool")
		return false
	}
	b := d.buf[d.off]
	d.off++
	if b > 1 {
		d.fail("bool")
		return false
	}
	return b == 1
}

// Byte reads a raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("byte")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Uint64 reads a fixed-width little-endian uint64.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("uint64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Float64 reads an IEEE-754 float64.
func (d *Decoder) Float64() float64 {
	return math.Float64frombits(d.Uint64())
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	return string(d.bytesField("string"))
}

// BytesField reads a length-prefixed byte slice. The result aliases the
// decoder's input buffer.
func (d *Decoder) BytesField() []byte {
	return d.bytesField("bytes")
}

func (d *Decoder) bytesField(what string) []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}
