package wire_test

import (
	"flag"
	"fmt"
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/fuzzseed"
	"repro/internal/wire"
)

var updateFuzzSeeds = flag.Bool("update-fuzz-seeds", false,
	"regenerate testdata/fuzz-seeds/records from the current generators")

// recordSeedCorpus builds the committed record corpus: one hand-built op
// stream exercising every primitive with awkward values (max uvarint,
// negative varint, NaN float bits, empty and non-empty strings), plus
// real query-traffic records from the seeded corpora generators, whose
// delimiter-heavy layout steers the mutator toward realistic
// string/length patterns.
func recordSeedCorpus() []fuzzseed.Seed {
	opstream := []byte{
		0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, // uvarint 2^64-1
		1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, // varint -1
		2, 0x01, // bool true
		3, 0x7F, // raw byte
		4, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, // uint64
		5, 0x7F, 0xF8, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01, // float64 NaN payload
		6, 0x00, // empty string
		6, 0x04, 'k', 'e', 'y', '!', // string
		7, 0x03, 0x00, 0x01, 0x02, // bytes field
		8, 0x05, 'a', 'a', 'a', 'a', 'a', // compressed block
		8, 0x00, // empty compressed block
		9, 0x02, 0x03, 'k', 'e', 'y', 0x00, // string dict {"key", ""}
	}
	seeds := []fuzzseed.Seed{{Name: "opstream.bin", Data: opstream}}
	gh := data.GenGithub(data.GithubConfig{Records: 40, Repos: 6, Segments: 1, Seed: 7})
	bing := data.GenBing(data.BingConfig{Records: 40, Users: 8, Geos: 3, Segments: 1, Seed: 8, Outages: 2})
	for i, rec := range [][]byte{gh[0].Records[0], gh[0].Records[7], bing[0].Records[0], bing[0].Records[5]} {
		seeds = append(seeds, fuzzseed.Seed{
			Name: fmt.Sprintf("traffic-%d.bin", i),
			Data: append([]byte(nil), rec...),
		})
	}
	return seeds
}

// TestUpdateFuzzSeeds regenerates the committed record corpus when run
// with -update-fuzz-seeds.
func TestUpdateFuzzSeeds(t *testing.T) {
	corpus := recordSeedCorpus()
	if !*updateFuzzSeeds {
		t.Skipf("generator healthy (%d seeds); pass -update-fuzz-seeds to rewrite testdata/fuzz-seeds/records", len(corpus))
	}
	if err := fuzzseed.Update("records", corpus); err != nil {
		t.Fatal(err)
	}
}

// FuzzWireRoundTrip checks the encoder/decoder pair property-style: the
// fuzz input is interpreted as an op stream — each op picks a primitive
// type and carries its value — which is encoded and then decoded under
// the identical schema. Every value must survive unchanged, the decoder
// must report no error, and no bytes may be left over. This is the
// complement of FuzzDecoder, which feeds the decoder garbage; here the
// stream is valid by construction, so any mismatch is an encoding bug.
//
// Seeds come from the committed corpus in testdata/fuzz-seeds/records
// (see recordSeedCorpus for its construction). Runs as part of
// `go test`; fuzz continuously with
// `go test -fuzz=FuzzWireRoundTrip ./internal/wire`.
func FuzzWireRoundTrip(f *testing.F) {
	seeds, err := fuzzseed.Load("records")
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range seeds {
		f.Add(s.Data)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, in []byte) {
		type item struct {
			op   byte
			u    uint64 // uvarint / fixed uint64 / float64 bits
			i    int64
			b    bool
			by   byte
			s    string
			bs   []byte
			dict []string
		}
		pos := 0
		take := func(n int) []byte {
			if rem := len(in) - pos; n > rem {
				n = rem
			}
			b := in[pos : pos+n]
			pos += n
			return b
		}
		u64 := func() uint64 {
			var v uint64
			for _, b := range take(8) {
				v = v<<8 | uint64(b)
			}
			return v
		}

		var items []item
		e := wire.NewEncoder(0)
		for pos < len(in) && len(items) < 512 {
			it := item{op: in[pos] % 10}
			pos++
			switch it.op {
			case 0:
				it.u = u64()
				e.Uvarint(it.u)
			case 1:
				it.i = int64(u64())
				e.Varint(it.i)
			case 2:
				if b := take(1); len(b) > 0 {
					it.b = b[0]&1 == 1
				}
				e.Bool(it.b)
			case 3:
				if b := take(1); len(b) > 0 {
					it.by = b[0]
				}
				e.Byte(it.by)
			case 4:
				it.u = u64()
				e.Uint64(it.u)
			case 5:
				it.u = u64()
				e.Float64(math.Float64frombits(it.u))
			case 6:
				var n int
				if b := take(1); len(b) > 0 {
					n = int(b[0]) % 33
				}
				it.s = string(take(n))
				e.String(it.s)
			case 7:
				var n int
				if b := take(1); len(b) > 0 {
					n = int(b[0]) % 33
				}
				it.bs = append([]byte(nil), take(n)...)
				e.BytesField(it.bs)
			case 8:
				var n int
				if b := take(1); len(b) > 0 {
					n = int(b[0]) % 65
				}
				it.bs = append([]byte(nil), take(n)...)
				e.CompressedBlock(it.bs)
			case 9:
				var n int
				if b := take(1); len(b) > 0 {
					n = int(b[0]) % 9
				}
				it.dict = make([]string, 0, n)
				for j := 0; j < n; j++ {
					var l int
					if b := take(1); len(b) > 0 {
						l = int(b[0]) % 17
					}
					it.dict = append(it.dict, string(take(l)))
				}
				e.StringDict(it.dict)
			}
			items = append(items, it)
		}

		d := wire.NewDecoder(e.Bytes())
		for idx, it := range items {
			switch it.op {
			case 0:
				if got := d.Uvarint(); got != it.u {
					t.Fatalf("op %d: Uvarint %d, want %d", idx, got, it.u)
				}
			case 1:
				if got := d.Varint(); got != it.i {
					t.Fatalf("op %d: Varint %d, want %d", idx, got, it.i)
				}
			case 2:
				if got := d.Bool(); got != it.b {
					t.Fatalf("op %d: Bool %v, want %v", idx, got, it.b)
				}
			case 3:
				if got := d.Byte(); got != it.by {
					t.Fatalf("op %d: Byte %#x, want %#x", idx, got, it.by)
				}
			case 4:
				if got := d.Uint64(); got != it.u {
					t.Fatalf("op %d: Uint64 %d, want %d", idx, got, it.u)
				}
			case 5:
				got := math.Float64bits(d.Float64())
				// NaN payloads compare by bits; everything else must be
				// bit-exact too, so one check covers both.
				if got != it.u && !(math.IsNaN(math.Float64frombits(got)) && math.IsNaN(math.Float64frombits(it.u))) {
					t.Fatalf("op %d: Float64 bits %#x, want %#x", idx, got, it.u)
				}
			case 6:
				if got := d.String(); got != it.s {
					t.Fatalf("op %d: String %q, want %q", idx, got, it.s)
				}
			case 7:
				if got := d.BytesField(); string(got) != string(it.bs) {
					t.Fatalf("op %d: BytesField %q, want %q", idx, got, it.bs)
				}
			case 8:
				got, err := d.CompressedBlock()
				if err != nil {
					t.Fatalf("op %d: CompressedBlock: %v", idx, err)
				}
				if string(got) != string(it.bs) {
					t.Fatalf("op %d: CompressedBlock %q, want %q", idx, got, it.bs)
				}
			case 9:
				got := d.StringDict(len(it.dict))
				if len(got) != len(it.dict) {
					t.Fatalf("op %d: StringDict %d entries, want %d", idx, len(got), len(it.dict))
				}
				for j := range got {
					if got[j] != it.dict[j] {
						t.Fatalf("op %d: StringDict[%d] %q, want %q", idx, j, got[j], it.dict[j])
					}
				}
			}
		}
		if err := d.Err(); err != nil {
			t.Fatalf("decoder errored on a valid stream: %v", err)
		}
		if n := d.Remaining(); n != 0 {
			t.Fatalf("%d bytes left after decoding the full schema", n)
		}
	})
}
