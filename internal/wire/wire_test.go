package wire

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripPrimitives(t *testing.T) {
	e := NewEncoder(64)
	e.Uvarint(0)
	e.Uvarint(300)
	e.Uvarint(math.MaxUint64)
	e.Varint(0)
	e.Varint(-1)
	e.Varint(math.MinInt64)
	e.Varint(math.MaxInt64)
	e.Bool(true)
	e.Bool(false)
	e.Byte(0xAB)
	e.Uint64(0xDEADBEEFCAFEF00D)
	e.Float64(3.14159)
	e.String("hello, symple")
	e.String("")
	e.BytesField([]byte{1, 2, 3})

	d := NewDecoder(e.Bytes())
	if got := d.Uvarint(); got != 0 {
		t.Errorf("uvarint: got %d, want 0", got)
	}
	if got := d.Uvarint(); got != 300 {
		t.Errorf("uvarint: got %d, want 300", got)
	}
	if got := d.Uvarint(); got != math.MaxUint64 {
		t.Errorf("uvarint: got %d, want max", got)
	}
	if got := d.Varint(); got != 0 {
		t.Errorf("varint: got %d, want 0", got)
	}
	if got := d.Varint(); got != -1 {
		t.Errorf("varint: got %d, want -1", got)
	}
	if got := d.Varint(); got != math.MinInt64 {
		t.Errorf("varint: got %d, want min", got)
	}
	if got := d.Varint(); got != math.MaxInt64 {
		t.Errorf("varint: got %d, want max", got)
	}
	if got := d.Bool(); !got {
		t.Error("bool: got false, want true")
	}
	if got := d.Bool(); got {
		t.Error("bool: got true, want false")
	}
	if got := d.Byte(); got != 0xAB {
		t.Errorf("byte: got %x, want ab", got)
	}
	if got := d.Uint64(); got != 0xDEADBEEFCAFEF00D {
		t.Errorf("uint64: got %x", got)
	}
	if got := d.Float64(); got != 3.14159 {
		t.Errorf("float64: got %v", got)
	}
	if got := d.String(); got != "hello, symple" {
		t.Errorf("string: got %q", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("string: got %q, want empty", got)
	}
	b := d.BytesField()
	if len(b) != 3 || b[0] != 1 || b[1] != 2 || b[2] != 3 {
		t.Errorf("bytes: got %v", b)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decoder error: %v", err)
	}
	if d.Remaining() != 0 {
		t.Errorf("remaining: got %d, want 0", d.Remaining())
	}
}

func TestQuickVarintRoundTrip(t *testing.T) {
	f := func(v int64, u uint64, s string) bool {
		e := NewEncoder(0)
		e.Varint(v)
		e.Uvarint(u)
		e.String(s)
		d := NewDecoder(e.Bytes())
		return d.Varint() == v && d.Uvarint() == u && d.String() == s && d.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderTruncated(t *testing.T) {
	e := NewEncoder(0)
	e.Uint64(12345)
	e.String("truncate me please")
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		d.Uint64()
		_ = d.String()
		if cut < len(full) && d.Err() == nil {
			t.Fatalf("cut=%d: expected error on truncated stream", cut)
		}
		if !errors.Is(d.Err(), ErrCorrupt) {
			t.Fatalf("cut=%d: error %v is not ErrCorrupt", cut, d.Err())
		}
	}
}

func TestDecoderErrorSticky(t *testing.T) {
	d := NewDecoder(nil)
	d.Uvarint()
	first := d.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	// Further reads return zero values and keep the first error.
	if v := d.Varint(); v != 0 {
		t.Errorf("varint after error: got %d", v)
	}
	if v := d.Bool(); v {
		t.Error("bool after error: got true")
	}
	if d.Err() != first {
		t.Error("error not sticky")
	}
}

func TestBadBoolByte(t *testing.T) {
	d := NewDecoder([]byte{7})
	d.Bool()
	if d.Err() == nil {
		t.Fatal("expected error for bool byte 7")
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(0)
	e.Uvarint(42)
	if e.Len() == 0 {
		t.Fatal("expected nonzero length")
	}
	e.Reset()
	if e.Len() != 0 {
		t.Fatal("reset did not clear buffer")
	}
	e.Uvarint(7)
	d := NewDecoder(e.Bytes())
	if got := d.Uvarint(); got != 7 {
		t.Fatalf("after reset: got %d, want 7", got)
	}
}

func TestStringLengthOverflow(t *testing.T) {
	// A length prefix far larger than the buffer must error, not panic.
	e := NewEncoder(0)
	e.Uvarint(math.MaxUint64)
	d := NewDecoder(e.Bytes())
	if s := d.String(); s != "" || d.Err() == nil {
		t.Fatalf("expected error, got %q err=%v", s, d.Err())
	}
}

func TestLength(t *testing.T) {
	e := NewEncoder(0)
	e.Uvarint(5)
	e.Uvarint(100)
	e.Uvarint(math.MaxUint64)
	d := NewDecoder(e.Bytes())
	if got := d.Length(10); got != 5 || d.Err() != nil {
		t.Fatalf("Length = %d, err %v", got, d.Err())
	}
	// Over the limit: error, zero result.
	if got := d.Length(10); got != 0 || d.Err() == nil {
		t.Fatalf("over-limit Length = %d, err %v", got, d.Err())
	}
	// Error is sticky; the huge value never converts.
	if got := d.Length(1 << 40); got != 0 {
		t.Fatalf("post-error Length = %d", got)
	}

	// A value that would wrap a signed int must be rejected, not wrapped.
	e2 := NewEncoder(0)
	e2.Uvarint(math.MaxUint64)
	d2 := NewDecoder(e2.Bytes())
	if got := d2.Length(math.MaxInt64); got != 0 || d2.Err() == nil {
		t.Fatalf("wrapping Length = %d, err %v", got, d2.Err())
	}

	// Negative max always errors.
	d3 := NewDecoder([]byte{1})
	if got := d3.Length(-1); got != 0 || d3.Err() == nil {
		t.Fatalf("negative max Length = %d, err %v", got, d3.Err())
	}
}

// TestUvarintLen pins the arithmetic size function against what the
// encoder actually writes, across byte-length boundaries and random
// values.
func TestUvarintLen(t *testing.T) {
	cases := []uint64{0, 1, 0x7F, 0x80, 0x3FFF, 0x4000, 1 << 21, (1 << 21) - 1,
		1<<28 - 1, 1 << 28, 1<<35 - 1, 1 << 35, 1<<42 - 1, 1 << 42,
		1<<49 - 1, 1 << 49, 1<<56 - 1, 1 << 56, 1<<63 - 1, 1 << 63, math.MaxUint64}
	for _, v := range cases {
		e := NewEncoder(10)
		e.Uvarint(v)
		if got, want := UvarintLen(v), e.Len(); got != want {
			t.Errorf("UvarintLen(%#x) = %d, encoder wrote %d", v, got, want)
		}
	}
	if err := quick.Check(func(v uint64) bool {
		e := NewEncoder(10)
		e.Uvarint(v)
		return UvarintLen(v) == e.Len()
	}, nil); err != nil {
		t.Error(err)
	}
}
