package wire

import "testing"

// FuzzDecoder drives the decoder over arbitrary bytes with a fixed
// schema: it must never panic and must flag truncation/corruption via
// Err. The seed corpus runs as part of the normal test suite; use
// `go test -fuzz=FuzzDecoder ./internal/wire` for continuous fuzzing.
func FuzzDecoder(f *testing.F) {
	e := NewEncoder(0)
	e.Uvarint(300)
	e.Varint(-77)
	e.Bool(true)
	e.String("seed")
	e.Uint64(12345)
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Add([]byte{0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		// Read a fixed mixed schema; none of these may panic.
		_ = d.Uvarint()
		_ = d.Varint()
		_ = d.Bool()
		_ = d.String()
		_ = d.Uint64()
		_ = d.BytesField()
		_ = d.Byte()
		_ = d.Float64()
		if d.Err() == nil && d.Remaining() < 0 {
			t.Fatal("negative remaining")
		}
	})
}
