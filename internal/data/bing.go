package data

import (
	"math/rand"

	"repro/internal/mapreduce"
)

// Bing query log (stand-in for the 300GB, 1.9-billion-query corpus).
// Schema, tab-separated:
//
//	ts  user  geo  ok  query
//
// ts is a Unix timestamp in seconds, ok ∈ {0,1} marks a successful query.
// The generator injects genuine global outages (gaps with no successful
// query anywhere, B1), regional outages (per-geo gaps, B2), and per-user
// session structure (B3's <2-minute sessions).

// BingConfig sizes the generated dataset.
type BingConfig struct {
	Records  int
	Users    int // B3's group count: very large (≈ records/queries-per-session)
	Geos     int // B2's group count: small (paper groups by geographic area)
	Segments int
	Filler   int // query-text bytes
	Seed     int64

	// Outages injects this many global outage gaps (> 2 minutes with no
	// successful query). Regional outages are injected per geo at twice
	// the rate.
	Outages int

	Columnar bool // also attach the columnar form to each segment
}

// DefaultBingConfig returns a laptop-scale configuration.
func DefaultBingConfig() BingConfig {
	return BingConfig{
		Records: 200000, Users: 40000, Geos: 50, Segments: 8,
		Filler: 24, Seed: 43, Outages: 12,
	}
}

// GenBing generates the dataset as ordered, timestamp-sorted segments.
func GenBing(cfg BingConfig) []*mapreduce.Segment {
	r := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Users <= 0 {
		cfg.Users = 1
	}
	if cfg.Geos <= 0 {
		cfg.Geos = 1
	}
	records := make([][]byte, 0, cfg.Records)
	var b lineBuilder
	ts := int64(1_420_000_000)
	// Pick the records after which a global outage gap is inserted.
	outageAt := make(map[int]bool, cfg.Outages)
	for len(outageAt) < cfg.Outages && cfg.Records > 10 {
		outageAt[1+r.Intn(cfg.Records-2)] = true
	}
	// Regional outages: per geo, suppress successes in time windows.
	type window struct {
		geo      int
		from, to int64
	}
	var regional []window
	horizon := ts + int64(cfg.Records)*2 // rough end time
	for g := 0; g < cfg.Geos; g++ {
		for k := 0; k < 2*cfg.Outages/cfg.Geos+1; k++ {
			from := ts + r.Int63n(horizon-ts)
			regional = append(regional, window{geo: g, from: from, to: from + 120 + r.Int63n(600)})
		}
	}
	pad := filler(r, cfg.Filler)
	for i := 0; i < cfg.Records; i++ {
		if outageAt[i] {
			ts += 121 + r.Int63n(600) // global gap: no queries at all
		} else {
			ts += int64(r.Intn(3)) // dense traffic otherwise
		}
		user := r.Intn(cfg.Users)
		geo := r.Intn(cfg.Geos)
		ok := int64(1)
		if r.Intn(20) == 0 {
			ok = 0 // sporadic failures
		}
		for _, w := range regional {
			if w.geo == geo && ts >= w.from && ts <= w.to {
				ok = 0
				break
			}
		}
		b.reset()
		b.intField(ts)
		b.field(keyName("u", user))
		b.field(keyName("g", geo))
		b.intField(ok)
		b.field(pad)
		records = append(records, b.bytes())
	}
	segs := segmented(records, cfg.Segments)
	if cfg.Columnar {
		Columnarize(segs, ColSpecFor("bing"))
	}
	return segs
}
