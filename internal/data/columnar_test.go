package data

import (
	"bytes"
	"testing"

	"repro/internal/mapreduce"
)

// The converter's contract: Materialize(ToColumnar(recs)) == recs, byte
// for byte, for every generator corpus and for adversarial rows that
// must go ragged. The columnar golden digests pin the same property end
// to end through the query engines.

// genAll returns every bench corpus with columns attached, keyed by
// dataset name.
func genAll(t *testing.T) map[string][]*mapreduce.Segment {
	t.Helper()
	return map[string][]*mapreduce.Segment{
		"github": GenGithub(GithubConfig{
			Records: 5000, Repos: 150, Segments: 4, Filler: 8, Seed: 71, Columnar: true}),
		"bing": GenBing(BingConfig{
			Records: 5000, Users: 250, Geos: 10, Segments: 4,
			Filler: 8, Seed: 72, Outages: 4, Columnar: true}),
		"twitter": GenTwitter(TwitterConfig{
			Records: 5000, Hashtags: 120, Users: 300, Segments: 4,
			Filler: 8, Seed: 73, Columnar: true}),
		"redshift": GenRedshift(RedshiftConfig{
			Records: 5000, Advertisers: 30, Segments: 4,
			Seed: 74, DarkWindows: 2, Columnar: true}),
	}
}

func TestColumnarMaterializeIdentityAllDatasets(t *testing.T) {
	for name, segs := range genAll(t) {
		var rows, dense int
		for _, seg := range segs {
			if seg.Columns == nil {
				t.Fatalf("%s: generator did not attach columns", name)
			}
			got := seg.Columns.Materialize(nil)
			if len(got) != len(seg.Records) {
				t.Fatalf("%s segment %d: materialized %d records, want %d",
					name, seg.ID, len(got), len(seg.Records))
			}
			for i := range got {
				if !bytes.Equal(got[i], seg.Records[i]) {
					t.Fatalf("%s segment %d record %d:\n got %q\nwant %q",
						name, seg.ID, i, got[i], seg.Records[i])
				}
			}
			rows += seg.Columns.Rows
			dense += seg.Columns.Dense()
		}
		if rows == 0 {
			t.Fatalf("%s: no rows", name)
		}
		// The generators emit schema-conformant records, so the typed
		// plan must actually engage — a converter that shunts everything
		// to ragged storage would still pass the identity check.
		if dense < rows/2 {
			t.Errorf("%s: only %d of %d rows dense — plan is not matching the generator schema", name, dense, rows)
		}
	}
}

func TestToColumnarRaggedRows(t *testing.T) {
	spec := ColSpecFor("github")
	records := [][]byte{
		[]byte("100\trepo/a\tpush\tactor\tpayload"),
		[]byte("short"),                             // too few fields
		[]byte("0100\trepo/a\tpush\tactor\tpl"),     // leading zero: not canonical
		[]byte("-0\trepo/a\tpush\tactor\tpl"),       // negative zero: not canonical
		[]byte("99999999999999999999\ta\tb\tc\td"),  // overflows int64
		[]byte("101\trepo/b\tdelete\tactor2\t"),     // empty trailing field
		[]byte("102\trepo/a\tpush\tactor\tx\ty\tz"), // extra fields land in tail
		[]byte(""), // empty record
		[]byte("103\trepo/c\tpush\tactor3\tpayload"), // dense again after ragged
	}
	c := ToColumnar(records, spec)
	if c.Rows != len(records) {
		t.Fatalf("rows %d, want %d", c.Rows, len(records))
	}
	wantRagged := []int32{1, 2, 3, 4, 7}
	if len(c.Ragged) != len(wantRagged) {
		t.Fatalf("ragged rows %v, want %v", c.Ragged, wantRagged)
	}
	for i, r := range wantRagged {
		if c.Ragged[i] != r {
			t.Fatalf("ragged rows %v, want %v", c.Ragged, wantRagged)
		}
	}
	got := c.Materialize(nil)
	for i := range records {
		if !bytes.Equal(got[i], records[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], records[i])
		}
	}
	// Dictionary codes must dedupe in first-use order.
	repos := c.Cols[1].Dict
	if len(repos) != 3 || repos[0] != "repo/a" || repos[1] != "repo/b" || repos[2] != "repo/c" {
		t.Fatalf("repo dictionary %v, want first-use order [repo/a repo/b repo/c]", repos)
	}
}

func TestToColumnarCodecRoundTripOnGeneratedData(t *testing.T) {
	// The generator corpus through the wire codec: the form a multi-node
	// shuffle would ship must still materialize identically.
	for name, segs := range genAll(t) {
		seg := segs[0]
		for _, compress := range []bool{false, true} {
			dec, err := mapreduce.DecodeColumnar(mapreduce.EncodeColumnar(seg.Columns, compress))
			if err != nil {
				t.Fatalf("%s compress=%v: %v", name, compress, err)
			}
			got := dec.Materialize(nil)
			if len(got) != len(seg.Records) {
				t.Fatalf("%s compress=%v: %d records, want %d", name, compress, len(got), len(seg.Records))
			}
			for i := range got {
				if !bytes.Equal(got[i], seg.Records[i]) {
					t.Fatalf("%s compress=%v record %d diverges", name, compress, i)
				}
			}
		}
	}
}

func TestFieldSpansMatchesFieldAdapters(t *testing.T) {
	recs := [][]byte{
		[]byte("a\tb\tc\td"),
		[]byte("a"),
		[]byte(""),
		[]byte("\t\t"),
		[]byte("one\ttwo"),
	}
	for _, rec := range recs {
		for i := 0; i < 4; i++ {
			var spans [maxFieldSpans][2]int32
			n, _ := fieldSpans(rec, i+1, &spans)
			want := Field(rec, i)
			got := span(rec, &spans, n, i)
			if !bytes.Equal(got, want) {
				t.Fatalf("rec %q field %d: fieldSpans %q, Field %q", rec, i, got, want)
			}
		}
	}
}

// BenchmarkColumnarParse measures the converter — the ingestion-side
// cost the columnar experiment's parse pass pays once per segment.
func BenchmarkColumnarParse(b *testing.B) {
	segs := GenGithub(GithubConfig{
		Records: 20000, Repos: 300, Segments: 1, Filler: 8, Seed: 75})
	spec := ColSpecFor("github")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := ToColumnar(segs[0].Records, spec)
		if c.Dense() == 0 {
			b.Fatal("no dense rows")
		}
	}
}
