package data

import (
	"math/rand"

	"repro/internal/mapreduce"
)

// Twitter firehose (stand-in for the 1.23TB 24-hour corpus). Schema,
// tab-separated:
//
//	ts  hashtag  user  spam  text
//
// spam ∈ {0,1} marks tweets the spam filter flagged. Per hashtag, the
// generator emits a run of unflagged tweets followed by a flagged tail —
// T1 measures "spam learning speed": how many tweets passed before the
// filter produced at least five consecutive flags.

// TwitterConfig sizes the generated dataset.
type TwitterConfig struct {
	Records  int
	Hashtags int // T1's group count: large (mappers see few events/group)
	Users    int
	Segments int
	Filler   int
	Seed     int64
	Columnar bool // also attach the columnar form to each segment
}

// DefaultTwitterConfig returns a laptop-scale configuration.
func DefaultTwitterConfig() TwitterConfig {
	return TwitterConfig{
		Records: 200000, Hashtags: 20000, Users: 50000,
		Segments: 8, Filler: 48, Seed: 44,
	}
}

// GenTwitter generates the dataset as ordered, timestamp-sorted segments.
func GenTwitter(cfg TwitterConfig) []*mapreduce.Segment {
	r := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Hashtags <= 0 {
		cfg.Hashtags = 1
	}
	// Per hashtag: number of clean tweets before the filter "learns".
	learnAfter := make([]int, cfg.Hashtags)
	seen := make([]int, cfg.Hashtags)
	spammy := make([]bool, cfg.Hashtags)
	for h := range learnAfter {
		spammy[h] = r.Intn(3) == 0 // a third of hashtags attract spam
		learnAfter[h] = 1 + r.Intn(20)
	}
	records := make([][]byte, 0, cfg.Records)
	var b lineBuilder
	ts := int64(1_430_000_000)
	pad := filler(r, cfg.Filler)
	// Hashtags trend: they are active for a bounded stretch of the day.
	tags := newActiveSet(r, cfg.Hashtags, 64, max2(cfg.Records/cfg.Hashtags, 1))
	for i := 0; i < cfg.Records; i++ {
		ts += int64(r.Intn(2))
		h := tags.pick()
		spam := int64(0)
		if spammy[h] && seen[h] >= learnAfter[h] {
			// After learning, the filter flags most tweets; occasional
			// misses break runs, exercising the run-length reset.
			if r.Intn(10) != 0 {
				spam = 1
			}
		}
		seen[h]++
		b.reset()
		b.intField(ts)
		b.field(keyName("h", h))
		b.field(keyName("u", r.Intn(cfg.Users)))
		b.intField(spam)
		b.field(pad)
		records = append(records, b.bytes())
	}
	segs := segmented(records, cfg.Segments)
	if cfg.Columnar {
		Columnarize(segs, ColSpecFor("twitter"))
	}
	return segs
}
