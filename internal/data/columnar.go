package data

import (
	"bytes"
	"fmt"
	"strconv"

	"repro/internal/mapreduce"
)

// Record→columnar conversion (ROADMAP item 4). A column plan assigns a
// mapreduce.ColKind to each leading field of a dataset's tab-separated
// schema, with a mandatory trailing ColTail that captures the raw
// remainder (filler, free text, extra fields). Rows that don't fit the
// plan — too few fields, or an integer field whose bytes are not the
// canonical decimal rendering — fall back to raw ragged storage, so
// conversion is total and reconstruction stays byte-exact.

// ColSpecFor returns the column plan for one of the bench datasets, or
// nil for an unknown name. The typed prefix covers exactly the fields
// the 12 queries read; everything past it is tail.
func ColSpecFor(dataset string) []mapreduce.ColKind {
	switch dataset {
	case "github": // ts repo op actor payload…
		return []mapreduce.ColKind{mapreduce.ColInt, mapreduce.ColDict, mapreduce.ColDict, mapreduce.ColDict, mapreduce.ColTail}
	case "bing": // ts user geo ok query…
		return []mapreduce.ColKind{mapreduce.ColInt, mapreduce.ColDict, mapreduce.ColDict, mapreduce.ColInt, mapreduce.ColTail}
	case "twitter": // ts hashtag user spam text…
		return []mapreduce.ColKind{mapreduce.ColInt, mapreduce.ColDict, mapreduce.ColDict, mapreduce.ColInt, mapreduce.ColTail}
	case "redshift": // datetime advertiser campaign country [imp url …]
		return []mapreduce.ColKind{mapreduce.ColStr, mapreduce.ColDict, mapreduce.ColDict, mapreduce.ColDict, mapreduce.ColTail}
	}
	return nil
}

// ToColumnar converts records to the columnar form under spec. The
// plan's last column must be ColTail and the typed prefix must fit the
// shared splitter; both are programmer errors, not data errors (rows
// that merely fail the plan become ragged). Ragged rows alias records.
func ToColumnar(records [][]byte, spec []mapreduce.ColKind) *mapreduce.Columnar {
	typed := len(spec) - 1
	if typed < 0 || spec[typed] != mapreduce.ColTail {
		panic("data: column plan must end with ColTail")
	}
	if typed >= maxFieldSpans {
		panic(fmt.Sprintf("data: column plan has %d typed fields, max %d", typed, maxFieldSpans-1))
	}
	c := &mapreduce.Columnar{Rows: len(records), Cols: make([]mapreduce.Col, len(spec))}
	dicts := make([]map[string]uint32, typed)
	for i, k := range spec {
		col := &c.Cols[i]
		col.Kind = k
		switch k {
		case mapreduce.ColStr, mapreduce.ColTail:
			col.Offs = append(col.Offs, 0)
		case mapreduce.ColDict:
			dicts[i] = make(map[string]uint32, 64)
		case mapreduce.ColInt:
		default:
			panic(fmt.Sprintf("data: bad column kind %d", k))
		}
		if k == mapreduce.ColTail && i != typed {
			panic("data: ColTail before the last column")
		}
	}

	var spans [maxFieldSpans][2]int32
	var ints [maxFieldSpans]int64
	var scratch [20]byte
	for ri, rec := range records {
		n, stop := fieldSpans(rec, typed, &spans)
		ok := n == typed
		for f := 0; ok && f < typed; f++ {
			if spec[f] != mapreduce.ColInt {
				continue
			}
			fb := rec[spans[f][0]:spans[f][1]]
			v, valid := ParseInt(fb)
			// Canonical rendering only: a row whose integer bytes carry
			// leading zeros (or overflowed the parse) would not survive
			// reconstruction, so it stays raw.
			if !valid || !bytes.Equal(fb, strconv.AppendInt(scratch[:0], v, 10)) {
				ok = false
				break
			}
			ints[f] = v
		}
		if !ok {
			c.Ragged = append(c.Ragged, int32(ri))
			c.RaggedRecs = append(c.RaggedRecs, rec)
			continue
		}
		for f := 0; f < typed; f++ {
			col := &c.Cols[f]
			fb := rec[spans[f][0]:spans[f][1]]
			switch spec[f] {
			case mapreduce.ColInt:
				col.Ints = append(col.Ints, ints[f])
			case mapreduce.ColDict:
				code, seen := dicts[f][string(fb)]
				if !seen {
					code = uint32(len(col.Dict))
					s := string(fb)
					col.Dict = append(col.Dict, s)
					dicts[f][s] = code
				}
				col.Codes = append(col.Codes, code)
			case mapreduce.ColStr:
				col.Blob = append(col.Blob, fb...)
				col.Offs = append(col.Offs, uint32(len(col.Blob)))
			}
		}
		tail := &c.Cols[typed]
		tail.Blob = append(tail.Blob, rec[stop:]...)
		tail.Offs = append(tail.Offs, uint32(len(tail.Blob)))
	}
	return c
}

// Columnarize attaches the columnar form to every segment in place and
// returns segs for chaining. Records remain authoritative.
func Columnarize(segs []*mapreduce.Segment, spec []mapreduce.ColKind) []*mapreduce.Segment {
	for _, s := range segs {
		s.Columns = ToColumnar(s.Records, spec)
	}
	return segs
}
