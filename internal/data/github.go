package data

import (
	"math/rand"

	"repro/internal/mapreduce"
)

// GitHub repository-operation log (stand-in for the 419GB githubarchive
// corpus, Feb 2011–Sep 2014). Schema, tab-separated:
//
//	ts  repo  op  actor  payload
//
// Ops are drawn so the patterns G1–G4 mine actually occur: push-only
// repositories, deletes preceded by varied operations, pull-request
// open/close windows, and branch delete→create gaps.

// GitHub op codes. The enum domain is small and closed, as SymEnum needs.
const (
	OpPush = iota
	OpPullOpen
	OpPullClose
	OpBranchCreate
	OpBranchDelete
	OpDeleteRepo
	OpFork
	OpIssue
	NumGithubOps
)

// GithubOpNames maps op codes to their log representation.
var GithubOpNames = [NumGithubOps]string{
	"push", "pull_open", "pull_close", "branch_create",
	"branch_delete", "delete_repo", "fork", "issue",
}

// GithubOpFromName reverses GithubOpNames; -1 when unknown.
func GithubOpFromName(b []byte) int {
	for i, n := range GithubOpNames {
		if string(b) == n {
			return i
		}
	}
	return -1
}

// GithubConfig sizes the generated dataset.
type GithubConfig struct {
	Records  int
	Repos    int // group count; the paper's github queries have millions
	Segments int
	Filler   int // payload bytes per record (complete-variant realism)
	Seed     int64
	Columnar bool // also attach the columnar form to each segment
}

// DefaultGithubConfig returns a laptop-scale configuration preserving the
// paper's many-groups regime (records/repos ≈ 20).
func DefaultGithubConfig() GithubConfig {
	return GithubConfig{Records: 200000, Repos: 10000, Segments: 8, Filler: 64, Seed: 42}
}

// GenGithub generates the dataset as ordered, timestamp-sorted segments.
func GenGithub(cfg GithubConfig) []*mapreduce.Segment {
	r := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Repos <= 0 {
		cfg.Repos = 1
	}
	records := make([][]byte, 0, cfg.Records)
	var b lineBuilder
	ts := int64(1_300_000_000) // seconds, globally increasing
	pushOnly := make([]bool, cfg.Repos)
	for i := range pushOnly {
		// Roughly a fifth of repositories only ever see pushes (G1).
		pushOnly[i] = r.Intn(5) == 0
	}
	pad := filler(r, cfg.Filler)
	// Repositories are temporally local: active for a bounded stretch of
	// the multi-year log (see data.activeSet).
	repos := newActiveSet(r, cfg.Repos, 64, max2(cfg.Records/cfg.Repos, 1))
	for i := 0; i < cfg.Records; i++ {
		ts += int64(r.Intn(30))
		repo := repos.pick()
		var op int
		if pushOnly[repo] {
			op = OpPush
		} else {
			// Weighted ops: pushes dominate real logs.
			switch w := r.Intn(100); {
			case w < 45:
				op = OpPush
			case w < 55:
				op = OpPullOpen
			case w < 65:
				op = OpPullClose
			case w < 73:
				op = OpBranchCreate
			case w < 81:
				op = OpBranchDelete
			case w < 85:
				op = OpDeleteRepo
			case w < 92:
				op = OpFork
			default:
				op = OpIssue
			}
		}
		b.reset()
		b.intField(ts)
		b.field(keyName("r", repo))
		b.field(GithubOpNames[op])
		b.field(keyName("u", r.Intn(1000)))
		b.field(pad)
		records = append(records, b.bytes())
	}
	segs := segmented(records, cfg.Segments)
	if cfg.Columnar {
		Columnarize(segs, ColSpecFor("github"))
	}
	return segs
}
