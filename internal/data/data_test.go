package data

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/mapreduce"
)

func TestFieldExtraction(t *testing.T) {
	rec := []byte("100\tr5\tpush\tu9\tpayload")
	cases := []struct {
		i    int
		want string
	}{
		{0, "100"}, {1, "r5"}, {2, "push"}, {3, "u9"}, {4, "payload"},
	}
	for _, c := range cases {
		if got := Field(rec, c.i); string(got) != c.want {
			t.Errorf("Field(%d) = %q, want %q", c.i, got, c.want)
		}
	}
	if got := Field(rec, 5); got != nil {
		t.Errorf("Field(5) = %q, want nil", got)
	}
	if got := Field([]byte(""), 0); len(got) != 0 {
		t.Errorf("Field on empty = %q", got)
	}
	if got := Field([]byte("a\t\tb"), 1); len(got) != 0 {
		t.Errorf("empty middle field = %q", got)
	}
}

func TestParseInt(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true}, {"123", 123, true}, {"-45", -45, true},
		{"", 0, false}, {"-", 0, false}, {"12a", 0, false}, {"a", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseInt([]byte(c.in))
		if got != c.want || ok != c.ok {
			t.Errorf("ParseInt(%q) = (%d,%t), want (%d,%t)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func tsOf(t *testing.T, rec []byte) int64 {
	t.Helper()
	v, ok := ParseInt(Field(rec, 0))
	if !ok {
		t.Fatalf("bad ts in %q", rec)
	}
	return v
}

func TestGithubGeneratorProperties(t *testing.T) {
	cfg := GithubConfig{Records: 5000, Repos: 200, Segments: 4, Filler: 16, Seed: 1}
	segs := GenGithub(cfg)
	if len(segs) != 4 {
		t.Fatalf("%d segments", len(segs))
	}
	total := 0
	last := int64(-1)
	pushOnlySeen := false
	repoOps := map[string]map[string]bool{}
	for _, s := range segs {
		total += len(s.Records)
		for _, rec := range s.Records {
			ts := tsOf(t, rec)
			if ts < last {
				t.Fatal("timestamps not globally nondecreasing")
			}
			last = ts
			op := GithubOpFromName(Field(rec, 2))
			if op < 0 {
				t.Fatalf("unknown op in %q", rec)
			}
			repo := string(Field(rec, 1))
			if repoOps[repo] == nil {
				repoOps[repo] = map[string]bool{}
			}
			repoOps[repo][GithubOpNames[op]] = true
		}
	}
	if total != cfg.Records {
		t.Fatalf("total records %d, want %d", total, cfg.Records)
	}
	for _, ops := range repoOps {
		if len(ops) == 1 && ops["push"] {
			pushOnlySeen = true
		}
	}
	if !pushOnlySeen {
		t.Fatal("no push-only repositories generated (G1 pattern missing)")
	}
}

func TestGithubDeterministic(t *testing.T) {
	cfg := GithubConfig{Records: 500, Repos: 20, Segments: 2, Seed: 7}
	a := GenGithub(cfg)
	b := GenGithub(cfg)
	for i := range a {
		if len(a[i].Records) != len(b[i].Records) {
			t.Fatal("nondeterministic segment sizes")
		}
		for j := range a[i].Records {
			if !bytes.Equal(a[i].Records[j], b[i].Records[j]) {
				t.Fatal("nondeterministic records")
			}
		}
	}
}

func TestBingGeneratorOutages(t *testing.T) {
	cfg := BingConfig{Records: 20000, Users: 500, Geos: 10, Segments: 4, Seed: 2, Outages: 5}
	segs := GenBing(cfg)
	var lastOk int64
	globalGaps := 0
	last := int64(-1)
	for _, s := range segs {
		for _, rec := range s.Records {
			ts := tsOf(t, rec)
			if ts < last {
				t.Fatal("timestamps not sorted")
			}
			last = ts
			ok, valid := ParseInt(Field(rec, 3))
			if !valid || (ok != 0 && ok != 1) {
				t.Fatalf("bad ok flag in %q", rec)
			}
			if ok == 1 {
				if lastOk != 0 && ts-lastOk > 120 {
					globalGaps++
				}
				lastOk = ts
			}
		}
	}
	if globalGaps < cfg.Outages {
		t.Fatalf("found %d global outage gaps, want ≥ %d", globalGaps, cfg.Outages)
	}
}

func TestTwitterGeneratorSpamRuns(t *testing.T) {
	cfg := TwitterConfig{Records: 30000, Hashtags: 50, Users: 100, Segments: 4, Seed: 3}
	segs := GenTwitter(cfg)
	runs := map[string]int{}
	learned := map[string]bool{}
	for _, s := range segs {
		for _, rec := range s.Records {
			h := string(Field(rec, 1))
			spam, ok := ParseInt(Field(rec, 3))
			if !ok {
				t.Fatalf("bad spam flag in %q", rec)
			}
			if spam == 1 {
				runs[h]++
				if runs[h] >= 5 {
					learned[h] = true
				}
			} else {
				runs[h] = 0
			}
		}
	}
	if len(learned) == 0 {
		t.Fatal("no hashtag reached a 5-spam run (T1 pattern missing)")
	}
}

func TestRedshiftVariants(t *testing.T) {
	complete := GenRedshift(RedshiftConfig{Records: 2000, Advertisers: 20, Segments: 2, Seed: 4, DarkWindows: 2})
	condensed := GenRedshift(RedshiftConfig{Records: 2000, Advertisers: 20, Segments: 2, Seed: 4, DarkWindows: 2, Condensed: true})
	var cb, nb int64
	for i := range complete {
		cb += complete[i].Bytes()
		nb += condensed[i].Bytes()
	}
	if nb*2 > cb {
		t.Fatalf("condensed (%d B) not substantially smaller than complete (%d B)", nb, cb)
	}
	// Condensed keeps exactly the four used columns.
	rec := condensed[0].Records[0]
	if Field(rec, 3) == nil || Field(rec, 4) != nil {
		t.Fatalf("condensed schema wrong: %q", rec)
	}
	// Datetime field parses with the reference layout.
	if len(Field(rec, 0)) != 19 {
		t.Fatalf("datetime field: %q", Field(rec, 0))
	}
}

func TestRedshiftDarkWindows(t *testing.T) {
	segs := GenRedshift(RedshiftConfig{Records: 50000, Advertisers: 10, Segments: 1, Seed: 5, DarkWindows: 3, Condensed: true})
	// Track per-advertiser gaps over an hour.
	lastSeen := map[string]int64{}
	gaps := 0
	for _, rec := range segs[0].Records {
		a := string(Field(rec, 1))
		// Parse the datetime crudely: count on generator determinism and
		// extract via time layout in queries; here just use ordering.
		_ = a
		_ = lastSeen
		gaps++
	}
	if gaps == 0 {
		t.Fatal("no records")
	}
	if got := CountryIndex([]byte("de")); got != 2 {
		t.Fatalf("CountryIndex(de) = %d", got)
	}
	if got := CountryIndex([]byte("zz")); got != -1 {
		t.Fatalf("CountryIndex(zz) = %d", got)
	}
	if got := CampaignIndex([]byte("c3")); got != 3 {
		t.Fatalf("CampaignIndex(c3) = %d", got)
	}
	if got := CampaignIndex([]byte("x3")); got != -1 {
		t.Fatalf("CampaignIndex(x3) = %d", got)
	}
	if got := CampaignIndex([]byte("c999")); got != -1 {
		t.Fatalf("CampaignIndex(c999) = %d", got)
	}
}

func TestActiveSetRotation(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	s := newActiveSet(r, 100, 8, 10)
	first := map[int]int{} // group -> first pick index
	last := map[int]int{}
	for i := 0; i < 2000; i++ {
		g := s.pick()
		if g < 0 || g >= 100 {
			t.Fatalf("pick %d out of range", g)
		}
		if _, ok := first[g]; !ok {
			first[g] = i
		}
		last[g] = i
	}
	if len(first) < 80 {
		t.Fatalf("only %d/100 groups used", len(first))
	}
	// Temporal locality: a group's lifetime is a bounded slice of the
	// stream, k×rotate-ish, far below the full span.
	long := 0
	for g, f := range first {
		if last[g]-f > 400 {
			long++
		}
	}
	if long > 10 {
		t.Fatalf("%d groups span more than 400 records: no temporal locality", long)
	}
}

func TestActiveSetDegenerate(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	// k > total clamps; rotate < 1 clamps.
	s := newActiveSet(r, 2, 10, 0)
	for i := 0; i < 50; i++ {
		if g := s.pick(); g < 0 || g >= 2 {
			t.Fatalf("pick %d", g)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	twiceEqual := func(name string, gen func() []*mapreduce.Segment) {
		a, b := gen(), gen()
		if len(a) != len(b) {
			t.Fatalf("%s: segment counts differ", name)
		}
		for i := range a {
			if len(a[i].Records) != len(b[i].Records) {
				t.Fatalf("%s: record counts differ", name)
			}
			for j := range a[i].Records {
				if !bytes.Equal(a[i].Records[j], b[i].Records[j]) {
					t.Fatalf("%s: records differ", name)
				}
			}
		}
	}
	twiceEqual("bing", func() []*mapreduce.Segment {
		return GenBing(BingConfig{Records: 2000, Users: 50, Geos: 5, Segments: 3, Seed: 5, Outages: 2})
	})
	twiceEqual("twitter", func() []*mapreduce.Segment {
		return GenTwitter(TwitterConfig{Records: 2000, Hashtags: 40, Users: 30, Segments: 3, Seed: 6})
	})
	twiceEqual("redshift", func() []*mapreduce.Segment {
		return GenRedshift(RedshiftConfig{Records: 2000, Advertisers: 10, Segments: 3, Seed: 7, DarkWindows: 1})
	})
}
