// Package data generates the synthetic datasets standing in for the
// paper's proprietary corpora (GitHub archive, Bing query log, Twitter
// firehose, RedShift ad impressions — §6.1). The generators reproduce the
// properties the evaluation depends on:
//
//   - schema and field entropy (records carry the fields each query
//     touches plus realistic filler, so parse/scan cost is honest);
//   - group-count regimes, from a single group (B1) through tens (B2),
//     thousands (R1–R4) to records≈groups (B3, T1, G1–G4 scaled);
//   - global timestamp order across segments (the input contract of
//     §2.1), with the temporal patterns each query mines (outage gaps,
//     sessions, spam runs, campaign runs, pull-request windows).
//
// Everything is deterministic in the seed so experiments are repeatable.
package data

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/mapreduce"
)

// lineBuilder assembles a tab-separated record with minimal garbage.
type lineBuilder struct {
	buf []byte
}

func (b *lineBuilder) reset() { b.buf = b.buf[:0] }

func (b *lineBuilder) field(s string) {
	if len(b.buf) > 0 {
		b.buf = append(b.buf, '\t')
	}
	b.buf = append(b.buf, s...)
}

func (b *lineBuilder) intField(v int64) {
	if len(b.buf) > 0 {
		b.buf = append(b.buf, '\t')
	}
	b.buf = strconv.AppendInt(b.buf, v, 10)
}

func (b *lineBuilder) bytes() []byte {
	out := make([]byte, len(b.buf))
	copy(out, b.buf)
	return out
}

// segmented spreads records over n ordered segments of near-equal size,
// mirroring how a distributed file system splits a sorted log.
func segmented(records [][]byte, n int) []*mapreduce.Segment {
	if n <= 0 {
		n = 1
	}
	segs := make([]*mapreduce.Segment, n)
	for i := range segs {
		segs[i] = &mapreduce.Segment{ID: i}
	}
	for i, r := range records {
		s := segs[i*n/len(records)]
		s.Records = append(s.Records, r)
	}
	return segs
}

// filler returns a deterministic pseudo-payload of n bytes, standing in
// for the fields a query scans past and discards (the dominant byte cost
// in the paper's "complete" dataset variants).
func filler(r *rand.Rand, n int) string {
	if n <= 0 {
		return ""
	}
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(b)
}

// maxFieldSpans bounds the leading fields the shared splitter can
// resolve in one scan; every query and column plan stays well under it.
const maxFieldSpans = 8

// fieldSpans is the one tab-splitter implementation behind both the
// scalar Field accessors and the columnar converter: it scans rec once,
// recording [start, end) for each of the first upto fields (upto ≤
// maxFieldSpans). It returns the number of fields found and the offset
// where the scan stopped — for a fully resolved record that is the end
// of field upto−1, so rec[stop:] is the raw tail (including its leading
// tab) that the columnar form stores verbatim.
func fieldSpans(rec []byte, upto int, spans *[maxFieldSpans][2]int32) (n, stop int) {
	start, f := 0, 0
	for f < upto {
		end := start
		for end < len(rec) && rec[end] != '\t' {
			end++
		}
		spans[f] = [2]int32{int32(start), int32(end)}
		f++
		if end == len(rec) || f == upto {
			return f, end
		}
		start = end + 1
	}
	return f, 0
}

// span returns the field's bytes, nil when it was not found.
func span(rec []byte, spans *[maxFieldSpans][2]int32, n, i int) []byte {
	if i >= n {
		return nil
	}
	return rec[spans[i][0]:spans[i][1]]
}

// Field extracts the i-th tab-separated field of rec without allocating.
// It returns nil when the field does not exist.
func Field(rec []byte, i int) []byte {
	var spans [maxFieldSpans][2]int32
	n, _ := fieldSpans(rec, i+1, &spans)
	return span(rec, &spans, n, i)
}

// Field2 extracts fields i and j (i < j) in a single scan of rec.
// Missing fields come back nil. GroupBy functions are the mapper's
// per-record parse cost, so one pass instead of two matters there.
func Field2(rec []byte, i, j int) (fi, fj []byte) {
	var spans [maxFieldSpans][2]int32
	n, _ := fieldSpans(rec, j+1, &spans)
	return span(rec, &spans, n, i), span(rec, &spans, n, j)
}

// Field3 extracts fields i, j and k (i < j < k) in a single scan.
func Field3(rec []byte, i, j, k int) (fi, fj, fk []byte) {
	var spans [maxFieldSpans][2]int32
	n, _ := fieldSpans(rec, k+1, &spans)
	return span(rec, &spans, n, i), span(rec, &spans, n, j), span(rec, &spans, n, k)
}

// ParseInt parses a decimal int64 field; ok=false on malformed input.
func ParseInt(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if b[0] == '-' {
		neg = true
		i = 1
		if len(b) == 1 {
			return 0, false
		}
	}
	var v int64
	for ; i < len(b); i++ {
		if b[i] < '0' || b[i] > '9' {
			return 0, false
		}
		v = v*10 + int64(b[i]-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}

// keyName formats compact group keys like "r123".
func keyName(prefix string, id int) string {
	return fmt.Sprintf("%s%d", prefix, id)
}

// activeSet models the temporal locality of real groupby keys: a GitHub
// repository or a Twitter hashtag is active for a bounded stretch of the
// timeline, not uniformly across years. The set holds k concurrently
// active groups and retires the oldest for a fresh one every rotate
// records, so each group's records concentrate in a contiguous slice of
// the log — which is why, at cluster scale, a group's records land in few
// mappers (paper §6.3–§6.4 shuffle behavior).
type activeSet struct {
	r      *rand.Rand
	ids    []int
	next   int
	total  int
	rotate int
	tick   int
}

// newActiveSet creates a rotation over total group IDs with k active at
// a time, retiring one every rotate records.
func newActiveSet(r *rand.Rand, total, k, rotate int) *activeSet {
	if k > total {
		k = total
	}
	if k < 1 {
		k = 1
	}
	if rotate < 1 {
		rotate = 1
	}
	s := &activeSet{r: r, total: total, rotate: rotate}
	for i := 0; i < k; i++ {
		s.ids = append(s.ids, i)
	}
	s.next = k
	return s
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// pick returns the group ID for the next record.
func (s *activeSet) pick() int {
	s.tick++
	if s.tick%s.rotate == 0 && s.next < s.total {
		// Retire the slot of the oldest entry (round-robin) for a new
		// group; retired groups never return.
		s.ids[(s.next)%len(s.ids)] = s.next
		s.next++
	}
	return s.ids[s.r.Intn(len(s.ids))]
}
