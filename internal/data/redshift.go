package data

import (
	"math/rand"
	"time"

	"repro/internal/mapreduce"
)

// RedShift ad-impression benchmark (stand-in for the 1.2TB, 4-month
// corpus). Two variants, mirroring the paper's EMR experiment (§6.3):
//
//   - complete: every record carries all fields —
//     datetime  advertiser  campaign  country  impression_id  url  ua  ip  price
//   - condensed: only the four columns the queries use —
//     datetime  advertiser  campaign  country
//
// The datetime is a wall-clock string ("2006-01-02 15:04:05"); R3 parses
// it with the standard library, faithfully reproducing the paper's
// observation that R3c is dominated by C-library datetime parsing.

// RedshiftCountries is the closed country domain (SymEnum-sized).
var RedshiftCountries = []string{
	"us", "uk", "de", "fr", "jp", "br", "in", "cn", "ru", "ca",
	"au", "mx", "es", "it", "nl", "se", "pl", "tr", "kr", "ar",
}

// NumRedshiftCampaigns bounds campaign IDs per advertiser (SymEnum
// domain for R4).
const NumRedshiftCampaigns = 12

// RedshiftConfig sizes the generated dataset.
type RedshiftConfig struct {
	Records     int
	Advertisers int // the paper's 10K groups, scaled
	Segments    int
	Condensed   bool // drop the scanned-and-discarded fields
	Filler      int  // extra payload bytes in the complete variant
	Seed        int64

	// DarkWindows injects, per advertiser, windows longer than one hour
	// with no impressions (R3's pattern).
	DarkWindows int

	Columnar bool // also attach the columnar form to each segment
}

// DefaultRedshiftConfig returns a laptop-scale complete-variant config.
func DefaultRedshiftConfig() RedshiftConfig {
	return RedshiftConfig{
		Records: 200000, Advertisers: 100, Segments: 8,
		Seed: 45, DarkWindows: 3,
	}
}

// GenRedshift generates the dataset as ordered, timestamp-sorted
// segments.
func GenRedshift(cfg RedshiftConfig) []*mapreduce.Segment {
	r := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Advertisers <= 0 {
		cfg.Advertisers = 1
	}
	// Per-advertiser behavior: most run a few campaigns in runs; some
	// operate in a single country (R2's pattern).
	singleCountry := make([]int, cfg.Advertisers) // -1: multi-country
	curCampaign := make([]int, cfg.Advertisers)
	for a := range singleCountry {
		if r.Intn(4) == 0 {
			singleCountry[a] = r.Intn(len(RedshiftCountries))
		} else {
			singleCountry[a] = -1
		}
		curCampaign[a] = r.Intn(NumRedshiftCampaigns)
	}
	// Dark windows per advertiser: stretches where its ads don't show.
	// Implemented by timestamp jumps for records of that advertiser.
	lastTs := make([]int64, cfg.Advertisers)
	darkLeft := make([]int, cfg.Advertisers)
	for a := range darkLeft {
		darkLeft[a] = cfg.DarkWindows
	}

	base := time.Date(2015, 4, 1, 0, 0, 0, 0, time.UTC).Unix()
	ts := base
	records := make([][]byte, 0, cfg.Records)
	var b lineBuilder
	pad := filler(r, 40+cfg.Filler)
	for i := 0; i < cfg.Records; i++ {
		ts += int64(r.Intn(3))
		a := r.Intn(cfg.Advertisers)
		// Inject an over-an-hour gap for this advertiser occasionally.
		if darkLeft[a] > 0 && lastTs[a] != 0 && r.Intn(1+cfg.Records/(cfg.Advertisers*cfg.DarkWindows+1)) == 0 {
			darkLeft[a]--
			// The gap appears as this advertiser simply not showing
			// between lastTs[a] and now; stretch it past an hour.
			if ts-lastTs[a] <= 3600 {
				jump := 3601 + r.Int63n(3600) - (ts - lastTs[a])
				ts += jump
			}
		}
		lastTs[a] = ts
		// Campaigns run in streaks (R4's pattern).
		if r.Intn(8) == 0 {
			curCampaign[a] = r.Intn(NumRedshiftCampaigns)
		}
		country := singleCountry[a]
		if country < 0 {
			country = r.Intn(len(RedshiftCountries))
		}
		b.reset()
		b.field(time.Unix(ts, 0).UTC().Format("2006-01-02 15:04:05"))
		b.field(keyName("a", a))
		b.field(keyName("c", curCampaign[a]))
		b.field(RedshiftCountries[country])
		if !cfg.Condensed {
			b.field(keyName("imp", i))
			b.field("http://example.com/" + pad[:20])
			b.field("Mozilla/5.0 " + pad[20:36])
			b.intField(int64(r.Intn(256)))
			b.intField(int64(r.Intn(1000)))
			if cfg.Filler > 0 {
				b.field(pad[40:])
			}
		}
		records = append(records, b.bytes())
	}
	segs := segmented(records, cfg.Segments)
	if cfg.Columnar {
		Columnarize(segs, ColSpecFor("redshift"))
	}
	return segs
}

// CountryIndex maps a country code to its enum value; -1 when unknown.
func CountryIndex(b []byte) int {
	for i, c := range RedshiftCountries {
		if string(b) == c {
			return i
		}
	}
	return -1
}

// CampaignIndex parses campaign keys of the form "c<N>"; -1 when
// malformed or out of domain.
func CampaignIndex(b []byte) int {
	if len(b) < 2 || b[0] != 'c' {
		return -1
	}
	v, ok := ParseInt(b[1:])
	if !ok || v < 0 || v >= NumRedshiftCampaigns {
		return -1
	}
	return int(v)
}
