// Package obs is the engine's observability layer: structured job
// tracing, a typed metrics registry with invariant self-checks, and a
// trace verifier.
//
// The paper's claims are all measured quantities — CPU seconds, shuffle
// bytes, end-to-end latency — so the engine that reproduces them must be
// able to show its work. Every job run can emit a trace: a flat list of
// spans (one per task attempt, spill encode, segment decode, merge,
// summary composition, …) all parented to a per-job root span, written
// as JSONL through a pluggable Sink. A completed trace is a checkable
// artifact: Verifier replays it against the engine's algebraic
// invariants (wire bytes bounded by logical bytes, every committed run
// merged exactly once, compose count = summaries−1 per group,
// speculation losers never commit), turning "the run looked right" into
// "the run provably composed right" — the Monoidify/Homomorphism-
// Calculus discipline applied to the runtime rather than the UDA.
//
// Tracing is strictly optional and nil-safe: a nil *Trace (the default)
// makes every span call a no-op nil-pointer check, so the hot paths pay
// nothing when observability is off. Span granularity is per task /
// per segment / per group — never per record — keeping the traced
// overhead within a few percent (measured by `symplebench -experiment
// obs`, recorded in BENCH_OBS.json).
package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Span kinds, the trace taxonomy (see DESIGN.md "Observability").
const (
	// KindJob is the per-job root span; every other span of the run is
	// parented to it.
	KindJob = "job"
	// KindMapAttempt covers one map task attempt: user map, spill sort,
	// segment encode. Attrs: task, attempt, records, out_bytes,
	// logical_bytes; tags: outcome (ok|error), speculative.
	KindMapAttempt = "map_attempt"
	// KindReduceAttempt covers one reduce task attempt: the k-way merge
	// plus the user reduce calls. Attrs: part, attempt, groups.
	KindReduceAttempt = "reduce_attempt"
	// KindCommit is an instant event: one attempt won its task's commit.
	// Attrs: task, attempt. At most one per task — the single-commit
	// invariant.
	KindCommit = "commit"
	// KindRunCommit is an instant event: one spill run became visible to
	// its reducer. Attrs: task, attempt, part, bytes.
	KindRunCommit = "run_commit"
	// KindSegDecode covers decoding one shuffle segment at the reducer —
	// and doubles as the run's consumption record for the merged-once
	// invariant. Attrs: task, attempt, part, bytes.
	KindSegDecode = "seg_decode"
	// KindSpillEncode covers encoding (and, in spill mode, persisting)
	// one attempt's partition segments. Attrs: task, attempt, bytes.
	KindSpillEncode = "spill_encode"
	// KindMerge covers one pre-merge fold of pending runs at an idle
	// reducer. Attrs: part, runs.
	KindMerge = "merge"
	// KindMapParse covers the groupby/parse pass of one map chunk.
	// Attrs: task, chunk, records.
	KindMapParse = "map_parse"
	// KindMapExec covers the symbolic-execution pass of one map chunk.
	// Attrs: task, chunk, records, summaries.
	KindMapExec = "map_exec"
	// KindCompose covers the reduce-side composition of one group's
	// summaries. Name: group key. Attrs: summaries, composes, applies —
	// the compose-count invariant requires composes+applies = summaries.
	KindCompose = "compose"
	// KindCombine covers a mapper-side combiner pre-composing one
	// group's summary list. Attrs: summaries, composes (= summaries−1).
	KindCombine = "combine"
	// KindReduceGroup covers one concrete reduce group (baseline
	// engine). Name: group key. Attrs: values.
	KindReduceGroup = "reduce_group"
	// KindPartOwner is an instant event recording which worker ran the
	// worker-resident reduce for a partition (cluster w2w topology).
	// Attrs: part, worker. The owner-decode invariant joins it against
	// seg_decode spans carrying a worker attr.
	KindPartOwner = "part_owner"
	// KindQueue covers one serve job's admission wait, from accepted
	// submit to dispatch. Parented to the serve job root; tags: tenant.
	KindQueue = "queue_wait"
	// KindFold covers one serve fold: decoding cached or fresh summary
	// bundles and streaming them through the composer. Attrs: segments,
	// groups.
	KindFold = "fold"
)

// Common attribute keys shared by emitters and the Verifier.
const (
	AttrTask         = "task"
	AttrAttempt      = "attempt"
	AttrPart         = "part"
	AttrBytes        = "bytes"
	AttrRecords      = "records"
	AttrSummaries    = "summaries"
	AttrComposes     = "composes"
	AttrApplies      = "applies"
	AttrValues       = "values"
	AttrGroups       = "groups"
	AttrRuns         = "runs"
	AttrChunk        = "chunk"
	AttrParallelism  = "parallelism"
	AttrWireBytes    = "wire_bytes"
	AttrLogicalBytes = "logical_bytes"
	AttrOutBytes     = "out_bytes"
	// AttrWorker identifies the cluster worker a span executed on
	// (w2w reduce placement); in-process spans don't set it.
	AttrWorker = "worker"
	// AttrBatchRecords is the number of events a batched map chunk kept
	// after vectorized grouping (its parse and exec spans carry the same
	// value; scalar chunks don't set it).
	AttrBatchRecords = "batch_records"
	// AttrSegments, AttrCachedSegments, and AttrMappedSegments carry a
	// serve job's fold provenance on its root span: how many input
	// segments the result folded, how many of those came from the
	// summary cache, and how many were mapped fresh. The serve-cache
	// invariant joins them against the map spans in the job's subtree.
	AttrSegments       = "segments"
	AttrCachedSegments = "cached_segments"
	AttrMappedSegments = "mapped_segments"
)

// Span is one traced interval (or instant event, when End == Start).
// Times are Unix nanoseconds; simulated traces (dcsim) use an epoch of 0
// and nanoseconds of simulated time instead.
type Span struct {
	ID     int64             `json:"id"`
	Parent int64             `json:"parent,omitempty"`
	Kind   string            `json:"kind"`
	Name   string            `json:"name,omitempty"`
	Start  int64             `json:"start_ns"`
	End    int64             `json:"end_ns"`
	Attrs  map[string]int64  `json:"attrs,omitempty"`
	Tags   map[string]string `json:"tags,omitempty"`
}

// Duration returns the span's length.
func (s *Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// Attr returns the named attribute, or 0.
func (s *Span) Attr(k string) int64 { return s.Attrs[k] }

// Sink receives completed spans. Implementations must be safe for
// concurrent Emit calls.
type Sink interface {
	Emit(*Span)
}

// Trace issues span IDs and routes completed spans to its sink. All
// methods are safe on a nil receiver (no-ops), so engine code can thread
// an optional *Trace without guarding every call site.
//
// One job runs at a time per trace: StartJob sets the implicit parent
// that Start attaches to. Sequential jobs on one trace are fine (the
// Verifier groups spans per job root); concurrent jobs each need their
// own Fork of a shared trace.
type Trace struct {
	sink Sink
	// root, when non-nil, is the fork's ID authority: every fork of a
	// trace allocates span IDs from the same counter, so concurrent
	// forks emitting into one sink never collide.
	root *Trace
	// forkParent is the job span the forking trace was running when the
	// fork was taken; StartJob on the fork parents its root there, so a
	// sub-job (a serve job's engine run) nests under its umbrella span.
	forkParent int64
	nextID     atomic.Int64
	jobID      atomic.Int64
}

// NewTrace returns a trace emitting to sink.
func NewTrace(sink Sink) *Trace {
	return &Trace{sink: sink}
}

// Fork returns a trace sharing t's sink and span-ID space but with its
// own implicit job slot: each fork runs one job at a time, and any
// number of forks run concurrently into the same sink. A job started on
// the fork is parented to t's job at fork time (0 — a top-level root —
// when t has none), so sub-jobs nest under the job that spawned them.
func (t *Trace) Fork() *Trace {
	if t == nil {
		return nil
	}
	root := t.root
	if root == nil {
		root = t
	}
	return &Trace{sink: t.sink, root: root, forkParent: t.jobID.Load()}
}

// allocID draws a span ID from the trace's ID authority.
func (t *Trace) allocID() int64 {
	if t.root != nil {
		return t.root.nextID.Add(1)
	}
	return t.nextID.Add(1)
}

// NewID issues a fresh span ID, for emitters that build spans manually
// (the cluster simulator's replay).
func (t *Trace) NewID() int64 {
	if t == nil {
		return 0
	}
	return t.allocID()
}

// CurrentJob returns the implicit parent ID Start would attach to — the
// most recent StartJob's span ID. It outlives that span's End, so
// post-run emitters (the compose overflow aggregate) can still parent to
// the job they observed.
func (t *Trace) CurrentJob() int64 {
	if t == nil {
		return 0
	}
	return t.jobID.Load()
}

// EmitRaw sends a manually built span (assigning an ID if unset). Used
// by replay emitters that set Start/End to synthetic times.
func (t *Trace) EmitRaw(sp *Span) {
	if t == nil {
		return
	}
	if sp.ID == 0 {
		sp.ID = t.allocID()
	}
	t.sink.Emit(sp)
}

// ActiveSpan is an in-flight span. Attr/Tag/End are safe on a nil
// receiver; a span is owned by one goroutine until End.
type ActiveSpan struct {
	t  *Trace
	sp Span
}

// StartJob opens the per-job root span and makes it the implicit parent
// of subsequent Start calls on this trace.
func (t *Trace) StartJob(name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	s := &ActiveSpan{t: t, sp: Span{
		ID:     t.allocID(),
		Parent: t.forkParent,
		Kind:   KindJob,
		Name:   name,
		Start:  time.Now().UnixNano(),
	}}
	t.jobID.Store(s.sp.ID)
	return s
}

// Start opens a span parented to the current job span.
func (t *Trace) Start(kind, name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{t: t, sp: Span{
		ID:     t.allocID(),
		Parent: t.jobID.Load(),
		Kind:   kind,
		Name:   name,
		Start:  time.Now().UnixNano(),
	}}
}

// Event emits an instant span (End == Start) parented to the current
// job. The returned span has already been emitted once End-ed; Event
// ends it itself after applying attrs via the callback-free fluent
// chain, so callers use Start(...).Attr(...).End() when they need attrs:
// Event is the zero-attr shorthand.
func (t *Trace) Event(kind, name string) {
	t.Start(kind, name).End()
}

// ID returns the span's ID (0 on nil).
func (s *ActiveSpan) ID() int64 {
	if s == nil {
		return 0
	}
	return s.sp.ID
}

// Attr sets an integer attribute, returning the span for chaining.
func (s *ActiveSpan) Attr(k string, v int64) *ActiveSpan {
	if s == nil {
		return nil
	}
	if s.sp.Attrs == nil {
		s.sp.Attrs = make(map[string]int64, 4)
	}
	s.sp.Attrs[k] = v
	return s
}

// Tag sets a string tag, returning the span for chaining.
func (s *ActiveSpan) Tag(k, v string) *ActiveSpan {
	if s == nil {
		return nil
	}
	if s.sp.Tags == nil {
		s.sp.Tags = make(map[string]string, 2)
	}
	s.sp.Tags[k] = v
	return s
}

// End closes the span and emits it to the sink. An instant event is a
// span ended immediately; End forces End >= Start so zero-duration
// events never trip the clock invariant on coarse clocks.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.sp.End = time.Now().UnixNano()
	if s.sp.End < s.sp.Start {
		s.sp.End = s.sp.Start
	}
	s.t.sink.Emit(&s.sp)
}

// MemSink collects spans in memory, for the Verifier and tests.
type MemSink struct {
	mu    sync.Mutex
	spans []*Span
}

// NewMemSink returns an empty in-memory sink.
func NewMemSink() *MemSink { return &MemSink{} }

// Emit implements Sink.
func (m *MemSink) Emit(sp *Span) {
	m.mu.Lock()
	m.spans = append(m.spans, sp)
	m.mu.Unlock()
}

// Spans returns the collected spans in emission order.
func (m *MemSink) Spans() []*Span {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Span(nil), m.spans...)
}

// Reset drops all collected spans.
func (m *MemSink) Reset() {
	m.mu.Lock()
	m.spans = m.spans[:0]
	m.mu.Unlock()
}

// JSONLSink writes one JSON object per span to a buffered writer. The
// encoder is hand-rolled (fixed field order, integer attrs only) so a
// traced hot loop pays string formatting, not reflection.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer // underlying file, if owned
	buf []byte
}

// NewJSONLSink wraps w. Close flushes; it closes w too when w is an
// io.Closer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Sink.
func (s *JSONLSink) Emit(sp *Span) {
	s.mu.Lock()
	s.buf = appendSpanJSON(s.buf[:0], sp)
	_, _ = s.w.Write(s.buf)
	s.mu.Unlock()
}

// Close flushes buffered spans (and closes the underlying writer when
// owned).
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// appendSpanJSON renders one span as a JSONL line.
func appendSpanJSON(b []byte, sp *Span) []byte {
	b = append(b, `{"id":`...)
	b = strconv.AppendInt(b, sp.ID, 10)
	if sp.Parent != 0 {
		b = append(b, `,"parent":`...)
		b = strconv.AppendInt(b, sp.Parent, 10)
	}
	b = append(b, `,"kind":`...)
	b = appendJSONString(b, sp.Kind)
	if sp.Name != "" {
		b = append(b, `,"name":`...)
		b = appendJSONString(b, sp.Name)
	}
	b = append(b, `,"start_ns":`...)
	b = strconv.AppendInt(b, sp.Start, 10)
	b = append(b, `,"end_ns":`...)
	b = strconv.AppendInt(b, sp.End, 10)
	if len(sp.Attrs) > 0 {
		b = append(b, `,"attrs":{`...)
		first := true
		for _, k := range sortedKeys(sp.Attrs) {
			if !first {
				b = append(b, ',')
			}
			first = false
			b = appendJSONString(b, k)
			b = append(b, ':')
			b = strconv.AppendInt(b, sp.Attrs[k], 10)
		}
		b = append(b, '}')
	}
	if len(sp.Tags) > 0 {
		b = append(b, `,"tags":{`...)
		first := true
		for _, k := range sortedKeys(sp.Tags) {
			if !first {
				b = append(b, ',')
			}
			first = false
			b = appendJSONString(b, k)
			b = append(b, ':')
			b = appendJSONString(b, sp.Tags[k])
		}
		b = append(b, '}')
	}
	b = append(b, '}', '\n')
	return b
}

// jsonHex holds the digits for \u00XX control-character escapes.
const jsonHex = "0123456789abcdef"

// appendJSONString renders s as a quoted JSON string. Kinds and attr
// keys are engine identifiers, but span names carry group keys which can
// hold arbitrary bytes, so quotes, backslashes, and control characters
// are escaped; everything else passes through raw.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c >= 0x20:
			b = append(b, c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		default:
			b = append(b, '\\', 'u', '0', '0', jsonHex[c>>4], jsonHex[c&0xF])
		}
	}
	return append(b, '"')
}

// sortedKeys returns the map's keys in sorted order, for deterministic
// JSONL output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: attr maps hold a handful of keys.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// MultiSink fans one span out to several sinks (e.g. a JSONL file plus
// the in-memory sink the Verifier reads).
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(sp *Span) {
	for _, s := range m {
		s.Emit(sp)
	}
}
