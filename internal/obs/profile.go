package obs

import (
	"fmt"
	"os"
	"runtime/pprof"
)

// CPUProfile starts a CPU profile writing to path and returns a stop
// function that finishes the profile and closes the file. If another
// profile is already active (Go allows one per process), CPUProfile
// skips quietly and the stop function is a no-op — so a per-job
// Config.Profile composes with a process-wide -profile flag instead of
// erroring.
func CPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		// Profile already in progress: leave it alone.
		f.Close()
		os.Remove(path)
		return func() {}, nil
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}
