package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(5)
	r.Histogram("h").Observe(7)
	r.MergeInto(NewRegistry())
	if err := r.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
	if v := r.Counter("c").Value(); v != 0 {
		t.Fatalf("nil counter value %d", v)
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	r.Counter("records").Add(10)
	r.Counter("records").Inc()
	if v := r.Counter("records").Value(); v != 11 {
		t.Fatalf("counter = %d, want 11", v)
	}
	g := r.Gauge("live")
	g.Set(4)
	g.Max(9)
	g.Max(2)
	if v := g.Value(); v != 9 {
		t.Fatalf("gauge = %d, want 9", v)
	}
	h := r.Histogram("bytes")
	for _, v := range []int64{0, 1, 7, 8, 1024, 1 << 40} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 || s.Min != 0 || s.Max != 1<<40 || s.Sum != 0+1+7+8+1024+1<<40 {
		t.Fatalf("histogram snapshot %+v", s)
	}
	if err := r.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if snap["records"] != 11 || snap["bytes.count"] != 6 {
		t.Fatalf("snapshot %v", snap)
	}
}

func TestSelfCheckCatchesMisuse(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(-3)
	if err := r.SelfCheck(); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative counter add not caught: %v", err)
	}
	r2 := NewRegistry()
	r2.Histogram("h").Observe(-1)
	if err := r2.SelfCheck(); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative observation not caught: %v", err)
	}
	// Hand-corrupt a histogram to desync buckets from count.
	r3 := NewRegistry()
	h := r3.Histogram("h")
	h.Observe(5)
	h.mu.Lock()
	h.count = 2
	h.mu.Unlock()
	if err := r3.SelfCheck(); err == nil || !strings.Contains(err.Error(), "bucket total") {
		t.Fatalf("bucket desync not caught: %v", err)
	}
}

func TestMergeInto(t *testing.T) {
	per := NewRegistry()
	per.Counter("n").Add(5)
	per.Gauge("hw").Set(3)
	per.Histogram("lat").Observe(10)
	per.Histogram("lat").Observe(20)

	dst := NewRegistry()
	dst.Counter("n").Add(2)
	dst.Gauge("hw").Set(8)
	dst.Histogram("lat").Observe(100)

	per.MergeInto(dst)
	if v := dst.Counter("n").Value(); v != 7 {
		t.Fatalf("merged counter = %d, want 7", v)
	}
	if v := dst.Gauge("hw").Value(); v != 8 {
		t.Fatalf("merged gauge = %d, want max 8", v)
	}
	s := dst.Histogram("lat").Snapshot()
	if s.Count != 3 || s.Sum != 130 || s.Min != 10 || s.Max != 100 {
		t.Fatalf("merged histogram %+v", s)
	}
	if err := dst.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryConcurrent hammers all three instrument kinds from many
// goroutines; with -race this is the registry's data-race check, and
// SelfCheck at the end proves the aggregates stayed consistent.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, each = 8, 200
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Max(int64(w*each + i))
				r.Histogram("h").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("c").Value(); v != workers*each {
		t.Fatalf("counter = %d, want %d", v, workers*each)
	}
	if s := r.Histogram("h").Snapshot(); s.Count != workers*each {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*each)
	}
	if err := r.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}
