package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a typed metrics registry: named counters, gauges, and
// histograms. The engine opens a fresh registry per job, derives the
// legacy Metrics view from it, and merges it into the caller's registry
// (Config.Registry) when one is set — so cross-job aggregation is the
// caller's choice, never an accident.
//
// Get-or-create is lock-striped per kind; the instruments themselves are
// lock-free (counters, gauges) or finely locked (histograms), so the hot
// paths observe without contending on the registry map.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing count. Negative Adds are
// recorded (not applied) so SelfCheck can flag the violation.
type Counter struct {
	v   atomic.Int64
	neg atomic.Int64
}

// Add increments the counter. Negative deltas are rejected and counted
// as violations for SelfCheck.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	if d < 0 {
		c.neg.Add(1)
		return
	}
	c.v.Add(d)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Max raises the gauge to v if v is larger (for high-water marks).
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with 2^(i-1) <= v < 2^i (bucket 0: v == 0).
// 64 buckets cover the full int64 range.
const histBuckets = 64

// Histogram records a distribution of non-negative int64 observations
// (nanoseconds, bytes, counts) in power-of-two buckets with exact
// count/sum/min/max. Negative observations are rejected and tallied for
// SelfCheck.
type Histogram struct {
	mu      sync.Mutex
	buckets [histBuckets]int64
	count   int64
	sum     int64
	min     int64
	max     int64
	neg     int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if v < 0 {
		h.neg++
		h.mu.Unlock()
		return
	}
	h.buckets[bucketIdx(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// bucketIdx maps v >= 0 to its power-of-two bucket.
func bucketIdx(v int64) int {
	if v == 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// HistSnapshot is a point-in-time copy of a histogram's aggregates.
type HistSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
}

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot returns the histogram's current aggregates.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
}

// Counter returns (creating if needed) the named counter. Nil-safe: a
// nil registry returns a nil instrument whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// MergeInto folds this registry's values into dst: counters and
// histogram aggregates add, gauges take the maximum (they are
// high-water-style in this engine). Safe when dst is nil.
func (r *Registry) MergeInto(dst *Registry) {
	if r == nil || dst == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counts {
		dst.Counter(name).Add(c.Value())
	}
	for name, g := range r.gauges {
		dst.Gauge(name).Max(g.Value())
	}
	for name, h := range r.hists {
		dh := dst.Histogram(name)
		h.mu.Lock()
		dh.mu.Lock()
		for i, b := range h.buckets {
			dh.buckets[i] += b
		}
		if h.count > 0 {
			if dh.count == 0 || h.min < dh.min {
				dh.min = h.min
			}
			if h.max > dh.max {
				dh.max = h.max
			}
		}
		dh.count += h.count
		dh.sum += h.sum
		dh.neg += h.neg
		dh.mu.Unlock()
		h.mu.Unlock()
	}
}

// Snapshot returns all instrument values by name, for reports and tests.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counts)+len(r.gauges)+len(r.hists))
	for name, c := range r.counts {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		s := h.Snapshot()
		out[name+".count"] = s.Count
		out[name+".sum"] = s.Sum
	}
	return out
}

// SelfCheck validates the registry's internal invariants: no negative
// counter adds or histogram observations ever happened, every
// histogram's bucket total equals its count, min <= max, and
// count*min <= sum <= count*max. A healthy engine can run SelfCheck
// after every job; a failure means an instrument was misused or a
// counter went backwards.
func (r *Registry) SelfCheck() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counts))
	for name := range r.counts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if n := r.counts[name].neg.Load(); n > 0 {
			return fmt.Errorf("obs: counter %q received %d negative adds", name, n)
		}
	}
	names = names[:0]
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		h.mu.Lock()
		var btotal int64
		for _, b := range h.buckets {
			btotal += b
		}
		count, sum, mn, mx, neg := h.count, h.sum, h.min, h.max, h.neg
		h.mu.Unlock()
		switch {
		case neg > 0:
			return fmt.Errorf("obs: histogram %q received %d negative observations", name, neg)
		case btotal != count:
			return fmt.Errorf("obs: histogram %q bucket total %d != count %d", name, btotal, count)
		case count > 0 && mn > mx:
			return fmt.Errorf("obs: histogram %q min %d > max %d", name, mn, mx)
		case count > 0 && (float64(sum) < float64(count)*float64(mn)-0.5 ||
			float64(sum) > float64(count)*float64(mx)+0.5):
			return fmt.Errorf("obs: histogram %q sum %d outside [count*min, count*max] = [%d, %d]",
				name, sum, count*mn, count*mx)
		case sum < 0:
			return fmt.Errorf("obs: histogram %q sum overflowed", name)
		}
	}
	return nil
}
