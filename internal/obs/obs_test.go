package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
)

// TestNilTraceIsSafe pins the nil-safety contract the engine relies on:
// every Trace/ActiveSpan method must be a no-op on a nil receiver so
// call sites need no guards.
func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	job := tr.StartJob("nil-job")
	sp := tr.Start(KindMapAttempt, "t0")
	sp.Attr(AttrTask, 1).Tag("outcome", "ok").End()
	job.End()
	tr.Event(KindCommit, "t0")
	tr.EmitRaw(&Span{Kind: KindJob})
	if id := tr.NewID(); id != 0 {
		t.Fatalf("nil trace issued id %d", id)
	}
	if id := sp.ID(); id != 0 {
		t.Fatalf("nil span has id %d", id)
	}
}

func TestTraceParentsSpansToJob(t *testing.T) {
	sink := NewMemSink()
	tr := NewTrace(sink)
	job := tr.StartJob("j")
	tr.Start(KindMapAttempt, "t0").
		Attr(AttrTask, 0).Attr(AttrAttempt, 1).Tag("outcome", "ok").End()
	tr.Start(KindCommit, "t0").
		Attr(AttrTask, 0).Attr(AttrAttempt, 1).Tag("phase", "map").End()
	job.Attr(AttrParallelism, 2).End()

	spans := sink.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	var root *Span
	for _, sp := range spans {
		if sp.Kind == KindJob {
			root = sp
		}
	}
	if root == nil {
		t.Fatal("no job span emitted")
	}
	for _, sp := range spans {
		if sp.Kind != KindJob && sp.Parent != root.ID {
			t.Errorf("%s span parented to %d, want job %d", sp.Kind, sp.Parent, root.ID)
		}
		if sp.End < sp.Start {
			t.Errorf("%s span ends before it starts", sp.Kind)
		}
	}
	if err := (Verifier{}).Check(spans); err != nil {
		t.Fatalf("trivial trace fails verification: %v", err)
	}
}

// TestJSONLSinkOutput checks the hand-rolled encoder against the real
// JSON parser: every line must round-trip into the same Span, with
// deterministic key order and proper escaping of hostile group keys.
func TestJSONLSinkOutput(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := NewTrace(sink)
	job := tr.StartJob("job with \"quotes\" and\nnewline")
	tr.Start(KindCompose, `group"key`+"\x01\\end").
		Attr(AttrSummaries, 3).Attr(AttrComposes, 2).Attr(AttrApplies, 1).
		Tag("engine", "symple").End()
	job.End()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var sp Span
		if err := json.Unmarshal([]byte(line), &sp); err != nil {
			t.Fatalf("line is not valid JSON: %v\n%s", err, line)
		}
		if sp.ID == 0 || sp.Kind == "" || sp.End < sp.Start {
			t.Fatalf("decoded span malformed: %+v", sp)
		}
	}
	var got Span
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindCompose || got.Attrs[AttrSummaries] != 3 || got.Tags["engine"] != "symple" {
		t.Fatalf("compose span did not round-trip: %+v", got)
	}
	if got.Name != `group"key`+"\x01\\end" {
		t.Fatalf("hostile group key mangled: %q", got.Name)
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	a, b := NewMemSink(), NewMemSink()
	tr := NewTrace(MultiSink{a, b})
	tr.StartJob("j").End()
	if len(a.Spans()) != 1 || len(b.Spans()) != 1 {
		t.Fatalf("fan-out failed: %d / %d spans", len(a.Spans()), len(b.Spans()))
	}
}

// TestTraceConcurrentEmit exercises the sink and ID allocation from many
// goroutines; run under -race this is the data-race check for the whole
// span path.
func TestTraceConcurrentEmit(t *testing.T) {
	sink := NewMemSink()
	tr := NewTrace(sink)
	job := tr.StartJob("race")
	var wg sync.WaitGroup
	const workers, each = 8, 50
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Start(KindMapAttempt, "t").
					Attr(AttrTask, int64(w)).Attr(AttrAttempt, int64(i)).End()
			}
		}()
	}
	wg.Wait()
	job.End()
	spans := sink.Spans()
	if len(spans) != workers*each+1 {
		t.Fatalf("got %d spans, want %d", len(spans), workers*each+1)
	}
	ids := make(map[int64]bool, len(spans))
	for _, sp := range spans {
		if ids[sp.ID] {
			t.Fatalf("duplicate span id %d", sp.ID)
		}
		ids[sp.ID] = true
	}
}

func TestCPUProfile(t *testing.T) {
	path := t.TempDir() + "/cpu.pprof"
	stop, err := CPUProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A second profile while one is active must be skipped, not fail.
	stop2, err := CPUProfile(t.TempDir() + "/cpu2.pprof")
	if err != nil {
		t.Fatalf("nested profile errored: %v", err)
	}
	stop2()
	stop()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("profile file is empty")
	}
}
