package obs

import (
	"strings"
	"testing"
	"time"
)

// goodTrace builds a minimal but complete healthy trace: one job with
// two map tasks (task 1 speculated — attempt 1 won, the backup attempt 2
// ran but never committed), one reduce task, two committed runs each
// decoded once, and two composed groups. Every breaker in the table
// below starts from a copy of this and breaks exactly one invariant.
func goodTrace() []*Span {
	base := int64(1_000_000_000)
	ms := int64(time.Millisecond)
	sp := func(id, parent int64, kind, name string, startMS, endMS int64, attrs map[string]int64, tags map[string]string) *Span {
		return &Span{ID: id, Parent: parent, Kind: kind, Name: name,
			Start: base + startMS*ms, End: base + endMS*ms, Attrs: attrs, Tags: tags}
	}
	return []*Span{
		sp(1, 0, KindJob, "test-job", 0, 100,
			map[string]int64{AttrParallelism: 4, AttrWireBytes: 900, AttrLogicalBytes: 1000}, nil),
		// Map task 0: one clean attempt, committed, one run for part 0.
		sp(2, 1, KindMapAttempt, "map-0", 1, 30,
			map[string]int64{AttrTask: 0, AttrAttempt: 1, AttrRecords: 10}, map[string]string{"outcome": "ok"}),
		sp(3, 1, KindCommit, "map-0", 30, 30,
			map[string]int64{AttrTask: 0, AttrAttempt: 1}, map[string]string{"phase": "map"}),
		sp(4, 1, KindRunCommit, "map-0", 30, 30,
			map[string]int64{AttrTask: 0, AttrAttempt: 1, AttrPart: 0, AttrBytes: 450}, nil),
		// Map task 1: attempt 1 won; speculative attempt 2 finished later
		// and lost the commit race — it has a span but no commit.
		sp(5, 1, KindMapAttempt, "map-1", 1, 40,
			map[string]int64{AttrTask: 1, AttrAttempt: 1, AttrRecords: 12}, map[string]string{"outcome": "ok"}),
		sp(6, 1, KindMapAttempt, "map-1", 20, 60,
			map[string]int64{AttrTask: 1, AttrAttempt: 2, AttrRecords: 12},
			map[string]string{"outcome": "ok", "speculative": "1"}),
		sp(7, 1, KindCommit, "map-1", 40, 40,
			map[string]int64{AttrTask: 1, AttrAttempt: 1}, map[string]string{"phase": "map"}),
		sp(8, 1, KindRunCommit, "map-1", 40, 40,
			map[string]int64{AttrTask: 1, AttrAttempt: 1, AttrPart: 0, AttrBytes: 450}, nil),
		// Reduce task 0: decodes both committed runs exactly once and
		// composes two groups.
		sp(9, 1, KindSegDecode, "part-0", 45, 46,
			map[string]int64{AttrTask: 0, AttrAttempt: 1, AttrPart: 0, AttrBytes: 450}, nil),
		sp(10, 1, KindSegDecode, "part-0", 46, 47,
			map[string]int64{AttrTask: 1, AttrAttempt: 1, AttrPart: 0, AttrBytes: 450}, nil),
		sp(11, 1, KindReduceAttempt, "reduce-0", 45, 90,
			map[string]int64{AttrTask: 0, AttrAttempt: 1, AttrGroups: 2}, map[string]string{"outcome": "ok"}),
		sp(12, 1, KindCommit, "reduce-0", 90, 90,
			map[string]int64{AttrTask: 0, AttrAttempt: 1}, map[string]string{"phase": "reduce"}),
		// Group "alpha": tree path — 3 summaries, 2 composes, 1 apply.
		sp(13, 1, KindCompose, "alpha", 50, 60,
			map[string]int64{AttrSummaries: 3, AttrComposes: 2, AttrApplies: 1}, nil),
		// Group "beta": apply path — 2 summaries replayed individually.
		sp(14, 1, KindCompose, "beta", 60, 70,
			map[string]int64{AttrSummaries: 2, AttrComposes: 0, AttrApplies: 2}, nil),
		// Mapper-side combiner folded 4 summaries with 3 composes.
		sp(15, 1, KindCombine, "map-1/alpha", 10, 12,
			map[string]int64{AttrSummaries: 4, AttrComposes: 3}, nil),
	}
}

func TestVerifierAcceptsHealthyTrace(t *testing.T) {
	if err := (Verifier{}).Check(goodTrace()); err != nil {
		t.Fatalf("healthy trace rejected: %v", err)
	}
}

func TestVerifierAcceptsEmptyTrace(t *testing.T) {
	if viols := (Verifier{}).Verify(nil); viols != nil {
		t.Fatalf("empty trace produced violations: %v", viols)
	}
}

// TestVerifierCatchesBrokenTraces is the hand-broken trace table: each
// breaker corrupts a healthy trace in one specific way and must trip
// exactly the named invariant.
func TestVerifierCatchesBrokenTraces(t *testing.T) {
	ms := int64(time.Millisecond)
	cases := []struct {
		name      string
		invariant string
		breaker   func([]*Span) []*Span
	}{
		{"double-merged run", InvRunMergedOnce, func(s []*Span) []*Span {
			// Reducer decodes map-0's committed run a second time.
			dup := *s[9]
			dup.ID = 99
			return append(s, &dup)
		}},
		{"committed run never merged", InvRunMergedOnce, func(s []*Span) []*Span {
			// Drop the seg_decode of map-1's run (id 10).
			return append(s[:9:9], s[10:]...)
		}},
		{"decode of unknown run", InvRunUnknown, func(s []*Span) []*Span {
			ghost := *s[9]
			ghost.ID = 99
			ghost.Attrs = map[string]int64{AttrTask: 7, AttrAttempt: 1, AttrPart: 0, AttrBytes: 10}
			return append(s, &ghost)
		}},
		{"orphan span", InvOrphanSpan, func(s []*Span) []*Span {
			s[13].Parent = 424242
			return s
		}},
		{"bytes inflation", InvWireBytes, func(s []*Span) []*Span {
			s[0].Attrs[AttrWireBytes] = s[0].Attrs[AttrLogicalBytes]*2 + 4096
			return s
		}},
		{"speculation loser commits", InvSingleCommit, func(s []*Span) []*Span {
			// The losing backup attempt (task 1 attempt 2) also commits.
			c := *s[6]
			c.ID = 99
			c.Kind = KindCommit
			c.Attrs = map[string]int64{AttrTask: 1, AttrAttempt: 2}
			c.Tags = map[string]string{"phase": "map"}
			return append(s, &c)
		}},
		{"commit without attempt", InvCommitNoAttempt, func(s []*Span) []*Span {
			s[2].Attrs[AttrAttempt] = 9
			return s
		}},
		{"commit of failed attempt", InvCommitNoAttempt, func(s []*Span) []*Span {
			s[1].Tags["outcome"] = "error"
			return s
		}},
		{"compose count short", InvComposeCount, func(s []*Span) []*Span {
			s[12].Attrs[AttrComposes] = 1 // 3 summaries, 1 compose + 1 apply
			return s
		}},
		{"combiner count short", InvComposeCount, func(s []*Span) []*Span {
			s[14].Attrs[AttrComposes] = 2 // 4 summaries need 3
			return s
		}},
		{"group composed twice", InvGroupOnce, func(s []*Span) []*Span {
			dup := *s[12]
			dup.ID = 99
			return append(s, &dup)
		}},
		{"clock runs backwards", InvSpanClock, func(s []*Span) []*Span {
			s[1].Start, s[1].End = s[1].End, s[1].Start
			return s
		}},
		{"span escapes job interval", InvSpanContainment, func(s []*Span) []*Span {
			s[10].End = s[0].End + 50*ms
			return s
		}},
		{"task time exceeds cluster", InvCPUBound, func(s []*Span) []*Span {
			// One attempt claims 10× the whole job's wall-clock budget.
			s[0].Attrs[AttrParallelism] = 1
			s[1].Start = s[0].Start
			s[1].End = s[0].Start + 10*(s[0].End-s[0].Start)
			s[0].End = s[1].End + ms // keep containment satisfied
			return s
		}},
		{"duplicate span id", InvDuplicateSpan, func(s []*Span) []*Span {
			s[13].ID = s[12].ID
			return s
		}},
		{"spans without a job", InvJobMissing, func(s []*Span) []*Span {
			return s[1:]
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spans := tc.breaker(goodTrace())
			viols := (Verifier{}).Verify(spans)
			if len(viols) == 0 {
				t.Fatalf("broken trace passed verification")
			}
			for _, v := range viols {
				if v.Invariant == tc.invariant {
					return
				}
			}
			t.Fatalf("expected %s violation, got: %v", tc.invariant, viols)
		})
	}
}

// TestVerifierToleratesRetriedReduce pins the group-once gate: when a
// reduce task ran two attempts (retry or speculation), the same group
// legitimately appears in two compose spans and must not be flagged.
func TestVerifierToleratesRetriedReduce(t *testing.T) {
	spans := goodTrace()
	// Second reduce attempt for task 0 (failed first, clean second), plus
	// the duplicate compose it performed.
	retry := *spans[10]
	retry.ID = 90
	retry.Attrs = map[string]int64{AttrTask: 0, AttrAttempt: 2, AttrGroups: 2}
	retry.Tags = map[string]string{"outcome": "ok"}
	spans[10].Tags["outcome"] = "error"
	spans[11].Attrs[AttrAttempt] = 2 // commit belongs to the clean attempt
	dup := *spans[12]
	dup.ID = 91
	spans = append(spans, &retry, &dup)
	if err := (Verifier{}).Check(spans); err != nil {
		t.Fatalf("retried reduce flagged: %v", err)
	}
}

func TestCheckErrorNamesInvariant(t *testing.T) {
	spans := goodTrace()
	spans[0].Attrs[AttrWireBytes] = 1 << 40
	err := (Verifier{}).Check(spans)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), InvWireBytes) {
		t.Fatalf("error does not name the invariant: %v", err)
	}
}
