package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Invariant names, used by Violation and pinned by tests.
const (
	InvSpanClock       = "span-clock"        // End >= Start on every span
	InvOrphanSpan      = "orphan-span"       // every parent reference resolves
	InvSpanContainment = "span-containment"  // child intervals inside the job interval
	InvCPUBound        = "cpu-bound"         // Σ attempt spans <= job wall × parallelism
	InvWireBytes       = "wire-bytes"        // wire bytes <= logical bytes (+slack)
	InvRunMergedOnce   = "run-merged-once"   // every committed run decoded exactly once
	InvRunUnknown      = "run-unknown"       // no decode of a never-committed run
	InvSingleCommit    = "single-commit"     // at most one commit per task (spec losers never commit)
	InvCommitNoAttempt = "commit-no-attempt" // every commit has a matching attempt span
	InvComposeCount    = "compose-count"     // composes + applies == summaries per group
	InvGroupOnce       = "group-once"        // each group composed by exactly one winning reducer
	InvDuplicateSpan   = "duplicate-span"    // span IDs unique within a job
	InvJobMissing      = "job-missing"       // non-empty trace must contain a job span
	InvBatchRecords    = "batch-records"     // kept batch events <= chunk records; parse/exec agree per chunk
	InvOwnerDecode     = "owner-decode"      // w2w: runs decoded only on their partition's owning worker
	InvServeCache      = "serve-cache"       // warm serve jobs do no map work; fold provenance adds up
)

// Violation is one failed invariant over a trace.
type Violation struct {
	Invariant string
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// containSlack absorbs clock coarseness between a child span's end and
// the job span's end (the job span is closed after all workers join, but
// coarse clocks can tie; scheduling between a worker's time.Now and the
// emit also allows small inversions at start).
const containSlack = 5 * time.Millisecond

// cpuSlack absorbs per-attempt timer coarseness in the cpu-bound check.
const cpuSlack = 50 * time.Millisecond

// Verifier checks a completed trace against the engine's invariants.
// The zero value is ready to use; fields relax individual checks for
// traces that legitimately lack the corresponding spans.
type Verifier struct {
	// SkipCPUBound disables the Σ-attempts-vs-wall check (needed for
	// traces recorded with no parallelism attr on the job span).
	SkipCPUBound bool
}

// Verify runs every invariant over the trace and returns all violations
// (nil when clean). Spans from sequential jobs on one trace are grouped
// by their job root and verified per job.
func (v Verifier) Verify(spans []*Span) []Violation {
	var out []Violation
	if len(spans) == 0 {
		return nil
	}

	byID := make(map[int64]*Span, len(spans))
	var jobs []*Span
	for _, sp := range spans {
		if prev, dup := byID[sp.ID]; dup {
			out = append(out, Violation{InvDuplicateSpan,
				fmt.Sprintf("span id %d used by %s %q and %s %q", sp.ID, prev.Kind, prev.Name, sp.Kind, sp.Name)})
		}
		byID[sp.ID] = sp
		if sp.Kind == KindJob {
			jobs = append(jobs, sp)
		}
	}
	if len(jobs) == 0 {
		return append(out, Violation{InvJobMissing,
			fmt.Sprintf("%d spans but no %s span", len(spans), KindJob)})
	}

	for _, sp := range spans {
		if sp.End < sp.Start {
			out = append(out, Violation{InvSpanClock,
				fmt.Sprintf("%s %q (id %d) ends %dns before it starts", sp.Kind, sp.Name, sp.ID, sp.Start-sp.End)})
		}
		if sp.Parent != 0 {
			if _, ok := byID[sp.Parent]; !ok {
				out = append(out, Violation{InvOrphanSpan,
					fmt.Sprintf("%s %q (id %d) references missing parent %d", sp.Kind, sp.Name, sp.ID, sp.Parent)})
			}
		}
	}

	// Group spans under their job root and verify each job independently.
	perJob := make(map[int64][]*Span, len(jobs))
	for _, sp := range spans {
		if sp.Kind == KindJob {
			continue
		}
		root := sp.Parent
		// Walk up (bounded) in case of future nested parents.
		for i := 0; i < 8; i++ {
			p, ok := byID[root]
			if !ok || p.Kind == KindJob {
				break
			}
			root = p.Parent
		}
		perJob[root] = append(perJob[root], sp)
	}
	for _, job := range jobs {
		out = append(out, v.verifyJob(job, perJob[job.ID])...)
	}
	out = append(out, verifyServeCache(spans, jobs, byID)...)
	return out
}

// verifyServeCache checks the serve layer's central promise: a fully
// warm job — every folded segment served from the summary cache
// (cached_segments == segments > 0 on the job root) — performed zero
// map work, anywhere in its subtree. Nested engine job roots are
// climbed through, so a warm path that quietly launched an engine run
// cannot hide its map attempts under the inner root. Roots without the
// provenance attrs (ordinary engine jobs) are skipped, and the attrs
// must add up: cached + mapped == segments.
func verifyServeCache(spans, jobs []*Span, byID map[int64]*Span) []Violation {
	var out []Violation
	warm := make(map[int64]*Span)
	for _, job := range jobs {
		cached, ok := job.Attrs[AttrCachedSegments]
		if !ok {
			continue
		}
		segs := job.Attr(AttrSegments)
		if mapped := job.Attr(AttrMappedSegments); cached+mapped != segs {
			out = append(out, Violation{InvServeCache,
				fmt.Sprintf("job %q: %d cached + %d mapped segments != %d folded",
					job.Name, cached, mapped, segs)})
		}
		if segs > 0 && cached == segs {
			warm[job.ID] = job
		}
	}
	if len(warm) == 0 {
		return out
	}
	for _, sp := range spans {
		switch sp.Kind {
		case KindMapAttempt, KindMapParse, KindMapExec:
		default:
			continue
		}
		// Climb the full ancestor chain (bounded): map work under any
		// warm serve root — however deeply nested — is a violation.
		for p, hops := sp.Parent, 0; p != 0 && hops < 16; hops++ {
			if job, ok := warm[p]; ok {
				out = append(out, Violation{InvServeCache,
					fmt.Sprintf("job %q: warm-cache job contains %s %q (id %d) — cached fold ran map work",
						job.Name, sp.Kind, sp.Name, sp.ID)})
				break
			}
			ps, ok := byID[p]
			if !ok {
				break
			}
			p = ps.Parent
		}
	}
	return out
}

// verifyJob checks one job root and its children.
func (v Verifier) verifyJob(job *Span, children []*Span) []Violation {
	var out []Violation

	// Span containment: every child interval inside the job interval.
	for _, sp := range children {
		if sp.Start < job.Start-int64(containSlack) || sp.End > job.End+int64(containSlack) {
			out = append(out, Violation{InvSpanContainment,
				fmt.Sprintf("job %q: %s %q (id %d) [%d,%d] outside job [%d,%d]",
					job.Name, sp.Kind, sp.Name, sp.ID, sp.Start, sp.End, job.Start, job.End)})
		}
	}

	// cpu-bound: Σ task-attempt spans ≈ job span — the "sum of task
	// spans bounded by job wall times worker parallelism" invariant.
	// Attempt spans start after semaphore acquisition, so the sum of
	// concurrent attempt time cannot exceed wall × parallelism.
	if par := job.Attr(AttrParallelism); par > 0 && !v.SkipCPUBound {
		var attemptSum time.Duration
		for _, sp := range children {
			if sp.Kind == KindMapAttempt || sp.Kind == KindReduceAttempt {
				attemptSum += sp.Duration()
			}
		}
		bound := time.Duration(float64(job.Duration())*float64(par)*1.05) + cpuSlack*time.Duration(par)
		if attemptSum > bound {
			out = append(out, Violation{InvCPUBound,
				fmt.Sprintf("job %q: Σ attempt spans %v exceeds job wall %v × parallelism %d (+slack) = %v",
					job.Name, attemptSum, job.Duration(), par, bound)})
		}
	}

	// wire-bytes: actual shuffle bytes bounded by the legacy logical
	// framing. Flate can inflate tiny segments, so allow additive slack
	// plus 25% — the golden tests separately pin a 2× ceiling.
	if wire, logical := job.Attr(AttrWireBytes), job.Attr(AttrLogicalBytes); wire > 0 || logical > 0 {
		slack := logical / 4
		if slack < 1024 {
			slack = 1024
		}
		if wire > logical+slack {
			out = append(out, Violation{InvWireBytes,
				fmt.Sprintf("job %q: %d wire bytes exceed %d logical bytes + %d slack",
					job.Name, wire, logical, slack)})
		}
	}

	out = append(out, verifyRuns(job, children)...)
	out = append(out, verifyCommits(job, children)...)
	out = append(out, verifyComposes(job, children)...)
	out = append(out, verifyBatches(job, children)...)
	out = append(out, verifyOwners(job, children)...)
	return out
}

// verifyOwners checks worker-to-worker reduce placement: part_owner
// events record which cluster worker ran each partition's reduce, and
// every seg_decode span that carries a worker attr (only worker-resident
// decodes do) must have run on its partition's recorded owner — a run
// decoded elsewhere would mean shuffle data leaked off the owning
// worker. Traces without part_owner spans (in-process and
// via-coordinator runs) are skipped.
func verifyOwners(job *Span, children []*Span) []Violation {
	var out []Violation
	owner := make(map[int64]int64)
	for _, sp := range children {
		if sp.Kind != KindPartOwner {
			continue
		}
		part, w := sp.Attr(AttrPart), sp.Attr(AttrWorker)
		if prev, ok := owner[part]; ok && prev != w {
			out = append(out, Violation{InvOwnerDecode,
				fmt.Sprintf("job %q: partition %d owned by worker %d and worker %d",
					job.Name, part, prev, w)})
		}
		owner[part] = w
	}
	if len(owner) == 0 {
		return out
	}
	for _, sp := range children {
		if sp.Kind != KindSegDecode {
			continue
		}
		w, ok := sp.Attrs[AttrWorker]
		if !ok {
			continue
		}
		part := sp.Attr(AttrPart)
		o, known := owner[part]
		switch {
		case !known:
			out = append(out, Violation{InvOwnerDecode,
				fmt.Sprintf("job %q: run (%s) decoded on worker %d but partition %d has no recorded owner",
					job.Name, runKey{sp.Attr(AttrTask), sp.Attr(AttrAttempt), part}, w, part)})
		case o != w:
			out = append(out, Violation{InvOwnerDecode,
				fmt.Sprintf("job %q: run (%s) decoded on worker %d but partition %d is owned by worker %d",
					job.Name, runKey{sp.Attr(AttrTask), sp.Attr(AttrAttempt), part}, w, part, o)})
		}
	}
	return out
}

// verifyBatches checks the batched map chunks: a chunk's kept-event
// count (batch_records, set by vectorized grouping) can never exceed its
// record count — grouping only filters — and the parse and exec spans of
// one (task, chunk) must agree on it, since pass two consumes exactly
// the events pass one kept. Scalar chunks carry no batch_records and are
// skipped.
func verifyBatches(job *Span, children []*Span) []Violation {
	var out []Violation
	type chunkKey struct{ task, chunk int64 }
	parse := make(map[chunkKey]int64)
	for _, sp := range children {
		if sp.Kind != KindMapParse {
			continue
		}
		batch, ok := sp.Attrs[AttrBatchRecords]
		if !ok {
			continue
		}
		if recs := sp.Attr(AttrRecords); batch > recs {
			out = append(out, Violation{InvBatchRecords,
				fmt.Sprintf("job %q: %s %q kept %d batch events from %d records",
					job.Name, sp.Kind, sp.Name, batch, recs)})
		}
		parse[chunkKey{sp.Attr(AttrTask), sp.Attr(AttrChunk)}] = batch
	}
	for _, sp := range children {
		if sp.Kind != KindMapExec {
			continue
		}
		batch, ok := sp.Attrs[AttrBatchRecords]
		if !ok {
			continue
		}
		k := chunkKey{sp.Attr(AttrTask), sp.Attr(AttrChunk)}
		if want, seen := parse[k]; seen && want != batch {
			out = append(out, Violation{InvBatchRecords,
				fmt.Sprintf("job %q: task %d chunk %d parsed %d batch events but executed %d",
					job.Name, k.task, k.chunk, want, batch)})
		}
	}
	return out
}

// runKey identifies one committed spill run: the winning attempt's
// output for one partition.
type runKey struct {
	task, attempt, part int64
}

func (k runKey) String() string {
	return fmt.Sprintf("task %d attempt %d part %d", k.task, k.attempt, k.part)
}

// verifyRuns matches run_commit events against seg_decode spans: every
// run a winning attempt committed must be decoded by its reducer exactly
// once, and nothing may be decoded that was never committed. This is the
// invariant whose absence let the PR 1 unsorted-run bug survive to the
// golden digests.
func verifyRuns(job *Span, children []*Span) []Violation {
	var out []Violation
	committed := make(map[runKey]int)
	decoded := make(map[runKey]int)
	for _, sp := range children {
		k := runKey{sp.Attr(AttrTask), sp.Attr(AttrAttempt), sp.Attr(AttrPart)}
		switch sp.Kind {
		case KindRunCommit:
			committed[k]++
		case KindSegDecode:
			decoded[k]++
		}
	}
	if len(committed) == 0 && len(decoded) == 0 {
		return nil
	}
	for _, k := range sortedRunKeys(committed) {
		switch n := decoded[k]; {
		case n == 0:
			out = append(out, Violation{InvRunMergedOnce,
				fmt.Sprintf("job %q: committed run (%s) never decoded by a reducer", job.Name, k)})
		case n > 1:
			out = append(out, Violation{InvRunMergedOnce,
				fmt.Sprintf("job %q: committed run (%s) decoded %d times", job.Name, k, n)})
		}
	}
	for _, k := range sortedRunKeys(decoded) {
		if committed[k] == 0 {
			out = append(out, Violation{InvRunUnknown,
				fmt.Sprintf("job %q: reducer decoded run (%s) that no commit produced", job.Name, k)})
		}
	}
	return out
}

// verifyCommits checks the task-commit protocol: at most one commit per
// task (speculation losers must never commit), and every commit must be
// backed by an attempt span for the same task+attempt with an ok
// outcome.
func verifyCommits(job *Span, children []*Span) []Violation {
	var out []Violation
	type taskKey struct {
		kind string
		task int64
	}
	commits := make(map[taskKey][]int64)
	attempts := make(map[taskKey]map[int64]string)
	for _, sp := range children {
		switch sp.Kind {
		case KindCommit:
			k := taskKey{sp.Tags["phase"], sp.Attr(AttrTask)}
			commits[k] = append(commits[k], sp.Attr(AttrAttempt))
		case KindMapAttempt, KindReduceAttempt:
			phase := "map"
			if sp.Kind == KindReduceAttempt {
				phase = "reduce"
			}
			k := taskKey{phase, sp.Attr(AttrTask)}
			if attempts[k] == nil {
				attempts[k] = make(map[int64]string)
			}
			attempts[k][sp.Attr(AttrAttempt)] = sp.Tags["outcome"]
		}
	}
	keys := make([]taskKey, 0, len(commits))
	for k := range commits {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].task < keys[j].task
	})
	for _, k := range keys {
		atts := commits[k]
		if len(atts) > 1 {
			out = append(out, Violation{InvSingleCommit,
				fmt.Sprintf("job %q: %s task %d committed %d times (attempts %v) — a speculation loser committed",
					job.Name, k.kind, k.task, len(atts), atts)})
		}
		for _, att := range atts {
			outcome, ok := attempts[k][att]
			if !ok {
				out = append(out, Violation{InvCommitNoAttempt,
					fmt.Sprintf("job %q: %s task %d commit references attempt %d with no attempt span",
						job.Name, k.kind, k.task, att)})
			} else if outcome != "" && outcome != "ok" {
				out = append(out, Violation{InvCommitNoAttempt,
					fmt.Sprintf("job %q: %s task %d committed attempt %d whose outcome is %q",
						job.Name, k.kind, k.task, att, outcome)})
			}
		}
	}
	return out
}

// verifyComposes checks the summary-composition algebra per group:
// composing n summaries takes exactly n−1 pairwise composes however the
// tree is shaped, so composes + applies must equal summaries (the apply
// path replays summaries individually; the tree path folds n−1 composes
// and applies the single survivor). Combine spans (mapper-side) fold
// in place: composes == summaries − 1. Each group must be composed by
// exactly one winning reducer.
func verifyComposes(job *Span, children []*Span) []Violation {
	var out []Violation
	// Group-once is only strict when every reduce task ran exactly one
	// clean attempt: a retried or speculative attempt legitimately
	// re-composes its partition's groups before losing the commit race.
	reduceAttempts := make(map[int64]int)
	cleanReduce := true
	for _, sp := range children {
		if sp.Kind == KindReduceAttempt {
			reduceAttempts[sp.Attr(AttrTask)]++
			if o := sp.Tags["outcome"]; o != "" && o != "ok" {
				cleanReduce = false
			}
		}
	}
	for _, n := range reduceAttempts {
		if n > 1 {
			cleanReduce = false
		}
	}
	seen := make(map[string]int)
	var names []string
	for _, sp := range children {
		switch sp.Kind {
		case KindCompose:
			s, c, a := sp.Attr(AttrSummaries), sp.Attr(AttrComposes), sp.Attr(AttrApplies)
			if s < 1 || c+a != s {
				out = append(out, Violation{InvComposeCount,
					fmt.Sprintf("job %q: group %q composed %d + applied %d over %d summaries (want composes+applies == summaries ≥ 1)",
						job.Name, sp.Name, c, a, s)})
			}
			if seen[sp.Name] == 0 {
				names = append(names, sp.Name)
			}
			seen[sp.Name]++
		case KindCombine:
			s, c := sp.Attr(AttrSummaries), sp.Attr(AttrComposes)
			if s < 2 || c != s-1 {
				out = append(out, Violation{InvComposeCount,
					fmt.Sprintf("job %q: combiner folded %d summaries with %d composes (want summaries−1 = %d)",
						job.Name, s, c, s-1)})
			}
		}
	}
	if cleanReduce {
		sort.Strings(names)
		for _, name := range names {
			if n := seen[name]; n > 1 {
				out = append(out, Violation{InvGroupOnce,
					fmt.Sprintf("job %q: group %q composed by %d reducers", job.Name, name, n)})
			}
		}
	}
	return out
}

// sortedRunKeys returns map keys in deterministic order.
func sortedRunKeys(m map[runKey]int) []runKey {
	keys := make([]runKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.task != b.task {
			return a.task < b.task
		}
		if a.attempt != b.attempt {
			return a.attempt < b.attempt
		}
		return a.part < b.part
	})
	return keys
}

// Check runs Verify and folds any violations into one error.
func (v Verifier) Check(spans []*Span) error {
	viols := v.Verify(spans)
	if len(viols) == 0 {
		return nil
	}
	msgs := make([]string, len(viols))
	for i, viol := range viols {
		msgs[i] = viol.String()
	}
	return fmt.Errorf("obs: trace failed %d invariant(s):\n  %s", len(viols), strings.Join(msgs, "\n  "))
}
