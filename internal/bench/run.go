package bench

import (
	"fmt"

	"repro/internal/mapreduce"
	"repro/internal/queries"
)

// measured holds one query's paired engine runs on the same input.
type measured struct {
	spec      *queries.Spec
	condensed bool
	baseline  *queries.Run
	symple    *queries.Run
}

// runPair executes the baseline and SYMPLE engines on the query's
// dataset and verifies their outputs agree (every reported number comes
// from runs that produced the correct answer).
//
// The cluster replays (Figs 5–8) deliberately measure under the barrier
// shuffle: their dcsim models scale the measured reduce-task CPU to
// paper scale, where Hadoop's reduce side pays a disk-bound multi-pass
// merge. The barrier engine's concatenate-and-sort reducer approximates
// that cost regime; the streaming engine's in-memory merge is far
// cheaper and would understate the baseline's reduce tail by the same
// factor it wins in BENCH_SHUFFLE.json.
func runPair(d *Datasets, id string, condensed bool, reducers int) (*measured, error) {
	spec := queries.ByID(id)
	if spec == nil {
		return nil, fmt.Errorf("bench: unknown query %q", id)
	}
	segs, err := d.For(spec.Dataset, condensed)
	if err != nil {
		return nil, err
	}
	conf := mapreduce.Config{NumReducers: reducers, BarrierShuffle: true,
		Trace: Trace, Registry: Registry}
	base, err := spec.Baseline(segs, conf)
	if err != nil {
		return nil, fmt.Errorf("bench %s baseline: %w", id, err)
	}
	symp, err := spec.Symple(segs, conf)
	if err != nil {
		return nil, fmt.Errorf("bench %s symple: %w", id, err)
	}
	if base.Digest != symp.Digest {
		return nil, fmt.Errorf("bench %s: engines disagree (baseline %x, symple %x)",
			id, base.Digest, symp.Digest)
	}
	return &measured{spec: spec, condensed: condensed, baseline: base, symple: symp}, nil
}

// label renders the query name, with the paper's "c" suffix for the
// condensed RedShift variant.
func (m *measured) label() string {
	if m.condensed {
		return m.spec.ID + "c"
	}
	return m.spec.ID
}
